package vtxn_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vtxn "repro"
)

// mvccBanking creates the banking schema with an escrow branch_totals view
// and loads accounts with perAccount balance each, two branches.
func mvccBanking(t *testing.T, accounts int, perAccount int64) *vtxn.DB {
	t.Helper()
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyEscrow,
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if err := tx.Insert("accounts", vtxn.Row{
			vtxn.Int(int64(i)), vtxn.Int(int64(i % 2)), vtxn.Int(perAccount),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSnapshotHammer is the acceptance check for MVCC snapshot reads: four
// escrow writer goroutines tilt disjoint account pairs in sum-preserving
// transactions while four read-only snapshot readers repeatedly ScanView.
// Every scan must observe a transaction-consistent world: COUNT equal to the
// number of accounts and SUM equal to the invariant grand total — a torn
// half-transfer or a leaked uncommitted escrow delta shows up as a sum that
// is off by one. Run under -race in CI (make race), eight goroutines total.
func TestSnapshotHammer(t *testing.T) {
	const writers = 4
	const readers = 4
	const accounts = 2 * writers // each writer owns a disjoint pair
	const perAccount = int64(1000)
	const total = int64(accounts) * perAccount
	scans := 400
	if testing.Short() {
		scans = 120
	}
	db := mvccBanking(t, accounts, perAccount)

	tilt := func(a, b, av, bv int64) error {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			return err
		}
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{2: vtxn.Int(av)}); err != nil {
			tx.Rollback()
			return err
		}
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{2: vtxn.Int(bv)}); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Commit()
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := int64(0); w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); !stop.Load(); i++ {
				av, bv := perAccount-1, perAccount+1
				if i%2 == 1 {
					av, bv = perAccount, perAccount
				}
				if err := tilt(a, b, av, bv); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < scans; i++ {
				snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
				if err != nil {
					errCh <- err
					return
				}
				rows, err := snap.ScanView("branch_totals")
				if err != nil {
					snap.Rollback()
					errCh <- err
					return
				}
				var count, sum int64
				for _, vr := range rows {
					count += vr.Result[0].AsInt()
					if !vr.Result[1].IsNull() {
						sum += vr.Result[1].AsInt()
					}
				}
				if err := snap.Commit(); err != nil {
					errCh <- err
					return
				}
				if count != accounts || sum != total {
					t.Errorf("torn snapshot: count=%d sum=%d, want %d/%d", count, sum, accounts, total)
					return
				}
			}
		}()
	}
	rwg.Wait()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	s := db.Metrics()
	if s.MVCC.Snapshots < int64(readers*scans) {
		t.Fatalf("snapshots begun = %d, want >= %d", s.MVCC.Snapshots, readers*scans)
	}
	if s.MVCC.VersionsStamped == 0 {
		t.Fatal("no versions stamped under write load")
	}
}

// TestSnapshotPrunerRetires checks the public-API version of the pruning
// rule: chains accumulate while the oldest snapshot pins the horizon and
// drain once it retires.
func TestSnapshotPrunerRetires(t *testing.T) {
	db := mvccBanking(t, 2, 1000)

	// Pin a snapshot, then churn behind it.
	pinned, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)},
			map[int]vtxn.Value{2: vtxn.Int(int64(2000 + i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	db.PruneVersions()
	if db.Metrics().MVCC.Chains == 0 {
		t.Fatal("pruner dropped chains pinned by a live snapshot")
	}
	row, ok, err := pinned.Get("accounts", vtxn.Row{vtxn.Int(0)})
	if err != nil || !ok || row[2].AsInt() != 1000 {
		t.Fatalf("pinned snapshot after prune = %v %v %v", row, ok, err)
	}
	if err := pinned.Commit(); err != nil {
		t.Fatal(err)
	}

	// Retired: the chains must drain (the background pruner may need a few
	// passes; drive it directly to stay deterministic).
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().MVCC.Chains > 0 {
		db.PruneVersions()
		if time.Now().After(deadline) {
			t.Fatalf("chains did not drain: %d left", db.Metrics().MVCC.Chains)
		}
	}
	if db.Metrics().MVCC.VersionsPruned == 0 {
		t.Fatal("nothing pruned")
	}
}
