package vtxn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	vtxn "repro"
	"repro/internal/fault"
)

// createDeferredTotals defines a deferred aggregate view over accounts.
func createDeferredTotals(t *testing.T, db *vtxn.DB, name string) {
	t.Helper()
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name: name, Kind: vtxn.ViewAggregate,
		Source:   "accounts",
		GroupBy:  []string{"branch"},
		Aggs:     []vtxn.AggSpec{vtxn.CountRows(), vtxn.Sum("balance")},
		Strategy: vtxn.StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecordLinksDeferredMaintenance is the tracing tentpole's unit
// acceptance: one committing transaction's causal span crosses the async
// deferred-maintenance boundary — the commit's deferred-publish resolves to
// the transaction's span, and both the applier's fold and the watermark
// advance that made the commit visible carry that span in their multi-parent
// spans list.
func TestFlightRecordLinksDeferredMaintenance(t *testing.T) {
	db := openDB(t)
	setupPublic(t, db)
	createDeferredTotals(t, db, "branch_totals_deferred")
	seedAccounts(t, db, 4)

	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(777)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "branch_totals_deferred", tx.CommitTS()); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		Span     uint64   `json:"span"`
		Spans    []uint64 `json:"spans"`
		Type     string   `json:"type"`
		Txn      uint64   `json:"txn"`
		Resource string   `json:"resource"`
	}
	var jsonl bytes.Buffer
	if err := db.WriteFlightRecordJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	txnID := uint64(tx.ID())
	var commitSpan uint64
	var publish, apply, advance *rec
	sc := bufio.NewScanner(&jsonl)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("JSONL line does not parse: %v: %s", err, sc.Text())
		}
		switch r.Type {
		case "tx-begin":
			if r.Txn == txnID {
				commitSpan = r.Span
			}
		case "deferred-publish":
			if r.Txn == txnID {
				cp := r
				publish = &cp
			}
		case "deferred-apply", "watermark-advance":
			if r.Resource != "branch_totals_deferred" {
				continue
			}
			for _, s := range r.Spans {
				if commitSpan != 0 && s == commitSpan {
					cp := r
					if r.Type == "deferred-apply" {
						apply = &cp
					} else {
						advance = &cp
					}
				}
			}
		}
	}
	if commitSpan == 0 {
		t.Fatal("committing transaction has no tx-begin span in the flight record")
	}
	if publish == nil {
		t.Fatalf("no deferred-publish event for txn %d", txnID)
	}
	if publish.Span != commitSpan {
		t.Fatalf("deferred-publish span %d != commit span %d — the publish is not causally linked", publish.Span, commitSpan)
	}
	if apply == nil {
		t.Fatal("no deferred-apply event carries the originating commit's span")
	}
	if advance == nil {
		t.Fatal("no watermark-advance event carries the originating commit's span")
	}

	// The freshness section saw the commit become visible: the deferred view
	// has at least one commit-to-visible sample, and — quiesced — no staleness.
	m := db.Metrics()
	var found bool
	for _, v := range m.Freshness.Views {
		if v.View != "branch_totals_deferred" {
			continue
		}
		found = true
		if v.Strategy != "deferred" {
			t.Fatalf("freshness strategy = %q, want deferred", v.Strategy)
		}
		if v.CommitToVisible.Count == 0 {
			t.Fatal("deferred view has no commit-to-visible samples after a fold")
		}
	}
	if !found {
		t.Fatalf("freshness section missing the deferred view: %+v", m.Freshness.Views)
	}
	// The escrow view observed the commit path too.
	for _, v := range m.Freshness.Views {
		if v.View == "branch_totals" && v.CommitToVisible.Count == 0 {
			t.Fatal("escrow view has no commit-path freshness samples")
		}
	}

	// The timeline's span summary names the view the span became visible in.
	var timeline bytes.Buffer
	if err := db.DumpFlightRecord(&timeline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(timeline.String(), "visible in: branch_totals_deferred") {
		t.Fatalf("span summary does not name the view the commit became visible in:\n%s", timeline.String())
	}
}

// delayHooks sleeps at the deferred-apply fault point, slowing the applier
// without failing it — the freshness-SLO watchdog's test harness.
type delayHooks struct {
	mu    sync.Mutex
	delay time.Duration
}

func (h *delayHooks) SetDelay(d time.Duration) {
	h.mu.Lock()
	h.delay = d
	h.mu.Unlock()
}

func (h *delayHooks) Hit(p fault.Point) error {
	if p != fault.PointDeferredApply {
		return nil
	}
	h.mu.Lock()
	d := h.delay
	h.mu.Unlock()
	time.Sleep(d)
	return nil
}

// TestFreshnessSLOWatchdog injects an applier delay and asserts the watchdog
// fires the freshness-slo signature naming the lagging view, counts the
// breach, and auto-dumps the flight record.
func TestFreshnessSLOWatchdog(t *testing.T) {
	hooks := &delayHooks{}
	sink := &lockedBuffer{}
	tracer := &recordingTracer{}
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{
		Hooks:            hooks,
		Tracer:           tracer,
		FlightSink:       sink,
		Watchdog:         true,
		WatchdogInterval: 10 * time.Millisecond,
		FreshnessSLO:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	createDeferredTotals(t, db, "lagging_totals")
	seedAccounts(t, db, 4)

	// Stall the applier, then keep publishing: the view's staleness clock
	// (oldest unapplied publish) grows past the 50ms SLO while the watchdog
	// polls every 10ms.
	hooks.SetDelay(150 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	var fired *vtxn.TraceEvent
	for fired == nil && time.Now().Before(deadline) {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		for _, e := range tracer.snapshot() {
			if e.Type == vtxn.TraceStall && e.Phase == "freshness-slo" {
				cp := e
				fired = &cp
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	hooks.SetDelay(0)
	if fired == nil {
		t.Fatal("watchdog never fired the freshness-slo signature under an applier delay")
	}
	if !strings.Contains(fired.Resource, "lagging_totals") {
		t.Fatalf("freshness-slo detection does not name the lagging view: %q", fired.Resource)
	}
	if fired.Dur < 50*time.Millisecond {
		t.Fatalf("detection age %s below the 50ms SLO", fired.Dur)
	}
	if m := db.Metrics(); m.Watchdog.FreshnessBreaches == 0 {
		t.Fatalf("freshness breach not counted: %+v", m.Watchdog)
	}
	if !strings.Contains(sink.String(), "watchdog stall: freshness-slo") {
		t.Fatalf("no flight-record dump for the SLO breach; sink: %q", sink.String())
	}
}

// TestDebugFreshnessEndpoint pins the /debug/freshness JSON endpoint: the
// per-view freshness section, including the configured SLO.
func TestDebugFreshnessEndpoint(t *testing.T) {
	db, err := vtxn.Open(t.TempDir(), vtxn.Options{FreshnessSLO: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setupPublic(t, db)
	seedAccounts(t, db, 2)

	srv := httptest.NewServer(vtxn.MetricsHandler(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/freshness")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got struct {
		SLONs int64 `json:"slo_ns"`
		Views []struct {
			View        string `json:"view"`
			Strategy    string `json:"strategy"`
			StalenessNs int64  `json:"staleness_ns"`
		} `json:"views"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.SLONs != int64(time.Second) {
		t.Fatalf("slo_ns = %d, want %d", got.SLONs, int64(time.Second))
	}
	var names []string
	for _, v := range got.Views {
		names = append(names, v.View)
	}
	if len(names) == 0 || names[0] != "branch_totals" {
		t.Fatalf("freshness views = %v, want branch_totals first", names)
	}
}
