// Package vtxn is an embedded transactional storage engine with indexed
// (materialized) views maintained immediately inside user transactions — a
// from-scratch reproduction of Graefe & Zwilling, "Transaction support for
// indexed views" (SIGMOD 2004).
//
// The engine provides:
//
//   - base tables stored as B-trees, with secondary indexes;
//   - indexed views — projection/join views and GROUP BY aggregate views —
//     kept exactly consistent with their base tables at every commit;
//   - the paper's escrow ("IncDec") locking protocol for aggregate views:
//     concurrent transactions update the same SUM/COUNT view row without
//     blocking each other, with commit-time folds and logical undo;
//   - ghost records managed by system transactions for group creation and
//     removal, cleaned asynchronously;
//   - a write-ahead log with group commit, snapshot checkpoints, and
//     ARIES-style crash recovery (redo + compensated logical undo);
//   - lock-based isolation levels (ReadCommitted, RepeatableRead,
//     Serializable) with deadlock detection and lock escalation;
//   - multi-version Snapshot isolation: readers pin a read timestamp at
//     BeginTx and resolve rows against short version chains with zero
//     lock-manager traffic, never blocking (or blocked by) escrow writers.
//     TxOptions.ReadOnly selects the fully log- and lock-free read path;
//   - a deferred view-maintenance tier (StrategyDeferred): commits publish
//     fold deltas to a background applier that batches, coalesces, and folds
//     them moments later, keeping writers entirely off the view. Each
//     deferred view carries an applied watermark (DB.ViewWatermark);
//     DB.WaitForViewWatermark(ctx, view, tx.CommitTS()) is the
//     read-your-writes barrier.
//
// Quickstart — definitions use the named-column style: name the source
// relation and reference its columns by name; the catalog resolves them at
// CREATE VIEW time:
//
//	db, err := vtxn.Open(dir, vtxn.Options{})
//	...
//	db.CreateTable("accounts", []vtxn.Column{
//	    {Name: "id", Kind: vtxn.KindInt64},
//	    {Name: "branch", Kind: vtxn.KindInt64},
//	    {Name: "balance", Kind: vtxn.KindInt64},
//	}, []int{0})
//	db.CreateIndexedView(vtxn.ViewDef{
//	    Name: "branch_totals", Kind: vtxn.ViewAggregate,
//	    Source:  "accounts",
//	    GroupBy: []string{"branch"},
//	    Aggs:    []vtxn.AggSpec{vtxn.CountRows(), vtxn.Sum("balance")},
//	})
//	tx, _ := db.BeginTx(ctx, vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
//	tx.Insert("accounts", vtxn.Row{vtxn.Int(1), vtxn.Int(7), vtxn.Int(100)})
//	tx.Commit()
//
// Views can also stack: a ViewDef whose Source names another aggregate view
// forms a dependency DAG maintained in topological order, with at most one
// fold per (view,group) per transaction regardless of how many base-row
// changes funnel through a shared ancestor:
//
//	db.CreateIndexedView(vtxn.ViewDef{
//	    Name: "region_totals", Kind: vtxn.ViewAggregate,
//	    Source:  "branch_totals",
//	    GroupBy: []string{"region"},
//	    Aggs:    []vtxn.AggSpec{vtxn.Sum("sum_balance")},
//	})
//
// (Aggregate output columns are named — Sum("balance") publishes
// "sum_balance" unless AggSpec.Name overrides it.) The deprecated positional
// fields (GroupByCols, ProjectCols, vtxn.Col) still work for flat views.
//
// Observability: DB.Metrics() returns a structured snapshot of every engine
// counter and latency summary, MetricsHandler serves the same data as
// Prometheus text (plus net/http/pprof under /debug/pprof/), and
// Options.Tracer streams structured engine events (lock waits, folds, group
// commits) to a hook such as NewSlowLogger.
//
// Online verification: a background scrubber continuously re-checks every
// view against a recompute over its source at MVCC snapshot timestamps —
// lock-free, paced by Options.ScrubRowBudget, one group-range slice per
// Options.ScrubInterval. A confirmed divergence emits TraceScrubDivergence
// naming (view, group, expected, actual), auto-dumps the flight record, and
// trips the watchdog's scrub-divergence signature; DB.ScrubNow forces an
// unpaced full pass on demand. DB.CheckConsistency remains the offline,
// quiescent twin (CheckConsistencyCtx adds per-view progress callbacks); both
// share one recompute/compare core.
//
// Forensics: an always-on flight recorder keeps the most recent engine
// events in a bounded ring, each stamped with a sequence number, wall
// timestamp, and causal span ID tying a transaction's begin, lock waits,
// folds, group commit, and end together. DB.DumpFlightRecord renders the
// history as a human-readable timeline, DB.WriteFlightRecordJSONL as JSON
// Lines; Options.FlightSink receives an automatic dump the moment a
// deadlock, lock timeout, or watchdog-detected stall occurs. Options.
// Watchdog starts a background stall detector (WAL flush not advancing,
// lock-shard convoy, escrow fold backlog, ghost-cleaner starvation) that
// reports via EventStall trace events and the watchdog metrics section.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
// evaluation.
package vtxn

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Core engine types.
type (
	// DB is a database instance. Open one with Open.
	DB = core.DB
	// Tx is a transaction handle (not safe for concurrent goroutines).
	Tx = core.Tx
	// Options configure Open.
	Options = core.Options
	// Stats are cumulative engine counters (DB.Stats).
	Stats = core.Stats
	// ViewRow is one scanned view row: key columns plus results.
	ViewRow = core.ViewRow
	// Savepoint marks a statement-level rollback point (Tx.Savepoint /
	// Tx.RollbackTo).
	Savepoint = core.Savepoint
	// ViewInfo describes a view's maintenance plan (DB.DescribeView).
	ViewInfo = core.ViewInfo
	// TxOptions configure one transaction started with DB.BeginTx.
	TxOptions = core.TxOptions
	// CheckProgress is one per-view progress report delivered by
	// DB.CheckConsistencyCtx after each view verifies clean.
	CheckProgress = core.CheckProgress
)

// Observability types (see the metrics package and DESIGN.md §7).
type (
	// MetricsSnapshot is the structured result of DB.Metrics(): every engine
	// counter and latency summary at one instant, with a JSON-stable schema.
	MetricsSnapshot = metrics.Snapshot
	// Tracer receives engine trace events when set as Options.Tracer.
	// Implementations must be safe for concurrent use and return quickly.
	Tracer = metrics.Tracer
	// TraceEvent is one engine trace event delivered to a Tracer.
	TraceEvent = metrics.Event
	// TraceEventType identifies a TraceEvent's kind.
	TraceEventType = metrics.EventType
)

// Trace event types.
const (
	TraceTxBegin     = metrics.EventTxBegin
	TraceTxEnd       = metrics.EventTxEnd
	TraceLockWait    = metrics.EventLockWait
	TraceFold        = metrics.EventFold
	TraceGroupCommit = metrics.EventGroupCommit
	TraceRecovery    = metrics.EventRecovery
	TraceGhostClean  = metrics.EventGhostClean
	TraceStall       = metrics.EventStall
	// TraceSnapshotBegin marks a snapshot transaction pinning its read
	// timestamp; TraceMVCCPrune marks a version-chain prune pass.
	TraceSnapshotBegin = metrics.EventSnapshotBegin
	TraceMVCCPrune     = metrics.EventMVCCPrune
	// TraceDeferredApply marks the deferred-view applier folding one round of
	// coalesced deltas into a view; TraceDeferredPublish a commit handing its
	// deferred deltas to the applier; TraceWatermarkAdvance a view's applied
	// watermark advancing after a fold (stamped with the originating commits'
	// spans — the end of the commit→publish→fold→visible causal chain).
	TraceDeferredApply    = metrics.EventDeferredApply
	TraceDeferredPublish  = metrics.EventDeferredPublish
	TraceWatermarkAdvance = metrics.EventWatermarkAdvance
	// TraceScrubDivergence marks the online scrubber confirming a stored view
	// row that disagrees with a recompute over its source — a broken
	// invariant, naming (view, group, expected, actual).
	TraceScrubDivergence = metrics.EventScrubDivergence
)

// NewSlowLogger returns a Tracer that logs events at or above threshold —
// a slow-transaction/lock-wait log. Use it as Options.Tracer.
var NewSlowLogger = metrics.NewSlowLogger

// MetricsHandler returns an http.Handler serving db's metrics in Prometheus
// text exposition format (plain net/http; mount it wherever you like):
//
//	http.Handle("/metrics", vtxn.MetricsHandler(db))
//
// The handler is a mux: the root path serves the metrics text, /debug/pprof/
// serves the standard net/http/pprof profiles (CPU profiles attribute commit
// time to transactions when Options.ProfileLabels is on), /debug/flightrec
// streams the flight record as JSONL, /debug/freshness serves the per-view
// freshness section (staleness gauges and commit-to-visible latency
// summaries) as JSON, and /debug/scrub serves the online scrubber's section
// (coverage, pace, divergences) as JSON.
func MetricsHandler(db *DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := db.WriteFlightRecordJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/debug/freshness", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(db.Metrics().Freshness); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/scrub", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(db.Metrics().Scrub); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/", metrics.Handler(db.Metrics))
	return mux
}

// Schema types.
type (
	// Column is one typed table column.
	Column = catalog.Column
	// ViewDef defines an indexed view (see catalog.View).
	ViewDef = catalog.View
	// Strategy selects a view's maintenance protocol.
	Strategy = catalog.Strategy
	// ViewKind distinguishes projection from aggregate views.
	ViewKind = catalog.ViewKind
)

// Value types.
type (
	// Value is a typed column value.
	Value = record.Value
	// Row is a tuple of values.
	Row = record.Row
	// Kind identifies a value's type.
	Kind = record.Kind
)

// Expression and aggregate types.
type (
	// Expr is a scalar expression over a source row.
	Expr = expr.Expr
	// AggSpec is one aggregate column of a view.
	AggSpec = expr.AggSpec
	// AggFunc identifies an aggregate function.
	AggFunc = expr.AggFunc
)

// IsolationLevel selects a transaction's isolation.
type IsolationLevel = txn.Level

// SyncMode selects commit durability.
type SyncMode = wal.SyncMode

// Value kinds.
const (
	KindNull    = record.KindNull
	KindBool    = record.KindBool
	KindInt64   = record.KindInt64
	KindFloat64 = record.KindFloat64
	KindString  = record.KindString
	KindBytes   = record.KindBytes
)

// View kinds.
const (
	ViewProjection = catalog.ViewProjection
	ViewAggregate  = catalog.ViewAggregate
)

// Maintenance strategies.
const (
	// StrategyEscrow is the paper's protocol: E locks, commit-time folds,
	// ghost rows via system transactions. The default.
	StrategyEscrow = catalog.StrategyEscrow
	// StrategyXLock is the conventional baseline: transaction-duration X
	// locks on view rows.
	StrategyXLock = catalog.StrategyXLock
	// StrategyDeferred keeps maintenance out of user transactions: a
	// background applier folds committed deltas into the view moments after
	// commit (bounded staleness). Requires a pure commutative aggregate view
	// (no MIN/MAX). Use DB.WaitForViewWatermark with Tx.CommitTS for
	// read-your-writes; DB.RefreshView still forces convergence on demand.
	StrategyDeferred = catalog.StrategyDeferred
)

// Isolation levels.
const (
	ReadCommitted  = txn.ReadCommitted
	RepeatableRead = txn.RepeatableRead
	Serializable   = txn.Serializable
	// Snapshot reads a transaction-consistent snapshot pinned at BeginTx,
	// resolved from MVCC version chains without lock-manager traffic. Writes
	// still take ordinary locks (no write-skew detection); combine with
	// TxOptions.ReadOnly for the log-free pure-read fast path.
	Snapshot = txn.Snapshot
)

// Aggregate functions.
const (
	AggCountRows = expr.AggCountRows
	AggCount     = expr.AggCount
	AggSum       = expr.AggSum
	AggAvg       = expr.AggAvg
	AggMin       = expr.AggMin
	AggMax       = expr.AggMax
)

// Durability modes.
const (
	// SyncNone flushes commits to the OS without fsync (default).
	SyncNone = wal.SyncNone
	// SyncData fsyncs every group commit.
	SyncData = wal.SyncData
)

// Errors (see the core package for semantics). Lock errors wrap the
// ErrDeadlock / ErrLockTimeout sentinels with the requesting transaction,
// mode, and resource, so errors.Is works through the whole chain.
var (
	ErrClosed         = core.ErrClosed
	ErrTxnDone        = core.ErrTxnDone
	ErrDuplicateKey   = core.ErrDuplicateKey
	ErrNotFound       = core.ErrNotFound
	ErrSchema         = core.ErrSchema
	ErrDeadlock       = core.ErrDeadlock
	ErrLockTimeout    = core.ErrLockTimeout
	ErrFlightDisabled = core.ErrFlightDisabled
	// ErrReadOnly rejects writes in a TxOptions.ReadOnly transaction;
	// ErrSnapshotOnly rejects TxOptions.ReadOnly at any isolation level
	// other than Snapshot.
	ErrReadOnly     = core.ErrReadOnly
	ErrSnapshotOnly = core.ErrSnapshotOnly
	// ErrInvalidView is the root sentinel wrapped by every
	// CreateIndexedView/DropView/RefreshView validation failure; the wrapping
	// error names the offending view and column. ErrViewInUse rejects dropping
	// a view while other views are defined over it.
	ErrInvalidView = core.ErrInvalidView
	ErrViewInUse   = core.ErrViewInUse
	// ErrViewWatermarkDropped fails a DB.WaitForViewWatermark whose view was
	// dropped (before or during the wait) — the watermark can never reach the
	// target, so the waiter errors instead of hanging.
	ErrViewWatermarkDropped = core.ErrViewWatermarkDropped
)

// Open recovers (or creates) the database at path.
func Open(path string, opts Options) (*DB, error) { return core.Open(path, opts) }

// Value constructors.

// Null returns the NULL value.
func Null() Value { return record.Null() }

// Bool returns a BOOL value.
func Bool(v bool) Value { return record.Bool(v) }

// Int returns a BIGINT value.
func Int(v int64) Value { return record.Int(v) }

// Float returns a DOUBLE value.
func Float(v float64) Value { return record.Float(v) }

// Str returns a VARCHAR value.
func Str(v string) Value { return record.Str(v) }

// Bytes returns a VARBINARY value (the slice is not copied).
func Bytes(v []byte) Value { return record.Bytes(v) }

// Expression constructors (see the expr package for semantics).

// Col references column idx of the view's source row.
//
// Deprecated: prefer NamedCol; the catalog resolves names against the source
// schema at CREATE VIEW time.
func Col(idx int) Expr { return expr.Col(idx) }

// NamedCol references a source column by name; the catalog resolves it when
// the view is created.
func NamedCol(name string) Expr { return expr.NamedCol(name) }

// Aggregate constructors for the named definition style. The output column
// name defaults to "<func>_<col>" ("sum_balance"); set AggSpec.Name to
// override it — views stacked on this one reference aggregates by that name.

// CountRows is COUNT(*); its output column is named "count".
func CountRows() AggSpec { return AggSpec{Func: expr.AggCountRows} }

// Count is COUNT(col): non-NULL values only.
func Count(col string) AggSpec { return AggSpec{Func: expr.AggCount, Arg: expr.NamedCol(col)} }

// Sum is SUM(col).
func Sum(col string) AggSpec { return AggSpec{Func: expr.AggSum, Arg: expr.NamedCol(col)} }

// Avg is AVG(col), maintained as a (count, sum) pair so it escrow-folds.
func Avg(col string) AggSpec { return AggSpec{Func: expr.AggAvg, Arg: expr.NamedCol(col)} }

// Min is MIN(col). Not escrow-able: maintenance falls back to X locks.
func Min(col string) AggSpec { return AggSpec{Func: expr.AggMin, Arg: expr.NamedCol(col)} }

// Max is MAX(col). Not escrow-able: maintenance falls back to X locks.
func Max(col string) AggSpec { return AggSpec{Func: expr.AggMax, Arg: expr.NamedCol(col)} }

// Const returns a literal expression.
func Const(v Value) Expr { return expr.Const(v) }

// ConstInt returns a BIGINT literal.
func ConstInt(v int64) Expr { return expr.ConstInt(v) }

// ConstFloat returns a DOUBLE literal.
func ConstFloat(v float64) Expr { return expr.ConstFloat(v) }

// ConstStr returns a VARCHAR literal.
func ConstStr(v string) Expr { return expr.ConstStr(v) }

// Arithmetic over numeric expressions (Add also concatenates strings).
func Add(l, r Expr) Expr { return expr.Add(l, r) }
func Sub(l, r Expr) Expr { return expr.Sub(l, r) }
func Mul(l, r Expr) Expr { return expr.Mul(l, r) }
func Div(l, r Expr) Expr { return expr.Div(l, r) }

// Comparisons.
func Eq(l, r Expr) Expr { return expr.Eq(l, r) }
func Ne(l, r Expr) Expr { return expr.Ne(l, r) }
func Lt(l, r Expr) Expr { return expr.Lt(l, r) }
func Le(l, r Expr) Expr { return expr.Le(l, r) }
func Gt(l, r Expr) Expr { return expr.Gt(l, r) }
func Ge(l, r Expr) Expr { return expr.Ge(l, r) }

// Boolean connectives.
func And(l, r Expr) Expr { return expr.And(l, r) }
func Or(l, r Expr) Expr  { return expr.Or(l, r) }
func Not(x Expr) Expr    { return expr.Not(x) }

// IsNull tests for NULL.
func IsNull(x Expr) Expr { return expr.IsNull(x) }
