// Banking: the paper's canonical hot-spot scenario end to end.
//
// A TPC-B-style accounts table carries a branch-totals indexed view. Many
// concurrent tellers hammer a handful of branches; under escrow locking they
// commit in parallel, and the demo then crashes the process image
// mid-workload and shows ARIES-style recovery restoring an exactly
// consistent view.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	vtxn "repro"
)

const (
	accounts = 1000
	branches = 4
	tellers  = 8
	deposits = 300 // per teller
)

func main() {
	dir, err := os.MkdirTemp("", "vtxn-banking-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db := setup(dir)

	fmt.Printf("phase 1: %d tellers × %d deposits on %d hot branches (escrow locking)\n",
		tellers, deposits, branches)
	start := time.Now()
	runTellers(db)
	elapsed := time.Since(start)
	st := db.Stats()
	fmt.Printf("  %d commits in %v (%.0f tx/s), %d escrow folds, 0 blocked writers by design\n",
		st.Commits, elapsed.Round(time.Millisecond),
		float64(st.Commits)/elapsed.Seconds(), st.Folds)
	printTotals(db)

	// Leave an uncommitted transaction hanging and crash.
	fmt.Println("\nphase 2: crash with one transaction in flight...")
	loser, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	loser.Insert("accounts", vtxn.Row{vtxn.Int(999_999), vtxn.Int(0), vtxn.Int(1_000_000)})
	db.Crash(true) // like a kill -9: no clean shutdown

	start = time.Now()
	db2, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	sum := db2.RecoverySummary()
	fmt.Printf("  recovery in %v: %d records replayed, %d loser transaction(s) undone\n",
		time.Since(start).Round(time.Millisecond), sum.Replayed, sum.Losers)

	if err := db2.CheckConsistency(); err != nil {
		log.Fatalf("POST-RECOVERY INCONSISTENCY: %v", err)
	}
	fmt.Println("  post-recovery consistency check: view == recompute-from-base ✔")
	printTotals(db2)
}

func setup(dir string) *vtxn.DB {
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyEscrow,
	}); err != nil {
		log.Fatal(err)
	}
	tx, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	for i := 0; i < accounts; i++ {
		row := vtxn.Row{vtxn.Int(int64(i)), vtxn.Int(int64(i % branches)), vtxn.Int(100)}
		if err := tx.Insert("accounts", row); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	return db
}

func runTellers(db *vtxn.DB) {
	var wg sync.WaitGroup
	for tlr := 0; tlr < tellers; tlr++ {
		wg.Add(1)
		go func(tlr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tlr)))
			for i := 0; i < deposits; i++ {
				tx, err := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
				if err != nil {
					log.Fatal(err)
				}
				a := int64(rng.Intn(accounts))
				row, ok, err := tx.Get("accounts", vtxn.Row{vtxn.Int(a)})
				if err != nil || !ok {
					tx.Rollback()
					continue
				}
				if err := tx.Update("accounts", vtxn.Row{vtxn.Int(a)},
					map[int]vtxn.Value{2: vtxn.Int(row[2].AsInt() + 1)}); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					log.Fatal(err)
				}
			}
		}(tlr)
	}
	wg.Wait()
}

func printTotals(db *vtxn.DB) {
	tx, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	defer tx.Commit()
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  branch  accounts  total balance")
	for _, r := range rows {
		fmt.Printf("  %6d  %8d  %13d\n",
			r.Key[0].AsInt(), r.Result[0].AsInt(), r.Result[1].AsInt())
	}
}
