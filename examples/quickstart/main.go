// Quickstart: create a table and an escrow-maintained aggregate indexed
// view, run a few transactions, and read the view — the smallest end-to-end
// tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	vtxn "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "vtxn-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schema: accounts(id, branch, balance).
	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}

	// The indexed view: SELECT branch, COUNT(*), SUM(balance)
	//                   FROM accounts GROUP BY branch
	// maintained *inside* every transaction, with escrow locking so
	// concurrent updates to the same branch never block each other.
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1}, // branch
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)}, // SUM(balance)
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Load some accounts in one transaction.
	tx, err := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		row := vtxn.Row{vtxn.Int(i), vtxn.Int(i % 2), vtxn.Int(i * 100)}
		if err := tx.Insert("accounts", row); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// A transfer between branches: the view follows exactly.
	tx, _ = db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(1)},
		map[int]vtxn.Value{2: vtxn.Int(50)}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// A rolled-back transaction leaves no trace in the view.
	tx, _ = db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(99), vtxn.Int(0), vtxn.Int(1_000_000)}); err != nil {
		log.Fatal(err)
	}
	tx.Rollback()

	// Read the view.
	tx, _ = db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("branch  count  sum(balance)")
	for _, r := range rows {
		fmt.Printf("%6d  %5d  %12d\n",
			r.Key[0].AsInt(), r.Result[0].AsInt(), r.Result[1].AsInt())
	}
	tx.Commit()

	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsistency check: views exactly match recompute-from-base ✔")
}
