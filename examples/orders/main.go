// Orders: escrow vs X-lock maintenance head to head, plus a join view.
//
// An order-entry workload with Zipf-skewed product popularity drives a
// sales-by-product aggregate view. The same workload runs twice — once with
// the paper's escrow protocol and once with conventional X locks — and
// prints the throughput gap. A projection join view (order × product)
// demonstrates join maintenance along the way.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	vtxn "repro"
)

const (
	products  = 8 // few products = hot view rows
	clients   = 8
	perClient = 400
	skew      = 1.3
	// think simulates the client work of a multi-statement transaction
	// between the order insert and the commit; transaction-duration view
	// locks (the X-lock baseline) are held across it.
	think = 300 * time.Microsecond
)

func main() {
	fmt.Printf("order entry: %d clients × %d orders, %d products, zipf %.1f\n\n",
		clients, perClient, products, skew)
	escrowTPS := run(vtxn.StrategyEscrow, true)
	xlockTPS := run(vtxn.StrategyXLock, false)
	fmt.Printf("\nescrow/xlock throughput ratio: %.1fx\n", escrowTPS/xlockTPS)
	fmt.Println("(escrow writers share E locks on hot view rows; X locks serialize them)")
}

func run(strategy vtxn.Strategy, withJoinView bool) float64 {
	dir, err := os.MkdirTemp("", "vtxn-orders-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustSetup(db, strategy, withJoinView)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			zipf := rand.NewZipf(rng, skew, 1, products-1)
			next := int64((c + 1) * 1_000_000)
			for i := 0; i < perClient; i++ {
				tx, err := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
				if err != nil {
					log.Fatal(err)
				}
				next++
				row := vtxn.Row{
					vtxn.Int(next),
					vtxn.Int(int64(zipf.Uint64())),
					vtxn.Int(int64(rng.Intn(5) + 1)),
				}
				if err := tx.Insert("orders", row); err != nil {
					tx.Rollback()
					continue
				}
				time.Sleep(think)
				if err := tx.Commit(); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	tps := float64(clients*perClient) / elapsed.Seconds()

	fmt.Printf("strategy %-8s  %6.0f tx/s  (%v total)\n", strategy, tps, elapsed.Round(time.Millisecond))
	tx, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	rows, err := tx.ScanView("sales_by_product")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  product  orders  total qty")
	for _, r := range rows {
		fmt.Printf("  %7d  %6d  %9d\n",
			r.Key[0].AsInt(), r.Result[0].AsInt(), r.Result[1].AsInt())
	}
	if withJoinView {
		details, err := tx.ScanView("order_details")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  join view order_details: %d rows (order id, product name, qty, price), e.g. %v\n",
			len(details), details[0].Result)
	}
	tx.Commit()
	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	return tps
}

func mustSetup(db *vtxn.DB, strategy vtxn.Strategy, withJoinView bool) {
	if err := db.CreateTable("products", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "name", Kind: vtxn.KindString},
		{Name: "price", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("orders", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "product", Kind: vtxn.KindInt64},
		{Name: "qty", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "sales_by_product",
		Kind:        vtxn.ViewAggregate,
		Left:        "orders",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: strategy,
	}); err != nil {
		log.Fatal(err)
	}
	if withJoinView {
		// orders ⋈ products on orders.product = products.id; the source row
		// is [o.id, o.product, o.qty, p.id, p.name, p.price].
		if err := db.CreateIndexedView(vtxn.ViewDef{
			Name:         "order_details",
			Kind:         vtxn.ViewProjection,
			Left:         "orders",
			Right:        "products",
			JoinLeftCol:  1,
			JoinRightCol: 3,
			ProjectCols:  []int{0, 4, 2, 5},
		}); err != nil {
			log.Fatal(err)
		}
	}
	tx, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	for p := 0; p < products; p++ {
		row := vtxn.Row{vtxn.Int(int64(p)), vtxn.Str(fmt.Sprintf("product-%d", p)), vtxn.Int(int64(10 + p))}
		if err := tx.Insert("products", row); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
}
