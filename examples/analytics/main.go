// Analytics: immediate vs deferred view maintenance for a dashboard.
//
// An event stream feeds a per-kind statistics view (COUNT, SUM, AVG). The
// demo maintains one copy immediately (escrow) and one deferred copy kept
// bounded-stale by the background applier, and shows the trade-off the
// paper's technique resolves: the immediate view answers dashboard queries
// exactly at any moment with microsecond lookups; the deferred copy keeps
// writers entirely off the view and converges milliseconds behind (wait on
// its watermark for read-your-writes) — and the no-view plan rescans the
// whole table per query.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	vtxn "repro"
)

const events = 20000

func main() {
	dir, err := os.MkdirTemp("", "vtxn-analytics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustSetup(db)

	// Ingest the event stream.
	fmt.Printf("ingesting %d events...\n", events)
	rng := rand.New(rand.NewSource(1))
	kinds := []string{"click", "view", "purchase", "refund"}
	start := time.Now()
	var lastTS uint64
	for lo := 0; lo < events; lo += 500 {
		tx, err := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
		if err != nil {
			log.Fatal(err)
		}
		for i := lo; i < lo+500 && i < events; i++ {
			row := vtxn.Row{
				vtxn.Int(int64(i)),
				vtxn.Str(kinds[rng.Intn(len(kinds))]),
				vtxn.Int(int64(rng.Intn(500))),
			}
			if err := tx.Insert("events", row); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		lastTS = tx.CommitTS()
	}
	fmt.Printf("  done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// 1. The immediate view answers instantly and exactly.
	tx, _ := db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	t0 := time.Now()
	rows, err := tx.ScanView("stats_live")
	if err != nil {
		log.Fatal(err)
	}
	liveLat := time.Since(t0)
	fmt.Println("immediate (escrow) view — exact at every commit:")
	printStats(rows)

	tx.Commit()

	// 2. The deferred view converges in the background: wait for its
	// watermark to pass the last ingest commit and it matches the immediate
	// copy exactly — read-your-writes without ever locking the view against
	// the writers.
	t0 = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "stats_deferred", lastTS); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeferred view caught up %v after the final commit (watermark barrier)\n",
		time.Since(t0).Round(time.Microsecond))
	// A refresh of a caught-up deferred view is a no-op.
	t0 = time.Now()
	changed, err := db.RefreshView("stats_deferred")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh after convergence: %d rows changed in %v\n", changed, time.Since(t0).Round(time.Microsecond))

	// 3. The no-view plan rescans the base table.
	tx, _ = db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	t0 = time.Now()
	scan, err := tx.AggregateNoView("events", nil, []int{1}, []vtxn.AggSpec{
		vtxn.CountRows(), vtxn.Sum("amount"), vtxn.Avg("amount"),
	})
	scanLat := time.Since(t0)
	tx.Commit()

	fmt.Printf("\nquery latency: view lookup %v vs base-table scan %v (%0.fx)\n",
		liveLat.Round(time.Microsecond), scanLat.Round(time.Microsecond),
		float64(scanLat)/float64(liveLat))
	if len(scan) != len(rows) {
		log.Fatal("scan and view disagree")
	}
	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: immediate view == recompute-from-base ✔")
}

func mustSetup(db *vtxn.DB) {
	if err := db.CreateTable("events", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "kind", Kind: vtxn.KindString},
		{Name: "amount", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		log.Fatal(err)
	}
	aggs := []vtxn.AggSpec{vtxn.CountRows(), vtxn.Sum("amount"), vtxn.Avg("amount")}
	for _, v := range []vtxn.ViewDef{
		{Name: "stats_live", Kind: vtxn.ViewAggregate, Source: "events",
			GroupBy: []string{"kind"}, Aggs: aggs, Strategy: vtxn.StrategyEscrow},
		{Name: "stats_deferred", Kind: vtxn.ViewAggregate, Source: "events",
			GroupBy: []string{"kind"}, Aggs: aggs, Strategy: vtxn.StrategyDeferred},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			log.Fatal(err)
		}
	}
}

func printStats(rows []vtxn.ViewRow) {
	fmt.Println("  kind      events   total     avg")
	for _, r := range rows {
		fmt.Printf("  %-8s  %6d  %7d  %7.1f\n",
			r.Key[0].AsString(), r.Result[0].AsInt(), r.Result[1].AsInt(), r.Result[2].AsFloat())
	}
}
