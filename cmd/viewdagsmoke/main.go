// Command viewdagsmoke is the CI smoke test for view dependency graphs: it
// builds the 3-level rollup chain (order_totals → customer_totals →
// region_totals) in the named-column style, runs sum-preserving writers that
// shift amounts between customers in different regions, and truth-checks the
// cascade end to end, once with the whole chain escrow-maintained and once
// fully deferred:
//
//	(a) every snapshot read of the chain is cross-level consistent — the
//	    grand total agrees at all three levels and the row counts nest
//	    (orders per customer, customers per region), never a torn cascade;
//	(b) commit-time folds coalesce: the cascade.* metrics show stacked folds
//	    and coalesced contributions, and in deferred mode the applier folds
//	    whole components (stacked level folds happen there);
//	(c) at quiesce every level equals a recompute from its source, and a
//	    cascading refresh of the root changes nothing.
//
// Exit status 0 means the view DAG works end to end.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	vtxn "repro"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "viewdagsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	writers      = 4
	items        = 2 * writers // each writer tilts a disjoint pair
	perItem      = 100
	grand        = items * perItem
	regions      = 2
	readers      = 4
	scansPerRead = 150
)

func main() {
	for _, mode := range []vtxn.Strategy{vtxn.StrategyEscrow, vtxn.StrategyDeferred} {
		run(mode)
	}
}

// itemRow builds one order_items row: every item is its own order, and each
// customer lives in region customer%regions forever.
func itemRow(item, amount int64) vtxn.Row {
	return vtxn.Row{
		vtxn.Int(item),
		vtxn.Int(item), // order_id
		vtxn.Int(item), // customer
		vtxn.Str(fmt.Sprintf("region-%d", item%regions)),
		vtxn.Int(amount),
	}
}

func run(mode vtxn.Strategy) {
	dir, err := os.MkdirTemp("", "viewdagsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	db, err := vtxn.Open(dir, vtxn.Options{Watchdog: true})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("order_items", []vtxn.Column{
		{Name: "item", Kind: vtxn.KindInt64},
		{Name: "order_id", Kind: vtxn.KindInt64},
		{Name: "customer", Kind: vtxn.KindInt64},
		{Name: "region", Kind: vtxn.KindString},
		{Name: "amount", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	sum := func(col string, name string) vtxn.AggSpec {
		s := vtxn.Sum(col)
		s.Name = name
		return s
	}
	for _, v := range []vtxn.ViewDef{
		{Name: "order_totals", Kind: vtxn.ViewAggregate, Source: "order_items",
			GroupBy:  []string{"order_id", "customer", "region"},
			Aggs:     []vtxn.AggSpec{sum("amount", "total")},
			Strategy: mode},
		{Name: "customer_totals", Kind: vtxn.ViewAggregate, Source: "order_totals",
			GroupBy:  []string{"customer", "region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: mode},
		{Name: "region_totals", Kind: vtxn.ViewAggregate, Source: "customer_totals",
			GroupBy:  []string{"region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: mode},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			fail("create view %s: %v", v.Name, err)
		}
	}

	// Load: every item its own order and customer, split across regions.
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin load: %v", err)
	}
	for i := int64(0); i < items; i++ {
		if err := tx.Insert("order_items", itemRow(i, perItem)); err != nil {
			fail("load: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("load commit: %v", err)
	}
	if mode == vtxn.StrategyDeferred {
		ctx, cancel := context.WithTimeout(context.Background(), 30_000_000_000)
		defer cancel()
		if err := db.WaitForViewWatermark(ctx, "region_totals", tx.CommitTS()); err != nil {
			fail("watermark wait after load: %v", err)
		}
	}
	checkChain(db, mode, "after load")

	// Churn: writers shift amount between two items owned by different
	// customers in different regions — every commit moves totals across the
	// whole chain but preserves the grand total and all the row counts.
	var stop atomic.Bool
	var commits int64
	var wwg sync.WaitGroup
	for w := int64(0); w < writers; w++ {
		wwg.Add(1)
		go func(w int64) {
			defer wwg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); !stop.Load(); i++ {
				av, bv := int64(perItem-1), int64(perItem+1)
				if i%2 == 1 {
					av, bv = perItem, perItem
				}
				if err := tilt(db, a, b, av, bv); err != nil {
					fail("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; i < scansPerRead; i++ {
				checkChain(db, mode, fmt.Sprintf("reader %d scan %d", r, i))
			}
		}(r)
	}
	rwg.Wait()
	stop.Store(true)
	wwg.Wait()

	// Quiesce: every level equals its recompute, and a cascading refresh of
	// the root is a no-op across the whole subtree.
	if err := db.CheckConsistency(); err != nil {
		fail("%v consistency at quiesce: %v", mode, err)
	}
	n, err := db.RefreshView("order_totals")
	if err != nil {
		fail("cascading refresh: %v", err)
	}
	if n != 0 {
		fail("%v: cascading refresh changed %d rows on a consistent chain", mode, n)
	}

	s := db.Metrics()
	if s.Cascade.Enqueued == 0 || s.Cascade.Coalesced == 0 {
		fail("%v: cascade flow enqueued=%d coalesced=%d", mode, s.Cascade.Enqueued, s.Cascade.Coalesced)
	}
	if s.Cascade.Folds == 0 || len(s.Cascade.LevelFolds) < 3 ||
		s.Cascade.LevelFolds[1] == 0 || s.Cascade.LevelFolds[2] == 0 {
		fail("%v: stacked folds never happened: folds=%d levels=%v", mode, s.Cascade.Folds, s.Cascade.LevelFolds)
	}
	fmt.Printf("viewdagsmoke: OK (%v): %d snapshot chain scans consistent against %d tilting commits; %d contributions enqueued (%d coalesced), %d stacked folds (levels %v)\n",
		mode, readers*scansPerRead, atomic.LoadInt64(&commits),
		s.Cascade.Enqueued, s.Cascade.Coalesced, s.Cascade.Folds, s.Cascade.LevelFolds)
}

// checkChain reads all three levels in one snapshot transaction and asserts
// cross-level agreement: one torn cascade (a parent folded but its dependent
// not, or levels at different timestamps) breaks one of these equalities.
func checkChain(db *vtxn.DB, mode vtxn.Strategy, when string) {
	snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
	if err != nil {
		fail("%s begin: %v", when, err)
	}
	defer snap.Commit()

	l0, err := snap.ScanView("order_totals")
	if err != nil {
		fail("%s scan L0: %v", when, err)
	}
	l1, err := snap.ScanView("customer_totals")
	if err != nil {
		fail("%s scan L1: %v", when, err)
	}
	l2, err := snap.ScanView("region_totals")
	if err != nil {
		fail("%s scan L2: %v", when, err)
	}
	var sum0, sum1, sum2, orders1, customers2 int64
	for _, r := range l0 {
		sum0 += r.Result[0].AsInt()
	}
	for _, r := range l1 {
		orders1 += r.Result[0].AsInt()
		sum1 += r.Result[1].AsInt()
	}
	for _, r := range l2 {
		customers2 += r.Result[0].AsInt()
		sum2 += r.Result[1].AsInt()
	}
	if sum0 != grand || sum1 != grand || sum2 != grand {
		fail("%v %s: torn cascade: totals L0=%d L1=%d L2=%d, want %d",
			mode, when, sum0, sum1, sum2, grand)
	}
	if int64(len(l0)) != items || orders1 != items || int64(len(l1)) != items || customers2 != items {
		fail("%v %s: row counts do not nest: |L0|=%d orders=%d |L1|=%d customers=%d, want %d",
			mode, when, len(l0), orders1, len(l1), customers2, items)
	}
	if int64(len(l2)) != regions {
		fail("%v %s: |L2|=%d, want %d", mode, when, len(l2), regions)
	}
}

// tilt sets the amounts of items a and b in one committed transaction.
func tilt(db *vtxn.DB, a, b, av, bv int64) error {
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{4: vtxn.Int(av)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{4: vtxn.Int(bv)}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}
