// Command deferredsmoke is the CI smoke test for the deferred view-
// maintenance tier: it opens a throwaway database with a deferred aggregate
// view, runs sum-preserving writers against snapshot readers, and
// truth-checks the whole pipeline: (a) a committer's deltas become visible
// exactly once WaitForViewWatermark returns for its commit timestamp
// (read-your-writes, including brand-new groups); (b) the per-view watermark
// only moves forward; (c) every snapshot read of the deferred view is
// transaction-consistent — COUNT equals the account count and SUM equals the
// invariant grand total, never a torn half-transfer; (d) at quiesce the
// applier drains to zero lag and the view equals a recompute from the base
// tables; and (e) the deferred.* metrics record the traffic. Exit status 0
// means the deferred tier works end to end.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	vtxn "repro"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "deferredsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	writers      = 4
	accounts     = 2 * writers // each writer owns a disjoint pair
	perAccount   = 1000
	total        = accounts * perAccount
	readers      = 4
	scansPerRead = 200
	waitTimeout  = 30 * time.Second
)

func main() {
	dir, err := os.MkdirTemp("", "deferredsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	db, err := vtxn.Open(dir, vtxn.Options{Watchdog: true})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyDeferred,
	}); err != nil {
		fail("create view: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), waitTimeout)
	defer cancel()

	// Serial phase: read-your-writes through the watermark barrier, including
	// a group that does not exist yet when the commit returns.
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin load: %v", err)
	}
	for i := int64(0); i < accounts; i++ {
		if err := tx.Insert("accounts", vtxn.Row{
			vtxn.Int(i), vtxn.Int(i % 2), vtxn.Int(perAccount),
		}); err != nil {
			fail("load: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("load commit: %v", err)
	}
	loadTS := tx.CommitTS()
	if loadTS == 0 {
		fail("load commit allocated no timestamp")
	}
	if err := db.WaitForViewWatermark(ctx, "branch_totals", loadTS); err != nil {
		fail("watermark wait after load: %v", err)
	}
	wm0, err := db.ViewWatermark("branch_totals")
	if err != nil {
		fail("view watermark: %v", err)
	}
	if wm0 < loadTS {
		fail("watermark %d below waited-for commit ts %d", wm0, loadTS)
	}
	checkTotals(db, "after load", accounts, total)

	// A brand-new group: the applier must insert the view row, not just fold
	// an existing one.
	tx, err = db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin new group: %v", err)
	}
	if err := tx.Insert("accounts", vtxn.Row{
		vtxn.Int(int64(accounts)), vtxn.Int(99), vtxn.Int(7),
	}); err != nil {
		fail("insert new group: %v", err)
	}
	if err := tx.Commit(); err != nil {
		fail("new group commit: %v", err)
	}
	if err := db.WaitForViewWatermark(ctx, "branch_totals", tx.CommitTS()); err != nil {
		fail("watermark wait for new group: %v", err)
	}
	if count, sum := groupRow(db, 99); count != 1 || sum != 7 {
		fail("new group after wait = %d/%d, want 1/7", count, sum)
	}
	// Remove it again (keeps the grand total invariant for the churn phase).
	tx, err = db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin remove group: %v", err)
	}
	if err := tx.Delete("accounts", vtxn.Row{vtxn.Int(int64(accounts))}); err != nil {
		fail("delete new group: %v", err)
	}
	if err := tx.Commit(); err != nil {
		fail("remove group commit: %v", err)
	}
	if err := db.WaitForViewWatermark(ctx, "branch_totals", tx.CommitTS()); err != nil {
		fail("watermark wait for group removal: %v", err)
	}

	// A canceled context must fail the wait, not hang, for an unreachable
	// timestamp.
	deadCtx, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if err := db.WaitForViewWatermark(deadCtx, "branch_totals", ^uint64(0)); err == nil {
		fail("wait with canceled context returned nil")
	}

	// Concurrent phase: sum-preserving churn against snapshot readers. The
	// applier's folds are committed system transactions stamped at one
	// timestamp, so a snapshot reader sees each fold round all-or-nothing and
	// the invariants hold at every watermark.
	var stop atomic.Bool
	var commits int64
	var wwg sync.WaitGroup
	for w := int64(0); w < writers; w++ {
		wwg.Add(1)
		go func(w int64) {
			defer wwg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); !stop.Load(); i++ {
				av, bv := int64(perAccount-1), int64(perAccount+1)
				if i%2 == 1 {
					av, bv = perAccount, perAccount
				}
				if err := tilt(db, a, b, av, bv); err != nil {
					fail("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}
	var rwg sync.WaitGroup
	var lastWM [readers]uint64
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; i < scansPerRead; i++ {
				wm, err := db.ViewWatermark("branch_totals")
				if err != nil {
					fail("reader %d watermark: %v", r, err)
				}
				if wm < lastWM[r] {
					fail("reader %d: watermark went backwards %d -> %d", r, lastWM[r], wm)
				}
				lastWM[r] = wm
				snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
				if err != nil {
					fail("reader %d begin: %v", r, err)
				}
				rows, err := snap.ScanView("branch_totals")
				if err != nil {
					fail("reader %d scan: %v", r, err)
				}
				var count, sum int64
				for _, vr := range rows {
					count += vr.Result[0].AsInt()
					if !vr.Result[1].IsNull() {
						sum += vr.Result[1].AsInt()
					}
				}
				if count != accounts || sum != total {
					fail("reader %d: torn deferred snapshot count=%d sum=%d, want %d/%d",
						r, count, sum, accounts, total)
				}
				if err := snap.Commit(); err != nil {
					fail("reader %d commit: %v", r, err)
				}
			}
		}(r)
	}
	rwg.Wait()
	stop.Store(true)
	wwg.Wait()

	// Quiesce: the applier must drain to zero lag, and the drained view must
	// equal a recompute from the base tables (CheckConsistency waits for the
	// watermark itself, then verifies).
	if err := db.CheckConsistency(); err != nil {
		fail("consistency at quiesce: %v", err)
	}
	s := db.Metrics()
	if s.Deferred.LagTS != 0 {
		fail("applier lag %d at quiesce", s.Deferred.LagTS)
	}
	if s.Deferred.PendingGroups != 0 {
		fail("%d groups pending at quiesce", s.Deferred.PendingGroups)
	}
	if s.Deferred.StalenessNs != 0 {
		fail("staleness %dns at quiesce", s.Deferred.StalenessNs)
	}
	if s.Deferred.PublishedBatches <= 0 || s.Deferred.PublishedGroups <= 0 {
		fail("publish flow: batches %d, groups %d", s.Deferred.PublishedBatches, s.Deferred.PublishedGroups)
	}
	if s.Deferred.ApplyRounds <= 0 || s.Deferred.GroupsApplied <= 0 {
		fail("apply flow: rounds %d, groups %d", s.Deferred.ApplyRounds, s.Deferred.GroupsApplied)
	}
	if s.Deferred.DeltasIn <= 0 {
		fail("no deltas entered the coalescer")
	}
	if len(s.Deferred.Views) != 1 || s.Deferred.Views[0].View != "branch_totals" {
		fail("deferred view listing = %+v", s.Deferred.Views)
	}
	if s.Deferred.Watermark == 0 {
		fail("watermark never advanced")
	}

	fmt.Printf("deferredsmoke: OK: %d snapshot scans consistent against %d deferred commits; %d batches published, %d groups applied in %d rounds (%d deltas coalesced), lag 0 at quiesce\n",
		readers*scansPerRead, atomic.LoadInt64(&commits), s.Deferred.PublishedBatches,
		s.Deferred.GroupsApplied, s.Deferred.ApplyRounds, s.Deferred.DeltasCoalesced)
}

// groupRow reads one group of the deferred view under snapshot isolation
// (all-or-nothing against applier rounds).
func groupRow(db *vtxn.DB, branch int64) (count, sum int64) {
	snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
	if err != nil {
		fail("groupRow begin: %v", err)
	}
	defer snap.Commit()
	res, ok, err := snap.GetViewRow("branch_totals", vtxn.Row{vtxn.Int(branch)})
	if err != nil {
		fail("groupRow get: %v", err)
	}
	if !ok {
		return 0, 0
	}
	count = res[0].AsInt()
	if !res[1].IsNull() {
		sum = res[1].AsInt()
	}
	return count, sum
}

// checkTotals asserts the whole view sums to the invariant totals.
func checkTotals(db *vtxn.DB, when string, wantCount, wantSum int64) {
	snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
	if err != nil {
		fail("%s begin: %v", when, err)
	}
	defer snap.Commit()
	rows, err := snap.ScanView("branch_totals")
	if err != nil {
		fail("%s scan: %v", when, err)
	}
	var count, sum int64
	for _, vr := range rows {
		count += vr.Result[0].AsInt()
		if !vr.Result[1].IsNull() {
			sum += vr.Result[1].AsInt()
		}
	}
	if count != wantCount || sum != wantSum {
		fail("%s: count=%d sum=%d, want %d/%d", when, count, sum, wantCount, wantSum)
	}
}

// tilt sets the balances of accounts a and b in one committed transaction.
func tilt(db *vtxn.DB, a, b, av, bv int64) error {
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		return err
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{2: vtxn.Int(av)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{2: vtxn.Int(bv)}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}
