package main

import "testing"

func discard(string, ...any) {}

// TestTortureSeeds runs a band of torture episodes end to end: inject, crash,
// recover, verify. Any seed failing here is a real recovery bug.
func TestTortureSeeds(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 6
	}
	for seed := int64(0); seed < n; seed++ {
		res := runSeed(seed, 150, discard)
		if res.err != nil {
			t.Errorf("seed %d (%s): %v", seed, res.schedule, res.err)
		}
	}
}

// TestTortureDeterminism re-runs one seed and checks the episode replays
// identically — the property the "reproduce: -seed N" line depends on.
func TestTortureDeterminism(t *testing.T) {
	a := runSeed(3, 150, discard)
	b := runSeed(3, 150, discard)
	if a.schedule != b.schedule || a.crashed != b.crashed || a.cause != b.cause || a.opsDone != b.opsDone {
		t.Fatalf("seed 3 did not replay deterministically:\n  first:  %+v\n  second: %+v", a, b)
	}
	if a.err != nil {
		t.Errorf("seed 3: %v", a.err)
	}
}
