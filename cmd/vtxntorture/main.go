// Command vtxntorture is the seeded crash-torture harness: each seed derives
// a deterministic fault schedule (torn log writes, failed fsyncs, bit flips,
// crashes at named engine points) and a deterministic single-client workload;
// the run crashes the engine mid-flight, recovers, and asserts that every
// indexed view again equals a recompute from its base tables. A failure
// prints the exact seed, so any bug it finds replays byte-for-byte with
//
//	go run ./cmd/vtxntorture -seed N -v
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/metrics"
)

// slowTracer, when set by -trace-slow, is installed as Options.Tracer on every
// database an episode opens — torture and recovery alike — so recovery phases
// and outlier lock waits are visible while hunting a seed.
var slowTracer metrics.Tracer

func main() {
	seeds := flag.Int("seeds", 25, "number of consecutive seeds to run")
	start := flag.Int64("start", 0, "first seed of the range")
	one := flag.Int64("seed", -1, "run a single seed and exit (overrides -seeds/-start)")
	ops := flag.Int("ops", 400, "workload operations per episode before the planned shutdown")
	verbose := flag.Bool("v", false, "log each seed's schedule, crash, and recovery summary")
	traceSlow := flag.Duration("trace-slow", 0, "log engine trace events slower than this to stderr (0 disables)")
	artifacts := flag.String("artifacts", "torture-artifacts", "write failed episodes' flight-record dumps and replay info under this dir ('' disables)")
	flag.Parse()
	if *traceSlow > 0 {
		slowTracer = metrics.NewSlowLogger(os.Stderr, *traceSlow, "torture ")
	}
	// SIGQUIT dumps the running episode's flight record without stopping the
	// harness.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if db := currentDB.Load(); db != nil {
				db.DumpFlightRecord(os.Stderr)
			}
		}
	}()

	lo, hi := *start, *start+int64(*seeds)
	if *one >= 0 {
		lo, hi = *one, *one+1
		*verbose = true
	}
	logf := func(format string, a ...any) {
		if *verbose {
			fmt.Printf(format+"\n", a...)
		}
	}

	failures := 0
	counts := map[string]int{}
	for seed := lo; seed < hi; seed++ {
		res := runSeed(seed, *ops, logf)
		counts[category(res)]++
		if res.err != nil {
			failures++
			fmt.Printf("FAIL seed=%d (%s): %v\n", seed, res.schedule, res.err)
			if *artifacts != "" {
				if dir, aerr := writeArtifacts(*artifacts, res); aerr != nil {
					fmt.Printf("  (writing artifacts failed: %v)\n", aerr)
				} else {
					fmt.Printf("  artifacts: %s (flightrec.txt, flightrec.jsonl, repro.txt)\n", dir)
				}
			}
			fmt.Printf("  reproduce: go run ./cmd/vtxntorture -seed %d -v\n", seed)
		}
	}
	fmt.Printf("vtxntorture: %d seeds [%d,%d): %d crashed (%d point, %d write, %d fsync), %d clean shutdowns; %d failures\n",
		hi-lo, lo, hi,
		counts["point"]+counts["write"]+counts["fsync"],
		counts["point"], counts["write"], counts["fsync"],
		counts["clean"], failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// category buckets an episode by the fault that ended it.
func category(res result) string {
	switch {
	case !res.crashed:
		return "clean"
	case strings.HasPrefix(res.cause, "point"):
		return "point"
	case strings.HasPrefix(res.cause, "fsync"):
		return "fsync"
	default:
		return "write"
	}
}
