package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// currentDB is the most recently opened engine instance (torture or verify
// phase), for the SIGQUIT dump handler and the failure artifacts writer. The
// flight recorder stays readable after Crash/Close — the history that led to
// the failure is exactly what the artifacts capture.
var currentDB atomic.Pointer[core.DB]

// trackDB records db as the episode's current instance.
func trackDB(db *core.DB) *core.DB {
	currentDB.Store(db)
	return db
}

// writeArtifacts dumps the failed episode's flight record (timeline + JSONL)
// and replay instructions under dir/seed-N, so a red CI torture run is
// diagnosable from the uploaded artifacts alone. Returns the artifact dir.
func writeArtifacts(dir string, res result) (string, error) {
	sub := filepath.Join(dir, fmt.Sprintf("seed-%d", res.seed))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	repro := fmt.Sprintf("seed: %d\nschedule: %s\nerror: %v\nreproduce: go run ./cmd/vtxntorture -seed %d -v\n",
		res.seed, res.schedule, res.err, res.seed)
	if err := os.WriteFile(filepath.Join(sub, "repro.txt"), []byte(repro), 0o644); err != nil {
		return "", err
	}
	if db := currentDB.Load(); db != nil {
		if f, err := os.Create(filepath.Join(sub, "flightrec.txt")); err == nil {
			db.DumpFlightRecord(f)
			f.Close()
		}
		if f, err := os.Create(filepath.Join(sub, "flightrec.jsonl")); err == nil {
			db.WriteFlightRecordJSONL(f)
			f.Close()
		}
	}
	return sub, nil
}

// result summarizes one torture episode.
type result struct {
	seed     int64
	schedule string // the injector's fault schedule, rendered
	crashed  bool   // the scheduled fault fired
	cause    string // what fired ("" for a clean shutdown)
	opsDone  int    // workload ops completed before the crash/shutdown
	err      error  // nil unless the episode found a bug
}

// episode is one seeded crash-recovery run: open a database on a
// fault-injecting filesystem, run a seeded single-client workload until the
// scheduled fault fires (or the op budget runs out), abandon the instance the
// way a dying process would, then reopen on the real filesystem and verify
// that recovery restored the paper's view-consistency invariant.
type episode struct {
	seed int64
	ops  int
	logf func(format string, a ...any)

	inj *fault.Injector
	dir string

	shape    string // "banking" or "orders"
	strategy catalog.Strategy
	syncMode wal.SyncMode
	flush    bool // flush buffered log records at the planned shutdown

	accounts  int
	branches  int
	products  int
	joinView  bool
	customers int
	regions   int

	nextOrder int64
	nextItem  int64
	opsDone   int
}

// runSeed executes one episode. Everything the episode does — the workload
// shape, every row it touches, and the fault schedule — derives from seed, so
// a failure reproduces exactly under the same seed.
func runSeed(seed int64, ops int, logf func(format string, a ...any)) (res result) {
	res.seed = seed
	e := &episode{seed: seed, ops: ops, logf: logf}
	dir, err := os.MkdirTemp("", fmt.Sprintf("vtxntorture-%d-", seed))
	if err != nil {
		res.err = err
		return res
	}
	defer os.RemoveAll(dir)
	e.dir = dir
	e.inj = fault.NewInjector(seed)
	res.schedule = e.inj.Describe()

	if err := e.torture(); err != nil {
		res.err = err
		return res
	}
	res.crashed = e.inj.Crashed()
	res.cause = e.inj.Cause()
	res.opsDone = e.opsDone
	if res.crashed {
		e.logf("seed %d: crashed after %d ops: %s", seed, e.opsDone, res.cause)
	} else {
		e.logf("seed %d: ran %d ops to planned shutdown (flush=%v)", seed, e.opsDone, e.flush)
	}
	res.err = e.verify()
	return res
}

// plan derives the episode's workload shape from the seed. Every field is
// consumed unconditionally so the rng stream stays aligned across shapes.
func (e *episode) plan(rng *rand.Rand) {
	e.shape = "banking"
	switch r := rng.Intn(10); {
	case r >= 8:
		e.shape = "rollup"
	case r >= 5:
		e.shape = "orders"
	}
	e.strategy = catalog.StrategyEscrow
	if rng.Intn(10) >= 7 {
		e.strategy = catalog.StrategyXLock
	}
	deferredChain := rng.Intn(3) == 0
	if e.shape == "rollup" {
		// A stacked level cannot use X locks; the chain is either all-escrow
		// or all-deferred (exercising the applier's component cascade under
		// crash recovery).
		e.strategy = catalog.StrategyEscrow
		if deferredChain {
			e.strategy = catalog.StrategyDeferred
		}
	}
	e.syncMode = wal.SyncNone
	if rng.Intn(2) == 0 {
		e.syncMode = wal.SyncData
	}
	e.flush = rng.Intn(2) == 0
	e.accounts = 20 + rng.Intn(60)
	e.branches = 2 + rng.Intn(6)
	e.products = 3 + rng.Intn(8)
	e.joinView = rng.Intn(2) == 0
	e.customers = 5 + rng.Intn(15)
	e.regions = 2 + rng.Intn(4)
}

// torture runs the fault-injected half of the episode. A fired fault is the
// expected outcome, not an error; only misbehavior with the injector still
// alive fails the episode.
func (e *episode) torture() error {
	rng := rand.New(rand.NewSource(e.seed))
	e.plan(rng)
	e.logf("seed %d: shape=%s strategy=%v sync=%d schedule=%q",
		e.seed, e.shape, e.strategy, e.syncMode, e.inj.Describe())
	// Abandon the instance like a process exit: whatever the injector still
	// has open gets closed, flushed or not.
	defer e.inj.CloseAll()
	db, err := core.Open(e.dir, core.Options{
		SyncMode: e.syncMode,
		FS:       e.inj,
		Hooks:    e.inj,
		Tracer:   slowTracer,
		Watchdog: true,
		// The online scrubber runs live through every episode: its snapshot
		// reads race the workload and the injected faults, and any divergence
		// it confirms on a still-healthy engine fails the seed below.
		ScrubInterval: time.Millisecond,
	})
	if err != nil {
		if e.inj.Crashed() {
			return nil
		}
		return fmt.Errorf("open: %w", err)
	}
	trackDB(db)
	if err := e.setup(db); err != nil && !e.inj.Crashed() {
		db.Crash(false)
		return fmt.Errorf("setup: %w", err)
	}
	for e.opsDone = 0; e.opsDone < e.ops && !e.inj.Crashed(); e.opsDone++ {
		if err := e.step(db, rng); err != nil && !e.inj.Crashed() {
			db.Crash(false)
			return fmt.Errorf("op %d: %w", e.opsDone, err)
		}
	}
	if !e.inj.Crashed() {
		if d := db.Metrics().Scrub.Divergences; d > 0 {
			db.Crash(false)
			return fmt.Errorf("online scrubber confirmed %d view-row divergences during the episode", d)
		}
	}
	db.Crash(e.flush)
	return nil
}

func (e *episode) setup(db *core.DB) error {
	if e.shape == "banking" {
		w := workload.Banking{
			Accounts:       e.accounts,
			Branches:       e.branches,
			Strategy:       e.strategy,
			InitialBalance: 100,
		}
		return w.Setup(db)
	}
	if e.shape == "rollup" {
		w := e.rollup()
		if err := w.Setup(db); err != nil {
			return err
		}
		if err := w.LoadItems(db, 30, e.seed); err != nil {
			return err
		}
		e.nextItem = 30
		return nil
	}
	w := workload.Orders{
		Products:     e.products,
		Skew:         1.5,
		Strategy:     e.strategy,
		WithJoinView: e.joinView,
	}
	if err := w.Setup(db); err != nil {
		return err
	}
	if err := w.LoadOrders(db, 40, e.seed); err != nil {
		return err
	}
	e.nextOrder = 40
	return nil
}

// step performs one workload action: usually a 1–3 statement transaction,
// occasionally a checkpoint or a ghost-cleaning pass.
func (e *episode) step(db *core.DB, rng *rand.Rand) error {
	switch r := rng.Intn(200); {
	case r < 1:
		return db.Checkpoint()
	case r < 6:
		db.CleanGhosts()
		return nil
	}
	switch e.shape {
	case "banking":
		return e.bankingTxn(db, rng)
	case "rollup":
		return e.rollupTxn(db, rng)
	}
	return e.ordersTxn(db, rng)
}

// rollup builds the episode's stacked-chain workload definition.
func (e *episode) rollup() workload.Rollup {
	return workload.Rollup{
		Customers: e.customers,
		Regions:   e.regions,
		Skew:      1.3,
		Strategy:  e.strategy,
	}
}

// rollupTxn mutates 1–3 order items under the 3-level chain: inserts mostly,
// with amendments and deletes (deletes empty whole order groups, ghosting
// rows up the cascade), and a 1-in-6 chance of rolling back.
func (e *episode) rollupTxn(db *core.DB, rng *rand.Rand) error {
	w := e.rollup()
	tx, err := db.BeginTx(context.Background(), core.TxOptions{Isolation: txn.ReadCommitted})
	if err != nil {
		return err
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		var err error
		switch c := rng.Intn(10); {
		case c < 6: // new item
			item := e.nextItem
			e.nextItem++
			pk := record.Row{record.Int(item)}
			_, ok, gerr := tx.Get("order_items", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if ok {
				continue
			}
			err = tx.Insert("order_items",
				w.ItemRow(item, int64(rng.Intn(e.customers)), int64(10+rng.Intn(90))))
		case c < 8: // return an item
			if e.nextItem == 0 {
				continue
			}
			pk := record.Row{record.Int(rng.Int63n(e.nextItem))}
			_, ok, gerr := tx.Get("order_items", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if !ok {
				continue
			}
			err = tx.Delete("order_items", pk)
		default: // amend the amount
			if e.nextItem == 0 {
				continue
			}
			pk := record.Row{record.Int(rng.Int63n(e.nextItem))}
			row, ok, gerr := tx.Get("order_items", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if !ok {
				continue
			}
			err = tx.Update("order_items", pk, map[int]record.Value{
				4: record.Int(row[4].AsInt()%90 + 10),
			})
		}
		if err != nil {
			tx.Rollback()
			return err
		}
	}
	if rng.Intn(6) == 0 {
		return tx.Rollback()
	}
	return tx.Commit()
}

// bankingTxn mutates 1–3 accounts: updates mostly, with inserts and deletes
// (the deletes churn view ghosts), and a 1-in-6 chance of rolling back.
func (e *episode) bankingTxn(db *core.DB, rng *rand.Rand) error {
	tx, err := db.BeginTx(context.Background(), core.TxOptions{Isolation: txn.ReadCommitted})
	if err != nil {
		return err
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		id := int64(rng.Intn(e.accounts * 2)) // upper half mostly absent → inserts
		pk := record.Row{record.Int(id)}
		row, ok, err := tx.Get("accounts", pk)
		if err != nil {
			tx.Rollback()
			return err
		}
		switch {
		case !ok:
			err = tx.Insert("accounts", record.Row{
				record.Int(id),
				record.Int(id % int64(e.branches)),
				record.Int(int64(50 + rng.Intn(200))),
			})
		case rng.Intn(10) < 7:
			err = tx.Update("accounts", pk, map[int]record.Value{
				2: record.Int(row[2].AsInt() + int64(rng.Intn(41)-20)),
			})
		default:
			err = tx.Delete("accounts", pk)
		}
		if err != nil {
			tx.Rollback()
			return err
		}
	}
	if rng.Intn(6) == 0 {
		return tx.Rollback()
	}
	return tx.Commit()
}

// ordersTxn enters, cancels, and amends orders. Inserts probe the primary key
// first so replays over recovered state never hit duplicate-key errors.
func (e *episode) ordersTxn(db *core.DB, rng *rand.Rand) error {
	tx, err := db.BeginTx(context.Background(), core.TxOptions{Isolation: txn.ReadCommitted})
	if err != nil {
		return err
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		var err error
		switch c := rng.Intn(10); {
		case c < 6: // new order
			id := e.nextOrder
			e.nextOrder++
			pk := record.Row{record.Int(id)}
			_, ok, gerr := tx.Get("orders", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if ok {
				continue
			}
			err = tx.Insert("orders", record.Row{
				record.Int(id),
				record.Int(int64(rng.Intn(e.products))),
				record.Int(int64(1 + rng.Intn(5))),
			})
		case c < 8: // cancel an order
			if e.nextOrder == 0 {
				continue
			}
			pk := record.Row{record.Int(rng.Int63n(e.nextOrder))}
			_, ok, gerr := tx.Get("orders", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if !ok {
				continue
			}
			err = tx.Delete("orders", pk)
		default: // amend quantity
			if e.nextOrder == 0 {
				continue
			}
			pk := record.Row{record.Int(rng.Int63n(e.nextOrder))}
			row, ok, gerr := tx.Get("orders", pk)
			if gerr != nil {
				tx.Rollback()
				return gerr
			}
			if !ok {
				continue
			}
			err = tx.Update("orders", pk, map[int]record.Value{
				2: record.Int(row[2].AsInt()%5 + 1),
			})
		}
		if err != nil {
			tx.Rollback()
			return err
		}
	}
	if rng.Intn(6) == 0 {
		return tx.Rollback()
	}
	return tx.Commit()
}

// verify reopens the abandoned directory on the real filesystem and asserts
// the recovery contract: the log's surviving prefix is well-formed, restart
// restores views == recompute-from-base, the recovered database accepts new
// work, and a second restart over the grown log agrees.
func (e *episode) verify() error {
	if err := e.checkWAL(false); err != nil {
		return fmt.Errorf("pre-recovery %w", err)
	}
	db, err := core.Open(e.dir, core.Options{SyncMode: e.syncMode, Tracer: slowTracer, Watchdog: true, ScrubInterval: time.Millisecond})
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	trackDB(db)
	sum := db.RecoverySummary()
	e.logf("seed %d: recovered gen=%d replayed=%d losers=%d undone=%d torn=%v fresh=%v",
		e.seed, sum.Gen, sum.Replayed, sum.Losers, sum.UndoneOps, sum.Torn, sum.Fresh)
	if err := db.CheckConsistency(); err != nil {
		db.Close()
		return fmt.Errorf("post-recovery: %w", err)
	}
	if err := e.keepWorking(db); err != nil {
		db.Close()
		return err
	}
	if err := db.CheckConsistency(); err != nil {
		db.Close()
		return fmt.Errorf("post-recovery workload: %w", err)
	}
	// The online verifier must agree with the offline checker on the
	// recovered state: one unpaced full pass, zero divergences.
	if n, err := db.ScrubNow(context.Background()); err != nil {
		db.Close()
		return fmt.Errorf("post-recovery scrub: %w", err)
	} else if n > 0 {
		db.Close()
		return fmt.Errorf("post-recovery scrub found %d view-row divergences", n)
	}
	db.Crash(true)
	db2, err := core.Open(e.dir, core.Options{SyncMode: e.syncMode, Tracer: slowTracer, Watchdog: true})
	if err != nil {
		return fmt.Errorf("second recovery open: %w", err)
	}
	trackDB(db2)
	if err := db2.CheckConsistency(); err != nil {
		db2.Close()
		return fmt.Errorf("second recovery: %w", err)
	}
	if err := db2.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return e.checkWAL(true)
}

// keepWorking runs a short deterministic workload burst against the recovered
// database; recovery must hand back an instance that takes new transactions.
func (e *episode) keepWorking(db *core.DB) error {
	table := "accounts"
	switch e.shape {
	case "orders":
		table = "orders"
	case "rollup":
		table = "order_items"
	}
	if _, err := db.Catalog().Table(table); err != nil {
		// The crash predated the schema; nothing to exercise.
		e.logf("seed %d: no %s table after recovery (crashed during setup)", e.seed, table)
		return nil
	}
	rng := rand.New(rand.NewSource(e.seed + 1000003))
	for i := 0; i < 25; i++ {
		if err := e.step(db, rng); err != nil {
			return fmt.Errorf("post-recovery op %d: %w", i, err)
		}
	}
	return nil
}

// checkWAL scans the current generation's log and asserts the physical
// invariant recovery depends on: record LSNs are dense and ascending from 1.
// With repaired set, the log must also scan to the end without a torn tail
// (recovery has already truncated it).
func (e *episode) checkWAL(repaired bool) error {
	dir := wal.Dir{Path: e.dir}
	gen, fresh, err := dir.Current()
	if err != nil {
		return fmt.Errorf("wal check: %w", err)
	}
	if fresh {
		return nil // crashed before the first manifest commit
	}
	if _, err := os.Stat(dir.LogPath(gen)); errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal check: manifest names gen %d but %s is missing", gen, dir.LogPath(gen))
	}
	var prev uint64
	res, err := wal.Scan(dir.LogPath(gen), func(rec *wal.Record) error {
		if prev == 0 && rec.LSN != 1 {
			return fmt.Errorf("first record has LSN %d, want 1", rec.LSN)
		}
		if prev != 0 && rec.LSN != prev+1 {
			return fmt.Errorf("LSN %d follows %d (hole or reorder)", rec.LSN, prev)
		}
		prev = rec.LSN
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal check (gen %d): %w", gen, err)
	}
	if repaired && res.Torn {
		return fmt.Errorf("wal check (gen %d): tail still torn after recovery", gen)
	}
	return nil
}
