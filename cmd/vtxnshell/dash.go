package main

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// defaultDashInterval is the refresh period every dashboard shares.
const defaultDashInterval = time.Second

// dashboard is the frame loop behind top, lag, and scrub: it parses the
// shared "[frames] [interval]" arguments, runs interactively (ANSI
// clear-and-redraw until Enter is pressed) when no frame count is given, or
// renders exactly that many frames for pipes and tests. renderFirst emits a
// frame immediately instead of waiting out the first tick; frame receives
// whether the loop is interactive (for the quit hint).
func (s *shell) dashboard(usage string, args []string, renderFirst bool, frame func(interactive bool)) error {
	frames := -1
	interval := defaultDashInterval
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("usage: %s", usage)
		}
		frames = n
	}
	if len(args) > 1 {
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad interval %q", args[1])
		}
		interval = d
	}
	interactive := frames < 0

	stop := make(chan struct{})
	if interactive {
		// One byte of stdin (the Enter keystroke) ends the dashboard; the
		// REPL scanner resumes with the following line.
		go func() {
			buf := make([]byte, 1)
			os.Stdin.Read(buf)
			close(stop)
		}()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	rendered := 0
	if renderFirst {
		frame(interactive)
		rendered++
	}
	for ; frames < 0 || rendered < frames; rendered++ {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
		if interactive {
			fmt.Fprint(s.out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		frame(interactive)
	}
	return nil
}

// quitHint is the interactive dashboards' header suffix.
func quitHint(interactive bool) string {
	if interactive {
		return "   (Enter to quit)"
	}
	return ""
}
