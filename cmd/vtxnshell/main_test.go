package main

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	vtxn "repro"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"insert t 1 'alice smith' 2": {"insert", "t", "1", "'alice smith'", "2"},
		"  spaced   out  ":           {"spaced", "out"},
		"":                           nil,
		"quote 'with  spaces' mixed": {"quote", "'with  spaces'", "mixed"},
	}
	for in, want := range cases {
		if got := tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseRow(t *testing.T) {
	row, err := parseRow([]string{"42", "-7", "2.5", "'hi'", "true", "false", "null"})
	if err != nil {
		t.Fatal(err)
	}
	want := vtxn.Row{
		vtxn.Int(42), vtxn.Int(-7), vtxn.Float(2.5),
		vtxn.Str("hi"), vtxn.Bool(true), vtxn.Bool(false), vtxn.Null(),
	}
	if len(row) != len(want) {
		t.Fatalf("row = %v", row)
	}
	for i := range want {
		if row[i].Kind() != want[i].Kind() {
			t.Errorf("col %d kind = %v, want %v", i, row[i].Kind(), want[i].Kind())
		}
	}
	if _, err := parseRow([]string{"notanumber"}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseRow([]string{"1.2.3"}); err == nil {
		t.Error("bad float accepted")
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]vtxn.Kind{
		"int": vtxn.KindInt64, "bigint": vtxn.KindInt64,
		"float": vtxn.KindFloat64, "double": vtxn.KindFloat64,
		"string": vtxn.KindString, "varchar": vtxn.KindString,
		"bool": vtxn.KindBool, "bytes": vtxn.KindBytes,
	}
	for in, want := range good {
		got, err := parseKind(in)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseKind("blob"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestShellEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sh := &shell{db: db, out: os.Stdout}
	script := []string{
		"create table accts id:int branch:int balance:int pk id",
		"create view totals on accts group branch count sum:balance",
		"insert accts 1 7 100",
		"insert accts 2 7 50",
		"insert accts 3 8 25",
		"delete accts 3",
		"get accts 1",
		"scan accts",
		"view totals",
		"describe totals",
		"stats",
		"ghosts",
		"check",
		"checkpoint",
	}
	for _, line := range script {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// Error paths.
	for _, bad := range []string{
		"nosuchcommand",
		"insert",                        // missing args
		"insert accts xyz",              // bad value
		"get accts",                     // missing pk
		"create table bad x",            // bad column spec
		"create view v on nope group x", // missing table
		"view nosuchview",
		"describe nosuchview",
		"refresh nosuchview",
	} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
	// Help and empty lines are fine.
	if err := sh.exec("help"); err != nil {
		t.Fatal(err)
	}
}

// TestShellTop drives the dashboard in framed (non-interactive) mode and
// checks the hot group surfaces with its decoded key.
func TestShellTop(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	sh := &shell{db: db, out: &buf}
	setup := []string{
		"create table accts id:int branch:int balance:int pk id",
		"create view totals on accts group branch count sum:balance",
	}
	for _, line := range setup {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// Skew escrow deltas onto branch 7.
	for i := 0; i < 20; i++ {
		branch := 7
		if i%10 == 9 {
			branch = 8
		}
		if err := sh.exec(fmt.Sprintf("insert accts %d %d 100", i+1, branch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.exec("top 2 20ms"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vtxn top",
		"HOT GROUPS by escrow delta rate",
		"PER-VIEW COST",
		"totals[7]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// Framed mode must not emit ANSI clear sequences (pipe-safe).
	if strings.Contains(out, "\x1b[") {
		t.Error("framed top emitted ANSI escapes")
	}
	// Argument validation.
	for _, bad := range []string{"top 0", "top x", "top 1 notadur"} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
}

// TestShellLag drives the freshness dashboard in framed mode and checks the
// per-view staleness table lists both maintenance strategies.
func TestShellLag(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	sh := &shell{db: db, out: &buf}
	setup := []string{
		"create table accts id:int branch:int balance:int pk id",
		"create view totals on accts group branch count sum:balance",
		"create view totals_d on accts group branch count sum:balance strategy deferred",
		"insert accts 1 7 100",
		"insert accts 2 8 50",
	}
	for _, line := range setup {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if err := sh.exec("lag 2 20ms"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vtxn lag",
		"STRATEGY",
		"totals",
		"totals_d",
		"escrow",
		"deferred",
		"watermark",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lag output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("framed lag emitted ANSI escapes")
	}
	for _, bad := range []string{"lag 0", "lag x", "lag 1 notadur"} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
}

// TestShellScrub drives the verification dashboard in framed mode plus the
// on-demand full pass.
func TestShellScrub(t *testing.T) {
	dir := t.TempDir()
	db, err := vtxn.Open(dir, vtxn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	sh := &shell{db: db, out: &buf}
	setup := []string{
		"create table accts id:int branch:int balance:int pk id",
		"create view totals on accts group branch count sum:balance",
		"insert accts 1 7 100",
		"insert accts 2 8 50",
	}
	for _, line := range setup {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if err := sh.exec("scrub full"); err != nil {
		t.Fatal(err)
	}
	if err := sh.exec("scrub 2 20ms"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ok: full pass clean",
		"vtxn scrub",
		"rows verified",
		"coverage ts",
		"totals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrub output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DIVERG") {
		t.Errorf("healthy engine shows divergences:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("framed scrub emitted ANSI escapes")
	}
	for _, bad := range []string{"scrub 0", "scrub x", "scrub 1 notadur"} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
}
