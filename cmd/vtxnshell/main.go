// Command vtxnshell is a small interactive shell over the public vtxn API,
// for demos and debugging. Values are written as bare integers, floats,
// 'single-quoted strings', true/false, or null.
//
// Usage:
//
//	vtxnshell -dir /tmp/demo
//
// Commands:
//
//	tables                         list tables
//	views                          list views
//	create table t id:int name:string pk id
//	create view v on t group name count sum:id [strategy escrow|xlock|deferred]
//	insert t 1 'alice'
//	delete t 1
//	get t 1
//	scan t
//	view v
//	describe v
//	refresh v
//	metrics                        engine observability snapshot (JSON)
//	top [frames] [interval]        live hot-spot dashboard (Enter quits)
//	lag [frames] [interval]        live per-view freshness dashboard (Enter quits)
//	scrub [frames] [interval]      live online-verification dashboard (Enter quits)
//	scrub full                     one unpaced full verification pass now
//	flightrec [json]               flight-record dump (timeline, or JSONL)
//	checkpoint | stats | ghosts | check | quit
//
// SIGQUIT (ctrl-\) dumps the flight record to stderr without exiting.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	vtxn "repro"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "vtxnshell: -dir is required")
		os.Exit(2)
	}
	db, err := vtxn.Open(*dir, vtxn.Options{
		Watchdog:   true,
		FlightSink: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()
	// SIGQUIT dumps the flight record without killing the shell — the
	// classic "what is it doing right now" escape hatch.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			db.DumpFlightRecord(os.Stderr)
		}
	}()
	sh := &shell{db: db, out: os.Stdout}
	fmt.Println("vtxn shell — type 'help' for commands")
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			if err := sh.exec(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

type shell struct {
	db  *vtxn.DB
	out io.Writer
}

func (s *shell) exec(line string) error {
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "help":
		fmt.Fprintln(s.out, "tables views describe insert delete get scan view refresh checkpoint stats metrics top lag scrub flightrec ghosts check quit")
		return nil
	case "top":
		return s.top(fields[1:])
	case "lag":
		return s.lag(fields[1:])
	case "scrub":
		return s.scrubCmd(fields[1:])
	case "tables":
		for _, t := range s.db.Catalog().Tables() {
			cols := make([]string, len(t.Cols))
			for i, c := range t.Cols {
				cols[i] = fmt.Sprintf("%s %s", c.Name, c.Kind)
			}
			fmt.Fprintf(s.out, "%s(%s)\n", t.Name, strings.Join(cols, ", "))
		}
		return nil
	case "views":
		for _, v := range s.db.Catalog().Views() {
			fmt.Fprintf(s.out, "%s on %s [%s]\n", v.Name, v.Left, v.Strategy)
		}
		return nil
	case "create":
		return s.create(fields[1:])
	case "insert":
		if len(fields) < 3 {
			return fmt.Errorf("usage: insert <table> <values...>")
		}
		row, err := parseRow(fields[2:])
		if err != nil {
			return err
		}
		return s.inTx(func(tx *vtxn.Tx) error { return tx.Insert(fields[1], row) })
	case "delete":
		if len(fields) < 3 {
			return fmt.Errorf("usage: delete <table> <pk...>")
		}
		pk, err := parseRow(fields[2:])
		if err != nil {
			return err
		}
		return s.inTx(func(tx *vtxn.Tx) error { return tx.Delete(fields[1], pk) })
	case "get":
		if len(fields) < 3 {
			return fmt.Errorf("usage: get <table> <pk...>")
		}
		pk, err := parseRow(fields[2:])
		if err != nil {
			return err
		}
		return s.inTx(func(tx *vtxn.Tx) error {
			row, ok, err := tx.Get(fields[1], pk)
			if err != nil {
				return err
			}
			if !ok {
				fmt.Fprintln(s.out, "(not found)")
				return nil
			}
			fmt.Fprintln(s.out, row)
			return nil
		})
	case "scan":
		if len(fields) != 2 {
			return fmt.Errorf("usage: scan <table>")
		}
		return s.inTx(func(tx *vtxn.Tx) error {
			n := 0
			err := tx.ScanTable(fields[1], nil, nil, func(row vtxn.Row) bool {
				fmt.Fprintln(s.out, row)
				n++
				return n < 1000
			})
			fmt.Fprintf(s.out, "(%d rows)\n", n)
			return err
		})
	case "view":
		if len(fields) != 2 {
			return fmt.Errorf("usage: view <name>")
		}
		return s.inTx(func(tx *vtxn.Tx) error {
			rows, err := tx.ScanView(fields[1])
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Fprintf(s.out, "%v -> %v\n", r.Key, r.Result)
			}
			fmt.Fprintf(s.out, "(%d rows)\n", len(rows))
			return nil
		})
	case "describe":
		if len(fields) != 2 {
			return fmt.Errorf("usage: describe <view>")
		}
		info, err := s.db.DescribeView(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, info)
		return nil
	case "refresh":
		if len(fields) != 2 {
			return fmt.Errorf("usage: refresh <view>")
		}
		n, err := s.db.RefreshView(fields[1])
		if err == nil {
			fmt.Fprintf(s.out, "(%d rows changed)\n", n)
		}
		return err
	case "checkpoint":
		return s.db.Checkpoint()
	case "stats":
		fmt.Fprintf(s.out, "%+v\n", s.db.Stats())
		return nil
	case "metrics", ".metrics":
		buf, err := json.MarshalIndent(s.db.Metrics(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s\n", buf)
		return nil
	case "flightrec", ".flightrec":
		if len(fields) > 1 && fields[1] == "json" {
			return s.db.WriteFlightRecordJSONL(s.out)
		}
		return s.db.DumpFlightRecord(s.out)
	case "ghosts":
		fmt.Fprintf(s.out, "(%d erased)\n", s.db.CleanGhosts())
		return nil
	case "check":
		if err := s.db.CheckConsistency(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "ok: all views equal recompute-from-base")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}

// create handles `create table ...` and `create view ...`.
func (s *shell) create(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: create table|view ...")
	}
	switch args[0] {
	case "table":
		// create table t id:int name:string pk id
		name := args[1]
		var cols []vtxn.Column
		var pk []int
		i := 2
		for ; i < len(args) && args[i] != "pk"; i++ {
			parts := strings.SplitN(args[i], ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad column %q (want name:type)", args[i])
			}
			kind, err := parseKind(parts[1])
			if err != nil {
				return err
			}
			cols = append(cols, vtxn.Column{Name: parts[0], Kind: kind})
		}
		if i < len(args) && args[i] == "pk" {
			for _, pkName := range args[i+1:] {
				idx := -1
				for j, c := range cols {
					if c.Name == pkName {
						idx = j
					}
				}
				if idx < 0 {
					return fmt.Errorf("unknown pk column %q", pkName)
				}
				pk = append(pk, idx)
			}
		}
		return s.db.CreateTable(name, cols, pk)
	case "view":
		// create view v on t group name count sum:balance [strategy xlock]
		if len(args) < 4 || args[2] != "on" {
			return fmt.Errorf("usage: create view <name> on <table> group <col> [count] [sum:<col>] ...")
		}
		name, source := args[1], args[3]
		def := vtxn.ViewDef{Name: name, Kind: vtxn.ViewAggregate, Source: source}
		for i := 4; i < len(args); i++ {
			switch {
			case args[i] == "group" && i+1 < len(args):
				def.GroupBy = append(def.GroupBy, args[i+1])
				i++
			case args[i] == "count":
				def.Aggs = append(def.Aggs, vtxn.CountRows())
			case strings.HasPrefix(args[i], "sum:"):
				def.Aggs = append(def.Aggs, vtxn.Sum(strings.TrimPrefix(args[i], "sum:")))
			case strings.HasPrefix(args[i], "min:"):
				def.Aggs = append(def.Aggs, vtxn.Min(strings.TrimPrefix(args[i], "min:")))
			case strings.HasPrefix(args[i], "max:"):
				def.Aggs = append(def.Aggs, vtxn.Max(strings.TrimPrefix(args[i], "max:")))
			case args[i] == "strategy" && i+1 < len(args):
				switch args[i+1] {
				case "escrow":
					def.Strategy = vtxn.StrategyEscrow
				case "xlock":
					def.Strategy = vtxn.StrategyXLock
				case "deferred":
					def.Strategy = vtxn.StrategyDeferred
				default:
					return fmt.Errorf("unknown strategy %q", args[i+1])
				}
				i++
			default:
				return fmt.Errorf("unknown view clause %q", args[i])
			}
		}
		return s.db.CreateIndexedView(def)
	default:
		return fmt.Errorf("usage: create table|view ...")
	}
}

func parseKind(s string) (vtxn.Kind, error) {
	switch s {
	case "int", "bigint":
		return vtxn.KindInt64, nil
	case "float", "double":
		return vtxn.KindFloat64, nil
	case "string", "varchar":
		return vtxn.KindString, nil
	case "bool":
		return vtxn.KindBool, nil
	case "bytes":
		return vtxn.KindBytes, nil
	default:
		return 0, fmt.Errorf("unknown type %q", s)
	}
}

func (s *shell) inTx(fn func(*vtxn.Tx) error) error {
	tx, err := s.db.BeginTx(context.Background(), vtxn.TxOptions{Isolation: vtxn.ReadCommitted})
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// tokenize splits on spaces, keeping 'quoted strings' together.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// parseRow parses shell value literals.
func parseRow(tokens []string) (vtxn.Row, error) {
	row := make(vtxn.Row, 0, len(tokens))
	for _, tok := range tokens {
		switch {
		case tok == "null":
			row = append(row, vtxn.Null())
		case tok == "true":
			row = append(row, vtxn.Bool(true))
		case tok == "false":
			row = append(row, vtxn.Bool(false))
		case strings.HasPrefix(tok, "'") && strings.HasSuffix(tok, "'") && len(tok) >= 2:
			row = append(row, vtxn.Str(tok[1:len(tok)-1]))
		case strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "'"):
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", tok)
			}
			row = append(row, vtxn.Float(f))
		default:
			i, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q", tok)
			}
			row = append(row, vtxn.Int(i))
		}
	}
	return row, nil
}
