package main

import (
	"context"
	"fmt"
	"time"
)

// scrubCmd implements the online-verification views:
//
//	scrub                 live dashboard (ANSI) until Enter is pressed
//	scrub <frames> [ivl]  render that many frames then return (pipe/test mode)
//	scrub full            run one unpaced full verification pass now
//
// The dashboard shows the background scrubber's pace and coverage; `scrub
// full` is DB.ScrubNow — every view verified end to end on the spot, with
// divergences (if any — each already traced and flight-dumped) counted back.
func (s *shell) scrubCmd(args []string) error {
	if len(args) > 0 && args[0] == "full" {
		start := time.Now()
		n, err := s.db.ScrubNow(context.Background())
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Fprintf(s.out, "DIVERGED: %d view rows disagree with recompute (%s) — see flightrec\n",
				n, time.Since(start).Round(time.Millisecond))
			return nil
		}
		fmt.Fprintf(s.out, "ok: full pass clean in %s\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	return s.dashboard("scrub [frames] [interval] | scrub full", args, true, s.renderScrub)
}

// renderScrub writes one scrubber frame from a fresh metrics snapshot.
func (s *shell) renderScrub(interactive bool) {
	snap := s.db.Metrics()
	sc := snap.Scrub
	state := "on"
	if !sc.Enabled {
		state = "off (scrub full still works)"
	}
	last := "never"
	if sc.LastFullPassUnix > 0 {
		last = time.Since(time.Unix(sc.LastFullPassUnix, 0)).Round(time.Second).String() + " ago"
	}
	fmt.Fprintf(s.out, "vtxn scrub — background %s — cycles %d — last full pass %s%s\n",
		state, sc.Cycles, last, quitHint(interactive))
	fmt.Fprintf(s.out, "slices %d  rows verified %d  conflicts %d  snapshot retries %d  cycle p50 %s p99 %s\n",
		sc.Slices, sc.RowsVerified, sc.Conflicts, sc.SnapshotRetries,
		time.Duration(sc.CycleDur.P50Ns).Round(time.Millisecond),
		time.Duration(sc.CycleDur.P99Ns).Round(time.Millisecond))
	if sc.Divergences > 0 {
		fmt.Fprintf(s.out, "DIVERGENCES %d — stored view rows disagree with recompute; see flightrec\n", sc.Divergences)
	}
	fmt.Fprintln(s.out)

	fmt.Fprintf(s.out, "%-20s %8s %12s %12s %12s %12s\n",
		"VIEW", "passes", "rows", "coverage ts", "diverged", "last pass")
	for _, v := range sc.Views {
		lp := "-"
		if v.LastPassUnixNs > 0 {
			lp = time.Since(time.Unix(0, v.LastPassUnixNs)).Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(s.out, "%-20s %8d %12d %12d %12d %12s\n",
			v.View, v.Passes, v.RowsVerified, v.CoverageTS, v.Divergences, lp)
	}
	if len(sc.Views) == 0 {
		fmt.Fprintln(s.out, "(no maintained views)")
	}
	fmt.Fprintln(s.out)
}
