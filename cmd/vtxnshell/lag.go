package main

import (
	"fmt"
	"strconv"
	"time"
)

// lag implements the live per-view freshness dashboard:
//
//	lag                 auto-refreshing (ANSI) until Enter is pressed
//	lag <frames> [ivl]  render that many frames then return (pipe/test mode)
//
// Each frame lists every maintained view with its current staleness gauge
// (age of the oldest commit not yet visible) and its commit-to-visible
// latency summary, plus the deferred watermark where one exists. Views past
// the configured freshness SLO are flagged.
func (s *shell) lag(args []string) error {
	return s.dashboard("lag [frames] [interval]", args, true, s.renderLag)
}

// renderLag writes one freshness frame from a fresh metrics snapshot.
func (s *shell) renderLag(interactive bool) {
	snap := s.db.Metrics()
	slo := "none"
	if snap.Freshness.SLONs > 0 {
		slo = time.Duration(snap.Freshness.SLONs).String()
	}
	fmt.Fprintf(s.out, "vtxn lag — freshness SLO %s — uptime %s%s\n\n",
		slo, time.Duration(snap.Engine.UptimeNs).Round(time.Second), quitHint(interactive))

	// Deferred watermarks by tree, for the watermark column.
	marks := make(map[uint32]uint64, len(snap.Deferred.Views))
	for _, v := range snap.Deferred.Views {
		marks[v.Tree] = v.Watermark
	}
	fmt.Fprintf(s.out, "%-20s %-9s %12s %12s %12s %8s %10s\n",
		"VIEW", "STRATEGY", "staleness", "c2v p50", "c2v p99", "samples", "watermark")
	for _, v := range snap.Freshness.Views {
		stale := time.Duration(v.StalenessNs).Round(time.Microsecond).String()
		if snap.Freshness.SLONs > 0 && v.StalenessNs > snap.Freshness.SLONs {
			stale += " !SLO"
		}
		wm := "-"
		if m, ok := marks[v.Tree]; ok {
			wm = strconv.FormatUint(m, 10)
		}
		fmt.Fprintf(s.out, "%-20s %-9s %12s %12s %12s %8d %10s\n",
			v.View, v.Strategy, stale,
			time.Duration(v.CommitToVisible.P50Ns).Round(time.Microsecond),
			time.Duration(v.CommitToVisible.P99Ns).Round(time.Microsecond),
			v.CommitToVisible.Count, wm)
	}
	if len(snap.Freshness.Views) == 0 {
		fmt.Fprintln(s.out, "(no maintained views)")
	}
	fmt.Fprintln(s.out)
}
