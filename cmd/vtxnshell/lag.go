package main

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// lag implements the live per-view freshness dashboard:
//
//	lag                 auto-refreshing (ANSI) until Enter is pressed
//	lag <frames> [ivl]  render that many frames then return (pipe/test mode)
//
// Each frame lists every maintained view with its current staleness gauge
// (age of the oldest commit not yet visible) and its commit-to-visible
// latency summary, plus the deferred watermark where one exists. Views past
// the configured freshness SLO are flagged.
func (s *shell) lag(args []string) error {
	frames := -1
	interval := defaultTopInterval
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("usage: lag [frames] [interval]")
		}
		frames = n
	}
	if len(args) > 1 {
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad interval %q", args[1])
		}
		interval = d
	}
	interactive := frames < 0

	stop := make(chan struct{})
	if interactive {
		go func() {
			buf := make([]byte, 1)
			os.Stdin.Read(buf)
			close(stop)
		}()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	s.renderLag(interactive)
	for rendered := 1; frames < 0 || rendered < frames; {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
		if interactive {
			fmt.Fprint(s.out, "\x1b[2J\x1b[H")
		}
		s.renderLag(interactive)
		rendered++
	}
	return nil
}

// renderLag writes one freshness frame from a fresh metrics snapshot.
func (s *shell) renderLag(interactive bool) {
	snap := s.db.Metrics()
	hint := ""
	if interactive {
		hint = "   (Enter to quit)"
	}
	slo := "none"
	if snap.Freshness.SLONs > 0 {
		slo = time.Duration(snap.Freshness.SLONs).String()
	}
	fmt.Fprintf(s.out, "vtxn lag — freshness SLO %s — uptime %s%s\n\n",
		slo, time.Duration(snap.Engine.UptimeNs).Round(time.Second), hint)

	// Deferred watermarks by tree, for the watermark column.
	marks := make(map[uint32]uint64, len(snap.Deferred.Views))
	for _, v := range snap.Deferred.Views {
		marks[v.Tree] = v.Watermark
	}
	fmt.Fprintf(s.out, "%-20s %-9s %12s %12s %12s %8s %10s\n",
		"VIEW", "STRATEGY", "staleness", "c2v p50", "c2v p99", "samples", "watermark")
	for _, v := range snap.Freshness.Views {
		stale := time.Duration(v.StalenessNs).Round(time.Microsecond).String()
		if snap.Freshness.SLONs > 0 && v.StalenessNs > snap.Freshness.SLONs {
			stale += " !SLO"
		}
		wm := "-"
		if m, ok := marks[v.Tree]; ok {
			wm = strconv.FormatUint(m, 10)
		}
		fmt.Fprintf(s.out, "%-20s %-9s %12s %12s %12s %8d %10s\n",
			v.View, v.Strategy, stale,
			time.Duration(v.CommitToVisible.P50Ns).Round(time.Microsecond),
			time.Duration(v.CommitToVisible.P99Ns).Round(time.Microsecond),
			v.CommitToVisible.Count, wm)
	}
	if len(snap.Freshness.Views) == 0 {
		fmt.Fprintln(s.out, "(no maintained views)")
	}
	fmt.Fprintln(s.out)
}
