package main

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// top implements the live hot-spot dashboard:
//
//	top                 auto-refreshing (ANSI) until Enter is pressed
//	top <frames> [ivl]  render that many frames then return (pipe/test mode)
//
// Each frame diffs the two newest metrics snapshots from a ring into
// per-interval rates: engine throughput, the hottest groups by lock wait and
// escrow delta rate, and the per-view maintenance cost table.
func (s *shell) top(args []string) error {
	ring := metrics.NewSnapshotRing(8)
	ring.Push(time.Now(), s.db.Metrics())
	return s.dashboard("top [frames] [interval]", args, false, func(interactive bool) {
		ring.Push(time.Now(), s.db.Metrics())
		s.renderTop(ring, interactive)
	})
}

// renderTop writes one dashboard frame from the ring's newest rates.
func (s *shell) renderTop(ring *metrics.SnapshotRing, interactive bool) {
	rates, ok := ring.Rates()
	if !ok {
		fmt.Fprintln(s.out, "top: collecting...")
		return
	}
	snap := s.db.Metrics()
	fmt.Fprintf(s.out, "vtxn top — interval %s — uptime %s%s\n",
		rates.Interval.Round(time.Millisecond),
		time.Duration(snap.Engine.UptimeNs).Round(time.Second), quitHint(interactive))
	fmt.Fprintf(s.out, "commits/s %.0f  aborts/s %.0f  wal appends/s %.0f  fold rows/s %.0f\n\n",
		rates.CommitsPerSec, rates.AbortsPerSec, rates.WALAppendsPerSec, rates.FoldRowsPerSec)

	fmt.Fprintf(s.out, "%-34s %10s %10s %10s\n", "HOT GROUPS by lock wait", "wait/s", "conflicts", "total")
	for _, g := range clipGroups(rates.TopWait, 10) {
		fmt.Fprintf(s.out, "%-34s %10.3f %10d %10s\n",
			groupLabel(g.View, g.Key), g.Rate, g.Delta, time.Duration(g.Total).Round(time.Millisecond))
	}
	fmt.Fprintf(s.out, "\n%-34s %10s %10s\n", "HOT GROUPS by escrow delta rate", "deltas/s", "total")
	for _, g := range clipGroups(rates.TopDelta, 10) {
		fmt.Fprintf(s.out, "%-34s %10.0f %10d\n", groupLabel(g.View, g.Key), g.Rate, g.Total)
	}
	fmt.Fprintf(s.out, "\n%-20s %10s %12s %10s %12s\n", "PER-VIEW COST", "rows/s", "mean fold", "wal B/s", "rows total")
	for _, v := range rates.Views {
		fmt.Fprintf(s.out, "%-20s %10.0f %12s %10.0f %12d\n",
			v.View, v.RowsPerSec, time.Duration(v.MeanFoldNs).Round(time.Microsecond),
			v.WALBytesPerSec, v.RowsTotal)
	}
	fmt.Fprintln(s.out)
}

// groupLabel renders "view[key]", truncated to keep columns aligned.
func groupLabel(view, key string) string {
	l := view + "[" + key + "]"
	if len(l) > 34 {
		l = l[:31] + "..."
	}
	return l
}

// clipGroups drops all-zero tails and caps the listing at n rows.
func clipGroups(gs []metrics.GroupRate, n int) []metrics.GroupRate {
	out := gs
	if len(out) > n {
		out = out[:n]
	}
	// Keep rows with any activity this interval or a nonzero total; the
	// listing is already sorted by interval delta.
	for len(out) > 0 && out[len(out)-1].Delta == 0 && out[len(out)-1].Total == 0 {
		out = out[:len(out)-1]
	}
	return out
}
