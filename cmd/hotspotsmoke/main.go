// Command hotspotsmoke is the CI smoke test for the hot-spot attribution
// layer: it opens a throwaway database, drives a Zipf(1.1)-skewed escrow
// workload whose true hottest group it counts client-side, and asserts that
// (a) DB.Metrics() reports that group as the top escrow heavy hitter with a
// held Space-Saving error bound, (b) the Prometheus endpoint exposes the
// same group as a labeled series, and (c) the per-view cost table carries
// real fold and WAL accounting. Exit status 0 means attribution works end
// to end.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"sync"

	vtxn "repro"
	"repro/internal/workload"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "hotspotsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	groups  = 256
	writers = 8
	perG    = 400
	skew    = 1.1

	// cellsPerInsert is the number of escrow cell updates one insert lands
	// on its group row — and therefore the sketch's attribution unit. For
	// branch_totals (COUNT(*) + SUM): the hidden group counter, the
	// COUNT(*) cell, and SUM's non-NULL count + running sum pair.
	cellsPerInsert = 4
)

func main() {
	dir, err := os.MkdirTemp("", "hotspotsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	db, err := vtxn.Open(dir, vtxn.Options{Watchdog: true})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyEscrow,
	}); err != nil {
		fail("create view: %v", err)
	}

	// Zipf-skewed inserts: every insert lands cellsPerInsert escrow cell
	// updates on its branch's view group. Count the true per-group insert
	// volume client-side.
	truth := make([]int64, groups)
	var truthMu sync.Mutex
	var wg sync.WaitGroup
	var ids int64
	var idMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pick := workload.Zipf(rng, skew, groups)
			local := make([]int64, groups)
			for i := 0; i < perG; i++ {
				branch := pick()
				idMu.Lock()
				ids++
				id := ids
				idMu.Unlock()
				tx, err := db.Begin(vtxn.ReadCommitted)
				if err != nil {
					fail("begin: %v", err)
				}
				if err := tx.Insert("accounts", vtxn.Row{
					vtxn.Int(id), vtxn.Int(int64(branch)), vtxn.Int(10),
				}); err != nil {
					fail("insert: %v", err)
				}
				if err := tx.Commit(); err != nil {
					fail("commit: %v", err)
				}
				local[branch]++
			}
			truthMu.Lock()
			for g, n := range local {
				truth[g] += n
			}
			truthMu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()

	hottest, hottestN := 0, int64(0)
	for g, n := range truth {
		if n > hottestN {
			hottest, hottestN = g, n
		}
	}
	wantKey := fmt.Sprintf("%d", hottest)

	// (a) DB.Metrics() names the true hottest group as top delta hitter.
	snap := db.Metrics()
	if len(snap.Hotspots.TopDelta) == 0 {
		fail("hotspots.top_delta is empty after %d skewed commits", writers*perG)
	}
	top := snap.Hotspots.TopDelta[0]
	if top.View != "branch_totals" || top.Key != wantKey {
		fail("top_delta[0] = %s[%s] (est %d), want branch_totals[%s] (true %d)",
			top.View, top.Key, top.Value, wantKey, hottestN)
	}
	// Space-Saving bounds in the sketch's cell-update units: the estimate
	// never undercounts, and subtracting the tracked error never overcounts.
	trueDeltas := hottestN * cellsPerInsert
	if top.Value < trueDeltas || top.Value-top.Err > trueDeltas {
		fail("error bound violated: est %d, err %d, true %d", top.Value, top.Err, trueDeltas)
	}
	if len(snap.Hotspots.Views) == 0 {
		fail("hotspots.views is empty")
	}
	vc := snap.Hotspots.Views[0]
	if vc.View != "branch_totals" || vc.RowsFolded <= 0 || vc.FoldNs <= 0 || vc.WALBytes <= 0 {
		fail("view cost table malformed: %+v", vc)
	}
	if snap.Engine.UptimeNs <= 0 || snap.Engine.SnapshotUnixNs <= 0 {
		fail("snapshot clock missing: uptime %d, ts %d", snap.Engine.UptimeNs, snap.Engine.SnapshotUnixNs)
	}

	// (b) The Prometheus endpoint exposes the same hot group as a labeled
	// series.
	srv := httptest.NewServer(vtxn.MetricsHandler(db))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		fail("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail("read scrape: %v", err)
	}
	wantSeries := fmt.Sprintf("vtxn_hot_group_escrow_deltas_total{view=\"branch_totals\",key=\"%s\"}", wantKey)
	if !strings.Contains(string(body), wantSeries) {
		fail("prometheus exposition lacks %s", wantSeries)
	}
	if !strings.Contains(string(body), "vtxn_view_fold_rows_total{view=\"branch_totals\"}") {
		fail("prometheus exposition lacks the per-view fold series")
	}
	if !strings.Contains(string(body), "vtxn_uptime_seconds") {
		fail("prometheus exposition lacks vtxn_uptime_seconds")
	}

	fmt.Printf("hotspotsmoke: OK: group %s attributed (est %d, err %d, true %d) across metrics and prometheus\n",
		wantKey, top.Value, top.Err, trueDeltas)
}
