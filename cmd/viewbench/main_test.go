package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// TestResultsSchema is the golden-schema check for BENCH_results.json: it
// runs the headline experiment (F2) at smoke scale, merges its metrics the
// way main does, and asserts the fields downstream tooling (the CI bench
// gate, trend dashboards) depends on parse and carry real values.
func TestResultsSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke bench run not worth the race-detector time")
	}
	r, err := bench.Find("F2")
	if err != nil {
		t.Fatal(err)
	}
	// Capture the headline run's metrics snapshot the way -hotspots does.
	var headlineSnap *metrics.Snapshot
	bench.MetricsSink = func(s metrics.Snapshot) { headlineSnap = &s }
	defer func() { bench.MetricsSink = nil }()
	tb, err := r.Run(bench.Smoke)
	if err != nil {
		t.Fatalf("F2 smoke run: %v", err)
	}
	if tb.HeadlineName == "" {
		t.Fatal("F2 produced no headline metric")
	}
	results := map[string]headlineResult{
		tb.ID: attachHotspots(headlineResult{
			Metric:       tb.HeadlineName,
			Value:        tb.Headline,
			Ran:          time.Now().UTC().Format(time.RFC3339),
			AllocsPerOp:  tb.HeadlineAllocsPerOp,
			LockShards:   tb.HeadlineShards,
			LockColls:    tb.HeadlineCollisions,
			LockMaxQueue: tb.HeadlineMaxQueue,
		}, headlineSnap),
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := mergeResults(path, results); err != nil {
		t.Fatalf("mergeResults: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]headlineResult
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("results file does not parse: %v", err)
	}
	got, ok := parsed["F2"]
	if !ok {
		t.Fatalf("results file lacks F2 entry: %s", raw)
	}
	if got.Metric != "escrow_tx_per_sec_max_writers" {
		t.Errorf("F2 metric = %q, want escrow_tx_per_sec_max_writers", got.Metric)
	}
	if got.Value <= 0 {
		t.Errorf("F2 throughput = %v, want > 0", got.Value)
	}
	if got.AllocsPerOp <= 0 {
		t.Errorf("F2 allocs_per_op = %v, want > 0", got.AllocsPerOp)
	}
	if got.LockShards <= 0 {
		t.Errorf("F2 lock_shards = %d, want > 0", got.LockShards)
	}
	if got.LockColls < 0 || got.LockMaxQueue < 0 {
		t.Errorf("negative lock stats: collisions=%d max_queue=%d", got.LockColls, got.LockMaxQueue)
	}
	if _, err := time.Parse(time.RFC3339, got.Ran); err != nil {
		t.Errorf("ran timestamp %q is not RFC 3339: %v", got.Ran, err)
	}
	// The F2 escrow workload always produces delta attribution and folds, so
	// the -hotspots fields must survive the JSON round trip with real values.
	if len(got.HotGroups) == 0 {
		t.Error("hot_groups is empty for the escrow headline run")
	}
	for _, g := range got.HotGroups {
		if g.View == "" || g.Key == "" || g.Value <= 0 {
			t.Errorf("malformed hot group %+v", g)
		}
	}
	if len(got.ViewCosts) == 0 {
		t.Error("view_costs is empty for the escrow headline run")
	}
	for _, v := range got.ViewCosts {
		if v.View == "" || v.RowsFolded <= 0 || v.FoldNs <= 0 || v.WALBytes <= 0 {
			t.Errorf("malformed view cost %+v", v)
		}
	}

	// Merging again must keep the existing entry for experiments not re-run.
	if err := mergeResults(path, map[string]headlineResult{
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 1, Ran: got.Ran},
	}); err != nil {
		t.Fatalf("second merge: %v", err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed = nil
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("merged results file does not parse: %v", err)
	}
	if _, ok := parsed["F2"]; !ok {
		t.Error("merge dropped the F2 entry")
	}
	if _, ok := parsed["T1"]; !ok {
		t.Error("merge lost the fresh T1 entry")
	}
}
