// Command viewbench runs the reconstructed evaluation (DESIGN.md §4) and
// prints each experiment's table/series.
//
// Usage:
//
//	viewbench -list
//	viewbench -exp F2            # one experiment, full scale
//	viewbench -exp all -quick    # every experiment at ~1/8 scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiment ID (T1,F2,...) or comma list or 'all'")
		quick   = flag.Bool("quick", false, "run at reduced scale")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}

	var runners []bench.Runner
	if *expFlag == "all" {
		runners = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			r, err := bench.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		fmt.Printf("running %s (%s)...\n", r.ID, r.Name)
		start := time.Now()
		tb, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s(took %s)\n\n", tb, time.Since(start).Round(time.Millisecond))
	}
}
