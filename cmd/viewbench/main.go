// Command viewbench runs the reconstructed evaluation (DESIGN.md §4) and
// prints each experiment's table/series.
//
// Usage:
//
//	viewbench -list
//	viewbench -exp F2            # one experiment, full scale
//	viewbench -exp all -quick    # every experiment at ~1/8 scale
//
// Each experiment reports one headline metric (e.g. peak escrow throughput);
// viewbench merges them into a machine-readable JSON file (-json, default
// BENCH_results.json) so the performance trajectory across changes is
// tracked, not just printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// headlineResult is one experiment's tracked metric in the results file.
// Experiments that instrument their headline run additionally report its
// allocation cost and lock-manager shard statistics.
type headlineResult struct {
	Metric       string  `json:"metric"`
	Value        float64 `json:"value"`
	Ran          string  `json:"ran"` // RFC 3339
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	LockShards   int     `json:"lock_shards,omitempty"`
	LockColls    int64   `json:"lock_collisions,omitempty"`
	LockMaxQueue int64   `json:"lock_max_queue_depth,omitempty"`
	// With -hotspots: the headline run's top hot groups (by escrow delta
	// volume and by lock wait) and per-view maintenance cost table, straight
	// from the DB.Metrics() hotspots section.
	HotGroups     []metrics.HotGroupSnapshot `json:"hot_groups,omitempty"`
	HotWaitGroups []metrics.HotGroupSnapshot `json:"hot_wait_groups,omitempty"`
	ViewCosts     []metrics.ViewCostSnapshot `json:"view_costs,omitempty"`
	// With -freshness: the headline run's commit-to-visible latency
	// distribution (experiments that measure it: F9D, DAG). benchgate gates
	// the p99 upward like allocs/op.
	FreshP50Ns int64 `json:"commit_to_visible_p50_ns,omitempty"`
	FreshP99Ns int64 `json:"commit_to_visible_p99_ns,omitempty"`
}

// attachHotspots copies the headline run's hot-spot attribution into the
// results entry.
func attachHotspots(hr headlineResult, s *metrics.Snapshot) headlineResult {
	if s == nil {
		return hr
	}
	hr.HotGroups = s.Hotspots.TopDelta
	hr.HotWaitGroups = s.Hotspots.TopWait
	hr.ViewCosts = s.Hotspots.Views
	return hr
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "experiment ID (T1,F2,...) or comma list or 'all'")
		quick       = flag.Bool("quick", false, "run at reduced scale")
		smoke       = flag.Bool("smoke", false, "run at minimal scale (CI bench-smoke gate)")
		list        = flag.Bool("list", false, "list experiments and exit")
		jsonPath    = flag.String("json", "BENCH_results.json", "merge headline metrics into this file ('' disables)")
		metricsPath = flag.String("metrics", "", "write the headline run's DB.Metrics() snapshot to this JSON file")
		traceSlow   = flag.Duration("trace-slow", 0, "log engine trace events slower than this to stderr (0 disables)")
		watchdog    = flag.Bool("watchdog", true, "run the engine stall watchdog during experiments")
		scrub       = flag.Duration("scrub", 0, "run the online consistency scrubber during experiments at this tick (0 disables)")
		flightSink  = flag.String("flight-sink", "", "write automatic flight-record dumps (deadlock/timeout/stall) here: 'stderr' or a path ('' disables)")
		pprofLabels = flag.Bool("pprof-labels", false, "tag commit hot paths with runtime/pprof labels (costs allocations)")
		hotspots    = flag.Bool("hotspots", false, "include the headline run's top hot groups and per-view cost table in the results JSON")
		freshness   = flag.Bool("freshness", false, "include the headline run's commit-to-visible p50/p99 in the results JSON")
	)
	flag.Parse()

	if *traceSlow > 0 {
		bench.Tracer = metrics.NewSlowLogger(os.Stderr, *traceSlow, "viewbench ")
	}
	bench.Watchdog = *watchdog
	bench.ScrubInterval = *scrub
	bench.ProfileLabels = *pprofLabels
	switch *flightSink {
	case "":
	case "stderr":
		bench.FlightSink = os.Stderr
	default:
		f, err := os.Create(*flightSink)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening -flight-sink: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		bench.FlightSink = f
	}
	// SIGQUIT dumps the running database's flight record to stderr without
	// stopping the benchmark.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if db := bench.CurrentDB(); db != nil {
				db.DumpFlightRecord(os.Stderr)
			}
		}
	}()
	var headlineSnap *metrics.Snapshot
	if *metricsPath != "" || *hotspots {
		bench.MetricsSink = func(s metrics.Snapshot) {
			snap := s
			headlineSnap = &snap
			if *metricsPath == "" {
				return
			}
			buf, err := json.MarshalIndent(s, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "encoding metrics snapshot: %v\n", err)
				return
			}
			if err := os.WriteFile(*metricsPath, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metricsPath, err)
				return
			}
			fmt.Printf("headline metrics snapshot written to %s\n", *metricsPath)
		}
	}

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	if *smoke {
		scale = bench.Smoke
	}

	var runners []bench.Runner
	if *expFlag == "all" {
		runners = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			r, err := bench.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	results := make(map[string]headlineResult)
	for _, r := range runners {
		fmt.Printf("running %s (%s)...\n", r.ID, r.Name)
		start := time.Now()
		headlineSnap = nil
		tb, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s(took %s)\n\n", tb, time.Since(start).Round(time.Millisecond))
		if tb.HeadlineName != "" {
			hr := headlineResult{
				Metric:       tb.HeadlineName,
				Value:        tb.Headline,
				Ran:          time.Now().UTC().Format(time.RFC3339),
				AllocsPerOp:  tb.HeadlineAllocsPerOp,
				LockShards:   tb.HeadlineShards,
				LockColls:    tb.HeadlineCollisions,
				LockMaxQueue: tb.HeadlineMaxQueue,
			}
			if *hotspots {
				hr = attachHotspots(hr, headlineSnap)
			}
			if *freshness {
				hr.FreshP50Ns = tb.HeadlineFreshP50Ns
				hr.FreshP99Ns = tb.HeadlineFreshP99Ns
			}
			results[tb.ID] = hr
		}
	}

	if *jsonPath != "" && len(results) > 0 {
		if err := mergeResults(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("headline metrics merged into %s\n", *jsonPath)
	}
}

// mergeResults folds new headline metrics into the results file, keeping
// entries for experiments not run this time.
func mergeResults(path string, fresh map[string]headlineResult) error {
	all := make(map[string]headlineResult)
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &all); err != nil {
			return fmt.Errorf("existing file is not a results map: %w", err)
		}
	}
	for id, r := range fresh {
		all[id] = r
	}
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
