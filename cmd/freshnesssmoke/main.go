// Command freshnesssmoke is the CI smoke test for end-to-end maintenance
// tracing and per-view freshness accounting: it builds the 3-level deferred
// rollup chain (order_totals → customer_totals → region_totals), runs tilting
// writers through it, and truth-checks the observability plane end to end:
//
//	(a) causal linkage — one marked commit's flight-record span survives the
//	    async deferred-maintenance boundary: its deferred-publish resolves to
//	    the transaction's span, and a fold at every chain level plus the
//	    watermark advance that made it readable carry that span in their
//	    multi-parent spans list (checked over the JSONL export);
//	(b) honest accounting — each deferred view's commit-to-visible histogram
//	    gains samples, and a quiesced single-commit probe's recorded latency
//	    nests inside the client-measured commit→watermark-visible window,
//	    with staleness gauges back at zero once drained;
//	(c) SLO enforcement — an injected applier delay trips the freshness-SLO
//	    watchdog signature, which names the lagging view, counts the breach,
//	    and auto-dumps the flight record.
//
// Exit status 0 means the freshness plane tells the truth.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	vtxn "repro"
	"repro/internal/fault"
	"repro/internal/metrics"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "freshnesssmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	writers = 4
	items   = 2 * writers
	perItem = 100
	regions = 2
	tilts   = 50 // per writer
)

var chain = []string{"order_totals", "customer_totals", "region_totals"}

func main() {
	runLinkage()
	runSLO()
}

// openDB opens a fresh database in a temp dir; the caller owns cleanup.
func openDB(opts vtxn.Options) (*vtxn.DB, func()) {
	dir, err := os.MkdirTemp("", "freshnesssmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	db, err := vtxn.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		fail("open: %v", err)
	}
	return db, func() { db.Close(); os.RemoveAll(dir) }
}

// setupChain creates the order_items table and the 3-level deferred rollup
// chain over it.
func setupChain(db *vtxn.DB) {
	if err := db.CreateTable("order_items", []vtxn.Column{
		{Name: "item", Kind: vtxn.KindInt64},
		{Name: "order_id", Kind: vtxn.KindInt64},
		{Name: "customer", Kind: vtxn.KindInt64},
		{Name: "region", Kind: vtxn.KindString},
		{Name: "amount", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	sum := func(col, name string) vtxn.AggSpec {
		s := vtxn.Sum(col)
		s.Name = name
		return s
	}
	for _, v := range []vtxn.ViewDef{
		{Name: "order_totals", Kind: vtxn.ViewAggregate, Source: "order_items",
			GroupBy:  []string{"order_id", "customer", "region"},
			Aggs:     []vtxn.AggSpec{sum("amount", "total")},
			Strategy: vtxn.StrategyDeferred},
		{Name: "customer_totals", Kind: vtxn.ViewAggregate, Source: "order_totals",
			GroupBy:  []string{"customer", "region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: vtxn.StrategyDeferred},
		{Name: "region_totals", Kind: vtxn.ViewAggregate, Source: "customer_totals",
			GroupBy:  []string{"region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: vtxn.StrategyDeferred},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			fail("create view %s: %v", v.Name, err)
		}
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin load: %v", err)
	}
	for i := int64(0); i < items; i++ {
		if err := tx.Insert("order_items", vtxn.Row{
			vtxn.Int(i), vtxn.Int(i), vtxn.Int(i),
			vtxn.Str(fmt.Sprintf("region-%d", i%regions)), vtxn.Int(perItem),
		}); err != nil {
			fail("load: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("load commit: %v", err)
	}
}

// drainTo waits until region_totals (the chain's top) has applied ts.
func drainTo(db *vtxn.DB, ts uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "region_totals", ts); err != nil {
		fail("watermark wait: %v", err)
	}
}

// tilt shifts amount between items a and b in one committed transaction.
func tilt(db *vtxn.DB, a, b, av, bv int64) error {
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{4: vtxn.Int(av)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{4: vtxn.Int(bv)}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// freshOf returns the named view's freshness snapshot.
func freshOf(s vtxn.MetricsSnapshot, view string) (metrics.ViewFreshnessSnapshot, bool) {
	for _, v := range s.Freshness.Views {
		if v.View == view {
			return v, true
		}
	}
	return metrics.ViewFreshnessSnapshot{}, false
}

// runLinkage drives the tilt workload, then traces one marked commit across
// the deferred boundary and audits the freshness accounting against a
// client-side measurement.
func runLinkage() {
	db, cleanup := openDB(vtxn.Options{Watchdog: true})
	defer cleanup()
	setupChain(db)

	var wg sync.WaitGroup
	var commits int64
	for w := int64(0); w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); i < tilts; i++ {
				av, bv := int64(perItem-1), int64(perItem+1)
				if i%2 == 1 {
					av, bv = perItem, perItem
				}
				if err := tilt(db, a, b, av, bv); err != nil {
					fail("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}
	wg.Wait()

	// Quiesce fully, snapshot the histograms, then run one marked commit and
	// measure its commit→visible window from the client side.
	drainTo(db, db.Metrics().MVCC.Watermark)
	before := db.Metrics()

	probeStart := time.Now()
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("probe begin: %v", err)
	}
	// A genuinely new amount: an update to the current value folds to a
	// zero delta and publishes nothing, which would orphan the probe.
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(0)}, map[int]vtxn.Value{4: vtxn.Int(perItem + 7)}); err != nil {
		fail("probe update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		fail("probe commit: %v", err)
	}
	drainTo(db, tx.CommitTS())
	clientWindow := time.Since(probeStart)
	after := db.Metrics()

	checkLinkage(db, uint64(tx.ID()))
	checkAccounting(before, after, clientWindow)

	if err := db.CheckConsistency(); err != nil {
		fail("consistency at quiesce: %v", err)
	}
	fmt.Printf("freshnesssmoke: OK (linkage): %d tilting commits; marked commit's span linked publish→fold→advance across %d levels; probe visible in %s\n",
		atomic.LoadInt64(&commits), len(chain), clientWindow.Round(time.Microsecond))
}

// checkLinkage parses the JSONL flight record and asserts the marked
// transaction's span crossed the async boundary into every chain level.
func checkLinkage(db *vtxn.DB, txnID uint64) {
	var jsonl bytes.Buffer
	if err := db.WriteFlightRecordJSONL(&jsonl); err != nil {
		fail("flight record: %v", err)
	}
	type rec struct {
		Span     uint64   `json:"span"`
		Spans    []uint64 `json:"spans"`
		Type     string   `json:"type"`
		Txn      uint64   `json:"txn"`
		Resource string   `json:"resource"`
	}
	var commitSpan, publishSpan uint64
	applied := map[string]bool{}
	advanced := map[string]bool{}
	sc := bufio.NewScanner(&jsonl)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			fail("JSONL line does not parse: %v: %s", err, sc.Text())
		}
		switch r.Type {
		case "tx-begin":
			if r.Txn == txnID {
				commitSpan = r.Span
			}
		case "deferred-publish":
			if r.Txn == txnID {
				publishSpan = r.Span
			}
		case "deferred-apply", "watermark-advance":
			for _, s := range r.Spans {
				if commitSpan != 0 && s == commitSpan {
					if r.Type == "deferred-apply" {
						applied[r.Resource] = true
					} else {
						advanced[r.Resource] = true
					}
				}
			}
		}
	}
	if commitSpan == 0 {
		fail("marked transaction %d has no tx-begin span", txnID)
	}
	if publishSpan != commitSpan {
		fail("deferred-publish span %d != commit span %d", publishSpan, commitSpan)
	}
	for _, v := range chain {
		if !applied[v] {
			fail("no deferred-apply at level %q carries the commit's span %d (applied: %v)", v, commitSpan, applied)
		}
	}
	if !advanced["region_totals"] {
		fail("no watermark-advance for region_totals carries the commit's span %d (advanced: %v)", commitSpan, advanced)
	}
}

// checkAccounting asserts every chain view gained commit-to-visible samples,
// that the probe's recorded latency nests inside the client-measured window,
// and that staleness gauges read zero at quiesce.
func checkAccounting(before, after vtxn.MetricsSnapshot, clientWindow time.Duration) {
	for _, view := range chain {
		b, _ := freshOf(before, view)
		a, ok := freshOf(after, view)
		if !ok {
			fail("freshness section missing view %q", view)
		}
		if a.Strategy != "deferred" {
			fail("view %q freshness strategy = %q, want deferred", view, a.Strategy)
		}
		if a.CommitToVisible.Count == 0 {
			fail("view %q has no commit-to-visible samples", view)
		}
		nSamples := a.CommitToVisible.Count - b.CommitToVisible.Count
		nSum := a.CommitToVisible.SumNs - b.CommitToVisible.SumNs
		if nSamples <= 0 {
			fail("probe commit left no new commit-to-visible samples for %q", view)
		}
		// Every new sample's publish→advance interval nests inside the
		// client's begin→visible window, so their mean must too.
		if mean := time.Duration(nSum / nSamples); mean > clientWindow {
			fail("view %q recorded mean commit-to-visible %s exceeds the client-measured window %s",
				view, mean, clientWindow)
		}
		if a.StalenessNs != 0 {
			fail("view %q staleness %dns at quiesce, want 0", view, a.StalenessNs)
		}
	}
}

// delayHooks sleeps at the deferred-apply fault point, stalling the applier
// without failing it.
type delayHooks struct {
	mu    sync.Mutex
	delay time.Duration
}

func (h *delayHooks) SetDelay(d time.Duration) {
	h.mu.Lock()
	h.delay = d
	h.mu.Unlock()
}

func (h *delayHooks) Hit(p fault.Point) error {
	if p != fault.PointDeferredApply {
		return nil
	}
	h.mu.Lock()
	d := h.delay
	h.mu.Unlock()
	time.Sleep(d)
	return nil
}

// lockedBuffer is a concurrency-safe flight-record sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runSLO injects an applier delay and asserts the freshness-SLO watchdog
// names the lagging view, counts the breach, and dumps the flight record.
func runSLO() {
	hooks := &delayHooks{}
	sink := &lockedBuffer{}
	db, cleanup := openDB(vtxn.Options{
		Hooks:            hooks,
		FlightSink:       sink,
		Watchdog:         true,
		WatchdogInterval: 10 * time.Millisecond,
		FreshnessSLO:     50 * time.Millisecond,
	})
	defer cleanup()
	setupChain(db)
	drainTo(db, db.Metrics().MVCC.Watermark)

	hooks.SetDelay(150 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	breached := false
	for !breached && time.Now().Before(deadline) {
		if err := tilt(db, 0, 1, perItem-1, perItem+1); err != nil {
			fail("slo writer: %v", err)
		}
		breached = db.Metrics().Watchdog.FreshnessBreaches > 0
		time.Sleep(5 * time.Millisecond)
	}
	hooks.SetDelay(0)
	if !breached {
		fail("watchdog never counted a freshness breach under a 150ms applier delay against a 50ms SLO")
	}
	dump := sink.String()
	if !strings.Contains(dump, "watchdog stall: freshness-slo") {
		fail("no flight-record auto-dump for the SLO breach")
	}
	if !strings.Contains(dump, "order_totals") {
		fail("the SLO breach dump does not name a lagging chain view:\n%s", clip(dump))
	}
	drainTo(db, db.Metrics().MVCC.Watermark)
	fmt.Printf("freshnesssmoke: OK (slo): injected 150ms applier delay tripped the 50ms freshness SLO; breach counted and flight record dumped naming the lagging view\n")
}

// clip bounds a dump for error output.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n... (clipped)"
	}
	return s
}
