// Command mvccsmoke is the CI smoke test for the MVCC snapshot read path: it
// opens a throwaway database, runs sum-preserving escrow transfer writers
// against read-only snapshot readers, and truth-checks the whole protocol:
// (a) every snapshot ScanView sees a transaction-consistent world — the view
// COUNT equals the account count and the view SUM equals the invariant grand
// total, never a torn half-transfer or an uncommitted delta; (b) a snapshot
// pinned before a commit still resolves the old world after it; (c) once the
// load quiesces and the last snapshot retires, the version-chain pruner
// drains every chain back to its B-tree base; and (d) the mvcc.* metrics
// record the traffic. Exit status 0 means snapshot reads work end to end.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	vtxn "repro"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "mvccsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	writers       = 4
	accounts      = 2 * writers // each writer owns a disjoint pair
	perAccount    = 1000
	total         = accounts * perAccount
	readers       = 4
	scansPerRead  = 300
	prunerRetries = 50
)

func main() {
	dir, err := os.MkdirTemp("", "mvccsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	db, err := vtxn.Open(dir, vtxn.Options{Watchdog: true})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	if err := db.CreateIndexedView(vtxn.ViewDef{
		Name:        "branch_totals",
		Kind:        vtxn.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []vtxn.AggSpec{
			{Func: vtxn.AggCountRows},
			{Func: vtxn.AggSum, Arg: vtxn.Col(2)},
		},
		Strategy: vtxn.StrategyEscrow,
	}); err != nil {
		fail("create view: %v", err)
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin load: %v", err)
	}
	for i := int64(0); i < accounts; i++ {
		if err := tx.Insert("accounts", vtxn.Row{
			vtxn.Int(i), vtxn.Int(i % 2), vtxn.Int(perAccount),
		}); err != nil {
			fail("load: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("load commit: %v", err)
	}

	// Stability check: pin a snapshot, commit a tilt behind it, and make sure
	// the pinned snapshot still reads the pre-commit balance.
	pinned, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
	if err != nil {
		fail("begin pinned snapshot: %v", err)
	}
	if err := tilt(db, 0, 1, perAccount-5, perAccount+5); err != nil {
		fail("tilt behind snapshot: %v", err)
	}
	row, ok, err := pinned.Get("accounts", vtxn.Row{vtxn.Int(0)})
	if err != nil || !ok || row[2].AsInt() != perAccount {
		fail("pinned snapshot read = %v %v %v, want balance %d", row, ok, err, perAccount)
	}
	if err := pinned.Commit(); err != nil {
		fail("pinned snapshot commit: %v", err)
	}
	if err := tilt(db, 0, 1, perAccount, perAccount); err != nil {
		fail("level restore: %v", err)
	}

	// Sum-preserving churn: writer w tilts its own pair (2w, 2w+1) back and
	// forth — both legs in one transaction, so any consistent snapshot sums
	// to exactly total.
	var stop atomic.Bool
	var commits int64
	var wwg sync.WaitGroup
	for w := int64(0); w < writers; w++ {
		wwg.Add(1)
		go func(w int64) {
			defer wwg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); !stop.Load(); i++ {
				av, bv := int64(perAccount-1), int64(perAccount+1)
				if i%2 == 1 {
					av, bv = perAccount, perAccount
				}
				if err := tilt(db, a, b, av, bv); err != nil {
					fail("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; i < scansPerRead; i++ {
				snap, err := db.BeginTx(context.Background(), vtxn.TxOptions{ReadOnly: true})
				if err != nil {
					fail("reader %d begin: %v", r, err)
				}
				rows, err := snap.ScanView("branch_totals")
				if err != nil {
					fail("reader %d scan: %v", r, err)
				}
				var count, sum int64
				for _, vr := range rows {
					count += vr.Result[0].AsInt()
					if !vr.Result[1].IsNull() {
						sum += vr.Result[1].AsInt()
					}
				}
				if count != accounts || sum != total {
					fail("reader %d: torn snapshot count=%d sum=%d, want %d/%d",
						r, count, sum, accounts, total)
				}
				if err := snap.Commit(); err != nil {
					fail("reader %d commit: %v", r, err)
				}
			}
		}(r)
	}
	rwg.Wait()
	stop.Store(true)
	wwg.Wait()

	// Every snapshot has retired and no writer is in flight: the pruner must
	// be able to drain every chain back to its base.
	chains := 0
	for i := 0; ; i++ {
		s := db.Metrics()
		chains = int(s.MVCC.Chains)
		if chains == 0 {
			break
		}
		if i >= prunerRetries {
			fail("pruner left %d chains after %d passes", chains, i)
		}
		db.PruneVersions()
	}

	s := db.Metrics()
	wantSnaps := int64(readers*scansPerRead) + 1 // the pinned snapshot too
	if s.MVCC.Snapshots < wantSnaps {
		fail("snapshots begun = %d, want >= %d", s.MVCC.Snapshots, wantSnaps)
	}
	if s.MVCC.ActiveSnapshots != 0 {
		fail("active snapshots = %d after quiesce", s.MVCC.ActiveSnapshots)
	}
	if s.MVCC.VersionsStamped <= 0 || s.MVCC.VersionsPruned <= 0 {
		fail("version flow: stamped %d, pruned %d", s.MVCC.VersionsStamped, s.MVCC.VersionsPruned)
	}
	if s.MVCC.Watermark == 0 {
		fail("watermark never advanced")
	}
	if s.MVCC.ChainLenHighWater <= 0 {
		fail("chain high-water never observed")
	}

	// The drained state must equal the recomputed truth.
	if err := db.CheckConsistency(); err != nil {
		fail("consistency after prune: %v", err)
	}
	fmt.Printf("mvccsmoke: OK: %d snapshot scans consistent against %d escrow commits; %d versions stamped, %d pruned, 0 chains left\n",
		readers*scansPerRead, atomic.LoadInt64(&commits), s.MVCC.VersionsStamped, s.MVCC.VersionsPruned)
}

// tilt sets the balances of accounts a and b in one committed transaction.
func tilt(db *vtxn.DB, a, b, av, bv int64) error {
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		return err
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{2: vtxn.Int(av)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("accounts", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{2: vtxn.Int(bv)}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}
