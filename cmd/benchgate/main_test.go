package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGate(t *testing.T) {
	baseline := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500},
		"F9": {Metric: "only_in_baseline", Value: 10},
	}
	fresh := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 800}, // -20%: ok
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 300},       // -40%: regression
		"T7": {Metric: "only_in_fresh", Value: 1},
	}
	failures, checked := gate(baseline, fresh, 0.30, 0.20, 1.0)
	if checked != 2 {
		t.Errorf("checked = %d, want 2 (F2 and T1 are shared)", checked)
	}
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the T1 regression", failures)
	}

	// At the boundary: exactly -30% passes, a hair more fails.
	fresh["T1"] = metric{Metric: "escrow_view_ops_per_sec", Value: 350}
	if failures, _ := gate(baseline, fresh, 0.30, 0.20, 1.0); len(failures) != 0 {
		t.Errorf("-30%% exactly should pass, got %v", failures)
	}
	fresh["T1"] = metric{Metric: "escrow_view_ops_per_sec", Value: 349}
	if failures, _ := gate(baseline, fresh, 0.30, 0.20, 1.0); len(failures) != 1 {
		t.Errorf("-30.2%% should fail, got %v", failures)
	}
}

func TestGateAllocsPerOp(t *testing.T) {
	baseline := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 40},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500}, // no alloc data: not gated
	}
	fresh := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 48},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500, AllocsPerOp: 99},
	}
	// Exactly +20% passes; both throughput values and F2's allocs count as checked.
	failures, checked := gate(baseline, fresh, 0.30, 0.20, 1.0)
	if checked != 3 {
		t.Errorf("checked = %d, want 3 (two values + F2 allocs)", checked)
	}
	if len(failures) != 0 {
		t.Fatalf("+20%% allocs exactly should pass, got %v", failures)
	}

	// A hair above the ceiling fails, and throughput alone staying flat
	// doesn't mask it.
	fresh["F2"] = metric{Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 48.1}
	failures, _ = gate(baseline, fresh, 0.30, 0.20, 1.0)
	if len(failures) != 1 {
		t.Fatalf("+20.25%% allocs should fail, got %v", failures)
	}

	// Fresh results missing alloc data (older viewbench) are skipped, not failed.
	fresh["F2"] = metric{Metric: "escrow_tx_per_sec_max_writers", Value: 1000}
	failures, checked = gate(baseline, fresh, 0.30, 0.20, 1.0)
	if len(failures) != 0 || checked != 2 {
		t.Fatalf("missing fresh allocs should skip the alloc gate: failures=%v checked=%d", failures, checked)
	}
}

func TestGateFreshnessP99(t *testing.T) {
	baseline := map[string]metric{
		"F9D": {Metric: "deferred_update_tx_per_sec", Value: 1000, FreshP99Ns: 2_000_000},
		"DAG": {Metric: "rollup_chain_tx_per_sec", Value: 500}, // no freshness data: not gated
	}
	fresh := map[string]metric{
		"F9D": {Metric: "deferred_update_tx_per_sec", Value: 1000, FreshP99Ns: 4_000_000},
		"DAG": {Metric: "rollup_chain_tx_per_sec", Value: 500, FreshP99Ns: 9_999_999},
	}
	// Exactly 2x passes under the default 1.0 threshold; both throughput
	// values and F9D's p99 count as checked.
	failures, checked := gate(baseline, fresh, 0.30, 0.20, 1.0)
	if checked != 3 {
		t.Errorf("checked = %d, want 3 (two values + F9D p99)", checked)
	}
	if len(failures) != 0 {
		t.Fatalf("2x p99 exactly should pass, got %v", failures)
	}

	// A hair above the ceiling fails, and flat throughput doesn't mask it.
	fresh["F9D"] = metric{Metric: "deferred_update_tx_per_sec", Value: 1000, FreshP99Ns: 4_000_001}
	failures, _ = gate(baseline, fresh, 0.30, 0.20, 1.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "commit-to-visible") {
		t.Fatalf("p99 above ceiling should fail with a commit-to-visible message, got %v", failures)
	}

	// Fresh results missing freshness data (run without -freshness) are
	// skipped, not failed.
	fresh["F9D"] = metric{Metric: "deferred_update_tx_per_sec", Value: 1000}
	failures, checked = gate(baseline, fresh, 0.30, 0.20, 1.0)
	if len(failures) != 0 || checked != 2 {
		t.Fatalf("missing fresh p99 should skip the freshness gate: failures=%v checked=%d", failures, checked)
	}
}

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodBaseline = `{"F2": {"metric": "escrow_tx_per_sec_max_writers", "value": 1000}}`

func TestRunExitCodes(t *testing.T) {
	base := writeFile(t, "baseline.json", goodBaseline)
	var out, errOut strings.Builder

	// Happy path: shared metric within threshold.
	fresh := writeFile(t, "fresh.json", `{"F2": {"metric": "escrow_tx_per_sec_max_writers", "value": 900}}`)
	if code := run([]string{"-baseline", base, "-fresh", fresh}, &out, &errOut); code != 0 {
		t.Fatalf("in-threshold run = %d (stderr %q), want 0", code, errOut.String())
	}
	if !strings.Contains(out.String(), "within") {
		t.Errorf("success summary missing from stdout: %q", out.String())
	}

	// A regression beyond threshold is exit 1 with a FAIL line.
	out.Reset()
	fresh = writeFile(t, "slow.json", `{"F2": {"metric": "escrow_tx_per_sec_max_writers", "value": 100}}`)
	if code := run([]string{"-baseline", base, "-fresh", fresh}, &out, &errOut); code != 1 {
		t.Fatalf("regressed run = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL F2") {
		t.Errorf("regression output = %q, want a FAIL F2 line", out.String())
	}
}

func TestRunRequireMissingExperiment(t *testing.T) {
	base := writeFile(t, "baseline.json", goodBaseline)
	fresh := writeFile(t, "fresh.json", goodBaseline)
	var out, errOut strings.Builder

	// Required experiment absent from both files: exit 2, named in stderr.
	code := run([]string{"-baseline", base, "-fresh", fresh, "-require", "F2,T5R"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("missing required experiment = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "T5R missing") {
		t.Errorf("stderr = %q, want the missing ID named", errOut.String())
	}

	// Present everywhere: the same -require passes.
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-fresh", fresh, "-require", "F2"}, &out, &errOut); code != 0 {
		t.Fatalf("satisfied -require = %d (stderr %q), want 0", code, errOut.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	base := writeFile(t, "baseline.json", goodBaseline)
	var out, errOut strings.Builder

	// Malformed JSON in either file must not crash or pass: exit 2.
	bad := writeFile(t, "bad.json", `{"F2": {"value": `)
	if code := run([]string{"-baseline", bad, "-fresh", base}, &out, &errOut); code != 2 {
		t.Fatalf("malformed baseline = %d, want 2", code)
	}
	if code := run([]string{"-baseline", base, "-fresh", bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed fresh = %d, want 2", code)
	}

	// Missing file: exit 2.
	if code := run([]string{"-baseline", base, "-fresh", filepath.Join(t.TempDir(), "nope.json")}, &out, &errOut); code != 2 {
		t.Fatalf("missing fresh file = %d, want 2", code)
	}

	// No overlap between the files gates nothing: exit 2, not a silent pass.
	other := writeFile(t, "other.json", `{"T9": {"metric": "x", "value": 5}}`)
	if code := run([]string{"-baseline", base, "-fresh", other}, &out, &errOut); code != 2 {
		t.Fatalf("disjoint files = %d, want 2", code)
	}

	// Unknown flag: exit 2.
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag = %d, want 2", code)
	}
}
