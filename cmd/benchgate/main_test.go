package main

import "testing"

func TestGate(t *testing.T) {
	baseline := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500},
		"F9": {Metric: "only_in_baseline", Value: 10},
	}
	fresh := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 800}, // -20%: ok
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 300},       // -40%: regression
		"T7": {Metric: "only_in_fresh", Value: 1},
	}
	failures, checked := gate(baseline, fresh, 0.30, 0.20)
	if checked != 2 {
		t.Errorf("checked = %d, want 2 (F2 and T1 are shared)", checked)
	}
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the T1 regression", failures)
	}

	// At the boundary: exactly -30% passes, a hair more fails.
	fresh["T1"] = metric{Metric: "escrow_view_ops_per_sec", Value: 350}
	if failures, _ := gate(baseline, fresh, 0.30, 0.20); len(failures) != 0 {
		t.Errorf("-30%% exactly should pass, got %v", failures)
	}
	fresh["T1"] = metric{Metric: "escrow_view_ops_per_sec", Value: 349}
	if failures, _ := gate(baseline, fresh, 0.30, 0.20); len(failures) != 1 {
		t.Errorf("-30.2%% should fail, got %v", failures)
	}
}

func TestGateAllocsPerOp(t *testing.T) {
	baseline := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 40},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500}, // no alloc data: not gated
	}
	fresh := map[string]metric{
		"F2": {Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 48},
		"T1": {Metric: "escrow_view_ops_per_sec", Value: 500, AllocsPerOp: 99},
	}
	// Exactly +20% passes; both throughput values and F2's allocs count as checked.
	failures, checked := gate(baseline, fresh, 0.30, 0.20)
	if checked != 3 {
		t.Errorf("checked = %d, want 3 (two values + F2 allocs)", checked)
	}
	if len(failures) != 0 {
		t.Fatalf("+20%% allocs exactly should pass, got %v", failures)
	}

	// A hair above the ceiling fails, and throughput alone staying flat
	// doesn't mask it.
	fresh["F2"] = metric{Metric: "escrow_tx_per_sec_max_writers", Value: 1000, AllocsPerOp: 48.1}
	failures, _ = gate(baseline, fresh, 0.30, 0.20)
	if len(failures) != 1 {
		t.Fatalf("+20.25%% allocs should fail, got %v", failures)
	}

	// Fresh results missing alloc data (older viewbench) are skipped, not failed.
	fresh["F2"] = metric{Metric: "escrow_tx_per_sec_max_writers", Value: 1000}
	failures, checked = gate(baseline, fresh, 0.30, 0.20)
	if len(failures) != 0 || checked != 2 {
		t.Fatalf("missing fresh allocs should skip the alloc gate: failures=%v checked=%d", failures, checked)
	}
}
