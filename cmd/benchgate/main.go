// Command benchgate guards the benchmark trajectory in CI: it compares a
// fresh viewbench results file against the baseline committed in the repo and
// fails when any shared headline metric regressed more than the threshold.
//
//	benchgate -baseline BENCH_baseline.json -fresh BENCH_results.json
//
// Only experiments present in both files are gated, so adding a new
// experiment never breaks the gate; refresh the baseline by re-running
// viewbench with -json pointed at it. Experiments named with -require must
// appear in BOTH files — that is how CI pins the headline metrics (F2 write
// throughput, T5R snapshot reads) so a renamed or silently-dropped
// experiment fails the gate instead of shrinking it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// metric mirrors the subset of viewbench's result schema the gate reads.
type metric struct {
	Metric      string  `json:"metric"`
	Value       float64 `json:"value"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	FreshP99Ns  int64   `json:"commit_to_visible_p99_ns"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole gate behind a testable seam: exit 0 means every shared
// metric is within threshold, 1 means a regression, 2 means the gate itself
// could not run (unreadable/malformed file, missing required experiment, or
// no overlap between baseline and fresh).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline results file")
	freshPath := fs.String("fresh", "BENCH_results.json", "results file from this run")
	threshold := fs.Float64("threshold", 0.30, "max allowed fractional regression (0.30 = 30%)")
	allocThreshold := fs.Float64("alloc-threshold", 0.20, "max allowed fractional allocs/op growth (0.20 = 20%)")
	freshThreshold := fs.Float64("freshness-threshold", 1.0, "max allowed fractional p99 commit-to-visible growth (1.0 = 2x)")
	require := fs.String("require", "", "comma-separated experiment IDs that must appear in both files")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *require != "" {
		missing := false
		for _, id := range strings.Split(*require, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := baseline[id]; !ok {
				fmt.Fprintf(stderr, "benchgate: required experiment %s missing from %s\n", id, *baselinePath)
				missing = true
			}
			if _, ok := fresh[id]; !ok {
				fmt.Fprintf(stderr, "benchgate: required experiment %s missing from %s\n", id, *freshPath)
				missing = true
			}
		}
		if missing {
			return 2
		}
	}
	failures, checked := gate(baseline, fresh, *threshold, *allocThreshold, *freshThreshold)
	for _, f := range failures {
		fmt.Fprintln(stdout, "FAIL "+f)
	}
	if checked == 0 {
		fmt.Fprintf(stderr, "benchgate: no experiment appears in both %s and %s\n", *baselinePath, *freshPath)
		return 2
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: %d metric(s) within %.0f%% of baseline\n", checked, *threshold*100)
	return 0
}

func load(path string) (map[string]metric, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	m := make(map[string]metric)
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return m, nil
}

// gate compares every experiment present in both maps and returns a message
// per regression beyond threshold, plus how many metrics it checked. Headline
// values gate downward (lower is worse); allocs/op and p99 commit-to-visible
// gate upward (higher is worse) against their own thresholds, for experiments
// whose baseline records them.
func gate(baseline, fresh map[string]metric, threshold, allocThreshold, freshThreshold float64) (failures []string, checked int) {
	ids := make([]string, 0, len(baseline))
	for id := range baseline {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		base := baseline[id]
		got, ok := fresh[id]
		if !ok || base.Value <= 0 {
			continue
		}
		checked++
		floor := base.Value * (1 - threshold)
		if got.Value < floor {
			failures = append(failures, fmt.Sprintf(
				"%s %s: %.2f is %.1f%% below baseline %.2f (floor %.2f)",
				id, base.Metric, got.Value, 100*(1-got.Value/base.Value), base.Value, floor))
		}
		if base.AllocsPerOp > 0 && got.AllocsPerOp > 0 {
			checked++
			ceil := base.AllocsPerOp * (1 + allocThreshold)
			if got.AllocsPerOp > ceil {
				failures = append(failures, fmt.Sprintf(
					"%s allocs/op: %.2f is %.1f%% above baseline %.2f (ceiling %.2f)",
					id, got.AllocsPerOp, 100*(got.AllocsPerOp/base.AllocsPerOp-1), base.AllocsPerOp, ceil))
			}
		}
		if base.FreshP99Ns > 0 && got.FreshP99Ns > 0 {
			checked++
			ceil := float64(base.FreshP99Ns) * (1 + freshThreshold)
			if float64(got.FreshP99Ns) > ceil {
				failures = append(failures, fmt.Sprintf(
					"%s p99 commit-to-visible: %dns is %.1f%% above baseline %dns (ceiling %.0fns)",
					id, got.FreshP99Ns, 100*(float64(got.FreshP99Ns)/float64(base.FreshP99Ns)-1), base.FreshP99Ns, ceil))
			}
		}
	}
	return failures, checked
}
