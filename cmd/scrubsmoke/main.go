// Command scrubsmoke is the CI truth check for the online consistency
// scrubber: it proves the verifier stays silent on a healthy engine and
// cannot stay silent on a corrupt one.
//
//	(a) clean run — with the background scrubber live at a tight interval,
//	    4 concurrent tilting writers hammer a catalog that exercises every
//	    snapshot-selection class (an immediate escrow view plus the 3-level
//	    deferred rollup chain order_totals → customer_totals →
//	    region_totals). The scrubber must complete cycles during the storm
//	    with zero divergences, and after a drain an on-demand full pass must
//	    come back clean with every view covered (passes > 0, coverage
//	    watermark advanced past the quiesce point).
//	(b) detection — a fault-injection hook corrupts one stored view row in
//	    place, underneath the WAL and lock manager. The next full pass must
//	    find it: exact (view, group) attribution in the per-view metrics and
//	    the TraceScrubDivergence event, a flight-record auto-dump naming the
//	    row, and the watchdog's scrub-divergence signature firing on its
//	    next poll.
//
// Exit status 0 means the scrubber both tolerates concurrency and detects
// corruption. -long scales the clean run up for the nightly soak.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	vtxn "repro"
	"repro/internal/fault"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "scrubsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

const (
	writers = 4
	items   = 2 * writers
	perItem = 100
	regions = 2
)

// allViews is every maintained view the scrubber must cover: one immediate
// escrow view and the 3-level deferred chain (in dependency order).
var allViews = []string{"amount_by_region", "order_totals", "customer_totals", "region_totals"}

func main() {
	long := flag.Bool("long", false, "nightly soak: more commits and a longer live-scrub window")
	flag.Parse()
	runClean(*long)
	runDetection()
}

// openDB opens a fresh database in a temp dir; the caller owns cleanup.
func openDB(opts vtxn.Options) (*vtxn.DB, func()) {
	dir, err := os.MkdirTemp("", "scrubsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	db, err := vtxn.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		fail("open: %v", err)
	}
	return db, func() { db.Close(); os.RemoveAll(dir) }
}

// setup creates the order_items table, an immediate escrow rollup, and the
// 3-level deferred chain — together they exercise all three of the
// scrubber's snapshot-selection classes (single-pin immediate, deferred
// pair-protocol root, co-atomic deferred-over-deferred).
func setup(db *vtxn.DB) {
	if err := db.CreateTable("order_items", []vtxn.Column{
		{Name: "item", Kind: vtxn.KindInt64},
		{Name: "order_id", Kind: vtxn.KindInt64},
		{Name: "customer", Kind: vtxn.KindInt64},
		{Name: "region", Kind: vtxn.KindString},
		{Name: "amount", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	sum := func(col, name string) vtxn.AggSpec {
		s := vtxn.Sum(col)
		s.Name = name
		return s
	}
	for _, v := range []vtxn.ViewDef{
		{Name: "amount_by_region", Kind: vtxn.ViewAggregate, Source: "order_items",
			GroupBy: []string{"region"},
			Aggs:    []vtxn.AggSpec{vtxn.CountRows(), sum("amount", "total")}},
		{Name: "order_totals", Kind: vtxn.ViewAggregate, Source: "order_items",
			GroupBy:  []string{"order_id", "customer", "region"},
			Aggs:     []vtxn.AggSpec{sum("amount", "total")},
			Strategy: vtxn.StrategyDeferred},
		{Name: "customer_totals", Kind: vtxn.ViewAggregate, Source: "order_totals",
			GroupBy:  []string{"customer", "region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: vtxn.StrategyDeferred},
		{Name: "region_totals", Kind: vtxn.ViewAggregate, Source: "customer_totals",
			GroupBy:  []string{"region"},
			Aggs:     []vtxn.AggSpec{vtxn.CountRows(), sum("total", "total")},
			Strategy: vtxn.StrategyDeferred},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			fail("create view %s: %v", v.Name, err)
		}
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin load: %v", err)
	}
	for i := int64(0); i < items; i++ {
		if err := tx.Insert("order_items", vtxn.Row{
			vtxn.Int(i), vtxn.Int(i), vtxn.Int(i),
			vtxn.Str(fmt.Sprintf("region-%d", i%regions)), vtxn.Int(perItem),
		}); err != nil {
			fail("load: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("load commit: %v", err)
	}
}

// drainTo waits until region_totals (the chain's top) has applied ts.
func drainTo(db *vtxn.DB, ts uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "region_totals", ts); err != nil {
		fail("watermark wait: %v", err)
	}
}

// tilt shifts amount between items a and b in one committed transaction.
func tilt(db *vtxn.DB, a, b, av, bv int64) error {
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(a)}, map[int]vtxn.Value{4: vtxn.Int(av)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("order_items", vtxn.Row{vtxn.Int(b)}, map[int]vtxn.Value{4: vtxn.Int(bv)}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// runClean drives the tilt storm under a live scrubber and asserts silence
// plus full coverage.
func runClean(long bool) {
	tilts := int64(50)
	if long {
		tilts = 2000
	}
	db, cleanup := openDB(vtxn.Options{
		ScrubInterval:  time.Millisecond,
		ScrubRowBudget: -1, // unpaced: the smoke wants cycles, not realism
		Watchdog:       true,
	})
	defer cleanup()
	setup(db)

	var wg sync.WaitGroup
	var commits int64
	done := make(chan struct{})
	for w := int64(0); w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			a, b := 2*w, 2*w+1
			for i := int64(0); i < tilts; i++ {
				av, bv := int64(perItem-1), int64(perItem+1)
				if i%2 == 1 {
					av, bv = perItem, perItem
				}
				if err := tilt(db, a, b, av, bv); err != nil {
					fail("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	// The scrubber must stay silent WHILE the writers run, not just after.
	var liveSlices int64
	for storming := true; storming; {
		select {
		case <-done:
			storming = false
		case <-time.After(2 * time.Millisecond):
		}
		sc := db.Metrics().Scrub
		if sc.Divergences != 0 {
			fail("scrubber reported %d divergences mid-storm on a healthy engine", sc.Divergences)
		}
		if sc.Slices > liveSlices {
			liveSlices = sc.Slices
		}
	}

	// Let the background loop finish at least two full cycles post-storm.
	deadline := time.Now().Add(30 * time.Second)
	var sc vtxn.MetricsSnapshot
	for {
		sc = db.Metrics()
		if sc.Scrub.Cycles >= 2 {
			break
		}
		if time.Now().After(deadline) {
			fail("background scrubber completed %d cycles in 30s, want >= 2", sc.Scrub.Cycles)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sc.Scrub.Enabled {
		fail("metrics report the background scrubber disabled")
	}
	if sc.Scrub.Slices == 0 || sc.Scrub.RowsVerified == 0 {
		fail("scrubber cycled without verifying anything: slices %d rows %d", sc.Scrub.Slices, sc.Scrub.RowsVerified)
	}

	// Quiesce, then demand a clean on-the-spot full pass with total coverage.
	wm := db.Metrics().MVCC.Watermark
	drainTo(db, wm)
	n, err := db.ScrubNow(context.Background())
	if err != nil {
		fail("full pass: %v", err)
	}
	if n != 0 {
		fail("full pass found %d divergences on a healthy engine", n)
	}
	after := db.Metrics().Scrub
	if after.Divergences != 0 || db.Metrics().Watchdog.ScrubDivergences != 0 {
		fail("divergence counters nonzero on a healthy engine: scrub %d watchdog %d",
			after.Divergences, db.Metrics().Watchdog.ScrubDivergences)
	}
	covered := map[string]bool{}
	for _, v := range after.Views {
		covered[v.View] = true
		if v.Passes == 0 {
			fail("view %q never completed a verification pass", v.View)
		}
		if v.CoverageTS < wm {
			fail("view %q coverage ts %d behind the quiesce watermark %d", v.View, v.CoverageTS, wm)
		}
		if v.Divergences != 0 {
			fail("view %q reports %d divergences on a healthy engine", v.View, v.Divergences)
		}
	}
	for _, name := range allViews {
		if !covered[name] {
			fail("scrub metrics missing view %q (have %v)", name, after.Views)
		}
	}

	// The offline checker (same verify core) must agree, view by view.
	var progressed int32
	if err := db.CheckConsistencyCtx(context.Background(), func(p vtxn.CheckProgress) {
		atomic.AddInt32(&progressed, 1)
	}); err != nil {
		fail("consistency at quiesce: %v", err)
	}
	if int(progressed) != len(allViews) {
		fail("CheckConsistencyCtx progressed %d views, want %d", progressed, len(allViews))
	}

	fmt.Printf("scrubsmoke: OK (clean): %d tilting commits over %d views; %d live slices during the storm, %d cycles, %d rows verified, 0 divergences; full pass clean with coverage >= %d on all views\n",
		atomic.LoadInt64(&commits), len(allViews), liveSlices, after.Cycles, after.RowsVerified, wm)
}

// traceRecorder captures scrub-divergence and watchdog-stall events for
// attribution checks.
type traceRecorder struct {
	mu     sync.Mutex
	events []vtxn.TraceEvent
}

func (r *traceRecorder) TraceEvent(e vtxn.TraceEvent) {
	if e.Type != vtxn.TraceScrubDivergence && e.Type != vtxn.TraceStall {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *traceRecorder) ofType(t vtxn.TraceEventType) []vtxn.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []vtxn.TraceEvent
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// countingHooks counts hits on the view-corruption fault point, proving the
// injection went through the engine's fault plane rather than a side door.
type countingHooks struct{ corrupts int64 }

func (h *countingHooks) Hit(p fault.Point) error {
	if p == fault.PointViewCorrupt {
		atomic.AddInt64(&h.corrupts, 1)
	}
	return nil
}

// lockedBuffer is a concurrency-safe flight-record sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// clip bounds a dump for error output.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n... (clipped)"
	}
	return s
}

// runDetection corrupts one stored view row in place and asserts the
// scrubber's full detection protocol: exact attribution, trace event,
// flight dump, watchdog signature.
func runDetection() {
	const (
		badView  = "region_totals"
		badGroup = "region-0"
	)
	rec := &traceRecorder{}
	hooks := &countingHooks{}
	sink := &lockedBuffer{}
	db, cleanup := openDB(vtxn.Options{
		ScrubInterval:    -1, // on-demand only: the pass must find it, not luck
		Watchdog:         true,
		WatchdogInterval: 10 * time.Millisecond,
		Hooks:            hooks,
		FlightSink:       sink,
		Tracer:           rec,
	})
	defer cleanup()
	setup(db)
	drainTo(db, db.Metrics().MVCC.Watermark)
	db.PruneVersions() // guarantee the in-place edit is the only visible version

	if err := db.CorruptViewRow(badView, vtxn.Row{vtxn.Str(badGroup)}); err != nil {
		fail("corrupt: %v", err)
	}
	if atomic.LoadInt64(&hooks.corrupts) != 1 {
		fail("corruption fault point hit %d times, want 1", hooks.corrupts)
	}

	n, err := db.ScrubNow(context.Background())
	if err != nil {
		fail("full pass over corrupt view: %v", err)
	}
	if n != 1 {
		fail("full pass found %d divergences, want exactly the 1 injected", n)
	}

	// Exact (view, group) attribution: metrics blame only the corrupted view...
	sc := db.Metrics().Scrub
	if sc.Divergences != 1 {
		fail("scrub counter %d, want 1", sc.Divergences)
	}
	for _, v := range sc.Views {
		want := int64(0)
		if v.View == badView {
			want = 1
		}
		if v.Divergences != want {
			fail("view %q divergence count %d, want %d", v.View, v.Divergences, want)
		}
	}
	// ...and the trace event names the exact group with expected vs actual.
	evs := rec.ofType(vtxn.TraceScrubDivergence)
	if len(evs) != 1 {
		fail("recorded %d scrub-divergence events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Resource != badView {
		fail("divergence event blames %q, want %q", ev.Resource, badView)
	}
	if !strings.Contains(ev.Phase, badGroup) {
		fail("divergence event group %q does not name %q", ev.Phase, badGroup)
	}
	if !strings.Contains(ev.Outcome, "expected") || !strings.Contains(ev.Outcome, "actual") {
		fail("divergence detail %q lacks expected/actual values", ev.Outcome)
	}

	// Flight record auto-dumped at detection time, naming the row.
	dump := sink.String()
	if !strings.Contains(dump, "scrub divergence") || !strings.Contains(dump, badView) || !strings.Contains(dump, badGroup) {
		fail("flight dump does not name the diverged row:\n%s", clip(dump))
	}

	// The watchdog's sixth signature fires off the counter delta. Its own
	// dump is rate-limited away (the detection-time dump above just ran), so
	// the stall trace event is the assertable artifact.
	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().Watchdog.ScrubDivergences == 0 {
		if time.Now().After(deadline) {
			fail("watchdog never fired the scrub-divergence signature")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stallOK := false
	for _, e := range rec.ofType(vtxn.TraceStall) {
		if e.Phase == "scrub-divergence" && strings.Contains(e.Resource, badView) {
			stallOK = true
		}
	}
	if !stallOK {
		fail("no scrub-divergence stall event naming %q (stalls: %v)", badView, rec.ofType(vtxn.TraceStall))
	}

	fmt.Printf("scrubsmoke: OK (detection): injected corruption in %s[%s] caught by the next full pass with exact attribution; trace event, flight dump, and watchdog signature all fired\n",
		badView, badGroup)
}
