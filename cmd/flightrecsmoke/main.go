// Command flightrecsmoke is the CI smoke test for the flight recorder: it
// opens a throwaway database with an automatic dump sink, induces a real
// deadlock (two transactions updating two rows in opposite orders), and
// asserts that (a) the failure trigger produced a timeline dump on the sink,
// and (b) the JSONL dump parses and contains the causally-linked spans of
// both transactions — each span's tx-begin plus the victim's failed lock
// wait. Exit status 0 means the forensic pipeline works end to end.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	vtxn "repro"
)

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "flightrecsmoke: FAIL: "+format+"\n", a...)
	os.Exit(1)
}

func main() {
	dir, err := os.MkdirTemp("", "flightrecsmoke-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	var sink bytes.Buffer
	var sinkMu sync.Mutex
	db, err := vtxn.Open(dir, vtxn.Options{
		Watchdog:   true,
		FlightSink: lockedWriter{&sinkMu, &sink},
	})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts", []vtxn.Column{
		{Name: "id", Kind: vtxn.KindInt64},
		{Name: "branch", Kind: vtxn.KindInt64},
		{Name: "balance", Kind: vtxn.KindInt64},
	}, []int{0}); err != nil {
		fail("create table: %v", err)
	}
	tx, err := db.Begin(vtxn.ReadCommitted)
	if err != nil {
		fail("begin: %v", err)
	}
	for i := int64(0); i < 2; i++ {
		if err := tx.Insert("accounts", vtxn.Row{vtxn.Int(i), vtxn.Int(i), vtxn.Int(100)}); err != nil {
			fail("insert: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		fail("seed commit: %v", err)
	}

	// Two workers update rows 0 and 1 in opposite orders; one must die as the
	// deadlock victim, which is the recorder's automatic dump trigger.
	errs := make(chan error, 2)
	var ready, release sync.WaitGroup
	ready.Add(2)
	release.Add(1)
	worker := func(first, second int64) {
		tx, err := db.Begin(vtxn.ReadCommitted)
		if err != nil {
			ready.Done()
			errs <- err
			return
		}
		defer tx.Rollback()
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(first)}, map[int]vtxn.Value{2: vtxn.Int(1)}); err != nil {
			ready.Done()
			errs <- err
			return
		}
		ready.Done()
		release.Wait()
		if err := tx.Update("accounts", vtxn.Row{vtxn.Int(second)}, map[int]vtxn.Value{2: vtxn.Int(2)}); err != nil {
			errs <- err
			return
		}
		errs <- tx.Commit()
	}
	go worker(0, 1)
	go worker(1, 0)
	ready.Wait()
	release.Done()
	var victim error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && victim == nil {
			victim = err
		}
	}
	if victim == nil {
		fail("no deadlock victim — cannot exercise the dump trigger")
	}
	if !errors.Is(victim, vtxn.ErrDeadlock) {
		fail("victim error %v is not a deadlock", victim)
	}

	// (a) The automatic sink dump fired and looks like a timeline.
	sinkMu.Lock()
	auto := sink.String()
	sinkMu.Unlock()
	if !strings.Contains(auto, "vtxn flight record") || !strings.Contains(auto, "deadlock") {
		fail("automatic sink dump missing or malformed:\n%s", auto)
	}

	// (b) The JSONL dump parses, and the deadlock lock-wait is causally
	// linked: its span resolves to a tx-begin of the same transaction, and a
	// second distinct transaction span also appears.
	var jsonl bytes.Buffer
	if err := db.WriteFlightRecordJSONL(&jsonl); err != nil {
		fail("jsonl dump: %v", err)
	}
	type rec struct {
		Seq     uint64 `json:"seq"`
		Span    uint64 `json:"span"`
		Type    string `json:"type"`
		Txn     uint64 `json:"txn"`
		Outcome string `json:"outcome"`
	}
	beginBySpan := map[uint64]uint64{} // span -> txn of its tx-begin
	spans := map[uint64]bool{}
	var deadlockRec *rec
	sc := bufio.NewScanner(&jsonl)
	lines := 0
	for sc.Scan() {
		lines++
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			fail("jsonl line %d does not parse: %v", lines, err)
		}
		if r.Span != 0 {
			spans[r.Span] = true
		}
		if r.Type == "tx-begin" {
			beginBySpan[r.Span] = r.Txn
		}
		if r.Type == "lock-wait" && r.Outcome == "deadlock" {
			deadlockRec = &r
		}
	}
	if lines == 0 {
		fail("jsonl dump is empty")
	}
	if deadlockRec == nil {
		fail("jsonl dump has no deadlock lock-wait event")
	}
	txn, ok := beginBySpan[deadlockRec.Span]
	if !ok {
		fail("deadlock event span s%d has no tx-begin in the dump", deadlockRec.Span)
	}
	if txn != deadlockRec.Txn {
		fail("deadlock span s%d begins txn %d but the wait belongs to txn %d",
			deadlockRec.Span, txn, deadlockRec.Txn)
	}
	if len(spans) < 2 {
		fail("expected the spans of both deadlocked transactions, got %d span(s)", len(spans))
	}

	fmt.Printf("flightrecsmoke: OK — %d JSONL events, %d spans, auto dump %d bytes\n",
		lines, len(spans), len(auto))
}

// lockedWriter serializes sink writes (the trigger fires on an engine path).
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
