// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (DESIGN.md §4). Each benchmark runs its experiment at reduced
// scale per iteration and reports headline custom metrics; run
// cmd/viewbench for the full paper-style tables.
package vtxn_test

import (
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/stats"
)

// benchScale keeps testing.B iterations affordable.
var benchScale = bench.Scale{Factor: 16}

// runExperiment runs one experiment per b.N iteration and reports the last
// table via b.Log so `go test -bench -v` shows the rows.
func runExperiment(b *testing.B, id string) *stats.Table {
	b.Helper()
	r, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tb *stats.Table
	for i := 0; i < b.N; i++ {
		tb, err = r.Run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tb.String())
	return tb
}

// cell parses a numeric table cell (for ReportMetric), tolerating suffixes.
func cell(tb *stats.Table, row, col int) float64 {
	s := tb.Rows[row][col]
	for len(s) > 0 {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
		s = s[:len(s)-1]
	}
	return 0
}

// BenchmarkT1MaintenanceOverhead regenerates Table 1: per-transaction cost
// of immediate view maintenance.
func BenchmarkT1MaintenanceOverhead(b *testing.B) {
	tb := runExperiment(b, "T1")
	b.ReportMetric(cell(tb, 1, 4), "escrow-ops/s")
	b.ReportMetric(cell(tb, 0, 4), "noview-ops/s")
}

// BenchmarkF2EscrowScaling regenerates Figure 2 (headline): escrow vs X-lock
// throughput as writers grow.
func BenchmarkF2EscrowScaling(b *testing.B) {
	tb := runExperiment(b, "F2")
	last := len(tb.Rows) - 1
	b.ReportMetric(cell(tb, last, 1), "escrow-tx/s@32w")
	b.ReportMetric(cell(tb, last, 2), "xlock-tx/s@32w")
}

// BenchmarkF3Contention regenerates Figure 3: throughput vs group count.
func BenchmarkF3Contention(b *testing.B) {
	tb := runExperiment(b, "F3")
	b.ReportMetric(cell(tb, 0, 1), "escrow-tx/s@1group")
	b.ReportMetric(cell(tb, 0, 2), "xlock-tx/s@1group")
}

// BenchmarkF4Aborts regenerates Figure 4: deadlock/abort rate vs writers.
func BenchmarkF4Aborts(b *testing.B) {
	tb := runExperiment(b, "F4")
	last := len(tb.Rows) - 1
	b.ReportMetric(cell(tb, last, 1), "escrow-aborts/1k")
	b.ReportMetric(cell(tb, last, 2), "xlock-aborts/1k")
}

// BenchmarkT5Readers regenerates Table 5: reader/writer interaction.
func BenchmarkT5Readers(b *testing.B) {
	tb := runExperiment(b, "T5")
	b.ReportMetric(cell(tb, 0, 4), "rc-reads/s")
	b.ReportMetric(cell(tb, 1, 4), "ser-reads/s")
}

// BenchmarkF6QuerySpeedup regenerates Figure 6: indexed-view lookup vs base
// scan.
func BenchmarkF6QuerySpeedup(b *testing.B) {
	tb := runExperiment(b, "F6")
	last := len(tb.Rows) - 1
	b.ReportMetric(cell(tb, last, 3), "speedup-x")
}

// BenchmarkT7Ghosts regenerates Table 7: ghost vs direct structural
// maintenance under group churn.
func BenchmarkT7Ghosts(b *testing.B) {
	tb := runExperiment(b, "T7")
	b.ReportMetric(cell(tb, 0, 1), "escrow-tx/s")
	b.ReportMetric(cell(tb, 1, 1), "xlock-tx/s")
}

// BenchmarkT8Recovery regenerates Table 8: recovery time vs log length.
func BenchmarkT8Recovery(b *testing.B) {
	tb := runExperiment(b, "T8")
	for _, row := range tb.Rows {
		if row[len(row)-1] != "yes" {
			b.Fatalf("recovery left inconsistent views: %v", row)
		}
	}
}

// BenchmarkF9Deferred regenerates Figure 9: immediate vs deferred
// maintenance.
func BenchmarkF9Deferred(b *testing.B) {
	tb := runExperiment(b, "F9")
	b.ReportMetric(cell(tb, 0, 1), "immediate-tx/s")
	b.ReportMetric(cell(tb, 1, 1), "deferred-tx/s")
}

// BenchmarkT10Ablations regenerates Table 10: MIN/MAX fallback, escalation,
// and fsync ablations.
func BenchmarkT10Ablations(b *testing.B) {
	tb := runExperiment(b, "T10")
	b.ReportMetric(cell(tb, 0, 1), "sum-only-tx/s")
	b.ReportMetric(cell(tb, 1, 1), "with-max-tx/s")
}

// BenchmarkT11Isolation regenerates Table 11: the cost of key-range
// (phantom) locking by isolation level.
func BenchmarkT11Isolation(b *testing.B) {
	tb := runExperiment(b, "T11")
	for i, row := range tb.Rows {
		_ = i
		if row[len(row)-1] == "" {
			b.Fatalf("malformed row: %v", row)
		}
	}
}
