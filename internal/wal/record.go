// Package wal implements the write-ahead log: framed, CRC-checked records
// with monotonically increasing LSNs, a group-commit writer, a scanner that
// tolerates torn tails, and manifest-managed log/snapshot generations.
//
// The logging protocol follows DESIGN.md §5: physiological redo records for
// row operations, one logical EscrowFold record per aggregate row folded at
// commit, and compensation log records (CLRs) so that undo is idempotent
// across repeated crashes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/id"
)

// Type discriminates log records.
type Type uint8

// Log record types.
const (
	// TBegin marks the start of a transaction.
	TBegin Type = iota + 1
	// TCommit makes a transaction durable; it is the commit point.
	TCommit
	// TAbortEnd marks that a transaction's rollback completed.
	TAbortEnd
	// TInsert records insertion of a row (possibly a ghost) into a tree.
	TInsert
	// TDelete records physical removal of a row, with its before image.
	TDelete
	// TUpdate records replacement of a row's value, with before image.
	TUpdate
	// TSetGhost records a ghost-bit transition on an existing row.
	TSetGhost
	// TEscrowFold records the commit-time fold of a transaction's pending
	// escrow deltas into an aggregate view row. Redo re-applies the deltas;
	// undo applies their inverses (logical undo).
	TEscrowFold
	// TCLR is a compensation record: the redo-only action performed while
	// undoing the record at UndoneLSN.
	TCLR
	// TDDL records a catalog change: NewVal is the full encoded catalog
	// after the change, OldVal before it. Logged by the system transaction
	// wrapping every DDL statement.
	TDDL
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TBegin:
		return "BEGIN"
	case TCommit:
		return "COMMIT"
	case TAbortEnd:
		return "ABORT_END"
	case TInsert:
		return "INSERT"
	case TDelete:
		return "DELETE"
	case TUpdate:
		return "UPDATE"
	case TSetGhost:
		return "SET_GHOST"
	case TEscrowFold:
		return "ESCROW_FOLD"
	case TCLR:
		return "CLR"
	case TDDL:
		return "DDL"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ColDelta is one column's signed escrow delta inside a TEscrowFold record.
// Exactly one of Int/Float is meaningful, selected by IsFloat.
type ColDelta struct {
	Col     uint32
	IsFloat bool
	Int     int64
	Float   float64
}

// Record is a single log record. Which fields are meaningful depends on
// Type; unused fields are zero. A TCLR record carries the compensating
// action in Action plus the same payload fields, and UndoneLSN names the
// record it compensates.
type Record struct {
	LSN    uint64 // assigned by the Writer
	Type   Type
	Action Type // CLR only: the redo action the CLR performs
	Txn    id.Txn
	Sys    bool // record belongs to a system transaction
	Tree   id.Tree
	Key    []byte
	OldVal []byte
	NewVal []byte
	// Ghost bits. For TInsert NewGhost is the inserted entry's bit; for
	// TDelete OldGhost is the removed entry's bit; TSetGhost uses both; for
	// TEscrowFold they record the row's ghost transition at fold time.
	OldGhost  bool
	NewGhost  bool
	Deltas    []ColDelta
	UndoneLSN uint64
}

// ErrCorruptRecord reports an undecodable record payload.
var ErrCorruptRecord = errors.New("wal: corrupt record")

const (
	flagSys      = 1 << 0
	flagOldGhost = 1 << 1
	flagNewGhost = 1 << 2
)

// Encode appends the record's payload encoding (excluding framing) to dst.
func (r *Record) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, r.LSN)
	dst = append(dst, byte(r.Type), byte(r.Action))
	var flags byte
	if r.Sys {
		flags |= flagSys
	}
	if r.OldGhost {
		flags |= flagOldGhost
	}
	if r.NewGhost {
		flags |= flagNewGhost
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(r.Txn))
	dst = binary.AppendUvarint(dst, uint64(r.Tree))
	dst = appendFramed(dst, r.Key)
	dst = appendFramed(dst, r.OldVal)
	dst = appendFramed(dst, r.NewVal)
	dst = binary.AppendUvarint(dst, uint64(len(r.Deltas)))
	for _, d := range r.Deltas {
		dst = binary.AppendUvarint(dst, uint64(d.Col))
		if d.IsFloat {
			dst = append(dst, 1)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Float))
		} else {
			dst = append(dst, 0)
			dst = binary.AppendVarint(dst, d.Int)
		}
	}
	dst = binary.AppendUvarint(dst, r.UndoneLSN)
	return dst
}

// DecodeRecord parses a record payload produced by Encode.
func DecodeRecord(buf []byte) (*Record, error) {
	r := &Record{}
	lsn, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorruptRecord
	}
	buf = buf[n:]
	r.LSN = lsn
	if len(buf) < 3 {
		return nil, ErrCorruptRecord
	}
	r.Type = Type(buf[0])
	r.Action = Type(buf[1])
	flags := buf[2]
	r.Sys = flags&flagSys != 0
	r.OldGhost = flags&flagOldGhost != 0
	r.NewGhost = flags&flagNewGhost != 0
	buf = buf[3:]
	txn, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorruptRecord
	}
	buf = buf[n:]
	r.Txn = id.Txn(txn)
	tree, n := binary.Uvarint(buf)
	if n <= 0 || tree > math.MaxUint32 {
		return nil, ErrCorruptRecord
	}
	buf = buf[n:]
	r.Tree = id.Tree(tree)
	var err error
	if r.Key, buf, err = takeFramed(buf); err != nil {
		return nil, err
	}
	if r.OldVal, buf, err = takeFramed(buf); err != nil {
		return nil, err
	}
	if r.NewVal, buf, err = takeFramed(buf); err != nil {
		return nil, err
	}
	nd, n := binary.Uvarint(buf)
	if n <= 0 || nd > uint64(len(buf)) {
		return nil, ErrCorruptRecord
	}
	buf = buf[n:]
	if nd > 0 {
		r.Deltas = make([]ColDelta, nd)
	}
	for i := uint64(0); i < nd; i++ {
		col, n := binary.Uvarint(buf)
		if n <= 0 || col > math.MaxUint32 || len(buf) <= n {
			return nil, ErrCorruptRecord
		}
		buf = buf[n:]
		d := ColDelta{Col: uint32(col)}
		isFloat := buf[0]
		buf = buf[1:]
		if isFloat == 1 {
			if len(buf) < 8 {
				return nil, ErrCorruptRecord
			}
			d.IsFloat = true
			d.Float = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		} else {
			v, n := binary.Varint(buf)
			if n <= 0 {
				return nil, ErrCorruptRecord
			}
			d.Int = v
			buf = buf[n:]
		}
		r.Deltas[i] = d
	}
	undone, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorruptRecord
	}
	buf = buf[n:]
	r.UndoneLSN = undone
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(buf))
	}
	return r, nil
}

func appendFramed(dst, b []byte) []byte {
	if b == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

func takeFramed(buf []byte) ([]byte, []byte, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, nil, ErrCorruptRecord
	}
	buf = buf[used:]
	if n == 0 {
		return nil, buf, nil
	}
	n--
	if n > uint64(len(buf)) {
		return nil, nil, ErrCorruptRecord
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, buf[n:], nil
}

// String renders the record for debugging.
func (r *Record) String() string {
	s := fmt.Sprintf("lsn=%d %s %s", r.LSN, r.Type, r.Txn)
	if r.Sys {
		s += " sys"
	}
	if r.Type == TCLR {
		s += fmt.Sprintf(" action=%s undone=%d", r.Action, r.UndoneLSN)
	}
	if r.Tree != 0 {
		s += " " + r.Tree.String()
	}
	if r.Key != nil {
		s += fmt.Sprintf(" key=%x", r.Key)
	}
	return s
}
