package wal

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/id"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: TBegin, Txn: 7},
		{Type: TInsert, Txn: 7, Tree: 3, Key: []byte("k1"), NewVal: []byte("v1"), NewGhost: true},
		{Type: TUpdate, Txn: 7, Tree: 3, Key: []byte("k1"), OldVal: []byte("v1"), NewVal: []byte("v2")},
		{Type: TSetGhost, Txn: 7, Tree: 3, Key: []byte("k1"), OldGhost: true, NewGhost: false},
		{Type: TEscrowFold, Txn: 7, Tree: 9, Key: []byte("g"), Deltas: []ColDelta{
			{Col: 1, Int: -12},
			{Col: 2, IsFloat: true, Float: 3.75},
		}, OldGhost: true},
		{Type: TDelete, Txn: 7, Tree: 3, Key: []byte("k1"), OldVal: []byte("v2")},
		{Type: TCLR, Txn: 7, Action: TInsert, UndoneLSN: 6, Tree: 3, Key: []byte("k1"), NewVal: []byte("v2")},
		{Type: TCommit, Txn: 7, Sys: true},
		{Type: TAbortEnd, Txn: 8},
	}
}

func recordsEqual(a, b *Record) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

// normalize maps nil and empty byte slices to nil for comparison.
func normalize(r *Record) *Record {
	c := *r
	if len(c.Key) == 0 {
		c.Key = nil
	}
	if len(c.OldVal) == 0 {
		c.OldVal = nil
	}
	if len(c.NewVal) == 0 {
		c.NewVal = nil
	}
	if len(c.Deltas) == 0 {
		c.Deltas = nil
	}
	return &c
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		r.LSN = uint64(i + 1)
		enc := r.Encode(nil)
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !recordsEqual(r, dec) {
			t.Fatalf("record %d: %+v != %+v", i, r, dec)
		}
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	r := sampleRecords()[4] // escrow fold with deltas
	r.LSN = 1
	good := r.Encode(nil)
	for i := 0; i < len(good); i++ {
		if _, err := DecodeRecord(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeRecord(append(append([]byte{}, good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1500,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(randomRecord(rng))
		},
	}
	f := func(r *Record) bool {
		dec, err := DecodeRecord(r.Encode(nil))
		return err == nil && recordsEqual(r, dec)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomRecord(rng *rand.Rand) *Record {
	randBytes := func() []byte {
		n := rng.Intn(16)
		if n == 0 {
			return nil
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	r := &Record{
		LSN:       rng.Uint64() >> 1,
		Type:      Type(rng.Intn(int(TCLR)) + 1),
		Action:    Type(rng.Intn(int(TCLR)) + 1),
		Txn:       id.Txn(rng.Uint64() >> 1),
		Sys:       rng.Intn(2) == 0,
		Tree:      id.Tree(rng.Uint32()),
		Key:       randBytes(),
		OldVal:    randBytes(),
		NewVal:    randBytes(),
		OldGhost:  rng.Intn(2) == 0,
		NewGhost:  rng.Intn(2) == 0,
		UndoneLSN: rng.Uint64() >> 1,
	}
	for i := rng.Intn(4); i > 0; i-- {
		d := ColDelta{Col: rng.Uint32()}
		if rng.Intn(2) == 0 {
			d.IsFloat = true
			d.Float = math.Float64frombits(rng.Uint64() &^ (0x7FF << 52))
		} else {
			d.Int = int64(rng.Uint64())
		}
		r.Deltas = append(r.Deltas, d)
	}
	return r
}

func TestWriteScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(path, 1, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	res, err := Scan(path, func(r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("clean log reported torn")
	}
	if res.LastLSN != uint64(len(recs)) {
		t.Fatalf("LastLSN = %d, want %d", res.LastLSN, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, got[i].LSN)
		}
		if !recordsEqual(recs[i], got[i]) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, recs[i], got[i])
		}
	}
}

func TestScanMissingFile(t *testing.T) {
	res, err := Scan(filepath.Join(t.TempDir(), "nope"), func(*Record) error { return nil })
	if err != nil || res.LastLSN != 0 || res.Torn {
		t.Fatalf("missing file: %+v %v", res, err)
	}
}

func TestTornTailDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, _ := Create(path, 1, SyncNone)
	for i := 0; i < 10; i++ {
		w.Append(&Record{Type: TBegin, Txn: id.Txn(i + 1)})
	}
	w.Close()
	info, _ := os.Stat(path)
	full := info.Size()

	// Truncate at every byte boundary; scan must never error and must report
	// a LastLSN consistent with the cut.
	for cut := int64(0); cut < full; cut++ {
		data, _ := os.ReadFile(path)
		cutPath := filepath.Join(dir, "cut")
		os.WriteFile(cutPath, data[:cut], 0o644)
		count := 0
		res, err := Scan(cutPath, func(*Record) error { count++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if uint64(count) != res.LastLSN {
			t.Fatalf("cut %d: count %d != LastLSN %d", cut, count, res.LastLSN)
		}
		if cut < full && res.LastLSN == 10 && res.Torn {
			t.Fatalf("cut %d: all records plus torn?", cut)
		}
	}
}

func TestCorruptMiddleByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, _ := Create(path, 1, SyncNone)
	for i := 0; i < 5; i++ {
		w.Append(&Record{Type: TBegin, Txn: id.Txn(i + 1), Key: []byte("somekeybytes")})
	}
	w.Close()
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	res, err := Scan(path, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn {
		t.Fatal("corruption not detected")
	}
	if res.LastLSN >= 5 {
		t.Fatalf("LastLSN = %d after mid-file corruption", res.LastLSN)
	}
}

func TestRepairThenAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, _ := Create(path, 1, SyncNone)
	for i := 0; i < 6; i++ {
		w.Append(&Record{Type: TBegin, Txn: id.Txn(i + 1)})
	}
	w.Close()
	// Tear the tail.
	info, _ := os.Stat(path)
	os.Truncate(path, info.Size()-3)

	res, err := Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.LastLSN != 5 {
		t.Fatalf("repair: %+v", res)
	}
	w2, err := OpenAppend(path, res.LastLSN+1, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := w2.Append(&Record{Type: TCommit, Txn: 99})
	if lsn != 6 {
		t.Fatalf("appended LSN = %d, want 6", lsn)
	}
	w2.Close()
	var last *Record
	res2, _ := Scan(path, func(r *Record) error { last = r; return nil })
	if res2.Torn || res2.LastLSN != 6 || last.Txn != 99 {
		t.Fatalf("after repair+append: %+v last=%+v", res2, last)
	}
}

func TestInjectedFaultTearsTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, _ := Create(path, 1, SyncNone)
	for i := 0; i < 4; i++ {
		w.Append(&Record{Type: TBegin, Txn: id.Txn(i + 1)})
	}
	if err := w.Sync(0); err != nil {
		t.Fatal(err)
	}
	w.SetFailAfter(5) // next flush tears mid-record
	w.Append(&Record{Type: TCommit, Txn: 4})
	if err := w.Sync(0); err == nil {
		t.Fatal("expected injected fault")
	}
	// Further appends fail too.
	if _, err := w.Append(&Record{Type: TBegin, Txn: 5}); err == nil {
		t.Fatal("append after failure should error")
	}
	w.f.Close()
	res, err := Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastLSN != 4 || !res.Torn {
		t.Fatalf("repair after fault: %+v", res)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, _ := Create(path, 1, SyncNone)
	const writers = 16
	const perWriter = 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := w.Append(&Record{Type: TCommit, Txn: id.Txn(g*perWriter + i + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Sync(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w.Close()
	count := 0
	seen := map[uint64]bool{}
	res, err := Scan(path, func(r *Record) error {
		count++
		if seen[r.LSN] {
			t.Errorf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != writers*perWriter || res.Torn {
		t.Fatalf("count=%d torn=%v", count, res.Torn)
	}
	if res.LastLSN != uint64(writers*perWriter) {
		t.Fatalf("LastLSN=%d", res.LastLSN)
	}
}

func TestManifestLifecycle(t *testing.T) {
	d := Dir{Path: t.TempDir()}
	gen, fresh, err := d.Current()
	if err != nil || !fresh || gen != 1 {
		t.Fatalf("fresh dir: gen=%d fresh=%v err=%v", gen, fresh, err)
	}
	// Create gen-1 files, commit, then advance to gen 2.
	os.WriteFile(d.LogPath(1), []byte("x"), 0o644)
	if err := d.Commit(1); err != nil {
		t.Fatal(err)
	}
	gen, fresh, err = d.Current()
	if err != nil || fresh || gen != 1 {
		t.Fatalf("after commit 1: gen=%d fresh=%v err=%v", gen, fresh, err)
	}
	os.WriteFile(d.SnapPath(2), []byte("snap"), 0o644)
	os.WriteFile(d.LogPath(2), []byte("log"), 0o644)
	if err := d.Commit(2); err != nil {
		t.Fatal(err)
	}
	gen, _, _ = d.Current()
	if gen != 2 {
		t.Fatalf("gen = %d, want 2", gen)
	}
	if _, err := os.Stat(d.LogPath(1)); !os.IsNotExist(err) {
		t.Fatal("old generation log not removed")
	}
	if _, err := os.Stat(d.SnapPath(2)); err != nil {
		t.Fatal("current snapshot removed")
	}
}

func TestManifestCorrupt(t *testing.T) {
	d := Dir{Path: t.TempDir()}
	os.WriteFile(filepath.Join(d.Path, manifestName), []byte("bogus"), 0o644)
	if _, _, err := d.Current(); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func BenchmarkAppendSync(b *testing.B) {
	path := filepath.Join(b.TempDir(), "log")
	w, _ := Create(path, 1, SyncNone)
	defer w.Close()
	rec := &Record{Type: TUpdate, Txn: 1, Tree: 2, Key: []byte("key-000001"),
		OldVal: []byte("old-value-bytes"), NewVal: []byte("new-value-bytes")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lsn, _ := w.Append(rec)
		w.Sync(lsn)
	}
}
