package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/fault"
)

// Dir manages a database directory's generations: each checkpoint produces a
// new generation consisting of a snapshot file plus the log of everything
// after it. The MANIFEST file names the current generation and is replaced
// atomically (write-temp + rename), so a crash during checkpoint leaves
// either the old or the new generation fully intact.
type Dir struct {
	Path string
	// FS is the filesystem the directory lives on; nil means the real one.
	FS fault.FS
}

// fs returns the directory's filesystem, defaulting to the real one.
func (d Dir) fs() fault.FS {
	if d.FS == nil {
		return fault.OS{}
	}
	return d.FS
}

const manifestName = "MANIFEST"

// LogPath returns the log file path for a generation.
func (d Dir) LogPath(gen uint64) string {
	return filepath.Join(d.Path, fmt.Sprintf("log-%06d", gen))
}

// SnapPath returns the snapshot file path for a generation.
func (d Dir) SnapPath(gen uint64) string {
	return filepath.Join(d.Path, fmt.Sprintf("snap-%06d", gen))
}

// Current returns the generation named by MANIFEST. A missing MANIFEST means
// a fresh database: generation 1 with no snapshot.
func (d Dir) Current() (gen uint64, fresh bool, err error) {
	b, err := d.fs().ReadFile(filepath.Join(d.Path, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 1, true, nil
		}
		return 0, false, fmt.Errorf("wal: read manifest: %w", err)
	}
	s := strings.TrimSpace(string(b))
	g, err := strconv.ParseUint(s, 10, 64)
	if err != nil || g == 0 {
		return 0, false, fmt.Errorf("wal: corrupt manifest %q", s)
	}
	return g, false, nil
}

// Commit atomically makes gen the current generation and removes files of
// older generations.
func (d Dir) Commit(gen uint64) error {
	tmp := filepath.Join(d.Path, manifestName+".tmp")
	if err := d.fs().WriteFile(tmp, []byte(strconv.FormatUint(gen, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := d.fs().Rename(tmp, filepath.Join(d.Path, manifestName)); err != nil {
		return fmt.Errorf("wal: install manifest: %w", err)
	}
	d.removeOlder(gen)
	return nil
}

// removeOlder deletes snapshot and log files from generations before gen.
// Failures are ignored: stale files are garbage, not corruption.
func (d Dir) removeOlder(gen uint64) {
	entries, err := d.fs().ReadDir(d.Path)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasPrefix(name, "log-"):
			g, _ = strconv.ParseUint(strings.TrimPrefix(name, "log-"), 10, 64)
		case strings.HasPrefix(name, "snap-"):
			g, _ = strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64)
		default:
			continue
		}
		if g != 0 && g < gen {
			d.fs().Remove(filepath.Join(d.Path, name))
		}
	}
}
