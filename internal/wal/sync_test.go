package wal

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/id"
)

func TestSyncDataMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(path, 1, SyncData)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const per = 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(&Record{Type: TCommit, Txn: id.Txn(g*per + i + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Sync(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	res, err := Scan(path, func(*Record) error { count++; return nil })
	if err != nil || res.Torn || count != writers*per {
		t.Fatalf("count=%d torn=%v err=%v", count, res.Torn, err)
	}
}

func TestSyncZeroCoversEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, _ := Create(path, 1, SyncData)
	for i := 0; i < 10; i++ {
		w.Append(&Record{Type: TBegin, Txn: id.Txn(i + 1)})
	}
	if err := w.Sync(0); err != nil {
		t.Fatal(err)
	}
	// A second Sync with nothing new is a fast no-op.
	if err := w.Sync(0); err != nil {
		t.Fatal(err)
	}
	w.Close()
	res, _ := Scan(path, func(*Record) error { return nil })
	if res.LastLSN != 10 {
		t.Fatalf("LastLSN = %d", res.LastLSN)
	}
}

func TestNextLSNAdvances(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, _ := Create(path, 5, SyncNone)
	if w.NextLSN() != 5 {
		t.Fatalf("NextLSN = %d", w.NextLSN())
	}
	lsn, _ := w.Append(&Record{Type: TBegin, Txn: 1})
	if lsn != 5 || w.NextLSN() != 6 {
		t.Fatalf("lsn=%d next=%d", lsn, w.NextLSN())
	}
	w.Close()
}
