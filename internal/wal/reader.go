package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/fault"
)

// maxRecordSize bounds a single record; larger length prefixes are treated
// as corruption (a torn or garbage tail).
const maxRecordSize = 64 << 20

// ScanResult summarizes a log scan.
type ScanResult struct {
	// LastLSN is the LSN of the last good record (0 if none).
	LastLSN uint64
	// GoodBytes is the file offset just past the last good record; a torn
	// tail begins there.
	GoodBytes int64
	// Torn reports whether trailing bytes after the last good record were
	// discarded (truncated or CRC-mismatched tail).
	Torn bool
}

// Scan reads every intact record in the log file in order, invoking fn for
// each. A torn or corrupt tail ends the scan cleanly (Torn=true); an error
// from fn aborts the scan and is returned.
func Scan(path string, fn func(*Record) error) (ScanResult, error) {
	return ScanFS(fault.OS{}, path, fn)
}

// ScanFS is Scan on an injectable filesystem.
func ScanFS(fsys fault.FS, path string, fn func(*Record) error) (ScanResult, error) {
	var res ScanResult
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return res, nil // no log yet: empty generation
		}
		return res, fmt.Errorf("wal: open for scan: %w", err)
	}
	defer f.Close()

	var off int64
	hdr := make([]byte, 8)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return res, nil // clean end
			}
			res.Torn = true // partial header
			return res, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize {
			res.Torn = true
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			res.Torn = true
			return res, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			res.Torn = true
			return res, nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			res.Torn = true
			return res, nil
		}
		off += 8 + int64(length)
		res.LastLSN = rec.LSN
		res.GoodBytes = off
		if err := fn(rec); err != nil {
			return res, err
		}
	}
}

// Repair truncates the log file just past its last intact record so a Writer
// can append safely. It returns the scan result describing what survived.
func Repair(path string) (ScanResult, error) {
	return RepairFS(fault.OS{}, path)
}

// RepairFS is Repair on an injectable filesystem.
func RepairFS(fsys fault.FS, path string) (ScanResult, error) {
	res, err := ScanFS(fsys, path, func(*Record) error { return nil })
	if err != nil {
		return res, err
	}
	if !res.Torn {
		return res, nil
	}
	if err := fsys.Truncate(path, res.GoodBytes); err != nil {
		return res, fmt.Errorf("wal: repair truncate: %w", err)
	}
	return res, nil
}
