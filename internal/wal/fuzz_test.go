package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeRecord: arbitrary bytes must never panic the record decoder,
// and any record that decodes must survive a re-encode/re-decode trip.
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		r.LSN = 7
		f.Add(r.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		again, err := DecodeRecord(rec.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !recordsEqual(rec, again) {
			t.Fatalf("round trip changed\n%+v\n%+v", rec, again)
		}
	})
}

// FuzzScanLog: a log file of arbitrary bytes must scan without panicking,
// and the scan must never report more good bytes than the file holds.
func FuzzScanLog(f *testing.F) {
	// A valid two-record log as one seed.
	dir, _ := os.MkdirTemp("", "walfuzzseed")
	defer os.RemoveAll(dir)
	p := filepath.Join(dir, "log")
	w, _ := Create(p, 1, SyncNone)
	w.Append(&Record{Type: TBegin, Txn: 1})
	w.Append(&Record{Type: TCommit, Txn: 1})
	w.Close()
	seed, _ := os.ReadFile(p)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		count := 0
		res, err := Scan(path, func(*Record) error { count++; return nil })
		if err != nil {
			t.Fatalf("scan errored on arbitrary bytes: %v", err)
		}
		if res.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d > file size %d", res.GoodBytes, len(data))
		}
		if int64(count) > 0 && res.LastLSN == 0 {
			t.Fatal("records scanned but LastLSN is zero")
		}
	})
}
