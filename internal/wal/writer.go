package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/metrics"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrInjectedFault is returned by writes once the fault-injection budget is
// exhausted (tests only).
var ErrInjectedFault = errors.New("wal: injected write fault")

// SyncMode selects the durability of commits.
type SyncMode int

const (
	// SyncNone flushes to the OS on commit but never calls fsync. Fast;
	// survives process crash but not machine crash. The default for tests
	// and benchmarks (the paper's experiments study concurrency, not disks).
	SyncNone SyncMode = iota
	// SyncData calls fsync on every group commit.
	SyncData
)

// Writer appends records to one log generation file.
//
// Append is cheap and buffered; Sync implements group commit: concurrent
// committers coalesce onto one flush+fsync, and a committer whose LSN is
// already durable returns immediately.
type Writer struct {
	mu        sync.Mutex // guards buf, nextLSN, appendedLSN, written budget
	f         fault.File
	buf       []byte
	spare     []byte // flushed buffer recycled by Sync (double buffering)
	nextLSN   uint64
	appended  uint64 // LSN of last record placed in buf
	mode      SyncMode
	failAfter int64 // bytes remaining before injected failure; -1 = disabled
	failed    bool

	flushMu sync.Mutex // serializes flush+fsync
	durable uint64     // LSN of last record known flushed (and fsynced in SyncData)
	durMu   sync.Mutex // guards durable reads outside flushMu

	// met and tracer observe appends, group-commit batching, and flush/fsync
	// latency; both may be nil. Set via SetObserver before concurrent use.
	met    *metrics.WALMetrics
	tracer metrics.Tracer
}

// SetObserver attaches metrics and a tracer to the writer. The engine calls
// it right after creating a writer (Open, recovery hand-off, and the fresh
// generation a Checkpoint swaps in), before the writer sees concurrent use.
func (w *Writer) SetObserver(m *metrics.WALMetrics, tracer metrics.Tracer) {
	w.met = m
	w.tracer = tracer
}

// Create creates (truncating) the log file at path. firstLSN is the LSN the
// next appended record receives (1 for a fresh generation).
func Create(path string, firstLSN uint64, mode SyncMode) (*Writer, error) {
	return CreateFS(fault.OS{}, path, firstLSN, mode)
}

// CreateFS is Create on an injectable filesystem.
func CreateFS(fsys fault.FS, path string, firstLSN uint64, mode SyncMode) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return &Writer{f: f, nextLSN: firstLSN, appended: firstLSN - 1, durable: firstLSN - 1, mode: mode, failAfter: -1}, nil
}

// OpenAppend opens an existing log file for appending after recovery. The
// file must already be truncated to its last good record (see Repair);
// nextLSN is the LSN to assign to the next record.
func OpenAppend(path string, nextLSN uint64, mode SyncMode) (*Writer, error) {
	return OpenAppendFS(fault.OS{}, path, nextLSN, mode)
}

// OpenAppendFS is OpenAppend on an injectable filesystem.
func OpenAppendFS(fsys fault.FS, path string, nextLSN uint64, mode SyncMode) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open append: %w", err)
	}
	return &Writer{f: f, nextLSN: nextLSN, appended: nextLSN - 1, durable: nextLSN - 1, mode: mode, failAfter: -1}, nil
}

// Append assigns the record an LSN and buffers it. The record is not durable
// until a subsequent Sync covers its LSN.
func (w *Writer) Append(r *Record) (uint64, error) {
	lsn, _, err := w.AppendSized(r)
	return lsn, err
}

// AppendSized is Append reporting the record's on-log footprint (frame
// header + encoded payload) so callers can attribute WAL volume.
func (w *Writer) AppendSized(r *Record) (uint64, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return 0, 0, ErrInjectedFault
	}
	r.LSN = w.nextLSN
	w.nextLSN++
	// Encode in place after a reserved 8-byte frame header, so no per-record
	// payload slice is allocated.
	start := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = r.Encode(w.buf)
	payload := w.buf[start+8:]
	binary.LittleEndian.PutUint32(w.buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[start+4:start+8], crc32.Checksum(payload, crcTable))
	w.appended = r.LSN
	if w.met != nil {
		w.met.Appends.Add(1)
	}
	return r.LSN, len(payload) + 8, nil
}

// Sync makes every appended record durable (group commit). It returns once
// the record with LSN upTo (or newer) is flushed — and fsynced under
// SyncData. Pass 0 to sync everything appended so far.
func (w *Writer) Sync(upTo uint64) error { return w.sync(upTo, 0) }

// SyncTxn is Sync attributed to a committing transaction: when this call
// performs the physical flush (rather than coalescing onto another
// committer's), the group-commit trace event carries txn so the flight
// recorder can link the flush into the transaction's causal span.
func (w *Writer) SyncTxn(upTo uint64, txn id.Txn) error { return w.sync(upTo, txn) }

func (w *Writer) sync(upTo uint64, by id.Txn) error {
	if upTo == 0 {
		w.mu.Lock()
		upTo = w.appended
		w.mu.Unlock()
	}
	prevDurable := w.durableLSN()
	if prevDurable >= upTo {
		if w.met != nil {
			w.met.CoalescedSyncs.Add(1)
		}
		return nil
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	prevDurable = w.durableLSN()
	if prevDurable >= upTo { // another committer covered us while we waited
		if w.met != nil {
			w.met.CoalescedSyncs.Add(1)
		}
		return nil
	}
	var start time.Time
	if w.met != nil || w.tracer != nil {
		start = time.Now()
	}
	// Mark the flush in progress for the stall watchdog: a long-lived mark
	// means commits are queueing behind a flush that is not advancing.
	w.met.BeginFlush(time.Now().UnixNano())
	defer w.met.EndFlush()
	// Steal the buffer; appenders continue into the spare one (double
	// buffering keeps the steady state allocation-free).
	w.mu.Lock()
	buf := w.buf
	w.buf = w.spare
	w.spare = nil
	target := w.appended
	w.mu.Unlock()
	if len(buf) > 0 {
		if err := w.write(buf); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.spare = buf[:0]
	w.mu.Unlock()
	if w.mode == SyncData {
		fsyncStart := start
		if w.met != nil {
			fsyncStart = time.Now()
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		if w.met != nil {
			w.met.Fsync.Observe(time.Since(fsyncStart))
		}
	}
	w.durMu.Lock()
	w.durable = target
	w.durMu.Unlock()
	batch := int64(target - prevDurable)
	if w.met != nil {
		w.met.ObserveBatch(batch)
		w.met.Flush.Observe(time.Since(start))
	}
	if w.tracer != nil {
		w.tracer.TraceEvent(metrics.Event{
			Type: metrics.EventGroupCommit,
			Txn:  by,
			Dur:  time.Since(start),
			Rows: int(batch),
		})
	}
	return nil
}

func (w *Writer) durableLSN() uint64 {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	return w.durable
}

// write sends bytes to the file honoring the fault-injection budget: when the
// budget ends mid-buffer the prefix is written (a torn tail) and the writer
// enters a permanent failed state.
func (w *Writer) write(p []byte) error {
	w.mu.Lock()
	budget := w.failAfter
	w.mu.Unlock()
	if budget >= 0 && int64(len(p)) > budget {
		p = p[:budget]
		if len(p) > 0 {
			w.f.Write(p) // best-effort torn write
		}
		w.mu.Lock()
		w.failed = true
		w.failAfter = 0
		w.mu.Unlock()
		return ErrInjectedFault
	}
	if budget >= 0 {
		w.mu.Lock()
		w.failAfter -= int64(len(p))
		w.mu.Unlock()
	}
	if _, err := w.f.Write(p); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	return nil
}

// SetFailAfter arms fault injection: after n more bytes reach the file, every
// further write fails and the record stream is torn mid-record. Tests only.
func (w *Writer) SetFailAfter(n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failAfter = n
	w.failed = false
}

// NextLSN returns the LSN the next appended record will receive.
func (w *Writer) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Close flushes buffered records and closes the file.
func (w *Writer) Close() error {
	syncErr := w.Sync(0)
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
