package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/record"
)

// ErrCorrupt reports an undecodable catalog blob.
var ErrCorrupt = errors.New("catalog: corrupt encoding")

// encodingVersion 2 appends the named-column fields (aggregate output names,
// group-by/project name lists) after each view's version-1 fields; Decode
// still accepts version-1 blobs, deriving the names from the source schema.
const encodingVersion = 2

// Encode serializes the whole catalog for the snapshot.
func (c *Catalog) Encode() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var b []byte
	b = append(b, encodingVersion)
	b = binary.AppendUvarint(b, uint64(c.nextTree))

	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	sortByName(tables, func(t *Table) string { return t.Name })
	b = binary.AppendUvarint(b, uint64(len(tables)))
	for _, t := range tables {
		b = putString(b, t.Name)
		b = binary.AppendUvarint(b, uint64(t.ID))
		b = binary.AppendUvarint(b, uint64(len(t.Cols)))
		for _, col := range t.Cols {
			b = putString(b, col.Name)
			b = append(b, byte(col.Kind))
		}
		b = putInts(b, t.PK)
	}

	indexes := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		indexes = append(indexes, ix)
	}
	sortByName(indexes, func(ix *Index) string { return ix.Name })
	b = binary.AppendUvarint(b, uint64(len(indexes)))
	for _, ix := range indexes {
		b = putString(b, ix.Name)
		b = binary.AppendUvarint(b, uint64(ix.ID))
		b = putString(b, ix.Table)
		b = putInts(b, ix.Cols)
		b = putBool(b, ix.Unique)
	}

	views := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		views = append(views, v)
	}
	sortByName(views, func(v *View) string { return v.Name })
	b = binary.AppendUvarint(b, uint64(len(views)))
	for _, v := range views {
		b = putString(b, v.Name)
		b = binary.AppendUvarint(b, uint64(v.ID))
		b = append(b, byte(v.Kind), byte(v.Strategy))
		b = putString(b, v.Left)
		b = putString(b, v.Right)
		b = binary.AppendUvarint(b, uint64(v.JoinLeftCol))
		b = binary.AppendUvarint(b, uint64(v.JoinRightCol))
		b = putBytes(b, expr.Marshal(v.Where))
		b = putInts(b, v.ProjectCols)
		b = putInts(b, v.GroupByCols)
		b = binary.AppendUvarint(b, uint64(len(v.Aggs)))
		for _, a := range v.Aggs {
			b = append(b, byte(a.Func))
			b = putBytes(b, expr.Marshal(a.Arg))
			b = putString(b, a.Name)
		}
		b = putStrings(b, v.Project)
		b = putStrings(b, v.GroupBy)
	}
	return b
}

// Decode rebuilds a catalog from an Encode blob (version 1 or 2).
func Decode(b []byte) (*Catalog, error) {
	d := &decoder{buf: b}
	ver := d.byte_()
	if ver != 1 && ver != encodingVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, ver)
	}
	c := New()
	c.nextTree = id.Tree(d.uvarint())

	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		t := &Table{Name: d.string_(), ID: id.Tree(d.uvarint())}
		for nc := d.uvarint(); nc > 0 && d.err == nil; nc-- {
			t.Cols = append(t.Cols, Column{Name: d.string_(), Kind: record.Kind(d.byte_())})
		}
		t.PK = d.ints()
		c.tables[t.Name] = t
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		ix := &Index{Name: d.string_(), ID: id.Tree(d.uvarint()), Table: d.string_()}
		ix.Cols = d.ints()
		ix.Unique = d.bool_()
		c.indexes[ix.Name] = ix
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		v := &View{Name: d.string_(), ID: id.Tree(d.uvarint())}
		v.Kind = ViewKind(d.byte_())
		v.Strategy = Strategy(d.byte_())
		v.Left = d.string_()
		v.Right = d.string_()
		v.JoinLeftCol = int(d.uvarint())
		v.JoinRightCol = int(d.uvarint())
		where, err := expr.Unmarshal(d.bytes_())
		if err != nil {
			return nil, fmt.Errorf("%w: view %q where: %v", ErrCorrupt, v.Name, err)
		}
		v.Where = where
		v.ProjectCols = d.ints()
		v.GroupByCols = d.ints()
		for na := d.uvarint(); na > 0 && d.err == nil; na-- {
			a := expr.AggSpec{Func: expr.AggFunc(d.byte_())}
			arg, err := expr.Unmarshal(d.bytes_())
			if err != nil {
				return nil, fmt.Errorf("%w: view %q agg: %v", ErrCorrupt, v.Name, err)
			}
			a.Arg = arg
			if ver >= 2 {
				a.Name = d.string_()
			}
			v.Aggs = append(v.Aggs, a)
		}
		if ver >= 2 {
			v.Project = d.strings_()
			v.GroupBy = d.strings_()
		}
		c.views[v.Name] = v
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	if err := c.finishViewsLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// finishViewsLocked recomputes the derived DAG fields (Source alias, level,
// srcView) after decoding, with a defensive cycle check: AddView cannot
// create a cycle (a view only ever references relations that already exist),
// but a corrupt blob could, and the schema derivation recurses on the source
// chain.
func (c *Catalog) finishViewsLocked() error {
	for _, v := range c.views {
		v.Source = v.Left
		_, v.srcView = c.views[v.Left]
		lvl := 0
		for cur := v; ; lvl++ {
			p, ok := c.views[cur.Left]
			if !ok {
				break
			}
			if lvl > len(c.views) {
				return fmt.Errorf("%w: view source cycle through %q", ErrCorrupt, v.Name)
			}
			cur = p
		}
		v.level = lvl
	}
	return nil
}

func sortByName[T any](s []T, name func(T) string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && name(s[j]) < name(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func putStrings(b []byte, xs []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = putString(b, x)
	}
	return b
}

func putInts(b []byte, xs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

// decoder is a cursor with sticky errors.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) byte_() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) bool_() bool { return d.byte_() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string_() string { return string(d.bytes_()) }

func (d *decoder) bytes_() []byte {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) strings_() []string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf))+1 {
		d.fail()
		return nil
	}
	var out []string
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.string_())
	}
	return out
}

func (d *decoder) ints() []int {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf))+1 {
		d.fail()
		return nil
	}
	var out []int
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, int(d.varint()))
	}
	return out
}
