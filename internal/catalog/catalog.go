// Package catalog holds the schema: tables, secondary indexes, and indexed
// view definitions. Definitions validate at creation time and serialize into
// the snapshot so the schema survives restarts.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/record"
)

// Column is one typed column of a table.
type Column struct {
	Name string
	Kind record.Kind
}

// Table describes a base table, stored as one clustered B-tree keyed by PK.
type Table struct {
	Name string
	ID   id.Tree
	Cols []Column
	PK   []int // column indexes forming the primary key
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Index describes a secondary index on a table: key = (Cols..., PK...), so
// non-unique indexes disambiguate by primary key.
type Index struct {
	Name   string
	ID     id.Tree
	Table  string
	Cols   []int
	Unique bool
}

// ViewKind distinguishes projection views from aggregate views.
type ViewKind uint8

const (
	// ViewProjection materializes filtered, projected source rows, keyed by
	// the source primary key(s).
	ViewProjection ViewKind = iota + 1
	// ViewAggregate materializes GROUP BY aggregates, keyed by the group.
	ViewAggregate
)

// Strategy selects how a view is maintained — the experimental axis of the
// paper's evaluation.
type Strategy uint8

const (
	// StrategyEscrow maintains aggregates with E locks and commit-time
	// folds: the paper's contribution. Non-escrowable aggregates (MIN/MAX)
	// fall back to X locks per row.
	StrategyEscrow Strategy = iota + 1
	// StrategyXLock maintains every view row under transaction-duration X
	// locks: the conventional baseline.
	StrategyXLock
	// StrategyDeferred keeps the view out of the user transaction's critical
	// path: commits publish their fold deltas to a background applier that
	// batches, coalesces, and folds them shortly after commit (bounded
	// staleness, DESIGN.md §9). Requires a pure commutative aggregate view
	// (no MIN/MAX). Baselines F9/F9D.
	StrategyDeferred
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyEscrow:
		return "escrow"
	case StrategyXLock:
		return "xlock"
	case StrategyDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// View describes an indexed view.
//
// The source is either one table (Left) or the equijoin of Left and Right on
// Left.col[JoinLeftCol] = Right.col[JoinRightCol]. Expressions and column
// indexes address the source row: the left row's columns followed — for
// joins — by the right row's columns.
type View struct {
	Name  string
	ID    id.Tree
	Kind  ViewKind
	Left  string
	Right string // "" when the source is a single table
	// Join columns (source-row indexes into the left/right portions).
	JoinLeftCol  int
	JoinRightCol int
	Where        expr.Expr
	// ViewProjection: output column indexes into the source row.
	Project []int
	// ViewAggregate: grouping columns (source-row indexes) and aggregates.
	GroupBy []int
	Aggs    []expr.AggSpec
	// Strategy selects the maintenance protocol.
	Strategy Strategy
}

// Join reports whether the view's source is a two-table join.
func (v *View) Join() bool { return v.Right != "" }

// Catalog is the mutable, thread-safe schema registry. It also allocates
// tree IDs.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	indexes  map[string]*Index
	views    map[string]*View
	viewsOn  map[string][]*View // lazy per-table cache, reset on view DDL
	nextTree id.Tree
}

// Errors returned by catalog operations.
var (
	// ErrExists reports a duplicate object name.
	ErrExists = errors.New("catalog: object already exists")
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("catalog: object not found")
	// ErrInvalid reports a definition that fails validation.
	ErrInvalid = errors.New("catalog: invalid definition")
)

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		indexes:  make(map[string]*Index),
		views:    make(map[string]*View),
		nextTree: 1,
	}
}

func (c *Catalog) nameTaken(name string) bool {
	if _, ok := c.tables[name]; ok {
		return true
	}
	if _, ok := c.indexes[name]; ok {
		return true
	}
	_, ok := c.views[name]
	return ok
}

// AddTable validates and registers a table, assigning its tree ID.
func (c *Catalog) AddTable(name string, cols []Column, pk []int) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nameTaken(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if name == "" || len(cols) == 0 {
		return nil, fmt.Errorf("%w: table needs a name and columns", ErrInvalid)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if col.Name == "" || seen[col.Name] {
			return nil, fmt.Errorf("%w: bad column name %q", ErrInvalid, col.Name)
		}
		seen[col.Name] = true
	}
	if len(pk) == 0 {
		return nil, fmt.Errorf("%w: table %q needs a primary key", ErrInvalid, name)
	}
	pkSeen := map[int]bool{}
	for _, i := range pk {
		if i < 0 || i >= len(cols) || pkSeen[i] {
			return nil, fmt.Errorf("%w: bad PK column %d", ErrInvalid, i)
		}
		pkSeen[i] = true
	}
	t := &Table{
		Name: name,
		ID:   c.nextTree,
		Cols: append([]Column(nil), cols...),
		PK:   append([]int(nil), pk...),
	}
	c.nextTree++
	c.tables[name] = t
	return t, nil
}

// AddIndex validates and registers a secondary index.
func (c *Catalog) AddIndex(name, table string, cols []int, unique bool) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nameTaken(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, table)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: index %q needs columns", ErrInvalid, name)
	}
	for _, i := range cols {
		if i < 0 || i >= len(t.Cols) {
			return nil, fmt.Errorf("%w: bad index column %d", ErrInvalid, i)
		}
	}
	ix := &Index{
		Name:   name,
		ID:     c.nextTree,
		Table:  table,
		Cols:   append([]int(nil), cols...),
		Unique: unique,
	}
	c.nextTree++
	c.indexes[name] = ix
	return ix, nil
}

// AddView validates and registers an indexed view definition.
func (c *Catalog) AddView(v View) (*View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nameTaken(v.Name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, v.Name)
	}
	left, ok := c.tables[v.Left]
	if !ok {
		return nil, fmt.Errorf("%w: base table %q", ErrNotFound, v.Left)
	}
	srcWidth := len(left.Cols)
	if v.Right != "" {
		right, ok := c.tables[v.Right]
		if !ok {
			return nil, fmt.Errorf("%w: join table %q", ErrNotFound, v.Right)
		}
		if v.JoinLeftCol < 0 || v.JoinLeftCol >= len(left.Cols) {
			return nil, fmt.Errorf("%w: join left column %d", ErrInvalid, v.JoinLeftCol)
		}
		rightIdx := v.JoinRightCol - len(left.Cols)
		if rightIdx < 0 || rightIdx >= len(right.Cols) {
			return nil, fmt.Errorf("%w: join right column %d (must index the right portion of the source row)", ErrInvalid, v.JoinRightCol)
		}
		if left.Cols[v.JoinLeftCol].Kind != right.Cols[rightIdx].Kind {
			return nil, fmt.Errorf("%w: join column kinds differ", ErrInvalid)
		}
		srcWidth += len(right.Cols)
	}
	checkCols := func(what string, idxs []int) error {
		for _, i := range idxs {
			if i < 0 || i >= srcWidth {
				return fmt.Errorf("%w: %s column %d of %d", ErrInvalid, what, i, srcWidth)
			}
		}
		return nil
	}
	switch v.Kind {
	case ViewProjection:
		if len(v.Project) == 0 {
			return nil, fmt.Errorf("%w: projection view needs output columns", ErrInvalid)
		}
		if err := checkCols("project", v.Project); err != nil {
			return nil, err
		}
		if len(v.GroupBy) != 0 || len(v.Aggs) != 0 {
			return nil, fmt.Errorf("%w: projection view cannot aggregate", ErrInvalid)
		}
	case ViewAggregate:
		if len(v.Aggs) == 0 {
			return nil, fmt.Errorf("%w: aggregate view needs aggregates", ErrInvalid)
		}
		if err := checkCols("group-by", v.GroupBy); err != nil {
			return nil, err
		}
		for _, a := range v.Aggs {
			if a.Func == expr.AggCountRows {
				continue
			}
			if a.Arg == nil {
				return nil, fmt.Errorf("%w: %s needs an argument", ErrInvalid, a.Func)
			}
		}
		if len(v.Project) != 0 {
			return nil, fmt.Errorf("%w: aggregate view cannot project", ErrInvalid)
		}
	default:
		return nil, fmt.Errorf("%w: unknown view kind %d", ErrInvalid, v.Kind)
	}
	if v.Strategy == 0 {
		v.Strategy = StrategyEscrow
	}
	if v.Strategy == StrategyDeferred {
		// The background applier maintains deferred views purely by folding
		// commutative deltas; projections and extrema have no fold arithmetic.
		if v.Kind != ViewAggregate {
			return nil, fmt.Errorf("%w: deferred maintenance requires an aggregate view", ErrInvalid)
		}
		for _, a := range v.Aggs {
			if a.Func == expr.AggMin || a.Func == expr.AggMax {
				return nil, fmt.Errorf("%w: deferred maintenance cannot fold %s", ErrInvalid, a.Func)
			}
		}
	}
	nv := v // copy
	nv.ID = c.nextTree
	c.nextTree++
	c.views[v.Name] = &nv
	c.viewsOn = nil
	return &nv, nil
}

// DropView removes a view definition.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[name]; !ok {
		return fmt.Errorf("%w: view %q", ErrNotFound, name)
	}
	delete(c.views, name)
	c.viewsOn = nil
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	return t, nil
}

// View returns the named view.
func (c *Catalog) View(name string) (*View, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: view %q", ErrNotFound, name)
	}
	return v, nil
}

// Index returns the named index.
func (c *Catalog) Index(name string) (*Index, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: index %q", ErrNotFound, name)
	}
	return ix, nil
}

// Tables returns every table, sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Views returns every view, sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes returns every secondary index, sorted by name.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ViewsOn returns every view whose source includes the table, sorted by name.
func (c *Catalog) ViewsOn(table string) []*View {
	c.mu.RLock()
	out, ok := c.viewsOn[table]
	c.mu.RUnlock()
	if ok {
		return out
	}
	// Miss: build and cache under the write lock. Callers must not mutate
	// the returned slice; it is shared until the next view DDL.
	c.mu.Lock()
	defer c.mu.Unlock()
	if out, ok := c.viewsOn[table]; ok {
		return out
	}
	out = make([]*View, 0, 2)
	for _, v := range c.views {
		if v.Left == table || v.Right == table {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if c.viewsOn == nil {
		c.viewsOn = make(map[string][]*View)
	}
	c.viewsOn[table] = out
	return out
}

// IndexesOn returns every secondary index on the table, sorted by name.
func (c *Catalog) IndexesOn(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllTreeIDs returns every allocated tree ID (tables, indexes, views).
func (c *Catalog) AllTreeIDs() []id.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []id.Tree
	for _, t := range c.tables {
		out = append(out, t.ID)
	}
	for _, ix := range c.indexes {
		out = append(out, ix.ID)
	}
	for _, v := range c.views {
		out = append(out, v.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
