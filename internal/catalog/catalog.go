// Package catalog holds the schema: tables, secondary indexes, and indexed
// view definitions. Definitions validate at creation time and serialize into
// the snapshot so the schema survives restarts.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/record"
)

// Column is one typed column of a table.
type Column struct {
	Name string
	Kind record.Kind
}

// Table describes a base table, stored as one clustered B-tree keyed by PK.
type Table struct {
	Name string
	ID   id.Tree
	Cols []Column
	PK   []int // column indexes forming the primary key
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Index describes a secondary index on a table: key = (Cols..., PK...), so
// non-unique indexes disambiguate by primary key.
type Index struct {
	Name   string
	ID     id.Tree
	Table  string
	Cols   []int
	Unique bool
}

// ViewKind distinguishes projection views from aggregate views.
type ViewKind uint8

const (
	// ViewProjection materializes filtered, projected source rows, keyed by
	// the source primary key(s).
	ViewProjection ViewKind = iota + 1
	// ViewAggregate materializes GROUP BY aggregates, keyed by the group.
	ViewAggregate
)

// Strategy selects how a view is maintained — the experimental axis of the
// paper's evaluation.
type Strategy uint8

const (
	// StrategyEscrow maintains aggregates with E locks and commit-time
	// folds: the paper's contribution. Non-escrowable aggregates (MIN/MAX)
	// fall back to X locks per row.
	StrategyEscrow Strategy = iota + 1
	// StrategyXLock maintains every view row under transaction-duration X
	// locks: the conventional baseline.
	StrategyXLock
	// StrategyDeferred keeps the view out of the user transaction's critical
	// path: commits publish their fold deltas to a background applier that
	// batches, coalesces, and folds them shortly after commit (bounded
	// staleness, DESIGN.md §9). Requires a pure commutative aggregate view
	// (no MIN/MAX). Baselines F9/F9D.
	StrategyDeferred
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyEscrow:
		return "escrow"
	case StrategyXLock:
		return "xlock"
	case StrategyDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// View describes an indexed view.
//
// The source is either one relation (Source/Left) — a base table or another
// aggregate view — or the equijoin of Left and Right on
// Left.col[JoinLeftCol] = Right.col[JoinRightCol]. Expressions and column
// indexes address the source row: the left row's columns followed — for
// joins — by the right row's columns. For a view source, the source row is
// the parent view's output row: group columns followed by aggregate outputs.
//
// Definitions are written in the named style (Source, GroupBy, Project,
// expr.NamedCol arguments); AddView resolves every name against the source
// schema and fills the positional fields, which remain as deprecated shims
// and as the wire format the WAL/catalog encoding is built on.
type View struct {
	Name string
	ID   id.Tree
	Kind ViewKind
	// Source names the source relation (table or aggregate view). It is the
	// preferred alias for Left: AddView normalizes one into the other and
	// rejects definitions where both are set but disagree.
	Source string
	Left   string
	Right  string // "" when the source is a single relation
	// Join columns, named (resolved by AddView) or positional. JoinRightCol
	// indexes the combined source row, i.e. right-column index + left width.
	JoinLeftName  string
	JoinRightName string
	JoinLeftCol   int
	JoinRightCol  int
	Where         expr.Expr
	// ViewProjection: output columns by name (Project) or source-row index.
	//
	// Deprecated: ProjectCols is the positional shim; new definitions should
	// use Project.
	Project     []string
	ProjectCols []int
	// ViewAggregate: grouping columns by name (GroupBy) or source-row index,
	// plus the aggregates.
	//
	// Deprecated: GroupByCols is the positional shim; new definitions should
	// use GroupBy.
	GroupBy     []string
	GroupByCols []int
	Aggs        []expr.AggSpec
	// Strategy selects the maintenance protocol.
	Strategy Strategy

	// Filled by the catalog: dependency depth (0 over a base table, parent
	// level + 1 over a view) and whether Left names another view.
	level   int
	srcView bool
}

// Join reports whether the view's source is a two-table join.
func (v *View) Join() bool { return v.Right != "" }

// OverView reports whether the view's source is another view.
func (v *View) OverView() bool { return v.srcView }

// Level is the view's depth in the dependency DAG: 0 for a view over a base
// table, parent level + 1 for a view over a view. Tree-ID order is always a
// valid topological order (a view can only reference relations that already
// exist when it is created, and drops are rejected while dependents remain),
// so maintenance cascades process trees in ascending ID order; Level exists
// for attribution and diagnostics.
func (v *View) Level() int { return v.level }

// Catalog is the mutable, thread-safe schema registry. It also allocates
// tree IDs.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	indexes  map[string]*Index
	views    map[string]*View
	viewsOn  map[string][]*View // lazy per-table cache, reset on view DDL
	nextTree id.Tree
}

// Errors returned by catalog operations.
var (
	// ErrExists reports a duplicate object name.
	ErrExists = errors.New("catalog: object already exists")
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("catalog: object not found")
	// ErrInvalid reports a definition that fails validation.
	ErrInvalid = errors.New("catalog: invalid definition")
	// ErrInUse reports a drop rejected because dependent views remain.
	ErrInUse = errors.New("catalog: object in use")
)

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		indexes:  make(map[string]*Index),
		views:    make(map[string]*View),
		nextTree: 1,
	}
}

func (c *Catalog) nameTaken(name string) bool {
	if _, ok := c.tables[name]; ok {
		return true
	}
	if _, ok := c.indexes[name]; ok {
		return true
	}
	_, ok := c.views[name]
	return ok
}

// AddTable validates and registers a table, assigning its tree ID.
func (c *Catalog) AddTable(name string, cols []Column, pk []int) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nameTaken(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if name == "" || len(cols) == 0 {
		return nil, fmt.Errorf("%w: table needs a name and columns", ErrInvalid)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if col.Name == "" || seen[col.Name] {
			return nil, fmt.Errorf("%w: bad column name %q", ErrInvalid, col.Name)
		}
		seen[col.Name] = true
	}
	if len(pk) == 0 {
		return nil, fmt.Errorf("%w: table %q needs a primary key", ErrInvalid, name)
	}
	pkSeen := map[int]bool{}
	for _, i := range pk {
		if i < 0 || i >= len(cols) || pkSeen[i] {
			return nil, fmt.Errorf("%w: bad PK column %d", ErrInvalid, i)
		}
		pkSeen[i] = true
	}
	t := &Table{
		Name: name,
		ID:   c.nextTree,
		Cols: append([]Column(nil), cols...),
		PK:   append([]int(nil), pk...),
	}
	c.nextTree++
	c.tables[name] = t
	return t, nil
}

// AddIndex validates and registers a secondary index.
func (c *Catalog) AddIndex(name, table string, cols []int, unique bool) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nameTaken(name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, table)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: index %q needs columns", ErrInvalid, name)
	}
	for _, i := range cols {
		if i < 0 || i >= len(t.Cols) {
			return nil, fmt.Errorf("%w: bad index column %d", ErrInvalid, i)
		}
	}
	ix := &Index{
		Name:   name,
		ID:     c.nextTree,
		Table:  table,
		Cols:   append([]int(nil), cols...),
		Unique: unique,
	}
	c.nextTree++
	c.indexes[name] = ix
	return ix, nil
}

// AddView validates and registers an indexed view definition: it normalizes
// the named-column style into positional references, validates the result
// against the source schema, and — when the source is another view — checks
// the dependency-DAG rules (aggregate parent, no joins, escrowable
// aggregates, deferred parents only feed deferred children).
func (c *Catalog) AddView(v View) (*View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Normalize the Source alias into Left.
	if v.Source != "" {
		if v.Left != "" && v.Left != v.Source {
			return nil, fmt.Errorf("%w: view %q: Source %q and Left %q disagree", ErrInvalid, v.Name, v.Source, v.Left)
		}
		v.Left = v.Source
	}
	v.Source = v.Left
	if c.nameTaken(v.Name) {
		return nil, fmt.Errorf("%w: %q", ErrExists, v.Name)
	}
	leftCols, leftView, err := c.sourceSchemaLocked(v.Left)
	if err != nil {
		return nil, err
	}
	v.srcView = leftView != nil
	if leftView != nil {
		v.level = leftView.level + 1
	}
	srcCols := leftCols
	if v.Right != "" {
		if v.srcView {
			return nil, fmt.Errorf("%w: view %q: a view over view %q cannot join", ErrInvalid, v.Name, v.Left)
		}
		right, ok := c.tables[v.Right]
		if !ok {
			return nil, fmt.Errorf("%w: join table %q", ErrNotFound, v.Right)
		}
		if v.JoinLeftName != "" {
			i := colIndex(leftCols, v.JoinLeftName)
			if i < 0 {
				return nil, fmt.Errorf("%w: view %q: join column %q not in %q", ErrInvalid, v.Name, v.JoinLeftName, v.Left)
			}
			v.JoinLeftCol = i
		}
		if v.JoinRightName != "" {
			i := right.ColIndex(v.JoinRightName)
			if i < 0 {
				return nil, fmt.Errorf("%w: view %q: join column %q not in %q", ErrInvalid, v.Name, v.JoinRightName, v.Right)
			}
			v.JoinRightCol = i + len(leftCols)
		}
		if v.JoinLeftCol < 0 || v.JoinLeftCol >= len(leftCols) {
			return nil, fmt.Errorf("%w: join left column %d", ErrInvalid, v.JoinLeftCol)
		}
		rightIdx := v.JoinRightCol - len(leftCols)
		if rightIdx < 0 || rightIdx >= len(right.Cols) {
			return nil, fmt.Errorf("%w: join right column %d (must index the right portion of the source row)", ErrInvalid, v.JoinRightCol)
		}
		if leftCols[v.JoinLeftCol].Kind != right.Cols[rightIdx].Kind {
			return nil, fmt.Errorf("%w: join column kinds differ", ErrInvalid)
		}
		srcCols = append(append([]Column(nil), leftCols...), right.Cols...)
	}
	resolve := func(name string) (int, error) {
		if i := colIndex(srcCols, name); i >= 0 {
			return i, nil
		}
		return 0, fmt.Errorf("%w: view %q: column %q not in source %q", ErrInvalid, v.Name, name, v.Left)
	}
	// Resolve named column lists into the positional shims (or backfill the
	// names from a positional definition, so the output schema always has
	// column names for views stacked on this one).
	v.GroupBy, v.GroupByCols, err = resolveColList(v.Name, "group-by", v.GroupBy, v.GroupByCols, srcCols, resolve)
	if err != nil {
		return nil, err
	}
	v.Project, v.ProjectCols, err = resolveColList(v.Name, "project", v.Project, v.ProjectCols, srcCols, resolve)
	if err != nil {
		return nil, err
	}
	if v.Where, err = expr.ResolveColumns(v.Where, resolve); err != nil {
		return nil, err
	}
	for i := range v.Aggs {
		if v.Aggs[i].Arg, err = expr.ResolveColumns(v.Aggs[i].Arg, resolve); err != nil {
			return nil, err
		}
	}
	switch v.Kind {
	case ViewProjection:
		if len(v.ProjectCols) == 0 {
			return nil, fmt.Errorf("%w: projection view needs output columns", ErrInvalid)
		}
		if len(v.GroupByCols) != 0 || len(v.Aggs) != 0 {
			return nil, fmt.Errorf("%w: projection view cannot aggregate", ErrInvalid)
		}
	case ViewAggregate:
		if len(v.Aggs) == 0 {
			return nil, fmt.Errorf("%w: aggregate view needs aggregates", ErrInvalid)
		}
		for _, a := range v.Aggs {
			if a.Func == expr.AggCountRows {
				continue
			}
			if a.Arg == nil {
				return nil, fmt.Errorf("%w: %s needs an argument", ErrInvalid, a.Func)
			}
		}
		if len(v.ProjectCols) != 0 {
			return nil, fmt.Errorf("%w: aggregate view cannot project", ErrInvalid)
		}
		if err := nameAggs(&v, srcCols); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown view kind %d", ErrInvalid, v.Kind)
	}
	if v.Strategy == 0 {
		v.Strategy = StrategyEscrow
	}
	if v.Strategy == StrategyDeferred {
		// The background applier maintains deferred views purely by folding
		// commutative deltas; projections and extrema have no fold arithmetic.
		if v.Kind != ViewAggregate {
			return nil, fmt.Errorf("%w: deferred maintenance requires an aggregate view", ErrInvalid)
		}
		for _, a := range v.Aggs {
			if a.Func == expr.AggMin || a.Func == expr.AggMax {
				return nil, fmt.Errorf("%w: deferred maintenance cannot fold %s", ErrInvalid, a.Func)
			}
		}
	}
	if v.srcView {
		// A stacked view's deltas arrive as signed contributions from the
		// parent's fold/update path, so the child must fold commutatively.
		if leftView.Kind != ViewAggregate {
			return nil, fmt.Errorf("%w: view %q: source view %q must be an aggregate view", ErrInvalid, v.Name, v.Left)
		}
		if v.Kind != ViewAggregate {
			return nil, fmt.Errorf("%w: view %q: a view over a view must aggregate", ErrInvalid, v.Name)
		}
		for _, a := range v.Aggs {
			if !a.Func.Escrowable() {
				return nil, fmt.Errorf("%w: view %q: %s cannot be maintained over view %q", ErrInvalid, v.Name, a.Func, v.Left)
			}
		}
		if v.Strategy == StrategyXLock {
			return nil, fmt.Errorf("%w: view %q: views over views use escrow or deferred maintenance", ErrInvalid, v.Name)
		}
		if leftView.Strategy == StrategyDeferred && v.Strategy != StrategyDeferred {
			return nil, fmt.Errorf("%w: view %q over deferred view %q must itself be deferred", ErrInvalid, v.Name, v.Left)
		}
	}
	nv := v // copy
	nv.ID = c.nextTree
	c.nextTree++
	c.views[v.Name] = &nv
	c.viewsOn = nil
	return &nv, nil
}

// DropView removes a view definition. It fails with ErrInUse while other
// views are defined over this one.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[name]; !ok {
		return fmt.Errorf("%w: view %q", ErrNotFound, name)
	}
	for _, other := range c.views {
		if other.Name != name && other.Left == name {
			return fmt.Errorf("%w: view %q has dependent view %q", ErrInUse, name, other.Name)
		}
	}
	delete(c.views, name)
	c.viewsOn = nil
	return nil
}

// colIndex returns the index of the named column in cols, or -1.
func colIndex(cols []Column, name string) int {
	for i, c := range cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// resolveColList reconciles the named and positional forms of a column list:
// names resolve to indexes, a purely positional list gets its names
// backfilled from the source schema, and a definition supplying both forms
// must supply them consistently.
func resolveColList(view, what string, names []string, idxs []int, srcCols []Column, resolve func(string) (int, error)) ([]string, []int, error) {
	if len(names) == 0 && len(idxs) == 0 {
		return nil, nil, nil
	}
	if len(names) != 0 {
		if len(idxs) != 0 && len(idxs) != len(names) {
			return nil, nil, fmt.Errorf("%w: view %q: %s names and indexes disagree", ErrInvalid, view, what)
		}
		resolved := make([]int, len(names))
		for i, n := range names {
			idx, err := resolve(n)
			if err != nil {
				return nil, nil, err
			}
			if len(idxs) != 0 && idxs[i] != idx {
				return nil, nil, fmt.Errorf("%w: view %q: %s column %q resolves to %d, not %d", ErrInvalid, view, what, n, idx, idxs[i])
			}
			resolved[i] = idx
		}
		return names, resolved, nil
	}
	names = make([]string, len(idxs))
	for i, idx := range idxs {
		if idx < 0 || idx >= len(srcCols) {
			return nil, nil, fmt.Errorf("%w: view %q: %s column %d of %d", ErrInvalid, view, what, idx, len(srcCols))
		}
		names[i] = srcCols[idx].Name
	}
	return names, idxs, nil
}

// nameAggs fills empty aggregate output names with synthesized ones
// ("count", "sum_amount", ...) and rejects duplicates among group and
// aggregate output columns. Synthesis renders column arguments with their
// source-schema names, so positional definitions get the same readable
// output columns as named ones (mirroring resolveColList's name backfill).
func nameAggs(v *View, srcCols []Column) error {
	taken := make(map[string]bool, len(v.GroupBy)+len(v.Aggs))
	for _, n := range v.GroupBy {
		taken[n] = true
	}
	for i := range v.Aggs {
		a := &v.Aggs[i]
		if a.Name == "" {
			base := synthAggName(*a, srcCols)
			a.Name = base
			for n := 2; taken[a.Name]; n++ {
				a.Name = fmt.Sprintf("%s_%d", base, n)
			}
		} else if taken[a.Name] {
			return fmt.Errorf("%w: view %q: duplicate output column %q", ErrInvalid, v.Name, a.Name)
		}
		taken[a.Name] = true
	}
	return nil
}

// synthAggName derives an output column name from the aggregate spec, e.g.
// SUM(amount) -> "sum_amount". A plain column argument renders by its
// source-schema name; anything else falls back to the expression string.
func synthAggName(a expr.AggSpec, srcCols []Column) string {
	if a.Func == expr.AggCountRows {
		return "count"
	}
	base := strings.ToLower(a.Func.String())
	if a.Arg == nil {
		return base
	}
	arg := a.Arg.String()
	if idx, ok := expr.ColIndex(a.Arg); ok && idx >= 0 && idx < len(srcCols) {
		arg = srcCols[idx].Name
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('_')
	for _, r := range strings.ToLower(arg) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '_' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// sourceSchemaLocked returns the column schema of a source relation and, when
// the source is a view, its definition (nil for a base table).
func (c *Catalog) sourceSchemaLocked(name string) ([]Column, *View, error) {
	if t, ok := c.tables[name]; ok {
		return t.Cols, nil, nil
	}
	if v, ok := c.views[name]; ok {
		cols, err := c.viewOutputColsLocked(v)
		return cols, v, err
	}
	return nil, nil, fmt.Errorf("%w: source relation %q", ErrNotFound, name)
}

// viewOutputColsLocked derives the output schema of an aggregate view: group
// columns (source names and kinds) followed by aggregate outputs.
func (c *Catalog) viewOutputColsLocked(v *View) ([]Column, error) {
	if v.Kind != ViewAggregate {
		return nil, fmt.Errorf("%w: view %q has no stackable output schema", ErrInvalid, v.Name)
	}
	srcCols, _, err := c.sourceSchemaLocked(v.Left)
	if err != nil {
		return nil, err
	}
	if v.Right != "" {
		right, ok := c.tables[v.Right]
		if !ok {
			return nil, fmt.Errorf("%w: join table %q", ErrNotFound, v.Right)
		}
		srcCols = append(append([]Column(nil), srcCols...), right.Cols...)
	}
	out := make([]Column, 0, len(v.GroupByCols)+len(v.Aggs))
	for gi, ci := range v.GroupByCols {
		if ci < 0 || ci >= len(srcCols) {
			return nil, fmt.Errorf("%w: view %q: group-by column %d of %d", ErrInvalid, v.Name, ci, len(srcCols))
		}
		name := srcCols[ci].Name
		if gi < len(v.GroupBy) && v.GroupBy[gi] != "" {
			name = v.GroupBy[gi]
		}
		out = append(out, Column{Name: name, Kind: srcCols[ci].Kind})
	}
	zero := zeroRow(srcCols)
	for _, a := range v.Aggs {
		name := a.Name
		if name == "" {
			name = synthAggName(a, srcCols)
		}
		out = append(out, Column{Name: name, Kind: aggKind(a, zero)})
	}
	return out, nil
}

// aggKind probes the output kind of one aggregate column. COUNT variants are
// BIGINT and AVG is DOUBLE; SUM/MIN/MAX take the argument's kind, probed by
// evaluating it over a zero-valued source row.
func aggKind(a expr.AggSpec, zero record.Row) record.Kind {
	switch a.Func {
	case expr.AggCountRows, expr.AggCount:
		return record.KindInt64
	case expr.AggAvg:
		return record.KindFloat64
	}
	if a.Arg != nil {
		if v, err := a.Arg.Eval(zero); err == nil && !v.IsNull() {
			return v.Kind()
		}
	}
	return record.KindInt64
}

// zeroRow builds a row of typed zero values matching cols, for kind probing.
func zeroRow(cols []Column) record.Row {
	row := make(record.Row, len(cols))
	for i, col := range cols {
		switch col.Kind {
		case record.KindFloat64:
			row[i] = record.Float(0)
		case record.KindString:
			row[i] = record.Str("")
		case record.KindBool:
			row[i] = record.Bool(false)
		default:
			row[i] = record.Int(0)
		}
	}
	return row
}

// SourceTable resolves a source-relation name to a table schema: the real
// table, or a pseudo-table describing a view's output rows (group columns
// followed by aggregate outputs, keyed by the group columns). Maintainers
// compile against this schema uniformly whether they sit on a table or on
// another view.
func (c *Catalog) SourceTable(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.tables[name]; ok {
		return t, nil
	}
	v, ok := c.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: source relation %q", ErrNotFound, name)
	}
	cols, err := c.viewOutputColsLocked(v)
	if err != nil {
		return nil, err
	}
	pk := make([]int, len(v.GroupByCols))
	for i := range pk {
		pk[i] = i
	}
	return &Table{Name: v.Name, ID: v.ID, Cols: cols, PK: pk}, nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	return t, nil
}

// View returns the named view.
func (c *Catalog) View(name string) (*View, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: view %q", ErrNotFound, name)
	}
	return v, nil
}

// Index returns the named index.
func (c *Catalog) Index(name string) (*Index, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: index %q", ErrNotFound, name)
	}
	return ix, nil
}

// Tables returns every table, sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Views returns every view, sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes returns every secondary index, sorted by name.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ViewsOn returns every view whose source includes the named relation —
// a base table or, for stacked views, another view — sorted by name. The
// per-source cache is keyed by relation name and reset (viewsOn = nil) on
// every view DDL path (AddView, DropView), so stacked-view entries can never
// go stale.
func (c *Catalog) ViewsOn(source string) []*View {
	c.mu.RLock()
	out, ok := c.viewsOn[source]
	c.mu.RUnlock()
	if ok {
		return out
	}
	// Miss: build and cache under the write lock. Callers must not mutate
	// the returned slice; it is shared until the next view DDL.
	c.mu.Lock()
	defer c.mu.Unlock()
	if out, ok := c.viewsOn[source]; ok {
		return out
	}
	out = make([]*View, 0, 2)
	for _, v := range c.views {
		if v.Left == source || v.Right == source {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if c.viewsOn == nil {
		c.viewsOn = make(map[string][]*View)
	}
	c.viewsOn[source] = out
	return out
}

// IndexesOn returns every secondary index on the table, sorted by name.
func (c *Catalog) IndexesOn(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllTreeIDs returns every allocated tree ID (tables, indexes, views).
func (c *Catalog) AllTreeIDs() []id.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []id.Tree
	for _, t := range c.tables {
		out = append(out, t.ID)
	}
	for _, ix := range c.indexes {
		out = append(out, ix.ID)
	}
	for _, v := range c.views {
		out = append(out, v.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
