package catalog

import (
	"bytes"
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// FuzzDecode: arbitrary bytes must never panic the catalog decoder, and any
// catalog that decodes must re-encode to a decodable, equivalent form.
func FuzzDecode(f *testing.F) {
	c := New()
	c.AddTable("t", []Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "g", Kind: record.KindInt64},
		{Name: "v", Kind: record.KindFloat64},
	}, []int{0})
	c.AddIndex("t_g", "t", []int{1}, false)
	c.AddView(View{
		Name: "agg", Kind: ViewAggregate, Left: "t",
		Where:       expr.Gt(expr.Col(2), expr.ConstFloat(0)),
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	})
	f.Add(c.Encode())
	f.Add(New().Encode())
	f.Add([]byte{})
	f.Add([]byte{encodingVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		cat, err := Decode(data)
		if err != nil {
			return
		}
		enc := cat.Encode()
		cat2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, cat2.Encode()) {
			t.Fatal("encode not stable across a round trip")
		}
	})
}
