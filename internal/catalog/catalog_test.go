package catalog

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if _, err := c.AddTable("accounts", []Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTable("branches", []Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "name", Kind: record.KindString},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddTableValidation(t *testing.T) {
	c := testCatalog(t)
	cases := []struct {
		name string
		cols []Column
		pk   []int
	}{
		{"accounts", []Column{{Name: "x", Kind: record.KindInt64}}, []int{0}}, // duplicate
		{"", []Column{{Name: "x", Kind: record.KindInt64}}, []int{0}},         // empty name
		{"t2", nil, nil}, // no columns
		{"t3", []Column{{Name: "a", Kind: record.KindInt64}, {Name: "a", Kind: record.KindInt64}}, []int{0}}, // dup col
		{"t4", []Column{{Name: "a", Kind: record.KindInt64}}, nil},                                           // no pk
		{"t5", []Column{{Name: "a", Kind: record.KindInt64}}, []int{1}},                                      // pk out of range
		{"t6", []Column{{Name: "a", Kind: record.KindInt64}}, []int{0, 0}},                                   // dup pk
	}
	for _, tc := range cases {
		if _, err := c.AddTable(tc.name, tc.cols, tc.pk); err == nil {
			t.Errorf("AddTable(%q) accepted invalid definition", tc.name)
		}
	}
}

func TestAddIndex(t *testing.T) {
	c := testCatalog(t)
	ix, err := c.AddIndex("accounts_branch", "accounts", []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.ID == 0 {
		t.Fatal("index got zero tree ID")
	}
	if _, err := c.AddIndex("bad", "nope", []int{0}, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing table err = %v", err)
	}
	if _, err := c.AddIndex("bad2", "accounts", []int{9}, false); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad column err = %v", err)
	}
	if _, err := c.AddIndex("accounts_branch", "accounts", []int{1}, false); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate err = %v", err)
	}
	got := c.IndexesOn("accounts")
	if len(got) != 1 || got[0].Name != "accounts_branch" {
		t.Fatalf("IndexesOn = %v", got)
	}
}

func aggView() View {
	return View{
		Name:        "branch_totals",
		Kind:        ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	}
}

func TestAddAggregateView(t *testing.T) {
	c := testCatalog(t)
	v, err := c.AddView(aggView())
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy != StrategyEscrow {
		t.Fatalf("default strategy = %v", v.Strategy)
	}
	if v.ID == 0 {
		t.Fatal("view got zero tree ID")
	}
	vs := c.ViewsOn("accounts")
	if len(vs) != 1 || vs[0].Name != "branch_totals" {
		t.Fatalf("ViewsOn = %v", vs)
	}
	if len(c.ViewsOn("branches")) != 0 {
		t.Fatal("ViewsOn wrong table")
	}
}

func TestAddJoinView(t *testing.T) {
	c := testCatalog(t)
	v := View{
		Name:         "acct_branch_names",
		Kind:         ViewProjection,
		Left:         "accounts",
		Right:        "branches",
		JoinLeftCol:  1, // accounts.branch
		JoinRightCol: 3, // branches.id (source-row index: 3 cols of accounts + 0)
		ProjectCols:  []int{0, 2, 4},
	}
	if _, err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	// Both tables see the view.
	if len(c.ViewsOn("accounts")) != 1 || len(c.ViewsOn("branches")) != 1 {
		t.Fatal("join view not indexed under both tables")
	}
}

func TestAddViewValidation(t *testing.T) {
	c := testCatalog(t)
	bad := []View{
		{Name: "v", Kind: ViewAggregate, Left: "missing", Aggs: []expr.AggSpec{{Func: expr.AggCountRows}}},
		{Name: "v", Kind: ViewAggregate, Left: "accounts"},                                                                         // no aggs
		{Name: "v", Kind: ViewAggregate, Left: "accounts", GroupByCols: []int{9}, Aggs: []expr.AggSpec{{Func: expr.AggCountRows}}}, // bad group col
		{Name: "v", Kind: ViewAggregate, Left: "accounts", Aggs: []expr.AggSpec{{Func: expr.AggSum}}},                              // SUM without arg
		{Name: "v", Kind: ViewProjection, Left: "accounts"},                                                                        // no projection
		{Name: "v", Kind: ViewProjection, Left: "accounts", ProjectCols: []int{5}},                                                 // bad project col
		{Name: "v", Kind: 99, Left: "accounts"},                                                                                    // bad kind
		{Name: "v", Kind: ViewProjection, Left: "accounts", Right: "missing", ProjectCols: []int{0}},                               // bad join table
		{Name: "v", Kind: ViewProjection, Left: "accounts", Right: "branches",
			JoinLeftCol: 9, JoinRightCol: 3, ProjectCols: []int{0}}, // bad join col
		{Name: "v", Kind: ViewProjection, Left: "accounts", Right: "branches",
			JoinLeftCol: 1, JoinRightCol: 0, ProjectCols: []int{0}}, // right col not in right portion
		{Name: "v", Kind: ViewProjection, Left: "accounts", Right: "branches",
			JoinLeftCol: 1, JoinRightCol: 4, ProjectCols: []int{0}}, // kinds differ (int vs string)
		{Name: "accounts", Kind: ViewProjection, Left: "accounts", ProjectCols: []int{0}}, // name clash
	}
	for i, v := range bad {
		if _, err := c.AddView(v); err == nil {
			t.Errorf("case %d: invalid view accepted", i)
		}
	}
}

func TestDropView(t *testing.T) {
	c := testCatalog(t)
	c.AddView(aggView())
	if err := c.DropView("branch_totals"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("branch_totals"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop err = %v", err)
	}
	if len(c.Views()) != 0 {
		t.Fatal("view list not empty")
	}
}

func TestLookupsAndLists(t *testing.T) {
	c := testCatalog(t)
	c.AddIndex("accounts_branch", "accounts", []int{1}, false)
	c.AddView(aggView())
	if _, err := c.Table("accounts"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing table lookup")
	}
	if _, err := c.View("branch_totals"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Index("accounts_branch"); err != nil {
		t.Fatal(err)
	}
	if got := c.Tables(); len(got) != 2 || got[0].Name != "accounts" || got[1].Name != "branches" {
		t.Fatalf("Tables = %v", got)
	}
	ids := c.AllTreeIDs()
	if len(ids) != 4 {
		t.Fatalf("AllTreeIDs = %v", ids)
	}
	seen := map[int]bool{}
	for _, tid := range ids {
		if seen[int(tid)] {
			t.Fatal("duplicate tree IDs")
		}
		seen[int(tid)] = true
	}
	tb, _ := c.Table("accounts")
	if tb.ColIndex("balance") != 2 || tb.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := testCatalog(t)
	c.AddIndex("accounts_branch", "accounts", []int{1}, true)
	av := aggView()
	av.Where = expr.Gt(expr.Col(2), expr.ConstInt(0))
	av.Strategy = StrategyXLock
	c.AddView(av)
	c.AddView(View{
		Name:         "joined",
		Kind:         ViewProjection,
		Left:         "accounts",
		Right:        "branches",
		JoinLeftCol:  1,
		JoinRightCol: 3,
		ProjectCols:  []int{0, 4},
		Strategy:     StrategyEscrow,
	})

	enc := c.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.nextTree != c.nextTree {
		t.Fatalf("nextTree %d != %d", dec.nextTree, c.nextTree)
	}
	if !reflect.DeepEqual(c.Tables(), dec.Tables()) {
		t.Fatalf("tables differ:\n%v\n%v", c.Tables(), dec.Tables())
	}
	if !reflect.DeepEqual(c.Indexes(), dec.Indexes()) {
		t.Fatalf("indexes differ")
	}
	// Views contain expressions (not comparable with DeepEqual across
	// reconstruction unless the ASTs match exactly — ours do).
	a, b := c.Views(), dec.Views()
	if len(a) != len(b) {
		t.Fatalf("view counts differ")
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.Name != bv.Name || av.ID != bv.ID || av.Kind != bv.Kind ||
			av.Strategy != bv.Strategy || av.Left != bv.Left || av.Right != bv.Right ||
			av.JoinLeftCol != bv.JoinLeftCol || av.JoinRightCol != bv.JoinRightCol ||
			!reflect.DeepEqual(av.Project, bv.Project) || !reflect.DeepEqual(av.GroupBy, bv.GroupBy) ||
			!reflect.DeepEqual(av.ProjectCols, bv.ProjectCols) || !reflect.DeepEqual(av.GroupByCols, bv.GroupByCols) ||
			av.Level() != bv.Level() || av.OverView() != bv.OverView() {
			t.Fatalf("view %d scalar fields differ:\n%+v\n%+v", i, av, bv)
		}
		if (av.Where == nil) != (bv.Where == nil) ||
			(av.Where != nil && av.Where.String() != bv.Where.String()) {
			t.Fatalf("view %d where differs", i)
		}
		if len(av.Aggs) != len(bv.Aggs) {
			t.Fatalf("view %d agg counts differ", i)
		}
		for j := range av.Aggs {
			if av.Aggs[j].String() != bv.Aggs[j].String() {
				t.Fatalf("view %d agg %d differs", i, j)
			}
		}
	}
	// IDs keep allocating without collision after decode.
	nt, err := dec.AddTable("extra", []Column{{Name: "x", Kind: record.KindInt64}}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, tid := range c.AllTreeIDs() {
		if tid == nt.ID {
			t.Fatal("decoded catalog reallocated an existing tree ID")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := testCatalog(t)
	c.AddView(aggView())
	good := c.Encode()
	for i := 0; i < len(good); i++ {
		if _, err := Decode(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := Decode(append(append([]byte{}, good...), 7)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] = 99 // version
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
}

// TestNamedPositionalEquivalence pins the API redesign contract: a definition
// written in the named style resolves to exactly the same view as one written
// with the deprecated positional fields, and both styles survive an
// encode/decode round trip identically.
func TestNamedPositionalEquivalence(t *testing.T) {
	named := View{
		Name: "branch_totals", Kind: ViewAggregate, Source: "accounts",
		GroupBy: []string{"branch"},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.NamedCol("balance")},
		},
	}
	positional := View{
		Name: "branch_totals", Kind: ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	}
	build := func(def View) *View {
		c := testCatalog(t)
		v, err := c.AddView(def)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	nv, pv := build(named), build(positional)
	if nv.Left != pv.Left || nv.Source != pv.Source {
		t.Fatalf("source: named %q/%q positional %q/%q", nv.Left, nv.Source, pv.Left, pv.Source)
	}
	if !reflect.DeepEqual(nv.GroupByCols, pv.GroupByCols) || !reflect.DeepEqual(nv.GroupBy, pv.GroupBy) {
		t.Fatalf("group-by: named %v/%v positional %v/%v", nv.GroupByCols, nv.GroupBy, pv.GroupByCols, pv.GroupBy)
	}
	for i := range nv.Aggs {
		if nv.Aggs[i].Name != pv.Aggs[i].Name {
			t.Fatalf("agg %d name: %q vs %q", i, nv.Aggs[i].Name, pv.Aggs[i].Name)
		}
		if nv.Aggs[i].String() != pv.Aggs[i].String() {
			t.Fatalf("agg %d: %s vs %s", i, nv.Aggs[i].String(), pv.Aggs[i].String())
		}
	}
	if nv.Level() != 0 || nv.OverView() {
		t.Fatalf("flat view level=%d overView=%v", nv.Level(), nv.OverView())
	}
}

// stackedCatalog builds accounts -> branch_totals -> grand_totals.
func stackedCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := testCatalog(t)
	if _, err := c.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddView(View{
		Name: "grand_totals", Kind: ViewAggregate, Source: "branch_totals",
		GroupBy: []string{"count"},
		Aggs:    []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("sum_balance")}},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestViewDAGRules pins the catalog's DAG validation and the per-source
// ViewsOn cache across view DDL.
func TestViewDAGRules(t *testing.T) {
	c := stackedCatalog(t)
	child, err := c.View("grand_totals")
	if err != nil {
		t.Fatal(err)
	}
	if child.Level() != 1 || !child.OverView() {
		t.Fatalf("stacked view level=%d overView=%v", child.Level(), child.OverView())
	}
	// The per-source cache indexes views over views, and resets on DDL.
	if vs := c.ViewsOn("branch_totals"); len(vs) != 1 || vs[0].Name != "grand_totals" {
		t.Fatalf("ViewsOn(branch_totals) = %v", vs)
	}
	if err := c.DropView("branch_totals"); !errors.Is(err, ErrInUse) {
		t.Fatalf("mid-DAG drop err = %v", err)
	}
	if err := c.DropView("grand_totals"); err != nil {
		t.Fatal(err)
	}
	if vs := c.ViewsOn("branch_totals"); len(vs) != 0 {
		t.Fatalf("ViewsOn after drop = %v", vs)
	}
	if err := c.DropView("branch_totals"); err != nil {
		t.Fatal(err)
	}

	// A stacked view cannot use X-lock maintenance, MIN/MAX, or a join; a
	// deferred parent requires a deferred child.
	c = testCatalog(t)
	if _, err := c.AddView(View{
		Name: "parent", Kind: ViewAggregate, Source: "accounts",
		GroupBy:  []string{"branch"},
		Aggs:     []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("balance")}},
		Strategy: StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}
	bad := []View{
		{Name: "x", Kind: ViewAggregate, Source: "parent", GroupBy: []string{"branch"},
			Aggs:     []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("sum_balance")}},
			Strategy: StrategyXLock},
		{Name: "x", Kind: ViewAggregate, Source: "parent", GroupBy: []string{"branch"},
			Aggs:     []expr.AggSpec{{Func: expr.AggMax, Arg: expr.NamedCol("sum_balance")}},
			Strategy: StrategyDeferred},
		{Name: "x", Kind: ViewProjection, Source: "parent", Project: []string{"branch"}},
		{Name: "x", Kind: ViewAggregate, Source: "parent", GroupBy: []string{"branch"},
			Aggs: []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("sum_balance")}},
			// escrow child under a deferred parent would read torn parent state
			Strategy: StrategyEscrow},
	}
	for i, def := range bad {
		if _, err := c.AddView(def); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad stacked def %d: err = %v", i, err)
		}
	}
}
