package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// Rollup is the stacked-view workload: order_items(item, order_id, customer,
// region, amount) feeds a 3-level rollup chain — per-order totals, rolled up
// per customer, rolled up per region — each level an indexed view over the
// one below (DESIGN.md §10). Customer popularity follows a Zipf distribution,
// so the top of the chain concentrates into very few hot groups: the regime
// where cascade coalescing (≤1 fold per view group per transaction) matters.
type Rollup struct {
	// Customers is the number of customers (level-1 groups).
	Customers int
	// Regions is the number of regions (level-2 groups); customers hash onto
	// regions, so a customer's region never changes.
	Regions int
	// Skew is the Zipf parameter for customer popularity (<=1 uniform).
	Skew float64
	// Strategy maintains the base-fed level (order_totals).
	Strategy catalog.Strategy
	// Stacked maintains the stacked levels; zero means same as Strategy.
	Stacked catalog.Strategy
}

// The rollup chain's view names, bottom to top.
const (
	RollupL0 = "order_totals"
	RollupL1 = "customer_totals"
	RollupL2 = "region_totals"
)

// Setup creates the items table and the three chained views, written in the
// named-column definition style.
func (w Rollup) Setup(db *core.DB) error {
	stacked := w.Stacked
	if stacked == 0 {
		stacked = w.Strategy
	}
	if err := db.CreateTable("order_items", []catalog.Column{
		{Name: "item", Kind: record.KindInt64},
		{Name: "order_id", Kind: record.KindInt64},
		{Name: "customer", Kind: record.KindInt64},
		{Name: "region", Kind: record.KindString},
		{Name: "amount", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	for _, v := range []catalog.View{
		{Name: RollupL0, Kind: catalog.ViewAggregate, Source: "order_items",
			GroupBy: []string{"order_id", "customer", "region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggSum, Arg: expr.NamedCol("amount"), Name: "total"},
			},
			Strategy: w.Strategy},
		{Name: RollupL1, Kind: catalog.ViewAggregate, Source: RollupL0,
			GroupBy: []string{"customer", "region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggCountRows, Name: "orders"},
				{Func: expr.AggSum, Arg: expr.NamedCol("total"), Name: "total"},
			},
			Strategy: stacked},
		{Name: RollupL2, Kind: catalog.ViewAggregate, Source: RollupL1,
			GroupBy: []string{"region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggCountRows, Name: "customers"},
				{Func: expr.AggSum, Arg: expr.NamedCol("total"), Name: "total"},
			},
			Strategy: stacked},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			return err
		}
	}
	return nil
}

// Region returns the region a customer belongs to.
func (w Rollup) Region(customer int64) string {
	return fmt.Sprintf("region-%02d", customer%int64(w.Regions))
}

// ItemRow builds one order_items row. Items bundle three to an order.
func (w Rollup) ItemRow(item, customer, amount int64) record.Row {
	return record.Row{
		record.Int(item),
		record.Int(item / 3),
		record.Int(customer),
		record.Str(w.Region(customer)),
		record.Int(amount),
	}
}

// ItemEntry returns an Op inserting one item for a Zipf-popular customer.
// idBase partitions the item-ID space per client so inserts never collide.
func (w Rollup) ItemEntry(idBase int64) Op {
	next := idBase
	return func(db *core.DB, rng *rand.Rand) error {
		pick := Zipf(rng, w.Skew, w.Customers)
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		next++
		if err := tx.Insert("order_items",
			w.ItemRow(next, int64(pick()), int64(rng.Intn(90)+10))); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Commit()
	}
}

// LoadItems bulk-inserts n items with the workload's popularity skew.
func (w Rollup) LoadItems(db *core.DB, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	pick := Zipf(rng, w.Skew, w.Customers)
	const batch = 500
	for lo := 0; lo < n; lo += batch {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if err := tx.Insert("order_items",
				w.ItemRow(int64(i), int64(pick()), int64(rng.Intn(90)+10))); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}
