package workload

import (
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// Orders is the order-entry workload: products(id, name, price) and
// orders(id, product, qty), with a sales-by-product aggregate view
// (COUNT(*), SUM(qty) GROUP BY product). Product popularity follows a Zipf
// distribution, so a few view rows are very hot — the contention regime the
// paper's escrow locks target.
type Orders struct {
	// Products is the number of products (aggregate groups).
	Products int
	// Skew is the Zipf parameter for product popularity (<=1 uniform).
	Skew float64
	// Strategy selects the view maintenance protocol under test.
	Strategy catalog.Strategy
	// WithJoinView additionally creates a projection join view
	// (order × product), exercising join maintenance.
	WithJoinView bool
	// ThinkTime simulates a multi-statement transaction: the order stays
	// open this long after the insert before committing (see Banking).
	ThinkTime time.Duration
}

// SalesView is the orders workload's aggregate view name.
const SalesView = "sales_by_product"

// JoinView is the optional order-details join view name.
const JoinView = "order_details"

// Setup creates schema (+views) and loads the product rows.
func (w Orders) Setup(db *core.DB) error {
	if err := db.CreateTable("products", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "name", Kind: record.KindString},
		{Name: "price", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	if err := db.CreateTable("orders", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "product", Kind: record.KindInt64},
		{Name: "qty", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	if err := db.CreateIndex("orders_product", "orders", []int{1}, false); err != nil {
		return err
	}
	if err := db.CreateIndexedView(catalog.View{
		Name:        SalesView,
		Kind:        catalog.ViewAggregate,
		Left:        "orders",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
		Strategy: w.Strategy,
	}); err != nil {
		return err
	}
	if w.WithJoinView {
		// orders(id, product, qty) ⋈ products(id, name, price):
		// source row = [o.id, o.product, o.qty, p.id, p.name, p.price].
		if err := db.CreateIndexedView(catalog.View{
			Name:         JoinView,
			Kind:         catalog.ViewProjection,
			Left:         "orders",
			Right:        "products",
			JoinLeftCol:  1,
			JoinRightCol: 3,
			ProjectCols:  []int{0, 4, 2, 5}, // order id, product name, qty, price
		}); err != nil {
			return err
		}
	}
	tx, err := db.Begin(txn.ReadCommitted)
	if err != nil {
		return err
	}
	for p := 0; p < w.Products; p++ {
		row := record.Row{
			record.Int(int64(p)),
			record.Str(productName(p)),
			record.Int(int64(10 + p%90)),
		}
		if err := tx.Insert("products", row); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

func productName(p int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return "product-" + string(letters[p%26]) + string(letters[(p/26)%26])
}

// OrderEntry returns an Op inserting one order for a Zipf-popular product.
// idBase partitions the order-ID space per client so inserts never collide.
func (w Orders) OrderEntry(idBase int64) Op {
	var next = idBase
	return func(db *core.DB, rng *rand.Rand) error {
		pick := Zipf(rng, w.Skew, w.Products)
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		next++
		row := record.Row{
			record.Int(next),
			record.Int(int64(pick())),
			record.Int(int64(rng.Intn(5) + 1)),
		}
		if err := tx.Insert("orders", row); err != nil {
			tx.Rollback()
			return err
		}
		if w.ThinkTime > 0 {
			time.Sleep(w.ThinkTime)
		}
		return tx.Commit()
	}
}

// LoadOrders bulk-inserts n orders with the workload's popularity skew.
func (w Orders) LoadOrders(db *core.DB, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	pick := Zipf(rng, w.Skew, w.Products)
	const batch = 500
	for lo := 0; lo < n; lo += batch {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := record.Row{
				record.Int(int64(i)),
				record.Int(int64(pick())),
				record.Int(int64(rng.Intn(5) + 1)),
			}
			if err := tx.Insert("orders", row); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}
