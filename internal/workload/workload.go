// Package workload implements the benchmark workloads of the reconstructed
// evaluation (DESIGN.md §4): a TPC-B-style banking workload (accounts with a
// branch-totals aggregate view — the paper's canonical hot-spot), an
// order-entry workload with skewed product popularity, and concurrent
// drivers that report throughput, latency, and abort statistics.
package workload

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/stats"
	"repro/internal/txn"
)

// Banking is the TPC-B-style workload: accounts(id, branch, balance) with a
// branch_totals view (COUNT(*), SUM(balance) GROUP BY branch).
type Banking struct {
	// Accounts is the number of account rows.
	Accounts int
	// Branches is the number of branches (aggregate groups). Fewer branches
	// mean hotter view rows.
	Branches int
	// Strategy selects the view maintenance protocol under test.
	Strategy catalog.Strategy
	// InitialBalance seeds every account.
	InitialBalance int64
	// ThinkTime simulates a multi-statement transaction: the client holds
	// the transaction open this long after its last update before
	// committing (the paper's interactive setting). Transaction-duration
	// locks — the X-lock baseline's view locks — are held across it;
	// escrow writers overlap it.
	ThinkTime time.Duration
}

// ViewName is the banking workload's view.
const ViewName = "branch_totals"

// Setup creates the schema and loads the initial rows.
func (w Banking) Setup(db *core.DB) error {
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	if err := db.CreateIndexedView(catalog.View{
		Name:        ViewName,
		Kind:        catalog.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
		Strategy: w.Strategy,
	}); err != nil {
		return err
	}
	return w.Load(db)
}

// SetupBase creates only the table (the "no view" baseline) and loads rows.
func (w Banking) SetupBase(db *core.DB) error {
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	return w.Load(db)
}

// Load inserts the account rows in batches.
func (w Banking) Load(db *core.DB) error {
	const batch = 500
	for lo := 0; lo < w.Accounts; lo += batch {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		hi := lo + batch
		if hi > w.Accounts {
			hi = w.Accounts
		}
		for i := lo; i < hi; i++ {
			row := record.Row{
				record.Int(int64(i)),
				record.Int(int64(i % w.Branches)),
				record.Int(w.InitialBalance),
			}
			if err := tx.Insert("accounts", row); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// TellerOp performs one TPC-B-ish transfer: move a random amount between
// two random accounts (touching up to two branches' view rows).
func (w Banking) TellerOp(db *core.DB, rng *rand.Rand) error {
	tx, err := db.Begin(txn.ReadCommitted)
	if err != nil {
		return err
	}
	a := int64(rng.Intn(w.Accounts))
	b := int64(rng.Intn(w.Accounts))
	for b == a { // a self-transfer would double-apply via the second update
		b = int64(rng.Intn(w.Accounts))
	}
	amount := int64(rng.Intn(100) + 1)
	rowA, okA, err := tx.Get("accounts", record.Row{record.Int(a)})
	if err != nil || !okA {
		tx.Rollback()
		return err
	}
	rowB, okB, err := tx.Get("accounts", record.Row{record.Int(b)})
	if err != nil || !okB {
		tx.Rollback()
		return err
	}
	if err := tx.Update("accounts", record.Row{record.Int(a)},
		map[int]record.Value{2: record.Int(rowA[2].AsInt() - amount)}); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Update("accounts", record.Row{record.Int(b)},
		map[int]record.Value{2: record.Int(rowB[2].AsInt() + amount)}); err != nil {
		tx.Rollback()
		return err
	}
	if w.ThinkTime > 0 {
		time.Sleep(w.ThinkTime)
	}
	return tx.Commit()
}

// DepositOp credits one random account (one view row touched).
func (w Banking) DepositOp(db *core.DB, rng *rand.Rand) error {
	tx, err := db.Begin(txn.ReadCommitted)
	if err != nil {
		return err
	}
	a := int64(rng.Intn(w.Accounts))
	row, ok, err := tx.Get("accounts", record.Row{record.Int(a)})
	if err != nil || !ok {
		tx.Rollback()
		return err
	}
	if err := tx.Update("accounts", record.Row{record.Int(a)},
		map[int]record.Value{2: record.Int(row[2].AsInt() + 1)}); err != nil {
		tx.Rollback()
		return err
	}
	if w.ThinkTime > 0 {
		time.Sleep(w.ThinkTime)
	}
	return tx.Commit()
}

// ReadBranchOp reads one branch's view row at the given isolation level.
func (w Banking) ReadBranchOp(db *core.DB, rng *rand.Rand, level txn.Level) error {
	tx, err := db.Begin(level)
	if err != nil {
		return err
	}
	branch := int64(rng.Intn(w.Branches))
	_, _, err = tx.GetViewRow(ViewName, record.Row{record.Int(branch)})
	if err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// ReadBranchSnapshotOp reads one branch's view row on the read-only snapshot
// fast path: no begin/commit logging, no lock-manager traffic, visibility
// resolved against the version chains at the pinned read timestamp.
func (w Banking) ReadBranchSnapshotOp(db *core.DB, rng *rand.Rand) error {
	tx, err := db.BeginTx(context.Background(), core.TxOptions{Isolation: txn.Snapshot, ReadOnly: true})
	if err != nil {
		return err
	}
	branch := int64(rng.Intn(w.Branches))
	_, _, err = tx.GetViewRow(ViewName, record.Row{record.Int(branch)})
	if err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Op is one benchmark operation; it returns an error on abort.
type Op func(db *core.DB, rng *rand.Rand) error

// RunConcurrent drives clients goroutines, each executing opsPerClient
// operations, and aggregates throughput/latency/abort statistics. Operation
// errors count as aborts (the op rolled back), not failures.
func RunConcurrent(db *core.DB, clients, opsPerClient int, seed int64, op Op) stats.Runs {
	var wg sync.WaitGroup
	runs := stats.Runs{Latencies: &stats.Histogram{}}
	var aborts, errors, ops int64
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			localAborts, localOps := int64(0), int64(0)
			for i := 0; i < opsPerClient; i++ {
				t0 := time.Now()
				err := op(db, rng)
				runs.Latencies.Observe(time.Since(t0))
				localOps++
				if err != nil {
					localAborts++
				}
			}
			mu.Lock()
			aborts += localAborts
			ops += localOps
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	runs.Elapsed = time.Since(start)
	runs.Ops = ops
	runs.Aborts = aborts
	runs.Errors = errors
	return runs
}

// RunConcurrentOps is RunConcurrent with a distinct Op per client (used when
// each client needs private state, e.g. an order-ID range). The number of
// clients is len(ops).
func RunConcurrentOps(db *core.DB, opsPerClient int, seed int64, ops []Op) stats.Runs {
	var wg sync.WaitGroup
	runs := stats.Runs{Latencies: &stats.Histogram{}}
	var aborts, count int64
	var mu sync.Mutex
	start := time.Now()
	for c, op := range ops {
		wg.Add(1)
		go func(c int, op Op) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			localAborts, localOps := int64(0), int64(0)
			for i := 0; i < opsPerClient; i++ {
				t0 := time.Now()
				err := op(db, rng)
				runs.Latencies.Observe(time.Since(t0))
				localOps++
				if err != nil {
					localAborts++
				}
			}
			mu.Lock()
			aborts += localAborts
			count += localOps
			mu.Unlock()
		}(c, op)
	}
	wg.Wait()
	runs.Elapsed = time.Since(start)
	runs.Ops = count
	runs.Aborts = aborts
	return runs
}

// Zipf returns a Zipf-distributed generator over [0, n) with skew s (s>1;
// larger is more skewed). s<=1 falls back to uniform.
func Zipf(rng *rand.Rand, s float64, n int) func() int {
	if s <= 1 {
		return func() int { return rng.Intn(n) }
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
