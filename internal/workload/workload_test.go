package workload

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/txn"
)

func openDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestBankingSetupAndOps(t *testing.T) {
	db := openDB(t)
	w := Banking{Accounts: 200, Branches: 5, Strategy: catalog.StrategyEscrow, InitialBalance: 100}
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	// The view must reflect the initial load.
	tx, _ := db.Begin(txn.ReadCommitted)
	res, ok, err := tx.GetViewRow(ViewName, record.Row{record.Int(0)})
	if err != nil || !ok {
		t.Fatalf("view read: %v %v", ok, err)
	}
	if res[0].AsInt() != 40 || res[1].AsInt() != 4000 {
		t.Fatalf("branch 0 = %v", res)
	}
	tx.Commit()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if err := w.TellerOp(db, rng); err != nil {
			t.Fatal(err)
		}
		if err := w.DepositOp(db, rng); err != nil {
			t.Fatal(err)
		}
		if err := w.ReadBranchOp(db, rng, txn.ReadCommitted); err != nil {
			t.Fatal(err)
		}
	}
	// Transfers conserve money; deposits add exactly 1 each.
	tx, _ = db.Begin(txn.ReadCommitted)
	rows, err := tx.ScanView(ViewName)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, r := range rows {
		total += r.Result[1].AsInt()
	}
	tx.Commit()
	if total != 200*100+50 {
		t.Fatalf("total balance = %d, want %d", total, 200*100+50)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBankingSetupBase(t *testing.T) {
	db := openDB(t)
	w := Banking{Accounts: 50, Branches: 5, InitialBalance: 10}
	if err := w.SetupBase(db); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Catalog().View(ViewName); err == nil {
		t.Fatal("base setup should not create the view")
	}
	rng := rand.New(rand.NewSource(1))
	if err := w.TellerOp(db, rng); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrent(t *testing.T) {
	db := openDB(t)
	w := Banking{Accounts: 100, Branches: 4, Strategy: catalog.StrategyEscrow, InitialBalance: 100}
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	runs := RunConcurrent(db, 8, 25, 42, w.DepositOp)
	if runs.Ops != 200 {
		t.Fatalf("ops = %d", runs.Ops)
	}
	if runs.Aborts != 0 {
		t.Fatalf("aborts = %d", runs.Aborts)
	}
	if runs.Latencies.Count() != 200 || runs.Throughput() <= 0 {
		t.Fatal("latency/throughput accounting wrong")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOrdersSetupAndEntry(t *testing.T) {
	db := openDB(t)
	w := Orders{Products: 20, Skew: 1.2, Strategy: catalog.StrategyEscrow, WithJoinView: true}
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	op := w.OrderEntry(1_000_000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if err := op(db, rng); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := db.Begin(txn.ReadCommitted)
	rows, err := tx.ScanView(SalesView)
	if err != nil {
		t.Fatal(err)
	}
	count := int64(0)
	for _, r := range rows {
		count += r.Result[0].AsInt()
	}
	if count != 100 {
		t.Fatalf("orders counted = %d", count)
	}
	details, err := tx.ScanView(JoinView)
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != 100 {
		t.Fatalf("join view rows = %d", len(details))
	}
	// Join view rows carry the product name.
	if details[0].Result[1].Kind() != record.KindString {
		t.Fatalf("join row = %v", details[0].Result)
	}
	tx.Commit()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrders(t *testing.T) {
	db := openDB(t)
	w := Orders{Products: 10, Skew: 0, Strategy: catalog.StrategyEscrow}
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadOrders(db, 1200, 3); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(txn.ReadCommitted)
	n := 0
	tx.ScanTable("orders", nil, nil, func(record.Row) bool { n++; return true })
	tx.Commit()
	if n != 1200 {
		t.Fatalf("orders = %d", n)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pick := Zipf(rng, 1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[pick()]++
	}
	if counts[0] < counts[50]*2 {
		t.Fatalf("zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
	// Uniform fallback.
	uni := Zipf(rng, 0, 100)
	counts = make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[uni()]++
	}
	if counts[0] > counts[50]*3 {
		t.Fatalf("uniform fallback skewed: %d vs %d", counts[0], counts[50])
	}
}
