package scrub

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/verify"
)

// fakeEngine is an in-memory Engine: each view's stored contents and its
// recompute result are plain entry lists, timestamps are a counter, and the
// hooks let tests interleave "folds" mid-slice.
type fakeEngine struct {
	mu      sync.Mutex
	plan    []View
	ts      uint64
	pins    int // currently held pins
	applyTS map[id.Tree]uint64
	wm      map[id.Tree]uint64
	view    map[id.Tree][]verify.Entry // stored rows
	src     map[id.Tree][]verify.Entry // recompute result
	// pinAtDeny makes the next n PinAt calls fail (horizon passed).
	pinAtDeny int
	// onHave runs (locked out) after Have's scan — the mid-slice fold hook.
	onHave  func()
	reports []Divergence
}

func entry(key string, v int64) verify.Entry {
	return verify.Entry{Key: []byte(key), Val: record.Row{record.Int(v)}}
}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{
		ts:      100,
		applyTS: make(map[id.Tree]uint64),
		wm:      make(map[id.Tree]uint64),
		view:    make(map[id.Tree][]verify.Entry),
		src:     make(map[id.Tree][]verify.Entry),
	}
}

func (e *fakeEngine) Plan() []View {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]View(nil), e.plan...)
}

func (e *fakeEngine) Pin() (uint64, func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pins++
	return e.ts, func() {
		e.mu.Lock()
		e.pins--
		e.mu.Unlock()
	}
}

func (e *fakeEngine) PinAt(ts uint64) (func(), bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pinAtDeny > 0 {
		e.pinAtDeny--
		return nil, false
	}
	e.pins++
	return func() {
		e.mu.Lock()
		e.pins--
		e.mu.Unlock()
	}, true
}

func (e *fakeEngine) Applied(tree id.Tree) (uint64, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyTS[tree], e.wm[tree]
}

func (e *fakeEngine) Have(tree id.Tree, lo []byte, ts uint64, max int) ([]verify.Entry, []byte, error) {
	e.mu.Lock()
	var out []verify.Entry
	var next []byte
	for _, en := range e.view[tree] {
		if lo != nil && bytes.Compare(en.Key, lo) < 0 {
			continue
		}
		if max > 0 && len(out) == max {
			next = append([]byte(nil), en.Key...)
			break
		}
		out = append(out, en)
	}
	hook := e.onHave
	e.mu.Unlock()
	if hook != nil {
		hook()
	}
	return out, next, nil
}

func (e *fakeEngine) Want(tree id.Tree, ts uint64) ([]verify.Entry, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]verify.Entry(nil), e.src[tree]...), len(e.src[tree]), nil
}

func (e *fakeEngine) Report(d Divergence) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reports = append(e.reports, d)
}

func (e *fakeEngine) reportCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.reports)
}

func newScrubber(e Engine, maxGroups int) (*Scrubber, *metrics.ScrubMetrics) {
	m := &metrics.ScrubMetrics{}
	return New(e, Config{MaxGroups: maxGroups, Metrics: m}), m
}

// TestSinglePinPass: a clean immediate view verifies across multiple slices,
// completes a pass and a cycle, and records coverage at the pass's first ts.
func TestSinglePinPass(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(7)
	e.plan = []View{{Tree: tree, Name: "v"}}
	rows := []verify.Entry{entry("a", 1), entry("b", 2), entry("c", 3), entry("d", 4), entry("e", 5)}
	e.view[tree] = rows
	e.src[tree] = rows
	s, m := newScrubber(e, 2)

	ticks := 0
	for m.Cycles.Load() == 0 {
		if ticks++; ticks > 10 {
			t.Fatalf("no cycle after %d ticks", ticks)
		}
		s.tickOnce()
	}
	if got := m.Slices.Load(); got != 3 {
		t.Fatalf("slices = %d, want 3 (5 rows / max 2)", got)
	}
	// Each slice charges srcRows (5) + scanned view rows (2/2/1).
	if got := m.RowsVerified.Load(); got != 3*5+5 {
		t.Fatalf("rows verified = %d, want 20", got)
	}
	if got := m.Divergences.Load(); got != 0 {
		t.Fatalf("divergences = %d, want 0", got)
	}
	vs := m.Views.Get(tree)
	if vs.Passes.Load() != 1 {
		t.Fatalf("view passes = %d, want 1", vs.Passes.Load())
	}
	if got := vs.CoverageTS.Load(); got != 100 {
		t.Fatalf("coverage ts = %d, want 100", got)
	}
	if e.pins != 0 {
		t.Fatalf("%d pins leaked", e.pins)
	}
}

// TestDivergenceReported: a stored row disagreeing with the recompute is
// counted, attributed to the view, and Reported with the diff detail.
func TestDivergenceReported(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(3)
	e.plan = []View{{Tree: tree, Name: "bad"}}
	e.view[tree] = []verify.Entry{entry("a", 1), entry("b", 99)}
	e.src[tree] = []verify.Entry{entry("a", 1), entry("b", 2)}
	s, m := newScrubber(e, 0)

	s.tickOnce()
	if got := m.Divergences.Load(); got != 1 {
		t.Fatalf("divergences = %d, want 1", got)
	}
	if got := m.Views.Get(tree).Divergences.Load(); got != 1 {
		t.Fatalf("view divergences = %d, want 1", got)
	}
	if len(e.reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(e.reports))
	}
	d := e.reports[0]
	if d.View.Name != "bad" || len(d.Diffs) != 1 {
		t.Fatalf("report = %+v", d)
	}
	if d.Diffs[0].Kind != verify.DiffMismatch || string(d.Diffs[0].Key) != "b" {
		t.Fatalf("diff = %+v", d.Diffs[0])
	}
	if d.ViewTS != d.SourceTS {
		t.Fatalf("single-pin slice has viewTS %d != sourceTS %d", d.ViewTS, d.SourceTS)
	}
}

// TestPairSliceCleanAndLagging: a deferred root whose view lags its source
// verifies view@ts_v against recompute(source@wm) — the lag is not a
// divergence as long as the pair is honest.
func TestPairSliceCleanAndLagging(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(5)
	e.plan = []View{{Tree: tree, Name: "d", Pair: true}}
	// View reflects the fold at applyTS=90 covering commits <= wm=95; the
	// source has since moved on (entries the recompute at wm would NOT see are
	// represented simply by src == view's folded state).
	e.view[tree] = []verify.Entry{entry("a", 1), entry("b", 2)}
	e.src[tree] = []verify.Entry{entry("a", 1), entry("b", 2)}
	e.applyTS[tree] = 90
	e.wm[tree] = 95
	s, m := newScrubber(e, 0)

	s.tickOnce()
	if got := m.Divergences.Load(); got != 0 {
		t.Fatalf("divergences = %d, want 0", got)
	}
	if got := m.Slices.Load(); got != 1 {
		t.Fatalf("slices = %d, want 1", got)
	}
	if e.reports != nil {
		t.Fatalf("unexpected reports %+v", e.reports)
	}
	if e.pins != 0 {
		t.Fatalf("%d pins leaked", e.pins)
	}
}

// TestPairSliceConflictDiscards: a fold landing mid-slice flips the pair's
// applyTS; the slice must discard — conflict counted, cursor not advanced, no
// divergence reported even though the comparison saw mixed state.
func TestPairSliceConflictDiscards(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(5)
	e.plan = []View{{Tree: tree, Name: "d", Pair: true}}
	e.view[tree] = []verify.Entry{entry("a", 1)}
	e.src[tree] = []verify.Entry{entry("a", 1)}
	e.applyTS[tree] = 90
	e.wm[tree] = 95
	// Mid-slice, a fold commits: view gains a row the wm-recompute lacks and
	// the pair advances.
	folded := false
	e.onHave = func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if !folded {
			folded = true
			e.view[tree] = []verify.Entry{entry("a", 1), entry("z", 9)}
			e.src[tree] = e.view[tree] // recompute at the new wm sees the fold
			e.applyTS[tree] = 101
			e.wm[tree] = 101
			e.ts = 102
		}
	}
	s, m := newScrubber(e, 0)

	s.tickOnce()
	if got := m.Conflicts.Load(); got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
	if got := m.Divergences.Load(); got != 0 {
		t.Fatalf("divergences = %d, want 0 (conflicted slice must not report)", got)
	}
	if got := m.Slices.Load(); got != 0 {
		t.Fatalf("slices = %d, want 0 (discarded)", got)
	}
	// The next tick sees the settled pair and verifies clean.
	s.tickOnce()
	if got := m.Slices.Load(); got != 1 {
		t.Fatalf("slices after retry = %d, want 1", got)
	}
	if got := m.Divergences.Load(); got != 0 {
		t.Fatalf("divergences after retry = %d, want 0", got)
	}
}

// TestPairSliceSnapshotRetry: PinAt refusing the watermark (horizon passed it)
// counts a snapshot retry and the slice re-reads a fresher pair inline.
func TestPairSliceSnapshotRetry(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(2)
	e.plan = []View{{Tree: tree, Name: "d", Pair: true}}
	e.view[tree] = []verify.Entry{entry("a", 1)}
	e.src[tree] = []verify.Entry{entry("a", 1)}
	e.applyTS[tree] = 90
	e.wm[tree] = 95
	e.pinAtDeny = 2
	s, m := newScrubber(e, 0)

	s.tickOnce()
	if got := m.SnapshotRetries.Load(); got != 2 {
		t.Fatalf("snapshot retries = %d, want 2", got)
	}
	if got := m.Slices.Load(); got != 1 {
		t.Fatalf("slices = %d, want 1 (inline retry must succeed)", got)
	}
	if e.pins != 0 {
		t.Fatalf("%d pins leaked", e.pins)
	}
}

// TestPairSliceBackfill: a deferred view with no watermark yet (mid-backfill)
// reports its pass done without verifying anything.
func TestPairSliceBackfill(t *testing.T) {
	e := newFakeEngine()
	tree := id.Tree(2)
	e.plan = []View{{Tree: tree, Name: "d", Pair: true}}
	s, m := newScrubber(e, 0)

	s.tickOnce()
	if got := m.Slices.Load(); got != 0 {
		t.Fatalf("slices = %d, want 0", got)
	}
	if got := m.Cycles.Load(); got != 1 {
		t.Fatalf("cycles = %d, want 1 (backfill must not wedge the cycle)", got)
	}
}

// TestRoundRobinAndSyncPlan: ticks rotate across views, and a view vanishing
// from the plan drops its state without wedging the cycle.
func TestRoundRobinAndSyncPlan(t *testing.T) {
	e := newFakeEngine()
	a, b := id.Tree(1), id.Tree(2)
	e.plan = []View{{Tree: a, Name: "a"}, {Tree: b, Name: "b"}}
	e.view[a] = []verify.Entry{entry("k", 1)}
	e.src[a] = e.view[a]
	e.view[b] = []verify.Entry{entry("k", 2)}
	e.src[b] = e.view[b]
	s, m := newScrubber(e, 0)

	s.tickOnce() // a
	s.tickOnce() // b → cycle 1 done
	if got := m.Cycles.Load(); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	if m.Views.Get(a).Passes.Load() != 1 || m.Views.Get(b).Passes.Load() != 1 {
		t.Fatalf("passes a=%d b=%d, want 1/1", m.Views.Get(a).Passes.Load(), m.Views.Get(b).Passes.Load())
	}
	// Drop b mid-cycle: a alone completes cycles.
	s.tickOnce() // a again (cycle 2 pending {a,b}... a done)
	e.mu.Lock()
	e.plan = e.plan[:1]
	e.mu.Unlock()
	s.tickOnce()
	s.tickOnce()
	if got := m.Cycles.Load(); got < 2 {
		t.Fatalf("cycles = %d, want >= 2 after dropping b", got)
	}
	if _, ok := s.state[b]; ok {
		t.Fatalf("state for dropped view survived syncPlan")
	}
}

// TestFullPass: the unpaced sweep verifies every view, returns the diff count,
// and records a cycle without touching the background loop's pending set.
func TestFullPass(t *testing.T) {
	e := newFakeEngine()
	a, b := id.Tree(1), id.Tree(2)
	e.plan = []View{{Tree: a, Name: "ok"}, {Tree: b, Name: "bad"}}
	e.view[a] = []verify.Entry{entry("k", 1), entry("l", 2), entry("m", 3)}
	e.src[a] = e.view[a]
	e.view[b] = []verify.Entry{entry("k", 5)}
	e.src[b] = []verify.Entry{entry("k", 6)}
	s, m := newScrubber(e, 2)

	n, err := s.FullPass(context.Background())
	if err != nil {
		t.Fatalf("FullPass: %v", err)
	}
	if n != 1 {
		t.Fatalf("diverged = %d, want 1", n)
	}
	if got := m.Cycles.Load(); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	if got := e.reportCount(); got != 1 {
		t.Fatalf("reports = %d, want 1", got)
	}
	if m.Views.Get(a).Passes.Load() != 1 || m.Views.Get(b).Passes.Load() != 1 {
		t.Fatalf("full pass did not complete per-view passes")
	}
	if e.pins != 0 {
		t.Fatalf("%d pins leaked", e.pins)
	}
}

// TestFullPassCanceled: a canceled context stops the sweep with its error.
func TestFullPassCanceled(t *testing.T) {
	e := newFakeEngine()
	e.plan = []View{{Tree: id.Tree(1), Name: "v"}}
	s, _ := newScrubber(e, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.FullPass(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunStops: the background loop exits promptly on stop.
func TestRunStops(t *testing.T) {
	e := newFakeEngine()
	s, _ := newScrubber(e, 0)
	s.cfg.Interval = 1e6 // 1ms
	s.cfg.RowBudget = 1000
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { s.Run(stop); close(done) }()
	close(stop)
	<-done
}
