// Package scrub implements the online consistency scrubber (DESIGN.md §7.4):
// a background verification plane that continuously re-checks every indexed
// view against a recompute over its source relation at MVCC snapshot
// timestamps, one (view, group-range) slice per tick, without ever touching
// the lock manager. It is the always-on twin of core.CheckConsistency — the
// offline check quiesces the engine once, the scrubber audits the same
// invariant forever, under live traffic, paced by a row budget.
//
// Timestamp selection is where all the correctness lives, and it differs by
// maintenance class:
//
//   - Immediate views (escrow / X-lock, including stacked chains of them)
//     are maintained synchronously inside the committing transaction, so
//     view@ts == recompute(source@ts) at EVERY timestamp: one pinned
//     snapshot serves both sides of the comparison.
//
//   - A deferred view stacked on a deferred parent folds co-atomically with
//     it — the applier commits the whole cascade component in one system
//     transaction at one timestamp — so child@ts == recompute(parent@ts)
//     also holds at every timestamp, and one pin again suffices.
//
//   - A deferred component root (source is a base table or an immediate
//     view) lags its source: its contents reflect the applier's last fold,
//     which covered commits up to the fold's frontier, not the current read
//     timestamp. These verify through the oracle's (applyTS, watermark)
//     pair: view@ts_v (for any ts_v >= applyTS with no later fold visible)
//     equals recompute(source@watermark). The slice pins the current read
//     timestamp for the view, pins the watermark for the source (the
//     watermark participates in the prune horizon, so the pin is almost
//     always admitted), compares, and then re-reads the pair: a fold that
//     landed mid-slice changes applyTS, and the slice is discarded — a
//     Conflict, costing progress but never a false divergence. The pair is
//     published before the fold's commit timestamp becomes visible
//     (pre-FinishCommit), so a fold visible at ts_v is always reflected in
//     the pair the slice read.
package scrub

import (
	"context"
	"fmt"
	"time"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/verify"
)

// View is one catalog view as the scrubber sees it.
type View struct {
	Tree id.Tree
	Name string
	// Pair marks a deferred component root: verification goes through the
	// (applyTS, watermark) pair protocol instead of a single pinned snapshot.
	Pair bool
}

// Divergence reports one slice whose stored view rows disagreed with the
// recompute. ViewTS is the timestamp the view rows were read at, SourceTS the
// timestamp the recompute ran at (equal for single-pin views).
type Divergence struct {
	View     View
	ViewTS   uint64
	SourceTS uint64
	Diffs    []verify.Diff
}

// Engine is the surface the scrubber drives. All methods must be safe for
// concurrent use; the core adapter backs them with snapshot reads only.
type Engine interface {
	// Plan returns the current catalog's views in tree-ID order — which is
	// topological for stacked DAGs, so a parent is scrubbed before (and, per
	// slice, at the same snapshot timestamp as) the child checked against it.
	Plan() []View
	// Pin pins the current read timestamp and returns it with a release.
	Pin() (ts uint64, release func())
	// PinAt pins a specific past timestamp; ok is false when the prune
	// horizon has already passed it (caller retries with a fresher one).
	PinAt(ts uint64) (release func(), ok bool)
	// Applied returns the deferred view's (applyTS, watermark) pair: the last
	// fold's commit timestamp and the frontier that fold covered.
	Applied(tree id.Tree) (applyTS, watermark uint64)
	// Have scans the view's stored rows from lo at ts, returning at most max
	// decoded entries and the next key to resume from (nil when the scan
	// reached the end of the view).
	Have(tree id.Tree, lo []byte, ts uint64, max int) (entries []verify.Entry, next []byte, err error)
	// Want recomputes the view from its source relation at ts, returning the
	// full expected contents (key-sorted, stored form) and the number of
	// source rows read.
	Want(tree id.Tree, ts uint64) (entries []verify.Entry, srcRows int, err error)
	// Report delivers a confirmed divergence (trace event, flight dump). The
	// scrubber keeps running afterwards.
	Report(d Divergence)
}

// Config tunes a Scrubber. The caller resolves defaults before construction.
type Config struct {
	// Interval is the background tick: one slice per tick.
	Interval time.Duration
	// RowBudget paces verification in rows per second (source rows recomputed
	// plus view rows compared); <= 0 removes pacing.
	RowBudget int
	// MaxGroups bounds the view entries per slice; 0 selects 128.
	MaxGroups int
	// Metrics receives counters and per-view coverage state; must be non-nil.
	Metrics *metrics.ScrubMetrics
}

// defaultMaxGroups is the per-slice view-entry bound.
const defaultMaxGroups = 128

// maxDiffsPerSlice caps the diffs recorded for one diverging slice, so a
// wholly corrupted view reports a bounded sample rather than every row.
const maxDiffsPerSlice = 16

// pinAttempts bounds the inline retries for transient pin failures inside
// one slice (pair read racing a fold, watermark passed by the horizon).
const pinAttempts = 8

// Scrubber drives an Engine: a background Run loop doing one budget-paced
// slice per tick, plus on-demand unpaced FullPass sweeps. Run owns the
// background per-view cursors; FullPass uses only local state, so the two may
// execute concurrently.
type Scrubber struct {
	e   Engine
	cfg Config

	// Background loop state, owned by the Run goroutine.
	state   map[id.Tree]*viewState
	pending map[id.Tree]bool // views not yet fully passed this cycle
	cycleAt time.Time
	after   id.Tree // round-robin position: next slice goes to the first tree after this
}

// viewState is one view's in-progress pass.
type viewState struct {
	cursor []byte // nil: next slice starts a new pass
	passTS uint64 // the pass's first slice's view timestamp
}

// sliceResult is one slice's outcome.
type sliceResult struct {
	rows      int  // rows charged against the budget
	done      bool // the pass reached the end of the view
	diverged  int  // diffs found (already reported)
	discarded bool // transient conflict/pin failure; cursor did not advance
	err       error
}

// New returns a Scrubber over e. cfg.Metrics must be non-nil.
func New(e Engine, cfg Config) *Scrubber {
	if cfg.MaxGroups <= 0 {
		cfg.MaxGroups = defaultMaxGroups
	}
	return &Scrubber{e: e, cfg: cfg, state: make(map[id.Tree]*viewState)}
}

// Run is the background loop: one slice per tick, cycling views round-robin,
// until stop closes. Engine errors (e.g. a closing database) skip the tick;
// the loop only exits on stop.
func (s *Scrubber) Run(stop <-chan struct{}) {
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	// Token-bucket pacing: each tick deposits one tick's worth of rows,
	// capped at one second's budget so an idle stretch buys a bounded burst.
	allowance := float64(s.cfg.RowBudget) * s.cfg.Interval.Seconds()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if s.cfg.RowBudget > 0 {
			allowance += float64(s.cfg.RowBudget) * s.cfg.Interval.Seconds()
			if cap := float64(s.cfg.RowBudget); allowance > cap {
				allowance = cap
			}
			if allowance < 1 {
				continue // over budget: skip the tick, keep accruing
			}
		}
		allowance -= float64(s.tickOnce())
	}
}

// tickOnce runs one background slice and returns the rows charged.
func (s *Scrubber) tickOnce() int {
	plan := s.e.Plan()
	if len(plan) == 0 {
		return 0
	}
	s.syncPlan(plan)
	v := s.nextView(plan)
	st := s.state[v.Tree]
	if st == nil {
		st = &viewState{}
		s.state[v.Tree] = st
	}
	res := s.slice(v, st, s.cfg.MaxGroups)
	s.after = v.Tree
	if res.done {
		s.finishPass(v, st, time.Now())
		delete(s.pending, v.Tree)
		if len(s.pending) == 0 {
			s.finishCycle(time.Now())
		}
	}
	return res.rows
}

// syncPlan reconciles loop state with the current catalog: drops state for
// vanished views and (re)starts the cycle bookkeeping when none is active.
func (s *Scrubber) syncPlan(plan []View) {
	live := make(map[id.Tree]bool, len(plan))
	for _, v := range plan {
		live[v.Tree] = true
	}
	for tree := range s.state {
		if !live[tree] {
			delete(s.state, tree)
			delete(s.pending, tree)
		}
	}
	for tree := range s.pending {
		if !live[tree] {
			delete(s.pending, tree)
		}
	}
	if len(s.pending) == 0 {
		s.pending = make(map[id.Tree]bool, len(plan))
		for _, v := range plan {
			s.pending[v.Tree] = true
		}
		s.cycleAt = time.Now()
	}
}

// nextView picks the round-robin successor of s.after in plan (which is
// tree-ID sorted), wrapping to the first view.
func (s *Scrubber) nextView(plan []View) View {
	for _, v := range plan {
		if v.Tree > s.after {
			return v
		}
	}
	return plan[0]
}

// finishPass records one completed end-to-end verification of v: every group
// has now been checked at a snapshot timestamp >= the pass's first slice's
// (timestamps only grow, so the first slice's is the floor).
func (s *Scrubber) finishPass(v View, st *viewState, now time.Time) {
	vs := s.cfg.Metrics.Views.Get(v.Tree)
	vs.Passes.Add(1)
	vs.LastPassUnixNs.Store(now.UnixNano())
	storeMaxU64(&vs.CoverageTS, st.passTS)
	st.cursor, st.passTS = nil, 0
}

// finishCycle records a completed full pass over every view in the plan.
func (s *Scrubber) finishCycle(now time.Time) {
	s.cfg.Metrics.Cycles.Add(1)
	s.cfg.Metrics.LastFullPassUnixNs.Store(now.UnixNano())
	if !s.cycleAt.IsZero() {
		s.cfg.Metrics.CycleDur.Observe(now.Sub(s.cycleAt))
	}
	s.pending = nil // syncPlan starts the next cycle
}

// FullPass verifies every view end to end, unpaced, on the caller's
// goroutine — the on-demand sweep behind DB.ScrubNow, vtxnshell scrub full,
// and the smoke/torture harnesses. It uses only local cursors, so it is safe
// concurrently with the background loop. Returns the total diffs found
// (each already Reported).
func (s *Scrubber) FullPass(ctx context.Context) (diverged int64, err error) {
	start := time.Now()
	plan := s.e.Plan()
	for _, v := range plan {
		st := &viewState{}
		discards := 0
		for {
			if err := ctx.Err(); err != nil {
				return diverged, err
			}
			res := s.slice(v, st, s.cfg.MaxGroups)
			diverged += int64(res.diverged)
			if res.err != nil {
				return diverged, fmt.Errorf("scrub: view %q: %w", v.Name, res.err)
			}
			if res.done {
				s.finishPass(v, st, time.Now())
				break
			}
			if res.discarded {
				// A fold landed mid-slice (or the horizon passed the pinned
				// watermark). Back off briefly; under sustained writes the
				// slice normally completes between applier rounds.
				if discards++; discards > 500 {
					return diverged, fmt.Errorf("scrub: view %q: %d consecutive conflicts, applier outpaces verification", v.Name, discards)
				}
				time.Sleep(2 * time.Millisecond)
			} else {
				discards = 0
			}
		}
	}
	// Record the cycle through metrics only: finishCycle's s.pending/cycleAt
	// bookkeeping belongs to the Run goroutine, which may be ticking now.
	now := time.Now()
	s.cfg.Metrics.Cycles.Add(1)
	s.cfg.Metrics.LastFullPassUnixNs.Store(now.UnixNano())
	s.cfg.Metrics.CycleDur.Observe(now.Sub(start))
	return diverged, nil
}

// slice verifies one (view, group-range) slice: scan up to max stored view
// entries from st.cursor, recompute the expected contents from the source,
// clip to the scanned range, and compare. On success the cursor advances (or
// the pass completes); a pair conflict discards the work.
func (s *Scrubber) slice(v View, st *viewState, max int) sliceResult {
	if v.Pair {
		return s.pairSlice(v, st, max)
	}
	ts, release := s.e.Pin()
	defer release()
	out := s.compareRange(v, st.cursor, ts, ts, max)
	return s.commit(v, st, ts, ts, out)
}

// pairSlice is the deferred-root protocol (see the package comment): pin the
// view at the current read timestamp, the source at the view's covered
// watermark, and discard the slice if a fold commits in between.
func (s *Scrubber) pairSlice(v View, st *viewState, max int) sliceResult {
	m := s.cfg.Metrics
	for attempt := 0; attempt < pinAttempts; attempt++ {
		tsV, releaseV := s.e.Pin()
		applyTS, wm := s.e.Applied(v.Tree)
		if wm == 0 {
			// No create barrier yet: the view is mid-backfill. Nothing to
			// verify; report the pass done so the cycle is not held hostage.
			releaseV()
			return sliceResult{done: st.cursor == nil}
		}
		if applyTS > tsV {
			// A fold committed between the watermark read and our pin; its
			// effect is visible at any fresher timestamp, so just re-pin.
			releaseV()
			continue
		}
		releaseS, ok := s.e.PinAt(wm)
		if !ok {
			// The horizon passed the watermark before we pinned it (another
			// fold round advanced the frontier). Retry with the fresher pair.
			m.SnapshotRetries.Add(1)
			releaseV()
			continue
		}
		out := s.compareRange(v, st.cursor, tsV, wm, max)
		applyTS2, _ := s.e.Applied(v.Tree)
		releaseS()
		releaseV()
		if out.err == nil && applyTS2 != applyTS {
			// A fold landed mid-slice: the comparison may have mixed the old
			// expectation with new view contents. The work still counts
			// against the budget, but the cursor must not advance and any
			// diffs are noise, not divergences.
			m.Conflicts.Add(1)
			return sliceResult{rows: out.rows, discarded: true}
		}
		return s.commit(v, st, tsV, wm, out)
	}
	return sliceResult{discarded: true}
}

// rangeOutcome is one compareRange result, side-effect-free so the pair
// protocol can validate before anything is recorded or the cursor moves.
type rangeOutcome struct {
	rows  int
	next  []byte
	diffs []verify.Diff
	err   error
}

// compareRange reads the slice's view rows from lo at viewTS, recomputes the
// source at srcTS, and compares the overlapping range. No side effects.
func (s *Scrubber) compareRange(v View, lo []byte, viewTS, srcTS uint64, max int) rangeOutcome {
	have, next, err := s.e.Have(v.Tree, lo, viewTS, max)
	if err != nil {
		return rangeOutcome{err: err}
	}
	want, srcRows, err := s.e.Want(v.Tree, srcTS)
	if err != nil {
		return rangeOutcome{err: err}
	}
	expected := verify.Clip(want, lo, next)
	return rangeOutcome{
		rows:  srcRows + len(have),
		next:  next,
		diffs: verify.Compare(expected, have, maxDiffsPerSlice),
	}
}

// commit records a validated slice: metrics, divergence report, cursor
// advance.
func (s *Scrubber) commit(v View, st *viewState, viewTS, srcTS uint64, out rangeOutcome) sliceResult {
	if out.err != nil {
		return sliceResult{err: out.err}
	}
	m := s.cfg.Metrics
	m.Slices.Add(1)
	m.RowsVerified.Add(int64(out.rows))
	vs := m.Views.Get(v.Tree)
	vs.RowsVerified.Add(int64(out.rows))
	if len(out.diffs) > 0 {
		m.Divergences.Add(int64(len(out.diffs)))
		vs.Divergences.Add(int64(len(out.diffs)))
		s.e.Report(Divergence{View: v, ViewTS: viewTS, SourceTS: srcTS, Diffs: out.diffs})
	}
	if st.cursor == nil {
		st.passTS = viewTS
	}
	st.cursor = out.next
	return sliceResult{rows: out.rows, done: out.next == nil, diverged: len(out.diffs)}
}

// storeMaxU64 advances an atomic to ts if it is larger (the background loop
// and a concurrent FullPass both complete passes; coverage only moves up).
func storeMaxU64(a interface {
	Load() uint64
	CompareAndSwap(old, new uint64) bool
}, ts uint64) {
	for {
		cur := a.Load()
		if ts <= cur || a.CompareAndSwap(cur, ts) {
			return
		}
	}
}
