package stats

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Percentile(0.50)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Quantile monotonicity.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Percentile(q)
		if v < prev {
			t.Fatalf("percentiles not monotonic at %v", q)
		}
		prev = v
	}
}

func TestHistogramResolution(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	got := h.Percentile(0.5)
	// Log buckets guarantee ~5% resolution.
	if got < 9*time.Microsecond || got > 11*time.Microsecond {
		t.Fatalf("10µs recorded as %v", got)
	}
	// Extremes clamp without panicking.
	h.Observe(1)
	h.Observe(10 * time.Minute)
	if h.Count() != 3 {
		t.Fatal("count")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(rng.Intn(1000)+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRunsThroughput(t *testing.T) {
	r := Runs{Ops: 500, Elapsed: 2 * time.Second}
	if got := r.Throughput(); got != 250 {
		t.Fatalf("throughput = %v", got)
	}
	if (Runs{}).Throughput() != 0 {
		t.Fatal("zero elapsed should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "F2",
		Title:  "Escrow scaling",
		Header: []string{"writers", "escrow tx/s", "xlock tx/s"},
	}
	tb.AddRow("1", "1000", "990")
	tb.AddRow("32", "9000", "1001")
	tb.Notes = append(tb.Notes, "SyncNone")
	out := tb.String()
	for _, want := range []string{"F2", "Escrow scaling", "writers", "9000", "note: SyncNone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" || F(1234.5) != "1234" || F(42.25) != "42.2" || F(1.5) != "1.500" {
		t.Fatalf("F: %s %s %s %s", F(0), F(1234.5), F(42.25), F(1.5))
	}
	if D(0) != "0" || D(500*time.Nanosecond) != "500ns" || D(10500*time.Nanosecond) != "10.5µs" {
		t.Fatalf("D small: %s %s %s", D(0), D(500*time.Nanosecond), D(10500*time.Nanosecond))
	}
	if D(25*time.Millisecond) != "25.00ms" || D(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("D big: %s %s", D(25*time.Millisecond), D(1500*time.Millisecond))
	}
}
