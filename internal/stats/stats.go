// Package stats provides the measurement utilities for the benchmark
// harness: latency histograms with percentile queries, throughput accounting,
// and formatted result tables. The histogram implementation lives in
// internal/metrics (the engine observability layer); stats re-exports it so
// the bench harness and the engine share one concurrent histogram.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Histogram is a concurrent log-bucketed latency histogram covering 100ns to
// ~100s with ~4% resolution, shared with the engine's metrics registry.
type Histogram = metrics.Histogram

// Runs summarizes one benchmark run.
type Runs struct {
	Ops       int64
	Errors    int64
	Aborts    int64
	Elapsed   time.Duration
	Latencies *Histogram
}

// Throughput returns operations per second.
func (r Runs) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Table is a formatted experiment result: the rows/series a paper table or
// figure reports.
type Table struct {
	ID     string // experiment id, e.g. "F2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// HeadlineName and Headline identify the experiment's single scalar
	// result (e.g. peak escrow throughput) for machine-readable tracking
	// across runs — cmd/viewbench collects them into BENCH_results.json.
	HeadlineName string
	Headline     float64
	// HeadlineAllocsPerOp and the lock-manager counters below annotate the
	// headline run with its allocation cost and shard behavior when the
	// experiment records them (0 = not measured).
	HeadlineAllocsPerOp float64
	HeadlineShards      int
	HeadlineCollisions  int64
	HeadlineMaxQueue    int64
	// HeadlineFreshP50Ns/P99Ns annotate the headline run with its
	// commit-to-visible latency distribution when the experiment records it
	// (0 = not measured) — viewbench -freshness exports them so benchgate can
	// gate the freshness trajectory alongside throughput.
	HeadlineFreshP50Ns int64
	HeadlineFreshP99Ns int64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, hcell := range t.Header {
		widths[i] = len(hcell)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// D formats a duration compactly for table cells.
func D(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
