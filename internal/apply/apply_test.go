package apply

import (
	"sort"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/record"
	"repro/internal/wal"
)

func fixtureRegistry(t *testing.T) (*Registry, id.Tree, id.Tree) {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.AddTable("acc", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "grp", Kind: record.KindInt64},
		{Name: "val", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cat.AddView(catalog.View{
		Name: "totals", Kind: catalog.ViewAggregate, Left: "acc",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	return reg, tbl.ID, v.ID
}

func treeSource() (TreeSource, map[id.Tree]*btree.Tree) {
	trees := map[id.Tree]*btree.Tree{}
	return func(t id.Tree) *btree.Tree {
		tr := trees[t]
		if tr == nil {
			tr = btree.New()
			trees[t] = tr
		}
		return tr
	}, trees
}

func TestApplyBasicActions(t *testing.T) {
	reg, tblID, _ := fixtureRegistry(t)
	src, trees := treeSource()

	key := []byte("k1")
	if err := Apply(reg, src, &wal.Record{Type: wal.TInsert, Tree: tblID, Key: key, NewVal: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	v, ghost, ok := trees[tblID].Get(key)
	if !ok || ghost || string(v) != "v1" {
		t.Fatalf("after insert: %q %v %v", v, ghost, ok)
	}
	if err := Apply(reg, src, &wal.Record{Type: wal.TUpdate, Tree: tblID, Key: key, OldVal: []byte("v1"), NewVal: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	v, _, _ = trees[tblID].Get(key)
	if string(v) != "v2" {
		t.Fatalf("after update: %q", v)
	}
	if err := Apply(reg, src, &wal.Record{Type: wal.TSetGhost, Tree: tblID, Key: key, NewGhost: true}); err != nil {
		t.Fatal(err)
	}
	if _, ghost, _ := trees[tblID].Get(key); !ghost {
		t.Fatal("ghost bit not set")
	}
	if err := Apply(reg, src, &wal.Record{Type: wal.TDelete, Tree: tblID, Key: key, OldVal: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := trees[tblID].Get(key); ok {
		t.Fatal("row survived delete")
	}
	// Begin/Commit/AbortEnd are no-ops.
	for _, typ := range []wal.Type{wal.TBegin, wal.TCommit, wal.TAbortEnd} {
		if err := Apply(reg, src, &wal.Record{Type: typ, Txn: 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Apply(reg, src, &wal.Record{Type: 99}); err == nil {
		t.Fatal("bad record type accepted")
	}
}

func TestApplyEscrowFold(t *testing.T) {
	reg, _, viewID := fixtureRegistry(t)
	src, trees := treeSource()
	m := reg.Maintainer(viewID)
	if m == nil {
		t.Fatal("no maintainer")
	}
	key := record.EncodeKey(record.Row{record.Int(7)})
	// Fold against an absent row re-creates it from the empty group.
	rec := &wal.Record{
		Type: wal.TEscrowFold, Tree: viewID, Key: key,
		Deltas:   []wal.ColDelta{{Col: 0, Int: 2}, {Col: 1, Int: 2}, {Col: 2, Int: 2}, {Col: 3, Int: 150}},
		NewGhost: false,
	}
	if err := Apply(reg, src, rec); err != nil {
		t.Fatal(err)
	}
	v, ghost, ok := trees[viewID].Get(key)
	if !ok || ghost {
		t.Fatal("fold target missing")
	}
	row, err := record.DecodeRow(v)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].AsInt() != 2 || row[3].AsInt() != 150 {
		t.Fatalf("folded row = %v", row)
	}
	// Fold against a tree with no maintainer errors.
	if err := Apply(reg, src, &wal.Record{Type: wal.TEscrowFold, Tree: 999, Key: key}); err == nil {
		t.Fatal("fold on unknown view accepted")
	}
}

func TestApplyDDLSwapsCatalog(t *testing.T) {
	reg, _, _ := fixtureRegistry(t)
	src, trees := treeSource()
	// New catalog with one extra table.
	clone, err := catalog.Decode(reg.Catalog().Encode())
	if err != nil {
		t.Fatal(err)
	}
	nt, err := clone.AddTable("extra", []catalog.Column{{Name: "x", Kind: record.KindInt64}}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rec := &wal.Record{Type: wal.TDDL, OldVal: reg.Catalog().Encode(), NewVal: clone.Encode()}
	if err := Apply(reg, src, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Catalog().Table("extra"); err != nil {
		t.Fatal("catalog not swapped")
	}
	if trees[nt.ID] == nil {
		t.Fatal("new table's tree not materialized")
	}
	// Bad DDL payload errors.
	if err := Apply(reg, src, &wal.Record{Type: wal.TDDL, NewVal: []byte("junk")}); err == nil {
		t.Fatal("junk DDL accepted")
	}
}

func TestInvertRoundTrips(t *testing.T) {
	reg, tblID, viewID := fixtureRegistry(t)
	src, trees := treeSource()

	key := []byte("k")
	vKey := record.EncodeKey(record.Row{record.Int(1)})
	ops := []*wal.Record{
		{LSN: 1, Type: wal.TInsert, Txn: 5, Tree: tblID, Key: key, NewVal: []byte("a")},
		{LSN: 2, Type: wal.TUpdate, Txn: 5, Tree: tblID, Key: key, OldVal: []byte("a"), NewVal: []byte("b")},
		{LSN: 3, Type: wal.TSetGhost, Txn: 5, Tree: tblID, Key: key, OldGhost: false, NewGhost: true},
		{LSN: 4, Type: wal.TEscrowFold, Txn: 5, Tree: viewID, Key: vKey,
			Deltas: []wal.ColDelta{{Col: 0, Int: 1}, {Col: 3, IsFloat: true, Float: 2.5}}},
	}
	// Apply all forward.
	for _, op := range ops {
		if err := Apply(reg, src, op); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshotTrees(trees)
	// Extra op then invert it: state returns to 'before'.
	// Updates carry the row's current ghost bit in both fields (the engine
	// contract), here true after the TSetGhost above.
	extra := &wal.Record{LSN: 9, Type: wal.TUpdate, Txn: 5, Tree: tblID, Key: key,
		OldVal: []byte("b"), NewVal: []byte("c"), OldGhost: true, NewGhost: true}
	if err := Apply(reg, src, extra); err != nil {
		t.Fatal(err)
	}
	clr, err := Invert(reg, src, extra)
	if err != nil {
		t.Fatal(err)
	}
	if clr.Type != wal.TCLR || clr.UndoneLSN != 9 || clr.Action != wal.TUpdate {
		t.Fatalf("clr = %+v", clr)
	}
	if got := snapshotTrees(trees); got != before {
		t.Fatalf("invert did not restore state:\n%s\n%s", got, before)
	}
	// Invert everything in reverse: trees end empty.
	for i := len(ops) - 1; i >= 0; i-- {
		if _, err := Invert(reg, src, ops[i]); err != nil {
			t.Fatal(err)
		}
	}
	for tid, tr := range trees {
		if n := len(tr.Items(nil, nil, true)); n != 0 && tid == tblID {
			t.Fatalf("tree %s has %d leftover entries", tid, n)
		}
	}
	// The view row should be back to an empty (all-zero) group.
	v, _, ok := trees[viewID].Get(vKey)
	if ok {
		row, _ := record.DecodeRow(v)
		if row[0].AsInt() != 0 {
			t.Fatalf("view row not neutral after undo: %v", row)
		}
	}
	// CLRs are never inverted.
	if _, err := Invert(reg, src, clr); err == nil {
		t.Fatal("inverting a CLR accepted")
	}
}

func snapshotTrees(trees map[id.Tree]*btree.Tree) string {
	ids := make([]id.Tree, 0, len(trees))
	for tid := range trees {
		ids = append(ids, tid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ""
	for _, tid := range ids {
		tr := trees[tid]
		for _, it := range tr.Items(nil, nil, true) {
			out += tid.String() + ":" + string(it.Key) + "=" + string(it.Val)
			if it.Ghost {
				out += "(g)"
			}
			out += ";"
		}
	}
	return out
}

func TestRegistryReplaceRecompiles(t *testing.T) {
	reg, _, viewID := fixtureRegistry(t)
	if reg.Maintainer(viewID) == nil {
		t.Fatal("maintainer missing")
	}
	// Replace with a catalog lacking the view: maintainer disappears.
	bare := catalog.New()
	bare.AddTable("acc", []catalog.Column{{Name: "id", Kind: record.KindInt64}}, []int{0})
	if err := reg.Replace(bare); err != nil {
		t.Fatal(err)
	}
	if reg.Maintainer(viewID) != nil {
		t.Fatal("stale maintainer survived Replace")
	}
}
