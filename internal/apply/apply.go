// Package apply is the single definition of what a log record *does* to the
// stored trees. The engine's rollback path and the recovery redo/undo passes
// both go through Apply and Invert, so runtime behavior and restart behavior
// cannot drift apart.
package apply

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/id"
	"repro/internal/record"
	"repro/internal/view"
	"repro/internal/wal"
)

// Errors surfaced while applying records.
var (
	// ErrBadRecord reports a record that cannot be applied.
	ErrBadRecord = errors.New("apply: malformed record")
	// ErrNoMaintainer reports an escrow fold against a tree with no
	// compiled aggregate-view maintainer.
	ErrNoMaintainer = errors.New("apply: no maintainer for tree")
)

// TreeSource supplies trees by ID, creating them on demand (recovery may see
// records for trees created by a DDL record earlier in the log).
type TreeSource func(id.Tree) *btree.Tree

// Registry resolves aggregate-view maintainers by view tree ID and tracks
// the current catalog across DDL records.
type Registry struct {
	mu          sync.RWMutex
	cat         *catalog.Catalog
	maintainers map[id.Tree]*view.Maintainer
}

// NewRegistry compiles maintainers for every aggregate view in cat.
func NewRegistry(cat *catalog.Catalog) (*Registry, error) {
	r := &Registry{}
	if err := r.Replace(cat); err != nil {
		return nil, err
	}
	return r, nil
}

// Replace swaps in a new catalog (after DDL) and recompiles maintainers.
// A view's source may be another view: SourceTable supplies the parent's
// output schema as a pseudo-table, so stacked maintainers compile exactly
// like flat ones.
func (r *Registry) Replace(cat *catalog.Catalog) error {
	ms := make(map[id.Tree]*view.Maintainer)
	for _, v := range cat.Views() {
		left, err := cat.SourceTable(v.Left)
		if err != nil {
			return err
		}
		var right *catalog.Table
		if v.Join() {
			if right, err = cat.Table(v.Right); err != nil {
				return err
			}
		}
		m, err := view.Compile(v, left, right)
		if err != nil {
			return err
		}
		ms[v.ID] = m
	}
	r.mu.Lock()
	r.cat = cat
	r.maintainers = ms
	r.mu.Unlock()
	return nil
}

// Catalog returns the current catalog.
func (r *Registry) Catalog() *catalog.Catalog {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cat
}

// Maintainer returns the compiled plan for a view tree, or nil.
func (r *Registry) Maintainer(t id.Tree) *view.Maintainer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.maintainers[t]
}

// Apply performs the record's action against the trees. Begin/Commit/
// AbortEnd records are no-ops. CLRs perform their compensating action.
func Apply(reg *Registry, trees TreeSource, rec *wal.Record) error {
	action := rec.Type
	if rec.Type == wal.TCLR {
		action = rec.Action
	}
	switch action {
	case wal.TBegin, wal.TCommit, wal.TAbortEnd:
		return nil
	case wal.TInsert:
		trees(rec.Tree).Put(rec.Key, rec.NewVal, rec.NewGhost)
		return nil
	case wal.TDelete:
		trees(rec.Tree).Delete(rec.Key)
		return nil
	case wal.TUpdate:
		trees(rec.Tree).Put(rec.Key, rec.NewVal, rec.NewGhost)
		return nil
	case wal.TSetGhost:
		trees(rec.Tree).SetGhost(rec.Key, rec.NewGhost)
		return nil
	case wal.TEscrowFold:
		return applyFold(reg, trees, rec)
	case wal.TDDL:
		cat, err := catalog.Decode(rec.NewVal)
		if err != nil {
			return fmt.Errorf("%w: DDL catalog: %v", ErrBadRecord, err)
		}
		if err := reg.Replace(cat); err != nil {
			return err
		}
		// Materialize trees for every object so later records find them.
		for _, tid := range cat.AllTreeIDs() {
			trees(tid)
		}
		return nil
	default:
		return fmt.Errorf("%w: action %v", ErrBadRecord, action)
	}
}

func applyFold(reg *Registry, trees TreeSource, rec *wal.Record) error {
	m := reg.Maintainer(rec.Tree)
	if m == nil {
		return fmt.Errorf("%w: %s", ErrNoMaintainer, rec.Tree)
	}
	tree := trees(rec.Tree)
	cur, _, ok := tree.Get(rec.Key)
	var stored record.Row
	var err error
	if ok {
		if stored, err = record.DecodeRow(cur); err != nil {
			return fmt.Errorf("%w: fold target: %v", ErrBadRecord, err)
		}
	} else {
		// The ghost the fold targeted is gone (possible only during
		// recovery replays that race ghost cleanup records); re-create it.
		stored = m.NewGroupRow()
	}
	next, err := m.ApplyFold(stored, rec.Deltas)
	if err != nil {
		return err
	}
	tree.Put(rec.Key, record.EncodeRow(next), rec.NewGhost)
	return nil
}

// Invert builds the compensation record for rec and applies it, returning
// the CLR for logging. CLRs themselves are redo-only and never inverted.
func Invert(reg *Registry, trees TreeSource, rec *wal.Record) (*wal.Record, error) {
	clr := &wal.Record{
		Type:      wal.TCLR,
		Txn:       rec.Txn,
		Sys:       rec.Sys,
		Tree:      rec.Tree,
		UndoneLSN: rec.LSN,
	}
	switch rec.Type {
	case wal.TInsert:
		clr.Action = wal.TDelete
		clr.Key = rec.Key
		clr.OldVal = rec.NewVal
		clr.OldGhost = rec.NewGhost
	case wal.TDelete:
		clr.Action = wal.TInsert
		clr.Key = rec.Key
		clr.NewVal = rec.OldVal
		clr.NewGhost = rec.OldGhost
	case wal.TUpdate:
		clr.Action = wal.TUpdate
		clr.Key = rec.Key
		clr.OldVal, clr.NewVal = rec.NewVal, rec.OldVal
		clr.OldGhost, clr.NewGhost = rec.NewGhost, rec.OldGhost
	case wal.TSetGhost:
		clr.Action = wal.TSetGhost
		clr.Key = rec.Key
		clr.OldGhost, clr.NewGhost = rec.NewGhost, rec.OldGhost
	case wal.TEscrowFold:
		clr.Action = wal.TEscrowFold
		clr.Key = rec.Key
		clr.OldGhost, clr.NewGhost = rec.NewGhost, rec.OldGhost
		clr.Deltas = make([]wal.ColDelta, len(rec.Deltas))
		for i, d := range rec.Deltas {
			clr.Deltas[i] = wal.ColDelta{Col: d.Col, IsFloat: d.IsFloat, Int: -d.Int, Float: -d.Float}
		}
	case wal.TDDL:
		clr.Action = wal.TDDL
		clr.OldVal, clr.NewVal = rec.NewVal, rec.OldVal
	default:
		return nil, fmt.Errorf("%w: cannot invert %v", ErrBadRecord, rec.Type)
	}
	if err := Apply(reg, trees, clr); err != nil {
		return nil, err
	}
	return clr, nil
}
