package core

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

// TestRepeatableReadViewReadBlocksEscrow: RR view reads take held S locks,
// so — like serializable — they conflict with in-flight escrow writers.
// (Only ReadCommitted gets the lock-free committed-value read.)
func TestRepeatableReadViewReadBlocksEscrow(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	writer := begin(t, db, txn.ReadCommitted)
	if err := writer.Insert("accounts", acctRow(2, 7, 900)); err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		reader := begin(t, db, txn.RepeatableRead)
		defer reader.Rollback()
		res, ok, err := reader.GetViewRow("branch_totals", record.Row{record.Int(7)})
		if err != nil || !ok {
			got <- -1
			return
		}
		got <- res[1].AsInt()
	}()
	select {
	case v := <-got:
		t.Fatalf("RR view reader did not block (saw %d)", v)
	case <-time.After(50 * time.Millisecond):
	}
	mustCommit(t, writer)
	select {
	case v := <-got:
		if v != 1000 {
			t.Fatalf("RR reader saw %d, want 1000", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RR reader stuck")
	}
	db.waitQuiesced()
}

// TestSerializableViewScanTreeLock: serializable view scans take a tree S
// lock, blocking any writer of the view's base until the reader finishes.
func TestSerializableViewScanTreeLock(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	reader := begin(t, db, txn.Serializable)
	if _, err := reader.ScanView("branch_totals"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		w, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			done <- err
			return
		}
		if err := w.Insert("accounts", acctRow(2, 8, 1)); err != nil {
			w.Rollback()
			done <- err
			return
		}
		done <- w.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("writer bypassed serializable view scan: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	mustCommit(t, reader)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db)
}

// TestReadCommittedGetReleasesLock: RC point reads take only a momentary S
// lock, so a subsequent writer of the same row does not block on the
// still-open reading transaction.
func TestReadCommittedGetReleasesLock(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	reader := begin(t, db, txn.ReadCommitted)
	if _, _, err := reader.Get("accounts", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Reader stays open; the writer must not block.
	w := begin(t, db, txn.ReadCommitted)
	if err := w.Update("accounts", record.Row{record.Int(1)},
		map[int]record.Value{2: record.Int(50)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w)
	// RC permits the non-repeatable read.
	row, _, _ := reader.Get("accounts", record.Row{record.Int(1)})
	if row[2].AsInt() != 50 {
		t.Fatalf("RC reread = %d, want 50", row[2].AsInt())
	}
	mustCommit(t, reader)
	checkConsistent(t, db)
}
