package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// TestCrashAtEveryLogPrefix is the strongest recovery property: whatever
// prefix of the log survives a crash (any byte offset — torn tails
// included), recovery must produce a database whose views exactly equal a
// recompute over its base tables. It runs a deterministic workload, then
// replays recovery from many prefixes of the resulting log.
func TestCrashAtEveryLogPrefix(t *testing.T) {
	srcDir := t.TempDir()
	db, err := Open(srcDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)

	rng := rand.New(rand.NewSource(77))
	live := map[int64]bool{}
	for i := 0; i < 120; i++ {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		nOps := 1 + rng.Intn(3)
		aborted := false
		for op := 0; op < nOps && !aborted; op++ {
			id := int64(rng.Intn(40))
			switch {
			case live[id] && rng.Intn(2) == 0:
				if tx.Delete("accounts", record.Row{record.Int(id)}) == nil {
					live[id] = false
				}
			case !live[id]:
				if tx.Insert("accounts", acctRow(id, id%5, int64(rng.Intn(200)))) == nil {
					live[id] = true
				}
			default:
				tx.Update("accounts", record.Row{record.Int(id)},
					map[int]record.Value{2: record.Int(int64(rng.Intn(200)))})
			}
		}
		if rng.Intn(6) == 0 {
			tx.Rollback()
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Note: `live` drifts from reality on rollbacks; it only steers the
	// workload — correctness is judged by CheckConsistency below.
	db.Crash(true)

	dir := wal.Dir{Path: srcDir}
	gen, _, err := dir.Current()
	if err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(dir.LogPath(gen))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(srcDir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}

	// Sample prefixes densely at the start (DDL region) and sparsely after.
	var cuts []int
	for cut := 0; cut < len(logBytes); cut += 1 + cut/10 {
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(logBytes))
	for _, cut := range cuts {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "MANIFEST"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		cutLog := wal.Dir{Path: cutDir}.LogPath(gen)
		if err := os.WriteFile(cutLog, logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(cutDir, Options{})
		if err != nil {
			t.Fatalf("cut %d/%d: open: %v", cut, len(logBytes), err)
		}
		if err := db2.CheckConsistency(); err != nil {
			t.Fatalf("cut %d/%d: %v", cut, len(logBytes), err)
		}
		db2.Close()
	}
}
