package core

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// ViewInfo describes how an indexed view is maintained — an EXPLAIN for the
// maintenance plan.
type ViewInfo struct {
	// Name is the view's name; Kind and Strategy come from the definition.
	Name     string
	Kind     catalog.ViewKind
	Strategy catalog.Strategy
	// Source describes the base table(s).
	Source string
	// Escrow reports whether maintenance uses escrow locking (the paper's
	// protocol): the strategy allows it and every aggregate commutes.
	Escrow bool
	// Cells is the stored row width for aggregate views (hidden count plus
	// per-aggregate cells).
	Cells int
	// Aggregates lists each aggregate with its stored-cell span and
	// escrowability.
	Aggregates []AggInfo
	// Rows and Ghosts count the view tree's current entries.
	Rows   int
	Ghosts int
}

// AggInfo describes one aggregate column of a view.
type AggInfo struct {
	Spec       string
	FirstCell  int
	CellCount  int
	Escrowable bool
}

// String renders the info as a small report.
func (vi ViewInfo) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "view %s: %s over %s, strategy=%s", vi.Name, kindName(vi.Kind), vi.Source, vi.Strategy)
	if vi.Kind == catalog.ViewAggregate {
		protocol := "X-lock maintenance"
		if vi.Escrow {
			protocol = "escrow maintenance (E locks, commit-time folds, ghosts)"
		}
		fmt.Fprintf(&sb, "\n  protocol: %s", protocol)
		fmt.Fprintf(&sb, "\n  stored row: %d cells (cell 0 = hidden COUNT(*))", vi.Cells)
		for _, a := range vi.Aggregates {
			tag := "escrowable"
			if !a.Escrowable {
				tag = "X-lock (not commutative)"
			}
			fmt.Fprintf(&sb, "\n  %s -> cells %d..%d, %s", a.Spec, a.FirstCell, a.FirstCell+a.CellCount-1, tag)
		}
	}
	fmt.Fprintf(&sb, "\n  contents: %d rows, %d ghosts", vi.Rows, vi.Ghosts)
	return sb.String()
}

func kindName(k catalog.ViewKind) string {
	if k == catalog.ViewProjection {
		return "projection"
	}
	return "aggregate"
}

// Describe renders an engine-level report: concurrency-control layout
// (lock-manager stripes, escrow-ledger stripes) and contention counters.
// It complements DescribeView, which reports per-view maintenance plans.
func (db *DB) Describe() string {
	st := db.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine: %d lock shards, %d escrow shards", st.Lock.Shards, db.ledger.Shards())
	fmt.Fprintf(&sb, "\n  txns: %d commits, %d aborts, %d system", st.Commits, st.Aborts, st.SysTxns)
	fmt.Fprintf(&sb, "\n  locks: %d requests, %d waits, %d deadlocks, %d timeouts, %d escalations",
		st.Lock.Requests, st.Lock.Waits, st.Lock.Deadlocks, st.Lock.Timeouts, st.Escalations)
	fmt.Fprintf(&sb, "\n  contention: %d shard collisions, max queue depth %d",
		st.Lock.Collisions, st.Lock.MaxQueueDepth)
	fmt.Fprintf(&sb, "\n  deadlock detector: %d sweeps, last %v, max %v",
		st.Lock.Sweeps, st.Lock.LastSweep, st.Lock.MaxSweep)
	busiest, resources := -1, 0
	var busiestCollisions int64
	for i, ss := range st.Lock.PerShard {
		resources += ss.Resources
		if busiest < 0 || ss.Collisions > busiestCollisions {
			busiest, busiestCollisions = i, ss.Collisions
		}
	}
	if busiest >= 0 {
		fmt.Fprintf(&sb, "\n  lock table: %d resident resources, busiest shard #%d (%d collisions)",
			resources, busiest, busiestCollisions)
	}
	fmt.Fprintf(&sb, "\n  escrow: %d folds; ghosts %d created, %d erased",
		st.Folds, st.GhostsCreated, st.GhostsErased)
	return sb.String()
}

// DescribeView returns the maintenance-plan description of a view.
func (db *DB) DescribeView(name string) (ViewInfo, error) {
	if db.closed.Load() {
		return ViewInfo{}, ErrClosed
	}
	v, err := db.Catalog().View(name)
	if err != nil {
		return ViewInfo{}, err
	}
	m := db.reg.Maintainer(v.ID)
	if m == nil {
		return ViewInfo{}, fmt.Errorf("core: view %q has no compiled maintainer", name)
	}
	source := v.Left
	if v.Join() {
		source = fmt.Sprintf("%s ⋈ %s", v.Left, v.Right)
	}
	tree := db.tree(v.ID)
	info := ViewInfo{
		Name:     v.Name,
		Kind:     v.Kind,
		Strategy: v.Strategy,
		Source:   source,
		Escrow:   v.Strategy == catalog.StrategyEscrow && v.Kind == catalog.ViewAggregate && !m.HasMinMax(),
		Cells:    m.Cells(),
		Rows:     tree.Len(),
		Ghosts:   tree.GhostCount(),
	}
	for i, a := range v.Aggs {
		span := 1
		if a.Func == expr.AggSum || a.Func == expr.AggAvg {
			span = 2
		}
		info.Aggregates = append(info.Aggregates, AggInfo{
			Spec:       a.String(),
			FirstCell:  m.AggOffset(i),
			CellCount:  span,
			Escrowable: a.Func.Escrowable(),
		})
	}
	return info, nil
}
