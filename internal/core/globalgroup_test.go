package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// TestStackedViewGlobalGroup pins two named-API contracts at once: a
// positional-free definition with no GroupBy at all materializes a single
// global group (empty key), and an unnamed SUM over a named column
// synthesizes a readable output name ("sum_balance", not "sum_col2") that a
// stacked view can reference.
func TestStackedViewGlobalGroup(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "branch_totals", Kind: catalog.ViewAggregate, Source: "accounts",
		GroupBy: []string{"branch"},
		Aggs:    []expr.AggSpec{{Func: expr.AggCountRows}, {Func: expr.AggSum, Arg: expr.NamedCol("balance")}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "grand_totals", Kind: catalog.ViewAggregate, Source: "branch_totals",
		Aggs: []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("sum_balance")}},
	}); err != nil {
		t.Fatalf("global-group stacked view: %v", err)
	}
	tx, err := db.Begin(txn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := tx.Insert("accounts", record.Row{record.Int(i), record.Int(i % 2), record.Int(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rt, err := db.Begin(txn.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rt.ScanView("grand_totals")
	rt.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Key) != 0 || rows[0].Result[0].AsInt() != 400 {
		t.Fatalf("global group: got %+v, want one empty-key row summing 400", rows)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
