package core

import (
	"bytes"
	"fmt"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/wal"
)

// Insert adds a row to a table, maintaining every secondary index and
// indexed view inside the transaction.
func (tx *Tx) Insert(table string, row record.Row) error {
	if err := tx.writeCheck(); err != nil {
		return err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	if err := validateRow(tbl, row); err != nil {
		return err
	}
	key := primaryKey(tbl, row)
	if err := db.lockTree(tx.t, tbl.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, tbl.ID, key, lock.ModeX); err != nil {
		return err
	}
	if ghost, ok := db.tree(tbl.ID).Has(key); ok && !ghost {
		return fmt.Errorf("%w: %s in %q", ErrDuplicateKey, row, table)
	}
	// Unique secondary indexes first, so a violation aborts before any write.
	indexes := db.Catalog().IndexesOn(table)
	for _, ix := range indexes {
		if !ix.Unique {
			continue
		}
		prefix := indexPrefix(ix, row)
		if err := db.lockKey(tx.t, ix.ID, prefix, lock.ModeX); err != nil {
			return err
		}
		if dupe := indexPrefixExists(db.tree(ix.ID), prefix); dupe {
			return fmt.Errorf("%w: unique index %q", ErrDuplicateKey, ix.Name)
		}
	}
	// Resolve join-view source rows (taking inner-row S locks) before the
	// base change becomes visible — see prepareViewDeltas.
	deltas, err := db.prepareViewDeltas(tx, table, nil, row)
	if err != nil {
		return err
	}
	// Next-key insert locking (phantom protection): an instant-duration X
	// lock on the successor's *gap resource* blocks this insert while any
	// serializable scan holds an S range lock covering the gap the new key
	// lands in. Row locks live in a different namespace, so RepeatableRead
	// readers never block inserts. Held only until the insert is applied.
	succ := db.successorGap(tbl.ID, key)
	prior := db.lm.HeldMode(tx.t.ID, succ)
	if err := db.lockRes(tx.t, succ, lock.ModeX); err != nil {
		return err
	}
	if prior != lock.ModeNone {
		// This transaction already covers the successor's gap — a range lock
		// from one of its own serializable scans. Inserting key splits that
		// gap in two: the successor's gap resource keeps covering (key, succ],
		// but the new key's own gap — (predecessor, key] — would be left
		// unprotected, letting a concurrent insert land inside the scanned
		// range (its instant-duration probe of the new key's gap would find no
		// holder). Take a held X on the new gap before the insert becomes
		// visible, so the range stays covered until commit.
		if err := db.lockRes(tx.t, gapResource(tbl.ID, key), lock.ModeX); err != nil {
			return err
		}
	}
	rec := &wal.Record{Type: wal.TInsert, Tree: tbl.ID, Key: key, NewVal: record.EncodeRow(row)}
	err = db.logOp(tx.t, rec)
	if prior == lock.ModeNone {
		// The lock was taken solely as the instant-duration insert lock;
		// a lock already held (from earlier work in this transaction)
		// stays, preserving two-phase locking.
		db.lm.Unlock(tx.t.ID, succ)
	}
	if err != nil {
		return err
	}
	for _, ix := range indexes {
		rec := &wal.Record{Type: wal.TInsert, Tree: ix.ID, Key: indexKey(ix, tbl, row)}
		if err := db.logOp(tx.t, rec); err != nil {
			return err
		}
	}
	return db.applyViewDeltas(tx, deltas)
}

// Delete removes the row with the given primary-key values.
func (tx *Tx) Delete(table string, pk record.Row) error {
	if err := tx.writeCheck(); err != nil {
		return err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	key, err := pkKey(tbl, pk)
	if err != nil {
		return err
	}
	if err := db.lockTree(tx.t, tbl.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, tbl.ID, key, lock.ModeX); err != nil {
		return err
	}
	val, ghost, ok := db.tree(tbl.ID).Get(key)
	if !ok || ghost {
		return fmt.Errorf("%w: delete %s from %q", ErrNotFound, pk, table)
	}
	old, err := record.DecodeRow(val)
	if err != nil {
		return err
	}
	deltas, err := db.prepareViewDeltas(tx, table, old, nil)
	if err != nil {
		return err
	}
	rec := &wal.Record{Type: wal.TDelete, Tree: tbl.ID, Key: key, OldVal: val}
	if err := db.logOp(tx.t, rec); err != nil {
		return err
	}
	for _, ix := range db.Catalog().IndexesOn(table) {
		rec := &wal.Record{Type: wal.TDelete, Tree: ix.ID, Key: indexKey(ix, tbl, old)}
		if err := db.logOp(tx.t, rec); err != nil {
			return err
		}
	}
	return db.applyViewDeltas(tx, deltas)
}

// Update replaces the values of the named columns in the row with the given
// primary key. Primary-key columns cannot change.
func (tx *Tx) Update(table string, pk record.Row, set map[int]record.Value) error {
	if err := tx.writeCheck(); err != nil {
		return err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	key, err := pkKey(tbl, pk)
	if err != nil {
		return err
	}
	for c := range set {
		if c < 0 || c >= len(tbl.Cols) {
			return fmt.Errorf("%w: update column %d of %d", ErrSchema, c, len(tbl.Cols))
		}
		for _, p := range tbl.PK {
			if c == p {
				return fmt.Errorf("%w: cannot update primary-key column %q", ErrSchema, tbl.Cols[c].Name)
			}
		}
	}
	if err := db.lockTree(tx.t, tbl.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, tbl.ID, key, lock.ModeX); err != nil {
		return err
	}
	val, ghost, ok := db.tree(tbl.ID).Get(key)
	if !ok || ghost {
		return fmt.Errorf("%w: update %s in %q", ErrNotFound, pk, table)
	}
	old, err := record.DecodeRow(val)
	if err != nil {
		return err
	}
	next := old.Clone()
	for c, v := range set {
		if !v.IsNull() && v.Kind() != tbl.Cols[c].Kind {
			return fmt.Errorf("%w: column %q is %s, got %s", ErrSchema, tbl.Cols[c].Name, tbl.Cols[c].Kind, v.Kind())
		}
		next[c] = v
	}
	deltas, err := db.prepareViewDeltas(tx, table, old, next)
	if err != nil {
		return err
	}
	rec := &wal.Record{Type: wal.TUpdate, Tree: tbl.ID, Key: key, OldVal: val, NewVal: record.EncodeRow(next)}
	if err := db.logOp(tx.t, rec); err != nil {
		return err
	}
	// Secondary indexes whose key columns changed get delete+insert.
	for _, ix := range db.Catalog().IndexesOn(table) {
		oldKey := indexKey(ix, tbl, old)
		newKey := indexKey(ix, tbl, next)
		if bytes.Equal(oldKey, newKey) {
			continue
		}
		if ix.Unique {
			prefix := indexPrefix(ix, next)
			if err := db.lockKey(tx.t, ix.ID, prefix, lock.ModeX); err != nil {
				return err
			}
			if indexPrefixExists(db.tree(ix.ID), prefix) {
				return fmt.Errorf("%w: unique index %q", ErrDuplicateKey, ix.Name)
			}
		}
		del := &wal.Record{Type: wal.TDelete, Tree: ix.ID, Key: oldKey}
		if err := db.logOp(tx.t, del); err != nil {
			return err
		}
		ins := &wal.Record{Type: wal.TInsert, Tree: ix.ID, Key: newKey}
		if err := db.logOp(tx.t, ins); err != nil {
			return err
		}
	}
	return db.applyViewDeltas(tx, deltas)
}

// validateRow checks arity, kinds, and PK non-NULLness.
func validateRow(tbl *catalog.Table, row record.Row) error {
	if len(row) != len(tbl.Cols) {
		return fmt.Errorf("%w: %q has %d columns, row has %d", ErrSchema, tbl.Name, len(tbl.Cols), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind() != tbl.Cols[i].Kind {
			return fmt.Errorf("%w: column %q is %s, got %s", ErrSchema, tbl.Cols[i].Name, tbl.Cols[i].Kind, v.Kind())
		}
	}
	for _, p := range tbl.PK {
		if row[p].IsNull() {
			return fmt.Errorf("%w: NULL primary-key column %q", ErrSchema, tbl.Cols[p].Name)
		}
	}
	return nil
}

// primaryKey encodes a full row's primary key, pre-sized for the common
// fixed-width kinds (tag byte plus eight payload bytes).
func primaryKey(tbl *catalog.Table, row record.Row) []byte {
	key := make([]byte, 0, 9*len(tbl.PK))
	for _, p := range tbl.PK {
		key = record.AppendKey(key, row[p])
	}
	return key
}

// pkKey encodes explicit primary-key values, validating arity and kinds.
func pkKey(tbl *catalog.Table, pk record.Row) ([]byte, error) {
	if len(pk) != len(tbl.PK) {
		return nil, fmt.Errorf("%w: %q key has %d columns, got %d", ErrSchema, tbl.Name, len(tbl.PK), len(pk))
	}
	var key []byte
	for i, p := range tbl.PK {
		if pk[i].IsNull() || pk[i].Kind() != tbl.Cols[p].Kind {
			return nil, fmt.Errorf("%w: key column %q", ErrSchema, tbl.Cols[p].Name)
		}
		key = record.AppendKey(key, pk[i])
	}
	return key, nil
}

// indexPrefixExists reports whether any live index entry starts with prefix.
func indexPrefixExists(tree *btree.Tree, prefix []byte) bool {
	found := false
	tree.Scan(prefix, record.KeySuccessor(prefix), false, func(btree.Item) bool {
		found = true
		return false
	})
	return found
}
