package core

import (
	"fmt"
	"time"

	"repro/internal/record"
)

// CheckConsistency quiesces the database and verifies the paper's central
// invariant: every indexed view's live contents equal a recompute-from-
// scratch over its source relation (base tables, or the parent view for a
// stacked view) — including deferred views, once the
// background applier has drained. It also checks B-tree structural
// invariants and that the escrow ledger is empty at quiescence.
func (db *DB) CheckConsistency() error {
	if db.closed.Load() {
		return ErrClosed
	}
	// Deferred views converge only after the applier catches up, and the
	// applier's folds need the world unlocked — so wait BEFORE taking the
	// gate, then confirm nothing slipped in between the wait and the lock
	// (the applier never takes the gate, but new user commits could). A
	// bounded retry turns a wedged applier into an error, not a hang.
	for attempt := 0; ; attempt++ {
		if err := db.waitDeferredCaughtUp(10 * time.Second); err != nil {
			return err
		}
		db.gate.Lock()
		if db.deferredCaughtUp() {
			break
		}
		db.gate.Unlock()
		if attempt >= 100 {
			return fmt.Errorf("core: deferred applier cannot catch up with concurrent commits")
		}
	}
	defer db.gate.Unlock()
	if !db.ledger.Empty() {
		return fmt.Errorf("core: escrow ledger not empty at quiescence")
	}
	cat := db.Catalog()
	db.treesMu.RLock()
	trees := make(map[string]error)
	for tid, tree := range db.trees {
		if err := tree.CheckInvariants(); err != nil {
			trees[tid.String()] = err
		}
	}
	db.treesMu.RUnlock()
	for name, err := range trees {
		return fmt.Errorf("core: %s: %w", name, err)
	}
	for _, v := range cat.Views() {
		m := db.reg.Maintainer(v.ID)
		if m == nil {
			return fmt.Errorf("core: view %q has no maintainer", v.Name)
		}
		// For a view-over-view the recompute reads the parent view's live rows
		// (in output form), so a stacked chain is checked against the same
		// rows its maintenance folded from.
		leftRows, err := db.relationRows(cat, v.Left)
		if err != nil {
			return err
		}
		var rightRows []record.Row
		if v.Join() {
			right, err := cat.Table(v.Right)
			if err != nil {
				return err
			}
			if rightRows, err = db.tableRows(right); err != nil {
				return err
			}
		}
		want, err := m.Recompute(leftRows, rightRows)
		if err != nil {
			return err
		}
		have := db.tree(v.ID).Items(nil, nil, false) // live rows only
		if len(want) != len(have) {
			return fmt.Errorf("core: view %q has %d live rows, recompute says %d", v.Name, len(have), len(want))
		}
		for i := range want {
			if record.CompareKeys(want[i].Key, have[i].Key) != 0 {
				return fmt.Errorf("core: view %q row %d key mismatch", v.Name, i)
			}
			got, err := record.DecodeRow(have[i].Val)
			if err != nil {
				return err
			}
			if record.CompareRows(got, want[i].Val) != 0 {
				return fmt.Errorf("core: view %q key %x: stored %v, recompute %v",
					v.Name, have[i].Key, got, want[i].Val)
			}
		}
	}
	return nil
}
