package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/record"
	"repro/internal/verify"
)

// CheckProgress is one per-view progress report from CheckConsistencyCtx:
// view Index (0-based) of Total just finished verifying Rows live rows.
type CheckProgress struct {
	View  string
	Index int
	Total int
	Rows  int
}

// CheckConsistency quiesces the database and verifies the paper's central
// invariant: every indexed view's live contents equal a recompute-from-
// scratch over its source relation (base tables, or the parent view for a
// stacked view) — including deferred views, once the
// background applier has drained. It also checks B-tree structural
// invariants and that the escrow ledger is empty at quiescence.
func (db *DB) CheckConsistency() error {
	return db.CheckConsistencyCtx(context.Background(), nil)
}

// CheckConsistencyCtx is CheckConsistency with a context bounding the
// quiescence wait and an optional per-view progress callback (invoked after
// each view verifies clean, under the exclusive gate — keep it fast). It
// shares its recompute/compare core (internal/verify) with the online
// scrubber, so the two checkers accept exactly the same states.
func (db *DB) CheckConsistencyCtx(ctx context.Context, progress func(CheckProgress)) error {
	if db.closed.Load() {
		return ErrClosed
	}
	// Deferred views converge only after the applier catches up, and the
	// applier's folds need the world unlocked — so wait BEFORE taking the
	// gate, then confirm nothing slipped in between the wait and the lock
	// (the applier never takes the gate, but new user commits could). A
	// bounded retry turns a wedged applier into an error, not a hang.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := db.waitDeferredCaughtUp(10 * time.Second); err != nil {
			return err
		}
		db.gate.Lock()
		if db.deferredCaughtUp() {
			break
		}
		db.gate.Unlock()
		if attempt >= 100 {
			return fmt.Errorf("core: deferred applier cannot catch up with concurrent commits")
		}
	}
	defer db.gate.Unlock()
	if !db.ledger.Empty() {
		return fmt.Errorf("core: escrow ledger not empty at quiescence")
	}
	cat := db.Catalog()
	db.treesMu.RLock()
	trees := make(map[string]error)
	for tid, tree := range db.trees {
		if err := tree.CheckInvariants(); err != nil {
			trees[tid.String()] = err
		}
	}
	db.treesMu.RUnlock()
	for name, err := range trees {
		return fmt.Errorf("core: %s: %w", name, err)
	}
	views := cat.Views()
	for i, v := range views {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := db.reg.Maintainer(v.ID)
		if m == nil {
			return fmt.Errorf("core: view %q has no maintainer", v.Name)
		}
		// For a view-over-view the recompute reads the parent view's live rows
		// (in output form), so a stacked chain is checked against the same
		// rows its maintenance folded from.
		leftRows, err := db.relationRows(cat, v.Left)
		if err != nil {
			return err
		}
		var rightRows []record.Row
		if v.Join() {
			right, err := cat.Table(v.Right)
			if err != nil {
				return err
			}
			if rightRows, err = db.tableRows(right); err != nil {
				return err
			}
		}
		want, err := m.Recompute(leftRows, rightRows)
		if err != nil {
			return err
		}
		stored := db.tree(v.ID).Items(nil, nil, false) // live rows only
		have := make([]verify.Entry, 0, len(stored))
		for _, it := range stored {
			row, err := record.DecodeRow(it.Val)
			if err != nil {
				return err
			}
			have = append(have, verify.Entry{Key: it.Key, Val: row})
		}
		if diffs := verify.Compare(want, have, 1); len(diffs) > 0 {
			return diffs[0].Error(v.Name)
		}
		if progress != nil {
			progress(CheckProgress{View: v.Name, Index: i, Total: len(views), Rows: len(have)})
		}
	}
	return nil
}
