package core

import (
	"context"
	"runtime/pprof"
	"time"

	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/wal"
)

// cleanerLoop runs the background ghost cleaner (DESIGN.md §5): zero-count
// ghost rows left behind by commit folds are physically erased by system
// transactions, asynchronously to user work.
func (db *DB) cleanerLoop(interval time.Duration) {
	defer close(db.cleanerDone)
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("vtxn", "ghost-cleaner")))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-db.cleanerStop:
			return
		case <-tick.C:
			db.CleanGhosts()
		}
	}
}

// CleanGhosts erases every erasable ghost row across all aggregate views,
// returning how many it removed. A ghost is erasable when no transaction has
// pending escrow deltas against it and its X lock is immediately available.
func (db *DB) CleanGhosts() int {
	if db.closed.Load() {
		return 0
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	start := time.Now()
	erased, backlog := 0, 0
	for _, v := range db.Catalog().Views() {
		if v.Kind != catalog.ViewAggregate {
			continue
		}
		tree := db.tree(v.ID)
		if tree.GhostCount() == 0 {
			continue
		}
		erased += db.cleanViewGhosts(v)
		// Whatever survives the sweep (pending deltas, held E locks) is the
		// cleaner's backlog.
		backlog += tree.GhostCount()
	}
	db.met.Ghost.ObservePass(backlog)
	if db.tracer != nil {
		db.tracer.TraceEvent(metrics.Event{Type: metrics.EventGhostClean, Dur: time.Since(start), Rows: erased})
	}
	return erased
}

// cleanViewGhosts erases the erasable ghosts of one view.
func (db *DB) cleanViewGhosts(v *catalog.View) int {
	tree := db.tree(v.ID)
	var keys [][]byte
	for _, it := range tree.Items(nil, nil, true) {
		if it.Ghost {
			keys = append(keys, it.Key)
		}
	}
	erased := 0
	for _, key := range keys {
		row := escrow.RowID{Tree: v.ID, Key: string(key)}
		if db.ledger.PendingTxns(row) > 0 {
			continue // in-flight deltas target this ghost
		}
		err := db.runSysTxn(func(st *txn.Txn) error {
			// A short X lock keeps user transactions from acquiring E while
			// we erase; if someone holds E we skip rather than wait.
			res := lock.KeyResource(v.ID, key)
			if err := db.lm.Lock(st.ID, res, lock.ModeX, 5*time.Millisecond); err != nil {
				return err
			}
			latch := db.structLatch(v.ID, key)
			latch.Lock()
			defer latch.Unlock()
			cur, ghost, ok := tree.Get(key)
			if !ok || !ghost || db.ledger.PendingTxns(row) > 0 {
				return errSkipGhost
			}
			if err := db.hit(fault.PointGhostErase); err != nil {
				return err
			}
			rec := &wal.Record{Type: wal.TDelete, Tree: v.ID, Key: key, OldVal: cur, OldGhost: true}
			return db.logOp(st, rec)
		})
		if err == nil {
			erased++
			db.ghostsErased.Add(1)
		}
	}
	return erased
}

// errSkipGhost aborts a cleaning system transaction without treating the
// skip as a failure.
var errSkipGhost = errSentinel("ghost not erasable")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
