package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

// TestDescribeEngine exercises the engine-level report: it must reflect the
// configured stripe counts and the lock/contention counters.
func TestDescribeEngine(t *testing.T) {
	db := openTestDB(t, Options{LockShards: 16, EscrowShards: 8})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 1, 100), acctRow(2, 1, 50))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", acctRow(1, 1, 100)[:1],
		map[int]record.Value{2: record.Int(150)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	out := db.Describe()
	for _, want := range []string{
		"16 lock shards",
		"8 escrow shards",
		"commits",
		"lock",
		"deadlock detector",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
	st := db.Stats()
	if st.Lock.Shards != 16 {
		t.Fatalf("want 16 lock shards in stats, got %d", st.Lock.Shards)
	}
	if len(st.Lock.PerShard) != 16 {
		t.Fatalf("want 16 per-shard entries, got %d", len(st.Lock.PerShard))
	}
	if st.Lock.Requests == 0 {
		t.Fatal("expected nonzero lock requests after a committed update")
	}
}
