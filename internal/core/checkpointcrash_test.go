package core

import (
	"os"
	"testing"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// TestCrashDuringCheckpointInstall simulates a crash after the new
// generation's files were written but before the MANIFEST switched: the
// database must recover from the OLD generation, ignoring the orphan files.
func TestCrashDuringCheckpointInstall(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	db.Crash(true)

	// Fabricate a half-finished checkpoint: a snapshot and log for gen+1
	// exist (the snapshot is even valid), but MANIFEST still names gen.
	d := wal.Dir{Path: dir}
	gen, _, err := d.Current()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.SnapPath(gen+1), []byte("garbage from a dying checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.LogPath(gen+1), []byte{}, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed with orphan next-gen files: %v", err)
	}
	defer db2.Close()
	if db2.RecoverySummary().Gen != gen {
		t.Fatalf("recovered gen %d, want %d", db2.RecoverySummary().Gen, gen)
	}
	tx := begin(t, db2, txn.ReadCommitted)
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(1)}); !ok {
		t.Fatal("data lost to a half-finished checkpoint")
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)

	// A real checkpoint now must supersede the orphan files cleanly.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db2)
}

// TestCheckpointPreservesGhosts: ghosts present at checkpoint time survive
// the snapshot round trip (they are physical entries).
func TestCheckpointPreservesGhosts(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	// Empty the group: the view row becomes a ghost (no cleaner running).
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	vtree := db.tree(mustView(t, db, "branch_totals").ID)
	if vtree.GhostCount() != 1 {
		t.Fatalf("ghosts before checkpoint = %d", vtree.GhostCount())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash(true)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	vtree2 := db2.tree(mustView(t, db2, "branch_totals").ID)
	if vtree2.GhostCount() != 1 {
		t.Fatalf("ghosts after recovery = %d", vtree2.GhostCount())
	}
	// The recovered ghost is still resurrectable.
	insertAccounts(t, db2, acctRow(2, 7, 55))
	tx = begin(t, db2, txn.ReadCommitted)
	res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(7)})
	if err != nil || !ok || res[1].AsInt() != 55 {
		t.Fatalf("resurrected group = %v %v %v", res, ok, err)
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)
	// And still erasable.
	tx = begin(t, db2, txn.ReadCommitted)
	tx.Delete("accounts", record.Row{record.Int(2)})
	mustCommit(t, tx)
	if n := db2.CleanGhosts(); n != 1 {
		t.Fatalf("CleanGhosts = %d", n)
	}
}
