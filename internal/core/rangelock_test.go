package core

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/txn"
)

// scanRange runs a range scan and returns the ids seen.
func scanRange(t *testing.T, tx *Tx, lo, hi int64) []int64 {
	t.Helper()
	var loRow, hiRow record.Row
	if lo >= 0 {
		loRow = record.Row{record.Int(lo)}
	}
	if hi >= 0 {
		hiRow = record.Row{record.Int(hi)}
	}
	var got []int64
	if err := tx.ScanTable("accounts", loRow, hiRow, func(r record.Row) bool {
		got = append(got, r[0].AsInt())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// tryInsert attempts an insert in its own transaction and reports whether it
// finished within the timeout.
func tryInsert(db *DB, row record.Row, timeout time.Duration) (finished bool, err error) {
	done := make(chan error, 1)
	go func() {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			done <- err
			return
		}
		if err := tx.Insert("accounts", row); err != nil {
			tx.Rollback()
			done <- err
			return
		}
		done <- tx.Commit()
	}()
	select {
	case err := <-done:
		return true, err
	case <-time.After(timeout):
		return false, nil
	}
}

func TestSerializableBlocksPhantomInGap(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(20, 1, 1), acctRow(30, 1, 1))

	reader := begin(t, db, txn.Serializable)
	got := scanRange(t, reader, 10, 31) // covers all three rows + gaps
	if len(got) != 3 {
		t.Fatalf("scan = %v", got)
	}
	// An insert into the middle gap (15) must block: its next-key lock
	// targets id=20, which the scan holds in S.
	finished, _ := tryInsert(db, acctRow(15, 1, 1), 80*time.Millisecond)
	if finished {
		t.Fatal("phantom insert into scanned gap did not block")
	}
	// An insert into the tail gap (25) must also block (successor id=30).
	finished, _ = tryInsert(db, acctRow(25, 1, 1), 80*time.Millisecond)
	if finished {
		t.Fatal("phantom insert into tail gap did not block")
	}
	mustCommit(t, reader)
	// The blocked inserts complete once the reader is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tx := begin(t, db, txn.ReadCommitted)
		n := 0
		tx.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true })
		mustCommit(t, tx)
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocked inserts never completed (%d rows)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	db.waitQuiesced()
	checkConsistent(t, db)
}

func TestSerializableEndAnchorBlocksInsertBeyondLastRow(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1))

	reader := begin(t, db, txn.Serializable)
	// Unbounded scan: the end anchor is the tree's infinity resource.
	got := scanRange(t, reader, -1, -1)
	if len(got) != 1 {
		t.Fatalf("scan = %v", got)
	}
	finished, _ := tryInsert(db, acctRow(99, 1, 1), 80*time.Millisecond)
	if finished {
		t.Fatal("insert past the last row did not block on the infinity anchor")
	}
	mustCommit(t, reader)
	db.waitQuiesced()
}

func TestSerializableDoesNotBlockOutsideRange(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(20, 1, 1), acctRow(30, 1, 1))

	reader := begin(t, db, txn.Serializable)
	got := scanRange(t, reader, 10, 20) // locks row 10 and anchor 20
	if len(got) != 1 {
		t.Fatalf("scan = %v", got)
	}
	// Inserting beyond the anchor (id 25, successor 30) is unrelated to the
	// scanned range and must not block.
	finished, err := tryInsert(db, acctRow(25, 1, 1), 2*time.Second)
	if !finished || err != nil {
		t.Fatalf("unrelated insert blocked: finished=%v err=%v", finished, err)
	}
	mustCommit(t, reader)
	checkConsistent(t, db)
}

func TestRepeatableReadAllowsPhantoms(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(30, 1, 1))

	reader := begin(t, db, txn.RepeatableRead)
	got := scanRange(t, reader, -1, -1)
	if len(got) != 2 {
		t.Fatalf("scan = %v", got)
	}
	// RR holds row locks but not gap locks: the phantom insert succeeds.
	finished, err := tryInsert(db, acctRow(20, 1, 1), 2*time.Second)
	if !finished || err != nil {
		t.Fatalf("RR blocked a phantom: finished=%v err=%v", finished, err)
	}
	// The new row is a phantom on rescan (allowed at RR)...
	got = scanRange(t, reader, -1, -1)
	if len(got) != 3 {
		t.Fatalf("rescan = %v", got)
	}
	// ...but the rows already read must not have changed (no test of value
	// change here: row-lock behavior is covered by
	// TestRepeatableReadHoldsRowLocks).
	mustCommit(t, reader)
	checkConsistent(t, db)
}

func TestInsertSplitGapKeepsRangeCoverage(t *testing.T) {
	// A serializable scan covers (10, 30] via the gap resource of key 30.
	// When the SAME transaction then inserts 20, the gap splits: gap(30) now
	// covers only (20, 30], and without a held lock on the new key's own gap
	// — (10, 20] — a concurrent insert of 15 would probe gap(20), find no
	// holder, and land inside the scanned range (a phantom).
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(30, 1, 1))

	reader := begin(t, db, txn.Serializable)
	got := scanRange(t, reader, 10, 31)
	if len(got) != 2 {
		t.Fatalf("scan = %v", got)
	}
	// The reader splits its own scanned gap.
	if err := reader.Insert("accounts", acctRow(20, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// The lower half of the split gap must stay covered.
	finished, _ := tryInsert(db, acctRow(15, 1, 1), 80*time.Millisecond)
	if finished {
		t.Fatal("phantom insert into split gap (10,20] did not block")
	}
	// The upper half is still covered by gap(30).
	finished, _ = tryInsert(db, acctRow(25, 1, 1), 80*time.Millisecond)
	if finished {
		t.Fatal("phantom insert into split gap (20,30] did not block")
	}
	// The reader's own rescan stays stable: its insert plus the two originals.
	got = scanRange(t, reader, 10, 31)
	if len(got) != 3 {
		t.Fatalf("rescan = %v", got)
	}
	mustCommit(t, reader)
	deadline := time.Now().Add(5 * time.Second)
	for {
		tx := begin(t, db, txn.ReadCommitted)
		n := 0
		tx.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true })
		mustCommit(t, tx)
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocked inserts never completed (%d rows)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	db.waitQuiesced()
	checkConsistent(t, db)
}

func TestMomentaryReadKeepsHeldRangeLock(t *testing.T) {
	// A serializable scan's end anchor (the first key at/after hi) is covered
	// only by its *gap* resource — the anchor row itself carries no S lock, so
	// HeldMode on the key resource reports ModeNone. A momentary read of that
	// key inside the same transaction must NOT release the S lock it takes:
	// at serializable the row was read, so it has to stay stable to commit.
	// The old release condition (held == ModeNone alone) dropped it.
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(30, 1, 1))

	reader := begin(t, db, txn.Serializable)
	got := scanRange(t, reader, 10, 20) // returns row 10; anchor gap is key 30's
	if len(got) != 1 {
		t.Fatalf("scan = %v", got)
	}
	key30 := record.EncodeKey(record.Row{record.Int(30)})
	tbl, err := db.Catalog().Table("accounts")
	if err != nil {
		t.Fatal(err)
	}
	res := lock.KeyResource(tbl.ID, key30)
	if held := db.lm.HeldMode(reader.t.ID, res); held != lock.ModeNone {
		t.Fatalf("anchor row lock before momentary read = %v, want none", held)
	}
	// A momentary read path touches the anchor row inside the serializable
	// transaction.
	if err := db.momentaryS(reader.t, tbl.ID, key30); err != nil {
		t.Fatal(err)
	}
	if held := db.lm.HeldMode(reader.t.ID, res); held != lock.ModeS {
		t.Fatalf("anchor row lock after momentary read = %v, want S (released?)", held)
	}
	// Functional consequence: a concurrent delete of the read row must block.
	done := make(chan error, 1)
	go func() {
		w, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			done <- err
			return
		}
		if err := w.Delete("accounts", record.Row{record.Int(30)}); err != nil {
			w.Rollback()
			done <- err
			return
		}
		done <- w.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("delete of momentarily-read row did not block: %v", err)
	case <-time.After(80 * time.Millisecond):
	}
	mustCommit(t, reader)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	db.waitQuiesced()
	checkConsistent(t, db)
}

func TestInstantInsertLockReleases(t *testing.T) {
	// The next-key insert lock is instant-duration: after an insert commits
	// no residual lock blocks a serializable scan of the region.
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(10, 1, 1), acctRow(20, 1, 1))

	// Writer inserts 15 but has NOT committed: its own X(15) persists, but
	// the instant lock on 20 must already be gone.
	writer := begin(t, db, txn.ReadCommitted)
	if err := writer.Insert("accounts", acctRow(15, 1, 1)); err != nil {
		t.Fatal(err)
	}
	other := begin(t, db, txn.ReadCommitted)
	row, ok, err := other.Get("accounts", record.Row{record.Int(20)})
	if err != nil || !ok || row[0].AsInt() != 20 {
		t.Fatalf("row 20 blocked by residual insert lock: %v %v %v", row, ok, err)
	}
	mustCommit(t, other)
	mustCommit(t, writer)
	checkConsistent(t, db)
}
