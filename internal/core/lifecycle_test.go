package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

func TestDescribeView(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	info, err := db.DescribeView("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Escrow {
		t.Fatal("escrow view not reported as escrow-maintained")
	}
	if info.Cells != 4 { // hidden count + COUNT(*) + SUM pair
		t.Fatalf("cells = %d", info.Cells)
	}
	if info.Rows != 1 || info.Ghosts != 0 {
		t.Fatalf("contents = %d/%d", info.Rows, info.Ghosts)
	}
	out := info.String()
	for _, want := range []string{"escrow maintenance", "SUM", "hidden COUNT(*)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// A MIN/MAX view reports the fallback.
	if err := db.CreateIndexedView(catalog.View{
		Name: "extremes", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs:        []expr.AggSpec{{Func: expr.AggMax, Arg: expr.Col(2)}},
		Strategy:    catalog.StrategyEscrow,
	}); err != nil {
		t.Fatal(err)
	}
	info, err = db.DescribeView("extremes")
	if err != nil {
		t.Fatal(err)
	}
	if info.Escrow {
		t.Fatal("MAX view reported as escrow-maintained")
	}
	if !strings.Contains(info.String(), "X-lock") {
		t.Fatalf("fallback not described:\n%s", info)
	}
	if _, err := db.DescribeView("nope"); err == nil {
		t.Fatal("missing view described")
	}
}

// TestCheckpointUnderLoad runs checkpoints while writers churn: the quiesce
// gate must drain cleanly and post-checkpoint recovery must be consistent.
func TestCheckpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{GhostCleanInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := int64(0)
			for !stop.Load() {
				i++
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return // closed
				}
				id := int64(w)*1_000_000 + i
				if err := tx.Insert("accounts", acctRow(id, id%3, 5)); err != nil {
					tx.Rollback()
					continue
				}
				if tx.Commit() == nil {
					committed.Add(1)
				}
			}
		}(w)
	}
	for c := 0; c < 5; c++ {
		for start := committed.Load(); committed.Load() < start+40; {
			time.Sleep(time.Millisecond)
		}
		if err := db.Checkpoint(); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	checkConsistent(t, db)

	// Crash and recover from the last checkpoint + tail log.
	want := committed.Load()
	db.Crash(true)
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkConsistent(t, db2)
	tx := begin(t, db2, txn.ReadCommitted)
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += r.Result[0].AsInt()
	}
	mustCommit(t, tx)
	if total != want {
		t.Fatalf("recovered %d rows, committed %d", total, want)
	}
}

// TestRefreshViewUnderLoad refreshes a deferred view while writers churn:
// the refresh sees a consistent snapshot (its base S lock quiesces writers
// briefly) and never errors.
func TestRefreshViewUnderLoad(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyDeferred)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := int64(0)
			for !stop.Load() {
				i++
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if err := tx.Insert("accounts", acctRow(int64(w)*1_000_000+i, i%3, 5)); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	for r := 0; r < 10; r++ {
		if _, err := db.RefreshView("branch_totals"); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	// One final refresh at quiescence must equalize the view exactly.
	db.waitQuiesced()
	if _, err := db.RefreshView("branch_totals"); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db, txn.ReadCommitted)
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	var fromView int64
	for _, r := range rows {
		fromView += r.Result[0].AsInt()
	}
	n := 0
	tx.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true })
	mustCommit(t, tx)
	if fromView != int64(n) {
		t.Fatalf("refreshed view counts %d, table has %d", fromView, n)
	}
}

// TestGhostCleanerRacesWriters hammers group churn with an aggressive
// cleaner; the view must stay exact throughout.
func TestGhostCleanerRacesWriters(t *testing.T) {
	db := openTestDB(t, Options{GhostCleanInterval: time.Millisecond})
	setupBanking(t, db, catalog.StrategyEscrow)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				id := int64(w*10_000 + i)
				branch := int64(i % 2) // two groups, constantly emptied
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if err := tx.Insert("accounts", acctRow(id, branch, 1)); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				tx, err = db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if err := tx.Delete("accounts", record.Row{record.Int(id)}); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	checkConsistent(t, db)
	if db.Stats().GhostsErased == 0 {
		t.Fatal("cleaner never erased a ghost under churn")
	}
}
