package core

import (
	"errors"
	"fmt"

	"repro/internal/apply"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/view"
	"repro/internal/wal"
)

// ddl runs mutate against a clone of the current catalog, logs the change as
// a TDDL record inside a system transaction (which installs the new catalog
// via the apply layer), and then runs backfill (still inside the same system
// transaction) to populate any new tree. preFinish, when non-nil, runs after
// the system transaction's versions are stamped but before its timestamp
// publishes — where deferred-view barriers must be emitted (db.runSysTxnHook).
func (db *DB) ddl(mutate func(c *catalog.Catalog) error, backfill func(st *txn.Txn) error, preFinish func(ts uint64)) error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()

	oldBlob := db.Catalog().Encode()
	clone, err := catalog.Decode(oldBlob)
	if err != nil {
		return fmt.Errorf("core: catalog clone: %w", err)
	}
	if err := mutate(clone); err != nil {
		return err
	}
	newBlob := clone.Encode()
	// Dry-run the maintainer compilation before anything reaches the log: a
	// definition the registry cannot compile (e.g. a type-broken view) must
	// fail here, never as an unreplayable DDL record.
	if _, err := apply.NewRegistry(clone); err != nil {
		return err
	}
	return db.runSysTxnHook(func(st *txn.Txn) error {
		rec := &wal.Record{Type: wal.TDDL, OldVal: oldBlob, NewVal: newBlob}
		if err := db.logOp(st, rec); err != nil {
			return err
		}
		if backfill != nil {
			return backfill(st)
		}
		return nil
	}, preFinish)
}

// CreateTable registers a new base table.
func (db *DB) CreateTable(name string, cols []catalog.Column, pk []int) error {
	return db.ddl(func(c *catalog.Catalog) error {
		_, err := c.AddTable(name, cols, pk)
		return err
	}, nil, nil)
}

// CreateIndex registers a secondary index and backfills it from the table.
func (db *DB) CreateIndex(name, table string, cols []int, unique bool) error {
	return db.ddl(func(c *catalog.Catalog) error {
		_, err := c.AddIndex(name, table, cols, unique)
		return err
	}, func(st *txn.Txn) error {
		cat := db.Catalog() // post-DDL catalog
		ix, err := cat.Index(name)
		if err != nil {
			return err
		}
		tbl, err := cat.Table(table)
		if err != nil {
			return err
		}
		// Block writers of the base table while backfilling.
		if err := db.lockTree(st, tbl.ID, lock.ModeS); err != nil {
			return err
		}
		seen := map[string]bool{}
		var rows []record.Row
		var decodeErr error
		db.tree(tbl.ID).Scan(nil, nil, false, func(it btree.Item) bool {
			row, err := record.DecodeRow(it.Val)
			if err != nil {
				decodeErr = err
				return false
			}
			rows = append(rows, row)
			return true
		})
		if decodeErr != nil {
			return decodeErr
		}
		for _, row := range rows {
			ixKey := indexKey(ix, tbl, row)
			if ix.Unique {
				prefix := indexPrefix(ix, row)
				if seen[string(prefix)] {
					return fmt.Errorf("%w: unique index %q over duplicate values", ErrDuplicateKey, name)
				}
				seen[string(prefix)] = true
			}
			rec := &wal.Record{Type: wal.TInsert, Tree: ix.ID, Key: ixKey}
			if err := db.logOp(st, rec); err != nil {
				return err
			}
		}
		return nil
	}, nil)
}

// CreateIndexedView registers an indexed view and backfills it from its base
// tables. The def's ID and Name validation happen in the catalog. A deferred
// view's backfill also publishes a create barrier so the applier initializes
// its watermark at the backfill's commit timestamp (the base-table S locks
// held through commit order the barrier before any later commit's batch).
func (db *DB) CreateIndexedView(def catalog.View) error {
	var deferredTree id.Tree
	var isDeferred bool
	return db.ddl(func(c *catalog.Catalog) error {
		v, err := c.AddView(def)
		if err != nil {
			return wrapViewErr("create view", def.Name, err)
		}
		if v.Strategy == catalog.StrategyDeferred {
			deferredTree = v.ID
			isDeferred = true
		}
		return nil
	}, func(st *txn.Txn) error {
		cat := db.Catalog()
		v, err := cat.View(def.Name)
		if err != nil {
			return err
		}
		m := db.reg.Maintainer(v.ID)
		if m == nil {
			return fmt.Errorf("core: view %q has no compiled maintainer", def.Name)
		}
		// Block writers of the source relation during the backfill scan. For a
		// view-over-view the pseudo-table's ID is the parent view's tree, so
		// the S lock serializes against in-flight escrow writers' IX locks:
		// their commit-time cascade folds land either wholly before the scan
		// (the recompute sees them) or wholly after (the cascade, which sees
		// this view in the catalog by then, maintains it incrementally).
		left, err := cat.SourceTable(v.Left)
		if err != nil {
			return err
		}
		if err := db.lockTree(st, left.ID, lock.ModeS); err != nil {
			return err
		}
		leftRows, err := db.relationRows(cat, v.Left)
		if err != nil {
			return err
		}
		var rightRows []record.Row
		if v.Join() {
			right, err := cat.Table(v.Right)
			if err != nil {
				return err
			}
			if err := db.lockTree(st, right.ID, lock.ModeS); err != nil {
				return err
			}
			if rightRows, err = db.tableRows(right); err != nil {
				return err
			}
		}
		entries, err := m.Recompute(leftRows, rightRows)
		if err != nil {
			return err
		}
		for _, e := range entries {
			rec := &wal.Record{Type: wal.TInsert, Tree: v.ID, Key: e.Key, NewVal: record.EncodeRow(e.Val)}
			if err := db.logOp(st, rec); err != nil {
				return err
			}
		}
		return nil
	}, func(ts uint64) {
		// mutate sets isDeferred before this hook can run, so reading it here
		// (rather than deciding at the ddl call) is what makes this correct.
		if isDeferred {
			db.publishDeferredBarrier(deferredTree, ts, false)
		}
	})
}

// DropView removes an indexed view and its tree contents. Dropping a deferred
// view publishes a drop barrier so the applier discards its pending deltas
// and retires its watermark.
func (db *DB) DropView(name string) error {
	var viewTree id.Tree
	var wasDeferred bool
	return db.ddl(func(c *catalog.Catalog) error {
		v, err := c.View(name)
		if err != nil {
			return wrapViewErr("drop view", name, err)
		}
		viewTree = v.ID
		wasDeferred = v.Strategy == catalog.StrategyDeferred
		return wrapViewErr("drop view", name, c.DropView(name))
	}, func(st *txn.Txn) error {
		// Physically clear the view's tree (logged so recovery agrees).
		items := db.tree(viewTree).Items(nil, nil, true)
		for _, it := range items {
			rec := &wal.Record{Type: wal.TDelete, Tree: viewTree, Key: it.Key, OldVal: it.Val, OldGhost: it.Ghost}
			if err := db.logOp(st, rec); err != nil {
				return err
			}
		}
		return nil
	}, func(ts uint64) {
		if wasDeferred {
			db.publishDeferredBarrier(viewTree, ts, true)
		}
		// Stop exporting the dropped view's freshness and scrub series rather
		// than freezing them at their last values.
		db.met.Freshness.Drop(viewTree)
		db.met.Scrub.Views.Drop(viewTree)
	})
}

// wrapViewErr ties a view DDL/refresh failure to its public root sentinel:
// every failure matches ErrInvalidView, and dependent-view conflicts
// additionally match ErrViewInUse. The underlying catalog error (which names
// the offending view or column) stays in the chain.
func wrapViewErr(op, name string, err error) error {
	if err == nil || errors.Is(err, ErrInvalidView) {
		return err
	}
	root := error(ErrInvalidView)
	if errors.Is(err, catalog.ErrInUse) {
		root = fmt.Errorf("%w: %w", ErrInvalidView, ErrViewInUse)
	}
	return fmt.Errorf("%w: %s %q: %w", root, op, name, err)
}

// relationRows snapshots every live row of a view's source relation in the form
// maintenance sees it: stored rows for a base table, output rows (group-by
// columns followed by aggregate results) for a source view. Callers must hold
// a lock on the source tree; for a view source that tree is the view's own
// (catalog.SourceTable reports it as the pseudo-table's ID).
func (db *DB) relationRows(cat *catalog.Catalog, name string) ([]record.Row, error) {
	v, err := cat.View(name)
	if err != nil {
		tbl, terr := cat.Table(name)
		if terr != nil {
			return nil, terr
		}
		return db.tableRows(tbl)
	}
	m := db.reg.Maintainer(v.ID)
	if m == nil {
		return nil, fmt.Errorf("core: view %q has no compiled maintainer", name)
	}
	var rows []record.Row
	var scanErr error
	db.tree(v.ID).Scan(nil, nil, false, func(it btree.Item) bool {
		stored, err := record.DecodeRow(it.Val)
		if err != nil {
			scanErr = err
			return false
		}
		out, err := m.OutputRow(it.Key, stored)
		if err != nil {
			scanErr = err
			return false
		}
		rows = append(rows, out)
		return true
	})
	return rows, scanErr
}

// tableRows snapshots every live row of a table.
func (db *DB) tableRows(tbl *catalog.Table) ([]record.Row, error) {
	var rows []record.Row
	var decodeErr error
	db.tree(tbl.ID).Scan(nil, nil, false, func(it btree.Item) bool {
		row, err := record.DecodeRow(it.Val)
		if err != nil {
			decodeErr = err
			return false
		}
		rows = append(rows, row)
		return true
	})
	return rows, decodeErr
}

// indexKey builds a secondary index entry key: indexed columns then the
// primary key (so non-unique indexes stay unique per row).
func indexKey(ix *catalog.Index, tbl *catalog.Table, row record.Row) []byte {
	var key []byte
	for _, c := range ix.Cols {
		key = record.AppendKey(key, row[c])
	}
	for _, c := range tbl.PK {
		key = record.AppendKey(key, row[c])
	}
	return key
}

// indexPrefix builds just the indexed-columns part of an index key, for
// uniqueness checks and lookups.
func indexPrefix(ix *catalog.Index, row record.Row) []byte {
	var key []byte
	for _, c := range ix.Cols {
		key = record.AppendKey(key, row[c])
	}
	return key
}

// viewSide resolves which side of a view a table is.
func viewSide(v *catalog.View, table string) view.JoinSide {
	if v.Left == table {
		return view.SideLeft
	}
	return view.SideRight
}
