package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/txn"
)

// LookupByIndex returns the live rows whose indexed columns equal vals,
// found through the named secondary index (an index-prefix lookup: vals may
// cover a prefix of the index's columns). Rows are read under the
// transaction's isolation rules: momentary S at ReadCommitted, held S at
// RepeatableRead and Serializable (index-gap phantom protection is not
// implemented for secondary indexes; serializable callers who need it scan
// the base table instead).
func (tx *Tx) LookupByIndex(indexName string, vals record.Row) ([]record.Row, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	db := tx.db
	ix, err := db.Catalog().Index(indexName)
	if err != nil {
		return nil, err
	}
	tbl, err := db.Catalog().Table(ix.Table)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 || len(vals) > len(ix.Cols) {
		return nil, fmt.Errorf("%w: index %q takes up to %d values, got %d",
			ErrSchema, indexName, len(ix.Cols), len(vals))
	}
	for i, v := range vals {
		want := tbl.Cols[ix.Cols[i]].Kind
		if !v.IsNull() && v.Kind() != want {
			return nil, fmt.Errorf("%w: index column %d is %s, got %s",
				ErrSchema, i, want, v.Kind())
		}
	}
	prefix := record.EncodeKey(vals)
	if tx.t.Isolation == txn.Snapshot {
		return tx.snapshotLookupByIndex(ix, tbl, vals, prefix)
	}
	if err := db.lockTree(tx.t, ix.ID, lock.ModeIS); err != nil {
		return nil, err
	}
	if err := db.lockTree(tx.t, tbl.ID, lock.ModeIS); err != nil {
		return nil, err
	}
	// Collect the primary keys from the index entries (key = indexed
	// columns then PK), latch-only, then lock and re-read each base row.
	var pks [][]byte
	db.tree(ix.ID).Scan(prefix, record.KeySuccessor(prefix), false, func(it btree.Item) bool {
		rest := it.Key[len(prefix):]
		// Skip over any remaining indexed columns to reach the PK suffix.
		for skip := len(ix.Cols) - len(vals); skip > 0; skip-- {
			_, r, err := record.DecodeKeyValue(rest)
			if err != nil {
				return true
			}
			rest = r
		}
		pks = append(pks, append([]byte(nil), rest...))
		return true
	})
	var out []record.Row
	for _, pk := range pks {
		switch tx.t.Isolation {
		case txn.ReadCommitted:
			if err := db.momentaryS(tx.t, tbl.ID, pk); err != nil {
				return nil, err
			}
		default:
			if err := db.lockKey(tx.t, tbl.ID, pk, lock.ModeS); err != nil {
				return nil, err
			}
		}
		val, ghost, ok := db.tree(tbl.ID).Get(pk)
		if !ok || ghost {
			continue // row vanished between the index read and the lock
		}
		row, err := record.DecodeRow(val)
		if err != nil {
			return nil, err
		}
		// Re-validate: the row's indexed columns may have changed between
		// the (latch-only) index read and the row lock.
		match := true
		for i, v := range vals {
			if record.Compare(row[ix.Cols[i]], v) != 0 {
				match = false
				break
			}
		}
		if match {
			out = append(out, row)
		}
	}
	return out, nil
}

// snapshotLookupByIndex resolves an index lookup at the transaction's read
// timestamp: index entries and base rows both come from the version-chain
// resolution, so the two are mutually consistent (a transaction's index and
// row changes stamp with one commit timestamp) and no locks are taken.
func (tx *Tx) snapshotLookupByIndex(ix *catalog.Index, tbl *catalog.Table, vals record.Row, prefix []byte) ([]record.Row, error) {
	db := tx.db
	var pks [][]byte
	err := db.snapshotScan(tx, ix.ID, prefix, record.KeySuccessor(prefix), func(key, _ []byte) (bool, error) {
		rest := key[len(prefix):]
		for skip := len(ix.Cols) - len(vals); skip > 0; skip-- {
			_, r, err := record.DecodeKeyValue(rest)
			if err != nil {
				return true, nil
			}
			rest = r
		}
		pks = append(pks, append([]byte(nil), rest...))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	var out []record.Row
	for _, pk := range pks {
		val, ghost, ok, err := db.snapshotRow(tbl.ID, pk, tx.readTS, tx.t.ID)
		if err != nil {
			return nil, err
		}
		if !ok || ghost {
			continue
		}
		row, err := record.DecodeRow(val)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
