package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/scrub"
	"repro/internal/verify"
)

// This file adapts the kernel to the online consistency scrubber
// (internal/scrub, DESIGN.md §7.4). Every read the scrubber makes goes
// through the MVCC snapshot paths — zero lock-manager traffic, so it never
// blocks or is blocked by writers. Each adapter call is gate-admitted like
// any other reader; the scrubber goroutine stops before Close takes the gate
// exclusively.

// defaultScrubInterval is the background scrubber's tick: one (view,
// group-range) slice per tick.
const defaultScrubInterval = defaultMVCCPruneInterval

// defaultScrubRowBudget is the default verification pace in rows per second
// — low enough to stay in the noise of a saturated engine (tens of
// microseconds of snapshot reads per tick), high enough to cycle small
// catalogs every few seconds.
const defaultScrubRowBudget = 200_000

// scrubEngine is the kernel's scrub.Engine.
type scrubEngine struct{ db *DB }

// Plan implements scrub.Engine: catalog views in tree-ID order (topological
// for stacked DAGs). A deferred view whose source is not itself deferred is
// a component root and verifies through the (applyTS, watermark) pair; a
// deferred view over a deferred parent folds co-atomically with it, so a
// single snapshot timestamp serves both sides.
func (e scrubEngine) Plan() []scrub.View {
	db := e.db
	if db.closed.Load() {
		return nil
	}
	cat := db.Catalog()
	views := cat.Views()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	out := make([]scrub.View, 0, len(views))
	for _, v := range views {
		pair := false
		if v.Strategy == catalog.StrategyDeferred {
			p, err := cat.View(v.Left)
			pair = err != nil || p.Strategy != catalog.StrategyDeferred
		}
		out = append(out, scrub.View{Tree: v.ID, Name: v.Name, Pair: pair})
	}
	return out
}

// Pin implements scrub.Engine: pin the current read timestamp.
func (e scrubEngine) Pin() (uint64, func()) {
	ts, h := e.db.oracle.BeginSnapshot()
	return ts, func() { e.db.oracle.EndSnapshot(h) }
}

// PinAt implements scrub.Engine: pin a past timestamp, refused when the
// prune horizon has passed it.
func (e scrubEngine) PinAt(ts uint64) (func(), bool) {
	h, ok := e.db.oracle.BeginSnapshotAt(ts)
	if !ok {
		return nil, false
	}
	return func() { e.db.oracle.EndSnapshot(h) }, true
}

// Applied implements scrub.Engine: the deferred view's fold pair.
func (e scrubEngine) Applied(tree id.Tree) (uint64, uint64) {
	return e.db.oracle.ViewApplied(tree)
}

// Have implements scrub.Engine: scan the view's stored rows from lo at ts
// via the snapshot merge (ghosts skipped, exactly like the recompute omits
// empty groups), returning at most max entries and the resume key.
func (e scrubEngine) Have(tree id.Tree, lo []byte, ts uint64, max int) ([]verify.Entry, []byte, error) {
	db := e.db
	if db.closed.Load() {
		return nil, nil, ErrClosed
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	var entries []verify.Entry
	var next []byte
	err := db.snapshotScanAt(tree, lo, nil, ts, id.Txn(0), func(key, val []byte) (bool, error) {
		if max > 0 && len(entries) == max {
			next = append([]byte(nil), key...)
			return false, nil
		}
		row, err := record.DecodeRow(val)
		if err != nil {
			return false, err
		}
		entries = append(entries, verify.Entry{Key: append([]byte(nil), key...), Val: row})
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return entries, next, nil
}

// Want implements scrub.Engine: recompute the view's full expected contents
// from its source relation as of ts.
func (e scrubEngine) Want(tree id.Tree, ts uint64) ([]verify.Entry, int, error) {
	db := e.db
	if db.closed.Load() {
		return nil, 0, ErrClosed
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	cat := db.Catalog()
	v := viewByTree(cat, tree)
	m := db.reg.Maintainer(tree)
	if v == nil || m == nil {
		return nil, 0, fmt.Errorf("core: scrub of unknown view %s", tree)
	}
	leftRows, err := db.relationRowsAt(cat, v.Left, ts)
	if err != nil {
		return nil, 0, err
	}
	var rightRows []record.Row
	if v.Join() {
		right, err := cat.Table(v.Right)
		if err != nil {
			return nil, 0, err
		}
		if rightRows, err = db.tableRowsAt(right, ts); err != nil {
			return nil, 0, err
		}
	}
	want, err := m.Recompute(leftRows, rightRows)
	if err != nil {
		return nil, 0, err
	}
	return want, len(leftRows) + len(rightRows), nil
}

// Report implements scrub.Engine: a confirmed divergence becomes
// EventScrubDivergence trace events naming (view, group, expected, actual)
// and an immediate flight-record dump. The watchdog's scrub-divergence
// signature fires off the counter delta on its next poll.
func (e scrubEngine) Report(d scrub.Divergence) {
	db := e.db
	for i, diff := range d.Diffs {
		if i == 8 {
			break // a wholly corrupt view logs a bounded sample
		}
		if db.tracer != nil {
			db.tracer.TraceEvent(metrics.Event{
				Type:     metrics.EventScrubDivergence,
				Resource: d.View.Name,
				Phase:    decodeHotKey(string(diff.Key)),
				Outcome:  diff.Detail(),
				Rows:     len(d.Diffs),
			})
		}
	}
	if db.flight != nil && len(d.Diffs) > 0 {
		first := d.Diffs[0]
		db.flight.Trigger(fmt.Sprintf("scrub divergence: view %q group %s: %s (view@%d vs source@%d)",
			d.View.Name, decodeHotKey(string(first.Key)), first.Detail(), d.ViewTS, d.SourceTS))
	}
}

// viewByTree finds a catalog view by its tree ID.
func viewByTree(cat *catalog.Catalog, tree id.Tree) *catalog.View {
	for _, v := range cat.Views() {
		if v.ID == tree {
			return v
		}
	}
	return nil
}

// relationRowsAt is relationRows at a snapshot timestamp: every row of a
// view's source relation as of ts, in the form maintenance sees it (stored
// rows for a base table, output rows for a source view), read lock-free
// through the version store.
func (db *DB) relationRowsAt(cat *catalog.Catalog, name string, ts uint64) ([]record.Row, error) {
	if v, err := cat.View(name); err == nil {
		m := db.reg.Maintainer(v.ID)
		if m == nil {
			return nil, fmt.Errorf("core: view %q has no compiled maintainer", name)
		}
		var rows []record.Row
		err := db.snapshotScanAt(v.ID, nil, nil, ts, id.Txn(0), func(key, val []byte) (bool, error) {
			stored, err := record.DecodeRow(val)
			if err != nil {
				return false, err
			}
			out, err := m.OutputRow(key, stored)
			if err != nil {
				return false, err
			}
			rows = append(rows, out)
			return true, nil
		})
		return rows, err
	}
	tbl, err := cat.Table(name)
	if err != nil {
		return nil, err
	}
	return db.tableRowsAt(tbl, ts)
}

// tableRowsAt snapshots every live row of a table as of ts.
func (db *DB) tableRowsAt(tbl *catalog.Table, ts uint64) ([]record.Row, error) {
	var rows []record.Row
	err := db.snapshotScanAt(tbl.ID, nil, nil, ts, id.Txn(0), func(_, val []byte) (bool, error) {
		row, err := record.DecodeRow(val)
		if err != nil {
			return false, err
		}
		rows = append(rows, row)
		return true, nil
	})
	return rows, err
}

// ScrubNow runs one full verification pass over every view on the caller's
// goroutine, unpaced: the on-demand sweep behind vtxnshell scrub full and
// the smoke harnesses. It works whether or not the background scrubber is
// enabled, and concurrently with it. Returns the number of divergences
// found (each already traced, counted, and flight-dumped).
func (db *DB) ScrubNow(ctx context.Context) (int64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	return db.scrub.FullPass(ctx)
}

// CorruptViewRow deliberately perturbs one stored view row in place,
// bypassing the WAL, locks, and version store — the fault-injection hook
// behind cmd/scrubsmoke's detection direction and nothing else. keyRow is the
// group key (projection views: the source PK columns), exactly as
// Tx.GetViewRow takes it. The write is invisible to recovery (it is exactly
// the silent corruption the scrubber exists to catch). The row's version
// chain, if any, is evicted alongside — snapshot readers resolve tracked
// rows through the version store, and a retained clean copy there would mask
// the damaged stored bytes until the chain pruned (which a deferred view's
// just-folded group never does while quiescent: the prune horizon waits on
// the view watermarks trailing the fold). Callers should quiesce writers
// first; with a write in flight on the row the eviction is refused and the
// call errors. Testing only.
func (db *DB) CorruptViewRow(viewName string, keyRow record.Row) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.hit(fault.PointViewCorrupt); err != nil {
		return err
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return err
	}
	key := record.EncodeKey(keyRow)
	tree := db.tree(v.ID)
	val, ghost, ok := tree.Get(key)
	if !ok || ghost {
		return fmt.Errorf("%w: view %q key %x", ErrNotFound, viewName, key)
	}
	row, err := record.DecodeRow(val)
	if err != nil {
		return err
	}
	// Perturb the first aggregate cell when there is one (the hidden group
	// count lives before it), otherwise the row's last column.
	col := len(row) - 1
	if m := db.reg.Maintainer(v.ID); m != nil && m.Cells() > 0 {
		col = m.AggOffset(0)
	}
	row[col] = perturb(row[col])
	tree.Put(key, record.EncodeRow(row), false)
	if !db.mvcc.Evict(v.ID, key) {
		return fmt.Errorf("core: corrupt %q key %x: version chain has writes in flight", viewName, key)
	}
	return nil
}

// perturb returns a value guaranteed to differ from v.
func perturb(v record.Value) record.Value {
	switch v.Kind() {
	case record.KindInt64:
		return record.Int(v.AsInt() + 1)
	case record.KindFloat64:
		return record.Float(v.AsFloat() + 1)
	case record.KindString:
		return record.Str(v.AsString() + "?")
	case record.KindBool:
		return record.Bool(!v.AsBool())
	default:
		return record.Int(1)
	}
}
