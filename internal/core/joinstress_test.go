package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// setupJoinStress builds orders ⋈ products with an aggregate join view
// (SUM(qty) per product name) and a projection join view.
func setupJoinStress(t *testing.T, db *DB) {
	t.Helper()
	for _, ddl := range []func() error{
		func() error {
			return db.CreateTable("products", []catalog.Column{
				{Name: "id", Kind: record.KindInt64},
				{Name: "name", Kind: record.KindString},
			}, []int{0})
		},
		func() error {
			return db.CreateTable("orders", []catalog.Column{
				{Name: "id", Kind: record.KindInt64},
				{Name: "product", Kind: record.KindInt64},
				{Name: "qty", Kind: record.KindInt64},
			}, []int{0})
		},
		func() error { return db.CreateIndex("orders_product", "orders", []int{1}, false) },
		func() error {
			// Source row: [o.id, o.product, o.qty, p.id, p.name].
			return db.CreateIndexedView(catalog.View{
				Name: "qty_by_name", Kind: catalog.ViewAggregate,
				Left: "orders", Right: "products",
				JoinLeftCol: 1, JoinRightCol: 3,
				GroupByCols: []int{4},
				Aggs: []expr.AggSpec{
					{Func: expr.AggCountRows},
					{Func: expr.AggSum, Arg: expr.Col(2)},
				},
			})
		},
		func() error {
			return db.CreateIndexedView(catalog.View{
				Name: "details", Kind: catalog.ViewProjection,
				Left: "orders", Right: "products",
				JoinLeftCol: 1, JoinRightCol: 3,
				ProjectCols: []int{0, 4, 2},
			})
		},
	} {
		if err := ddl(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJoinViewBothSidesChurn stresses join-view maintenance with concurrent
// writers mutating BOTH sides: order churn (insert/delete) races product
// churn (insert/delete/rename). The inner-side S locks taken during
// maintenance must serialize the conflicting pairs; whatever interleavings
// commit, the views must equal recompute-from-base at quiescence.
func TestJoinViewBothSidesChurn(t *testing.T) {
	db := openTestDB(t, Options{LockTimeout: 10 * time.Second})
	setupJoinStress(t, db)

	const products = 6
	// Seed products.
	tx := begin(t, db, txn.ReadCommitted)
	for p := 0; p < products; p++ {
		if err := tx.Insert("products", record.Row{record.Int(int64(p)), record.Str(pname(p))}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	var wg sync.WaitGroup
	// Order writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []int64
			for i := 0; i < 120; i++ {
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if len(mine) > 0 && rng.Intn(3) == 0 {
					id := mine[rng.Intn(len(mine))]
					if err := tx.Delete("orders", record.Row{record.Int(id)}); err != nil {
						tx.Rollback()
						continue
					}
					if tx.Commit() == nil {
						for j, v := range mine {
							if v == id {
								mine = append(mine[:j], mine[j+1:]...)
								break
							}
						}
					}
					continue
				}
				id := int64(w)*1_000_000 + int64(i)
				row := record.Row{record.Int(id), record.Int(int64(rng.Intn(products))), record.Int(int64(rng.Intn(5) + 1))}
				if err := tx.Insert("orders", row); err != nil {
					tx.Rollback()
					continue
				}
				if tx.Commit() == nil {
					mine = append(mine, id)
				}
			}
		}(w)
	}
	// Product writers: rename products (join-key values stay; names — the
	// group-by column — change, moving whole groups).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 60; i++ {
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				p := int64(rng.Intn(products))
				newName := pname(rng.Intn(products * 2))
				if err := tx.Update("products", record.Row{record.Int(p)},
					map[int]record.Value{1: record.Str(newName)}); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	db.waitQuiesced()
	checkConsistent(t, db)

	// Cross-check the aggregate view against the projection view: total
	// quantities must agree.
	tx = begin(t, db, txn.ReadCommitted)
	agg, err := tx.ScanView("qty_by_name")
	if err != nil {
		t.Fatal(err)
	}
	var aggTotal int64
	for _, r := range agg {
		if !r.Result[1].IsNull() {
			aggTotal += r.Result[1].AsInt()
		}
	}
	det, err := tx.ScanView("details")
	if err != nil {
		t.Fatal(err)
	}
	var detTotal int64
	for _, r := range det {
		detTotal += r.Result[2].AsInt()
	}
	mustCommit(t, tx)
	if aggTotal != detTotal {
		t.Fatalf("aggregate view total %d != projection view total %d", aggTotal, detTotal)
	}
}

func pname(p int) string {
	names := []string{"ale", "bun", "cog", "dab", "elm", "fig", "gnu", "hay", "ivy", "jay", "kit", "log"}
	return names[p%len(names)]
}

// TestJoinViewProductDeleteRemovesContributions deletes an inner row while
// orders exist: the orders stop joining and their contributions vanish.
func TestJoinViewProductDeleteRemovesContributions(t *testing.T) {
	db := openTestDB(t, Options{})
	setupJoinStress(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	tx.Insert("products", record.Row{record.Int(1), record.Str("ale")})
	tx.Insert("orders", record.Row{record.Int(100), record.Int(1), record.Int(3)})
	tx.Insert("orders", record.Row{record.Int(101), record.Int(1), record.Int(4)})
	mustCommit(t, tx)

	tx = begin(t, db, txn.ReadCommitted)
	res, ok, err := tx.GetViewRow("qty_by_name", record.Row{record.Str("ale")})
	if err != nil || !ok || res[1].AsInt() != 7 {
		t.Fatalf("ale = %v %v %v", res, ok, err)
	}
	mustCommit(t, tx)

	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("products", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = begin(t, db, txn.ReadCommitted)
	if _, ok, _ := tx.GetViewRow("qty_by_name", record.Row{record.Str("ale")}); ok {
		t.Fatal("group survived inner-row delete")
	}
	rows, _ := tx.ScanView("details")
	if len(rows) != 0 {
		t.Fatalf("projection join rows survived: %v", rows)
	}
	mustCommit(t, tx)
	checkConsistent(t, db)
}
