package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

func TestTypeBrokenViewRejectedAtDDL(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.CreateTable("events", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "name", Kind: record.KindString},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	// SUM over a string column must fail at CREATE VIEW, not at first DML.
	err := db.CreateIndexedView(catalog.View{
		Name: "broken", Kind: catalog.ViewAggregate, Left: "events",
		Aggs: []expr.AggSpec{{Func: expr.AggSum, Arg: expr.Col(1)}},
	})
	if err == nil {
		t.Fatal("type-broken view accepted")
	}
	if _, catErr := db.Catalog().View("broken"); catErr == nil {
		t.Fatal("broken view leaked into the catalog")
	}
	// The database remains fully usable — and recoverable.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("events", record.Row{record.Int(1), record.Str("x")}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	checkConsistent(t, db)
}

func TestFailedDDLDoesNotBrickRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	// Attempt a broken view, then a valid one, then crash.
	db.CreateIndexedView(catalog.View{
		Name: "bad", Kind: catalog.ViewAggregate, Left: "accounts",
		Aggs: []expr.AggSpec{{Func: expr.AggSum, Arg: expr.Col(99)}},
	})
	insertAccounts(t, db, acctRow(1, 7, 10))
	db.Crash(true)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery bricked by failed DDL: %v", err)
	}
	defer db2.Close()
	checkConsistent(t, db2)
}

func TestCreateIndexBackfillUniqueViolation(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 100))
	// Two rows share branch=7: a unique index on branch must fail, and the
	// failure must fully roll back (catalog + partially built tree).
	err := db.CreateIndex("uniq_branch", "accounts", []int{1}, true)
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Catalog().Index("uniq_branch"); err == nil {
		t.Fatal("failed index left in catalog")
	}
	// A non-unique one works and is immediately usable for lookups.
	if err := db.CreateIndex("by_branch", "accounts", []int{1}, false); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db)
}

func TestDDLUnderConcurrentWriters(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Writers churn while a view is created mid-flight: backfill plus
	// subsequent maintenance must together capture every committed row.
	var stop atomic.Bool
	var wg sync.WaitGroup
	var inserted atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := int64(0)
			for !stop.Load() {
				i++
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				id := int64(w)*1_000_000 + i
				if err := tx.Insert("accounts", acctRow(id, id%4, 10)); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err == nil {
					inserted.Add(1)
				}
			}
		}(w)
	}
	// Let some rows land, then create the view concurrently.
	for inserted.Load() < 50 {
	}
	err := db.CreateIndexedView(catalog.View{
		Name: "branch_totals", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	})
	if err != nil {
		stop.Store(true)
		wg.Wait()
		t.Fatal(err)
	}
	for inserted.Load() < 200 {
	}
	stop.Store(true)
	wg.Wait()
	// The invariant covers both backfilled and post-DDL-maintained rows.
	checkConsistent(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	rows, err := tx.ScanView("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, r := range rows {
		total += r.Result[0].AsInt()
	}
	mustCommit(t, tx)
	if total != inserted.Load() {
		t.Fatalf("view counts %d rows, %d were committed", total, inserted.Load())
	}
}
