package core
