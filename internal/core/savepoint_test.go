package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

func TestSavepointPartialRollback(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	sp, err := tx.Savepoint()
	if err != nil {
		t.Fatal(err)
	}
	// Work after the savepoint: an insert and an update.
	if err := tx.Insert("accounts", acctRow(3, 8, 25)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(999)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// Pre-savepoint work is intact within the transaction; post is gone.
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(3)}); ok {
		t.Fatal("post-savepoint insert visible")
	}
	row, ok, _ := tx.Get("accounts", record.Row{record.Int(1)})
	if !ok || row[2].AsInt() != 100 {
		t.Fatalf("post-savepoint update not undone: %v", row)
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(2)}); !ok {
		t.Fatal("pre-savepoint insert lost")
	}
	mustCommit(t, tx)

	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 150 {
		t.Fatalf("branch 7 = %d/%d", count, sum)
	}
	if _, _, ok := branchTotal(t, db, 8); ok {
		t.Fatal("rolled-back group visible")
	}
	checkConsistent(t, db)
}

func TestSavepointEscrowDeltasDiscarded(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	sp, _ := tx.Savepoint()
	// Post-savepoint escrow deltas via deletes and inserts.
	if err := tx.Delete("accounts", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", acctRow(2, 7, 77)); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx) // commits with zero net deltas

	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("branch 7 = %d/%d/%v", count, sum, ok)
	}
	checkConsistent(t, db)
}

func TestNestedSavepoints(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)

	tx := begin(t, db, txn.ReadCommitted)
	tx.Insert("accounts", acctRow(1, 1, 10))
	sp1, _ := tx.Savepoint()
	tx.Insert("accounts", acctRow(2, 1, 20))
	sp2, _ := tx.Savepoint()
	tx.Insert("accounts", acctRow(3, 1, 30))

	if err := tx.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(3)}); ok {
		t.Fatal("inner rollback missed row 3")
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(2)}); !ok {
		t.Fatal("inner rollback took row 2")
	}
	if err := tx.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("outer rollback missed row 2")
	}
	mustCommit(t, tx)

	count, sum, _ := branchTotal(t, db, 1)
	if count != 1 || sum != 10 {
		t.Fatalf("branch 1 = %d/%d", count, sum)
	}
	checkConsistent(t, db)
}

func TestSavepointAfterFullRollback(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	tx := begin(t, db, txn.ReadCommitted)
	sp, _ := tx.Savepoint()
	tx.Insert("accounts", acctRow(1, 1, 10))
	tx.Rollback()
	if err := tx.RollbackTo(sp); err != ErrTxnDone {
		t.Fatalf("RollbackTo on dead txn = %v", err)
	}
	if _, err := tx.Savepoint(); err != ErrTxnDone {
		t.Fatalf("Savepoint on dead txn = %v", err)
	}
	checkConsistent(t, db)
}

func TestSavepointWithXLockView(t *testing.T) {
	// Savepoint rollback must also invert the X-lock strategy's in-place
	// view updates (TUpdate/TInsert/TDelete compensations).
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyXLock)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	sp, _ := tx.Savepoint()
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", acctRow(3, 9, 5)); err != nil { // new group: TInsert on the view
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", acctRow(4, 7, 25)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 125 {
		t.Fatalf("branch 7 = %d/%d", count, sum)
	}
	if _, _, ok := branchTotal(t, db, 9); ok {
		t.Fatal("rolled-back xlock group visible")
	}
	checkConsistent(t, db)
}

func TestSavepointSurvivesRecovery(t *testing.T) {
	// A transaction that partially rolled back then committed must recover
	// to exactly its committed effects (CLRs replay correctly).
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	tx := begin(t, db, txn.ReadCommitted)
	tx.Insert("accounts", acctRow(1, 7, 100))
	sp, _ := tx.Savepoint()
	tx.Insert("accounts", acctRow(2, 7, 999))
	tx.RollbackTo(sp)
	mustCommit(t, tx)
	db.Crash(true)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx2 := begin(t, db2, txn.ReadCommitted)
	if _, ok, _ := tx2.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("savepoint-rolled-back row resurrected by recovery")
	}
	if _, ok, _ := tx2.Get("accounts", record.Row{record.Int(1)}); !ok {
		t.Fatal("committed row lost")
	}
	mustCommit(t, tx2)
	checkConsistent(t, db2)
}
