package core

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

func setupIndexed(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("people", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "city", Kind: record.KindString},
		{Name: "age", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("people_city_age", "people", []int{1, 2}, false); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db, txn.ReadCommitted)
	rows := []record.Row{
		{record.Int(1), record.Str("oslo"), record.Int(30)},
		{record.Int(2), record.Str("oslo"), record.Int(40)},
		{record.Int(3), record.Str("bergen"), record.Int(30)},
		{record.Int(4), record.Str("oslo"), record.Int(30)},
	}
	for _, r := range rows {
		if err := tx.Insert("people", r); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
}

func TestLookupByIndexFullKey(t *testing.T) {
	db := openTestDB(t, Options{})
	setupIndexed(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	rows, err := tx.LookupByIndex("people_city_age", record.Row{record.Str("oslo"), record.Int(30)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Results come back in index order (PK-disambiguated): ids 1 then 4.
	if rows[0][0].AsInt() != 1 || rows[1][0].AsInt() != 4 {
		t.Fatalf("order = %v", rows)
	}
}

func TestLookupByIndexPrefix(t *testing.T) {
	db := openTestDB(t, Options{})
	setupIndexed(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	rows, err := tx.LookupByIndex("people_city_age", record.Row{record.Str("oslo")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("prefix lookup = %v", rows)
	}
	rows, err = tx.LookupByIndex("people_city_age", record.Row{record.Str("nowhere")})
	if err != nil || len(rows) != 0 {
		t.Fatalf("missing city = %v, %v", rows, err)
	}
}

func TestLookupByIndexSeesTransactionalChanges(t *testing.T) {
	db := openTestDB(t, Options{})
	setupIndexed(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	// Delete one oslo row and move another city inside this transaction.
	if err := tx.Delete("people", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("people", record.Row{record.Int(3)},
		map[int]record.Value{1: record.Str("oslo")}); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.LookupByIndex("people_city_age", record.Row{record.Str("oslo"), record.Int(30)})
	if err != nil {
		t.Fatal(err)
	}
	// id 1 deleted, id 3 moved in, id 4 stays: ids 3 and 4.
	if len(rows) != 2 || rows[0][0].AsInt() != 3 || rows[1][0].AsInt() != 4 {
		t.Fatalf("rows = %v", rows)
	}
	mustCommit(t, tx)
	checkConsistent(t, db)
}

func TestLookupByIndexValidation(t *testing.T) {
	db := openTestDB(t, Options{})
	setupIndexed(t, db)
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	if _, err := tx.LookupByIndex("nope", record.Row{record.Str("x")}); err == nil {
		t.Fatal("missing index accepted")
	}
	if _, err := tx.LookupByIndex("people_city_age", record.Row{}); !errors.Is(err, ErrSchema) {
		t.Fatal("empty values accepted")
	}
	if _, err := tx.LookupByIndex("people_city_age",
		record.Row{record.Str("a"), record.Int(1), record.Int(2)}); !errors.Is(err, ErrSchema) {
		t.Fatal("too many values accepted")
	}
	if _, err := tx.LookupByIndex("people_city_age", record.Row{record.Int(5)}); !errors.Is(err, ErrSchema) {
		t.Fatal("wrong kind accepted")
	}
}
