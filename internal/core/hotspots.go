package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/record"
)

// hotTopK is how many heavy hitters each hotspot listing carries. The
// sketches track more (their full capacity); the snapshot reports the head.
const hotTopK = 10

// hotspots builds the hot-spot attribution section of a metrics snapshot:
// sketch entries with tree IDs resolved to catalog names and encoded group
// keys decoded into their human-readable values, plus the per-view
// maintenance cost table.
func (db *DB) hotspots() metrics.HotspotsSnapshot {
	cat := db.Catalog()
	names := make(map[id.Tree]string)
	views := make(map[id.Tree]bool)
	for _, v := range cat.Views() {
		names[v.ID] = v.Name
		views[v.ID] = true
	}
	// Lock waits attribute any key resource, so base-table and index rows
	// can surface too; name them as well.
	for _, t := range cat.Tables() {
		names[t.ID] = t.Name
	}
	for _, ix := range cat.Indexes() {
		names[ix.ID] = ix.Name
	}
	hs := metrics.HotspotsSnapshot{
		SketchCapacity: db.met.Hot.LockWait.Cap(),
		TopWait:        hotGroups(db.met.Hot.LockWait.Top(hotTopK), names),
		TopDelta:       hotGroups(db.met.Hot.EscrowDeltas.Top(hotTopK), names),
	}
	db.met.Hot.Views.Each(func(tree id.Tree, c *metrics.ViewCost) {
		if !views[tree] {
			// logOp attributes WAL bytes for every tree; only views belong
			// in the maintenance-cost table.
			return
		}
		hs.Views = append(hs.Views, metrics.ViewCostSnapshot{
			Tree:       uint32(tree),
			View:       names[tree],
			RowsFolded: c.FoldRows.Load(),
			FoldNs:     c.FoldNs.Load(),
			WALBytes:   c.WALBytes.Load(),
		})
	})
	sort.Slice(hs.Views, func(i, j int) bool {
		if hs.Views[i].RowsFolded != hs.Views[j].RowsFolded {
			return hs.Views[i].RowsFolded > hs.Views[j].RowsFolded
		}
		return hs.Views[i].Tree < hs.Views[j].Tree
	})
	return hs
}

// hotGroups renders sketch entries for the snapshot.
func hotGroups(stats []metrics.HotStat, names map[id.Tree]string) []metrics.HotGroupSnapshot {
	out := make([]metrics.HotGroupSnapshot, 0, len(stats))
	for _, st := range stats {
		name, ok := names[st.Key.Tree]
		if !ok {
			name = st.Key.Tree.String()
		}
		out = append(out, metrics.HotGroupSnapshot{
			Tree:  uint32(st.Key.Tree),
			View:  name,
			Key:   decodeHotKey(st.Key.Key),
			Value: st.Val,
			Count: st.Cnt,
			Err:   st.Err,
		})
	}
	return out
}

// decodeHotKey renders an encoded tree key as its comma-joined column
// values; undecodable keys fall back to hex so the entry is never dropped.
func decodeHotKey(key string) string {
	rest := []byte(key)
	parts := make([]string, 0, 2)
	for len(rest) > 0 {
		v, r, err := record.DecodeKeyValue(rest)
		if err != nil {
			return fmt.Sprintf("0x%x", key)
		}
		parts = append(parts, v.String())
		rest = r
	}
	return strings.Join(parts, ",")
}
