package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/view"
	"repro/internal/wal"
)

// maintainProjection maintains a projection (possibly join) view: physical
// insert/delete of derived rows under transaction-duration X locks, keyed by
// the source primary key(s).
func (db *DB) maintainProjection(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, sign int) error {
	entry, err := m.ProjectEntry(src)
	if err != nil {
		return err
	}
	if err := db.lockTree(tx.t, v.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, v.ID, entry.Key, lock.ModeX); err != nil {
		return err
	}
	tree := db.tree(v.ID)
	if sign > 0 {
		rec := &wal.Record{Type: wal.TInsert, Tree: v.ID, Key: entry.Key, NewVal: record.EncodeRow(entry.Val)}
		return db.logOp(tx.t, rec)
	}
	cur, _, ok := tree.Get(entry.Key)
	if !ok {
		return fmt.Errorf("core: view %q: removing missing row", v.Name)
	}
	rec := &wal.Record{Type: wal.TDelete, Tree: v.ID, Key: entry.Key, OldVal: cur}
	return db.logOp(tx.t, rec)
}
