package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// openTestDB opens a fresh database in a temp dir.
func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// setupBanking creates accounts(id, branch, balance) with an escrow-
// maintained branch_totals view: COUNT(*), SUM(balance) GROUP BY branch.
func setupBanking(t *testing.T, db *DB, strategy catalog.Strategy) {
	t.Helper()
	err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	err = db.CreateIndexedView(catalog.View{
		Name:        "branch_totals",
		Kind:        catalog.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
		Strategy: strategy,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func acctRow(id, branch, balance int64) record.Row {
	return record.Row{record.Int(id), record.Int(branch), record.Int(balance)}
}

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func begin(t *testing.T, db *DB, level txn.Level) *Tx {
	t.Helper()
	tx, err := db.Begin(level)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func insertAccounts(t *testing.T, db *DB, rows ...record.Row) {
	t.Helper()
	tx := begin(t, db, txn.ReadCommitted)
	for _, r := range rows {
		if err := tx.Insert("accounts", r); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
}

// branchTotal reads the branch_totals view row for a branch.
func branchTotal(t *testing.T, db *DB, branch int64) (count, sum int64, ok bool) {
	t.Helper()
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(branch)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0, 0, false
	}
	if res[1].IsNull() {
		return res[0].AsInt(), 0, true
	}
	return res[0].AsInt(), res[1].AsInt(), true
}

func checkConsistent(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicCRUD(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50), acctRow(3, 8, 30))

	tx := begin(t, db, txn.ReadCommitted)
	row, ok, err := tx.Get("accounts", record.Row{record.Int(2)})
	if err != nil || !ok || row[2].AsInt() != 50 {
		t.Fatalf("Get: %v %v %v", row, ok, err)
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(99)}); ok {
		t.Fatal("missing row found")
	}
	var scanned []int64
	if err := tx.ScanTable("accounts", nil, nil, func(r record.Row) bool {
		scanned = append(scanned, r[0].AsInt())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 3 || scanned[0] != 1 || scanned[2] != 3 {
		t.Fatalf("scan = %v", scanned)
	}
	mustCommit(t, tx)

	// Update and delete.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(150)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("accounts", record.Row{record.Int(3)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 200 {
		t.Fatalf("branch 7 = %d/%d/%v", count, sum, ok)
	}
	if _, _, ok := branchTotal(t, db, 8); ok {
		t.Fatal("branch 8 should be gone (ghost)")
	}
	checkConsistent(t, db)
}

func TestDuplicateKeyAndSchemaErrors(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	if err := tx.Insert("accounts", acctRow(1, 9, 5)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup insert err = %v", err)
	}
	if err := tx.Insert("accounts", record.Row{record.Int(2)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("short row err = %v", err)
	}
	if err := tx.Insert("accounts", record.Row{record.Str("x"), record.Int(1), record.Int(1)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("wrong kind err = %v", err)
	}
	if err := tx.Insert("accounts", record.Row{record.Null(), record.Int(1), record.Int(1)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("null PK err = %v", err)
	}
	if err := tx.Delete("accounts", record.Row{record.Int(42)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing err = %v", err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{0: record.Int(9)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("PK update err = %v", err)
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.CreateTable("users", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "email", Kind: record.KindString},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("users_email", "users", []int{1}, true); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("users", record.Row{record.Int(1), record.Str("a@x")}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("users", record.Row{record.Int(2), record.Str("a@x")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique violation err = %v", err)
	}
	tx.Rollback()
	// Updating to a taken email also fails; to a fresh one succeeds.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("users", record.Row{record.Int(2), record.Str("b@x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("users", record.Row{record.Int(2)}, map[int]record.Value{1: record.Str("a@x")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique update err = %v", err)
	}
	tx.Rollback()
}

func TestRollbackUndoesEverything(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(999)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after rollback err = %v", err)
	}

	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("branch 7 after rollback = %d/%d", count, sum)
	}
	tx2 := begin(t, db, txn.ReadCommitted)
	row, ok, _ := tx2.Get("accounts", record.Row{record.Int(1)})
	if !ok || row[2].AsInt() != 100 {
		t.Fatalf("row 1 after rollback = %v", row)
	}
	if _, ok, _ := tx2.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("rolled-back insert visible")
	}
	mustCommit(t, tx2)
	checkConsistent(t, db)
}

func TestEscrowGhostLifecycle(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// Deleting the group's last row re-ghosts the view row at fold.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if _, _, ok := branchTotal(t, db, 7); ok {
		t.Fatal("empty group visible")
	}
	vtree := db.tree(mustView(t, db, "branch_totals").ID)
	if vtree.GhostCount() != 1 {
		t.Fatalf("ghosts = %d, want 1", vtree.GhostCount())
	}

	// The cleaner erases it.
	if n := db.CleanGhosts(); n != 1 {
		t.Fatalf("CleanGhosts = %d", n)
	}
	if vtree.GhostCount() != 0 {
		t.Fatal("ghost not erased")
	}

	// Re-creating the group works (fresh ghost, fresh sums).
	insertAccounts(t, db, acctRow(2, 7, 42))
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 42 {
		t.Fatalf("recreated group = %d/%d", count, sum)
	}
	checkConsistent(t, db)

	stats := db.Stats()
	if stats.GhostsCreated < 2 || stats.GhostsErased != 1 {
		t.Fatalf("ghost stats = %+v", stats)
	}
}

func mustView(t *testing.T, db *DB, name string) *catalog.View {
	t.Helper()
	v, err := db.Catalog().View(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAbortedTxnLeavesGhostOnly(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)

	// A transaction creates a brand-new group then aborts: the ghost row
	// remains (committed by its system transaction) but stays invisible.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(1, 99, 5)); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if _, _, ok := branchTotal(t, db, 99); ok {
		t.Fatal("aborted group visible")
	}
	vtree := db.tree(mustView(t, db, "branch_totals").ID)
	if vtree.GhostCount() != 1 {
		t.Fatalf("ghosts = %d, want 1 (sys txn survives user abort)", vtree.GhostCount())
	}
	if n := db.CleanGhosts(); n != 1 {
		t.Fatalf("CleanGhosts = %d", n)
	}
	checkConsistent(t, db)
}

func TestXLockStrategyCorrectness(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyXLock)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50), acctRow(3, 8, 30))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(10)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("accounts", record.Row{record.Int(3)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 60 {
		t.Fatalf("branch 7 = %d/%d", count, sum)
	}
	if _, _, ok := branchTotal(t, db, 8); ok {
		t.Fatal("branch 8 should be physically deleted under xlock strategy")
	}
	if g := db.tree(mustView(t, db, "branch_totals").ID).GhostCount(); g != 0 {
		t.Fatalf("xlock strategy left %d ghosts", g)
	}
	checkConsistent(t, db)
}

func TestXLockRollback(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyXLock)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", acctRow(3, 9, 5)); err != nil { // new group
		t.Fatal(err)
	}
	tx.Rollback()
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("branch 7 = %d/%d", count, sum)
	}
	if _, _, ok := branchTotal(t, db, 9); ok {
		t.Fatal("rolled-back group visible")
	}
	checkConsistent(t, db)
}

func TestMinMaxMaintenance(t *testing.T) {
	db := openTestDB(t, Options{})
	err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// MAX forces the X-lock fallback even under the escrow strategy.
	err = db.CreateIndexedView(catalog.View{
		Name:        "branch_extremes",
		Kind:        catalog.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggMax, Arg: expr.Col(2)},
			{Func: expr.AggMin, Arg: expr.Col(2)},
		},
		Strategy: catalog.StrategyEscrow,
	})
	if err != nil {
		t.Fatal(err)
	}
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50), acctRow(3, 7, 200))

	get := func() (max, min int64) {
		tx := begin(t, db, txn.ReadCommitted)
		defer tx.Rollback()
		res, ok, err := tx.GetViewRow("branch_extremes", record.Row{record.Int(7)})
		if err != nil || !ok {
			t.Fatalf("view read: %v %v", ok, err)
		}
		return res[1].AsInt(), res[2].AsInt()
	}
	if max, min := get(); max != 200 || min != 50 {
		t.Fatalf("max/min = %d/%d", max, min)
	}
	// Deleting the current max forces a group recompute.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(3)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if max, min := get(); max != 100 || min != 50 {
		t.Fatalf("after delete max/min = %d/%d", max, min)
	}
	// Update that moves the min.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", record.Row{record.Int(2)}, map[int]record.Value{2: record.Int(5)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if max, min := get(); max != 100 || min != 5 {
		t.Fatalf("after update max/min = %d/%d", max, min)
	}
	checkConsistent(t, db)
}

func TestProjectionViewMaintenance(t *testing.T) {
	db := openTestDB(t, Options{})
	err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	err = db.CreateIndexedView(catalog.View{
		Name:        "rich",
		Kind:        catalog.ViewProjection,
		Left:        "accounts",
		Where:       expr.Ge(expr.Col(2), expr.ConstInt(100)),
		ProjectCols: []int{0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50))

	rows := scanView(t, db, "rich")
	if len(rows) != 1 || rows[0].Result[0].AsInt() != 1 {
		t.Fatalf("rich = %v", rows)
	}
	// Update moves account 2 into the view and account 1 out.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", record.Row{record.Int(2)}, map[int]record.Value{2: record.Int(500)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	rows = scanView(t, db, "rich")
	if len(rows) != 1 || rows[0].Result[0].AsInt() != 2 || rows[0].Result[1].AsInt() != 500 {
		t.Fatalf("rich after update = %v", rows)
	}
	checkConsistent(t, db)
}

func scanView(t *testing.T, db *DB, name string) []ViewRow {
	t.Helper()
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	rows, err := tx.ScanView(name)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestJoinViewMaintenance(t *testing.T) {
	db := openTestDB(t, Options{})
	for _, ddl := range []func() error{
		func() error {
			return db.CreateTable("accounts", []catalog.Column{
				{Name: "id", Kind: record.KindInt64},
				{Name: "branch", Kind: record.KindInt64},
				{Name: "balance", Kind: record.KindInt64},
			}, []int{0})
		},
		func() error {
			return db.CreateTable("branches", []catalog.Column{
				{Name: "id", Kind: record.KindInt64},
				{Name: "region", Kind: record.KindString},
			}, []int{0})
		},
		// Index on the join column accelerates right-side lookups.
		func() error { return db.CreateIndex("accounts_branch", "accounts", []int{1}, false) },
		func() error {
			return db.CreateIndexedView(catalog.View{
				Name: "region_totals", Kind: catalog.ViewAggregate,
				Left: "accounts", Right: "branches",
				JoinLeftCol: 1, JoinRightCol: 3, // accounts.branch = branches.id (source col 3)
				GroupByCols: []int{4}, // branches.region (source col 4)
				Aggs:        []expr.AggSpec{{Func: expr.AggSum, Arg: expr.Col(2)}},
			})
		},
	} {
		if err := ddl(); err != nil {
			t.Fatal(err)
		}
	}
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("branches", record.Row{record.Int(7), record.Str("west")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("branches", record.Row{record.Int(8), record.Str("east")}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50), acctRow(3, 8, 30))

	rows := scanView(t, db, "region_totals")
	if len(rows) != 2 {
		t.Fatalf("region_totals = %v", rows)
	}
	// Sorted by key: east then west.
	if rows[0].Key[0].AsString() != "east" || rows[0].Result[0].AsInt() != 30 {
		t.Fatalf("east = %v", rows[0])
	}
	if rows[1].Key[0].AsString() != "west" || rows[1].Result[0].AsInt() != 150 {
		t.Fatalf("west = %v", rows[1])
	}

	// Deleting a branch removes its accounts' contributions (they no longer
	// join); deleting an account shrinks its region.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("branches", record.Row{record.Int(8)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	rows = scanView(t, db, "region_totals")
	if len(rows) != 1 || rows[0].Key[0].AsString() != "west" || rows[0].Result[0].AsInt() != 100 {
		t.Fatalf("after deletes = %v", rows)
	}
	checkConsistent(t, db)
}

func TestGroupKeyColumnForJoinView(t *testing.T) {
	// Sanity check of the fixture above: branches.region is source column 4
	// (3 account columns + 1).
	db := openTestDB(t, Options{})
	_ = db
}

func TestDeferredViewApplierConvergence(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyDeferred)

	// The commit returns before the view is maintained; waiting for the
	// commit's timestamp to reach the view watermark is the read-your-writes
	// barrier.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(1, 7, 100)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	ts := tx.CommitTS()
	if ts == 0 {
		t.Fatal("committed transaction has no commit timestamp")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := db.WaitForViewWatermark(ctx, "branch_totals", ts); err != nil {
		t.Fatal(err)
	}
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("after apply = %d/%d/%v", count, sum, ok)
	}
	wm, err := db.ViewWatermark("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	if wm < ts {
		t.Fatalf("watermark %d below waited-for commit ts %d", wm, ts)
	}

	// More churn converges too, and the watermark only moves forward.
	insertAccounts(t, db, acctRow(2, 7, 50), acctRow(3, 8, 1))
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := db.WaitForViewWatermark(ctx, "branch_totals", tx.CommitTS()); err != nil {
		t.Fatal(err)
	}
	count, sum, _ = branchTotal(t, db, 7)
	if count != 1 || sum != 50 {
		t.Fatalf("after churn = %d/%d", count, sum)
	}
	wm2, err := db.ViewWatermark("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	if wm2 < wm {
		t.Fatalf("watermark went backwards: %d -> %d", wm, wm2)
	}

	// Refresh still works against a caught-up deferred view: it is a no-op.
	n, err := db.RefreshView("branch_totals")
	if err != nil || n != 0 {
		t.Fatalf("refresh of converged view: %d, %v", n, err)
	}
	// And CheckConsistency now verifies deferred views after draining.
	checkConsistent(t, db)
}

func TestDeferredViewValidation(t *testing.T) {
	db := openTestDB(t, Options{})
	err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// MIN/MAX has no commutative fold: deferred maintenance must refuse it.
	err = db.CreateIndexedView(catalog.View{
		Name: "branch_max", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs:        []expr.AggSpec{{Func: expr.AggCountRows}, {Func: expr.AggMax, Arg: expr.Col(2)}},
		Strategy:    catalog.StrategyDeferred,
	})
	if !errors.Is(err, catalog.ErrInvalid) {
		t.Fatalf("deferred MIN/MAX view: %v", err)
	}
	// Projections have no fold arithmetic at all.
	err = db.CreateIndexedView(catalog.View{
		Name: "acct_proj", Kind: catalog.ViewProjection, Left: "accounts",
		ProjectCols: []int{0, 2}, Strategy: catalog.StrategyDeferred,
	})
	if !errors.Is(err, catalog.ErrInvalid) {
		t.Fatalf("deferred projection view: %v", err)
	}
}

func TestCreateViewBackfill(t *testing.T) {
	db := openTestDB(t, Options{})
	err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 8, 50))
	// View created after data exists must be backfilled.
	err = db.CreateIndexedView(catalog.View{
		Name: "branch_totals", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("backfilled branch 7 = %d/%d/%v", count, sum, ok)
	}
	checkConsistent(t, db)

	// DropView clears it.
	if err := db.DropView("branch_totals"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Catalog().View("branch_totals"); err == nil {
		t.Fatal("view still in catalog")
	}
}

func TestSerializableScanBlocksPhantoms(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// A serializable scan holds a table S lock; a writer must wait.
	reader := begin(t, db, txn.Serializable)
	n := 0
	if err := reader.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() {
		w := begin(t, db, txn.ReadCommitted)
		err := w.Insert("accounts", acctRow(2, 7, 1))
		if err == nil {
			err = w.Commit()
		} else {
			w.Rollback()
		}
		writerDone <- err
	}()
	select {
	case err := <-writerDone:
		t.Fatalf("writer finished during serializable reader: %v", err)
	default:
	}
	// Rescan sees the same rows (repeatable).
	n2 := 0
	reader.ScanTable("accounts", nil, nil, func(record.Row) bool { n2++; return true })
	if n2 != n {
		t.Fatalf("serializable rescan saw %d, first %d", n2, n)
	}
	mustCommit(t, reader)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db)
}

func TestLockEscalation(t *testing.T) {
	db := openTestDB(t, Options{EscalationThreshold: 5})
	setupBanking(t, db, catalog.StrategyEscrow)
	var rows []record.Row
	for i := int64(1); i <= 20; i++ {
		rows = append(rows, acctRow(i, i%3, 10))
	}
	insertAccounts(t, db, rows...)
	if db.Stats().Escalations == 0 {
		t.Fatal("no escalation happened")
	}
	checkConsistent(t, db)
}

func TestCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 8, 50))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint work lands in the new generation's log.
	insertAccounts(t, db, acctRow(3, 7, 25))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx := begin(t, db2, txn.ReadCommitted)
	res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(7)})
	if err != nil || !ok || res[0].AsInt() != 2 || res[1].AsInt() != 125 {
		t.Fatalf("after reopen: %v %v %v", res, ok, err)
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)
}
