package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

// reopen crashes db (flushing the log to the OS) and opens a new instance on
// the same directory, running recovery.
func reopen(t *testing.T, db *DB, dir string) *DB {
	t.Helper()
	db.Crash(true)
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	return db2
}

func TestRecoveryCommittedWorkSurvives(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50), acctRow(3, 8, 30))

	db2 := reopen(t, db, dir)
	if db2.RecoverySummary().Fresh {
		t.Fatal("recovery claims fresh database")
	}
	count, sum, ok := func() (int64, int64, bool) {
		tx := begin(t, db2, txn.ReadCommitted)
		defer tx.Rollback()
		res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(7)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return 0, 0, false
		}
		return res[0].AsInt(), res[1].AsInt(), true
	}()
	if !ok || count != 2 || sum != 150 {
		t.Fatalf("recovered branch 7 = %d/%d/%v", count, sum, ok)
	}
	checkConsistent(t, db2)
}

func TestRecoveryUndoesLoserTransaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// An in-flight transaction with base changes (its escrow deltas are
	// volatile and die with the crash; its base ops must be undone).
	loser := begin(t, db, txn.ReadCommitted)
	if err := loser.Insert("accounts", acctRow(2, 7, 999)); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Crash without committing. (The gate reader the loser holds is
	// irrelevant post-crash.)
	db2 := reopen(t, db, dir)
	sum := db2.RecoverySummary()
	if sum.Losers != 1 {
		t.Fatalf("losers = %d, want 1", sum.Losers)
	}
	if sum.UndoneOps == 0 {
		t.Fatal("no operations were undone")
	}
	tx := begin(t, db2, txn.ReadCommitted)
	row, ok, _ := tx.Get("accounts", record.Row{record.Int(1)})
	if !ok || row[2].AsInt() != 100 {
		t.Fatalf("row 1 = %v (loser's update survived?)", row)
	}
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("loser's insert survived")
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)
}

func TestRecoveryCrashMidCommitFold(t *testing.T) {
	// Crash after the commit-time folds are logged but before the commit
	// record: recovery must undo the folds via logical (inverse-delta) CLRs.
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	// Manually run the fold (the first phase of Commit) and crash before
	// the commit record — white-box simulation of a fold-then-die schedule.
	if _, _, err := db.foldEscrow(tx.t); err != nil {
		t.Fatal(err)
	}
	db2 := reopen(t, db, dir)
	if db2.RecoverySummary().Losers != 1 {
		t.Fatalf("losers = %d", db2.RecoverySummary().Losers)
	}
	count, sum, ok := func() (int64, int64, bool) {
		tx := begin(t, db2, txn.ReadCommitted)
		defer tx.Rollback()
		res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(7)})
		if err != nil || !ok {
			return 0, 0, false
		}
		return res[0].AsInt(), res[1].AsInt(), true
	}()
	if !ok || count != 1 || sum != 100 {
		t.Fatalf("branch 7 after fold-undo = %d/%d/%v", count, sum, ok)
	}
	checkConsistent(t, db2)
}

func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	// Arm the fault: the next flush tears mid-record.
	db.log.Sync(0)
	db.log.SetFailAfter(10)
	tx := begin(t, db, txn.ReadCommitted)
	_ = tx.Insert("accounts", acctRow(2, 7, 50))
	tx.Commit() // fails: injected fault

	db.Crash(false)
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.RecoverySummary().Torn {
		t.Fatal("torn tail not reported")
	}
	// The committed prefix survives; the torn transaction does not.
	tx2 := begin(t, db2, txn.ReadCommitted)
	if _, ok, _ := tx2.Get("accounts", record.Row{record.Int(1)}); !ok {
		t.Fatal("pre-fault committed row lost")
	}
	if _, ok, _ := tx2.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("torn transaction's row survived")
	}
	mustCommit(t, tx2)
	checkConsistent(t, db2)
}

func TestRecoveryRepeatedCrashes(t *testing.T) {
	// Crash during recovery's own undo is simulated by crashing right after
	// a recovery completes and again later; CLRs must keep undo idempotent.
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	loser := begin(t, db, txn.ReadCommitted)
	loser.Insert("accounts", acctRow(2, 7, 999))

	db2 := reopen(t, db, dir) // undoes the loser, logging CLRs
	db3 := reopen(t, db2, dir)
	db4 := reopen(t, db3, dir)
	tx := begin(t, db4, txn.ReadCommitted)
	if _, ok, _ := tx.Get("accounts", record.Row{record.Int(2)}); ok {
		t.Fatal("loser's row resurrected across repeated recoveries")
	}
	mustCommit(t, tx)
	checkConsistent(t, db4)
}

func TestRecoveryDDLSurvivesWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	// No checkpoint ever ran: the schema lives only in the log's DDL records.
	db2 := reopen(t, db, dir)
	if _, err := db2.Catalog().Table("accounts"); err != nil {
		t.Fatal("table lost after recovery")
	}
	if _, err := db2.Catalog().View("branch_totals"); err != nil {
		t.Fatal("view lost after recovery")
	}
	// New transaction IDs do not collide with pre-crash ones.
	tx := begin(t, db2, txn.ReadCommitted)
	if err := tx.Insert("accounts", acctRow(50, 7, 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)
}

func TestRecoveryAfterCheckpointPlusLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertAccounts(t, db, acctRow(2, 7, 50)) // post-checkpoint, log only
	loser := begin(t, db, txn.ReadCommitted)
	loser.Insert("accounts", acctRow(3, 7, 999))

	db2 := reopen(t, db, dir)
	tx := begin(t, db2, txn.ReadCommitted)
	res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(7)})
	if err != nil || !ok || res[0].AsInt() != 2 || res[1].AsInt() != 150 {
		t.Fatalf("after checkpoint+log recovery: %v %v %v", res, ok, err)
	}
	mustCommit(t, tx)
	checkConsistent(t, db2)
}

// TestRecoveryRandomizedCrashPoints runs a deterministic workload, crashes
// after every k-th transaction, and verifies the invariant each time.
func TestRecoveryRandomizedCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("long crash matrix")
	}
	for _, crashAfter := range []int{1, 3, 7, 15} {
		dir := t.TempDir()
		db, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		setupBanking(t, db, catalog.StrategyEscrow)
		rng := rand.New(rand.NewSource(int64(crashAfter)))
		live := map[int64]bool{}
		for i := 0; i < crashAfter*4; i++ {
			tx, err := db.Begin(txn.ReadCommitted)
			if err != nil {
				t.Fatal(err)
			}
			id := int64(rng.Intn(30))
			var opErr error
			if live[id] && rng.Intn(2) == 0 {
				opErr = tx.Delete("accounts", record.Row{record.Int(id)})
				if opErr == nil {
					delete(live, id)
				}
			} else if !live[id] {
				opErr = tx.Insert("accounts", acctRow(id, id%4, int64(rng.Intn(100))))
				if opErr == nil {
					live[id] = true
				}
			}
			if opErr != nil {
				tx.Rollback()
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Leave one loser hanging, crash, recover, check.
		loser, _ := db.Begin(txn.ReadCommitted)
		loser.Insert("accounts", acctRow(900, 0, 1))
		db.Crash(true)
		db2, err := Open(dir, Options{GhostCleanInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := db2.CheckConsistency(); err != nil {
			t.Fatalf("crashAfter=%d: %v", crashAfter, err)
		}
		db2.Close()
	}
}
