package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// Micro-benchmarks of the engine's hot paths; the experiment-level benches
// live in the repository root's bench_test.go.

func benchDB(b *testing.B, strategy catalog.Strategy) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		b.Fatal(err)
	}
	if strategy != 0 {
		if err := db.CreateIndexedView(catalog.View{
			Name: "branch_totals", Kind: catalog.ViewAggregate, Left: "accounts",
			GroupByCols: []int{1},
			Aggs: []expr.AggSpec{
				{Func: expr.AggCountRows},
				{Func: expr.AggSum, Arg: expr.Col(2)},
			},
			Strategy: strategy,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsertCommitNoView(b *testing.B) {
	db := benchDB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(txn.ReadCommitted)
		if err := tx.Insert("accounts", acctRowB(int64(i), int64(i%8), 10)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertCommitEscrowView(b *testing.B) {
	db := benchDB(b, catalog.StrategyEscrow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(txn.ReadCommitted)
		if err := tx.Insert("accounts", acctRowB(int64(i), int64(i%8), 10)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertCommitXLockView(b *testing.B) {
	db := benchDB(b, catalog.StrategyXLock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(txn.ReadCommitted)
		if err := tx.Insert("accounts", acctRowB(int64(i), int64(i%8), 10)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewPointRead(b *testing.B) {
	db := benchDB(b, catalog.StrategyEscrow)
	tx, _ := db.Begin(txn.ReadCommitted)
	for i := 0; i < 1000; i++ {
		tx.Insert("accounts", acctRowB(int64(i), int64(i%8), 10))
	}
	tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(txn.ReadCommitted)
		if _, _, err := tx.GetViewRow("branch_totals", record.Row{record.Int(int64(i % 8))}); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkSerializableRangeScan(b *testing.B) {
	db := benchDB(b, 0)
	tx, _ := db.Begin(txn.ReadCommitted)
	for i := 0; i < 2000; i++ {
		tx.Insert("accounts", acctRowB(int64(i), int64(i%8), 10))
	}
	tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(txn.Serializable)
		lo := int64((i * 37) % 1900)
		n := 0
		err := tx.ScanTable("accounts",
			record.Row{record.Int(lo)}, record.Row{record.Int(lo + 50)},
			func(record.Row) bool { n++; return true })
		if err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func acctRowB(id, branch, balance int64) record.Row {
	return record.Row{record.Int(id), record.Int(branch), record.Int(balance)}
}

// BenchmarkParallelInsertCommitEscrowView is the ISSUE 1 acceptance
// benchmark: 8 goroutines, each inserting into its own branch (distinct view
// rows, distinct base keys), full insert+commit transactions. Under the
// global-mutex lock manager and ledger every lock/ledger call serializes;
// the striped manager keeps disjoint branches independent.
func BenchmarkParallelInsertCommitEscrowView(b *testing.B) {
	db := benchDB(b, catalog.StrategyEscrow)
	var nextG atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := nextG.Add(1)
		i := int64(0)
		for pb.Next() {
			i++
			tx, _ := db.Begin(txn.ReadCommitted)
			if err := tx.Insert("accounts", acctRowB(g*1_000_000_000+i, g, 10)); err != nil {
				b.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
