package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/expr"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/view"
	"repro/internal/wal"
)

// viewDelta is one view's resolved source-row changes, prepared before the
// base change applies and replayed into the view after it.
type viewDelta struct {
	v      *catalog.View
	m      *view.Maintainer
	oldSrc []record.Row
	newSrc []record.Row
}

// prepareViewDeltas resolves the source rows a base-row change touches in
// every view on the table, taking the join lookups' inner-row S locks.
//
// This MUST run before the base change reaches the tree: the inner-row
// locks serialize this transaction against concurrent changes to joined
// rows, and the other side's own lookups must still see this row in its
// pre-change state until the conflict resolves. (Applying a base delete
// first would hide the row from a concurrent inner-side updater's lookup
// while this transaction later attributes the removal using the updated
// inner row — leaving the view off by one group. The join stress test
// exercises exactly this interleaving.)
func (db *DB) prepareViewDeltas(tx *Tx, table string, oldRow, newRow record.Row) ([]viewDelta, error) {
	var out []viewDelta
	for _, v := range db.Catalog().ViewsOn(table) {
		m := db.reg.Maintainer(v.ID)
		if m == nil {
			return nil, fmt.Errorf("core: view %q has no compiled maintainer", v.Name)
		}
		side := viewSide(v, table)
		oldSrc, err := db.sourceRows(tx, m, side, oldRow)
		if err != nil {
			return nil, err
		}
		newSrc, err := db.sourceRows(tx, m, side, newRow)
		if err != nil {
			return nil, err
		}
		out = append(out, viewDelta{v: v, m: m, oldSrc: oldSrc, newSrc: newSrc})
	}
	return out, nil
}

// applyViewDeltas replays prepared deltas into the views; it runs after the
// base change applied (MIN/MAX group recomputes scan the post-change base).
func (db *DB) applyViewDeltas(tx *Tx, deltas []viewDelta) error {
	for _, d := range deltas {
		for _, src := range d.oldSrc {
			if err := db.applySourceDelta(tx, d.v, d.m, src, -1); err != nil {
				return err
			}
		}
		for _, src := range d.newSrc {
			if err := db.applySourceDelta(tx, d.v, d.m, src, +1); err != nil {
				return err
			}
		}
	}
	return nil
}

// sourceRows expands a base row into the view's source rows, doing the join
// lookup with S locks held to end of transaction on the matched inner rows
// (so a concurrent change to a joined row serializes with this maintenance).
func (db *DB) sourceRows(tx *Tx, m *view.Maintainer, side view.JoinSide, row record.Row) ([]record.Row, error) {
	if row == nil {
		return nil, nil
	}
	return m.SourceRows(side, row, func(joinVal record.Value) ([]record.Row, error) {
		leftCol, rightCol := m.JoinCols()
		if side == view.SideLeft {
			return db.lookupRowsByCol(tx, m.Right, rightCol, joinVal)
		}
		return db.lookupRowsByCol(tx, m.Left, leftCol, joinVal)
	})
}

// lookupRowsByCol returns the live rows of a table whose column equals val,
// using a secondary index on that column when one exists, and S-locking each
// matched row for the transaction's duration.
func (db *DB) lookupRowsByCol(tx *Tx, tbl *catalog.Table, col int, val record.Value) ([]record.Row, error) {
	tree := db.tree(tbl.ID)
	var keys [][]byte
	if ix := db.indexOnCol(tbl.Name, col); ix != nil {
		prefix := record.AppendKey(nil, val)
		ixTree := db.tree(ix.ID)
		for _, it := range ixTree.Items(prefix, record.KeySuccessor(prefix), false) {
			// The PK suffix follows the indexed column's encoding.
			keys = append(keys, it.Key[len(prefix):])
		}
	} else {
		// No index: scan the table.
		for _, it := range tree.Items(nil, nil, false) {
			row, err := record.DecodeRow(it.Val)
			if err != nil {
				return nil, err
			}
			if record.Compare(row[col], val) == 0 {
				keys = append(keys, append([]byte(nil), it.Key...))
			}
		}
	}
	var out []record.Row
	for _, key := range keys {
		if err := db.lockKey(tx.t, tbl.ID, key, lock.ModeS); err != nil {
			return nil, err
		}
		v, ghost, ok := tree.Get(key)
		if !ok || ghost {
			continue // deleted between index read and lock
		}
		row, err := record.DecodeRow(v)
		if err != nil {
			return nil, err
		}
		if record.Compare(row[col], val) != 0 {
			continue // changed between index read and lock
		}
		out = append(out, row)
	}
	return out, nil
}

// indexOnCol finds a secondary index whose first column is col.
func (db *DB) indexOnCol(table string, col int) *catalog.Index {
	for _, ix := range db.Catalog().IndexesOn(table) {
		if ix.Cols[0] == col {
			return ix
		}
	}
	return nil
}

// applySourceDelta routes one source-row change into the view's maintenance
// protocol.
func (db *DB) applySourceDelta(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, sign int) error {
	ok, err := m.Matches(src)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if v.Kind == catalog.ViewProjection {
		return db.maintainProjection(tx, v, m, src, sign)
	}
	// Aggregate views: deferred views accumulate deltas for the background
	// applier without touching the view (DESIGN.md §9); escrow when the
	// strategy allows it and every aggregate commutes; otherwise the X-lock
	// fallback (DESIGN.md §5).
	if v.Strategy == catalog.StrategyDeferred {
		return db.maintainDeferred(tx, v, m, src, sign)
	}
	if v.Strategy == catalog.StrategyEscrow && !m.HasMinMax() {
		return db.maintainEscrow(tx, v, m, src, sign)
	}
	return db.maintainXLock(tx, v, m, src, sign)
}

// maintainDeferred accumulates the source-row change in the escrow ledger
// exactly like maintainEscrow, but takes no view locks and creates no ghost:
// the view row is untouched until the background applier folds the commit's
// published deltas (deferred.go). Writers therefore never contend on the
// view at all — the deferred tier's entire throughput win.
func (db *DB) maintainDeferred(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, sign int) error {
	key, err := m.GroupKey(src)
	if err != nil {
		return err
	}
	hidden, contribs, err := m.Contributions(src, sign)
	if err != nil {
		return err
	}
	row := escrow.RowID{Tree: v.ID, Key: string(key)}
	db.ledger.Add(tx.t.ID, escrow.CellID{Row: row, Col: hidden.Cell}, hidden.Delta)
	for _, c := range contribs {
		for _, cd := range c.Cells {
			db.ledger.Add(tx.t.ID, escrow.CellID{Row: row, Col: cd.Cell}, cd.Delta)
		}
	}
	return nil
}

// maintainEscrow is the paper's protocol: E lock on the view row, ghost
// creation via a system transaction when the group is new, and deltas
// accumulated in the escrow ledger for the commit-time fold.
func (db *DB) maintainEscrow(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, sign int) error {
	key, err := m.GroupKey(src)
	if err != nil {
		return err
	}
	if err := db.lockTree(tx.t, v.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, v.ID, key, lock.ModeE); err != nil {
		return err
	}
	// Ensure the view row exists, creating a ghost via a system transaction
	// that commits immediately (independent of this transaction's fate).
	if _, ok := db.tree(v.ID).Has(key); !ok {
		if err := db.createGhost(v, m, key); err != nil {
			return err
		}
	}
	hidden, contribs, err := m.Contributions(src, sign)
	if err != nil {
		return err
	}
	row := escrow.RowID{Tree: v.ID, Key: string(key)}
	db.ledger.Add(tx.t.ID, escrow.CellID{Row: row, Col: hidden.Cell}, hidden.Delta)
	for _, c := range contribs {
		for _, cd := range c.Cells {
			db.ledger.Add(tx.t.ID, escrow.CellID{Row: row, Col: cd.Cell}, cd.Delta)
		}
	}
	return nil
}

// createGhost inserts an empty ghost group row via a system transaction.
func (db *DB) createGhost(v *catalog.View, m *view.Maintainer, key []byte) error {
	return db.runSysTxn(func(st *txn.Txn) error {
		latch := db.structLatch(v.ID, key)
		latch.Lock()
		defer latch.Unlock()
		if _, _, ok := db.tree(v.ID).Get(key); ok {
			return nil // another transaction won the race
		}
		rec := &wal.Record{
			Type:     wal.TInsert,
			Tree:     v.ID,
			Key:      key,
			NewVal:   record.EncodeRow(m.NewGroupRow()),
			NewGhost: true,
		}
		if err := db.logOp(st, rec); err != nil {
			return err
		}
		db.ghostsCreated.Add(1)
		return nil
	})
}

// maintainXLock is the conventional baseline (and the MIN/MAX fallback):
// the view row is read, modified, and written back immediately under a
// transaction-duration X lock, with structural inserts and deletes performed
// directly by the user transaction.
func (db *DB) maintainXLock(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, sign int) error {
	key, err := m.GroupKey(src)
	if err != nil {
		return err
	}
	if err := db.lockTree(tx.t, v.ID, lock.ModeIX); err != nil {
		return err
	}
	if err := db.lockKey(tx.t, v.ID, key, lock.ModeX); err != nil {
		return err
	}
	hidden, contribs, err := m.Contributions(src, sign)
	if err != nil {
		return err
	}
	deltas := []wal.ColDelta{colDelta(hidden)}
	for _, c := range contribs {
		if !c.Escrowable {
			continue // handled below
		}
		for _, cd := range c.Cells {
			deltas = append(deltas, colDelta(cd))
		}
	}

	tree := db.tree(v.ID)
	cur, _, ok := tree.Get(key)
	var stored record.Row
	if ok {
		if stored, err = record.DecodeRow(cur); err != nil {
			return err
		}
	} else {
		if sign < 0 {
			return fmt.Errorf("core: view %q: delete from missing group", v.Name)
		}
		stored = m.NewGroupRow()
	}
	// ApplyFold mutates in place; dependents need the row's pre-image.
	children := db.Catalog().ViewsOn(v.Name)
	var oldStored record.Row
	if len(children) > 0 && ok {
		oldStored = append(record.Row(nil), stored...)
	}
	next, err := m.ApplyFold(stored, deltas)
	if err != nil {
		return err
	}
	// MIN/MAX cells.
	for i, c := range contribs {
		if c.Escrowable || c.Value.IsNull() {
			continue
		}
		off := m.AggOffset(i)
		curV := next[off]
		if sign > 0 {
			if curV.IsNull() || better(v.Aggs[i].Func, c.Value, curV) {
				next[off] = c.Value
			}
			continue
		}
		// Removing a row: if it carried the current extremum, recompute the
		// group from the base tables.
		if !curV.IsNull() && record.Compare(c.Value, curV) == 0 {
			recomputed, err := db.recomputeExtremum(tx, v, m, src, i)
			if err != nil {
				return err
			}
			next[off] = recomputed
		}
	}

	empty, err := m.GroupEmpty(next)
	if err != nil {
		return err
	}
	switch {
	case !ok:
		rec := &wal.Record{Type: wal.TInsert, Tree: v.ID, Key: key, NewVal: record.EncodeRow(next)}
		if err := db.logOp(tx.t, rec); err != nil {
			return err
		}
		return db.cascadeXLock(tx, v, m, key, nil, next, children)
	case empty:
		rec := &wal.Record{Type: wal.TDelete, Tree: v.ID, Key: key, OldVal: cur}
		if err := db.logOp(tx.t, rec); err != nil {
			return err
		}
		return db.cascadeXLock(tx, v, m, key, oldStored, nil, children)
	default:
		rec := &wal.Record{Type: wal.TUpdate, Tree: v.ID, Key: key, OldVal: cur, NewVal: record.EncodeRow(next)}
		if err := db.logOp(tx.t, rec); err != nil {
			return err
		}
		return db.cascadeXLock(tx, v, m, key, oldStored, next, children)
	}
}

// cascadeXLock pushes one X-lock-maintained parent row change into the views
// stacked on it. The X-lock path knows the row's old and new images at DML
// time, so dependents take the ordinary DML maintenance route: the old output
// row contributes with sign -1 and the new one with +1 through
// applySourceDelta, which ledgers escrow and deferred children for the
// commit-time fold (coalescing with every other path that feeds the same
// group). Stacked views are never X-lock maintained themselves — the catalog
// rejects that — so the recursion is one level deep here and the commit-time
// cascade carries the change the rest of the way down.
func (db *DB) cascadeXLock(tx *Tx, v *catalog.View, m *view.Maintainer, key []byte, oldStored, newStored record.Row, children []*catalog.View) error {
	if len(children) == 0 || (oldStored == nil && newStored == nil) {
		return nil
	}
	push := func(stored record.Row, sign int) error {
		out, err := m.OutputRow(key, stored)
		if err != nil {
			return err
		}
		for _, child := range children {
			cm := db.reg.Maintainer(child.ID)
			if cm == nil {
				return fmt.Errorf("core: view %q has no compiled maintainer", child.Name)
			}
			if err := db.applySourceDelta(tx, child, cm, out, sign); err != nil {
				return err
			}
			db.met.Cascade.Enqueued.Add(1)
		}
		return nil
	}
	if oldStored != nil {
		if err := push(oldStored, -1); err != nil {
			return err
		}
	}
	if newStored != nil {
		if err := push(newStored, +1); err != nil {
			return err
		}
	}
	return nil
}

func colDelta(cd view.CellDelta) wal.ColDelta {
	if cd.Delta.Float != 0 {
		return wal.ColDelta{Col: cd.Cell, IsFloat: true, Float: cd.Delta.Float}
	}
	return wal.ColDelta{Col: cd.Cell, Int: cd.Delta.Int}
}

func better(f expr.AggFunc, candidate, current record.Value) bool {
	if f == expr.AggMin {
		return record.Compare(candidate, current) < 0
	}
	return record.Compare(candidate, current) > 0
}

// recomputeExtremum rescans the view's source for the group of src
// (excluding src itself, which is being removed) and recomputes aggregate
// aggIdx. The caller holds an X lock on the view row; base rows are read
// under the removed row's already-held locks plus the tree latch.
func (db *DB) recomputeExtremum(tx *Tx, v *catalog.View, m *view.Maintainer, src record.Row, aggIdx int) (record.Value, error) {
	group, err := m.GroupRow(src)
	if err != nil {
		return record.Value{}, err
	}
	leftRows, err := db.tableRows(m.Left)
	if err != nil {
		return record.Value{}, err
	}
	var rightRows []record.Row
	if m.Right != nil {
		if rightRows, err = db.tableRows(m.Right); err != nil {
			return record.Value{}, err
		}
	}
	// The base change was applied before maintenance ran, so the scan above
	// already reflects the removal: recomputing the group yields the new
	// extremum directly.
	entries, err := m.Recompute(leftRows, rightRows)
	if err != nil {
		return record.Value{}, err
	}
	target := record.EncodeKey(group)
	for _, e := range entries {
		if record.CompareKeys(e.Key, target) == 0 {
			res := e.Val[m.AggOffset(aggIdx)]
			return res, nil
		}
	}
	return record.Null(), nil // group has no other rows
}
