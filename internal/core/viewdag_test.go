package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// setupRollupChain builds the 3-level rollup chain the view-DAG design is
// specified against: order_items → order_totals (per order) →
// customer_totals (per customer) → region_totals (per region), every level
// defined in the named style and maintained with the given strategy.
func setupRollupChain(t *testing.T, db *DB, strategy catalog.Strategy) {
	t.Helper()
	err := db.CreateTable("order_items", []catalog.Column{
		{Name: "item", Kind: record.KindInt64},
		{Name: "order_id", Kind: record.KindInt64},
		{Name: "customer", Kind: record.KindInt64},
		{Name: "region", Kind: record.KindString},
		{Name: "amount", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []catalog.View{
		{Name: "order_totals", Kind: catalog.ViewAggregate, Source: "order_items",
			GroupBy: []string{"order_id", "customer", "region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggSum, Arg: expr.NamedCol("amount"), Name: "total"},
			},
			Strategy: strategy},
		{Name: "customer_totals", Kind: catalog.ViewAggregate, Source: "order_totals",
			GroupBy: []string{"customer", "region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggCountRows, Name: "orders"},
				{Func: expr.AggSum, Arg: expr.NamedCol("total"), Name: "total"},
			},
			Strategy: strategy},
		{Name: "region_totals", Kind: catalog.ViewAggregate, Source: "customer_totals",
			GroupBy: []string{"region"},
			Aggs: []expr.AggSpec{
				{Func: expr.AggCountRows, Name: "customers"},
				{Func: expr.AggSum, Arg: expr.NamedCol("total"), Name: "total"},
			},
			Strategy: strategy},
	} {
		if err := db.CreateIndexedView(v); err != nil {
			t.Fatal(err)
		}
	}
}

func itemRow(item, order, customer int64, region string, amount int64) record.Row {
	return record.Row{record.Int(item), record.Int(order), record.Int(customer),
		record.Str(region), record.Int(amount)}
}

// scanRegionTotals returns region -> (customers, total).
func scanRegionTotals(t *testing.T, db *DB) map[string][2]int64 {
	t.Helper()
	tx := begin(t, db, txn.ReadCommitted)
	rows, err := tx.ScanView("region_totals")
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	out := make(map[string][2]int64, len(rows))
	for _, r := range rows {
		out[r.Key[0].AsString()] = [2]int64{r.Result[0].AsInt(), r.Result[1].AsInt()}
	}
	return out
}

// TestStackedViewCascade drives the 3-level chain through inserts, an update,
// and a delete, checking the top level after every commit.
func TestStackedViewCascade(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyEscrow)

	tx := begin(t, db, txn.ReadCommitted)
	// Two customers in "east" (orders 1,2), one in "west" (order 3).
	for _, r := range []record.Row{
		itemRow(1, 1, 100, "east", 10),
		itemRow(2, 1, 100, "east", 15),
		itemRow(3, 2, 200, "east", 20),
		itemRow(4, 3, 300, "west", 40),
	} {
		if err := tx.Insert("order_items", r); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	got := scanRegionTotals(t, db)
	if got["east"] != [2]int64{2, 45} || got["west"] != [2]int64{1, 40} {
		t.Fatalf("after inserts: %v", got)
	}

	// Update one item's amount: totals shift, customer counts do not.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Update("order_items", record.Row{record.Int(2)},
		map[int]record.Value{4: record.Int(25)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	got = scanRegionTotals(t, db)
	if got["east"] != [2]int64{2, 55} {
		t.Fatalf("after update: %v", got)
	}

	// Delete west's only item: its order, customer, and region rows all fall
	// out of the chain.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("order_items", record.Row{record.Int(4)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	got = scanRegionTotals(t, db)
	if _, ok := got["west"]; ok {
		t.Fatalf("west survived delete: %v", got)
	}
	checkConsistent(t, db)
}

// TestStackedViewFoldCoalescing asserts the structural ≤1-fold-per-
// (view,group)-per-transaction guarantee: a transaction touching many base
// rows of the same groups folds each stacked group exactly once.
func TestStackedViewFoldCoalescing(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyEscrow)

	before := db.met.Cascade.LevelFolds[1].Load()
	beforeTop := db.met.Cascade.LevelFolds[2].Load()

	// 10 items, 2 customers, 1 region — one commit.
	tx := begin(t, db, txn.ReadCommitted)
	for i := int64(0); i < 10; i++ {
		cust := int64(100 + i%2)
		if err := tx.Insert("order_items", itemRow(i, cust, cust, "east", 7)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// Level 1 folds once per touched customer group, level 2 once per region.
	if n := db.met.Cascade.LevelFolds[1].Load() - before; n != 2 {
		t.Fatalf("customer_totals folded %d times, want 2", n)
	}
	if n := db.met.Cascade.LevelFolds[2].Load() - beforeTop; n != 1 {
		t.Fatalf("region_totals folded %d times, want 1", n)
	}
	if db.met.Cascade.Coalesced.Load() == 0 {
		t.Fatal("no cascade contributions coalesced")
	}
	checkConsistent(t, db)
}

// TestGhostCascadeTwoLevels empties a group at the bottom of the chain in one
// transaction: the order row ghosts, and the cascade must retract its
// contribution from both stacked levels (the customer row ghosts too).
func TestGhostCascadeTwoLevels(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyEscrow)

	tx := begin(t, db, txn.ReadCommitted)
	for _, r := range []record.Row{
		itemRow(1, 1, 100, "east", 10),
		itemRow(2, 1, 100, "east", 20),
		itemRow(3, 2, 200, "east", 5),
	} {
		if err := tx.Insert("order_items", r); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// Empty order 1 (customer 100's only order) in one transaction.
	tx = begin(t, db, txn.ReadCommitted)
	for _, item := range []int64{1, 2} {
		if err := tx.Delete("order_items", record.Row{record.Int(item)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	tx = begin(t, db, txn.ReadCommitted)
	if _, ok, err := tx.GetViewRow("customer_totals", record.Row{record.Int(100), record.Str("east")}); err != nil || ok {
		t.Fatalf("customer 100 still visible after ghost cascade (ok=%v err=%v)", ok, err)
	}
	mustCommit(t, tx)
	got := scanRegionTotals(t, db)
	if got["east"] != [2]int64{1, 5} {
		t.Fatalf("after emptying customer 100: %v", got)
	}
	checkConsistent(t, db)
}

// TestDropMidDAGRejected pins the DAG DDL rules: a view with dependents
// cannot be dropped, the error wraps both public sentinels and names the
// dependent, and dropping leaf-first succeeds.
func TestDropMidDAGRejected(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyEscrow)

	err := db.DropView("customer_totals")
	if err == nil {
		t.Fatal("mid-DAG drop succeeded")
	}
	if !errors.Is(err, ErrViewInUse) || !errors.Is(err, ErrInvalidView) {
		t.Fatalf("drop error misses sentinels: %v", err)
	}
	if !strings.Contains(err.Error(), "region_totals") {
		t.Fatalf("drop error does not name the dependent: %v", err)
	}

	// A stacked view over a missing output column is invalid, and says so.
	err = db.CreateIndexedView(catalog.View{
		Name: "bad", Kind: catalog.ViewAggregate, Source: "customer_totals",
		GroupBy:  []string{"region"},
		Aggs:     []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("nope")}},
		Strategy: catalog.StrategyEscrow,
	})
	if !errors.Is(err, ErrInvalidView) || err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad column error: %v", err)
	}

	for _, name := range []string{"region_totals", "customer_totals", "order_totals"} {
		if err := db.DropView(name); err != nil {
			t.Fatalf("drop %s: %v", name, err)
		}
	}
	checkConsistent(t, db)
}

// TestStackedViewConcurrentEscrow hammers the chain with concurrent escrow
// writers; every level must equal its recompute at quiescence.
func TestStackedViewConcurrentEscrow(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyEscrow)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			regions := []string{"east", "west", "north"}
			for i := 0; i < 120; i++ {
				item := int64(w*100_000 + i)
				order := item / 3
				cust := int64(w*10 + i%7)
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if err := tx.Insert("order_items",
					itemRow(item, order, cust, regions[i%3], int64(i%50))); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				if i%5 == 0 {
					tx, err = db.Begin(txn.ReadCommitted)
					if err != nil {
						return
					}
					if err := tx.Delete("order_items", record.Row{record.Int(item)}); err != nil {
						tx.Rollback()
						continue
					}
					tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	checkConsistent(t, db)
}

// TestStackedViewDeferredCascade runs the same chain fully deferred: the
// applier folds each cascade component at one timestamp and every level's
// watermark advances together, so after waiting on the leaf watermark the
// whole chain is exact.
func TestStackedViewDeferredCascade(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyDeferred)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				item := int64(w*100_000 + i)
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					return
				}
				if err := tx.Insert("order_items",
					itemRow(item, item/4, int64(i%9), "east", int64(i))); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	checkConsistent(t, db) // waits for the applier to drain first
	// The cascade ran inside the applier: the stacked levels folded there.
	if db.met.Cascade.LevelFolds[1].Load() == 0 || db.met.Cascade.LevelFolds[2].Load() == 0 {
		t.Fatal("deferred cascade never folded the stacked levels")
	}
}

// TestEscrowParentDeferredChild mixes tiers: the parent folds at commit, and
// its cascade deltas route to the deferred applier instead of folding inline.
func TestEscrowParentDeferredChild(t *testing.T) {
	db := openTestDB(t, Options{})
	err := db.CreateTable("order_items", []catalog.Column{
		{Name: "item", Kind: record.KindInt64},
		{Name: "region", Kind: record.KindString},
		{Name: "amount", Kind: record.KindInt64},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "region_live", Kind: catalog.ViewAggregate, Source: "order_items",
		GroupBy:  []string{"region"},
		Aggs:     []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("amount"), Name: "total"}},
		Strategy: catalog.StrategyEscrow,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "region_lagged", Kind: catalog.ViewAggregate, Source: "region_live",
		GroupBy:  []string{"region"},
		Aggs:     []expr.AggSpec{{Func: expr.AggSum, Arg: expr.NamedCol("total"), Name: "total"}},
		Strategy: catalog.StrategyDeferred,
	}); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db, txn.ReadCommitted)
	for i := int64(0); i < 10; i++ {
		if err := tx.Insert("order_items",
			record.Row{record.Int(i), record.Str("east"), record.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	checkConsistent(t, db)
	if db.met.Cascade.DeferredOut.Load() == 0 {
		t.Fatal("no cascade deltas routed to the deferred applier")
	}
}

// TestRefreshViewCascades refreshes the root of a stacked chain and expects
// the refresh to cover the whole subtree in one system transaction.
func TestRefreshViewCascades(t *testing.T) {
	db := openTestDB(t, Options{})
	setupRollupChain(t, db, catalog.StrategyDeferred)

	tx := begin(t, db, txn.ReadCommitted)
	for i := int64(0); i < 30; i++ {
		if err := tx.Insert("order_items", itemRow(i, i/3, i%5, "east", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	if _, err := db.RefreshView("order_totals"); err != nil {
		t.Fatal(err)
	}
	// Post-refresh (and post-barrier), every level is exact immediately.
	got := scanRegionTotals(t, db)
	if got["east"] != [2]int64{5, 435} { // sum 0..29 = 435, 5 customers
		t.Fatalf("after refresh: %v", got)
	}
	// A second refresh at quiescence changes nothing anywhere in the chain.
	db.waitQuiesced()
	n, err := db.RefreshView("order_totals")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("idle cascading refresh changed %d rows", n)
	}
	if _, err := db.RefreshView("missing"); !errors.Is(err, ErrInvalidView) {
		t.Fatalf("refresh of missing view: %v", err)
	}
	checkConsistent(t, db)
}

// TestStackedViewRecovery crashes mid-life and recovers: WAL replay plus the
// recovery-time cascading refresh must restore every level exactly.
func TestStackedViewRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupRollupChain(t, db, catalog.StrategyEscrow)
	tx := begin(t, db, txn.ReadCommitted)
	for i := int64(0); i < 20; i++ {
		if err := tx.Insert("order_items", itemRow(i, i/2, i%4, "east", 3)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	db.Crash(true)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := scanRegionTotals(t, db2)
	if got["east"] != [2]int64{4, 60} {
		t.Fatalf("after recovery: %v", got)
	}
	checkConsistent(t, db2)
}
