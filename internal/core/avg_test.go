package core

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// setupAvgView creates accounts with an AVG(balance) view — AVG is
// maintained as a (count, sum) pair, so it stays escrowable.
func setupAvgView(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "branch_avg", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggAvg, Arg: expr.Col(2)},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
		Strategy: catalog.StrategyEscrow,
	}); err != nil {
		t.Fatal(err)
	}
}

func avgOf(t *testing.T, db *DB, branch int64) (record.Value, bool) {
	t.Helper()
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	res, ok, err := tx.GetViewRow("branch_avg", record.Row{record.Int(branch)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return record.Null(), false
	}
	return res[0], true
}

func TestAvgViewMaintenance(t *testing.T) {
	db := openTestDB(t, Options{})
	setupAvgView(t, db)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50))

	v, ok := avgOf(t, db, 7)
	if !ok || v.AsFloat() != 75 {
		t.Fatalf("avg = %v", v)
	}
	// Delete one row: AVG follows.
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Delete("accounts", record.Row{record.Int(2)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	v, _ = avgOf(t, db, 7)
	if v.AsFloat() != 100 {
		t.Fatalf("avg after delete = %v", v)
	}
	// NULL balances don't count toward AVG but keep the group alive.
	tx = begin(t, db, txn.ReadCommitted)
	if err := tx.Insert("accounts", record.Row{record.Int(3), record.Int(7), record.Null()}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Null()}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	v, ok = avgOf(t, db, 7)
	if !ok || !v.IsNull() {
		t.Fatalf("avg of all-NULL group = %v (ok=%v), want NULL row present", v, ok)
	}
	checkConsistent(t, db)
}

func TestAvgViewConcurrentEscrow(t *testing.T) {
	// AVG must remain escrowable: concurrent writers on the same group.
	db := openTestDB(t, Options{})
	setupAvgView(t, db)
	const writers = 8
	const per = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					t.Error(err)
					return
				}
				id := int64(w*1000 + i)
				if err := tx.Insert("accounts", acctRow(id, 7, id%10)); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, ok := avgOf(t, db, 7); !ok {
		t.Fatal("group missing")
	}
	checkConsistent(t, db) // recompute-equality covers the AVG cells exactly
}
