package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/applier"
	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/txn"
)

// This file is the control plane of the deferred view-maintenance tier
// (DESIGN.md §9). Transactions against a StrategyDeferred view accumulate
// their cell deltas in the escrow ledger exactly like escrow views, but the
// commit fold routes them here instead of into the B-tree: the commit
// publishes one Batch (stamped with its commit timestamp) to the applier
// queue and returns. A single background goroutine owns the coalescer, folds
// the net per-(view, group) deltas into the view rows inside short system
// transactions, and advances each view's applied watermark through the
// commit-timestamp oracle.
//
// The ordering invariant everything rests on: a committer publishes its batch
// AFTER AllocateCommitTS + stampOps but BEFORE FinishCommit. The oracle's
// read timestamp therefore cannot advance past a commit whose batch is not
// yet in the queue — so a round that first reads wm := oracle.ReadTS() and
// then drains the queue has, after folding, applied every deferred delta of
// every commit with timestamp <= wm, and may publish wm as each deferred
// view's watermark.

// defaultDeferredApplyInterval is the applier's idle tick: how often
// watermarks advance with no publish traffic, and the retry delay after a
// failed fold round.
const defaultDeferredApplyInterval = 5 * time.Millisecond

// deferredQueue is the unbounded multi-producer single-consumer applier
// queue. Publishers must never block — a committer publishes while still
// holding its locks, and a refresh barrier publishes while holding the view's
// tree lock the applier itself may be waiting on, so any bounded/blocking
// design here deadlocks.
type deferredQueue struct {
	mu   sync.Mutex
	msgs []applier.Msg
	wake chan struct{} // cap 1: coalesced wake-up signal
}

func newDeferredQueue() *deferredQueue {
	return &deferredQueue{wake: make(chan struct{}, 1)}
}

// push enqueues one message and wakes the applier; it returns the queue depth
// after the append (for the high-water gauge).
func (q *deferredQueue) push(m applier.Msg) int {
	q.mu.Lock()
	q.msgs = append(q.msgs, m)
	n := len(q.msgs)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return n
}

// take removes and returns every queued message in publish order.
func (q *deferredQueue) take() []applier.Msg {
	q.mu.Lock()
	msgs := q.msgs
	q.msgs = nil
	q.mu.Unlock()
	return msgs
}

// publishDeferred hands one commit's deferred deltas to the applier. Called
// between stampOps and FinishCommit — see the ordering invariant above.
func (db *DB) publishDeferred(b *applier.Batch) {
	n := db.applierQ.push(applier.Msg{Batch: b})
	db.met.Deferred.ObserveQueueDepth(n)
	db.met.Deferred.PublishedBatches.Add(1)
	db.met.Deferred.PublishedGroups.Add(int64(len(b.Groups)))
}

// publishDeferredBarrier tells the applier a view was recomputed from its
// base tables as of commit timestamp ts (refresh / create backfill), or
// dropped. Called from a system transaction's pre-FinishCommit hook, while
// the transaction still holds the base tables' S locks — which is what orders
// the barrier before any batch whose deltas the recompute missed.
func (db *DB) publishDeferredBarrier(tree id.Tree, ts uint64, drop bool) {
	n := db.applierQ.push(applier.Msg{Barrier: &applier.Barrier{Tree: tree, TS: ts, Drop: drop}})
	db.met.Deferred.ObserveQueueDepth(n)
}

// applierLoop is the WAL-tailing applier: it drains the publish queue on each
// wake-up, folds coalesced deltas into the deferred views, and advances
// watermarks. The idle tick keeps watermarks tracking the oracle's read
// timestamp when commits publish nothing, and retries failed rounds.
func (db *DB) applierLoop(interval time.Duration) {
	defer close(db.applierDone)
	co := applier.NewCoalescer()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-db.applierStop:
			if db.applierDrainOnStop.Load() {
				// Clean shutdown: one best-effort final round so a closed
				// database reopens with converged views.
				db.applierRound(co)
			}
			return
		case <-db.applierQ.wake:
			db.applierRound(co)
		case <-tick.C:
			db.applierRound(co)
		}
	}
}

// applierRound is one drain-fold-publish cycle. Only the applier goroutine
// calls it; co is owned exclusively.
func (db *DB) applierRound(co *applier.Coalescer) {
	// Read the frontier BEFORE draining: every commit <= wm published before
	// FinishCommit let wm reach it, so the drain below captures its batch.
	wm := db.oracle.ReadTS()
	msgs := db.applierQ.take()
	var minWall int64
	for _, m := range msgs {
		switch {
		case m.Batch != nil:
			in, coalesced := co.Add(m.Batch)
			db.met.Deferred.DeltasIn.Add(int64(in))
			db.met.Deferred.DeltasCoalesced.Add(int64(coalesced))
			if minWall == 0 || m.Batch.WallNs < minWall {
				minWall = m.Batch.WallNs
			}
		case m.Barrier != nil:
			// Everything pending for the tree precedes the barrier in queue
			// order, so it is already incorporated in the recompute (or gone
			// with the dropped view).
			co.DropTree(m.Barrier.Tree)
			if m.Barrier.Drop {
				db.oracle.DropViewWatermark(m.Barrier.Tree)
			} else {
				db.oracle.AdvanceViewWatermark(m.Barrier.Tree, m.Barrier.TS)
			}
		}
	}

	groups := co.Take()
	failed := make(map[id.Tree]bool)
	if len(groups) > 0 {
		// Fold rounds are gate-admitted actors like any other writer: the
		// system transactions below append to the WAL, which Checkpoint swaps
		// under the exclusive gate. (Quiescence waiters never block on the
		// applier while holding the gate — CheckConsistency waits first and
		// only polls after locking.)
		db.gate.RLock()
		start := time.Now()
		applied := 0
		var retry []applier.GroupDelta
		// Partition the round's groups into deferred cascade components: a
		// deferred parent and its (necessarily deferred) dependents fold in
		// one system transaction at one commit timestamp, so a snapshot
		// reader never observes a parent level ahead of its children.
		cat := db.Catalog()
		rootOf := make(map[id.Tree]id.Tree)
		members := make(map[id.Tree][]*catalog.View)
		for _, v := range db.deferredViews() {
			r := deferredComponentRoot(cat, v)
			rootOf[v.ID] = r
			members[r] = append(members[r], v)
		}
		comp := make(map[id.Tree][]applier.GroupDelta)
		var order []id.Tree
		for _, g := range groups {
			r, ok := rootOf[g.Tree]
			if !ok {
				continue // view dropped while its deltas were pending
			}
			if _, seen := comp[r]; !seen {
				order = append(order, r)
			}
			comp[r] = append(comp[r], g)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, r := range order {
			ms := members[r]
			sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
			if err := db.applyDeferredComponent(ms, comp[r]); err != nil {
				// The component's system transaction rolled back whole; keep
				// its groups pending (merging with later publishes) and hold
				// every member's watermark until a retry succeeds.
				for _, v := range ms {
					failed[v.ID] = true
				}
				retry = append(retry, comp[r]...)
			} else {
				applied += len(comp[r])
			}
		}
		if len(retry) > 0 {
			co.AddGroups(retry)
			db.met.Deferred.RetryRounds.Add(1)
		}
		if applied > 0 {
			db.met.Deferred.ApplyRounds.Add(1)
			db.met.Deferred.GroupsApplied.Add(int64(applied))
			db.met.Deferred.Apply.Observe(time.Since(start))
		}
		db.gate.RUnlock()
	}
	db.advanceDeferredWatermarks(wm, failed)

	// Staleness gauge: age of the oldest publish not yet folded.
	if co.Len() == 0 {
		db.deferredOldestNs.Store(0)
	} else if db.deferredOldestNs.Load() == 0 {
		if minWall == 0 {
			minWall = time.Now().UnixNano()
		}
		db.deferredOldestNs.Store(minWall)
	}
	db.deferredPending.Store(int64(co.Len()))
}

// advanceDeferredWatermarks publishes wm for every deferred view in the
// catalog except those whose fold round just failed.
func (db *DB) advanceDeferredWatermarks(wm uint64, except map[id.Tree]bool) {
	for _, v := range db.Catalog().Views() {
		if v.Strategy != catalog.StrategyDeferred || except[v.ID] {
			continue
		}
		db.oracle.AdvanceViewWatermark(v.ID, wm)
	}
}

// deferredComponentRoot walks v's source chain upward through deferred views
// and returns the topmost one's tree — the cascade component v folds under.
// Flat deferred views (source is a base table, or a non-deferred view) are
// their own component root.
func deferredComponentRoot(cat *catalog.Catalog, v *catalog.View) id.Tree {
	for {
		p, err := cat.View(v.Left)
		if err != nil || p.Strategy != catalog.StrategyDeferred {
			return v.ID
		}
		v = p
	}
}

// applyDeferredComponent folds one deferred cascade component's coalesced
// group deltas in a single system transaction: member trees X-lock in
// ascending ID order (the DAG's topological order, so every multi-tree locker
// agrees on the order), folds proceed in the same order with each parent row
// change cascading into its dependents through the fold queue, and the whole
// cascade commits at one timestamp — every member's watermark then advances
// together, so no reader ever sees a torn cross-level state. The applier
// still holds only this one component's locks at a time; if a user
// transaction's read entangles it in a deadlock, the system transaction rolls
// back whole and the round retries.
func (db *DB) applyDeferredComponent(members []*catalog.View, groups []applier.GroupDelta) error {
	root := db.reg.Maintainer(members[0].ID)
	if root == nil {
		return nil // component dropped while its deltas were pending
	}
	start := time.Now()
	err := db.runSysTxn(func(st *txn.Txn) error {
		for _, v := range members {
			if err := db.lockTree(st, v.ID, lock.ModeX); err != nil {
				return err
			}
		}
		q := newFoldQueue()
		for _, g := range groups {
			for _, d := range g.Deltas {
				if d.IsFloat {
					q.add(g.Tree, g.Key, d.Col, escrow.Delta{Float: d.Float})
				} else {
					q.add(g.Tree, g.Key, d.Col, escrow.Delta{Int: d.Int})
				}
			}
		}
		for {
			tid, rows, ok := q.popMinTree()
			if !ok {
				break
			}
			m := db.reg.Maintainer(tid)
			if m == nil {
				continue // dropped mid-flight (its dependents went with it)
			}
			children := db.Catalog().ViewsOn(m.V.Name)
			for _, k := range sortedRowKeys(rows) {
				ds := dropZeroDeltas(rows[k])
				if len(ds) == 0 {
					continue
				}
				// Deferred maintenance creates no ghosts up front: a new
				// group's row is created by the fold itself.
				fr, err := db.foldRow(st, escrow.RowID{Tree: tid, Key: k}, ds, true)
				if err != nil {
					return err
				}
				db.met.Cascade.ObserveFold(m.V.Level())
				if len(children) > 0 {
					if err := db.enqueueCascade(q, m, []byte(k), fr, children); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err == nil && db.tracer != nil {
		db.tracer.TraceEvent(metrics.Event{
			Type:     metrics.EventDeferredApply,
			Resource: root.V.Name,
			Rows:     len(groups),
			Dur:      time.Since(start),
		})
	}
	return err
}

// deferredViews lists the catalog's deferred views.
func (db *DB) deferredViews() []*catalog.View {
	var out []*catalog.View
	for _, v := range db.Catalog().Views() {
		if v.Strategy == catalog.StrategyDeferred {
			out = append(out, v)
		}
	}
	return out
}

// ViewWatermark reports the highest commit timestamp whose effects are
// visible in the view: the applier's applied watermark for a deferred view,
// or the oracle's read timestamp for an immediately maintained one (which is
// never stale).
func (db *DB) ViewWatermark(viewName string) (uint64, error) {
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return 0, err
	}
	if v.Strategy != catalog.StrategyDeferred {
		return db.oracle.ReadTS(), nil
	}
	return db.oracle.ViewWatermark(v.ID), nil
}

// WaitForViewWatermark blocks until the view's watermark reaches ts or ctx is
// done. It is the read-your-writes barrier for deferred views: wait for your
// own Tx.CommitTS and the applier has folded your deltas. Immediate views
// satisfy any wait at once.
func (db *DB) WaitForViewWatermark(ctx context.Context, viewName string, ts uint64) error {
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return err
	}
	if v.Strategy != catalog.StrategyDeferred {
		return nil
	}
	return db.oracle.WaitForViewWatermark(ctx, v.ID, ts)
}

// ViewWatermark is DB.ViewWatermark scoped to the transaction's database —
// the handle a reader already holds.
func (tx *Tx) ViewWatermark(viewName string) (uint64, error) {
	return tx.db.ViewWatermark(viewName)
}

// waitDeferredCaughtUp blocks until every deferred view's watermark reaches
// the oracle's current read timestamp — i.e. the applier has folded
// everything committed before the call.
func (db *DB) waitDeferredCaughtUp(timeout time.Duration) error {
	views := db.deferredViews()
	if len(views) == 0 {
		return nil
	}
	target := db.oracle.ReadTS()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, v := range views {
		if err := db.oracle.WaitForViewWatermark(ctx, v.ID, target); err != nil {
			return fmt.Errorf("core: deferred view %q watermark %d still behind read-ts %d: %w",
				v.Name, db.oracle.ViewWatermark(v.ID), target, err)
		}
	}
	return nil
}

// deferredCaughtUp reports (without blocking) whether every deferred view's
// watermark has reached the current read timestamp.
func (db *DB) deferredCaughtUp() bool {
	target := db.oracle.ReadTS()
	for _, v := range db.deferredViews() {
		if db.oracle.ViewWatermark(v.ID) < target {
			return false
		}
	}
	return true
}
