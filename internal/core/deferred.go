package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/applier"
	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/txn"
)

// This file is the control plane of the deferred view-maintenance tier
// (DESIGN.md §9). Transactions against a StrategyDeferred view accumulate
// their cell deltas in the escrow ledger exactly like escrow views, but the
// commit fold routes them here instead of into the B-tree: the commit
// publishes one Batch (stamped with its commit timestamp) to the applier
// queue and returns. A single background goroutine owns the coalescer, folds
// the net per-(view, group) deltas into the view rows inside short system
// transactions, and advances each view's applied watermark through the
// commit-timestamp oracle.
//
// The ordering invariant everything rests on: a committer publishes its batch
// AFTER AllocateCommitTS + stampOps but BEFORE FinishCommit. The oracle's
// read timestamp therefore cannot advance past a commit whose batch is not
// yet in the queue — so a round that first reads wm := oracle.ReadTS() and
// then drains the queue has, after folding, applied every deferred delta of
// every commit with timestamp <= wm, and may publish wm as each deferred
// view's watermark.

// defaultDeferredApplyInterval is the applier's idle tick: how often
// watermarks advance with no publish traffic, and the retry delay after a
// failed fold round.
const defaultDeferredApplyInterval = 5 * time.Millisecond

// deferredQueue is the unbounded multi-producer single-consumer applier
// queue. Publishers must never block — a committer publishes while still
// holding its locks, and a refresh barrier publishes while holding the view's
// tree lock the applier itself may be waiting on, so any bounded/blocking
// design here deadlocks.
type deferredQueue struct {
	mu   sync.Mutex
	msgs []applier.Msg
	wake chan struct{} // cap 1: coalesced wake-up signal
}

func newDeferredQueue() *deferredQueue {
	return &deferredQueue{wake: make(chan struct{}, 1)}
}

// push enqueues one message and wakes the applier; it returns the queue depth
// after the append (for the high-water gauge).
func (q *deferredQueue) push(m applier.Msg) int {
	q.mu.Lock()
	q.msgs = append(q.msgs, m)
	n := len(q.msgs)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return n
}

// take removes and returns every queued message in publish order.
func (q *deferredQueue) take() []applier.Msg {
	q.mu.Lock()
	msgs := q.msgs
	q.msgs = nil
	q.mu.Unlock()
	return msgs
}

// oldestPerTree scans the queued (not yet drained) batches and returns the
// earliest publish wall clock per view tree. It is the staleness clock's view
// of work the applier has not even picked up yet — which is exactly the part
// that grows when the applier itself is stuck mid-round.
func (q *deferredQueue) oldestPerTree() map[id.Tree]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out map[id.Tree]int64
	for _, m := range q.msgs {
		if m.Batch == nil || m.Batch.WallNs == 0 {
			continue
		}
		for _, g := range m.Batch.Groups {
			if out == nil {
				out = make(map[id.Tree]int64)
			}
			if cur, ok := out[g.Tree]; !ok || m.Batch.WallNs < cur {
				out[g.Tree] = m.Batch.WallNs
			}
		}
	}
	return out
}

// publishDeferred hands one commit's deferred deltas to the applier. Called
// between stampOps and FinishCommit — see the ordering invariant above. The
// publishing transaction rides along (as Batch.Span and the trace event's Txn)
// so the flight record links the commit to the applier work it caused.
func (db *DB) publishDeferred(b *applier.Batch, t id.Txn) {
	n := db.applierQ.push(applier.Msg{Batch: b})
	db.met.Deferred.ObserveQueueDepth(n)
	db.met.Deferred.PublishedBatches.Add(1)
	db.met.Deferred.PublishedGroups.Add(int64(len(b.Groups)))
	if db.tracer != nil {
		db.tracer.TraceEvent(metrics.Event{
			Type: metrics.EventDeferredPublish,
			Txn:  t,
			Rows: len(b.Groups),
		})
	}
}

// publishDeferredBarrier tells the applier a view was recomputed from its
// base tables as of commit timestamp ts (refresh / create backfill), or
// dropped. Called from a system transaction's pre-FinishCommit hook, while
// the transaction still holds the base tables' S locks — which is what orders
// the barrier before any batch whose deltas the recompute missed.
func (db *DB) publishDeferredBarrier(tree id.Tree, ts uint64, drop bool) {
	n := db.applierQ.push(applier.Msg{Barrier: &applier.Barrier{Tree: tree, TS: ts, Drop: drop}})
	db.met.Deferred.ObserveQueueDepth(n)
}

// applierLoop is the WAL-tailing applier: it drains the publish queue on each
// wake-up, folds coalesced deltas into the deferred views, and advances
// watermarks. The idle tick keeps watermarks tracking the oracle's read
// timestamp when commits publish nothing, and retries failed rounds.
func (db *DB) applierLoop(interval time.Duration) {
	defer close(db.applierDone)
	co := applier.NewCoalescer()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-db.applierStop:
			if db.applierDrainOnStop.Load() {
				// Clean shutdown: one best-effort final round so a closed
				// database reopens with converged views.
				db.applierRound(co)
			}
			return
		case <-db.applierQ.wake:
			db.applierRound(co)
		case <-tick.C:
			db.applierRound(co)
		}
	}
}

// applierRound is one drain-fold-publish cycle. Only the applier goroutine
// calls it; co is owned exclusively.
func (db *DB) applierRound(co *applier.Coalescer) {
	// Read the frontier BEFORE draining: every commit <= wm published before
	// FinishCommit let wm reach it, so the drain below captures its batch.
	wm := db.oracle.ReadTS()
	msgs := db.applierQ.take()
	var minWall int64
	for _, m := range msgs {
		switch {
		case m.Batch != nil:
			in, coalesced := co.Add(m.Batch)
			db.met.Deferred.DeltasIn.Add(int64(in))
			db.met.Deferred.DeltasCoalesced.Add(int64(coalesced))
			if minWall == 0 || m.Batch.WallNs < minWall {
				minWall = m.Batch.WallNs
			}
		case m.Barrier != nil:
			// Everything pending for the tree precedes the barrier in queue
			// order, so it is already incorporated in the recompute (or gone
			// with the dropped view).
			co.DropTree(m.Barrier.Tree)
			if m.Barrier.Drop {
				db.oracle.DropViewWatermark(m.Barrier.Tree)
			} else {
				db.oracle.AdvanceViewWatermark(m.Barrier.Tree, m.Barrier.TS)
			}
		}
	}

	groups := co.Take()
	// Per-view staleness clocks: while this round runs, the in-flight groups
	// (including a component a delay fault is holding hostage) keep their
	// views' staleness growing; Metrics merges this with the undrained queue.
	stale := make(map[id.Tree]int64)
	for _, g := range groups {
		if g.OldestWallNs == 0 {
			continue
		}
		if cur, ok := stale[g.Tree]; !ok || g.OldestWallNs < cur {
			stale[g.Tree] = g.OldestWallNs
		}
	}
	db.setDeferredStale(stale)
	failed := make(map[id.Tree]bool)
	var folded []deferredFold
	if len(groups) > 0 {
		// Fold rounds are gate-admitted actors like any other writer: the
		// system transactions below append to the WAL, which Checkpoint swaps
		// under the exclusive gate. (Quiescence waiters never block on the
		// applier while holding the gate — CheckConsistency waits first and
		// only polls after locking.)
		db.gate.RLock()
		start := time.Now()
		applied := 0
		var retry []applier.GroupDelta
		// Partition the round's groups into deferred cascade components: a
		// deferred parent and its (necessarily deferred) dependents fold in
		// one system transaction at one commit timestamp, so a snapshot
		// reader never observes a parent level ahead of its children.
		cat := db.Catalog()
		rootOf := make(map[id.Tree]id.Tree)
		members := make(map[id.Tree][]*catalog.View)
		for _, v := range db.deferredViews() {
			r := deferredComponentRoot(cat, v)
			rootOf[v.ID] = r
			members[r] = append(members[r], v)
		}
		comp := make(map[id.Tree][]applier.GroupDelta)
		var order []id.Tree
		for _, g := range groups {
			r, ok := rootOf[g.Tree]
			if !ok {
				continue // view dropped while its deltas were pending
			}
			if _, seen := comp[r]; !seen {
				order = append(order, r)
			}
			comp[r] = append(comp[r], g)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, r := range order {
			ms := members[r]
			sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
			if folds, err := db.applyDeferredComponent(ms, comp[r], wm); err != nil {
				// The component's system transaction rolled back whole; keep
				// its groups pending (merging with later publishes) and hold
				// every member's watermark until a retry succeeds.
				for _, v := range ms {
					failed[v.ID] = true
				}
				retry = append(retry, comp[r]...)
			} else {
				applied += len(comp[r])
				folded = append(folded, folds...)
			}
		}
		if len(retry) > 0 {
			co.AddGroups(retry)
			db.met.Deferred.RetryRounds.Add(1)
		}
		if applied > 0 {
			db.met.Deferred.ApplyRounds.Add(1)
			db.met.Deferred.GroupsApplied.Add(int64(applied))
			db.met.Deferred.Apply.Observe(time.Since(start))
		}
		db.gate.RUnlock()
	}
	db.advanceDeferredWatermarks(wm, failed)

	// The watermark advance above is the moment this round's folds became
	// snapshot-visible: observe each folded view's commit-to-visible latency
	// (one sample per contributing publish clock) and stamp the advance with
	// the originating spans so the flight record links commit → publish →
	// fold → visible.
	if len(folded) > 0 {
		nowNs := time.Now().UnixNano()
		for _, f := range folded {
			var oldest int64
			fresh := db.met.Freshness.Get(f.tree)
			for _, w := range f.groupWalls {
				if oldest == 0 || w < oldest {
					oldest = w
				}
				if d := nowNs - w; d > 0 && fresh != nil {
					fresh.CommitToVisible.Observe(time.Duration(d))
				}
			}
			if db.tracer != nil {
				var age time.Duration
				if oldest != 0 && nowNs > oldest {
					age = time.Duration(nowNs - oldest)
				}
				db.tracer.TraceEvent(metrics.Event{
					Type:     metrics.EventWatermarkAdvance,
					Resource: f.name,
					Rows:     int(wm),
					Dur:      age,
					Spans:    f.spans,
				})
			}
		}
	}

	// Staleness gauges: engine-wide age of the oldest publish not yet folded,
	// and the per-view clocks (now only the retry groups still pending).
	if co.Len() == 0 {
		db.deferredOldestNs.Store(0)
	} else if db.deferredOldestNs.Load() == 0 {
		if minWall == 0 {
			minWall = time.Now().UnixNano()
		}
		db.deferredOldestNs.Store(minWall)
	}
	db.deferredPending.Store(int64(co.Len()))
	end := make(map[id.Tree]int64)
	if co.Len() > 0 {
		for _, v := range db.deferredViews() {
			if w := co.OldestPendingWallNs(v.ID); w != 0 {
				end[v.ID] = w
			}
		}
	}
	db.setDeferredStale(end)
}

// setDeferredStale replaces the applier's per-view oldest-unapplied-publish
// table (wall-clock ns per view tree). Metrics reads it alongside the queue
// scan to compute each view's current staleness.
func (db *DB) setDeferredStale(m map[id.Tree]int64) {
	db.deferredStaleMu.Lock()
	db.deferredStale = m
	db.deferredStaleMu.Unlock()
}

// deferredStaleOldest returns the per-view oldest-unapplied-publish clocks:
// the applier's in-flight/retry table merged (min-wins) with the undrained
// queue. A view absent from the result is caught up.
func (db *DB) deferredStaleOldest() map[id.Tree]int64 {
	out := db.applierQ.oldestPerTree()
	db.deferredStaleMu.Lock()
	for tree, w := range db.deferredStale {
		if out == nil {
			out = make(map[id.Tree]int64)
		}
		if cur, ok := out[tree]; !ok || w < cur {
			out[tree] = w
		}
	}
	db.deferredStaleMu.Unlock()
	return out
}

// advanceDeferredWatermarks publishes wm for every deferred view in the
// catalog except those whose fold round just failed.
func (db *DB) advanceDeferredWatermarks(wm uint64, except map[id.Tree]bool) {
	for _, v := range db.Catalog().Views() {
		if v.Strategy != catalog.StrategyDeferred || except[v.ID] {
			continue
		}
		db.oracle.AdvanceViewWatermark(v.ID, wm)
	}
}

// deferredComponentRoot walks v's source chain upward through deferred views
// and returns the topmost one's tree — the cascade component v folds under.
// Flat deferred views (source is a base table, or a non-deferred view) are
// their own component root.
func deferredComponentRoot(cat *catalog.Catalog, v *catalog.View) id.Tree {
	for {
		p, err := cat.View(v.Left)
		if err != nil || p.Strategy != catalog.StrategyDeferred {
			return v.ID
		}
		v = p
	}
}

// deferredFold is one member view's share of a successful component round:
// the rows folded into it, the originating commit spans that caused them, and
// the contributing publish clocks — everything the round needs to emit linked
// watermark-advance events and commit-to-visible samples after the advance.
type deferredFold struct {
	tree id.Tree
	name string
	rows int
	// spans are the originating commits' causal spans: the view's own input
	// groups' spans, or (for a stacked level fed only by the cascade) the
	// union across the component's inputs.
	spans []uint64
	// groupWalls are the contributing publishes' wall clocks (one commit-to-
	// visible sample each); cascade-only levels inherit the component's oldest.
	groupWalls []int64
}

// applyDeferredComponent folds one deferred cascade component's coalesced
// group deltas in a single system transaction: member trees X-lock in
// ascending ID order (the DAG's topological order, so every multi-tree locker
// agrees on the order), folds proceed in the same order with each parent row
// change cascading into its dependents through the fold queue, and the whole
// cascade commits at one timestamp — every member's watermark then advances
// together, so no reader ever sees a torn cross-level state. The applier
// still holds only this one component's locks at a time; if a user
// transaction's read entangles it in a deadlock, the system transaction rolls
// back whole and the round retries. On success it returns one deferredFold
// per member level actually folded, each stamped per-level with its
// originating spans (EventDeferredApply carries them too).
//
// wm is the round's frontier: the fold covers every deferred delta of every
// commit <= wm. The pre-finish hook publishes each member's (applyTS=fold ts,
// watermark=wm) pair through the oracle BEFORE FinishCommit makes the fold
// visible — so any snapshot timestamp at which the fold is visible was pinned
// after the pair updated. The scrubber's pair protocol (internal/scrub)
// depends on exactly this ordering.
func (db *DB) applyDeferredComponent(members []*catalog.View, groups []applier.GroupDelta, wm uint64) ([]deferredFold, error) {
	root := db.reg.Maintainer(members[0].ID)
	if root == nil {
		return nil, nil // component dropped while its deltas were pending
	}
	if err := db.hit(fault.PointDeferredApply); err != nil {
		return nil, err
	}
	// Causality of the fold: which publishes fed which member level. Direct
	// input spans/clocks attribute per tree; cascade-only levels (stacked
	// children with no direct deltas) inherit the whole component's.
	inSpans := make(map[id.Tree][]uint64)
	inWalls := make(map[id.Tree][]int64)
	var compSpans []uint64
	var compOldest int64
	for _, g := range groups {
		inSpans[g.Tree] = applier.MergeSpans(inSpans[g.Tree], g.Spans)
		compSpans = applier.MergeSpans(compSpans, g.Spans)
		if g.OldestWallNs != 0 {
			inWalls[g.Tree] = append(inWalls[g.Tree], g.OldestWallNs)
			if compOldest == 0 || g.OldestWallNs < compOldest {
				compOldest = g.OldestWallNs
			}
		}
	}
	start := time.Now()
	var folds []deferredFold
	err := db.runSysTxnHook(func(st *txn.Txn) error {
		folds = folds[:0] // a retried closure starts the tally over
		for _, v := range members {
			if err := db.lockTree(st, v.ID, lock.ModeX); err != nil {
				return err
			}
		}
		q := newFoldQueue()
		for _, g := range groups {
			for _, d := range g.Deltas {
				if d.IsFloat {
					q.add(g.Tree, g.Key, d.Col, escrow.Delta{Float: d.Float})
				} else {
					q.add(g.Tree, g.Key, d.Col, escrow.Delta{Int: d.Int})
				}
			}
		}
		for {
			tid, rows, ok := q.popMinTree()
			if !ok {
				break
			}
			m := db.reg.Maintainer(tid)
			if m == nil {
				continue // dropped mid-flight (its dependents went with it)
			}
			children := db.Catalog().ViewsOn(m.V.Name)
			level := deferredFold{tree: tid, name: m.V.Name}
			for _, k := range sortedRowKeys(rows) {
				ds := dropZeroDeltas(rows[k])
				if len(ds) == 0 {
					continue
				}
				// Deferred maintenance creates no ghosts up front: a new
				// group's row is created by the fold itself.
				fr, err := db.foldRow(st, escrow.RowID{Tree: tid, Key: k}, ds, true)
				if err != nil {
					return err
				}
				level.rows++
				db.met.Cascade.ObserveFold(m.V.Level())
				if len(children) > 0 {
					if err := db.enqueueCascade(q, m, []byte(k), fr, children); err != nil {
						return err
					}
				}
			}
			if level.rows > 0 {
				if level.spans = inSpans[tid]; len(level.spans) == 0 {
					level.spans = compSpans
				}
				if level.groupWalls = inWalls[tid]; len(level.groupWalls) == 0 && compOldest != 0 {
					level.groupWalls = []int64{compOldest}
				}
				folds = append(folds, level)
			}
		}
		return nil
	}, func(ts uint64) {
		// Publish the (fold ts, frontier) pair before FinishCommit: the
		// scrubber's pair-read/snapshot-pin ordering is sound only because a
		// fold visible at a pinned timestamp already updated the pair.
		for _, v := range members {
			db.oracle.AdvanceViewApplied(v.ID, ts, wm)
		}
	})
	if err != nil {
		return nil, err
	}
	if db.tracer != nil {
		dur := time.Since(start)
		for _, f := range folds {
			db.tracer.TraceEvent(metrics.Event{
				Type:     metrics.EventDeferredApply,
				Resource: f.name,
				Rows:     f.rows,
				Dur:      dur,
				Spans:    f.spans,
			})
		}
	}
	return folds, nil
}

// deferredViews lists the catalog's deferred views.
func (db *DB) deferredViews() []*catalog.View {
	var out []*catalog.View
	for _, v := range db.Catalog().Views() {
		if v.Strategy == catalog.StrategyDeferred {
			out = append(out, v)
		}
	}
	return out
}

// ViewWatermark reports the highest commit timestamp whose effects are
// visible in the view: the applier's applied watermark for a deferred view,
// or the oracle's read timestamp for an immediately maintained one (which is
// never stale).
func (db *DB) ViewWatermark(viewName string) (uint64, error) {
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return 0, err
	}
	if v.Strategy != catalog.StrategyDeferred {
		return db.oracle.ReadTS(), nil
	}
	return db.oracle.ViewWatermark(v.ID), nil
}

// WaitForViewWatermark blocks until the view's watermark reaches ts or ctx is
// done. It is the read-your-writes barrier for deferred views: wait for your
// own Tx.CommitTS and the applier has folded your deltas. Immediate views
// satisfy any wait at once.
func (db *DB) WaitForViewWatermark(ctx context.Context, viewName string, ts uint64) error {
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return err
	}
	if v.Strategy != catalog.StrategyDeferred {
		return nil
	}
	return db.oracle.WaitForViewWatermark(ctx, v.ID, ts)
}

// ViewWatermark is DB.ViewWatermark scoped to the transaction's database —
// the handle a reader already holds.
func (tx *Tx) ViewWatermark(viewName string) (uint64, error) {
	return tx.db.ViewWatermark(viewName)
}

// waitDeferredCaughtUp blocks until every deferred view's watermark reaches
// the oracle's current read timestamp — i.e. the applier has folded
// everything committed before the call.
func (db *DB) waitDeferredCaughtUp(timeout time.Duration) error {
	views := db.deferredViews()
	if len(views) == 0 {
		return nil
	}
	target := db.oracle.ReadTS()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, v := range views {
		if err := db.oracle.WaitForViewWatermark(ctx, v.ID, target); err != nil {
			return fmt.Errorf("core: deferred view %q watermark %d still behind read-ts %d: %w",
				v.Name, db.oracle.ViewWatermark(v.ID), target, err)
		}
	}
	return nil
}

// deferredCaughtUp reports (without blocking) whether every deferred view's
// watermark has reached the current read timestamp.
func (db *DB) deferredCaughtUp() bool {
	target := db.oracle.ReadTS()
	for _, v := range db.deferredViews() {
		if db.oracle.ViewWatermark(v.ID) < target {
			return false
		}
	}
	return true
}
