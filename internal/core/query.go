package core

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/view"
	"repro/internal/wal"
)

// Get returns the row with the given primary key, or ok=false. Locking
// follows the isolation level: ReadCommitted takes a momentary S lock
// (blocking on uncommitted writers, releasing after the read); higher levels
// hold the S lock to end of transaction.
func (tx *Tx) Get(table string, pk record.Row) (record.Row, bool, error) {
	if err := tx.check(); err != nil {
		return nil, false, err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return nil, false, err
	}
	key, err := pkKey(tbl, pk)
	if err != nil {
		return nil, false, err
	}
	var val []byte
	var ghost, ok bool
	if tx.t.Isolation == txn.Snapshot {
		if val, ghost, ok, err = db.snapshotRow(tbl.ID, key, tx.readTS, tx.t.ID); err != nil {
			return nil, false, err
		}
	} else {
		if err := db.lockTree(tx.t, tbl.ID, lock.ModeIS); err != nil {
			return nil, false, err
		}
		if err := db.readLock(tx, tbl.ID, key); err != nil {
			return nil, false, err
		}
		val, ghost, ok = db.tree(tbl.ID).Get(key)
	}
	if !ok || ghost {
		return nil, false, nil
	}
	row, err := record.DecodeRow(val)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// readLock implements the per-row read lock for the transaction's level.
func (db *DB) readLock(tx *Tx, tree id.Tree, key []byte) error {
	switch tx.t.Isolation {
	case txn.ReadCommitted:
		return db.momentaryS(tx.t, tree, key)
	case txn.Snapshot:
		// Snapshot readers resolve against version chains; no lock.
		return nil
	default:
		return db.lockKey(tx.t, tree, key, lock.ModeS)
	}
}

// ScanTable visits live rows of a table in primary-key order, within
// [loPK, hiPK) (nil bounds mean open ends). ReadCommitted re-reads each row
// under a momentary S lock; RepeatableRead holds S locks on the rows read;
// Serializable additionally key-range locks the scanned range (each row
// plus the range's end anchor), which together with insert-time next-key
// locking blocks phantoms.
func (tx *Tx) ScanTable(table string, loPK, hiPK record.Row, fn func(record.Row) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	var lo, hi []byte
	if loPK != nil {
		lo = record.EncodeKey(loPK)
	}
	if hiPK != nil {
		hi = record.EncodeKey(hiPK)
	}
	if tx.t.Isolation != txn.Snapshot {
		if err := db.lockTree(tx.t, tbl.ID, lock.ModeIS); err != nil {
			return err
		}
	}
	return db.scanForLevel(tx, tbl.ID, lo, hi, func(_, val []byte) (bool, error) {
		row, err := record.DecodeRow(val)
		if err != nil {
			return false, err
		}
		return fn(row), nil
	})
}

// GetViewRow reads one group of an aggregate view (or one row of a
// projection view, keyed by source PKs). For aggregate escrow views the
// stored value is committed by construction, so ReadCommitted readers read
// latch-only — they never block on escrow writers. Serializable (and
// RepeatableRead) readers take S locks, which conflict with E: they block
// until in-flux groups commit (DESIGN.md §5). X-lock-maintained views
// contain uncommitted data, so even ReadCommitted locks momentarily.
func (tx *Tx) GetViewRow(viewName string, keyRow record.Row) (record.Row, bool, error) {
	if err := tx.check(); err != nil {
		return nil, false, err
	}
	db := tx.db
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return nil, false, err
	}
	m := db.reg.Maintainer(v.ID)
	key := record.EncodeKey(keyRow)
	if tx.t.Isolation == txn.Snapshot {
		// Resolve the group at the pinned read timestamp: committed escrow
		// deltas up to the timestamp fold into the stored value, pending ones
		// stay invisible — no lock-manager traffic, no blocking of writers.
		val, ghost, ok, err := db.snapshotRow(v.ID, key, tx.readTS, tx.t.ID)
		if err != nil || !ok || ghost {
			return nil, false, err
		}
		stored, err := record.DecodeRow(val)
		if err != nil {
			return nil, false, err
		}
		if v.Kind == catalog.ViewProjection {
			return stored, true, nil
		}
		res, err := m.Result(stored)
		if err != nil {
			return nil, false, err
		}
		return res, true, nil
	}
	if err := db.lockTree(tx.t, v.ID, lock.ModeIS); err != nil {
		return nil, false, err
	}
	switch {
	case tx.t.Isolation != txn.ReadCommitted:
		if err := db.lockKey(tx.t, v.ID, key, lock.ModeS); err != nil {
			return nil, false, err
		}
	case v.Strategy == catalog.StrategyEscrow && v.Kind == catalog.ViewAggregate:
		// Committed values by construction: no lock.
	case v.Strategy == catalog.StrategyDeferred:
		// Deferred rows are written only by the applier's committed system
		// transactions, so the stored value is committed (if bounded-stale):
		// no lock. Snapshot isolation reads exactly at the watermark.
	default:
		if err := db.momentaryS(tx.t, v.ID, key); err != nil {
			return nil, false, err
		}
	}
	val, ghost, ok := db.tree(v.ID).Get(key)
	if !ok || ghost {
		return nil, false, nil
	}
	stored, err := record.DecodeRow(val)
	if err != nil {
		return nil, false, err
	}
	if v.Kind == catalog.ViewProjection {
		return stored, true, nil
	}
	res, err := m.Result(stored)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// ViewRow pairs a view key with its user-visible result row.
type ViewRow struct {
	Key    record.Row
	Result record.Row
}

// ScanView returns every live row of a view: group keys with aggregate
// results, or projection rows. Locking follows GetViewRow's rules, at tree
// granularity for Serializable/RepeatableRead.
func (tx *Tx) ScanView(viewName string) ([]ViewRow, error) {
	return tx.ScanViewRange(viewName, nil, nil)
}

// ScanViewRange returns the live view rows with loKey <= key < hiKey (nil
// bounds mean open ends); keys are group values for aggregate views and
// source PKs for projection views. Locking follows ScanView's rules.
func (tx *Tx) ScanViewRange(viewName string, loKey, hiKey record.Row) ([]ViewRow, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	db := tx.db
	v, err := db.Catalog().View(viewName)
	if err != nil {
		return nil, err
	}
	m := db.reg.Maintainer(v.ID)
	var lo, hi []byte
	if loKey != nil {
		lo = record.EncodeKey(loKey)
	}
	if hiKey != nil {
		hi = record.EncodeKey(hiKey)
	}
	if tx.t.Isolation == txn.Snapshot {
		var out []ViewRow
		err := db.snapshotScan(tx, v.ID, lo, hi, func(key, val []byte) (bool, error) {
			keyRow, err := record.DecodeKey(key)
			if err != nil {
				return false, err
			}
			stored, err := record.DecodeRow(val)
			if err != nil {
				return false, err
			}
			res := stored
			if v.Kind == catalog.ViewAggregate {
				if res, err = m.Result(stored); err != nil {
					return false, err
				}
			}
			out = append(out, ViewRow{Key: keyRow, Result: res})
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if tx.t.Isolation != txn.ReadCommitted {
		if err := db.lockTree(tx.t, v.ID, lock.ModeS); err != nil {
			return nil, err
		}
	} else if err := db.lockTree(tx.t, v.ID, lock.ModeIS); err != nil {
		return nil, err
	}
	items := db.tree(v.ID).Items(lo, hi, false)
	out := make([]ViewRow, 0, len(items))
	lockFree := tx.t.Isolation != txn.ReadCommitted || // tree S already held
		(v.Strategy == catalog.StrategyEscrow && v.Kind == catalog.ViewAggregate) ||
		v.Strategy == catalog.StrategyDeferred
	for _, it := range items {
		val := it.Val
		if !lockFree {
			if err := db.momentaryS(tx.t, v.ID, it.Key); err != nil {
				return nil, err
			}
			fresh, ghost, ok := db.tree(v.ID).Get(it.Key)
			if !ok || ghost {
				continue
			}
			val = fresh
		}
		keyRow, err := record.DecodeKey(it.Key)
		if err != nil {
			return nil, err
		}
		stored, err := record.DecodeRow(val)
		if err != nil {
			return nil, err
		}
		res := stored
		if v.Kind == catalog.ViewAggregate {
			if res, err = m.Result(stored); err != nil {
				return nil, err
			}
		}
		out = append(out, ViewRow{Key: keyRow, Result: res})
	}
	return out, nil
}

// AggregateNoView computes GROUP BY aggregates by scanning the base table —
// the query plan a database without the indexed view must run (the F6
// baseline). It scans under the transaction's isolation rules.
func (tx *Tx) AggregateNoView(table string, where expr.Expr, groupBy []int, aggs []expr.AggSpec) ([]ViewRow, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	db := tx.db
	tbl, err := db.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	// Ad-hoc aggregates accept the same named column references CREATE VIEW
	// does; resolve them here since this path bypasses the catalog.
	resolve := func(name string) (int, error) {
		for i, c := range tbl.Cols {
			if c.Name == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("%w: table %q has no column %q", catalog.ErrNotFound, table, name)
	}
	if where, err = expr.ResolveColumns(where, resolve); err != nil {
		return nil, err
	}
	aggs = append([]expr.AggSpec(nil), aggs...)
	for i := range aggs {
		if aggs[i].Arg, err = expr.ResolveColumns(aggs[i].Arg, resolve); err != nil {
			return nil, err
		}
	}
	def := &catalog.View{
		Name: "(adhoc)", Kind: catalog.ViewAggregate, Left: table,
		Where: where, GroupByCols: groupBy, Aggs: aggs,
	}
	m, err := view.Compile(def, tbl, nil)
	if err != nil {
		return nil, err
	}
	var rows []record.Row
	if err := tx.ScanTable(table, nil, nil, func(r record.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		return nil, err
	}
	entries, err := m.Recompute(rows, nil)
	if err != nil {
		return nil, err
	}
	out := make([]ViewRow, 0, len(entries))
	for _, e := range entries {
		keyRow, err := record.DecodeKey(e.Key)
		if err != nil {
			return nil, err
		}
		res, err := m.Result(e.Val)
		if err != nil {
			return nil, err
		}
		out = append(out, ViewRow{Key: keyRow, Result: res})
	}
	return out, nil
}

// RefreshView recomputes a view's contents from its source relation in a
// system transaction, logging the differences, and then cascades: every
// transitive dependent recomputes from its freshly refreshed source, in
// ascending tree-ID (= topological) order inside the same system transaction.
// It reports how many view rows changed across the whole subtree. For each
// deferred view in the subtree it also publishes a barrier to the applier at
// the one commit timestamp: pending deltas the recompute already incorporated
// are dropped, and the views' watermarks jump together — a reader comparing
// levels never sees a torn cross-level refresh. The barriers are ordered
// correctly because the refresh holds the source trees' S locks through
// commit — any commit not included in the recompute serializes after it and
// publishes its batch later.
func (db *DB) RefreshView(viewName string) (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	cat := db.Catalog()
	v, err := cat.View(viewName)
	if err != nil {
		return 0, wrapViewErr("refresh view", viewName, err)
	}
	subtree := viewSubtree(cat, v)
	var deferredTrees []id.Tree
	for _, sv := range subtree {
		if sv.Strategy == catalog.StrategyDeferred {
			deferredTrees = append(deferredTrees, sv.ID)
		}
	}
	var preFinish func(ts uint64)
	if len(deferredTrees) > 0 {
		preFinish = func(ts uint64) {
			for _, tid := range deferredTrees {
				db.publishDeferredBarrier(tid, ts, false)
			}
		}
	}
	changed := 0
	err = db.runSysTxnHook(func(st *txn.Txn) error {
		for _, sv := range subtree {
			n, err := db.refreshOne(st, cat, sv)
			if err != nil {
				return err
			}
			changed += n
		}
		return nil
	}, preFinish)
	return changed, err
}

// viewSubtree returns v plus every transitive dependent, in ascending tree-ID
// (= topological) order. Each view has exactly one source, so the walk never
// visits a view twice.
func viewSubtree(cat *catalog.Catalog, v *catalog.View) []*catalog.View {
	subtree := []*catalog.View{v}
	for i := 0; i < len(subtree); i++ {
		subtree = append(subtree, cat.ViewsOn(subtree[i].Name)...)
	}
	sort.Slice(subtree, func(i, j int) bool { return subtree[i].ID < subtree[j].ID })
	return subtree
}

// refreshOne recomputes one view from its source relation and logs the
// differences. The source S lock is a no-op when the source is a view this
// transaction already refreshed (the lock manager treats a request covered by
// the held X mode as granted), so a cascade locks each tree exactly once.
func (db *DB) refreshOne(st *txn.Txn, cat *catalog.Catalog, v *catalog.View) (int, error) {
	m := db.reg.Maintainer(v.ID)
	if m == nil {
		return 0, fmt.Errorf("core: view %q has no compiled maintainer", v.Name)
	}
	// Stabilize the source and take the view exclusively.
	left, err := cat.SourceTable(v.Left)
	if err != nil {
		return 0, err
	}
	if err := db.lockTree(st, left.ID, lock.ModeS); err != nil {
		return 0, err
	}
	leftRows, err := db.relationRows(cat, v.Left)
	if err != nil {
		return 0, err
	}
	var rightRows []record.Row
	if v.Join() {
		right, err := cat.Table(v.Right)
		if err != nil {
			return 0, err
		}
		if err := db.lockTree(st, right.ID, lock.ModeS); err != nil {
			return 0, err
		}
		if rightRows, err = db.tableRows(right); err != nil {
			return 0, err
		}
	}
	if err := db.lockTree(st, v.ID, lock.ModeX); err != nil {
		return 0, err
	}
	want, err := m.Recompute(leftRows, rightRows)
	if err != nil {
		return 0, err
	}
	have := db.tree(v.ID).Items(nil, nil, true)
	// Merge the two sorted sequences, logging the differences.
	changed := 0
	i, j := 0, 0
	for i < len(want) || j < len(have) {
		var cmp int
		switch {
		case i >= len(want):
			cmp = 1
		case j >= len(have):
			cmp = -1
		default:
			cmp = record.CompareKeys(want[i].Key, have[j].Key)
		}
		switch {
		case cmp < 0: // missing row
			rec := &wal.Record{Type: wal.TInsert, Tree: v.ID, Key: want[i].Key, NewVal: record.EncodeRow(want[i].Val)}
			if err := db.logOp(st, rec); err != nil {
				return changed, err
			}
			changed++
			i++
		case cmp > 0: // stale row
			rec := &wal.Record{Type: wal.TDelete, Tree: v.ID, Key: have[j].Key, OldVal: have[j].Val, OldGhost: have[j].Ghost}
			if err := db.logOp(st, rec); err != nil {
				return changed, err
			}
			changed++
			j++
		default:
			newVal := record.EncodeRow(want[i].Val)
			if have[j].Ghost || string(newVal) != string(have[j].Val) {
				rec := &wal.Record{Type: wal.TUpdate, Tree: v.ID, Key: have[j].Key,
					OldVal: have[j].Val, NewVal: newVal, OldGhost: have[j].Ghost}
				if err := db.logOp(st, rec); err != nil {
					return changed, err
				}
				changed++
			}
			i++
			j++
		}
	}
	return changed, nil
}
