package core

import (
	"bytes"

	"repro/internal/id"
)

// snapshotRow resolves one row of tree at the transaction's read timestamp:
// version-chain state when the row is tracked, the btree value otherwise (an
// untracked row is committed at or below every live read timestamp). The
// btree fallback re-checks the chain afterwards: a writer may have seeded a
// chain — and dirtied the tree — between the first check and the read, in
// which case the chain's committed pre-image wins. self overlays the
// transaction's own pending row operations (read-your-own-writes).
func (db *DB) snapshotRow(tree id.Tree, key []byte, ts uint64, self id.Txn) ([]byte, bool, bool, error) {
	res, tracked := db.mvcc.Read(tree, key, ts, self)
	if !tracked {
		val, ghost, ok := db.tree(tree).Get(key)
		res, tracked = db.mvcc.Read(tree, key, ts, self)
		if !tracked {
			return val, ghost, ok, nil
		}
	}
	if !res.Present {
		return nil, false, false, nil
	}
	val, ghost := res.Val, res.Ghost
	if len(res.Deltas) > 0 {
		nv, g, err := db.foldVersionDeltas(tree, val, res.Deltas)
		if err != nil {
			return nil, false, false, err
		}
		val, ghost = nv, g
	}
	return val, ghost, true, nil
}

// snapshotScan visits the live rows of tree in [lo, hi) as of the
// transaction's read timestamp, overlaying the transaction's own pending
// writes. fn returning false stops the scan.
func (db *DB) snapshotScan(tx *Tx, tree id.Tree, lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	return db.snapshotScanAt(tree, lo, hi, tx.readTS, tx.t.ID, fn)
}

// snapshotScanAt visits the live rows of tree in [lo, hi) as of timestamp ts,
// with zero lock-manager traffic: it merges the btree's keys (ghosts included
// — a ghost now may have been live at the timestamp) with the version store's
// tracked keys (a row deleted from the tree may still be visible at the
// timestamp), resolving each through snapshotRow. self overlays that
// transaction's pending operations; the scrubber passes the zero Txn (no
// transaction ever carries ID 0, so nothing overlays). fn returning false
// stops the scan.
func (db *DB) snapshotScanAt(tree id.Tree, lo, hi []byte, ts uint64, self id.Txn, fn func(key, val []byte) (bool, error)) error {
	items := db.tree(tree).Items(lo, hi, true)
	trackedKeys := db.mvcc.TrackedKeys(tree, lo, hi)
	i, j := 0, 0
	for i < len(items) || j < len(trackedKeys) {
		var key []byte
		switch {
		case i >= len(items):
			key = trackedKeys[j]
			j++
		case j >= len(trackedKeys):
			key = items[i].Key
			i++
		default:
			switch c := bytes.Compare(items[i].Key, trackedKeys[j]); {
			case c < 0:
				key = items[i].Key
				i++
			case c > 0:
				key = trackedKeys[j]
				j++
			default:
				key = items[i].Key
				i++
				j++
			}
		}
		val, ghost, ok, err := db.snapshotRow(tree, key, ts, self)
		if err != nil {
			return err
		}
		if !ok || ghost {
			continue
		}
		cont, err := fn(key, val)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}
