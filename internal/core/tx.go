package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/applier"
	"repro/internal/apply"
	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Tx is a user transaction handle. It is not safe for concurrent use by
// multiple goroutines (like database/sql's Tx).
type Tx struct {
	db   *DB
	t    *txn.Txn
	done bool

	// readTS and snap are set for Snapshot-isolation transactions: the pinned
	// read timestamp and the oracle's registry handle. ro marks the read-only
	// fast path (no logging, no locks).
	readTS uint64
	snap   uint64
	ro     bool

	// commitTS is the commit timestamp allocated by a successful Commit (zero
	// until then, and forever for read-only or rolled-back transactions).
	commitTS uint64
}

// TxOptions configure one transaction started with BeginTx. The zero value
// selects ReadCommitted isolation and the engine-wide lock timeout.
type TxOptions struct {
	// Isolation is the transaction's isolation level (default ReadCommitted).
	Isolation txn.Level
	// LockTimeout, when positive, overrides Options.LockTimeout for this
	// transaction's lock waits.
	LockTimeout time.Duration
	// ReadOnly selects the snapshot read fast path: the transaction skips
	// begin/commit logging, the escrow ledger, and the lock manager entirely,
	// and every write returns ErrReadOnly. It requires (and, when Isolation
	// is zero, implies) Snapshot isolation.
	ReadOnly bool
}

// Begin starts a user transaction at the given isolation level. It is
// equivalent to BeginTx with a background context.
func (db *DB) Begin(level txn.Level) (*Tx, error) {
	return db.BeginTx(context.Background(), TxOptions{Isolation: level})
}

// BeginTx starts a user transaction governed by ctx: cancelling ctx aborts
// the transaction's in-flight lock waits (the wait returns a wrapped
// ctx.Err()). The ctx does not otherwise interrupt running statements.
func (db *DB) BeginTx(ctx context.Context, opts TxOptions) (*Tx, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	start := time.Now()
	level := opts.Isolation
	if level == 0 {
		if opts.ReadOnly {
			level = txn.Snapshot
		} else {
			level = txn.ReadCommitted
		}
	}
	if opts.ReadOnly && level != txn.Snapshot {
		return nil, ErrSnapshotOnly
	}
	db.gate.RLock()
	if db.closed.Load() {
		db.gate.RUnlock()
		return nil, ErrClosed
	}
	t := db.tm.Begin(false, level)
	t.Ctx = ctx
	t.LockTimeout = opts.LockTimeout
	t.Started = start
	tx := &Tx{db: db, t: t, ro: opts.ReadOnly}
	if !tx.ro {
		// Read-only snapshot transactions never log: they write nothing, so
		// recovery has nothing to learn from them — skipping the begin/commit
		// records keeps the read fast path off the WAL entirely.
		if _, err := db.log.Append(&wal.Record{Type: wal.TBegin, Txn: t.ID}); err != nil {
			db.tm.Abort(t)
			db.gate.RUnlock()
			return nil, err
		}
	}
	db.met.Txn.Begin.Observe(time.Since(start))
	if db.tracer != nil {
		db.tracer.TraceEvent(metrics.Event{Type: metrics.EventTxBegin, Txn: t.ID})
	}
	if level == txn.Snapshot {
		tx.readTS, tx.snap = db.oracle.BeginSnapshot()
		if db.tracer != nil {
			db.tracer.TraceEvent(metrics.Event{Type: metrics.EventSnapshotBegin, Txn: t.ID, Rows: int(tx.readTS)})
		}
	}
	return tx, nil
}

// ID returns the transaction's identifier.
func (tx *Tx) ID() id.Txn { return tx.t.ID }

// Isolation returns the transaction's isolation level.
func (tx *Tx) Isolation() txn.Level { return tx.t.Isolation }

// CommitTS returns the transaction's commit timestamp: zero until Commit
// succeeds (and always zero for read-only transactions, which allocate none).
// Passing it to DB.WaitForViewWatermark is the read-your-writes barrier for
// deferred views.
func (tx *Tx) CommitTS() uint64 { return tx.commitTS }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxnDone
	}
	return nil
}

// writeCheck additionally rejects writes in read-only transactions.
func (tx *Tx) writeCheck() error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.ro {
		return ErrReadOnly
	}
	return nil
}

// Commit folds the transaction's pending escrow deltas into the view rows
// (logging one EscrowFold per row), writes and group-commits the commit
// record, and releases locks.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.db.opts.ProfileLabels {
		// Tag the commit (fold + group-commit wait) so CPU profiles attribute
		// the time to this transaction.
		var err error
		pprof.Do(context.Background(),
			pprof.Labels("vtxn_phase", "commit", "vtxn_txn", tx.t.ID.String()),
			func(context.Context) { err = tx.commit() })
		return err
	}
	return tx.commit()
}

func (tx *Tx) commit() error {
	db := tx.db
	if tx.ro {
		// Nothing written, nothing logged: retiring the snapshot is the whole
		// commit.
		tx.finish(true)
		return nil
	}
	commitStart := time.Now()
	deferred, foldedViews, err := db.foldEscrow(tx.t)
	if err != nil {
		// Fold failure (e.g. a log fault) aborts the transaction; already-
		// applied folds are compensated by the generic rollback.
		db.met.Escrow.FoldAborts.Add(1)
		tx.rollback()
		return fmt.Errorf("core: commit failed, transaction rolled back: %w", err)
	}
	lsn, err := db.log.Append(&wal.Record{Type: wal.TCommit, Txn: tx.t.ID})
	if err != nil {
		tx.rollback()
		return fmt.Errorf("core: commit failed, transaction rolled back: %w", err)
	}
	syncStart := time.Now()
	if err := db.log.SyncTxn(lsn, tx.t.ID); err != nil {
		// The commit record may or may not be durable; treat as failed and
		// roll back in memory so the surviving state matches recovery's
		// worst case view (recovery decides by what actually reached disk).
		tx.rollback()
		return fmt.Errorf("core: commit sync failed, transaction rolled back: %w", err)
	}
	db.met.Txn.CommitWait.Observe(time.Since(syncStart))
	// The commit is durable: allocate its timestamp, stamp every pinned
	// version (before finish wipes the op chain and releases locks — the next
	// writer of any of these rows must allocate a later timestamp), and only
	// then let the watermark advance over it.
	ts := db.oracle.AllocateCommitTS()
	db.stampOps(tx.t, ts)
	tx.commitTS = ts
	if len(deferred) > 0 {
		// Publish before FinishCommit: the oracle's read timestamp must not
		// reach ts until this batch is queued, or an applier round could
		// advance the view watermark past a commit it never saw (deferred.go).
		// The batch carries the commit's causal span (resolved while the
		// transaction is still live in the recorder's span table) so applier
		// folds and watermark advances can name this commit as their cause.
		db.publishDeferred(&applier.Batch{
			TS:     ts,
			WallNs: time.Now().UnixNano(),
			Span:   db.flight.SpanOf(tx.t.ID),
			Groups: deferred,
		}, tx.t.ID)
	}
	db.oracle.FinishCommit(ts)
	// Immediately maintained views are visible the moment the commit finishes:
	// their commit-to-visible latency IS the commit path.
	if len(foldedViews) > 0 {
		dur := time.Since(commitStart)
		for _, tid := range foldedViews {
			if f := db.met.Freshness.Get(tid); f != nil {
				f.CommitToVisible.Observe(dur)
			}
		}
	}
	tx.finish(true)
	return nil
}

// Savepoint marks a statement-level rollback point inside the transaction.
type Savepoint struct {
	ops    txn.Savepoint
	ledger int
}

// Savepoint returns a marker for partial rollback with RollbackTo.
func (tx *Tx) Savepoint() (Savepoint, error) {
	if err := tx.check(); err != nil {
		return Savepoint{}, err
	}
	return Savepoint{
		ops:    tx.t.Savepoint(),
		ledger: tx.db.ledger.Mark(tx.t.ID),
	}, nil
}

// RollbackTo undoes everything the transaction did after the savepoint:
// logged operations are compensated (with CLRs) in reverse order and escrow
// deltas accumulated since are discarded. Locks acquired since remain held
// (standard savepoint semantics). The transaction stays active.
func (tx *Tx) RollbackTo(sp Savepoint) error {
	if err := tx.check(); err != nil {
		return err
	}
	db := tx.db
	for _, op := range tx.t.OpsSince(sp.ops) {
		clr, err := apply.Invert(db.reg, db.tree, op)
		if err != nil {
			return fmt.Errorf("core: savepoint rollback of %s: %w", op, err)
		}
		if _, err := db.log.Append(clr); err != nil {
			return err
		}
		if isRowOp(op.Type) {
			db.mvcc.Unpin(op.Tree, op.Key, op)
		}
	}
	db.ledger.RollbackTo(tx.t.ID, sp.ledger)
	return nil
}

// Rollback undoes the transaction: pending escrow deltas are discarded, and
// every logged operation is compensated in reverse order.
func (tx *Tx) Rollback() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.rollback()
	return nil
}

func (tx *Tx) rollback() {
	db := tx.db
	if tx.ro {
		tx.finish(false)
		return
	}
	db.rollbackOps(tx.t)
	db.log.Append(&wal.Record{Type: wal.TAbortEnd, Txn: tx.t.ID})
	tx.finish(false)
}

func (tx *Tx) finish(committed bool) {
	db := tx.db
	if committed {
		db.tm.Commit(tx.t)
		db.commits.Add(1)
	} else {
		db.tm.Abort(tx.t)
		db.aborts.Add(1)
	}
	if tx.snap != 0 {
		db.oracle.EndSnapshot(tx.snap)
	}
	if !tx.ro {
		db.ledger.Discard(tx.t.ID)
		db.lm.ReleaseAll(tx.t.ID)
	}
	tx.done = true
	if db.tracer != nil {
		outcome := "commit"
		if !committed {
			outcome = "abort"
		}
		var life time.Duration
		if !tx.t.Started.IsZero() {
			life = time.Since(tx.t.Started)
		}
		db.tracer.TraceEvent(metrics.Event{Type: metrics.EventTxEnd, Txn: tx.t.ID, Dur: life, Outcome: outcome})
	}
	db.gate.RUnlock()
}

// foldEscrow applies the transaction's pending deltas to the view rows under
// the short structure latch, logging one logical EscrowFold per row. Trees
// fold in ascending tree-ID order — a valid topological order of the view
// DAG (cascade.go) — and each fold's visible row change is translated into
// child-view deltas queued behind it, so stacked views fold level by level
// within the same commit, all stamped at one commit timestamp. Deltas against
// deferred views are not folded: they are returned as per-group deltas for
// the commit to publish to the background applier (deferred.go), which runs
// the cascade below a deferred parent itself. The second result lists the
// distinct immediately maintained view trees folded — the commit observes
// their commit-to-visible freshness once the commit finishes.
func (db *DB) foldEscrow(t *txn.Txn) ([]applier.GroupDelta, []id.Tree, error) {
	cds := db.ledger.TxnDeltas(t.ID)
	if len(cds) == 0 {
		return nil, nil, nil
	}
	start := time.Now()
	q := newFoldQueue()
	for _, cd := range cds {
		q.add(cd.Cell.Row.Tree, cd.Cell.Row.Key, cd.Cell.Col, cd.Delta)
	}
	var deferredGroups []applier.GroupDelta
	var foldedViews []id.Tree
	folded := 0
	for {
		tid, rows, ok := q.popMinTree()
		if !ok {
			break
		}
		m := db.reg.Maintainer(tid)
		if m == nil {
			return nil, nil, fmt.Errorf("core: fold against unknown view %s", tid)
		}
		if m.V.Strategy == catalog.StrategyDeferred {
			for _, k := range sortedRowKeys(rows) {
				ds := dropZeroDeltas(rows[k])
				if len(ds) == 0 {
					continue
				}
				deferredGroups = append(deferredGroups, applier.GroupDelta{Tree: tid, Key: k, Deltas: ds})
				if m.V.OverView() {
					db.met.Cascade.DeferredOut.Add(1)
				}
			}
			continue
		}
		children := db.Catalog().ViewsOn(m.V.Name)
		before := folded
		for _, k := range sortedRowKeys(rows) {
			ds := dropZeroDeltas(rows[k])
			if len(ds) == 0 {
				continue
			}
			fr, err := db.foldRow(t, escrow.RowID{Tree: tid, Key: k}, ds, m.V.OverView())
			if err != nil {
				return nil, nil, err
			}
			folded++
			db.met.Cascade.ObserveFold(m.V.Level())
			if len(children) > 0 {
				if err := db.enqueueCascade(q, m, []byte(k), fr, children); err != nil {
					return nil, nil, err
				}
			}
		}
		if folded > before {
			foldedViews = append(foldedViews, tid)
		}
	}
	if folded > 0 {
		dur := time.Since(start)
		db.met.Txn.Fold.Observe(dur)
		db.met.Escrow.ObserveFold(folded)
		if db.tracer != nil {
			db.tracer.TraceEvent(metrics.Event{Type: metrics.EventFold, Txn: t.ID, Dur: dur, Rows: folded})
		}
	}
	return deferredGroups, foldedViews, nil
}

// foldRow folds one view row under the structure latch, returning the before
// and after images the caller's cascade needs. createIfMissing folds against
// a fresh empty group when the row is absent (stacked and deferred views:
// their rows are created by the cascade or applier itself, with no ghost
// pre-creation at DML time); otherwise an absent row is a protocol bug — the
// ghost a transaction targeted cannot be erased while its deltas are pending.
func (db *DB) foldRow(t *txn.Txn, row escrow.RowID, deltas []wal.ColDelta, createIfMissing bool) (foldResult, error) {
	if err := db.hit(fault.PointFold); err != nil {
		return foldResult{}, err
	}
	start := time.Now()
	m := db.reg.Maintainer(row.Tree)
	if m == nil {
		return foldResult{}, fmt.Errorf("core: fold against unknown view %s", row.Tree)
	}
	key := []byte(row.Key)
	latch := db.structLatch(row.Tree, key)
	latch.Lock()
	defer latch.Unlock()
	tree := db.tree(row.Tree)
	cur, oldGhost, ok := tree.Get(key)
	var stored record.Row
	var err error
	switch {
	case ok:
		if stored, err = record.DecodeRow(cur); err != nil {
			return foldResult{}, err
		}
	case createIfMissing:
		stored = m.NewGroupRow()
		oldGhost = true
	default:
		return foldResult{}, fmt.Errorf("core: fold target %s[%x] missing", row.Tree, key)
	}
	// ApplyFold mutates in place; keep the pre-image for the cascade.
	old := append(record.Row(nil), stored...)
	next, err := m.ApplyFold(stored, deltas)
	if err != nil {
		return foldResult{}, err
	}
	empty, err := m.GroupEmpty(next)
	if err != nil {
		return foldResult{}, err
	}
	rec := &wal.Record{
		Type:     wal.TEscrowFold,
		Tree:     row.Tree,
		Key:      key,
		Deltas:   deltas,
		OldGhost: oldGhost,
		NewGhost: empty,
	}
	// Inline logOp's append/apply/record sequence, applying the fold we just
	// computed instead of re-running the generic redo (which would decode and
	// fold the row a second time).
	rec.Txn = t.ID
	rec.Sys = t.Sys
	_, walBytes, err := db.log.AppendSized(rec)
	if err != nil {
		return foldResult{}, err
	}
	// Pin the fold's delta version before the tree changes; the pre-image is
	// already in hand, so chain seeding costs no extra read. A row this fold
	// creates (a stacked view's group) seeds its chain with an empty ghost
	// group rather than an absent base: a delta version cannot resurrect an
	// absent row, but it can fold an empty ghost into a visible group —
	// readers below the fold's timestamp still see nothing (ghost), readers
	// at or above it see the folded row.
	db.mvcc.Pin(row.Tree, key, rec, t.ID, func() ([]byte, bool, bool) {
		if !ok {
			return record.EncodeRow(old), true, true
		}
		return cur, oldGhost, ok
	})
	tree.Put(key, record.EncodeRow(next), empty)
	if err := t.RecordOp(rec); err != nil {
		db.mvcc.Unpin(row.Tree, key, rec)
		return foldResult{}, err
	}
	db.folds.Add(1)
	// Per-view maintenance bill: rows folded, fold latency, WAL volume.
	if c := db.met.Hot.Views.Get(row.Tree); c != nil {
		c.FoldRows.Add(1)
		c.FoldNs.Add(time.Since(start).Nanoseconds())
		c.WALBytes.Add(int64(walBytes))
	}
	return foldResult{old: old, next: next, existed: ok, oldGhost: oldGhost, newGhost: empty}, nil
}

// lockRes acquires res for t honoring the transaction's context and lock
// timeout (BeginTx's TxOptions); both fall back to engine-wide defaults.
// Every user-transaction lock acquisition in the engine funnels through here.
func (db *DB) lockRes(t *txn.Txn, res lock.Resource, mode lock.Mode) error {
	ctx := t.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := t.LockTimeout
	if timeout <= 0 {
		timeout = db.opts.LockTimeout
	}
	return db.lm.LockCtx(ctx, t.ID, res, mode, timeout)
}

// lockKey acquires a key lock with the engine's timeout and escalation
// policy.
func (db *DB) lockKey(t *txn.Txn, tree id.Tree, key []byte, mode lock.Mode) error {
	if err := db.lockRes(t, lock.KeyResource(tree, key), mode); err != nil {
		return err
	}
	if th := db.opts.EscalationThreshold; th > 0 && db.lm.CountKeyLocks(t.ID, tree) > th {
		// Escalate to a tree lock covering the key locks, then drop them.
		treeMode := lock.ModeS
		if mode == lock.ModeX || mode == lock.ModeE || mode == lock.ModeU {
			treeMode = lock.ModeX
		}
		if err := db.lockRes(t, lock.TreeResource(tree), treeMode); err != nil {
			return err
		}
		db.lm.ReleaseKeyLocks(t.ID, tree)
		db.escalations.Add(1)
	}
	return nil
}

// lockTree acquires a tree-level lock with the engine's timeout.
func (db *DB) lockTree(t *txn.Txn, tree id.Tree, mode lock.Mode) error {
	return db.lockRes(t, lock.TreeResource(tree), mode)
}

// momentaryS takes and immediately releases an S key lock: the lock-based
// read-committed read (block on uncommitted X, then read). The release is
// guarded twice: HeldMode only sees key-granularity locks, so a transaction
// whose coverage of the key comes from a range or tree lock would report
// ModeNone here — releasing in any isolation level that retains read locks
// would silently drop coverage a serializable scan still depends on.
func (db *DB) momentaryS(t *txn.Txn, tree id.Tree, key []byte) error {
	res := lock.KeyResource(tree, key)
	held := db.lm.HeldMode(t.ID, res)
	if err := db.lockRes(t, res, lock.ModeS); err != nil {
		return err
	}
	if held == lock.ModeNone && t.Isolation == txn.ReadCommitted {
		db.lm.Unlock(t.ID, res)
	}
	return nil
}

// waitQuiesced is a test helper: it blocks until no transactions are active.
func (db *DB) waitQuiesced() {
	for db.tm.ActiveCount() > 0 {
		time.Sleep(time.Millisecond)
	}
}
