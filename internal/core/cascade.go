package core

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/id"
	"repro/internal/record"
	"repro/internal/view"
	"repro/internal/wal"
)

// This file implements topological fold cascades over the view DAG
// (DESIGN.md §10). A view's source must already exist when the view is
// created and a view cannot be dropped while dependents remain, so ascending
// tree-ID order is a valid topological order of the DAG: folding trees in
// that order means every parent row change is final before its dependents
// fold. Both the commit-time escrow fold (tx.go) and the deferred applier
// (deferred.go) drive their cascades through the foldQueue below.

// foldQueue is a commit-local coalescing queue of pending escrow folds keyed
// by (view tree, group key). Deltas merge per (column, int/float) cell, so no
// matter how many base changes or cascade paths feed a group, it folds at
// most once per transaction — the structural ≤1-fold-per-(view,group)
// guarantee DESIGN.md §10 documents.
type foldQueue struct {
	pending map[id.Tree]map[string][]wal.ColDelta
}

func newFoldQueue() *foldQueue {
	return &foldQueue{pending: make(map[id.Tree]map[string][]wal.ColDelta)}
}

// add merges one cell delta into the queue, splitting mixed int/float
// accumulations to stay exact. It reports whether the (view, group) entry
// already existed — a coalesce rather than a new pending fold.
func (q *foldQueue) add(tree id.Tree, key string, col uint32, d escrow.Delta) bool {
	rows := q.pending[tree]
	if rows == nil {
		rows = make(map[string][]wal.ColDelta)
		q.pending[tree] = rows
	}
	ds, existed := rows[key]
	if d.Int != 0 {
		ds = mergeColDelta(ds, wal.ColDelta{Col: col, Int: d.Int})
	}
	if d.Float != 0 {
		ds = mergeColDelta(ds, wal.ColDelta{Col: col, IsFloat: true, Float: d.Float})
	}
	if ds == nil {
		ds = []wal.ColDelta{} // keep the entry: a net-zero fold is still a fold target
	}
	rows[key] = ds
	return existed
}

// popMinTree removes and returns the queue's lowest pending tree — the next
// DAG level to fold. Cascades only ever enqueue into strictly larger tree IDs
// (a child is created after its source), so levels pop in topological order.
func (q *foldQueue) popMinTree() (id.Tree, map[string][]wal.ColDelta, bool) {
	var min id.Tree
	found := false
	for tid := range q.pending {
		if !found || tid < min {
			min, found = tid, true
		}
	}
	if !found {
		return 0, nil, false
	}
	rows := q.pending[min]
	delete(q.pending, min)
	return min, rows, true
}

func mergeColDelta(ds []wal.ColDelta, d wal.ColDelta) []wal.ColDelta {
	for i := range ds {
		if ds[i].Col == d.Col && ds[i].IsFloat == d.IsFloat {
			ds[i].Int += d.Int
			ds[i].Float += d.Float
			return ds
		}
	}
	return append(ds, d)
}

// dropZeroDeltas filters columns whose merged delta cancelled to zero.
// Folding them would be a no-op that still logs a record — and, on a stacked
// view, could spuriously create a missing child row.
func dropZeroDeltas(ds []wal.ColDelta) []wal.ColDelta {
	out := ds[:0]
	for _, d := range ds {
		if (d.IsFloat && d.Float != 0) || (!d.IsFloat && d.Int != 0) {
			out = append(out, d)
		}
	}
	return out
}

// sortedRowKeys orders one tree's pending group keys for deterministic fold
// (and therefore WAL) order.
func sortedRowKeys(rows map[string][]wal.ColDelta) []string {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// foldResult reports what one fold did to its view row, in the form the
// cascade needs: the row before and after, and whether each side was visible
// (present and not a ghost) to the views stacked above.
type foldResult struct {
	old, next          record.Row
	existed            bool
	oldGhost, newGhost bool
}

// enqueueCascade translates one parent view row change into child-view
// deltas: the vanished old row contributes with sign -1, the new row with +1.
// Columns the change left untouched cancel exactly in the queue's merge, so
// an unchanged parent row cascades nothing.
func (db *DB) enqueueCascade(q *foldQueue, m *view.Maintainer, key []byte, fr foldResult, children []*catalog.View) error {
	oldVisible := fr.existed && !fr.oldGhost
	newVisible := !fr.newGhost
	if !oldVisible && !newVisible {
		return nil
	}
	var oldOut, newOut record.Row
	var err error
	if oldVisible {
		if oldOut, err = m.OutputRow(key, fr.old); err != nil {
			return err
		}
	}
	if newVisible {
		if newOut, err = m.OutputRow(key, fr.next); err != nil {
			return err
		}
	}
	for _, child := range children {
		cm := db.reg.Maintainer(child.ID)
		if cm == nil {
			return fmt.Errorf("core: view %q has no compiled maintainer", child.Name)
		}
		if oldOut != nil {
			if err := db.enqueueContribution(q, child, cm, oldOut, -1); err != nil {
				return err
			}
		}
		if newOut != nil {
			if err := db.enqueueContribution(q, child, cm, newOut, +1); err != nil {
				return err
			}
		}
	}
	return nil
}

// enqueueContribution merges one source (= parent output) row's signed
// contributions to a child view into the queue.
func (db *DB) enqueueContribution(q *foldQueue, child *catalog.View, cm *view.Maintainer, src record.Row, sign int) error {
	ok, err := cm.Matches(src)
	if err != nil || !ok {
		return err
	}
	key, err := cm.GroupKey(src)
	if err != nil {
		return err
	}
	hidden, contribs, err := cm.Contributions(src, sign)
	if err != nil {
		return err
	}
	k := string(key)
	coalesced := q.add(child.ID, k, hidden.Cell, hidden.Delta)
	for _, c := range contribs {
		for _, cd := range c.Cells {
			q.add(child.ID, k, cd.Cell, cd.Delta)
		}
	}
	db.met.Cascade.Enqueued.Add(1)
	if coalesced {
		db.met.Cascade.Coalesced.Add(1)
	}
	return nil
}
