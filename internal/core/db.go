// Package core implements the database kernel: it glues the B-tree storage,
// write-ahead log, lock manager, escrow ledger, transaction manager, and the
// compiled view-maintenance plans into a transactional engine with
// immediately maintained indexed views (DESIGN.md §3).
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apply"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/fault"
	"repro/internal/flightrec"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/mvcc"
	"repro/internal/record"
	"repro/internal/recovery"
	"repro/internal/scrub"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options configure a database instance.
type Options struct {
	// SyncMode selects commit durability (default SyncNone; see wal docs).
	SyncMode wal.SyncMode
	// LockTimeout bounds lock waits (default 10s).
	LockTimeout time.Duration
	// EscalationThreshold escalates a transaction's key locks on one tree
	// to a single tree lock once it holds more than this many. 0 disables.
	EscalationThreshold int
	// GhostCleanInterval runs the background ghost cleaner this often.
	// 0 disables the background cleaner (CleanGhosts still works).
	GhostCleanInterval time.Duration
	// MVCCPruneInterval runs the background version-chain pruner this often
	// (DESIGN.md §8). 0 selects the default (25ms); negative disables the
	// background pruner (PruneVersions still works).
	MVCCPruneInterval time.Duration
	// DeferredApplyInterval is the deferred-view applier's idle tick: how
	// often watermarks advance when no commits publish deltas, and the retry
	// delay after a failed fold round (DESIGN.md §9). 0 selects the default
	// (5ms). The applier itself always runs — it wakes immediately on every
	// publish regardless of this interval.
	DeferredApplyInterval time.Duration
	// FoldLatchStripes sets the number of stripes for the commit-fold /
	// ghost-structure latches (default 128). 1 reproduces a single global
	// fold latch — the T10 ablation showing why striping matters.
	FoldLatchStripes int
	// LockShards sets the lock-manager stripe count (rounded up to a power
	// of two; 0 scales with GOMAXPROCS). 1 reproduces the global-mutex
	// manager for ablations.
	LockShards int
	// DeadlockSweepInterval throttles the background deadlock detector (at
	// most one sweep per interval while lock waiters exist; default 1ms).
	DeadlockSweepInterval time.Duration
	// EscrowShards sets the escrow-ledger stripe count (rounded up to a
	// power of two; 0 selects the default).
	EscrowShards int
	// FS is the filesystem under the WAL, snapshot, and manifest I/O.
	// nil selects the real filesystem; the crash-torture harness passes a
	// fault.Injector to exercise torn writes, failed fsyncs, and crashes.
	FS fault.FS
	// Hooks receives the engine's named crash points (fault.Point) when
	// non-nil. Torture/testing only; a returned error aborts the operation
	// that hit the point.
	Hooks fault.Hooks
	// Tracer, when non-nil, receives engine trace events: transaction
	// begin/end, resolved lock waits, commit folds, group commits, ghost
	// sweeps, and recovery phases. Implementations must be concurrency-safe
	// and fast — events fire inline on engine paths. Events arrive already
	// stamped with sequence/timestamp/span by the flight recorder (unless it
	// is disabled).
	Tracer metrics.Tracer
	// FlightRecorderSize sets the flight recorder's ring capacity in events.
	// 0 selects the default (flightrec.DefaultSize); negative disables the
	// recorder entirely (events skip straight to Tracer, unstamped).
	FlightRecorderSize int
	// FlightSink, when non-nil, receives an automatic human-readable
	// flight-record dump the moment the engine hits a failure trigger: a
	// deadlock, a lock timeout, or a watchdog stall detection. Dumps are
	// rate-limited. Explicit dumps via DB.DumpFlightRecord work regardless.
	FlightSink io.Writer
	// Watchdog starts the background stall watchdog: it diffs metrics
	// snapshots every WatchdogInterval and reports stall signatures (WAL
	// flush not advancing, lock-shard convoy, escrow fold backlog, ghost-
	// cleaner starvation) as EventStall trace events, watchdog_detections
	// metrics, and flight-record dumps to FlightSink.
	Watchdog bool
	// WatchdogInterval is the watchdog poll interval (default 500ms).
	WatchdogInterval time.Duration
	// WatchdogStallThreshold is the age past which an in-progress condition
	// counts as a stall (default 2s).
	WatchdogStallThreshold time.Duration
	// FreshnessSLO, when positive, is the per-view staleness bound the
	// watchdog enforces: a view whose commit-to-visible lag exceeds it fires
	// the freshness-slo stall signature naming the lagging view (and
	// auto-dumps the linked flight record to FlightSink). It also annotates
	// the metrics snapshot's freshness section. Requires Watchdog for
	// enforcement; without it the SLO is report-only.
	FreshnessSLO time.Duration
	// ProfileLabels tags the commit hot path with runtime/pprof labels
	// (vtxn_phase, vtxn_txn) so CPU profiles attribute time to transactions.
	// Off by default: the labels allocate per commit.
	ProfileLabels bool
	// ScrubInterval runs the online consistency scrubber: a background
	// goroutine verifying one (view, group-range) slice per tick against a
	// recompute at an MVCC snapshot timestamp (DESIGN.md §7.4). 0 selects the
	// default (25ms); negative disables the background loop (ScrubNow still
	// works).
	ScrubInterval time.Duration
	// ScrubRowBudget paces the scrubber in verified rows per second — source
	// rows recomputed plus view rows compared. 0 selects the default
	// (200k rows/s); negative removes the pacing entirely.
	ScrubRowBudget int
}

// Stats are cumulative engine counters.
type Stats struct {
	Commits       int64
	Aborts        int64
	SysTxns       int64
	Folds         int64 // escrow folds applied at commit
	GhostsCreated int64
	GhostsErased  int64
	Escalations   int64
	Lock          lock.Stats
}

// DB is a database instance.
type DB struct {
	path    string
	opts    Options
	started time.Time

	reg     *apply.Registry
	treesMu sync.RWMutex
	trees   map[id.Tree]*btree.Tree

	log *wal.Writer
	gen uint64

	lm     *lock.Manager
	ledger *escrow.Ledger
	tm     *txn.Manager

	// oracle allocates commit timestamps and tracks active snapshots; mvcc is
	// the sidecar version store snapshot readers resolve against (DESIGN.md §8).
	oracle *txn.Oracle
	mvcc   *mvcc.Store

	// gate admits user-level actors (transactions, DDL, the cleaner) as
	// readers; Checkpoint takes it exclusively to quiesce the database.
	gate sync.RWMutex
	// structMu stripes the short system-duration latches serializing
	// structure changes to each aggregate view row: ghost creation, commit
	// folds, and ghost erase (DESIGN.md §5). Striping by row keeps folds on
	// different groups concurrent.
	structMu []sync.Mutex
	// ddlMu serializes DDL statements.
	ddlMu sync.Mutex

	commits       atomic.Int64
	aborts        atomic.Int64
	sysTxns       atomic.Int64
	folds         atomic.Int64
	ghostsCreated atomic.Int64
	ghostsErased  atomic.Int64
	escalations   atomic.Int64

	// met is the engine metrics registry (always non-nil); tracer is the
	// head of the tracer chain: the flight recorder (which forwards to
	// Options.Tracer), or Options.Tracer directly when the recorder is
	// disabled.
	met    *metrics.Registry
	tracer metrics.Tracer
	// flight is the always-on flight recorder (nil when disabled); watchdog
	// the optional stall watchdog.
	flight   *flightrec.Recorder
	watchdog *flightrec.Watchdog

	closed      atomic.Bool
	cleanerStop chan struct{}
	cleanerDone chan struct{}
	prunerStop  chan struct{}
	prunerDone  chan struct{}
	recovered   recovery.Summary

	// applierQ feeds the deferred-view applier goroutine (deferred.go);
	// applierDrainOnStop asks it to run one final round before exiting (clean
	// Close, not Crash). deferredPending/deferredOldestNs are the applier's
	// backlog gauges for Metrics.
	applierQ           *deferredQueue
	applierStop        chan struct{}
	applierDone        chan struct{}
	applierDrainOnStop atomic.Bool
	deferredPending    atomic.Int64
	deferredOldestNs   atomic.Int64
	// deferredStale is the applier-maintained per-view oldest-unapplied-
	// publish table (wall ns); Metrics merges it with a queue scan into each
	// view's staleness gauge (deferred.go).
	deferredStaleMu sync.Mutex
	deferredStale   map[id.Tree]int64

	// scrub is the online consistency scrubber (always constructed, so
	// ScrubNow works even when the background loop is disabled); scrubStop/
	// scrubDone bracket the background goroutine when ScrubInterval enables it.
	scrub     *scrub.Scrubber
	scrubStop chan struct{}
	scrubDone chan struct{}
}

// defaultFoldStripes is the default number of row-structure latch stripes.
const defaultFoldStripes = 128

// structLatch returns the structure latch stripe for one view row.
func (db *DB) structLatch(tree id.Tree, key []byte) *sync.Mutex {
	h := uint32(2166136261)
	h = (h ^ uint32(tree)) * 16777619
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return &db.structMu[h%uint32(len(db.structMu))]
}

// Errors returned by the engine.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("core: database closed")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("core: transaction already finished")
	// ErrDuplicateKey reports a primary-key or unique-index violation.
	ErrDuplicateKey = errors.New("core: duplicate key")
	// ErrNotFound reports a missing row.
	ErrNotFound = errors.New("core: row not found")
	// ErrSchema reports a row/DDL that does not fit the schema.
	ErrSchema = errors.New("core: schema violation")
	// ErrReadOnly reports a write attempted in a read-only transaction.
	ErrReadOnly = errors.New("core: read-only transaction")
	// ErrSnapshotOnly reports TxOptions.ReadOnly combined with an isolation
	// level other than Snapshot: the read-only fast path skips logging and
	// locking entirely, which only multi-version reads make safe.
	ErrSnapshotOnly = errors.New("core: ReadOnly requires Snapshot isolation")
	// ErrDeadlock aborts the transaction chosen as a deadlock victim. Lock
	// errors carry the requesting transaction, mode, and resource as context
	// and wrap this sentinel, so errors.Is works through the whole chain.
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout reports a lock wait that exceeded its timeout.
	ErrLockTimeout = lock.ErrTimeout
	// ErrInvalidView is the root sentinel every CreateIndexedView/DropView/
	// RefreshView validation failure wraps; the chain names the offending view
	// (and column) by name. errors.Is(err, ErrInvalidView) matches them all.
	ErrInvalidView = errors.New("core: invalid view operation")
	// ErrViewInUse (which also wraps ErrInvalidView at the call sites) rejects
	// dropping a view while other views are defined over it.
	ErrViewInUse = errors.New("core: view has dependent views")
	// ErrViewWatermarkDropped reports a WaitForViewWatermark whose view was
	// dropped while the waiter blocked (or before it waited): the watermark
	// can never reach the target, so the wait fails instead of hanging.
	ErrViewWatermarkDropped = txn.ErrViewWatermarkDropped
)

// Open recovers (or creates) the database at path.
func Open(path string, opts Options) (*DB, error) {
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = 10 * time.Second
	}
	if opts.FoldLatchStripes <= 0 {
		opts.FoldLatchStripes = defaultFoldStripes
	}
	if opts.FS == nil {
		opts.FS = fault.OS{}
	}
	st, err := recovery.RunFS(opts.FS, path, opts.SyncMode)
	if err != nil {
		return nil, err
	}
	met := metrics.NewRegistry()
	// The flight recorder heads the tracer chain: every event is stamped and
	// recorded before being forwarded to the user's tracer.
	var flight *flightrec.Recorder
	tracer := opts.Tracer
	if opts.FlightRecorderSize >= 0 {
		flight = flightrec.New(flightrec.Config{
			Size: opts.FlightRecorderSize,
			Next: opts.Tracer,
			Sink: opts.FlightSink,
		})
		tracer = flight
	}
	db := &DB{
		path:    path,
		opts:    opts,
		started: time.Now(),
		reg:     st.Reg,
		trees:   st.Trees,
		log:     st.Log,
		gen:     st.Gen,
		lm: lock.NewManagerOpts(lock.Options{
			Shards:         opts.LockShards,
			DefaultTimeout: opts.LockTimeout,
			SweepInterval:  opts.DeadlockSweepInterval,
			Metrics:        &met.Lock,
			Tracer:         tracer,
		}),
		ledger:    escrow.NewLedgerShards(opts.EscrowShards),
		tm:        txn.NewManager(st.NextTxn),
		oracle:    txn.NewOracle(),
		mvcc:      mvcc.NewStore(&met.MVCC),
		structMu:  make([]sync.Mutex, opts.FoldLatchStripes),
		recovered: st.Summary,
		met:       met,
		tracer:    tracer,
		flight:    flight,
	}
	db.ledger.Metrics = &met.Escrow
	db.ledger.Hot = met.Hot.EscrowDeltas
	db.log.SetObserver(&met.WAL, tracer)
	if tr := tracer; tr != nil && !st.Summary.Fresh {
		tr.TraceEvent(metrics.Event{Type: metrics.EventRecovery, Phase: "analysis", Dur: st.Summary.Analysis})
		tr.TraceEvent(metrics.Event{Type: metrics.EventRecovery, Phase: "redo", Dur: st.Summary.Redo, Rows: st.Summary.Replayed})
		tr.TraceEvent(metrics.Event{Type: metrics.EventRecovery, Phase: "undo", Dur: st.Summary.Undo, Rows: st.Summary.UndoneOps})
	}
	if opts.GhostCleanInterval > 0 {
		db.cleanerStop = make(chan struct{})
		db.cleanerDone = make(chan struct{})
		go db.cleanerLoop(opts.GhostCleanInterval)
	}
	if opts.MVCCPruneInterval >= 0 {
		interval := opts.MVCCPruneInterval
		if interval == 0 {
			interval = defaultMVCCPruneInterval
		}
		db.prunerStop = make(chan struct{})
		db.prunerDone = make(chan struct{})
		go db.prunerLoop(interval)
	}
	// The deferred-view applier always runs: with no deferred views it only
	// fires an idle tick. Start it before the recovery refresh below so the
	// refresh barriers have a consumer.
	applyInterval := opts.DeferredApplyInterval
	if applyInterval <= 0 {
		applyInterval = defaultDeferredApplyInterval
	}
	db.applierQ = newDeferredQueue()
	db.applierStop = make(chan struct{})
	db.applierDone = make(chan struct{})
	go db.applierLoop(applyInterval)
	// Deferred deltas pending in the applier queue at a crash were never
	// logged, so a recovered deferred view may be stale relative to its
	// (fully recovered) base tables. Recompute each one in tree-ID (topological)
	// order so parents converge before their dependents; RefreshView cascades
	// to the dependent subtree, so a view whose source view is itself deferred
	// is covered by the source's refresh and skipped here.
	if !st.Summary.Fresh {
		views := db.deferredViews()
		sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
		cat := db.Catalog()
		for _, v := range views {
			if p, err := cat.View(v.Left); err == nil && p.Strategy == catalog.StrategyDeferred {
				continue
			}
			if _, err := db.RefreshView(v.Name); err != nil {
				db.Close()
				return nil, fmt.Errorf("core: recovery refresh of deferred view %q: %w", v.Name, err)
			}
		}
	}
	// The online consistency scrubber (DESIGN.md §7.4). The Scrubber itself
	// always exists so ScrubNow works; the background loop runs unless
	// ScrubInterval is negative.
	scrubInterval := opts.ScrubInterval
	if scrubInterval == 0 {
		scrubInterval = defaultScrubInterval
	}
	scrubBudget := opts.ScrubRowBudget
	if scrubBudget == 0 {
		scrubBudget = defaultScrubRowBudget
	}
	db.scrub = scrub.New(scrubEngine{db}, scrub.Config{
		Interval:  scrubInterval,
		RowBudget: scrubBudget,
		Metrics:   &met.Scrub,
	})
	if opts.ScrubInterval >= 0 {
		db.scrubStop = make(chan struct{})
		db.scrubDone = make(chan struct{})
		go func() {
			defer close(db.scrubDone)
			db.scrub.Run(db.scrubStop)
		}()
	}
	if opts.Watchdog {
		db.watchdog = flightrec.StartWatchdog(flightrec.WatchdogConfig{
			Interval:       opts.WatchdogInterval,
			StallThreshold: opts.WatchdogStallThreshold,
			FreshnessSLO:   opts.FreshnessSLO,
			Snap:           db.Metrics,
			Tracer:         tracer,
			Recorder:       flight,
			Metrics:        &met.Watchdog,
		})
	}
	return db, nil
}

// Close flushes the log and shuts the database down. It does not checkpoint;
// restart recovers from the log.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	db.watchdog.Close()
	// Stop the scrubber before anything it reads through (and before the
	// gate is taken exclusively — each scrub slice is a gate reader).
	if db.scrubStop != nil {
		close(db.scrubStop)
		<-db.scrubDone
	}
	if db.cleanerStop != nil {
		close(db.cleanerStop)
		<-db.cleanerDone
	}
	if db.prunerStop != nil {
		close(db.prunerStop)
		<-db.prunerDone
	}
	// Stop the applier with a final drain round so a cleanly closed database
	// reopens with converged views. This must happen before the gate is taken
	// exclusively: the drain round's system transactions need gate admission
	// to stay possible (they don't take the gate, but folds contend with any
	// straggling committer's latches).
	if db.applierStop != nil {
		db.applierDrainOnStop.Store(true)
		close(db.applierStop)
		<-db.applierDone
	}
	// Wait for in-flight transactions to drain.
	db.gate.Lock()
	defer db.gate.Unlock()
	db.lm.Close()
	return db.log.Close()
}

// Crash simulates a process crash for tests and the recovery experiments:
// the instance stops without a clean shutdown. With flush set, buffered log
// records reach the OS first (they would survive a process crash); without
// it they are lost (a machine-crash upper bound under SyncNone).
func (db *DB) Crash(flush bool) {
	if db.closed.Swap(true) {
		return
	}
	db.watchdog.Close()
	// Stop the scrubber before anything it reads through (and before the
	// gate is taken exclusively — each scrub slice is a gate reader).
	if db.scrubStop != nil {
		close(db.scrubStop)
		<-db.scrubDone
	}
	if db.cleanerStop != nil {
		close(db.cleanerStop)
		<-db.cleanerDone
	}
	if db.prunerStop != nil {
		close(db.prunerStop)
		<-db.prunerDone
	}
	// A crash loses the applier queue: pending deferred deltas were never
	// logged, which is exactly the staleness Open's recovery refresh repairs.
	if db.applierStop != nil {
		close(db.applierStop)
		<-db.applierDone
	}
	if flush {
		db.log.Sync(0)
	}
	db.lm.Close()
}

// Catalog returns the current catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.reg.Catalog() }

// RecoverySummary reports what restart did when this instance opened.
func (db *DB) RecoverySummary() recovery.Summary { return db.recovered }

// Stats returns a snapshot of the cumulative counters.
func (db *DB) Stats() Stats {
	return Stats{
		Commits:       db.commits.Load(),
		Aborts:        db.aborts.Load(),
		SysTxns:       db.sysTxns.Load(),
		Folds:         db.folds.Load(),
		GhostsCreated: db.ghostsCreated.Load(),
		GhostsErased:  db.ghostsErased.Load(),
		Escalations:   db.escalations.Load(),
		Lock:          db.lm.Snapshot(),
	}
}

// Metrics returns the full structured observability snapshot: engine
// counters, per-phase transaction timing, lock wait attribution, escrow
// contention, WAL group-commit behavior, ghost-cleaner backlog, and the
// restart's recovery phases. Its JSON encoding is a stable schema.
func (db *DB) Metrics() metrics.Snapshot {
	now := time.Now()
	s := db.met.Snap()
	s.Engine = metrics.EngineSnapshot{
		Commits:        db.commits.Load(),
		Aborts:         db.aborts.Load(),
		SysTxns:        db.sysTxns.Load(),
		Escalations:    db.escalations.Load(),
		UptimeNs:       now.Sub(db.started).Nanoseconds(),
		SnapshotUnixNs: now.UnixNano(),
	}
	s.Hotspots = db.hotspots()
	s.MVCC.Snapshots = db.oracle.SnapshotsBegun()
	s.MVCC.ActiveSnapshots = db.oracle.ActiveSnapshots()
	s.MVCC.OldestSnapshotAgeNs = db.oracle.OldestSnapshotAge(now).Nanoseconds()
	s.MVCC.Watermark = db.oracle.ReadTS()
	ls := db.lm.Snapshot()
	s.Lock.Shards = ls.Shards
	s.Lock.Requests = ls.Requests
	s.Lock.Waits = ls.Waits
	s.Lock.Deadlocks = ls.Deadlocks
	s.Lock.Timeouts = ls.Timeouts
	s.Lock.Collisions = ls.Collisions
	s.Lock.MaxQueueDepth = ls.MaxQueueDepth
	s.Lock.Sweeps = ls.Sweeps
	s.Lock.LastSweepNs = ls.LastSweep.Nanoseconds()
	s.Lock.MaxSweepNs = ls.MaxSweep.Nanoseconds()
	for i := range s.Lock.PerShard {
		if i < len(ls.PerShard) {
			s.Lock.PerShard[i].Collisions = ls.PerShard[i].Collisions
			s.Lock.PerShard[i].MaxQueueDepth = ls.PerShard[i].MaxQueueDepth
			s.Lock.PerShard[i].Resources = ls.PerShard[i].Resources
		}
	}
	s.Deferred.PendingGroups = db.deferredPending.Load()
	if views := db.deferredViews(); len(views) > 0 {
		readTS := db.oracle.ReadTS()
		var minWM uint64
		for i, v := range views {
			wm := db.oracle.ViewWatermark(v.ID)
			s.Deferred.Views = append(s.Deferred.Views, metrics.DeferredViewSnapshot{
				Tree:      uint32(v.ID),
				View:      v.Name,
				Watermark: wm,
			})
			if i == 0 || wm < minWM {
				minWM = wm
			}
		}
		s.Deferred.Watermark = minWM
		if readTS > minWM {
			s.Deferred.LagTS = readTS - minWM
		}
	}
	if oldest := db.deferredOldestNs.Load(); oldest > 0 && now.UnixNano() > oldest {
		s.Deferred.StalenessNs = now.UnixNano() - oldest
	}
	// Per-view freshness: the commit-to-visible distribution each maintenance
	// path observed, plus the current staleness gauge. Escrow/immediate views
	// are never stale (their lag IS the commit path); deferred views age by
	// their oldest unapplied publish (applier table merged with the undrained
	// queue).
	s.Freshness.SLONs = int64(db.opts.FreshnessSLO)
	if views := db.Catalog().Views(); len(views) > 0 {
		staleOldest := db.deferredStaleOldest()
		sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
		for _, v := range views {
			f := db.met.Freshness.Get(v.ID)
			var staleNs int64
			if v.Strategy == catalog.StrategyDeferred {
				if w, ok := staleOldest[v.ID]; ok && now.UnixNano() > w {
					staleNs = now.UnixNano() - w
				}
			}
			f.StalenessNs.Store(staleNs)
			s.Freshness.Views = append(s.Freshness.Views, metrics.ViewFreshnessSnapshot{
				Tree:            uint32(v.ID),
				View:            v.Name,
				Strategy:        v.Strategy.String(),
				StalenessNs:     staleNs,
				CommitToVisible: f.CommitToVisible.Snap(),
			})
		}
	}
	// Scrub coverage: the registry filled the counters; resolve per-view
	// names here (sorted by tree ID, bounded by the catalog).
	s.Scrub.Enabled = db.scrubStop != nil && !db.closed.Load()
	if views := db.Catalog().Views(); len(views) > 0 {
		sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
		for _, v := range views {
			vs := db.met.Scrub.Views.Get(v.ID)
			s.Scrub.Views = append(s.Scrub.Views, metrics.ViewScrubSnapshot{
				Tree:           uint32(v.ID),
				View:           v.Name,
				Passes:         vs.Passes.Load(),
				RowsVerified:   vs.RowsVerified.Load(),
				Divergences:    vs.Divergences.Load(),
				CoverageTS:     vs.CoverageTS.Load(),
				LastPassUnixNs: vs.LastPassUnixNs.Load(),
			})
		}
	}
	s.Escrow.Shards = db.ledger.Shards()
	s.Ghost.Created = db.ghostsCreated.Load()
	s.Ghost.Erased = db.ghostsErased.Load()
	s.Recovery = metrics.RecoverySnapshot{
		Gen:        db.recovered.Gen,
		Replayed:   db.recovered.Replayed,
		Losers:     db.recovered.Losers,
		UndoneOps:  db.recovered.UndoneOps,
		Torn:       db.recovered.Torn,
		Fresh:      db.recovered.Fresh,
		AnalysisNs: db.recovered.Analysis.Nanoseconds(),
		RedoNs:     db.recovered.Redo.Nanoseconds(),
		UndoNs:     db.recovered.Undo.Nanoseconds(),
	}
	if db.flight != nil {
		s.Flight = metrics.FlightSnapshot{
			Enabled:  true,
			Capacity: db.flight.Capacity(),
			Recorded: db.flight.Recorded(),
			Dumps:    db.flight.Dumps(),
		}
	}
	return s
}

// ErrFlightDisabled reports a dump request against a database opened with the
// flight recorder disabled (FlightRecorderSize < 0).
var ErrFlightDisabled = errors.New("core: flight recorder disabled")

// DumpFlightRecord writes the flight recorder's history to w as a
// human-readable causal timeline: one line per event (sequence, relative
// time, span, description) followed by a per-transaction span summary.
func (db *DB) DumpFlightRecord(w io.Writer) error {
	if db.flight == nil {
		return ErrFlightDisabled
	}
	return db.flight.WriteTimeline(w)
}

// WriteFlightRecordJSONL writes the flight recorder's history to w as JSON
// Lines, one event per line in sequence order — the machine-readable twin of
// DumpFlightRecord with a stable, golden-tested schema.
func (db *DB) WriteFlightRecordJSONL(w io.Writer) error {
	if db.flight == nil {
		return ErrFlightDisabled
	}
	return db.flight.WriteJSONL(w)
}

// tree returns the tree for tid, creating it on demand.
func (db *DB) tree(tid id.Tree) *btree.Tree {
	db.treesMu.RLock()
	t := db.trees[tid]
	db.treesMu.RUnlock()
	if t != nil {
		return t
	}
	db.treesMu.Lock()
	defer db.treesMu.Unlock()
	if t = db.trees[tid]; t == nil {
		t = btree.New()
		db.trees[tid] = t
	}
	return t
}

// hit notifies the fault hooks (when armed) that the engine reached a named
// crash point; a non-nil error must abort the surrounding operation.
func (db *DB) hit(p fault.Point) error {
	if db.opts.Hooks == nil {
		return nil
	}
	return db.opts.Hooks.Hit(p)
}

// logOp logs a record for t and applies it to the trees (write-ahead
// discipline: the record reaches the log buffer before the trees change).
func (db *DB) logOp(t *txn.Txn, rec *wal.Record) error {
	if err := db.hit(fault.PointWALAppend); err != nil {
		return err
	}
	start := time.Now()
	rec.Txn = t.ID
	rec.Sys = t.Sys
	_, walBytes, err := db.log.AppendSized(rec)
	if err != nil {
		return err
	}
	db.met.Hot.Views.Get(rec.Tree).WALBytes.Add(int64(walBytes))
	if isRowOp(rec.Type) {
		// Pin the operation's provisional version before the tree changes, so
		// the chain seed (when this is the row's first tracked mutation) is the
		// committed pre-image. The caller's write lock — or the structure latch,
		// for view rows — still serializes the row here.
		tree := db.tree(rec.Tree)
		db.mvcc.Pin(rec.Tree, rec.Key, rec, t.ID, func() ([]byte, bool, bool) {
			return tree.Get(rec.Key)
		})
	}
	if err := apply.Apply(db.reg, db.tree, rec); err != nil {
		db.mvcc.Unpin(rec.Tree, rec.Key, rec)
		return err
	}
	if err := t.RecordOp(rec); err != nil {
		db.mvcc.Unpin(rec.Tree, rec.Key, rec)
		return err
	}
	db.met.Txn.Apply.Observe(time.Since(start))
	return nil
}

// isRowOp reports whether a record type mutates one keyed row (and therefore
// carries a version chain entry).
func isRowOp(t wal.Type) bool {
	switch t {
	case wal.TInsert, wal.TDelete, wal.TUpdate, wal.TSetGhost, wal.TEscrowFold:
		return true
	default:
		return false
	}
}

// stampOps promotes every pinned operation of t to a committed version at ts.
// It must run before the transaction manager wipes t's undo chain.
func (db *DB) stampOps(t *txn.Txn, ts uint64) {
	for _, op := range t.Ops() {
		if isRowOp(op.Type) {
			db.mvcc.Stamp(op.Tree, op.Key, op, ts)
		}
	}
}

// unpinOps discards every pinned operation of t (abort without rollback —
// e.g. a failed commit-record append, where rollbackOps is not run).
func (db *DB) unpinOps(t *txn.Txn) {
	for _, op := range t.Ops() {
		if isRowOp(op.Type) {
			db.mvcc.Unpin(op.Tree, op.Key, op)
		}
	}
}

// defaultMVCCPruneInterval is the default background pruner period: short
// enough that chains stay near-empty under a read-mostly load, long enough
// that an idle engine burns nothing measurable.
const defaultMVCCPruneInterval = 25 * time.Millisecond

// prunerLoop incrementally folds version chains up to the snapshot horizon:
// one store shard per tick, a full rotation per interval. Spreading the pass
// keeps the per-tick pause and allocation burst at 1/shards of a full prune —
// a monolithic pass folds every hot chain and then the write set rebuilds
// them all at once, a visible throughput sawtooth on small machines.
func (db *DB) prunerLoop(interval time.Duration) {
	defer close(db.prunerDone)
	shards := db.mvcc.NumShards()
	step := interval / time.Duration(shards)
	if step <= 0 {
		step = interval
	}
	tick := time.NewTicker(step)
	defer tick.Stop()
	for cursor := 0; ; cursor++ {
		select {
		case <-db.prunerStop:
			return
		case <-tick.C:
			start := time.Now()
			pruned := db.mvcc.PruneShard(cursor, db.oracle.PruneHorizon(), db.foldVersionDeltas)
			if pruned > 0 && db.tracer != nil {
				db.tracer.TraceEvent(metrics.Event{Type: metrics.EventMVCCPrune, Rows: pruned, Dur: time.Since(start)})
			}
		}
	}
}

// PruneVersions folds every version at or below the snapshot horizon (the
// oldest active read timestamp, or the watermark when no snapshot is active)
// into its chain's base and drops quiescent chains. The background pruner
// calls it periodically; tests and operators may call it directly. It returns
// the number of versions pruned.
func (db *DB) PruneVersions() int {
	start := time.Now()
	pruned := db.mvcc.Prune(db.oracle.PruneHorizon(), db.foldVersionDeltas)
	if pruned > 0 && db.tracer != nil {
		db.tracer.TraceEvent(metrics.Event{Type: metrics.EventMVCCPrune, Rows: pruned, Dur: time.Since(start)})
	}
	return pruned
}

// foldVersionDeltas is the pruner's delta folder: it applies committed escrow
// deltas to an encoded view row using the view's compiled maintainer.
func (db *DB) foldVersionDeltas(tree id.Tree, val []byte, deltas []wal.ColDelta) ([]byte, bool, error) {
	m := db.reg.Maintainer(tree)
	if m == nil {
		return nil, false, fmt.Errorf("core: version fold against unknown view %s", tree)
	}
	stored, err := record.DecodeRow(val)
	if err != nil {
		return nil, false, err
	}
	next, err := m.ApplyFold(stored, deltas)
	if err != nil {
		return nil, false, err
	}
	empty, err := m.GroupEmpty(next)
	if err != nil {
		return nil, false, err
	}
	return record.EncodeRow(next), empty, nil
}

// Checkpoint quiesces the database, writes a snapshot generation, and
// truncates the log. Concurrent transactions finish first; new ones wait.
func (db *DB) Checkpoint() error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.gate.Lock()
	defer db.gate.Unlock()
	if err := db.hit(fault.PointCheckpoint); err != nil {
		return err
	}
	db.treesMu.RLock()
	trees := make(map[id.Tree]*btree.Tree, len(db.trees))
	for k, v := range db.trees {
		trees[k] = v
	}
	db.treesMu.RUnlock()
	writer, gen, err := recovery.CheckpointFS(db.opts.FS, db.path, db.gen, db.log, db.Catalog(), trees, db.tm.NextID(), db.opts.SyncMode)
	if err != nil {
		return err
	}
	writer.SetObserver(&db.met.WAL, db.tracer)
	db.log = writer
	db.gen = gen
	return nil
}

// runSysTxn executes fn as a system transaction: begun, logged, and
// committed (or rolled back on error) independently of any user
// transaction, with its locks released at its own end (DESIGN.md §5).
// The caller must already be admitted through the gate.
func (db *DB) runSysTxn(fn func(st *txn.Txn) error) error {
	return db.runSysTxnHook(fn, nil)
}

// runSysTxnHook is runSysTxn with a pre-finish hook: preFinish (when non-nil)
// runs after the commit timestamp is allocated and every version stamped, but
// before FinishCommit publishes it and the locks release. A refresh barrier
// published here is ordered before any later commit's batch — the deferred
// tier's correctness hinge (deferred.go).
func (db *DB) runSysTxnHook(fn func(st *txn.Txn) error, preFinish func(ts uint64)) error {
	st := db.tm.Begin(true, txn.ReadCommitted)
	db.sysTxns.Add(1)
	if _, err := db.log.Append(&wal.Record{Type: wal.TBegin, Txn: st.ID, Sys: true}); err != nil {
		db.tm.Abort(st)
		return err
	}
	if err := fn(st); err != nil {
		db.rollbackOps(st)
		db.log.Append(&wal.Record{Type: wal.TAbortEnd, Txn: st.ID, Sys: true})
		db.tm.Abort(st)
		db.lm.ReleaseAll(st.ID)
		return err
	}
	if err := db.hit(fault.PointSysCommit); err != nil {
		db.rollbackOps(st)
		db.log.Append(&wal.Record{Type: wal.TAbortEnd, Txn: st.ID, Sys: true})
		db.tm.Abort(st)
		db.lm.ReleaseAll(st.ID)
		return err
	}
	if _, err := db.log.Append(&wal.Record{Type: wal.TCommit, Txn: st.ID, Sys: true}); err != nil {
		db.unpinOps(st)
		db.tm.Abort(st)
		db.lm.ReleaseAll(st.ID)
		return err
	}
	// Stamp the system transaction's versions before the manager wipes its
	// undo chain and before its locks release (so the next writer of any of
	// its rows allocates a later timestamp).
	ts := db.oracle.AllocateCommitTS()
	db.stampOps(st, ts)
	if preFinish != nil {
		preFinish(ts)
	}
	db.oracle.FinishCommit(ts)
	db.tm.Commit(st)
	db.lm.ReleaseAll(st.ID)
	return nil
}

// rollbackOps applies and logs compensation records for every operation of
// t, newest first.
func (db *DB) rollbackOps(t *txn.Txn) {
	for _, op := range t.OpsSince(0) {
		clr, err := apply.Invert(db.reg, db.tree, op)
		if err != nil {
			// Inversion of a logged operation cannot legitimately fail; a
			// failure here means corrupted state, so surface it loudly.
			panic(fmt.Sprintf("core: rollback of %s failed: %v", op, err))
		}
		db.log.Append(clr)
		if isRowOp(op.Type) {
			db.mvcc.Unpin(op.Tree, op.Key, op)
		}
	}
}
