package core

import (
	"repro/internal/btree"
	"repro/internal/id"
	"repro/internal/lock"
	"repro/internal/txn"
)

// Key-range (next-key) locking for base tables, in the style the paper's
// engine uses (SQL Server's RangeS/RangeI family): range protection lives in
// a *gap-resource* namespace separate from row locks, so holding a row S
// lock (RepeatableRead) never blocks inserts, while a serializable scan's
// gap locks do.
//
// The gap resource of key k covers the open interval (predecessor(k), k].
// A serializable scan S-locks the gap of every row it returns plus the gap
// of the range's end anchor (the first physical key at/after hi, or the
// tree's infinity). An insert of key i takes an instant-duration X lock on
// the gap of i's successor: if any serializable scan covers the gap i lands
// in, that gap S lock blocks the insert until the scan's transaction ends.

// gapPrefix distinguishes gap resources from row resources. Encoded row
// keys always start with a value tag (0x10–0x60), never 0x01.
const gapPrefix = 0x01

// infinityKey anchors the gap beyond the last key of a tree. 0xFF cannot
// begin an encoded key.
var infinityKey = []byte{0xFF}

// gapResource names the gap ending at key.
func gapResource(tree id.Tree, key []byte) lock.Resource {
	gk := make([]byte, 0, len(key)+1)
	gk = append(gk, gapPrefix)
	gk = append(gk, key...)
	return lock.KeyResource(tree, gk)
}

// successorGap returns the gap resource an insert of key must probe: the
// gap of the next physical key (ghosts included), or the infinity gap. The
// gap key is built in one buffer: prefix byte, then the successor appended
// directly by the tree.
func (db *DB) successorGap(tree id.Tree, key []byte) lock.Resource {
	gk := make([]byte, 1, len(key)+9)
	gk[0] = gapPrefix
	if gk, ok := db.tree(tree).SuccessorAppend(gk, key); ok {
		return lock.KeyResource(tree, gk)
	}
	return gapResource(tree, infinityKey)
}

// ceilingGap returns the end-anchor gap for a scan bounded by hi (nil means
// unbounded → infinity).
func (db *DB) ceilingGap(tree id.Tree, hi []byte) lock.Resource {
	if hi != nil {
		if ceil, ok := db.tree(tree).Ceiling(hi); ok {
			return gapResource(tree, ceil)
		}
	}
	return gapResource(tree, infinityKey)
}

// scanForLevel dispatches a base-table scan to the isolation level's
// protocol:
//
//   - ReadCommitted: momentary S per row, re-read under the lock.
//   - RepeatableRead: S locks on returned rows held to end of transaction.
//   - Serializable: RepeatableRead plus held S locks on each returned row's
//     gap and on the range's end-anchor gap (phantom protection), acquired
//     to a fixpoint so inserts racing the lock acquisition are caught.
func (db *DB) scanForLevel(tx *Tx, tree id.Tree, lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	if tx.t.Isolation == txn.Snapshot {
		return db.snapshotScan(tx, tree, lo, hi, fn)
	}
	if tx.t.Isolation == txn.Serializable {
		return db.serializableScan(tx, tree, lo, hi, fn)
	}
	// Snapshot the candidate keys latch-only, then lock and re-read each
	// (locking while holding the tree latch could deadlock with commits).
	for _, key := range db.snapshotKeys(tree, lo, hi) {
		if tx.t.Isolation == txn.ReadCommitted {
			if err := db.momentaryS(tx.t, tree, key); err != nil {
				return err
			}
		} else {
			if err := db.lockKey(tx.t, tree, key, lock.ModeS); err != nil {
				return err
			}
		}
		val, ghost, ok := db.tree(tree).Get(key)
		if !ok || ghost {
			continue // vanished between snapshot and lock
		}
		more, err := fn(key, val)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	return nil
}

// serializableScan locks the range to a fixpoint before emitting rows: each
// pass locks the rows and gaps it sees plus the end anchor; a committed
// insert that raced an earlier pass shows up in the next pass and gets
// locked too. Once a pass finds nothing new, every gap in [lo, hi) is
// covered, deleters are blocked by the row S locks, and the result set is
// stable.
func (db *DB) serializableScan(tx *Tx, tree id.Tree, lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	const maxPasses = 64
	locked := map[string]bool{}
	for pass := 0; ; pass++ {
		if pass >= maxPasses {
			return lock.ErrTimeout // the range would not stabilize
		}
		fresh := 0
		for _, key := range db.snapshotKeys(tree, lo, hi) {
			if locked[string(key)] {
				continue
			}
			fresh++
			if err := db.lockKey(tx.t, tree, key, lock.ModeS); err != nil {
				return err
			}
			if err := db.lockRes(tx.t, gapResource(tree, key), lock.ModeS); err != nil {
				return err
			}
			locked[string(key)] = true
		}
		// (Re-)acquire the end anchor; it may have moved closer after an
		// insert landed ahead of it, and holding the superseded anchor's
		// gap is merely extra coverage.
		if err := db.lockRes(tx.t, db.ceilingGap(tree, hi), lock.ModeS); err != nil {
			return err
		}
		if pass > 0 && fresh == 0 {
			break
		}
	}
	for _, key := range db.snapshotKeys(tree, lo, hi) {
		val, ghost, ok := db.tree(tree).Get(key)
		if !ok || ghost {
			continue
		}
		more, err := fn(key, val)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
	return nil
}

// snapshotKeys collects the live keys of [lo, hi) under the tree latch only.
func (db *DB) snapshotKeys(tree id.Tree, lo, hi []byte) [][]byte {
	var keys [][]byte
	db.tree(tree).Scan(lo, hi, false, func(it btree.Item) bool {
		keys = append(keys, append([]byte(nil), it.Key...))
		return true
	})
	return keys
}
