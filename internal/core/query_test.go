package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

func TestScanTableRange(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	var rows []record.Row
	for i := int64(0); i < 50; i++ {
		rows = append(rows, acctRow(i, i%5, i))
	}
	insertAccounts(t, db, rows...)

	for _, level := range []txn.Level{txn.ReadCommitted, txn.Serializable} {
		tx := begin(t, db, level)
		var got []int64
		err := tx.ScanTable("accounts",
			record.Row{record.Int(10)}, record.Row{record.Int(15)},
			func(r record.Row) bool {
				got = append(got, r[0].AsInt())
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 || got[0] != 10 || got[4] != 14 {
			t.Fatalf("%v: range scan = %v", level, got)
		}
		// Early stop.
		n := 0
		tx.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return n < 3 })
		if n != 3 {
			t.Fatalf("early stop visited %d", n)
		}
		mustCommit(t, tx)
	}
}

func TestAggregateNoViewMatchesView(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	rng := rand.New(rand.NewSource(21))
	var rows []record.Row
	for i := int64(0); i < 300; i++ {
		rows = append(rows, acctRow(i, int64(rng.Intn(7)), int64(rng.Intn(1000))))
	}
	insertAccounts(t, db, rows...)

	tx := begin(t, db, txn.ReadCommitted)
	viaView, err := tx.ScanView("branch_totals")
	if err != nil {
		t.Fatal(err)
	}
	viaScan, err := tx.AggregateNoView("accounts", nil, []int{1}, []expr.AggSpec{
		{Func: expr.AggCountRows},
		{Func: expr.AggSum, Arg: expr.Col(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if len(viaView) != len(viaScan) {
		t.Fatalf("view %d groups, scan %d", len(viaView), len(viaScan))
	}
	for i := range viaView {
		if record.CompareRows(viaView[i].Key, viaScan[i].Key) != 0 ||
			record.CompareRows(viaView[i].Result, viaScan[i].Result) != 0 {
			t.Fatalf("group %d: view %v/%v scan %v/%v", i,
				viaView[i].Key, viaView[i].Result, viaScan[i].Key, viaScan[i].Result)
		}
	}
}

func TestAggregateNoViewWithFilter(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 5), acctRow(3, 8, 50))
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	out, err := tx.AggregateNoView("accounts",
		expr.Ge(expr.Col(2), expr.ConstInt(50)), // balance >= 50
		[]int{1},
		[]expr.AggSpec{{Func: expr.AggCountRows}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Result[0].AsInt() != 1 || out[1].Result[0].AsInt() != 1 {
		t.Fatalf("filtered agg = %v", out)
	}
}

func TestScanViewXLockUnderReadCommitted(t *testing.T) {
	// Exercises the momentary-S reread path for views whose rows may hold
	// uncommitted data.
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyXLock)
	insertAccounts(t, db, acctRow(1, 1, 10), acctRow(2, 2, 20))
	rows := scanView(t, db, "branch_totals")
	if len(rows) != 2 || rows[0].Result[1].AsInt() != 10 || rows[1].Result[1].AsInt() != 20 {
		t.Fatalf("xlock view scan = %v", rows)
	}
}

func TestScanViewRange(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	var rows []record.Row
	for i := int64(0); i < 40; i++ {
		rows = append(rows, acctRow(i, i%10, 10))
	}
	insertAccounts(t, db, rows...)

	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	got, err := tx.ScanViewRange("branch_totals",
		record.Row{record.Int(3)}, record.Row{record.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("range scan = %v", got)
	}
	for i, r := range got {
		if r.Key[0].AsInt() != int64(3+i) || r.Result[0].AsInt() != 4 {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	// Open-ended bounds.
	all, err := tx.ScanViewRange("branch_totals", nil, nil)
	if err != nil || len(all) != 10 {
		t.Fatalf("open scan = %d rows, %v", len(all), err)
	}
	upper, err := tx.ScanViewRange("branch_totals", record.Row{record.Int(8)}, nil)
	if err != nil || len(upper) != 2 {
		t.Fatalf("upper scan = %d rows, %v", len(upper), err)
	}
}

func TestGetViewRowProjection(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: "slim", Kind: catalog.ViewProjection, Left: "accounts",
		ProjectCols: []int{0, 2},
	}); err != nil {
		t.Fatal(err)
	}
	insertAccounts(t, db, acctRow(5, 1, 500))
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	// Projection views are keyed by the source PK.
	row, ok, err := tx.GetViewRow("slim", record.Row{record.Int(5)})
	if err != nil || !ok || row[1].AsInt() != 500 {
		t.Fatalf("projection get = %v %v %v", row, ok, err)
	}
	if _, ok, _ := tx.GetViewRow("slim", record.Row{record.Int(6)}); ok {
		t.Fatal("missing projection row found")
	}
}

func TestRepeatableReadHoldsRowLocks(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	reader := begin(t, db, txn.RepeatableRead)
	row, _, err := reader.Get("accounts", record.Row{record.Int(1)})
	if err != nil || row[2].AsInt() != 100 {
		t.Fatal(err)
	}
	// A writer updating that row must block until the reader finishes.
	done := make(chan error, 1)
	go func() {
		w, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			done <- err
			return
		}
		if err := w.Update("accounts", record.Row{record.Int(1)},
			map[int]record.Value{2: record.Int(0)}); err != nil {
			w.Rollback()
			done <- err
			return
		}
		done <- w.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("writer did not block on RR reader: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Repeatable: the reader still sees 100.
	row, _, _ = reader.Get("accounts", record.Row{record.Int(1)})
	if row[2].AsInt() != 100 {
		t.Fatalf("RR reread = %d", row[2].AsInt())
	}
	mustCommit(t, reader)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setupBanking(t, db, catalog.StrategyEscrow)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
	if _, err := db.Begin(txn.ReadCommitted); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin after close = %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close = %v", err)
	}
	if err := db.CheckConsistency(); !errors.Is(err, ErrClosed) {
		t.Fatalf("check after close = %v", err)
	}
	if n := db.CleanGhosts(); n != 0 {
		t.Fatalf("clean after close = %d", n)
	}
	if _, err := db.RefreshView("branch_totals"); !errors.Is(err, ErrClosed) {
		t.Fatalf("refresh after close = %v", err)
	}
	// DDL after close fails too.
	if err := db.CreateTable("t", []catalog.Column{{Name: "x", Kind: record.KindInt64}}, []int{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ddl after close = %v", err)
	}
}

func TestUnknownObjectsError(t *testing.T) {
	db := openTestDB(t, Options{})
	tx := begin(t, db, txn.ReadCommitted)
	defer tx.Rollback()
	if err := tx.Insert("nope", record.Row{record.Int(1)}); err == nil {
		t.Fatal("insert into missing table")
	}
	if _, _, err := tx.Get("nope", record.Row{record.Int(1)}); err == nil {
		t.Fatal("get from missing table")
	}
	if err := tx.ScanTable("nope", nil, nil, nil); err == nil {
		t.Fatal("scan of missing table")
	}
	if _, _, err := tx.GetViewRow("nope", record.Row{record.Int(1)}); err == nil {
		t.Fatal("read of missing view")
	}
	if _, err := tx.ScanView("nope"); err == nil {
		t.Fatal("scan of missing view")
	}
	if _, err := tx.AggregateNoView("nope", nil, nil, nil); err == nil {
		t.Fatal("aggregate over missing table")
	}
}

func TestUpdateNullsOutColumn(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 60))
	// NULLing a balance removes its SUM contribution but keeps COUNT(*).
	tx := begin(t, db, txn.ReadCommitted)
	if err := tx.Update("accounts", record.Row{record.Int(1)},
		map[int]record.Value{2: record.Null()}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 60 {
		t.Fatalf("after NULL update = %d/%d", count, sum)
	}
	checkConsistent(t, db)
}
