package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/txn"
)

// TestConcurrentEscrowWriters is the headline behavior: many writers
// updating the same aggregate group commit concurrently and the final SUM is
// exact.
func TestConcurrentEscrowWriters(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 0))

	const writers = 16
	const perWriter = 50
	var nextID atomic.Int64
	nextID.Store(100)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					errs <- err
					return
				}
				id := nextID.Add(1)
				if err := tx.Insert("accounts", acctRow(id, 7, 10)); err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	count, sum, ok := branchTotal(t, db, 7)
	want := int64(writers*perWriter + 1)
	if !ok || count != want || sum != int64(writers*perWriter*10) {
		t.Fatalf("branch 7 = %d/%d, want %d/%d", count, sum, want, writers*perWriter*10)
	}
	checkConsistent(t, db)
}

// TestConcurrentMixedCommitAbort interleaves committing and aborting
// writers; only committed work may appear.
func TestConcurrentMixedCommitAbort(t *testing.T) {
	db := openTestDB(t, Options{GhostCleanInterval: 5 * time.Millisecond})
	setupBanking(t, db, catalog.StrategyEscrow)

	const writers = 12
	const perWriter = 40
	var committedSum atomic.Int64
	var committedCount atomic.Int64
	var nextID atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					t.Error(err)
					return
				}
				id := nextID.Add(1)
				amount := int64(rng.Intn(100))
				branch := int64(rng.Intn(3))
				if err := tx.Insert("accounts", acctRow(id, branch, amount)); err != nil {
					tx.Rollback()
					continue
				}
				if rng.Intn(3) == 0 {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err == nil {
					committedSum.Add(amount)
					committedCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	var total, count int64
	for b := int64(0); b < 3; b++ {
		c, s, ok := branchTotal(t, db, b)
		if ok {
			count += c
			total += s
		}
	}
	if count != committedCount.Load() || total != committedSum.Load() {
		t.Fatalf("view says %d/%d, committed %d/%d", count, total, committedCount.Load(), committedSum.Load())
	}
	checkConsistent(t, db)
}

// TestReadCommittedReaderDoesNotBlockOnEscrow shows the paper's reader
// semantics: an RC reader of an escrow view returns immediately while a
// writer holds E locks, and sees only committed values.
func TestReadCommittedReaderDoesNotBlockOnEscrow(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// Writer holds an E lock on branch 7's view row (uncommitted).
	writer := begin(t, db, txn.ReadCommitted)
	if err := writer.Insert("accounts", acctRow(2, 7, 900)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		count, sum, ok := branchTotal(t, db, 7)
		if !ok || count != 1 || sum != 100 {
			t.Errorf("RC reader saw %d/%d, want committed 1/100", count, sum)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RC reader blocked on escrow writer")
	}
	mustCommit(t, writer)
	count, sum, _ := branchTotal(t, db, 7)
	if count != 2 || sum != 1000 {
		t.Fatalf("after commit = %d/%d", count, sum)
	}
}

// TestSerializableReaderBlocksOnEscrow shows the other side of the
// trade-off: a serializable reader's S lock conflicts with E and waits.
func TestSerializableReaderBlocksOnEscrow(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	writer := begin(t, db, txn.ReadCommitted)
	if err := writer.Insert("accounts", acctRow(2, 7, 900)); err != nil {
		t.Fatal(err)
	}

	got := make(chan int64, 1)
	go func() {
		reader := begin(t, db, txn.Serializable)
		defer reader.Rollback()
		res, ok, err := reader.GetViewRow("branch_totals", record.Row{record.Int(7)})
		if err != nil || !ok {
			t.Errorf("serializable read: %v %v", ok, err)
			got <- -1
			return
		}
		got <- res[1].AsInt()
	}()
	select {
	case v := <-got:
		t.Fatalf("serializable reader did not block (saw %d)", v)
	case <-time.After(50 * time.Millisecond):
	}
	mustCommit(t, writer)
	select {
	case v := <-got:
		if v != 1000 {
			t.Fatalf("serializable reader saw %d, want 1000", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serializable reader stuck after writer commit")
	}
}

// TestXLockWritersSerialize shows the baseline's behavior: two writers to
// the same group cannot proceed concurrently.
func TestXLockWritersSerialize(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyXLock)
	insertAccounts(t, db, acctRow(1, 7, 100))

	t1 := begin(t, db, txn.ReadCommitted)
	if err := t1.Insert("accounts", acctRow(2, 7, 10)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		t2, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			done <- err
			return
		}
		if err := t2.Insert("accounts", acctRow(3, 7, 20)); err != nil {
			t2.Rollback()
			done <- err
			return
		}
		done <- t2.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("second xlock writer did not block: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	mustCommit(t, t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	count, sum, _ := branchTotal(t, db, 7)
	if count != 3 || sum != 130 {
		t.Fatalf("final = %d/%d", count, sum)
	}
	checkConsistent(t, db)
}

// TestDeadlockVictimRecovers drives two transactions into a deadlock and
// verifies the victim can roll back and the survivor commits.
func TestDeadlockVictimRecovers(t *testing.T) {
	db := openTestDB(t, Options{LockTimeout: 2 * time.Second})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 1, 10), acctRow(2, 2, 20))

	t1 := begin(t, db, txn.ReadCommitted)
	t2 := begin(t, db, txn.ReadCommitted)
	if err := t1.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(11)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("accounts", record.Row{record.Int(2)}, map[int]record.Value{2: record.Int(21)}); err != nil {
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	go func() {
		r1 <- t1.Update("accounts", record.Row{record.Int(2)}, map[int]record.Value{2: record.Int(12)})
	}()
	time.Sleep(50 * time.Millisecond)
	err2 := t2.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(22)})
	if err2 == nil {
		t.Fatal("expected deadlock for t2")
	}
	if err := t2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)
	row, _, _ := func() (record.Row, bool, error) {
		tx := begin(t, db, txn.ReadCommitted)
		defer tx.Rollback()
		return tx.Get("accounts", record.Row{record.Int(2)})
	}()
	if row[2].AsInt() != 12 {
		t.Fatalf("row 2 balance = %d, want 12 (t1's write)", row[2].AsInt())
	}
	checkConsistent(t, db)
}

// TestRandomWorkloadStress runs a mixed random workload across strategies
// and isolation levels, then checks the global invariant.
func TestRandomWorkloadStress(t *testing.T) {
	db := openTestDB(t, Options{GhostCleanInterval: 10 * time.Millisecond, LockTimeout: 5 * time.Second})
	setupBanking(t, db, catalog.StrategyEscrow)
	// A second, X-lock view over the same table stresses both paths at once.
	if err := db.CreateIndexedView(catalog.View{
		Name: "branch_totals_x", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
		Strategy: catalog.StrategyXLock,
	}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const steps = 120
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			levels := []txn.Level{txn.ReadCommitted, txn.RepeatableRead, txn.Serializable}
			for i := 0; i < steps; i++ {
				tx, err := db.Begin(levels[rng.Intn(3)])
				if err != nil {
					t.Error(err)
					return
				}
				failed := false
				for op := 0; op < 1+rng.Intn(3) && !failed; op++ {
					id := int64(g*1000 + rng.Intn(60))
					branch := int64(rng.Intn(4))
					switch rng.Intn(4) {
					case 0:
						failed = tx.Insert("accounts", acctRow(id, branch, int64(rng.Intn(50)))) != nil
					case 1:
						failed = tx.Delete("accounts", record.Row{record.Int(id)}) != nil
					case 2:
						failed = tx.Update("accounts", record.Row{record.Int(id)},
							map[int]record.Value{2: record.Int(int64(rng.Intn(50)))}) != nil
					default:
						_, _, err := tx.GetViewRow("branch_totals", record.Row{record.Int(branch)})
						failed = err != nil
					}
				}
				if failed || rng.Intn(5) == 0 {
					tx.Rollback()
				} else if err := tx.Commit(); err != nil {
					// Commit can fail only via injected faults, which this
					// test does not use.
					t.Errorf("commit: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	checkConsistent(t, db)
	st := db.Stats()
	if st.Commits == 0 {
		t.Fatal("no commits happened")
	}
	t.Logf("stats: %+v", st)
}
