package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/record"
	"repro/internal/txn"
)

// beginSnapshot starts a read-only snapshot transaction.
func beginSnapshot(t *testing.T, db *DB) *Tx {
	t.Helper()
	tx, err := db.BeginTx(context.Background(), TxOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// viewSum reads branch_totals for a branch inside tx and returns count/sum.
func viewSum(t *testing.T, tx *Tx, branch int64) (count, sum int64, ok bool) {
	t.Helper()
	res, ok, err := tx.GetViewRow("branch_totals", record.Row{record.Int(branch)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return 0, 0, false
	}
	if res[1].IsNull() {
		return res[0].AsInt(), 0, true
	}
	return res[0].AsInt(), res[1].AsInt(), true
}

func TestSnapshotReadIsStable(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100), acctRow(2, 7, 50))

	snap := beginSnapshot(t, db)
	if count, sum, ok := viewSum(t, snap, 7); !ok || count != 2 || sum != 150 {
		t.Fatalf("snapshot view = %d/%d/%v", count, sum, ok)
	}
	// A writer commits a deposit after the snapshot began.
	w := begin(t, db, txn.ReadCommitted)
	if err := w.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(125)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w)

	// The snapshot still sees the pre-commit world: base row and view row.
	row, ok, err := snap.Get("accounts", record.Row{record.Int(1)})
	if err != nil || !ok || row[2].AsInt() != 100 {
		t.Fatalf("snapshot base row = %v %v %v", row, ok, err)
	}
	if count, sum, ok := viewSum(t, snap, 7); !ok || count != 2 || sum != 150 {
		t.Fatalf("snapshot view after commit = %d/%d/%v", count, sum, ok)
	}
	n := 0
	if err := snap.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("snapshot scan saw %d rows", n)
	}
	mustCommit(t, snap)

	// A fresh snapshot sees the new state.
	snap2 := beginSnapshot(t, db)
	if count, sum, ok := viewSum(t, snap2, 7); !ok || count != 2 || sum != 175 {
		t.Fatalf("fresh snapshot view = %d/%d/%v", count, sum, ok)
	}
	mustCommit(t, snap2)
	checkConsistent(t, db)
}

func TestSnapshotReadDoesNotBlockOnWriterLocks(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// Writer holds an uncommitted X lock on row 1 and an E lock on the view
	// group. A lock-based reader would stall; the snapshot reader must not.
	w := begin(t, db, txn.ReadCommitted)
	if err := w.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(999)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		snap := beginSnapshot(t, db)
		defer snap.Rollback()
		row, ok, err := snap.Get("accounts", record.Row{record.Int(1)})
		if err != nil || !ok || row[2].AsInt() != 100 {
			t.Errorf("snapshot under writer lock = %v %v %v", row, ok, err)
		}
		if count, sum, ok := viewSum(t, snap, 7); !ok || count != 1 || sum != 100 {
			t.Errorf("snapshot view under writer lock = %d/%d/%v", count, sum, ok)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot read blocked behind an uncommitted writer")
	}
	mustCommit(t, w)
	checkConsistent(t, db)
}

func TestSnapshotReadOnlyRejectsWrites(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	if _, err := db.BeginTx(context.Background(), TxOptions{Isolation: txn.ReadCommitted, ReadOnly: true}); !errors.Is(err, ErrSnapshotOnly) {
		t.Fatalf("ReadOnly at ReadCommitted err = %v", err)
	}
	snap := beginSnapshot(t, db)
	defer snap.Rollback()
	if err := snap.Insert("accounts", acctRow(2, 7, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert err = %v", err)
	}
	if err := snap.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(1)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("update err = %v", err)
	}
	if err := snap.Delete("accounts", record.Row{record.Int(1)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete err = %v", err)
	}
	// Reads still work after the rejected writes.
	if _, ok, err := snap.Get("accounts", record.Row{record.Int(1)}); !ok || err != nil {
		t.Fatalf("get after rejected write: %v %v", ok, err)
	}
}

func TestSnapshotReadsOwnWrites(t *testing.T) {
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))

	// A non-read-only snapshot transaction writes with locks but reads at its
	// snapshot — except its own writes, which it must see.
	tx, err := db.BeginTx(context.Background(), TxOptions{Isolation: txn.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("accounts", acctRow(2, 7, 50)); err != nil {
		t.Fatal(err)
	}
	row, ok, err := tx.Get("accounts", record.Row{record.Int(2)})
	if err != nil || !ok || row[2].AsInt() != 50 {
		t.Fatalf("own insert invisible: %v %v %v", row, ok, err)
	}
	if err := tx.Update("accounts", record.Row{record.Int(2)}, map[int]record.Value{2: record.Int(75)}); err != nil {
		t.Fatal(err)
	}
	row, ok, err = tx.Get("accounts", record.Row{record.Int(2)})
	if err != nil || !ok || row[2].AsInt() != 75 {
		t.Fatalf("own update invisible: %v %v %v", row, ok, err)
	}
	n := 0
	if err := tx.ScanTable("accounts", nil, nil, func(record.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("own-write scan saw %d rows", n)
	}
	mustCommit(t, tx)
	count, sum, ok := branchTotal(t, db, 7)
	if !ok || count != 2 || sum != 175 {
		t.Fatalf("after commit = %d/%d", count, sum)
	}
	checkConsistent(t, db)
}

func TestPrunerShrinksChainsWhenSnapshotRetires(t *testing.T) {
	// Background pruner disabled: prune points are explicit.
	db := openTestDB(t, Options{MVCCPruneInterval: -1})
	setupBanking(t, db, catalog.StrategyEscrow)
	insertAccounts(t, db, acctRow(1, 7, 100))
	db.waitQuiesced()
	db.PruneVersions() // fold the setup churn away

	snap := beginSnapshot(t, db)
	if count, sum, ok := viewSum(t, snap, 7); !ok || count != 1 || sum != 100 {
		t.Fatalf("pinned snapshot = %d/%d/%v", count, sum, ok)
	}
	// Churn behind the pinned snapshot: each commit stamps versions on the
	// base row and the view group row.
	for i := 0; i < 5; i++ {
		w := begin(t, db, txn.ReadCommitted)
		if err := w.Update("accounts", record.Row{record.Int(1)}, map[int]record.Value{2: record.Int(int64(200 + i))}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, w)
	}
	if db.mvcc.Chains() == 0 {
		t.Fatal("no version chains after churn")
	}
	// Pruning with the snapshot pinned must keep what it still needs...
	db.PruneVersions()
	if db.mvcc.Chains() == 0 {
		t.Fatal("pruner dropped chains a live snapshot depends on")
	}
	// ...and the pinned reader still resolves its old world.
	if count, sum, ok := viewSum(t, snap, 7); !ok || count != 1 || sum != 100 {
		t.Fatalf("pinned snapshot after prune = %d/%d/%v", count, sum, ok)
	}
	row, ok, err := snap.Get("accounts", record.Row{record.Int(1)})
	if err != nil || !ok || row[2].AsInt() != 100 {
		t.Fatalf("pinned base row after prune = %v %v %v", row, ok, err)
	}
	mustCommit(t, snap)

	// With the oldest snapshot retired the horizon advances and every chain
	// folds down to its base and drops.
	db.waitQuiesced()
	for i := 0; db.mvcc.Chains() > 0; i++ {
		if db.PruneVersions() == 0 && db.mvcc.Chains() > 0 {
			t.Fatalf("chains stuck at %d with nothing left to prune", db.mvcc.Chains())
		}
		if i > 10 {
			t.Fatalf("chains did not drain: %d left", db.mvcc.Chains())
		}
	}
	s := db.Metrics()
	if s.MVCC.VersionsPruned == 0 || s.MVCC.PrunePasses == 0 {
		t.Fatalf("prune metrics = %+v", s.MVCC)
	}
	if s.MVCC.Chains != 0 {
		t.Fatalf("chains gauge = %d, want 0", s.MVCC.Chains)
	}
	// New readers see the fully-folded state.
	snap2 := beginSnapshot(t, db)
	if count, sum, ok := viewSum(t, snap2, 7); !ok || count != 1 || sum != 204 {
		t.Fatalf("post-prune snapshot = %d/%d/%v", count, sum, ok)
	}
	mustCommit(t, snap2)
	checkConsistent(t, db)
}

func TestSnapshotScanViewConsistentUnderEscrowCommits(t *testing.T) {
	// Concurrency smoke at the core layer: snapshot readers ScanView while
	// escrow writers move one unit between branch 0 and branch 1 in
	// sum-preserving transfers. Every snapshot must see count == accounts and
	// total sum == the initial total — both legs of a transfer or neither.
	// (The root-level -race hammer scales this up; this keeps a fast
	// deterministic check next to the engine.)
	db := openTestDB(t, Options{})
	setupBanking(t, db, catalog.StrategyEscrow)
	const writers = 4
	const accounts = 2 * writers // each writer owns a disjoint pair
	const perAccount = 1000
	var rows []record.Row
	for i := int64(0); i < accounts; i++ {
		rows = append(rows, acctRow(i, i%2, perAccount))
	}
	insertAccounts(t, db, rows...)
	const total = accounts * perAccount

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			// The writer's own accounts: 2w in branch 0, 2w+1 in branch 1.
			a, b := 2*w, 2*w+1
			for i := int64(0); !stop.Load(); i++ {
				// Alternate between the tilted pair and the level pair; every
				// transaction writes both legs, so the pair's sum is always
				// 2*perAccount and the grand total never moves.
				av, bv := int64(perAccount-1), int64(perAccount+1)
				if i%2 == 1 {
					av, bv = perAccount, perAccount
				}
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					errCh <- err
					return
				}
				err = tx.Update("accounts", record.Row{record.Int(a)}, map[int]record.Value{2: record.Int(av)})
				if err == nil {
					err = tx.Update("accounts", record.Row{record.Int(b)}, map[int]record.Value{2: record.Int(bv)})
				}
				if err != nil {
					tx.Rollback()
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(w))
	}
	readerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 200; i++ {
			snap, err := db.BeginTx(context.Background(), TxOptions{ReadOnly: true})
			if err != nil {
				readerErr <- err
				return
			}
			rows, err := snap.ScanView("branch_totals")
			if err != nil {
				snap.Rollback()
				readerErr <- err
				return
			}
			var count, sum int64
			for _, r := range rows {
				count += r.Result[0].AsInt()
				if !r.Result[1].IsNull() {
					sum += r.Result[1].AsInt()
				}
			}
			snap.Commit()
			if count != accounts || sum != total {
				readerErr <- fmt.Errorf("torn snapshot: count=%d sum=%d, want %d/%d", count, sum, accounts, total)
				return
			}
		}
		readerErr <- nil
	}()
	wg.Wait()
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	db.waitQuiesced()
	checkConsistent(t, db)
}
