// Package recovery implements restart: load the current generation's
// snapshot, redo the log (including CLRs), determine loser transactions, and
// undo them with fresh compensation records — ARIES specialized to
// memory-resident trees rebuilt from a quiesced snapshot (DESIGN.md §2).
// It also implements the checkpoint that creates a new generation.
package recovery

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/apply"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Summary reports what restart did.
type Summary struct {
	Gen       uint64 // generation recovered
	Replayed  int    // records redone from the log
	Losers    int    // transactions rolled back
	UndoneOps int    // operations compensated during undo
	Torn      bool   // the log had a torn tail that was truncated
	Fresh     bool   // no prior state existed

	// Phase durations: analysis = snapshot load, redo = log repair + replay,
	// undo = loser rollback (all zero for a fresh database).
	Analysis time.Duration
	Redo     time.Duration
	Undo     time.Duration
}

// State is a recovered, ready-to-run database image.
type State struct {
	Gen     uint64
	Reg     *apply.Registry
	Trees   map[id.Tree]*btree.Tree
	Log     *wal.Writer
	NextTxn id.Txn
	Summary Summary
}

// Catalog returns the recovered catalog.
func (s *State) Catalog() *catalog.Catalog { return s.Reg.Catalog() }

// txnInfo tracks one transaction seen in the log.
type txnInfo struct {
	began    bool
	finished bool
	sys      bool
	ops      []*wal.Record
	undone   map[uint64]bool // LSNs already compensated by CLRs
}

// Run recovers the database in dirPath, creating it if absent.
func Run(dirPath string, mode wal.SyncMode) (*State, error) {
	return RunFS(fault.OS{}, dirPath, mode)
}

// RunFS is Run on an injectable filesystem.
func RunFS(fsys fault.FS, dirPath string, mode wal.SyncMode) (*State, error) {
	if err := fsys.MkdirAll(dirPath, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: mkdir: %w", err)
	}
	dir := wal.Dir{Path: dirPath, FS: fsys}
	gen, fresh, err := dir.Current()
	if err != nil {
		return nil, err
	}
	if fresh {
		return bootstrap(fsys, dir, mode)
	}

	phaseStart := time.Now()
	cat := catalog.New()
	trees := make(map[id.Tree]*btree.Tree)
	var nextTxn id.Txn = 1
	if _, err := fsys.Stat(dir.SnapPath(gen)); err == nil {
		cat, trees, nextTxn, err = snapshot.ReadFS(fsys, dir.SnapPath(gen))
		if err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("recovery: stat snapshot: %w", err)
	}
	analysisDur := time.Since(phaseStart)
	reg, err := apply.NewRegistry(cat)
	if err != nil {
		return nil, err
	}
	source := func(t id.Tree) *btree.Tree {
		tr := trees[t]
		if tr == nil {
			tr = btree.New()
			trees[t] = tr
		}
		return tr
	}

	// Redo pass: repair the torn tail, then replay every record in order.
	phaseStart = time.Now()
	scanRes, err := wal.RepairFS(fsys, dir.LogPath(gen))
	if err != nil {
		return nil, err
	}
	txns := make(map[id.Txn]*txnInfo)
	info := func(t id.Txn) *txnInfo {
		ti := txns[t]
		if ti == nil {
			ti = &txnInfo{undone: make(map[uint64]bool)}
			txns[t] = ti
		}
		return ti
	}
	sum := Summary{Gen: gen, Torn: scanRes.Torn}
	maxTxn := id.Txn(0)
	_, err = wal.ScanFS(fsys, dir.LogPath(gen), func(rec *wal.Record) error {
		if rec.Txn > maxTxn {
			maxTxn = rec.Txn
		}
		ti := info(rec.Txn)
		switch rec.Type {
		case wal.TBegin:
			ti.began = true
			ti.sys = rec.Sys
		case wal.TCommit, wal.TAbortEnd:
			ti.finished = true
		case wal.TCLR:
			ti.undone[rec.UndoneLSN] = true
		default:
			ti.ops = append(ti.ops, rec)
		}
		sum.Replayed++
		return apply.Apply(reg, source, rec)
	})
	if err != nil {
		return nil, err
	}
	sum.Redo = time.Since(phaseStart)

	// Open the log for appending undo records and new work.
	writer, err := wal.OpenAppendFS(fsys, dir.LogPath(gen), scanRes.LastLSN+1, mode)
	if err != nil {
		return nil, err
	}

	// Undo pass: roll back losers, newest operations first, skipping
	// operations already compensated before the crash.
	phaseStart = time.Now()
	for tid, ti := range txns {
		if !ti.began || ti.finished {
			continue
		}
		sum.Losers++
		for i := len(ti.ops) - 1; i >= 0; i-- {
			op := ti.ops[i]
			if ti.undone[op.LSN] {
				continue
			}
			clr, err := apply.Invert(reg, source, op)
			if err != nil {
				return nil, fmt.Errorf("recovery: undo %s: %w", op, err)
			}
			if _, err := writer.Append(clr); err != nil {
				return nil, err
			}
			sum.UndoneOps++
		}
		end := &wal.Record{Type: wal.TAbortEnd, Txn: tid, Sys: ti.sys}
		if _, err := writer.Append(end); err != nil {
			return nil, err
		}
	}
	if err := writer.Sync(0); err != nil {
		return nil, err
	}
	sum.Undo = time.Since(phaseStart)
	sum.Analysis = analysisDur

	// Every catalog object must have a tree even if never touched.
	for _, tid := range reg.Catalog().AllTreeIDs() {
		source(tid)
	}
	if maxTxn >= nextTxn {
		nextTxn = maxTxn + 1
	}
	return &State{
		Gen:     gen,
		Reg:     reg,
		Trees:   trees,
		Log:     writer,
		NextTxn: nextTxn,
		Summary: sum,
	}, nil
}

func bootstrap(fsys fault.FS, dir wal.Dir, mode wal.SyncMode) (*State, error) {
	reg, err := apply.NewRegistry(catalog.New())
	if err != nil {
		return nil, err
	}
	writer, err := wal.CreateFS(fsys, dir.LogPath(1), 1, mode)
	if err != nil {
		return nil, err
	}
	if err := dir.Commit(1); err != nil {
		writer.Close()
		return nil, err
	}
	return &State{
		Gen:     1,
		Reg:     reg,
		Trees:   make(map[id.Tree]*btree.Tree),
		Log:     writer,
		NextTxn: 1,
		Summary: Summary{Gen: 1, Fresh: true},
	}, nil
}

// Checkpoint writes a new generation: a snapshot of the quiesced state, a
// fresh empty log, and an atomically installed manifest. The caller must
// guarantee quiescence (no active transactions) and must stop using the old
// writer. It returns the new generation's writer.
func Checkpoint(dirPath string, oldGen uint64, oldLog *wal.Writer,
	cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn,
	mode wal.SyncMode) (*wal.Writer, uint64, error) {
	return CheckpointFS(fault.OS{}, dirPath, oldGen, oldLog, cat, trees, nextTxn, mode)
}

// CheckpointFS is Checkpoint on an injectable filesystem.
func CheckpointFS(fsys fault.FS, dirPath string, oldGen uint64, oldLog *wal.Writer,
	cat *catalog.Catalog, trees map[id.Tree]*btree.Tree, nextTxn id.Txn,
	mode wal.SyncMode) (*wal.Writer, uint64, error) {
	dir := wal.Dir{Path: dirPath, FS: fsys}
	if err := oldLog.Close(); err != nil {
		return nil, 0, err
	}
	gen := oldGen + 1
	if err := snapshot.WriteFS(fsys, dir.SnapPath(gen), cat, trees, nextTxn); err != nil {
		return nil, 0, err
	}
	writer, err := wal.CreateFS(fsys, dir.LogPath(gen), 1, mode)
	if err != nil {
		return nil, 0, err
	}
	if err := dir.Commit(gen); err != nil {
		writer.Close()
		return nil, 0, err
	}
	return writer, gen, nil
}
