package recovery

import (
	"os"
	"testing"

	"repro/internal/catalog"
	"repro/internal/id"
	"repro/internal/record"
	"repro/internal/wal"
)

func TestBootstrapFreshDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Log.Close()
	if !st.Summary.Fresh || st.Gen != 1 || st.NextTxn != 1 {
		t.Fatalf("fresh state: %+v", st.Summary)
	}
	// The manifest is committed, so a second Run is no longer fresh.
	st.Log.Close()
	st2, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Log.Close()
	if st2.Summary.Fresh {
		t.Fatal("second run still fresh")
	}
}

func TestRunCreatesMissingDirectory(t *testing.T) {
	dir := t.TempDir() + "/nested/deeper"
	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	st.Log.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("directory not created")
	}
}

// buildLog writes a log with one committed and one loser transaction.
func buildLog(t *testing.T, dir string) (tblID id.Tree) {
	t.Helper()
	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	tbl, err := cat.AddTable("t", []catalog.Column{{Name: "id", Kind: record.KindInt64}}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	w := st.Log
	append_ := func(rec *wal.Record) {
		t.Helper()
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	append_(&wal.Record{Type: wal.TBegin, Txn: 1, Sys: true})
	append_(&wal.Record{Type: wal.TDDL, Txn: 1, Sys: true, OldVal: catalog.New().Encode(), NewVal: cat.Encode()})
	append_(&wal.Record{Type: wal.TCommit, Txn: 1, Sys: true})

	k1 := record.EncodeKey(record.Row{record.Int(1)})
	k2 := record.EncodeKey(record.Row{record.Int(2)})
	append_(&wal.Record{Type: wal.TBegin, Txn: 2})
	append_(&wal.Record{Type: wal.TInsert, Txn: 2, Tree: tbl.ID, Key: k1, NewVal: []byte("committed")})
	append_(&wal.Record{Type: wal.TCommit, Txn: 2})

	append_(&wal.Record{Type: wal.TBegin, Txn: 3})
	append_(&wal.Record{Type: wal.TInsert, Txn: 3, Tree: tbl.ID, Key: k2, NewVal: []byte("loser")})
	// No commit: txn 3 is a loser.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return tbl.ID
}

func TestRedoAndUndo(t *testing.T) {
	dir := t.TempDir()
	tblID := buildLog(t, dir)

	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Log.Close()
	if st.Summary.Losers != 1 || st.Summary.UndoneOps != 1 {
		t.Fatalf("summary = %+v", st.Summary)
	}
	if st.NextTxn != 4 {
		t.Fatalf("NextTxn = %d", st.NextTxn)
	}
	if _, err := st.Catalog().Table("t"); err != nil {
		t.Fatal("DDL not replayed")
	}
	tree := st.Trees[tblID]
	k1 := record.EncodeKey(record.Row{record.Int(1)})
	k2 := record.EncodeKey(record.Row{record.Int(2)})
	if v, _, ok := tree.Get(k1); !ok || string(v) != "committed" {
		t.Fatal("committed row lost")
	}
	if _, _, ok := tree.Get(k2); ok {
		t.Fatal("loser's row survived undo")
	}
	// The undo wrote a CLR + abort-end: the log now ends the loser, so a
	// second recovery finds no losers.
	st.Log.Close()
	st2, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Log.Close()
	if st2.Summary.Losers != 0 {
		t.Fatalf("second recovery losers = %d", st2.Summary.Losers)
	}
	if _, _, ok := st2.Trees[tblID].Get(k2); ok {
		t.Fatal("loser's row resurrected by replaying CLRs")
	}
}

func TestCheckpointRotatesGeneration(t *testing.T) {
	dir := t.TempDir()
	tblID := buildLog(t, dir)
	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	writer, gen, err := Checkpoint(dir, st.Gen, st.Log, st.Catalog(), st.Trees, st.NextTxn, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if gen != st.Gen+1 {
		t.Fatalf("gen = %d", gen)
	}
	// Post-checkpoint work goes to the new log.
	k3 := record.EncodeKey(record.Row{record.Int(3)})
	writer.Append(&wal.Record{Type: wal.TBegin, Txn: 10})
	writer.Append(&wal.Record{Type: wal.TInsert, Txn: 10, Tree: tblID, Key: k3, NewVal: []byte("post")})
	writer.Append(&wal.Record{Type: wal.TCommit, Txn: 10})
	writer.Close()

	// The old generation's files are gone.
	d := wal.Dir{Path: dir}
	if _, err := os.Stat(d.LogPath(st.Gen)); !os.IsNotExist(err) {
		t.Fatal("old log not removed")
	}
	st2, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Log.Close()
	if st2.Gen != gen {
		t.Fatalf("recovered gen = %d, want %d", st2.Gen, gen)
	}
	tree := st2.Trees[tblID]
	k1 := record.EncodeKey(record.Row{record.Int(1)})
	if _, _, ok := tree.Get(k1); !ok {
		t.Fatal("snapshotted row lost")
	}
	if _, _, ok := tree.Get(k3); !ok {
		t.Fatal("post-checkpoint row lost")
	}
	// NextTxn respects both snapshot watermark and log records.
	if st2.NextTxn < 11 {
		t.Fatalf("NextTxn = %d", st2.NextTxn)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir)
	// Tear the log tail.
	d := wal.Dir{Path: dir}
	gen, _, _ := d.Current()
	info, err := os.Stat(d.LogPath(gen))
	if err != nil {
		t.Fatal(err)
	}
	os.Truncate(d.LogPath(gen), info.Size()-2)

	st, err := Run(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Log.Close()
	if !st.Summary.Torn {
		t.Fatal("torn tail not reported")
	}
	// The torn record was the loser's insert: now the loser has no ops (its
	// begin may also have survived) — either way recovery must succeed and
	// committed data must be intact.
	k1 := record.EncodeKey(record.Row{record.Int(1)})
	var found bool
	for _, tr := range st.Trees {
		if _, _, ok := tr.Get(k1); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("committed row lost after torn-tail recovery")
	}
}
