package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorruptRow is returned when a row payload cannot be decoded.
var ErrCorruptRow = errors.New("record: corrupt row encoding")

// Row encoding: a varint column count, then per column a kind byte followed
// by a kind-specific payload (varint-framed for strings/bytes). Unlike the
// key encoding it is not order-preserving, but it is compact and exact.

// AppendRow appends the encoding of r to dst.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case KindNull:
		case KindBool:
			dst = append(dst, byte(v.i))
		case KindInt64:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.b)))
			dst = append(dst, v.b...)
		default:
			panic(fmt.Sprintf("record: cannot row-encode kind %d", v.kind))
		}
	}
	return dst
}

// EncodeRow returns the encoding of r in a fresh slice.
func EncodeRow(r Row) []byte {
	// Size the buffer once: varint count plus per-value worst cases, so
	// AppendRow never reallocates mid-encode.
	size := binary.MaxVarintLen64
	for _, v := range r {
		switch v.Kind() {
		case KindString:
			size += 1 + binary.MaxVarintLen64 + len(v.s)
		case KindBytes:
			size += 1 + binary.MaxVarintLen64 + len(v.b)
		default:
			size += 1 + binary.MaxVarintLen64
		}
	}
	return AppendRow(make([]byte, 0, size), r)
}

// DecodeRow decodes an encoded row. The returned row does not alias buf.
func DecodeRow(buf []byte) (Row, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > uint64(len(buf)) {
		return nil, ErrCorruptRow
	}
	buf = buf[used:]
	r := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(buf) == 0 {
			return nil, ErrCorruptRow
		}
		kind := Kind(buf[0])
		buf = buf[1:]
		switch kind {
		case KindNull:
			r = append(r, Null())
		case KindBool:
			if len(buf) < 1 {
				return nil, ErrCorruptRow
			}
			r = append(r, Bool(buf[0] != 0))
			buf = buf[1:]
		case KindInt64:
			v, used := binary.Varint(buf)
			if used <= 0 {
				return nil, ErrCorruptRow
			}
			r = append(r, Int(v))
			buf = buf[used:]
		case KindFloat64:
			if len(buf) < 8 {
				return nil, ErrCorruptRow
			}
			r = append(r, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf))))
			buf = buf[8:]
		case KindString:
			s, rest, err := takeFramed(buf)
			if err != nil {
				return nil, err
			}
			r = append(r, Str(string(s)))
			buf = rest
		case KindBytes:
			s, rest, err := takeFramed(buf)
			if err != nil {
				return nil, err
			}
			b := make([]byte, len(s))
			copy(b, s)
			r = append(r, Bytes(b))
			buf = rest
		default:
			return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptRow, kind)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRow, len(buf))
	}
	return r, nil
}

func takeFramed(buf []byte) ([]byte, []byte, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > uint64(len(buf)-used) {
		return nil, nil, ErrCorruptRow
	}
	return buf[used : used+int(n)], buf[used+int(n):], nil
}
