package record

import (
	"bytes"
	"errors"
	"fmt"
	"math"
)

// Key-encoding tag bytes. Tags are chosen so that encoded keys for values of
// different kinds order the same way Compare orders the kinds.
const (
	tagNull   byte = 0x10
	tagFalse  byte = 0x20
	tagTrue   byte = 0x21
	tagInt    byte = 0x30
	tagFloat  byte = 0x40
	tagString byte = 0x50
	tagBytes  byte = 0x60
)

// ErrCorruptKey is returned when a key cannot be decoded.
var ErrCorruptKey = errors.New("record: corrupt key encoding")

// AppendKey appends the order-preserving encoding of v to dst and returns the
// extended slice. For any values a, b:
//
//	bytes.Compare(AppendKey(nil,a), AppendKey(nil,b)) == Compare(a, b)
func AppendKey(dst []byte, v Value) []byte {
	switch v.Kind() {
	case KindNull:
		return append(dst, tagNull)
	case KindBool:
		if v.i != 0 {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case KindInt64:
		dst = append(dst, tagInt)
		u := uint64(v.i) ^ (1 << 63) // flip sign bit: negatives sort first
		return appendUint64(dst, u)
	case KindFloat64:
		dst = append(dst, tagFloat)
		return appendUint64(dst, floatKeyBits(v.f))
	case KindString:
		dst = append(dst, tagString)
		return appendEscaped(dst, []byte(v.s))
	case KindBytes:
		dst = append(dst, tagBytes)
		return appendEscaped(dst, v.b)
	default:
		panic(fmt.Sprintf("record: cannot key-encode kind %d", v.kind))
	}
}

// floatKeyBits maps a float64 to a uint64 whose unsigned order matches
// compareFloats (NaN first, then -Inf .. -0, +0 .. +Inf).
func floatKeyBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0 // before every other encoded float
	}
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u // negative: flip everything
	}
	return u | (1 << 63) // non-negative: set sign bit
}

func keyBitsToFloat(u uint64) float64 {
	if u == 0 {
		return math.NaN()
	}
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// appendEscaped writes b with 0x00 escaped as (0x00,0xFF) and a terminator
// (0x00,0x01). The terminator sorts below any continuation, so prefixes sort
// first, and below the escape so embedded zero bytes sort correctly.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// AppendKeyRow appends the encodings of every value in the row.
func AppendKeyRow(dst []byte, r Row) []byte {
	for _, v := range r {
		dst = AppendKey(dst, v)
	}
	return dst
}

// EncodeKey returns the key encoding of a row in a fresh slice.
func EncodeKey(r Row) []byte { return AppendKeyRow(nil, r) }

// DecodeKeyValue decodes one value from the front of key, returning the value
// and the remaining bytes.
func DecodeKeyValue(key []byte) (Value, []byte, error) {
	if len(key) == 0 {
		return Value{}, nil, ErrCorruptKey
	}
	tag, rest := key[0], key[1:]
	switch tag {
	case tagNull:
		return Null(), rest, nil
	case tagFalse:
		return Bool(false), rest, nil
	case tagTrue:
		return Bool(true), rest, nil
	case tagInt:
		u, rest, err := takeUint64(rest)
		if err != nil {
			return Value{}, nil, err
		}
		return Int(int64(u ^ (1 << 63))), rest, nil
	case tagFloat:
		u, rest, err := takeUint64(rest)
		if err != nil {
			return Value{}, nil, err
		}
		return Float(keyBitsToFloat(u)), rest, nil
	case tagString:
		b, rest, err := takeEscaped(rest)
		if err != nil {
			return Value{}, nil, err
		}
		return Str(string(b)), rest, nil
	case tagBytes:
		b, rest, err := takeEscaped(rest)
		if err != nil {
			return Value{}, nil, err
		}
		return Bytes(b), rest, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrCorruptKey, tag)
	}
}

func takeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrCorruptKey
	}
	u := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return u, b[8:], nil
}

func takeEscaped(b []byte) ([]byte, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, ErrCorruptKey
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			return out, b[i+2:], nil
		default:
			return nil, nil, ErrCorruptKey
		}
	}
	return nil, nil, ErrCorruptKey
}

// DecodeKey decodes a full key back into a row.
func DecodeKey(key []byte) (Row, error) {
	var r Row
	for len(key) > 0 {
		v, rest, err := DecodeKeyValue(key)
		if err != nil {
			return nil, err
		}
		r = append(r, v)
		key = rest
	}
	return r, nil
}

// KeySuccessor returns the smallest key strictly greater than every key with
// the given prefix; used to build [prefix, successor) range scans.
func KeySuccessor(prefix []byte) []byte {
	out := make([]byte, len(prefix), len(prefix)+1)
	copy(out, prefix)
	return append(out, 0xFF)
}

// CompareKeys compares two encoded keys.
func CompareKeys(a, b []byte) int { return bytes.Compare(a, b) }
