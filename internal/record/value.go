// Package record implements typed tuple values, an order-preserving key
// encoding, and a compact row (value) encoding.
//
// Keys encode so that bytes.Compare on encoded forms agrees with the typed
// comparison order defined by Compare. Rows encode with per-column type tags
// and varint lengths; they round-trip exactly.
package record

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds, in key-encoding sort order: NULL sorts before everything.
const (
	KindNull Kind = iota + 1
	KindBool
	KindInt64
	KindFloat64
	KindString
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBytes:
		return "VARBINARY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed column value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64   // bool (0/1) and int64 payloads
	f    float64 // float64 payload
	s    string  // string payload
	b    []byte  // bytes payload
}

// Null returns the NULL value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a BOOL value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns a BIGINT value.
func Int(v int64) Value { return Value{kind: KindInt64, i: v} }

// Float returns a DOUBLE value.
func Float(v float64) Value { return Value{kind: KindFloat64, f: v} }

// String_ returns a VARCHAR value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Str is shorthand for String_.
func Str(v string) Value { return String_(v) }

// Bytes returns a VARBINARY value. The slice is not copied; callers must not
// mutate it afterwards.
func Bytes(v []byte) Value { return Value{kind: KindBytes, b: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind {
	if v.kind == 0 {
		return KindNull
	}
	return v.kind
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind() == KindNull }

// AsBool returns the BOOL payload; it panics on other kinds.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// AsInt returns the BIGINT payload; it panics on other kinds.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt64)
	return v.i
}

// AsFloat returns the DOUBLE payload; it panics on other kinds.
func (v Value) AsFloat() float64 {
	v.mustBe(KindFloat64)
	return v.f
}

// AsString returns the VARCHAR payload; it panics on other kinds.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.s
}

// AsBytes returns the VARBINARY payload; it panics on other kinds.
func (v Value) AsBytes() []byte {
	v.mustBe(KindBytes)
	return v.b
}

// Numeric returns the value as a float64 for arithmetic, accepting BIGINT and
// DOUBLE. ok is false for other kinds.
func (v Value) Numeric() (f float64, ok bool) {
	switch v.Kind() {
	case KindInt64:
		return float64(v.i), true
	case KindFloat64:
		return v.f, true
	default:
		return 0, false
	}
}

func (v Value) mustBe(k Kind) {
	if v.Kind() != k {
		panic(fmt.Sprintf("record: value is %s, not %s", v.Kind(), k))
	}
}

// String renders the value for debugging and shell output.
func (v Value) String() string {
	switch v.Kind() {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.b)
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Compare orders two values. NULL sorts before every non-NULL value; values
// of different kinds order by kind; within a kind the natural order applies.
// Float NaN sorts before all other floats so the order is total.
func Compare(a, b Value) int {
	ak, bk := a.Kind(), b.Kind()
	if ak != bk {
		if ak < bk {
			return -1
		}
		return 1
	}
	switch ak {
	case KindNull:
		return 0
	case KindBool, KindInt64:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat64:
		return compareFloats(a.f, b.f)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindBytes:
		return compareBytes(a.b, b.b)
	default:
		panic(fmt.Sprintf("record: compare of invalid kind %d", ak))
	}
}

func compareFloats(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	// Order -0 before +0 so the order matches the key encoding exactly.
	as, bs := math.Signbit(a), math.Signbit(b)
	switch {
	case as && !bs:
		return -1
	case !as && bs:
		return 1
	}
	return 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is an ordered tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (byte payloads are copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if v.Kind() == KindBytes {
			b := make([]byte, len(v.b))
			copy(b, v.b)
			v.b = b
		}
		out[i] = v
	}
	return out
}

// CompareRows orders two rows column-by-column, shorter rows first on ties.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	out := "("
	for i, v := range r {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out + ")"
}
