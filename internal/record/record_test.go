package record

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if (Value{}).Kind() != KindNull {
		t.Fatal("zero Value should be NULL")
	}
	if Bool(true).AsBool() != true || Bool(false).AsBool() != false {
		t.Fatal("bool roundtrip")
	}
	if Int(-42).AsInt() != -42 {
		t.Fatal("int roundtrip")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Fatal("float roundtrip")
	}
	if Str("hi").AsString() != "hi" {
		t.Fatal("string roundtrip")
	}
	if !bytes.Equal(Bytes([]byte{1, 2}).AsBytes(), []byte{1, 2}) {
		t.Fatal("bytes roundtrip")
	}
}

func TestValueNumeric(t *testing.T) {
	if f, ok := Int(7).Numeric(); !ok || f != 7 {
		t.Fatalf("Int.Numeric = %v,%v", f, ok)
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Fatalf("Float.Numeric = %v,%v", f, ok)
	}
	if _, ok := Str("x").Numeric(); ok {
		t.Fatal("string should not be numeric")
	}
	if _, ok := Null().Numeric(); ok {
		t.Fatal("null should not be numeric")
	}
}

func TestValueStringer(t *testing.T) {
	cases := map[string]Value{
		"NULL":   Null(),
		"true":   Bool(true),
		"-5":     Int(-5),
		"2.5":    Float(2.5),
		`"ab"`:   Str("ab"),
		"0x0102": Bytes([]byte{1, 2}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Int(1).AsString()
}

func TestCompareOrdering(t *testing.T) {
	// A strictly ascending list across all kinds and edge values.
	asc := []Value{
		Null(),
		Bool(false), Bool(true),
		Int(math.MinInt64), Int(-1), Int(0), Int(1), Int(math.MaxInt64),
		Float(math.NaN()), Float(math.Inf(-1)), Float(-1e300), Float(-1),
		Float(math.Copysign(0, -1)), Float(0), Float(1), Float(1e300), Float(math.Inf(1)),
		Str(""), Str("a"), Str("a\x00"), Str("a\x00b"), Str("ab"), Str("b"),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 1}), Bytes([]byte{1}),
	}
	for i := range asc {
		for j := range asc {
			want := 0
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got := Compare(asc[i], asc[j]); got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", asc[i], asc[j], got, want)
			}
			ka := AppendKey(nil, asc[i])
			kb := AppendKey(nil, asc[j])
			if got := bytes.Compare(ka, kb); got != want {
				t.Errorf("key order Compare(%v, %v) = %d, want %d", asc[i], asc[j], got, want)
			}
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true),
		Int(0), Int(-1), Int(math.MinInt64), Int(math.MaxInt64),
		Float(0), Float(-0.0), Float(1.5), Float(math.Inf(1)), Float(math.Inf(-1)),
		Str(""), Str("hello"), Str("with\x00zero"), Str("ünïcode"),
		Bytes(nil), Bytes([]byte{0, 0xFF, 0}),
	}
	for _, v := range vals {
		enc := AppendKey(nil, v)
		got, rest, err := DecodeKeyValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v: %d leftover bytes", v, len(rest))
		}
		if Compare(got, v) != 0 {
			t.Fatalf("roundtrip %v -> %v", v, got)
		}
	}
	// NaN round-trips to NaN.
	enc := AppendKey(nil, Float(math.NaN()))
	got, _, err := DecodeKeyValue(enc)
	if err != nil || !math.IsNaN(got.AsFloat()) {
		t.Fatalf("NaN roundtrip: %v %v", got, err)
	}
}

func TestKeyRowRoundTrip(t *testing.T) {
	row := Row{Int(12), Str("a\x00b"), Null(), Float(-2.5), Bool(true), Bytes([]byte{9})}
	enc := EncodeKey(row)
	dec, err := DecodeKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if CompareRows(row, dec) != 0 {
		t.Fatalf("roundtrip %v -> %v", row, dec)
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	bad := [][]byte{
		{0x99},                  // unknown tag
		{tagInt, 1, 2},          // short int
		{tagString, 'a'},        // unterminated string
		{tagString, 0x00},       // truncated escape
		{tagString, 0x00, 0x7F}, // invalid escape
		{},                      // empty
	}
	for _, b := range bad {
		if _, _, err := DecodeKeyValue(b); err == nil {
			t.Errorf("DecodeKeyValue(%x) succeeded, want error", b)
		}
	}
}

func TestKeySuccessor(t *testing.T) {
	prefix := EncodeKey(Row{Int(5)})
	succ := KeySuccessor(prefix)
	inside := EncodeKey(Row{Int(5), Str("zzz")})
	outside := EncodeKey(Row{Int(6)})
	if bytes.Compare(inside, succ) >= 0 {
		t.Fatal("extension of prefix should be below successor")
	}
	if bytes.Compare(outside, succ) <= 0 {
		t.Fatal("next prefix should be above successor")
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{Null()},
		{Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(math.NaN()), Float(math.Inf(1))},
		{Str(""), Str("x\x00y"), Bytes([]byte{0xFF})},
		{Bool(true), Bool(false), Null(), Int(0)},
	}
	for _, r := range rows {
		enc := EncodeRow(r)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if len(dec) != len(r) {
			t.Fatalf("len mismatch %v -> %v", r, dec)
		}
		for i := range r {
			a, b := r[i], dec[i]
			if a.Kind() == KindFloat64 && math.IsNaN(a.AsFloat()) {
				if !math.IsNaN(b.AsFloat()) {
					t.Fatalf("NaN lost: %v", b)
				}
				continue
			}
			if Compare(a, b) != 0 {
				t.Fatalf("col %d: %v != %v", i, a, b)
			}
		}
	}
}

func TestDecodeRowErrors(t *testing.T) {
	good := EncodeRow(Row{Int(1), Str("abc")})
	// Truncations at every length must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeRow(good[:i]); err == nil && i != len(good) {
			// A prefix that happens to decode fully without trailing garbage
			// would be a framing bug.
			t.Errorf("DecodeRow(good[:%d]) succeeded", i)
		}
	}
	if _, err := DecodeRow(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeRow([]byte{1, 0x99}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// randomValue builds an arbitrary Value from a rand source.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Uint64()))
	case 3:
		// Finite floats only; NaN breaks Compare==0 symmetry with itself in
		// reflect-based helpers, and is covered by dedicated tests above.
		return Float(math.Float64frombits(r.Uint64() &^ (0x7FF << 52)))
	case 4:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return Str(string(b))
	default:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return Bytes(b)
	}
}

func randomRow(r *rand.Rand) Row {
	row := make(Row, r.Intn(5))
	for i := range row {
		row[i] = randomValue(r)
	}
	return row
}

// Property: key encoding is order-preserving for arbitrary rows.
func TestQuickKeyOrderPreserving(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomRow(r))
			args[1] = reflect.ValueOf(randomRow(r))
		},
	}
	f := func(a, b Row) bool {
		return bytes.Compare(EncodeKey(a), EncodeKey(b)) == CompareRows(a, b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: key and row encodings round-trip arbitrary rows.
func TestQuickRoundTrips(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomRow(r))
		},
	}
	f := func(a Row) bool {
		viaKey, err := DecodeKey(EncodeKey(a))
		if err != nil || CompareRows(a, viaKey) != 0 {
			return false
		}
		viaRow, err := DecodeRow(EncodeRow(a))
		return err == nil && CompareRows(a, viaRow) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRowClone(t *testing.T) {
	orig := Row{Bytes([]byte{1, 2, 3}), Str("s")}
	cl := orig.Clone()
	cl[0].AsBytes()[0] = 99
	if orig[0].AsBytes()[0] == 99 {
		t.Fatal("Clone aliases byte payload")
	}
}

func BenchmarkEncodeKey(b *testing.B) {
	row := Row{Int(123456), Str("some-key-component"), Float(3.25)}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendKeyRow(buf[:0], row)
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	row := Row{Int(123456), Str("some payload string"), Float(3.25), Bool(true)}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendRow(buf[:0], row)
	}
}
