package record

import (
	"math"
	"testing"
)

// rowsEquivalent compares rows treating NaN as equal to NaN.
func rowsEquivalent(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() != b[i].Kind() {
			return false
		}
		if a[i].Kind() == KindFloat64 &&
			math.IsNaN(a[i].AsFloat()) && math.IsNaN(b[i].AsFloat()) {
			continue
		}
		if Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// FuzzDecodeKey: arbitrary bytes must never panic the key decoder, and any
// row that decodes must survive a re-encode/re-decode round trip (byte
// identity is not required: non-minimal varints decode but re-encode
// canonically).
func FuzzDecodeKey(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeKey(Row{Int(42), Str("abc")}))
	f.Add(EncodeKey(Row{Null(), Bool(true), Float(2.5), Bytes([]byte{0, 0xFF})}))
	f.Add([]byte{tagString, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeKey(data)
		if err != nil {
			return
		}
		again, err := DecodeKey(EncodeKey(row))
		if err != nil {
			t.Fatalf("re-decode failed for %x: %v", data, err)
		}
		if !rowsEquivalent(row, again) {
			t.Fatalf("round trip changed %v to %v", row, again)
		}
	})
}

// FuzzDecodeRow: arbitrary bytes must never panic the row decoder, and any
// row that decodes must survive a re-encode/re-decode round trip.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRow(Row{Int(42), Str("abc"), Null()}))
	f.Add(EncodeRow(Row{Float(1.5), Bool(false), Bytes([]byte{1, 2})}))
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeRow(data)
		if err != nil {
			return
		}
		again, err := DecodeRow(EncodeRow(row))
		if err != nil {
			t.Fatalf("re-decode failed for %x: %v", data, err)
		}
		if !rowsEquivalent(row, again) {
			t.Fatalf("round trip changed %v to %v", row, again)
		}
	})
}
