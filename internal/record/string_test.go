package record

import "testing"

func TestRowString(t *testing.T) {
	r := Row{Int(1), Str("a"), Null()}
	if got := r.String(); got != `(1, "a", NULL)` {
		t.Fatalf("Row.String = %q", got)
	}
	if got := (Row{}).String(); got != "()" {
		t.Fatalf("empty Row.String = %q", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt64: "BIGINT",
		KindFloat64: "DOUBLE", KindString: "VARCHAR", KindBytes: "VARBINARY",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
