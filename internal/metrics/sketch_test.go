package metrics

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/id"
)

func TestSketchNilAndZeroValue(t *testing.T) {
	var nilSketch *Sketch
	nilSketch.Add(HotKey{Tree: 1, Key: "k"}, 1, 1)
	if got := nilSketch.Top(5); got != nil {
		t.Fatalf("nil sketch Top = %v, want nil", got)
	}
	if nilSketch.Len() != 0 || nilSketch.Cap() != 0 {
		t.Fatalf("nil sketch Len/Cap = %d/%d, want 0/0", nilSketch.Len(), nilSketch.Cap())
	}
	var zero Sketch
	zero.Add(HotKey{Tree: 1, Key: "k"}, 1, 1)
	if got := zero.Top(5); got != nil {
		t.Fatalf("zero sketch Top = %v, want nil", got)
	}
}

func TestSketchBasicCounts(t *testing.T) {
	s := NewSketch(64)
	a := HotKey{Tree: 7, Key: "alpha"}
	b := HotKey{Tree: 7, Key: "beta"}
	for i := 0; i < 10; i++ {
		s.Add(a, 5, 1)
	}
	s.Add(b, 3, 2)
	top := s.Top(10)
	if len(top) != 2 {
		t.Fatalf("Top len = %d, want 2", len(top))
	}
	if top[0].Key != a || top[0].Val != 50 || top[0].Cnt != 10 || top[0].Err != 0 {
		t.Fatalf("top[0] = %+v, want key %v val 50 cnt 10 err 0", top[0], a)
	}
	if top[1].Key != b || top[1].Val != 3 || top[1].Cnt != 2 {
		t.Fatalf("top[1] = %+v, want key %v val 3 cnt 2", top[1], b)
	}
}

// TestSketchEviction fills one bucket past capacity and checks Space-Saving
// admission: the newcomer inherits the evicted minimum's value as estimate
// floor and error bound.
func TestSketchEviction(t *testing.T) {
	s := NewSketch(sketchWays) // one bucket: every key collides
	for i := 0; i < sketchWays; i++ {
		k := HotKey{Tree: 1, Key: fmt.Sprintf("g%d", i)}
		s.Add(k, int64(10*(i+1)), 1) // values 10..80, min is g0 at 10
	}
	if s.Len() != sketchWays {
		t.Fatalf("Len = %d, want %d", s.Len(), sketchWays)
	}
	newcomer := HotKey{Tree: 1, Key: "fresh"}
	s.Add(newcomer, 4, 1)
	if s.Len() != sketchWays {
		t.Fatalf("Len after evict = %d, want %d", s.Len(), sketchWays)
	}
	top := s.Top(sketchWays)
	var got *HotStat
	for i := range top {
		if top[i].Key == newcomer {
			got = &top[i]
		}
		if top[i].Key == (HotKey{Tree: 1, Key: "g0"}) {
			t.Fatalf("evicted minimum g0 still tracked: %+v", top[i])
		}
	}
	if got == nil {
		t.Fatalf("newcomer not admitted; top = %+v", top)
	}
	// est = evicted min (10) + own delta (4); err = evicted min.
	if got.Val != 14 || got.Err != 10 {
		t.Fatalf("newcomer stat = %+v, want Val 14 Err 10", *got)
	}
	if got.Val-got.Err > 4 {
		t.Fatalf("error bound violated: est %d - err %d > true 4", got.Val, got.Err)
	}
}

// TestSketchZipfAccuracy drives a Zipf(1.1)-skewed stream of group keys
// through a default-size sketch and checks the two Space-Saving guarantees
// that make the attribution trustworthy: the true hottest group is
// recovered as top-1, and every reported estimate brackets the true count
// (true ≤ est, est − err ≤ true).
func TestSketchZipfAccuracy(t *testing.T) {
	const (
		draws  = 200000
		groups = 10000
	)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.1, 1, groups-1)
	s := NewSketch(0) // default capacity
	truth := make(map[HotKey]int64, groups)
	for i := 0; i < draws; i++ {
		k := HotKey{Tree: 3, Key: fmt.Sprintf("grp-%d", zipf.Uint64())}
		truth[k]++
		s.Add(k, 1, 1)
	}
	var hottest HotKey
	var hottestN int64
	for k, n := range truth {
		if n > hottestN {
			hottest, hottestN = k, n
		}
	}
	top := s.Top(10)
	if len(top) == 0 {
		t.Fatal("empty Top after skewed stream")
	}
	if top[0].Key != hottest {
		t.Fatalf("top-1 = %v (est %d), want true hottest %v (true %d)",
			top[0].Key, top[0].Val, hottest, hottestN)
	}
	for _, st := range top {
		tr := truth[st.Key]
		if st.Val < tr {
			t.Fatalf("underestimate for %v: est %d < true %d", st.Key, st.Val, tr)
		}
		if st.Val-st.Err > tr {
			t.Fatalf("error bound violated for %v: est %d − err %d > true %d",
				st.Key, st.Val, st.Err, tr)
		}
	}
}

// TestSketchConcurrentHammer exercises the lock-free hot path and the
// mutex-guarded admit path from 8 goroutines under -race. The hot key is
// updated by every goroutine; cold keys churn the eviction path.
func TestSketchConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		perG    = 20000
	)
	s := NewSketch(64)
	hot := HotKey{Tree: 9, Key: "hot-group"}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				if rng.Intn(2) == 0 {
					s.Add(hot, 3, 1)
				} else {
					k := HotKey{Tree: 9, Key: fmt.Sprintf("cold-%d", rng.Intn(500))}
					s.Add(k, 1, 1)
				}
				if i%4096 == 0 {
					s.Top(4) // concurrent reads race against evicts
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	top := s.Top(1)
	if len(top) != 1 || top[0].Key != hot {
		t.Fatalf("hot key lost under concurrency: top = %+v", top)
	}
	// The hot key is never evicted (it dominates every bucket minimum), so
	// its counters must be exact: torn attribution is only permitted for
	// keys that lose their slot.
	wantVal := int64(0)
	// Each goroutine flips a fair coin per iteration; count exactly by
	// replaying the per-goroutine RNG decision stream.
	for g := 0; g < workers; g++ {
		rng := rand.New(rand.NewSource(int64(g + 1)))
		for i := 0; i < perG; i++ {
			if rng.Intn(2) == 0 {
				wantVal += 3
			} else {
				rng.Intn(500)
			}
		}
	}
	if top[0].Val != wantVal {
		t.Fatalf("hot key val = %d, want exact %d", top[0].Val, wantVal)
	}
}

func TestViewCosts(t *testing.T) {
	var vc ViewCosts
	c := vc.Get(id.Tree(5))
	if c == nil {
		t.Fatal("Get returned nil accumulator")
	}
	c.FoldRows.Add(3)
	c.FoldNs.Add(1000)
	if got := vc.Get(id.Tree(5)); got != c {
		t.Fatal("Get not stable for same tree")
	}
	vc.Get(id.Tree(6)).WALBytes.Add(42)
	seen := map[id.Tree]int64{}
	vc.Each(func(tr id.Tree, c *ViewCost) { seen[tr] = c.FoldRows.Load() })
	if len(seen) != 2 || seen[5] != 3 {
		t.Fatalf("Each saw %v, want trees 5 (rows 3) and 6", seen)
	}
	var nilVC *ViewCosts
	if nilVC.Get(1) != nil {
		t.Fatal("nil ViewCosts Get should return nil")
	}
	nilVC.Each(func(id.Tree, *ViewCost) { t.Fatal("nil Each should not call") })
}

func TestViewCostsConcurrent(t *testing.T) {
	var vc ViewCosts
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				vc.Get(id.Tree(i % 16)).FoldRows.Add(1)
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	vc.Each(func(_ id.Tree, c *ViewCost) { total += c.FoldRows.Load() })
	if total != 8*2000 {
		t.Fatalf("lost updates: total = %d, want %d", total, 8*2000)
	}
}
