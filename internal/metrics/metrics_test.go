package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistogramBasics checks counts, percentile monotonicity, and snapshots.
func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Percentile(0.50), h.Percentile(0.99)
	if p50 <= 0 || p99 < p50 || h.Max() < p99 {
		t.Fatalf("percentiles not monotone: p50=%v p99=%v max=%v", p50, p99, h.Max())
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	s := h.Snap()
	if s.Count != 1000 || s.MaxNs != h.Max().Nanoseconds() || s.MeanNs <= 0 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

// TestRegistryConcurrentHammer drives every registry surface from 8
// goroutines while snapshots are taken concurrently; run under -race this is
// the registry's safety proof.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	r.Lock.InitShards(4)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d := time.Duration(i%512+1) * time.Microsecond
				r.Txn.Begin.Observe(d)
				r.Txn.Apply.Observe(d)
				r.Txn.Fold.Observe(d)
				r.Txn.CommitWait.Observe(d)
				r.Lock.Wait.Observe(d)
				if sw := r.Lock.Shard(i % 5); sw != nil { // index 4 is nil-safe out of range
					sw.Waits.Add(1)
					sw.WaitNs.Add(d.Nanoseconds())
					sw.Deadlocks.Add(1)
					sw.Timeouts.Add(1)
				}
				r.Escrow.ObservePending(i % 17)
				r.Escrow.ObserveFold(i % 9)
				r.Escrow.FoldAborts.Add(1)
				r.WAL.Appends.Add(1)
				r.WAL.CoalescedSyncs.Add(1)
				r.WAL.ObserveBatch(int64(i % 33))
				r.WAL.Flush.Observe(d)
				r.WAL.Fsync.Observe(d)
				r.Ghost.ObservePass(i % 7)
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := json.Marshal(r.Snap()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	s := r.Snap()
	const total = workers * iters
	if s.Txn.Begin.Count != total {
		t.Fatalf("begin count = %d, want %d", s.Txn.Begin.Count, total)
	}
	if s.Escrow.FoldBatches != total || s.Escrow.FoldRows == 0 {
		t.Fatalf("escrow folds: %+v", s.Escrow)
	}
	if s.Escrow.PendingTxnsHighWater != 16 {
		t.Fatalf("pending high water = %d, want 16", s.Escrow.PendingTxnsHighWater)
	}
	if s.WAL.Flushes != total || s.WAL.BatchMax != 32 {
		t.Fatalf("wal: %+v", s.WAL)
	}
	var waits int64
	for _, ps := range s.Lock.PerShard {
		waits += ps.Waits
	}
	if waits == 0 || len(s.Lock.PerShard) != 4 {
		t.Fatalf("per-shard attribution: %+v", s.Lock.PerShard)
	}
}

// TestShardNilSafety exercises the unattached-metrics paths subsystems rely
// on when no registry is wired in.
func TestShardNilSafety(t *testing.T) {
	var lm *LockMetrics
	if lm.Shard(0) != nil {
		t.Fatal("nil LockMetrics should yield nil shards")
	}
	var em *EscrowMetrics
	em.ObservePending(3) // must not panic
	attached := &LockMetrics{}
	if attached.Shard(0) != nil || attached.ShardCount() != 0 {
		t.Fatal("uninitialized shard table should be empty")
	}
}

// TestEventString covers the trace rendering used by SlowLogger.
func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Type: EventLockWait, Mode: "X", Resource: "r", Outcome: "granted", Dur: time.Millisecond}, "lock-wait"},
		{Event{Type: EventFold, Rows: 3, Dur: time.Millisecond}, "3 rows"},
		{Event{Type: EventGroupCommit, Rows: 9, Dur: time.Millisecond}, "9 records"},
		{Event{Type: EventRecovery, Phase: "redo", Dur: time.Second}, "redo"},
		{Event{Type: EventGhostClean, Rows: 2}, "2 erased"},
	}
	for _, c := range cases {
		if got := c.e.String(); !contains(got, c.want) {
			t.Fatalf("%v rendered %q, want substring %q", c.e.Type, got, c.want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
