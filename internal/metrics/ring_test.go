package metrics

import (
	"testing"
	"time"
)

func TestSnapshotRingRates(t *testing.T) {
	r := NewSnapshotRing(4)
	if _, ok := r.Rates(); ok {
		t.Fatal("Rates should fail with <2 snapshots")
	}
	t0 := time.Unix(1000, 0)
	s0 := Snapshot{}
	s0.Engine.Commits = 100
	s0.Hotspots.TopDelta = []HotGroupSnapshot{
		{Tree: 3, View: "v", Key: "a", Value: 50},
	}
	s0.Hotspots.Views = []ViewCostSnapshot{
		{Tree: 3, View: "v", RowsFolded: 10, FoldNs: 10000, WALBytes: 100},
	}
	r.Push(t0, s0)

	s1 := Snapshot{}
	s1.Engine.Commits = 300
	s1.WAL.Appends = 50
	s1.Hotspots.TopDelta = []HotGroupSnapshot{
		{Tree: 3, View: "v", Key: "a", Value: 150},
		{Tree: 3, View: "v", Key: "b", Value: 20}, // new this interval
	}
	s1.Hotspots.TopWait = []HotGroupSnapshot{
		{Tree: 3, View: "v", Key: "a", Value: 2e9},
	}
	s1.Hotspots.Views = []ViewCostSnapshot{
		{Tree: 3, View: "v", RowsFolded: 30, FoldNs: 50000, WALBytes: 300},
	}
	r.Push(t0.Add(2*time.Second), s1)

	rates, ok := r.Rates()
	if !ok {
		t.Fatal("Rates failed with 2 snapshots")
	}
	if rates.Interval != 2*time.Second {
		t.Fatalf("Interval = %v, want 2s", rates.Interval)
	}
	if rates.CommitsPerSec != 100 {
		t.Fatalf("CommitsPerSec = %v, want 100", rates.CommitsPerSec)
	}
	if rates.WALAppendsPerSec != 25 {
		t.Fatalf("WALAppendsPerSec = %v, want 25", rates.WALAppendsPerSec)
	}
	if len(rates.TopDelta) != 2 || rates.TopDelta[0].Key != "a" {
		t.Fatalf("TopDelta = %+v, want a first", rates.TopDelta)
	}
	if rates.TopDelta[0].Rate != 50 { // (150-50)/2s
		t.Fatalf("TopDelta[0].Rate = %v, want 50/s", rates.TopDelta[0].Rate)
	}
	if rates.TopDelta[1].Delta != 20 { // new group counts from zero
		t.Fatalf("TopDelta[1].Delta = %v, want 20", rates.TopDelta[1].Delta)
	}
	// 2e9 wait-ns over a 2s wall interval = 1 waiter-second per second.
	if rates.TopWait[0].Rate != 1 {
		t.Fatalf("TopWait[0].Rate = %v, want 1", rates.TopWait[0].Rate)
	}
	if len(rates.Views) != 1 {
		t.Fatalf("Views = %+v, want 1 entry", rates.Views)
	}
	v := rates.Views[0]
	if v.RowsPerSec != 10 || v.WALBytesPerSec != 100 || v.MeanFoldNs != 2000 {
		t.Fatalf("view rates = %+v, want rows 10/s wal 100B/s mean 2000ns", v)
	}

	// Wrap the ring past capacity; rates still diff the two newest.
	for i := 0; i < 6; i++ {
		s := Snapshot{}
		s.Engine.Commits = int64(300 + (i+1)*10)
		r.Push(t0.Add(time.Duration(3+i)*time.Second), s)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	rates, ok = r.Rates()
	if !ok || rates.CommitsPerSec != 10 {
		t.Fatalf("after wrap: ok=%v CommitsPerSec=%v, want 10", ok, rates.CommitsPerSec)
	}
}

// TestSnapshotRingRatesClampCounterReset pins the restart behavior: a
// Close+reopen hands the ring a fresh registry whose counters restarted from
// zero, and the interval spanning the restart must report zero rates, never
// negative ones.
func TestSnapshotRingRatesClampCounterReset(t *testing.T) {
	r := NewSnapshotRing(4)
	t0 := time.Unix(2000, 0)
	before := Snapshot{}
	before.Engine.Commits = 500
	before.Engine.Aborts = 40
	before.WAL.Appends = 900
	before.Escrow.FoldRows = 300
	r.Push(t0, before)

	after := Snapshot{} // reopened engine: everything restarted from zero
	after.Engine.Commits = 10
	r.Push(t0.Add(time.Second), after)

	rates, ok := r.Rates()
	if !ok {
		t.Fatal("Rates failed with 2 snapshots")
	}
	for name, got := range map[string]float64{
		"CommitsPerSec":    rates.CommitsPerSec,
		"AbortsPerSec":     rates.AbortsPerSec,
		"WALAppendsPerSec": rates.WALAppendsPerSec,
		"FoldRowsPerSec":   rates.FoldRowsPerSec,
	} {
		if got < 0 {
			t.Errorf("%s = %v after counter reset, want clamped >= 0", name, got)
		}
	}
	if rates.CommitsPerSec != 0 {
		t.Errorf("CommitsPerSec = %v across a reset, want 0", rates.CommitsPerSec)
	}
}
