package metrics

import (
	"sync"
	"sync/atomic"

	"repro/internal/id"
)

// ViewFreshness accumulates the freshness picture for one indexed view: the
// commit-to-visible latency distribution (how long after a commit its effect
// became readable in the view) and the current staleness gauge (how far
// behind the view is right now). Escrow-maintained views observe the commit
// path itself and are never stale; deferred/stacked views observe
// publish→watermark and carry the age of their oldest unapplied publish.
type ViewFreshness struct {
	// CommitToVisible is the commit-to-visible latency histogram: for escrow
	// views the commit-time fold path, for deferred views the wall time from
	// the originating commit to the watermark advance that made it readable.
	CommitToVisible Histogram
	// StalenessNs is the current staleness gauge: age in nanoseconds of the
	// oldest commit not yet visible in this view (zero when caught up).
	StalenessNs atomic.Int64
}

// Freshness is a copy-on-write map from view tree ID to its freshness
// accumulator, following the ViewCosts pattern: cardinality is bounded by
// the catalog, hot-path lookups are one atomic pointer load + map read, and
// the mutex is taken only the first time a tree is seen.
type Freshness struct {
	mu sync.Mutex
	m  atomic.Pointer[map[id.Tree]*ViewFreshness]
}

// Get returns the accumulator for tree, creating it on first use. Nil-safe:
// a nil receiver returns nil (callers must nil-check before observing).
func (f *Freshness) Get(tree id.Tree) *ViewFreshness {
	if f == nil {
		return nil
	}
	if mp := f.m.Load(); mp != nil {
		if v, ok := (*mp)[tree]; ok {
			return v
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.m.Load()
	if old != nil {
		if v, ok := (*old)[tree]; ok {
			return v
		}
	}
	next := make(map[id.Tree]*ViewFreshness, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	v := &ViewFreshness{}
	next[tree] = v
	f.m.Store(&next)
	return v
}

// Drop removes a view's accumulator (the view was dropped); its series stop
// being exported rather than freezing at the last value. Nil-safe.
func (f *Freshness) Drop(tree id.Tree) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.m.Load()
	if old == nil {
		return
	}
	if _, ok := (*old)[tree]; !ok {
		return
	}
	next := make(map[id.Tree]*ViewFreshness, len(*old))
	for k, v := range *old {
		if k != tree {
			next[k] = v
		}
	}
	f.m.Store(&next)
}

// Each calls fn for every tracked tree. Iteration order is unspecified.
// Nil-safe.
func (f *Freshness) Each(fn func(tree id.Tree, v *ViewFreshness)) {
	if f == nil {
		return
	}
	mp := f.m.Load()
	if mp == nil {
		return
	}
	for k, v := range *mp {
		fn(k, v)
	}
}
