package metrics

import (
	"sync"
	"sync/atomic"

	"repro/internal/id"
)

// ViewCost accumulates the maintenance bill for one indexed view: how many
// delta rows the commit path folded into it, how long the folds took, and
// how many WAL bytes its maintenance generated. All fields are atomic so
// the fold path never takes a lock to account.
type ViewCost struct {
	FoldRows atomic.Int64
	FoldNs   atomic.Int64
	WALBytes atomic.Int64
}

// ViewCosts is a copy-on-write map from tree ID to its cost accumulator.
// Cardinality is bounded by the catalog (one entry per view/tree), so the
// map never needs eviction. Lookups on the hot path are a single atomic
// pointer load + map read; the mutex is taken only the first time a tree is
// seen, to publish a copied map.
type ViewCosts struct {
	mu sync.Mutex
	m  atomic.Pointer[map[id.Tree]*ViewCost]
}

// Get returns the accumulator for tree, creating it on first use. Nil-safe:
// a nil receiver returns nil (callers must nil-check before accumulating).
func (vc *ViewCosts) Get(tree id.Tree) *ViewCost {
	if vc == nil {
		return nil
	}
	if mp := vc.m.Load(); mp != nil {
		if c, ok := (*mp)[tree]; ok {
			return c
		}
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	old := vc.m.Load()
	if old != nil {
		if c, ok := (*old)[tree]; ok {
			return c
		}
	}
	next := make(map[id.Tree]*ViewCost, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	c := &ViewCost{}
	next[tree] = c
	vc.m.Store(&next)
	return c
}

// Each calls fn for every tracked tree. Iteration order is unspecified.
// Nil-safe.
func (vc *ViewCosts) Each(fn func(tree id.Tree, c *ViewCost)) {
	if vc == nil {
		return
	}
	mp := vc.m.Load()
	if mp == nil {
		return
	}
	for k, v := range *mp {
		fn(k, v)
	}
}
