package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/id"
)

// HotKey identifies one attributable hot spot: a key within a tree. For
// escrow and lock attribution the tree is an indexed view and the key is the
// encoded group key of one aggregate row.
type HotKey struct {
	Tree id.Tree
	Key  string
}

// HotStat is one entry returned by Sketch.Top: an estimated value (and
// update count) for a key, plus the Space-Saving overestimation bound.
// The true total for Key is in [Val-Err, Val].
type HotStat struct {
	Key HotKey
	// Val is the estimated accumulated value (e.g. wait-ns or delta rows).
	Val int64
	// Cnt is the estimated number of updates folded into Val.
	Cnt int64
	// Err is the Space-Saving error bound: the value the slot held when the
	// key was (last) admitted, inherited from whichever key it evicted.
	Err int64
}

// sketchSlot is one tracked key. The hash gate (h) is nonzero iff the slot
// is occupied; readers and hot-path writers verify h, then the full key
// pointer, before touching the counters, so a concurrent evict at worst
// loses one update's worth of attribution — never corrupts a counter of an
// unrelated key by more than that update.
type sketchSlot struct {
	h   atomic.Uint64
	val atomic.Int64
	cnt atomic.Int64
	err atomic.Int64
	key atomic.Pointer[HotKey]
}

// sketchWays is the bucket associativity: a key hashes to one bucket and may
// occupy any of its ways. Eviction (Space-Saving "replace the minimum")
// considers only that bucket, which keeps the slow path O(ways) and bounds
// the per-bucket error independently.
const sketchWays = 8

// DefaultSketchSlots is the default tracked-key capacity. 128 slots track
// the top ~tens of groups with tight error under Zipfian skew while keeping
// the whole sketch in a few cache lines per bucket.
const DefaultSketchSlots = 128

// Sketch is a concurrent Space-Saving (top-K heavy hitter) summary over
// HotKeys, adapted to a set-associative table so the hot path is lock-free:
//
//   - Updates to an already-tracked key are a hash probe over one bucket's
//     ways followed by two atomic adds — no locks, no allocation.
//   - Only admitting a new key (insert or evict-the-bucket-minimum) takes a
//     mutex, and under the skewed workloads the sketch exists to explain,
//     misses are rare by construction.
//
// Space-Saving guarantees est ≥ true and est − err ≤ true for every tracked
// key; any key whose true total exceeds the evicted minimum stays tracked.
// The set-associative restriction weakens the classical bound (the minimum
// is per-bucket, not global) in exchange for bounded probe cost; the error
// each entry actually absorbed is reported per-entry in HotStat.Err, so
// consumers can see the bound rather than trust an a-priori one.
//
// The zero value and nil are both valid, inert sketches: Add drops, Top
// returns nil.
type Sketch struct {
	mu    sync.Mutex // serializes insert/evict only
	slots []sketchSlot
}

// NewSketch returns a sketch tracking up to slots keys (rounded up to a
// multiple of the bucket width; <=0 selects DefaultSketchSlots).
func NewSketch(slots int) *Sketch {
	if slots <= 0 {
		slots = DefaultSketchSlots
	}
	if r := slots % sketchWays; r != 0 {
		slots += sketchWays - r
	}
	return &Sketch{slots: make([]sketchSlot, slots)}
}

// hashHot is FNV-1a over the tree ID and key bytes, pinned nonzero so 0 can
// gate empty slots.
func hashHot(k HotKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	t := uint32(k.Tree)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(t >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(k.Key); i++ {
		h ^= uint64(k.Key[i])
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Add folds one observation into the sketch: val is the quantity being
// attributed (wait-ns, delta rows), cnt the number of underlying events.
// Safe for concurrent use; nil-safe.
func (s *Sketch) Add(k HotKey, val, cnt int64) {
	if s == nil || len(s.slots) == 0 {
		return
	}
	h := hashHot(k)
	base := int(h%uint64(len(s.slots)/sketchWays)) * sketchWays
	bucket := s.slots[base : base+sketchWays]

	// Hot path: the key is already tracked somewhere in its bucket.
	for i := range bucket {
		sl := &bucket[i]
		if sl.h.Load() != h {
			continue
		}
		if kp := sl.key.Load(); kp != nil && *kp == k {
			sl.val.Add(val)
			sl.cnt.Add(cnt)
			return
		}
	}

	// Slow path: admit the key under the mutex.
	s.mu.Lock()
	defer s.mu.Unlock()

	// Re-probe: another goroutine may have admitted it while we waited.
	var empty, min *sketchSlot
	for i := range bucket {
		sl := &bucket[i]
		hv := sl.h.Load()
		if hv == 0 {
			if empty == nil {
				empty = sl
			}
			continue
		}
		if hv == h {
			if kp := sl.key.Load(); kp != nil && *kp == k {
				sl.val.Add(val)
				sl.cnt.Add(cnt)
				return
			}
		}
		if min == nil || sl.val.Load() < min.val.Load() {
			min = sl
		}
	}
	kc := k
	if empty != nil {
		empty.key.Store(&kc)
		empty.val.Store(val)
		empty.cnt.Store(cnt)
		empty.err.Store(0)
		empty.h.Store(h) // publish last: gates hot-path readers
		return
	}
	// Space-Saving eviction: the new key inherits the bucket minimum's value
	// as its estimate floor and error bound.
	old := min.val.Load()
	min.h.Store(0) // unpublish first so hot-path adds to the old key miss
	min.key.Store(&kc)
	min.val.Store(old + val)
	min.cnt.Store(cnt)
	min.err.Store(old)
	min.h.Store(h)
}

// Top returns up to n tracked keys ordered by descending estimated value.
// It reads the table without taking the mutex: a torn read during a
// concurrent evict can at worst mis-report one slot for one call. Nil-safe.
func (s *Sketch) Top(n int) []HotStat {
	if s == nil || len(s.slots) == 0 || n <= 0 {
		return nil
	}
	out := make([]HotStat, 0, n)
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.h.Load() == 0 {
			continue
		}
		kp := sl.key.Load()
		if kp == nil {
			continue
		}
		out = append(out, HotStat{
			Key: *kp,
			Val: sl.val.Load(),
			Cnt: sl.cnt.Load(),
			Err: sl.err.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		if out[i].Key.Tree != out[j].Key.Tree {
			return out[i].Key.Tree < out[j].Key.Tree
		}
		return out[i].Key.Key < out[j].Key.Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Len reports how many keys the sketch currently tracks. Nil-safe.
func (s *Sketch) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.slots {
		if s.slots[i].h.Load() != 0 {
			n++
		}
	}
	return n
}

// Cap reports the tracked-key capacity. Nil-safe.
func (s *Sketch) Cap() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}
