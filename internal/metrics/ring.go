package metrics

import (
	"sort"
	"sync"
	"time"
)

// TimedSnapshot pairs a snapshot with the instant it was cut.
type TimedSnapshot struct {
	At   time.Time
	Snap Snapshot
}

// SnapshotRing keeps the last N timed snapshots so consumers can turn the
// engine's cumulative counters into per-interval rates (the `vtxnshell top`
// dashboard's refresh loop is the main customer). Safe for concurrent use.
type SnapshotRing struct {
	mu  sync.Mutex
	buf []TimedSnapshot
	n   int // total pushed
}

// NewSnapshotRing returns a ring holding up to capacity snapshots (minimum 2:
// a rate needs two points).
func NewSnapshotRing(capacity int) *SnapshotRing {
	if capacity < 2 {
		capacity = 2
	}
	return &SnapshotRing{buf: make([]TimedSnapshot, capacity)}
}

// Push records a snapshot cut at time at.
func (r *SnapshotRing) Push(at time.Time, s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.n%len(r.buf)] = TimedSnapshot{At: at, Snap: s}
	r.n++
}

// Len reports how many snapshots the ring currently holds.
func (r *SnapshotRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// last2 returns the newest and second-newest snapshots.
func (r *SnapshotRing) last2() (cur, prev TimedSnapshot, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 2 {
		return TimedSnapshot{}, TimedSnapshot{}, false
	}
	cur = r.buf[(r.n-1)%len(r.buf)]
	prev = r.buf[(r.n-2)%len(r.buf)]
	return cur, prev, true
}

// Rates is one interval's worth of engine activity, derived by diffing the
// ring's two newest snapshots.
type Rates struct {
	// Interval is the wall time between the two snapshots.
	Interval time.Duration
	// Engine-level rates.
	CommitsPerSec    float64
	AbortsPerSec     float64
	WALAppendsPerSec float64
	FoldRowsPerSec   float64
	// TopWait ranks hot groups by lock wait accumulated this interval
	// (Rate is wait-seconds per wall-second); TopDelta by escrow delta
	// updates this interval (Rate is updates per second).
	TopWait  []GroupRate
	TopDelta []GroupRate
	// Views is the per-view cost delta for the interval, descending by
	// rows folded per second.
	Views []ViewRate
}

// GroupRate is one hot group's per-interval activity.
type GroupRate struct {
	Tree  uint32
	View  string
	Key   string
	Rate  float64 // per-second rate of the sketch value this interval
	Delta int64   // absolute sketch-value delta this interval
	Total int64   // cumulative sketch value
}

// ViewRate is one view's per-interval maintenance cost.
type ViewRate struct {
	Tree           uint32
	View           string
	RowsPerSec     float64
	WALBytesPerSec float64
	// MeanFoldNs is the mean per-row fold latency over the interval (0 when
	// no rows folded).
	MeanFoldNs float64
	RowsTotal  int64
}

// Rates diffs the two newest snapshots into per-interval rates. ok is false
// until the ring holds two snapshots with a positive interval between them.
func (r *SnapshotRing) Rates() (Rates, bool) {
	cur, prev, ok := r.last2()
	if !ok {
		return Rates{}, false
	}
	dt := cur.At.Sub(prev.At)
	if dt <= 0 {
		return Rates{}, false
	}
	sec := dt.Seconds()
	// Clamp counter deltas to zero: a Close+reopen restarts the registry, so
	// the first interval spanning the restart would otherwise report negative
	// rates (the group and view diffs below already clamp the same way).
	delta := func(cur, prev int64) int64 {
		if d := cur - prev; d > 0 {
			return d
		}
		return 0
	}
	out := Rates{
		Interval:         dt,
		CommitsPerSec:    float64(delta(cur.Snap.Engine.Commits, prev.Snap.Engine.Commits)) / sec,
		AbortsPerSec:     float64(delta(cur.Snap.Engine.Aborts, prev.Snap.Engine.Aborts)) / sec,
		WALAppendsPerSec: float64(delta(cur.Snap.WAL.Appends, prev.Snap.WAL.Appends)) / sec,
		FoldRowsPerSec:   float64(delta(cur.Snap.Escrow.FoldRows, prev.Snap.Escrow.FoldRows)) / sec,
	}
	out.TopWait = groupRates(cur.Snap.Hotspots.TopWait, prev.Snap.Hotspots.TopWait, 1e9*sec)
	out.TopDelta = groupRates(cur.Snap.Hotspots.TopDelta, prev.Snap.Hotspots.TopDelta, sec)
	out.Views = viewRates(cur.Snap.Hotspots.Views, prev.Snap.Hotspots.Views, sec)
	return out, true
}

// groupRates diffs two heavy-hitter listings matched by (tree, key). A group
// absent from prev is treated as starting from zero — its first interval
// over-reports by the sketch error bound at worst, which the bound already
// covers. div converts the value delta into the rate unit (seconds for
// counts, wait-ns per wall-ns for waits).
func groupRates(cur, prev []HotGroupSnapshot, div float64) []GroupRate {
	type gk struct {
		tree uint32
		key  string
	}
	pv := make(map[gk]int64, len(prev))
	for _, p := range prev {
		pv[gk{p.Tree, p.Key}] = p.Value
	}
	out := make([]GroupRate, 0, len(cur))
	for _, c := range cur {
		d := c.Value - pv[gk{c.Tree, c.Key}]
		if d < 0 {
			d = 0 // the group was evicted and re-admitted mid-interval
		}
		out = append(out, GroupRate{
			Tree:  c.Tree,
			View:  c.View,
			Key:   c.Key,
			Rate:  float64(d) / div,
			Delta: d,
			Total: c.Value,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

func viewRates(cur, prev []ViewCostSnapshot, sec float64) []ViewRate {
	pv := make(map[uint32]ViewCostSnapshot, len(prev))
	for _, p := range prev {
		pv[p.Tree] = p
	}
	out := make([]ViewRate, 0, len(cur))
	for _, c := range cur {
		p := pv[c.Tree]
		dRows := c.RowsFolded - p.RowsFolded
		dNs := c.FoldNs - p.FoldNs
		dWAL := c.WALBytes - p.WALBytes
		if dRows < 0 {
			dRows = 0
		}
		if dWAL < 0 {
			dWAL = 0
		}
		vr := ViewRate{
			Tree:           c.Tree,
			View:           c.View,
			RowsPerSec:     float64(dRows) / sec,
			WALBytesPerSec: float64(dWAL) / sec,
			RowsTotal:      c.RowsFolded,
		}
		if dRows > 0 && dNs > 0 {
			vr.MeanFoldNs = float64(dNs) / float64(dRows)
		}
		out = append(out, vr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].RowsPerSec > out[j].RowsPerSec })
	return out
}
