package metrics

import (
	"sync"
	"sync/atomic"

	"repro/internal/id"
)

// ScrubMetrics track the online consistency scrubber (DESIGN.md §7.4): the
// background plane that continuously re-verifies every indexed view against
// a recompute over its source relation at MVCC snapshot timestamps. Global
// counters live here; the per-view coverage state is the Views map.
type ScrubMetrics struct {
	// Cycles counts completed full passes: every view in the catalog verified
	// end to end since the cycle began.
	Cycles atomic.Int64
	// Slices counts verified (view, group-range) slices — the scrubber's unit
	// of work, one per tick.
	Slices atomic.Int64
	// RowsVerified counts rows the scrubber read to verify slices: source
	// rows recomputed plus view rows compared. This is the quantity the row
	// budget paces.
	RowsVerified atomic.Int64
	// Divergences counts view rows whose stored contents disagreed with the
	// recompute — each one is a broken invariant, never expected in a healthy
	// engine.
	Divergences atomic.Int64
	// Conflicts counts deferred-view slices discarded because the applier
	// folded into the view mid-verification (the optimistic apply-pair check
	// failed); the slice is retried at a fresher timestamp, so conflicts cost
	// progress but never correctness.
	Conflicts atomic.Int64
	// SnapshotRetries counts watermark pins refused because the prune horizon
	// had already passed the timestamp (retried with a fresher watermark).
	SnapshotRetries atomic.Int64
	// LastFullPassUnixNs is the wall clock (UnixNano) at which the most
	// recent full pass completed; zero until the first one does.
	LastFullPassUnixNs atomic.Int64
	// CycleDur times full passes, wall-clock from a cycle's first slice to
	// its last.
	CycleDur Histogram
	// Views is the per-view coverage state.
	Views ScrubViews
}

// ViewScrub is one view's scrub coverage state.
type ViewScrub struct {
	// Passes counts completed verification passes over the whole view.
	Passes atomic.Int64
	// RowsVerified counts rows read to verify this view.
	RowsVerified atomic.Int64
	// Divergences counts divergences attributed to this view.
	Divergences atomic.Int64
	// CoverageTS is the coverage watermark: every group of the view has been
	// verified at a snapshot timestamp >= this (the first slice's timestamp
	// of the last completed pass). Zero until a pass completes.
	CoverageTS atomic.Uint64
	// LastPassUnixNs is the wall clock at which the last pass completed.
	LastPassUnixNs atomic.Int64
}

// ScrubViews is a copy-on-write map from view tree ID to its scrub state,
// following the Freshness pattern: bounded by the catalog, lock-free reads,
// mutex only on first sight of a tree.
type ScrubViews struct {
	mu sync.Mutex
	m  atomic.Pointer[map[id.Tree]*ViewScrub]
}

// Get returns the state for tree, creating it on first use. Nil-safe: a nil
// receiver returns nil.
func (sv *ScrubViews) Get(tree id.Tree) *ViewScrub {
	if sv == nil {
		return nil
	}
	if mp := sv.m.Load(); mp != nil {
		if v, ok := (*mp)[tree]; ok {
			return v
		}
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	old := sv.m.Load()
	if old != nil {
		if v, ok := (*old)[tree]; ok {
			return v
		}
	}
	next := make(map[id.Tree]*ViewScrub, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	v := &ViewScrub{}
	next[tree] = v
	sv.m.Store(&next)
	return v
}

// Drop removes a dropped view's state so its series stop being exported.
// Nil-safe.
func (sv *ScrubViews) Drop(tree id.Tree) {
	if sv == nil {
		return
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	old := sv.m.Load()
	if old == nil {
		return
	}
	if _, ok := (*old)[tree]; !ok {
		return
	}
	next := make(map[id.Tree]*ViewScrub, len(*old))
	for k, v := range *old {
		if k != tree {
			next[k] = v
		}
	}
	sv.m.Store(&next)
}

// Each calls fn for every tracked tree. Iteration order is unspecified.
// Nil-safe.
func (sv *ScrubViews) Each(fn func(tree id.Tree, v *ViewScrub)) {
	if sv == nil {
		return
	}
	mp := sv.m.Load()
	if mp == nil {
		return
	}
	for k, v := range *mp {
		fn(k, v)
	}
}
