package metrics

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/id"
)

// EventType identifies what an Event reports.
type EventType uint8

const (
	// EventTxBegin fires when a user transaction starts.
	EventTxBegin EventType = iota + 1
	// EventTxEnd fires when a user transaction commits or rolls back; Dur is
	// its total lifetime and Outcome "commit" or "abort".
	EventTxEnd
	// EventLockWait fires when a blocked lock acquisition resolves; Dur is
	// the time blocked and Outcome "granted", "deadlock", "timeout", or
	// "canceled".
	EventLockWait
	// EventFold fires after a commit-time escrow fold; Rows is the view rows
	// folded.
	EventFold
	// EventGroupCommit fires after a physical WAL flush; Rows is the records
	// in the batch.
	EventGroupCommit
	// EventRecovery fires once per restart phase; Phase is "analysis",
	// "redo", or "undo".
	EventRecovery
	// EventGhostClean fires after a ghost-cleaner sweep; Rows is the ghosts
	// erased.
	EventGhostClean
	// EventStall fires when the watchdog detects a stall signature; Phase is
	// the signature key ("wal-flush", "lock-convoy", "escrow-backlog",
	// "ghost-starvation"), Resource a human-readable detail, and Dur how long
	// the condition has persisted.
	EventStall
	// EventSnapshotBegin fires when a snapshot transaction pins its read
	// timestamp; Rows carries the pinned timestamp (truncated to int).
	EventSnapshotBegin
	// EventMVCCPrune fires after a version-chain pruner sweep that folded
	// versions; Rows is the versions pruned.
	EventMVCCPrune
	// EventDeferredApply fires after the deferred-view applier folds a round
	// of coalesced deltas into one view; Resource is the view name, Rows the
	// groups folded, and Dur the round's fold time. Spans carries the causal
	// spans of the originating commits whose deltas the fold applied.
	EventDeferredApply
	// EventDeferredPublish fires when a commit hands its deferred view deltas
	// to the background applier; Rows is the group deltas published. The
	// transaction's span links the publish to its tx-begin.
	EventDeferredPublish
	// EventWatermarkAdvance fires when the applier advances one deferred
	// view's watermark after folding; Resource is the view name, Rows the new
	// watermark (truncated to int), Dur the oldest folded commit's
	// commit-to-visible latency, and Spans the originating commits now
	// visible in the view.
	EventWatermarkAdvance
	// EventScrubDivergence fires when the online consistency scrubber finds a
	// view row disagreeing with its recompute; Resource is the view name,
	// Phase the diverging group key (human-readable), Outcome the
	// expected-vs-actual detail, and Rows the divergences in the slice.
	EventScrubDivergence
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventTxBegin:
		return "tx-begin"
	case EventTxEnd:
		return "tx-end"
	case EventLockWait:
		return "lock-wait"
	case EventFold:
		return "fold"
	case EventGroupCommit:
		return "group-commit"
	case EventRecovery:
		return "recovery"
	case EventGhostClean:
		return "ghost-clean"
	case EventStall:
		return "stall"
	case EventSnapshotBegin:
		return "snapshot-begin"
	case EventMVCCPrune:
		return "mvcc-prune"
	case EventDeferredApply:
		return "deferred-apply"
	case EventDeferredPublish:
		return "deferred-publish"
	case EventWatermarkAdvance:
		return "watermark-advance"
	case EventScrubDivergence:
		return "scrub-divergence"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Event is one engine trace event. It is passed by value and holds no
// references into engine state, so a Tracer may retain it.
type Event struct {
	Type EventType
	// Seq is a process-monotonic sequence number and WallNs the wall-clock
	// timestamp (UnixNano) stamped by the flight recorder; both are zero for
	// events that never pass through it.
	Seq    uint64
	WallNs int64
	// Span is the causal span ID linking every event of one transaction's
	// lifetime (its value is the Seq of the transaction's tx-begin record).
	// Zero for engine-level events, stamped by the flight recorder.
	Span uint64
	// Spans lists the originating commits' span IDs for events downstream of
	// the async deferred-maintenance boundary (applier folds, watermark
	// advances): a coalesced batch has several causal parents. Set by the
	// emitter, preserved by the flight recorder.
	Spans []uint64
	// Txn is the acting transaction (zero for engine-level events).
	Txn id.Txn
	// Dur is the event's duration: wait time, fold time, flush time, phase
	// time, or — for EventTxEnd — the transaction's whole lifetime.
	Dur time.Duration
	// Resource and Mode describe the contested lock for EventLockWait.
	Resource string
	Mode     string
	// Outcome is "granted"/"deadlock"/"timeout"/"canceled" for lock waits and
	// "commit"/"abort" for transaction ends.
	Outcome string
	// Rows counts folded view rows, group-commit batch records, or erased
	// ghosts.
	Rows int
	// Phase is the recovery phase for EventRecovery.
	Phase string
}

// String renders the event for trace logs.
func (e Event) String() string {
	switch e.Type {
	case EventLockWait:
		return fmt.Sprintf("%s %s %s on %s: %s after %s", e.Type, e.Txn, e.Mode, e.Resource, e.Outcome, e.Dur)
	case EventTxEnd:
		return fmt.Sprintf("%s %s: %s after %s", e.Type, e.Txn, e.Outcome, e.Dur)
	case EventFold:
		return fmt.Sprintf("%s %s: %d rows in %s", e.Type, e.Txn, e.Rows, e.Dur)
	case EventGroupCommit:
		return fmt.Sprintf("%s: %d records in %s", e.Type, e.Rows, e.Dur)
	case EventRecovery:
		return fmt.Sprintf("%s %s: %s", e.Type, e.Phase, e.Dur)
	case EventGhostClean:
		return fmt.Sprintf("%s: %d erased in %s", e.Type, e.Rows, e.Dur)
	case EventStall:
		return fmt.Sprintf("%s %s: %s (for %s)", e.Type, e.Phase, e.Resource, e.Dur)
	case EventSnapshotBegin:
		return fmt.Sprintf("%s %s: read-ts %d", e.Type, e.Txn, e.Rows)
	case EventMVCCPrune:
		return fmt.Sprintf("%s: %d versions in %s", e.Type, e.Rows, e.Dur)
	case EventDeferredApply:
		return fmt.Sprintf("%s %s: %d groups in %s", e.Type, e.Resource, e.Rows, e.Dur)
	case EventDeferredPublish:
		return fmt.Sprintf("%s %s: %d groups", e.Type, e.Txn, e.Rows)
	case EventWatermarkAdvance:
		return fmt.Sprintf("%s %s: watermark %d (oldest visible after %s)", e.Type, e.Resource, e.Rows, e.Dur)
	case EventScrubDivergence:
		return fmt.Sprintf("%s %s group %s: %s", e.Type, e.Resource, e.Phase, e.Outcome)
	default:
		return fmt.Sprintf("%s %s", e.Type, e.Txn)
	}
}

// Tracer receives engine trace events. Implementations must be safe for
// concurrent use and should return quickly: events fire inline on engine
// paths (a slow tracer slows the engine, never corrupts it).
type Tracer interface {
	TraceEvent(Event)
}

// SlowLogger is a Tracer that prints events at or above a duration threshold
// — the "slow query log" for transactions, lock waits, and folds. Zero-Dur
// event types (EventTxBegin) are suppressed; EventRecovery and EventStall
// always print, as do lock waits that resolved in failure
// (deadlock/timeout/cancel) no matter how quickly they did so.
type SlowLogger struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	prefix    string
}

// NewSlowLogger returns a SlowLogger writing events slower than threshold to
// w, each line prefixed with prefix.
func NewSlowLogger(w io.Writer, threshold time.Duration, prefix string) *SlowLogger {
	return &SlowLogger{w: w, threshold: threshold, prefix: prefix}
}

// TraceEvent implements Tracer.
func (l *SlowLogger) TraceEvent(e Event) {
	// A failed lock wait is interesting regardless of how fast it failed: a
	// deadlock victim may be picked microseconds into its wait, and dropping
	// it under the threshold hides the abort the operator is hunting for.
	failedWait := e.Type == EventLockWait && e.Outcome != "" && e.Outcome != "granted"
	// A scrub divergence is a broken invariant: always worth a line, no
	// matter how fast the slice that found it ran.
	alwaysPrint := e.Type == EventRecovery || e.Type == EventStall ||
		e.Type == EventScrubDivergence || failedWait
	if !alwaysPrint && (e.Dur < l.threshold || e.Type == EventTxBegin) {
		return
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "%strace: %s\n", l.prefix, e)
	l.mu.Unlock()
}
