package metrics

import "time"

// Snapshot is the structured result of DB.Metrics(): every engine counter and
// latency summary at one instant. The JSON encoding is a stable schema —
// field names are part of the public API and golden-tested; only additions
// are allowed.
type Snapshot struct {
	Engine    EngineSnapshot    `json:"engine"`
	Txn       TxnSnapshot       `json:"txn"`
	Lock      LockSnapshot      `json:"lock"`
	Escrow    EscrowSnapshot    `json:"escrow"`
	WAL       WALSnapshot       `json:"wal"`
	Ghost     GhostSnapshot     `json:"ghosts"`
	Recovery  RecoverySnapshot  `json:"recovery"`
	Watchdog  WatchdogSnapshot  `json:"watchdog"`
	Flight    FlightSnapshot    `json:"flightrec"`
	Hotspots  HotspotsSnapshot  `json:"hotspots"`
	MVCC      MVCCSnapshot      `json:"mvcc"`
	Deferred  DeferredSnapshot  `json:"deferred"`
	Cascade   CascadeSnapshot   `json:"cascade"`
	Freshness FreshnessSnapshot `json:"freshness"`
	Scrub     ScrubSnapshot     `json:"scrub"`
}

// EngineSnapshot are the engine-level transaction counters, plus the
// instance clock: when this snapshot was cut and how long the engine had
// been open. External scrapers divide counter deltas by timestamp deltas to
// get rates without trusting their own scrape clock.
type EngineSnapshot struct {
	Commits     int64 `json:"commits"`
	Aborts      int64 `json:"aborts"`
	SysTxns     int64 `json:"sys_txns"`
	Escalations int64 `json:"escalations"`
	// UptimeNs is nanoseconds since DB.Open returned.
	UptimeNs int64 `json:"uptime_ns"`
	// SnapshotUnixNs is the wall-clock UnixNano at which the snapshot was cut.
	SnapshotUnixNs int64 `json:"snapshot_unix_ns"`
}

// TxnSnapshot summarizes the per-phase transaction timing histograms.
type TxnSnapshot struct {
	Begin      HistSnapshot `json:"begin"`
	LockWait   HistSnapshot `json:"lock_wait"`
	Apply      HistSnapshot `json:"apply"`
	Fold       HistSnapshot `json:"fold"`
	CommitWait HistSnapshot `json:"commit_wait"`
}

// LockSnapshot summarizes the lock manager: cumulative counters plus
// wait-time attribution per shard.
type LockSnapshot struct {
	Shards        int                 `json:"shards"`
	Requests      int64               `json:"requests"`
	Waits         int64               `json:"waits"`
	Deadlocks     int64               `json:"deadlocks"`
	Timeouts      int64               `json:"timeouts"`
	Collisions    int64               `json:"collisions"`
	MaxQueueDepth int64               `json:"max_queue_depth"`
	Sweeps        int64               `json:"sweeps"`
	LastSweepNs   int64               `json:"last_sweep_ns"`
	MaxSweepNs    int64               `json:"max_sweep_ns"`
	Wait          HistSnapshot        `json:"wait"`
	PerShard      []LockShardSnapshot `json:"per_shard"`
}

// LockShardSnapshot is one stripe's counters and wait-time attribution.
type LockShardSnapshot struct {
	Waits         int64 `json:"waits"`
	WaitNs        int64 `json:"wait_ns"`
	Deadlocks     int64 `json:"deadlocks"`
	Timeouts      int64 `json:"timeouts"`
	Collisions    int64 `json:"collisions"`
	MaxQueueDepth int64 `json:"max_queue_depth"`
	Resources     int   `json:"resources"`
}

// EscrowSnapshot summarizes escrow-ledger contention and commit folds.
type EscrowSnapshot struct {
	Shards               int   `json:"shards"`
	FoldBatches          int64 `json:"fold_batches"`
	FoldRows             int64 `json:"fold_rows"`
	FoldBatchMax         int64 `json:"fold_batch_max"`
	FoldAborts           int64 `json:"fold_aborts"`
	PendingTxnsHighWater int64 `json:"pending_txns_high_water"`
	PendingRows          int64 `json:"pending_rows"`
}

// WALSnapshot summarizes the write-ahead log and group commit.
type WALSnapshot struct {
	Appends        int64        `json:"appends"`
	Flushes        int64        `json:"flushes"`
	CoalescedSyncs int64        `json:"coalesced_syncs"`
	BatchRecords   int64        `json:"batch_records"`
	BatchMax       int64        `json:"batch_max"`
	FlushActiveNs  int64        `json:"flush_active_ns"`
	Flush          HistSnapshot `json:"flush"`
	Fsync          HistSnapshot `json:"fsync"`
}

// GhostSnapshot summarizes ghost-row maintenance and the background cleaner.
type GhostSnapshot struct {
	Created          int64 `json:"created"`
	Erased           int64 `json:"erased"`
	CleanerPasses    int64 `json:"cleaner_passes"`
	Backlog          int64 `json:"backlog"`
	BacklogHighWater int64 `json:"backlog_high_water"`
}

// RecoverySnapshot reports what the instance's restart did, with per-phase
// durations (analysis = snapshot load, redo = log replay, undo = loser
// rollback).
type RecoverySnapshot struct {
	Gen        uint64 `json:"gen"`
	Replayed   int    `json:"replayed"`
	Losers     int    `json:"losers"`
	UndoneOps  int    `json:"undone_ops"`
	Torn       bool   `json:"torn"`
	Fresh      bool   `json:"fresh"`
	AnalysisNs int64  `json:"analysis_ns"`
	RedoNs     int64  `json:"redo_ns"`
	UndoNs     int64  `json:"undo_ns"`
}

// WatchdogSnapshot reports stall-watchdog detections by signature.
type WatchdogSnapshot struct {
	Detections        int64 `json:"detections"`
	WALStalls         int64 `json:"wal_stalls"`
	LockConvoys       int64 `json:"lock_convoys"`
	EscrowStalls      int64 `json:"escrow_stalls"`
	GhostStalls       int64 `json:"ghost_stalls"`
	FreshnessBreaches int64 `json:"freshness_breaches"`
	ScrubDivergences  int64 `json:"scrub_divergences"`
}

// HotspotsSnapshot is the hot-spot attribution section: the top groups by
// lock wait and escrow delta volume, and the per-view maintenance cost
// table. The engine fills it (group keys and view names need the catalog);
// cardinality is bounded by the sketch capacity and the catalog size.
type HotspotsSnapshot struct {
	// SketchCapacity is the tracked-key capacity of each sketch.
	SketchCapacity int `json:"sketch_capacity"`
	// TopWait ranks groups by lock wait-ns; TopDelta by escrow delta updates.
	TopWait  []HotGroupSnapshot `json:"top_wait"`
	TopDelta []HotGroupSnapshot `json:"top_delta"`
	// Views is the per-view cost table, ordered by descending fold rows.
	Views []ViewCostSnapshot `json:"views"`
}

// HotGroupSnapshot is one heavy-hitter entry: a group key within a view,
// with its Space-Saving estimate and error bound (true ∈ [value−err, value]).
type HotGroupSnapshot struct {
	Tree  uint32 `json:"tree"`
	View  string `json:"view"`
	Key   string `json:"key"`
	Value int64  `json:"value"`
	Count int64  `json:"count"`
	Err   int64  `json:"err"`
}

// ViewCostSnapshot is one view's accumulated maintenance bill.
type ViewCostSnapshot struct {
	Tree       uint32 `json:"tree"`
	View       string `json:"view"`
	RowsFolded int64  `json:"rows_folded"`
	FoldNs     int64  `json:"fold_ns"`
	WALBytes   int64  `json:"wal_bytes"`
}

// MVCCSnapshot summarizes the multi-version read path: snapshot registry
// gauges (filled by the engine from the timestamp oracle) and version-chain
// counters (registry-owned).
type MVCCSnapshot struct {
	// Snapshots is the cumulative count of snapshot transactions begun;
	// ActiveSnapshots the number currently pinned.
	Snapshots       int64 `json:"snapshots"`
	ActiveSnapshots int64 `json:"active_snapshots"`
	// OldestSnapshotAgeNs is how long the oldest active snapshot has been
	// pinned (zero when none is).
	OldestSnapshotAgeNs int64 `json:"oldest_snapshot_age_ns"`
	// Watermark is the oracle's published read timestamp.
	Watermark uint64 `json:"watermark"`
	// Chains is the live version-chain gauge; ChainLenHighWater the longest
	// chain ever observed.
	Chains            int64 `json:"chains"`
	ChainLenHighWater int64 `json:"chain_len_high_water"`
	VersionsStamped   int64 `json:"versions_stamped"`
	VersionsPruned    int64 `json:"versions_pruned"`
	PrunePasses       int64 `json:"prune_passes"`
}

// DeferredSnapshot summarizes the deferred view-maintenance tier: publication
// and apply counters (registry-owned) plus watermark/lag/staleness gauges the
// engine fills from the oracle and the applier state.
type DeferredSnapshot struct {
	PublishedBatches int64 `json:"published_batches"`
	PublishedGroups  int64 `json:"published_groups"`
	ApplyRounds      int64 `json:"apply_rounds"`
	RetryRounds      int64 `json:"retry_rounds"`
	GroupsApplied    int64 `json:"groups_applied"`
	DeltasIn         int64 `json:"deltas_in"`
	DeltasCoalesced  int64 `json:"deltas_coalesced"`
	QueueHighWater   int64 `json:"queue_high_water"`
	// PendingGroups is a gauge of (view, group) accumulators awaiting a fold
	// (coalescer contents; queued-but-unmerged batches are not counted).
	PendingGroups int64 `json:"pending_groups"`
	// Watermark is the minimum applied watermark across deferred views (zero
	// when none exist); LagTS the oracle read timestamp minus that watermark.
	Watermark uint64 `json:"watermark"`
	LagTS     uint64 `json:"lag_ts"`
	// StalenessNs is how long the oldest unapplied publish has been waiting
	// (zero when the applier is caught up) — the bounded-staleness gauge.
	StalenessNs int64        `json:"staleness_ns"`
	Apply       HistSnapshot `json:"apply"`
	// Views lists each deferred view's applied watermark.
	Views []DeferredViewSnapshot `json:"views"`
}

// DeferredViewSnapshot is one deferred view's applied watermark.
type DeferredViewSnapshot struct {
	Tree      uint32 `json:"tree"`
	View      string `json:"view"`
	Watermark uint64 `json:"watermark"`
}

// FreshnessSnapshot is the per-view freshness section: commit-to-visible
// latency summaries and current-staleness gauges for every maintained view.
// The engine fills it (view names and strategies need the catalog).
type FreshnessSnapshot struct {
	// SLONs is the configured freshness SLO in nanoseconds (zero when
	// unenforced).
	SLONs int64 `json:"slo_ns"`
	// Views lists each view's freshness, ordered by tree ID.
	Views []ViewFreshnessSnapshot `json:"views"`
}

// ViewFreshnessSnapshot is one view's freshness picture.
type ViewFreshnessSnapshot struct {
	Tree     uint32 `json:"tree"`
	View     string `json:"view"`
	Strategy string `json:"strategy"`
	// StalenessNs is the age of the oldest commit not yet visible in the view
	// (always zero for escrow views: they are maintained inside the commit).
	StalenessNs int64 `json:"staleness_ns"`
	// CommitToVisible summarizes commit-to-visible latency: the commit-time
	// fold for escrow views, publish→watermark for deferred views.
	CommitToVisible HistSnapshot `json:"commit_to_visible"`
}

// ScrubSnapshot is the online consistency scrubber's section (DESIGN.md
// §7.4): verification volume, divergence counts, and per-view coverage. The
// registry fills the counters; the engine fills Views (names need the
// catalog).
type ScrubSnapshot struct {
	// Enabled reports whether the background scrubber goroutine is running.
	Enabled bool `json:"enabled"`
	// Cycles counts completed full passes over every view; Slices the
	// (view, group-range) verification slices processed.
	Cycles int64 `json:"cycles"`
	Slices int64 `json:"slices"`
	// RowsVerified counts source rows recomputed plus view rows compared —
	// the row budget's currency.
	RowsVerified int64 `json:"rows_verified"`
	// Divergences counts stored view rows that disagreed with the recompute.
	Divergences int64 `json:"divergences"`
	// Conflicts counts deferred slices discarded because a fold landed
	// mid-verification; SnapshotRetries counts watermark pins refused by the
	// prune horizon. Both are retried, costing progress, never correctness.
	Conflicts       int64 `json:"conflicts"`
	SnapshotRetries int64 `json:"snapshot_retries"`
	// LastFullPassUnix is the wall clock (Unix seconds) of the most recent
	// completed full pass, zero until the first.
	LastFullPassUnix int64 `json:"last_full_pass_unix"`
	// CycleDur summarizes full-pass wall durations.
	CycleDur HistSnapshot `json:"cycle_dur"`
	// Views lists each view's coverage state, ordered by tree ID.
	Views []ViewScrubSnapshot `json:"views"`
}

// ViewScrubSnapshot is one view's scrub coverage picture.
type ViewScrubSnapshot struct {
	Tree uint32 `json:"tree"`
	View string `json:"view"`
	// Passes counts completed verification passes over the whole view.
	Passes int64 `json:"passes"`
	// RowsVerified counts rows read verifying this view; Divergences the
	// divergences attributed to it.
	RowsVerified int64 `json:"rows_verified"`
	Divergences  int64 `json:"divergences"`
	// CoverageTS is the snapshot timestamp every group has been verified at
	// or above (the coverage watermark); LastPassUnixNs the wall clock of the
	// last completed pass.
	CoverageTS     uint64 `json:"coverage_ts"`
	LastPassUnixNs int64  `json:"last_pass_unix_ns"`
}

// CascadeSnapshot summarizes stacked-view (view-over-view) maintenance: child
// deltas enqueued by parent folds, the coalescing win of the commit-local
// queue, and per-DAG-level fold counts.
type CascadeSnapshot struct {
	Enqueued    int64 `json:"enqueued"`
	Coalesced   int64 `json:"coalesced"`
	Folds       int64 `json:"folds"`
	DeferredOut int64 `json:"deferred_out"`
	// LevelFolds[i] counts commit-time folds of views at DAG level i (level 0 =
	// views directly over base tables; the last bucket absorbs deeper levels).
	LevelFolds []int64 `json:"level_folds"`
}

// FlightSnapshot reports the flight recorder's state; the engine fills it
// (the recorder is not registry-owned).
type FlightSnapshot struct {
	Enabled  bool  `json:"enabled"`
	Capacity int   `json:"capacity"`
	Recorded int64 `json:"recorded"`
	Dumps    int64 `json:"dumps"`
}

// Snap fills the registry-owned sections of a snapshot (transaction phases,
// lock wait attribution, escrow, WAL, ghost cleaner). The caller (the engine)
// fills the sections whose source of truth lives elsewhere: engine counters,
// lock-manager count stats, and the recovery summary.
func (r *Registry) Snap() Snapshot {
	s := Snapshot{
		Txn: TxnSnapshot{
			Begin: r.Txn.Begin.Snap(),
			// Lock waits are observed once, by the lock manager; the txn-phase
			// view is the same histogram.
			LockWait:   r.Lock.Wait.Snap(),
			Apply:      r.Txn.Apply.Snap(),
			Fold:       r.Txn.Fold.Snap(),
			CommitWait: r.Txn.CommitWait.Snap(),
		},
		Escrow: EscrowSnapshot{
			FoldBatches:          r.Escrow.FoldBatches.Load(),
			FoldRows:             r.Escrow.FoldRows.Load(),
			FoldBatchMax:         r.Escrow.FoldBatchMax.Load(),
			FoldAborts:           r.Escrow.FoldAborts.Load(),
			PendingTxnsHighWater: r.Escrow.PendingTxnsHighWater.Load(),
			PendingRows:          r.Escrow.PendingRows.Load(),
		},
		WAL: WALSnapshot{
			Appends:        r.WAL.Appends.Load(),
			Flushes:        r.WAL.Flushes.Load(),
			CoalescedSyncs: r.WAL.CoalescedSyncs.Load(),
			BatchRecords:   r.WAL.BatchRecords.Load(),
			BatchMax:       r.WAL.BatchMax.Load(),
			FlushActiveNs:  r.WAL.FlushActiveNs(time.Now().UnixNano()),
			Flush:          r.WAL.Flush.Snap(),
			Fsync:          r.WAL.Fsync.Snap(),
		},
		Ghost: GhostSnapshot{
			CleanerPasses:    r.Ghost.CleanerPasses.Load(),
			Backlog:          r.Ghost.Backlog.Load(),
			BacklogHighWater: r.Ghost.BacklogHighWater.Load(),
		},
		Watchdog: WatchdogSnapshot{
			Detections:        r.Watchdog.Detections.Load(),
			WALStalls:         r.Watchdog.WALStalls.Load(),
			LockConvoys:       r.Watchdog.LockConvoys.Load(),
			EscrowStalls:      r.Watchdog.EscrowStalls.Load(),
			GhostStalls:       r.Watchdog.GhostStalls.Load(),
			FreshnessBreaches: r.Watchdog.FreshnessBreaches.Load(),
			ScrubDivergences:  r.Watchdog.ScrubDivergences.Load(),
		},
	}
	s.Scrub = ScrubSnapshot{
		Cycles:           r.Scrub.Cycles.Load(),
		Slices:           r.Scrub.Slices.Load(),
		RowsVerified:     r.Scrub.RowsVerified.Load(),
		Divergences:      r.Scrub.Divergences.Load(),
		Conflicts:        r.Scrub.Conflicts.Load(),
		SnapshotRetries:  r.Scrub.SnapshotRetries.Load(),
		LastFullPassUnix: r.Scrub.LastFullPassUnixNs.Load() / int64(time.Second),
		CycleDur:         r.Scrub.CycleDur.Snap(),
	}
	s.Deferred = DeferredSnapshot{
		PublishedBatches: r.Deferred.PublishedBatches.Load(),
		PublishedGroups:  r.Deferred.PublishedGroups.Load(),
		ApplyRounds:      r.Deferred.ApplyRounds.Load(),
		RetryRounds:      r.Deferred.RetryRounds.Load(),
		GroupsApplied:    r.Deferred.GroupsApplied.Load(),
		DeltasIn:         r.Deferred.DeltasIn.Load(),
		DeltasCoalesced:  r.Deferred.DeltasCoalesced.Load(),
		QueueHighWater:   r.Deferred.QueueHighWater.Load(),
		Apply:            r.Deferred.Apply.Snap(),
	}
	s.Cascade = CascadeSnapshot{
		Enqueued:    r.Cascade.Enqueued.Load(),
		Coalesced:   r.Cascade.Coalesced.Load(),
		Folds:       r.Cascade.Folds.Load(),
		DeferredOut: r.Cascade.DeferredOut.Load(),
		LevelFolds:  make([]int64, CascadeLevels),
	}
	for i := range r.Cascade.LevelFolds {
		s.Cascade.LevelFolds[i] = r.Cascade.LevelFolds[i].Load()
	}
	s.MVCC = MVCCSnapshot{
		Chains:            r.MVCC.Chains.Load(),
		ChainLenHighWater: r.MVCC.ChainLenHighWater.Load(),
		VersionsStamped:   r.MVCC.VersionsStamped.Load(),
		VersionsPruned:    r.MVCC.VersionsPruned.Load(),
		PrunePasses:       r.MVCC.PrunePasses.Load(),
	}
	s.Lock.Wait = r.Lock.Wait.Snap()
	s.Lock.PerShard = make([]LockShardSnapshot, len(r.Lock.shards))
	for i := range r.Lock.shards {
		sw := &r.Lock.shards[i]
		s.Lock.PerShard[i] = LockShardSnapshot{
			Waits:     sw.Waits.Load(),
			WaitNs:    sw.WaitNs.Load(),
			Deadlocks: sw.Deadlocks.Load(),
			Timeouts:  sw.Timeouts.Load(),
		}
	}
	return s
}
