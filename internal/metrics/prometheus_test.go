package metrics

import (
	"strings"
	"testing"
)

// TestPromLabel covers the three escapes the Prometheus text format defines
// for label values — backslash, double quote, newline — and nothing else
// (Go's %q would emit \xNN sequences the format does not understand).
func TestPromLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`say "hi"`, `say \"hi\"`},
		{`back\slash`, `back\\slash`},
		{"two\nlines", `two\nlines`},
		{"\\\"\n", `\\\"\n`},
		{`C:\views\"q"` + "\n", `C:\\views\\\"q\"\n`},
		// Other control characters pass through untouched — the format allows
		// any UTF-8 byte except the three above.
		{"tab\there", "tab\there"},
		// Invalid UTF-8 is replaced, not emitted raw.
		{"bad\xffbyte", "bad\uFFFDbyte"},
	}
	for _, c := range cases {
		if got := promLabel(c.in); got != c.want {
			t.Errorf("promLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestExpositionEscapesLabels renders a snapshot whose view names and group
// keys carry quotes, backslashes, and newlines through every labeled series,
// and asserts the exposition stays line-oriented and parseable.
func TestExpositionEscapesLabels(t *testing.T) {
	hostile := "v\"iew\\one\ntwo"
	var s Snapshot
	s.Deferred.Views = []DeferredViewSnapshot{{Tree: 1, View: hostile, Watermark: 7}}
	s.Freshness.Views = []ViewFreshnessSnapshot{{Tree: 1, View: hostile, StalenessNs: 5}}
	s.Hotspots.TopDelta = []HotGroupSnapshot{{Tree: 1, View: hostile, Key: "k\"ey\n", Count: 1, Value: 2}}
	s.Hotspots.TopWait = []HotGroupSnapshot{{Tree: 1, View: hostile, Key: `k\ey`, Count: 1, Value: 2}}
	s.Hotspots.Views = []ViewCostSnapshot{{Tree: 1, View: hostile, RowsFolded: 3}}
	s.Scrub.Views = []ViewScrubSnapshot{{Tree: 1, View: hostile, CoverageTS: 9, Divergences: 2}}

	var sb strings.Builder
	writeExposition(&sb, s)
	text := sb.String()

	if strings.Contains(text, hostile) {
		t.Fatalf("raw label value leaked into exposition:\n%s", text)
	}
	escaped := `v\"iew\\one\ntwo`
	for _, series := range []string{
		`vtxn_view_watermark{view="` + escaped + `"} 7`,
		`vtxn_scrub_view_coverage_ts{view="` + escaped + `"} 9`,
		`vtxn_scrub_view_divergences_total{view="` + escaped + `"} 2`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing escaped series %q", series)
		}
	}
	if !strings.Contains(text, `key="k\"ey\n"`) {
		t.Errorf("hot-group key not escaped:\n%s", text)
	}
	// The escapes must keep the format line-oriented: every non-comment line
	// still splits into exactly "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}
