package metrics

import (
	"fmt"
	"net/http"
	"strings"
)

// Handler returns an http.Handler serving the snapshot in Prometheus text
// exposition format (version 0.0.4). It depends only on net/http: latency
// histograms are exported as summaries (quantile labels), counters and
// gauges directly, and lock wait time is attributed per shard.
func Handler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		var sb strings.Builder
		writeExposition(&sb, s)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, sb.String())
	})
}

// writeExposition renders one snapshot as Prometheus text.
func writeExposition(sb *strings.Builder, s Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	summary := func(name, help string, h HistSnapshot) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		fmt.Fprintf(sb, "%s{quantile=\"0.5\"} %s\n", name, seconds(h.P50Ns))
		fmt.Fprintf(sb, "%s{quantile=\"0.99\"} %s\n", name, seconds(h.P99Ns))
		fmt.Fprintf(sb, "%s{quantile=\"1\"} %s\n", name, seconds(h.MaxNs))
		fmt.Fprintf(sb, "%s_sum %s\n", name, seconds(h.SumNs))
		fmt.Fprintf(sb, "%s_count %d\n", name, h.Count)
	}

	// Engine-level transaction counters.
	fmt.Fprintf(sb, "# HELP vtxn_uptime_seconds Seconds since the engine instance was opened.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_uptime_seconds gauge\n")
	fmt.Fprintf(sb, "vtxn_uptime_seconds %s\n", seconds(s.Engine.UptimeNs))
	counter("vtxn_txn_commits_total", "User transactions committed.", s.Engine.Commits)
	counter("vtxn_txn_aborts_total", "User transactions rolled back.", s.Engine.Aborts)
	counter("vtxn_txn_system_total", "System transactions (ghost create/erase).", s.Engine.SysTxns)
	counter("vtxn_lock_escalations_total", "Key-lock sets escalated to tree locks.", s.Engine.Escalations)

	// Per-phase transaction timing.
	summary("vtxn_txn_begin_seconds", "BeginTx latency.", s.Txn.Begin)
	summary("vtxn_txn_apply_seconds", "Per-operation WAL append + tree apply latency.", s.Txn.Apply)
	summary("vtxn_txn_fold_seconds", "Commit-time escrow fold latency.", s.Txn.Fold)
	summary("vtxn_txn_commit_wait_seconds", "Group-commit wait at transaction commit.", s.Txn.CommitWait)

	// Lock manager.
	counter("vtxn_lock_requests_total", "Lock acquisitions requested.", s.Lock.Requests)
	counter("vtxn_lock_waits_total", "Lock acquisitions that blocked.", s.Lock.Waits)
	counter("vtxn_lock_deadlocks_total", "Lock waits aborted as deadlock victims.", s.Lock.Deadlocks)
	counter("vtxn_lock_timeouts_total", "Lock waits aborted by timeout or cancel.", s.Lock.Timeouts)
	counter("vtxn_lock_shard_collisions_total", "Shard-mutex acquisitions that found it held.", s.Lock.Collisions)
	gauge("vtxn_lock_shards", "Lock-manager stripe count.", int64(s.Lock.Shards))
	gauge("vtxn_lock_max_queue_depth", "Deepest wait queue any resource reached.", s.Lock.MaxQueueDepth)
	counter("vtxn_lock_detector_sweeps_total", "Background deadlock-detector passes.", s.Lock.Sweeps)
	summary("vtxn_lock_wait_seconds", "Blocked lock-acquisition wait time.", s.Lock.Wait)
	fmt.Fprintf(sb, "# HELP vtxn_lock_shard_wait_seconds_total Lock wait time attributed to each shard.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_lock_shard_wait_seconds_total counter\n")
	for i, ps := range s.Lock.PerShard {
		fmt.Fprintf(sb, "vtxn_lock_shard_wait_seconds_total{shard=\"%d\"} %s\n", i, seconds(ps.WaitNs))
	}
	fmt.Fprintf(sb, "# HELP vtxn_lock_shard_waits_total Blocked acquisitions resolved on each shard.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_lock_shard_waits_total counter\n")
	for i, ps := range s.Lock.PerShard {
		fmt.Fprintf(sb, "vtxn_lock_shard_waits_total{shard=\"%d\"} %d\n", i, ps.Waits)
	}

	// Escrow ledger.
	counter("vtxn_escrow_fold_batches_total", "Commit-time escrow folds.", s.Escrow.FoldBatches)
	counter("vtxn_escrow_fold_rows_total", "View rows folded at commit.", s.Escrow.FoldRows)
	counter("vtxn_escrow_fold_aborts_total", "Commits aborted by a failed fold.", s.Escrow.FoldAborts)
	gauge("vtxn_escrow_fold_batch_max", "Largest rows-per-commit fold.", s.Escrow.FoldBatchMax)
	gauge("vtxn_escrow_pending_txns_high_water", "Most concurrent transactions with pending deltas on one view row.", s.Escrow.PendingTxnsHighWater)
	gauge("vtxn_escrow_pending_rows", "View rows currently carrying unfolded escrow deltas.", s.Escrow.PendingRows)
	gauge("vtxn_escrow_shards", "Escrow-ledger stripe count.", int64(s.Escrow.Shards))

	// WAL / group commit.
	counter("vtxn_wal_appends_total", "Records appended to the log.", s.WAL.Appends)
	counter("vtxn_wal_group_commit_flushes_total", "Physical group-commit flushes.", s.WAL.Flushes)
	counter("vtxn_wal_group_commit_coalesced_total", "Sync calls satisfied by another committer's flush.", s.WAL.CoalescedSyncs)
	counter("vtxn_wal_group_commit_records_total", "Records made durable by group-commit flushes.", s.WAL.BatchRecords)
	gauge("vtxn_wal_group_commit_batch_max", "Largest group-commit batch.", s.WAL.BatchMax)
	gauge("vtxn_wal_flush_active_ns", "Age of the in-progress group-commit flush (0 when idle).", s.WAL.FlushActiveNs)
	summary("vtxn_wal_flush_seconds", "Group-commit flush latency (write + fsync).", s.WAL.Flush)
	summary("vtxn_wal_fsync_seconds", "fsync latency within a group commit.", s.WAL.Fsync)

	// Ghosts.
	counter("vtxn_ghosts_created_total", "Ghost view rows created by system transactions.", s.Ghost.Created)
	counter("vtxn_ghosts_erased_total", "Ghost view rows erased by the cleaner.", s.Ghost.Erased)
	counter("vtxn_ghost_cleaner_passes_total", "Ghost-cleaner sweeps.", s.Ghost.CleanerPasses)
	gauge("vtxn_ghost_backlog", "Ghost rows remaining after the last cleaner sweep.", s.Ghost.Backlog)

	// Deferred view-maintenance tier.
	counter("vtxn_deferred_published_batches_total", "Commits that published deferred-view deltas.", s.Deferred.PublishedBatches)
	counter("vtxn_deferred_apply_rounds_total", "Applier rounds that folded deferred deltas.", s.Deferred.ApplyRounds)
	counter("vtxn_deferred_groups_applied_total", "(view, group) folds performed by the applier.", s.Deferred.GroupsApplied)
	counter("vtxn_deferred_deltas_coalesced_total", "Cell deltas merged into an already-pending group (folds saved).", s.Deferred.DeltasCoalesced)
	gauge("vtxn_deferred_pending_groups", "(view, group) accumulators awaiting an applier fold.", s.Deferred.PendingGroups)
	gauge("vtxn_deferred_lag_ts", "Oracle read timestamp minus the minimum deferred-view watermark.", int64(s.Deferred.LagTS))
	gauge("vtxn_deferred_staleness_ns", "Age of the oldest unapplied deferred publish (0 when caught up).", s.Deferred.StalenessNs)
	summary("vtxn_deferred_apply_seconds", "Deferred applier round latency.", s.Deferred.Apply)
	fmt.Fprintf(sb, "# HELP vtxn_view_watermark Applied watermark of each deferred view (commit timestamp).\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_watermark gauge\n")
	for _, v := range s.Deferred.Views {
		fmt.Fprintf(sb, "vtxn_view_watermark{view=\"%s\"} %d\n", promLabel(v.View), v.Watermark)
	}

	// Per-view freshness: current staleness gauges and commit-to-visible
	// latency summaries (cardinality bounded by the catalog).
	if s.Freshness.SLONs > 0 {
		gauge("vtxn_freshness_slo_ns", "Configured freshness SLO (0 when unenforced).", s.Freshness.SLONs)
	}
	fmt.Fprintf(sb, "# HELP vtxn_view_staleness_seconds Age of the oldest commit not yet visible in each view (0 when caught up).\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_staleness_seconds gauge\n")
	for _, v := range s.Freshness.Views {
		fmt.Fprintf(sb, "vtxn_view_staleness_seconds{view=\"%s\"} %s\n", promLabel(v.View), seconds(v.StalenessNs))
	}
	fmt.Fprintf(sb, "# HELP vtxn_view_freshness_ns Commit-to-visible latency per view (commit-path fold for escrow views, publish to watermark for deferred).\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_freshness_ns summary\n")
	for _, v := range s.Freshness.Views {
		h := v.CommitToVisible
		lv := promLabel(v.View)
		fmt.Fprintf(sb, "vtxn_view_freshness_ns{view=\"%s\",quantile=\"0.5\"} %d\n", lv, h.P50Ns)
		fmt.Fprintf(sb, "vtxn_view_freshness_ns{view=\"%s\",quantile=\"0.99\"} %d\n", lv, h.P99Ns)
		fmt.Fprintf(sb, "vtxn_view_freshness_ns{view=\"%s\",quantile=\"1\"} %d\n", lv, h.MaxNs)
		fmt.Fprintf(sb, "vtxn_view_freshness_ns_sum{view=\"%s\"} %d\n", lv, h.SumNs)
		fmt.Fprintf(sb, "vtxn_view_freshness_ns_count{view=\"%s\"} %d\n", lv, h.Count)
	}

	// Stacked-view cascades (views over views).
	counter("vtxn_cascade_enqueued_total", "Child-view cell deltas produced by parent view row changes.", s.Cascade.Enqueued)
	counter("vtxn_cascade_coalesced_total", "Cascade deltas merged into an already-pending (view, group) accumulator.", s.Cascade.Coalesced)
	counter("vtxn_cascade_folds_total", "Commit-time folds of stacked views (DAG level >= 1).", s.Cascade.Folds)
	counter("vtxn_cascade_deferred_out_total", "Cascade group deltas routed to the deferred applier.", s.Cascade.DeferredOut)
	fmt.Fprintf(sb, "# HELP vtxn_cascade_level_folds_total Commit-time view folds by DAG level.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_cascade_level_folds_total counter\n")
	for i, n := range s.Cascade.LevelFolds {
		fmt.Fprintf(sb, "vtxn_cascade_level_folds_total{level=\"%d\"} %d\n", i, n)
	}

	// Stall watchdog + flight recorder.
	counter("vtxn_watchdog_detections_total", "Stall signatures detected by the watchdog.", s.Watchdog.Detections)
	fmt.Fprintf(sb, "# HELP vtxn_watchdog_signature_detections_total Watchdog detections by stall signature.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_watchdog_signature_detections_total counter\n")
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"wal-flush\"} %d\n", s.Watchdog.WALStalls)
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"lock-convoy\"} %d\n", s.Watchdog.LockConvoys)
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"escrow-backlog\"} %d\n", s.Watchdog.EscrowStalls)
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"ghost-starvation\"} %d\n", s.Watchdog.GhostStalls)
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"freshness-slo\"} %d\n", s.Watchdog.FreshnessBreaches)
	fmt.Fprintf(sb, "vtxn_watchdog_signature_detections_total{signature=\"scrub-divergence\"} %d\n", s.Watchdog.ScrubDivergences)
	counter("vtxn_flightrec_events_total", "Events recorded by the flight recorder.", s.Flight.Recorded)
	counter("vtxn_flightrec_dumps_total", "Flight-record dumps written.", s.Flight.Dumps)
	gauge("vtxn_flightrec_capacity", "Flight-recorder ring capacity in events.", int64(s.Flight.Capacity))

	// Hot-spot attribution: bounded-cardinality per-group and per-view series.
	// Group-key labels come from the heavy-hitter sketches, so the series
	// count is capped by the sketch capacity regardless of workload.
	fmt.Fprintf(sb, "# HELP vtxn_hot_group_lock_wait_seconds_total Lock wait time attributed to the hottest view group keys (Space-Saving estimate).\n")
	fmt.Fprintf(sb, "# TYPE vtxn_hot_group_lock_wait_seconds_total counter\n")
	for _, g := range s.Hotspots.TopWait {
		fmt.Fprintf(sb, "vtxn_hot_group_lock_wait_seconds_total{view=\"%s\",key=\"%s\"} %s\n",
			promLabel(g.View), promLabel(g.Key), seconds(g.Value))
	}
	fmt.Fprintf(sb, "# HELP vtxn_hot_group_lock_conflicts_total Blocked lock acquisitions attributed to the hottest view group keys.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_hot_group_lock_conflicts_total counter\n")
	for _, g := range s.Hotspots.TopWait {
		fmt.Fprintf(sb, "vtxn_hot_group_lock_conflicts_total{view=\"%s\",key=\"%s\"} %d\n",
			promLabel(g.View), promLabel(g.Key), g.Count)
	}
	fmt.Fprintf(sb, "# HELP vtxn_hot_group_escrow_deltas_total Escrow delta updates attributed to the hottest view group keys (Space-Saving estimate).\n")
	fmt.Fprintf(sb, "# TYPE vtxn_hot_group_escrow_deltas_total counter\n")
	for _, g := range s.Hotspots.TopDelta {
		fmt.Fprintf(sb, "vtxn_hot_group_escrow_deltas_total{view=\"%s\",key=\"%s\"} %d\n",
			promLabel(g.View), promLabel(g.Key), g.Value)
	}
	fmt.Fprintf(sb, "# HELP vtxn_view_fold_rows_total View rows folded at commit, per view.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_fold_rows_total counter\n")
	for _, v := range s.Hotspots.Views {
		fmt.Fprintf(sb, "vtxn_view_fold_rows_total{view=\"%s\"} %d\n", promLabel(v.View), v.RowsFolded)
	}
	fmt.Fprintf(sb, "# HELP vtxn_view_fold_seconds_total Commit-time fold latency accumulated per view.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_fold_seconds_total counter\n")
	for _, v := range s.Hotspots.Views {
		fmt.Fprintf(sb, "vtxn_view_fold_seconds_total{view=\"%s\"} %s\n", promLabel(v.View), seconds(v.FoldNs))
	}
	fmt.Fprintf(sb, "# HELP vtxn_view_wal_bytes_total WAL bytes attributed to each view's maintenance.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_view_wal_bytes_total counter\n")
	for _, v := range s.Hotspots.Views {
		fmt.Fprintf(sb, "vtxn_view_wal_bytes_total{view=\"%s\"} %d\n", promLabel(v.View), v.WALBytes)
	}

	// Online consistency scrubber.
	enabled := int64(0)
	if s.Scrub.Enabled {
		enabled = 1
	}
	gauge("vtxn_scrub_enabled", "Whether the online scrubber is running (1) or disabled (0).", enabled)
	counter("vtxn_scrub_cycles_total", "Completed full scrub passes over every view in the catalog.", s.Scrub.Cycles)
	counter("vtxn_scrub_slices_total", "Verified (view, group-range) slices.", s.Scrub.Slices)
	counter("vtxn_scrub_rows_verified_total", "Rows read to verify slices (source recompute plus view compare).", s.Scrub.RowsVerified)
	counter("vtxn_scrub_divergences_total", "View rows found disagreeing with their recompute.", s.Scrub.Divergences)
	counter("vtxn_scrub_conflicts_total", "Deferred-view slices discarded because the applier folded mid-verification.", s.Scrub.Conflicts)
	counter("vtxn_scrub_snapshot_retries_total", "Watermark pins refused by the prune horizon and retried.", s.Scrub.SnapshotRetries)
	gauge("vtxn_scrub_last_full_pass_unix", "Unix time the most recent full pass completed (0 before the first).", s.Scrub.LastFullPassUnix)
	summary("vtxn_scrub_cycle_seconds", "Full scrub pass duration.", s.Scrub.CycleDur)
	fmt.Fprintf(sb, "# HELP vtxn_scrub_view_coverage_ts Per-view coverage watermark: every group verified at a snapshot timestamp >= this.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_scrub_view_coverage_ts gauge\n")
	for _, v := range s.Scrub.Views {
		fmt.Fprintf(sb, "vtxn_scrub_view_coverage_ts{view=\"%s\"} %d\n", promLabel(v.View), v.CoverageTS)
	}
	fmt.Fprintf(sb, "# HELP vtxn_scrub_view_divergences_total Divergences attributed to each view.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_scrub_view_divergences_total counter\n")
	for _, v := range s.Scrub.Views {
		fmt.Fprintf(sb, "vtxn_scrub_view_divergences_total{view=\"%s\"} %d\n", promLabel(v.View), v.Divergences)
	}

	// Recovery (static per instance).
	gauge("vtxn_recovery_replayed_records", "Log records redone at last restart.", int64(s.Recovery.Replayed))
	gauge("vtxn_recovery_loser_txns", "Transactions rolled back at last restart.", int64(s.Recovery.Losers))
	fmt.Fprintf(sb, "# HELP vtxn_recovery_phase_seconds Duration of each restart phase.\n")
	fmt.Fprintf(sb, "# TYPE vtxn_recovery_phase_seconds gauge\n")
	fmt.Fprintf(sb, "vtxn_recovery_phase_seconds{phase=\"analysis\"} %s\n", seconds(s.Recovery.AnalysisNs))
	fmt.Fprintf(sb, "vtxn_recovery_phase_seconds{phase=\"redo\"} %s\n", seconds(s.Recovery.RedoNs))
	fmt.Fprintf(sb, "vtxn_recovery_phase_seconds{phase=\"undo\"} %s\n", seconds(s.Recovery.UndoNs))
}

// seconds renders nanoseconds as a decimal seconds literal.
func seconds(ns int64) string {
	return fmt.Sprintf("%.9f", float64(ns)/1e9)
}

// promEscaper applies the three escapes the Prometheus text format defines
// inside quoted label values: backslash, double quote, and line feed.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabel escapes a label value for the Prometheus text exposition format.
// Decoded group keys are usually printable, but a raw/hex fallback or a
// hostile view name must not smuggle a quote, backslash, newline, or invalid
// UTF-8 into the exposition. Go's %q is close but not identical (it emits
// \xNN and \uNNNN escapes the format does not define), so callers
// interpolate the result between literal quotes with %s instead.
func promLabel(v string) string {
	return promEscaper.Replace(strings.ToValidUTF8(v, "�"))
}
