// Package metrics is the engine-wide observability layer: a low-overhead,
// race-clean registry of atomic counters and log-bucketed histograms wired
// through every subsystem (transactions, lock manager, escrow ledger, WAL,
// ghost cleaner, recovery), plus the Tracer event-hook interface that streams
// structured engine events to external consumers (DESIGN.md §7).
//
// Everything here is safe for concurrent use and allocation-free on the hot
// observation paths; the engine keeps metrics always-on within a <3% overhead
// budget on the headline benchmark.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent log-bucketed latency histogram covering 100ns to
// ~100s with ~4% resolution. It was promoted out of the bench-only
// internal/stats package so engine subsystems can record latencies directly.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

const (
	bucketCount  = 400
	minLatencyNs = 100
	// growth chosen so bucketCount buckets span nine decades.
	growth = 1.0533
)

var bucketBounds = func() [bucketCount]int64 {
	var b [bucketCount]int64
	v := float64(minLatencyNs)
	for i := range b {
		b[i] = int64(v)
		v *= growth
	}
	return b
}()

func bucketFor(ns int64) int {
	if ns <= minLatencyNs {
		return 0
	}
	idx := int(math.Log(float64(ns)/minLatencyNs) / math.Log(growth))
	if idx >= bucketCount {
		return bucketCount - 1
	}
	return idx
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns the latency at quantile q in [0,1].
func (h *Histogram) Percentile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > target {
			return time.Duration(bucketBounds[i])
		}
	}
	return h.Max()
}

// HistSnapshot is the JSON-stable summary of a histogram at one instant.
// Durations are nanoseconds so the encoding never depends on formatting.
type HistSnapshot struct {
	Count  int64 `json:"count"`
	SumNs  int64 `json:"sum_ns"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snap summarizes the histogram.
func (h *Histogram) Snap() HistSnapshot {
	return HistSnapshot{
		Count:  h.Count(),
		SumNs:  h.Sum().Nanoseconds(),
		MeanNs: h.Mean().Nanoseconds(),
		P50Ns:  h.Percentile(0.50).Nanoseconds(),
		P99Ns:  h.Percentile(0.99).Nanoseconds(),
		MaxNs:  h.Max().Nanoseconds(),
	}
}

// maxInt64 raises an atomic high-water mark to v if v is larger.
func maxInt64(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}
