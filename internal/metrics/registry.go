package metrics

import (
	"sync/atomic"
)

// Registry is the engine metrics registry: one per DB instance, created at
// Open and handed by sub-struct pointer to each subsystem. All fields are
// atomic; observation never takes a lock.
type Registry struct {
	Txn      TxnMetrics
	Lock     LockMetrics
	Escrow   EscrowMetrics
	WAL      WALMetrics
	Ghost    GhostMetrics
	Watchdog WatchdogMetrics
	Hot      HotMetrics
	MVCC     MVCCMetrics
	Deferred DeferredMetrics
	Cascade  CascadeMetrics
	// Freshness is the per-view commit-to-visible accounting (histograms and
	// staleness gauges), fed by the commit fold path and the deferred applier.
	Freshness Freshness
	// Scrub is the online consistency scrubber's accounting: verification
	// volume, divergences, and per-view coverage watermarks.
	Scrub ScrubMetrics
}

// NewRegistry returns an empty registry with the hot-spot sketches sized to
// their defaults.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Hot.LockWait = NewSketch(DefaultSketchSlots)
	r.Hot.EscrowDeltas = NewSketch(DefaultSketchSlots)
	r.Lock.Hot = r.Hot.LockWait
	return r
}

// HotMetrics is the hot-spot attribution layer: heavy-hitter sketches over
// (view, group-key) fed by the lock manager and the escrow ledger, plus a
// per-view maintenance cost table fed by the commit fold and apply paths.
// All three are bounded-cardinality by construction (sketch capacity /
// catalog size), so snapshotting them never explodes.
type HotMetrics struct {
	// LockWait attributes lock wait: Val is blocked nanoseconds on the key,
	// Cnt the number of resolved waits (conflicts).
	LockWait *Sketch
	// EscrowDeltas attributes escrow pressure: Val is pending delta updates
	// applied against the group's view row, Cnt the number of transactions
	// that newly piled onto the row.
	EscrowDeltas *Sketch
	// Views is the per-view maintenance bill (rows folded, fold latency,
	// WAL bytes).
	Views ViewCosts
}

// TxnMetrics are the per-phase transaction timing histograms: where a
// transaction's wall-clock goes between Begin and the durable commit.
type TxnMetrics struct {
	// Begin times BeginTx itself (admission gate + begin record).
	Begin Histogram
	// Apply times each logged operation (WAL append + tree apply).
	Apply Histogram
	// Fold times the commit-time escrow fold (only commits with pending
	// deltas are observed).
	Fold Histogram
	// CommitWait times the group-commit sync the committer waits on.
	CommitWait Histogram
}

// LockMetrics attribute lock wait time to the manager's shards. Counts of
// requests/waits/deadlocks/timeouts live in the manager's own Stats; this
// adds where the *time* went.
type LockMetrics struct {
	// Wait is the global wait-time histogram (same samples as Txn.LockWait).
	Wait Histogram

	// Hot, when set, attributes wait-ns and conflict counts to the specific
	// key resource waited on (the registry aliases Hot.LockWait here so the
	// lock manager needs no registry reference). Nil-safe.
	Hot *Sketch

	shards []ShardWait
}

// ShardWait is one lock-manager stripe's wait-time attribution.
type ShardWait struct {
	Waits     atomic.Int64 // blocked acquisitions resolved on this shard
	WaitNs    atomic.Int64 // total nanoseconds those waiters were blocked
	Deadlocks atomic.Int64 // waits resolved by victim abort
	Timeouts  atomic.Int64 // waits resolved by timeout (or context cancel)
}

// InitShards sizes the per-shard attribution table. The lock manager calls it
// once at construction, before any concurrent use.
func (lm *LockMetrics) InitShards(n int) { lm.shards = make([]ShardWait, n) }

// Shard returns stripe i's attribution cell, or nil when unattached.
func (lm *LockMetrics) Shard(i int) *ShardWait {
	if lm == nil || i < 0 || i >= len(lm.shards) {
		return nil
	}
	return &lm.shards[i]
}

// ShardCount returns how many stripes are attributed.
func (lm *LockMetrics) ShardCount() int { return len(lm.shards) }

// EscrowMetrics track contention on the escrow ledger: how many transactions
// pile up on one hot aggregate row, and how commit-time folds batch.
type EscrowMetrics struct {
	// PendingTxnsHighWater is the most transactions that simultaneously held
	// pending deltas against a single view row (the paper's hot-row signal).
	PendingTxnsHighWater atomic.Int64
	// FoldBatches counts commit folds; FoldRows the view rows they folded.
	// FoldBatchMax is the largest single fold (rows per commit).
	FoldBatches  atomic.Int64
	FoldRows     atomic.Int64
	FoldBatchMax atomic.Int64
	// FoldAborts counts commits whose fold failed and rolled the transaction
	// back — the engine's analogue of an escrow overdraft abort.
	FoldAborts atomic.Int64
	// PendingRows is a gauge of view rows currently carrying unfolded deltas
	// (the watchdog's escrow-backlog signal).
	PendingRows atomic.Int64
}

// ObservePending raises the pending-transactions high-water mark.
func (em *EscrowMetrics) ObservePending(n int) {
	if em == nil {
		return
	}
	maxInt64(&em.PendingTxnsHighWater, int64(n))
}

// AdjustPendingRows moves the pending-rows gauge by d (+1 when a view row
// gains its first pending delta, -1 when its last is folded or discarded).
func (em *EscrowMetrics) AdjustPendingRows(d int64) {
	if em == nil {
		return
	}
	em.PendingRows.Add(d)
}

// ObserveFold records one commit fold of n view rows.
func (em *EscrowMetrics) ObserveFold(n int) {
	em.FoldBatches.Add(1)
	em.FoldRows.Add(int64(n))
	maxInt64(&em.FoldBatchMax, int64(n))
}

// WALMetrics track the write-ahead log: append volume, group-commit
// coalescing, and flush/fsync latency.
type WALMetrics struct {
	// Appends counts records appended to the log buffer.
	Appends atomic.Int64
	// Flushes counts physical buffer flushes; CoalescedSyncs counts Sync
	// calls satisfied by another committer's flush (the group-commit win).
	Flushes        atomic.Int64
	CoalescedSyncs atomic.Int64
	// BatchRecords sums records per flush; BatchMax is the largest batch.
	BatchRecords atomic.Int64
	BatchMax     atomic.Int64
	// Flush times the whole flush (write + fsync when SyncData); Fsync times
	// the fsync alone.
	Flush Histogram
	Fsync Histogram
	// flushStartNs is the UnixNano at which the in-progress physical flush
	// began, or zero when no flush is active — the watchdog's WAL-stall
	// signal. Set by the flusher after winning the flush mutex.
	flushStartNs atomic.Int64
}

// ObserveBatch records one physical flush of n records.
func (wm *WALMetrics) ObserveBatch(n int64) {
	wm.Flushes.Add(1)
	wm.BatchRecords.Add(n)
	maxInt64(&wm.BatchMax, n)
}

// BeginFlush marks a physical flush as in progress since startNs;
// EndFlush clears the mark. Only the single flusher calls either.
func (wm *WALMetrics) BeginFlush(startNs int64) {
	if wm == nil {
		return
	}
	wm.flushStartNs.Store(startNs)
}

// EndFlush marks the in-progress flush as finished.
func (wm *WALMetrics) EndFlush() {
	if wm == nil {
		return
	}
	wm.flushStartNs.Store(0)
}

// FlushActiveNs reports how long the in-progress flush has been running as of
// nowNs, or zero when no flush is active.
func (wm *WALMetrics) FlushActiveNs(nowNs int64) int64 {
	start := wm.flushStartNs.Load()
	if start == 0 || nowNs <= start {
		return 0
	}
	return nowNs - start
}

// GhostMetrics track the background ghost cleaner.
type GhostMetrics struct {
	// CleanerPasses counts CleanGhosts sweeps.
	CleanerPasses atomic.Int64
	// Backlog is the ghost rows still present after the last sweep (a gauge);
	// BacklogHighWater the most ever left behind.
	Backlog          atomic.Int64
	BacklogHighWater atomic.Int64
}

// ObservePass records one cleaner sweep ending with backlog ghosts left.
func (gm *GhostMetrics) ObservePass(backlog int) {
	gm.CleanerPasses.Add(1)
	gm.Backlog.Store(int64(backlog))
	maxInt64(&gm.BacklogHighWater, int64(backlog))
}

// MVCCMetrics track the multi-version read path: version-chain population,
// stamping volume, and pruning progress. The snapshot-registry gauges
// (active snapshots, watermark, oldest-snapshot age) live in the timestamp
// oracle; the engine fills them into the snapshot directly.
type MVCCMetrics struct {
	// VersionsStamped counts committed versions appended to chains.
	VersionsStamped atomic.Int64
	// VersionsPruned counts versions folded into chain bases by the pruner.
	VersionsPruned atomic.Int64
	// PrunePasses counts pruner sweeps.
	PrunePasses atomic.Int64
	// Chains is a gauge of live version chains; ChainLenHighWater the longest
	// chain (base + versions + pending) ever observed.
	Chains            atomic.Int64
	ChainLenHighWater atomic.Int64
}

// ObserveChainLen raises the chain-length high-water mark.
func (mm *MVCCMetrics) ObserveChainLen(n int) {
	if mm == nil {
		return
	}
	maxInt64(&mm.ChainLenHighWater, int64(n))
}

// DeferredMetrics track the deferred view-maintenance tier (DESIGN.md §9):
// commit-path publication volume, applier round progress, and the coalescing
// win. The watermark/lag/staleness gauges live in the oracle and the engine's
// applier state; the engine fills them into the snapshot directly.
type DeferredMetrics struct {
	// PublishedBatches counts commits that published deferred deltas;
	// PublishedGroups the (view, group) deltas those batches carried.
	PublishedBatches atomic.Int64
	PublishedGroups  atomic.Int64
	// ApplyRounds counts applier rounds that folded at least one group;
	// RetryRounds the rounds re-run after a failed fold.
	ApplyRounds atomic.Int64
	RetryRounds atomic.Int64
	// GroupsApplied counts (view, group) folds the applier performed.
	GroupsApplied atomic.Int64
	// DeltasIn counts cell deltas entering the coalescer; DeltasCoalesced the
	// subset merged into an already-pending accumulator (folds saved versus
	// immediate maintenance).
	DeltasIn        atomic.Int64
	DeltasCoalesced atomic.Int64
	// QueueHighWater is the most messages ever waiting in the applier queue.
	QueueHighWater atomic.Int64
	// Apply times each applier round (drain + fold + watermark publish).
	Apply Histogram
}

// ObserveQueueDepth raises the applier-queue high-water mark.
func (dm *DeferredMetrics) ObserveQueueDepth(n int) {
	if dm == nil {
		return
	}
	maxInt64(&dm.QueueHighWater, int64(n))
}

// CascadeLevels is how many view-DAG levels CascadeMetrics attributes
// individually; deeper levels fall into the last bucket.
const CascadeLevels = 4

// CascadeMetrics track stacked-view (view-over-view) maintenance: the child
// deltas parent folds cascade downward, how many of them merge into a
// (view, group) accumulator already pending in the same transaction — the
// commit-local coalescing queue's ≤1-fold-per-group guarantee — and how the
// resulting folds distribute over DAG levels.
type CascadeMetrics struct {
	// Enqueued counts child-view cell deltas produced by parent row changes
	// (both commit-time escrow cascades and DML-time X-lock cascades);
	// Coalesced the subset merged into an already-pending (view, group)
	// accumulator instead of creating a new one.
	Enqueued  atomic.Int64
	Coalesced atomic.Int64
	// Folds counts commit-time folds against stacked views (level >= 1) —
	// folds fed by a cascade rather than by base-table DML directly.
	Folds atomic.Int64
	// DeferredOut counts cascade group deltas routed to the deferred applier
	// instead of folded at commit (escrow parent feeding a deferred child).
	DeferredOut atomic.Int64
	// LevelFolds breaks every commit-time view fold down by DAG level
	// (level 0 = views directly over base tables).
	LevelFolds [CascadeLevels]atomic.Int64
}

// ObserveFold records one commit-time fold of a view at the given DAG level.
func (cm *CascadeMetrics) ObserveFold(level int) {
	if cm == nil {
		return
	}
	if level >= CascadeLevels {
		level = CascadeLevels - 1
	}
	cm.LevelFolds[level].Add(1)
	if level > 0 {
		cm.Folds.Add(1)
	}
}

// WatchdogMetrics count stall-watchdog detections by signature.
type WatchdogMetrics struct {
	// Detections counts every stall onset the watchdog reported.
	Detections atomic.Int64
	// Per-signature breakdown of Detections.
	WALStalls    atomic.Int64
	LockConvoys  atomic.Int64
	EscrowStalls atomic.Int64
	GhostStalls  atomic.Int64
	// FreshnessBreaches counts freshness-SLO onsets (a view's staleness
	// crossed Options.FreshnessSLO).
	FreshnessBreaches atomic.Int64
	// ScrubDivergences counts scrub-divergence onsets (the online scrubber
	// found a view disagreeing with its recompute).
	ScrubDivergences atomic.Int64
}
