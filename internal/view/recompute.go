package view

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
)

// Entry is one (key, stored value) pair of a fully recomputed view.
type Entry struct {
	Key []byte
	Val record.Row
}

// Recompute builds the view's exact contents from base-table rows: the
// oracle for deferred maintenance, the no-view query baseline, and the
// consistency checker. rightRows is ignored for single-table views.
func (m *Maintainer) Recompute(leftRows, rightRows []record.Row) ([]Entry, error) {
	src, err := m.sourceRowsFull(leftRows, rightRows)
	if err != nil {
		return nil, err
	}
	if m.V.Kind == catalog.ViewProjection {
		out := make([]Entry, 0, len(src))
		for _, s := range src {
			e, err := m.ProjectEntry(s)
			if err != nil {
				return nil, err
			}
			out = append(out, Entry{Key: e.Key, Val: e.Val})
		}
		sortEntries(out)
		return out, nil
	}
	// Aggregate view: group, then accumulate each group with the stored
	// cell layout (hidden count, SUM pairs, extrema).
	groups := map[string][]record.Row{}
	var keys []string
	for _, s := range src {
		k, err := m.GroupKey(s)
		if err != nil {
			return nil, err
		}
		ks := string(k)
		if _, ok := groups[ks]; !ok {
			keys = append(keys, ks)
		}
		groups[ks] = append(groups[ks], s)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, ks := range keys {
		rows := groups[ks]
		stored := m.NewGroupRow()
		stored[0] = record.Int(int64(len(rows)))
		for i, a := range m.V.Aggs {
			off := m.aggOffsets[i]
			switch a.Func {
			case expr.AggCountRows:
				stored[off] = record.Int(int64(len(rows)))
			case expr.AggCount:
				n := int64(0)
				for _, r := range rows {
					v, err := a.Arg.Eval(r)
					if err != nil {
						return nil, err
					}
					if !v.IsNull() {
						n++
					}
				}
				stored[off] = record.Int(n)
			case expr.AggSum, expr.AggAvg:
				n := int64(0)
				sumI := int64(0)
				sumF := 0.0
				isFloat := false
				for _, r := range rows {
					v, err := a.Arg.Eval(r)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						continue
					}
					n++
					switch v.Kind() {
					case record.KindInt64:
						sumI += v.AsInt()
					default:
						sumF += v.AsFloat()
						isFloat = true
					}
				}
				stored[off] = record.Int(n)
				if isFloat {
					stored[off+1] = record.Float(sumF + float64(sumI))
				} else {
					stored[off+1] = record.Int(sumI)
				}
			default: // MIN / MAX
				acc := expr.NewAccumulator(a)
				for _, r := range rows {
					if err := acc.Add(r); err != nil {
						return nil, err
					}
				}
				stored[off] = acc.Result()
			}
		}
		out = append(out, Entry{Key: []byte(ks), Val: stored})
	}
	return out, nil
}

// sourceRowsFull joins and filters the full base contents into source rows.
func (m *Maintainer) sourceRowsFull(leftRows, rightRows []record.Row) ([]record.Row, error) {
	var src []record.Row
	if m.Right == nil {
		for _, l := range leftRows {
			ok, err := m.Matches(l)
			if err != nil {
				return nil, err
			}
			if ok {
				src = append(src, l)
			}
		}
		return src, nil
	}
	leftCol, rightCol := m.JoinCols()
	byJoin := map[string][]record.Row{}
	for _, r := range rightRows {
		v := r[rightCol]
		if v.IsNull() {
			continue
		}
		k := string(record.AppendKey(nil, v))
		byJoin[k] = append(byJoin[k], r)
	}
	for _, l := range leftRows {
		v := l[leftCol]
		if v.IsNull() {
			continue
		}
		k := string(record.AppendKey(nil, v))
		for _, r := range byJoin[k] {
			s := m.CombineRows(l, r)
			ok, err := m.Matches(s)
			if err != nil {
				return nil, err
			}
			if ok {
				src = append(src, s)
			}
		}
	}
	return src, nil
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		return record.CompareKeys(es[i].Key, es[j].Key) < 0
	})
}
