package view

import (
	"fmt"

	"repro/internal/record"
)

// ProjectionEntry is a projection view's derived key/value pair for one
// source row.
type ProjectionEntry struct {
	Key []byte     // encoded source primary key(s): left PK then right PK
	Val record.Row // projected columns
}

// ProjectEntry derives the view entry for one matching source row. The key
// is the left table's PK values — plus the right table's for joins — so it
// is unique and stable under updates to non-key columns.
func (m *Maintainer) ProjectEntry(src record.Row) (ProjectionEntry, error) {
	var keyRow record.Row
	for _, pk := range m.Left.PK {
		keyRow = append(keyRow, src[pk])
	}
	if m.Right != nil {
		base := len(m.Left.Cols)
		for _, pk := range m.Right.PK {
			keyRow = append(keyRow, src[base+pk])
		}
	}
	val := make(record.Row, len(m.V.ProjectCols))
	for i, c := range m.V.ProjectCols {
		if c < 0 || c >= len(src) {
			return ProjectionEntry{}, fmt.Errorf("%w: project column %d of %d", ErrSchema, c, len(src))
		}
		val[i] = src[c]
	}
	return ProjectionEntry{Key: record.EncodeKey(keyRow), Val: val}, nil
}

// JoinSide tells JoinSources which table a changed row belongs to.
type JoinSide uint8

const (
	// SideLeft marks a row of the view's left table.
	SideLeft JoinSide = iota + 1
	// SideRight marks a row of the view's right table.
	SideRight
)

// JoinCols returns the join column index local to each table: the left
// table's column and the right table's column participating in the equijoin.
func (m *Maintainer) JoinCols() (leftCol, rightCol int) {
	return m.V.JoinLeftCol, m.V.JoinRightCol - len(m.Left.Cols)
}

// CombineRows builds the source row from one row of each side.
func (m *Maintainer) CombineRows(left, right record.Row) record.Row {
	src := make(record.Row, 0, len(left)+len(right))
	src = append(src, left...)
	return append(src, right...)
}

// SourceRows expands a changed base row into the view's source rows: for a
// single-table view that is the row itself; for a join it is the row
// combined with every matching row of the other side (supplied by lookup).
// lookup receives the join value and must return the matching other-side
// rows; it is nil for single-table views.
func (m *Maintainer) SourceRows(side JoinSide, row record.Row, lookup func(joinVal record.Value) ([]record.Row, error)) ([]record.Row, error) {
	if m.Right == nil {
		if side != SideLeft {
			return nil, fmt.Errorf("%w: single-table view has no right side", ErrSchema)
		}
		return []record.Row{row}, nil
	}
	leftCol, rightCol := m.JoinCols()
	var joinVal record.Value
	if side == SideLeft {
		joinVal = row[leftCol]
	} else {
		joinVal = row[rightCol]
	}
	if joinVal.IsNull() {
		return nil, nil // NULLs never join
	}
	matches, err := lookup(joinVal)
	if err != nil {
		return nil, err
	}
	out := make([]record.Row, 0, len(matches))
	for _, other := range matches {
		if side == SideLeft {
			out = append(out, m.CombineRows(row, other))
		} else {
			out = append(out, m.CombineRows(other, row))
		}
	}
	return out, nil
}
