package view

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/wal"
)

// fixtures returns a catalog with accounts(id, branch, balance, note) and
// branches(id, region).
func fixtures(t *testing.T) (*catalog.Catalog, *catalog.Table, *catalog.Table) {
	t.Helper()
	c := catalog.New()
	accounts, err := c.AddTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
		{Name: "note", Kind: record.KindString},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	branches, err := c.AddTable("branches", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "region", Kind: record.KindString},
	}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return c, accounts, branches
}

func aggMaintainer(t *testing.T) *Maintainer {
	t.Helper()
	c, accounts, _ := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name:        "branch_totals",
		Kind:        catalog.ViewAggregate,
		Left:        "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
			{Func: expr.AggMax, Arg: expr.Col(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func acct(id, branch, balance int64) record.Row {
	return record.Row{record.Int(id), record.Int(branch), record.Int(balance), record.Str("n")}
}

func TestCompileLayout(t *testing.T) {
	m := aggMaintainer(t)
	// Cells: hidden count, COUNT(*) (1), SUM (2), MAX (1) = 5.
	if m.Cells() != 5 {
		t.Fatalf("Cells = %d", m.Cells())
	}
	if m.AggOffset(0) != 1 || m.AggOffset(1) != 2 || m.AggOffset(2) != 4 {
		t.Fatalf("offsets = %d %d %d", m.AggOffset(0), m.AggOffset(1), m.AggOffset(2))
	}
	if !m.HasMinMax() {
		t.Fatal("HasMinMax should be true (MAX present)")
	}
	if m.SourceWidth() != 4 {
		t.Fatalf("SourceWidth = %d", m.SourceWidth())
	}
}

func TestCompileValidation(t *testing.T) {
	c, accounts, branches := fixtures(t)
	v, _ := c.AddView(catalog.View{
		Name: "v", Kind: catalog.ViewAggregate, Left: "accounts",
		Aggs: []expr.AggSpec{{Func: expr.AggCountRows}},
	})
	if _, err := Compile(v, branches, nil); err == nil {
		t.Fatal("wrong left table accepted")
	}
	if _, err := Compile(v, accounts, branches); err == nil {
		t.Fatal("spurious right table accepted")
	}
	jv, _ := c.AddView(catalog.View{
		Name: "jv", Kind: catalog.ViewProjection, Left: "accounts", Right: "branches",
		JoinLeftCol: 1, JoinRightCol: 4, ProjectCols: []int{0, 5},
	})
	if _, err := Compile(jv, accounts, nil); err == nil {
		t.Fatal("missing right table accepted")
	}
	if _, err := Compile(jv, accounts, branches); err != nil {
		t.Fatal(err)
	}
}

func TestGroupKeyAndMatches(t *testing.T) {
	m := aggMaintainer(t)
	k1, err := m.GroupKey(acct(1, 7, 100))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := m.GroupKey(acct(2, 7, 50))
	k3, _ := m.GroupKey(acct(3, 8, 50))
	if string(k1) != string(k2) {
		t.Fatal("same branch should share a group key")
	}
	if string(k1) == string(k3) {
		t.Fatal("different branches should differ")
	}
	ok, err := m.Matches(acct(1, 7, 100))
	if err != nil || !ok {
		t.Fatal("nil WHERE should match everything")
	}
}

func TestContributionsInsert(t *testing.T) {
	m := aggMaintainer(t)
	hidden, contribs, err := m.Contributions(acct(1, 7, 100), +1)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.Cell != 0 || hidden.Delta.Int != 1 {
		t.Fatalf("hidden = %+v", hidden)
	}
	if len(contribs) != 3 {
		t.Fatalf("%d contribs", len(contribs))
	}
	// COUNT(*): +1 at cell 1.
	if c := contribs[0]; !c.Escrowable || len(c.Cells) != 1 || c.Cells[0].Cell != 1 || c.Cells[0].Delta.Int != 1 {
		t.Fatalf("count contrib = %+v", c)
	}
	// SUM: +1 non-null count at cell 2, +100 at cell 3.
	if c := contribs[1]; !c.Escrowable || len(c.Cells) != 2 ||
		c.Cells[0].Cell != 2 || c.Cells[0].Delta.Int != 1 ||
		c.Cells[1].Cell != 3 || c.Cells[1].Delta.Int != 100 {
		t.Fatalf("sum contrib = %+v", c)
	}
	// MAX: not escrowable, carries the value.
	if c := contribs[2]; c.Escrowable || c.Value.AsInt() != 100 {
		t.Fatalf("max contrib = %+v", c)
	}

	// Delete is the negation.
	_, del, _ := m.Contributions(acct(1, 7, 100), -1)
	if del[1].Cells[1].Delta.Int != -100 {
		t.Fatalf("delete sum delta = %+v", del[1].Cells[1])
	}
	if _, _, err := m.Contributions(acct(1, 7, 100), 2); err == nil {
		t.Fatal("bad sign accepted")
	}
}

func TestContributionsNullArg(t *testing.T) {
	m := aggMaintainer(t)
	row := record.Row{record.Int(1), record.Int(7), record.Null(), record.Str("n")}
	hidden, contribs, err := m.Contributions(row, +1)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.Delta.Int != 1 {
		t.Fatal("hidden count must still tick for NULL args")
	}
	if len(contribs[1].Cells) != 0 {
		t.Fatalf("SUM of NULL contributed: %+v", contribs[1].Cells)
	}
	if !contribs[2].Value.IsNull() {
		t.Fatal("MAX value should be NULL")
	}
}

func TestApplyFoldAndResult(t *testing.T) {
	m := aggMaintainer(t)
	stored := m.NewGroupRow()
	empty, err := m.GroupEmpty(stored)
	if err != nil || !empty {
		t.Fatal("new group should be empty")
	}
	// Fold two inserts: balances 100 and 50.
	deltas := []wal.ColDelta{
		{Col: 0, Int: 2}, {Col: 1, Int: 2}, {Col: 2, Int: 2}, {Col: 3, Int: 150},
	}
	stored, err = m.ApplyFold(stored, deltas)
	if err != nil {
		t.Fatal(err)
	}
	empty, _ = m.GroupEmpty(stored)
	if empty {
		t.Fatal("group with rows reported empty")
	}
	res, err := m.Result(stored)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AsInt() != 2 || res[1].AsInt() != 150 {
		t.Fatalf("result = %v", res)
	}
	// Fold the inverse: back to empty; SUM reads as NULL again.
	stored, err = m.ApplyFold(stored, []wal.ColDelta{
		{Col: 0, Int: -2}, {Col: 1, Int: -2}, {Col: 2, Int: -2}, {Col: 3, Int: -150},
	})
	if err != nil {
		t.Fatal(err)
	}
	if empty, _ = m.GroupEmpty(stored); !empty {
		t.Fatal("group not empty after inverse fold")
	}
	res, _ = m.Result(stored)
	if !res[1].IsNull() {
		t.Fatalf("SUM over empty group = %v, want NULL", res[1])
	}
}

func TestApplyFoldFloatPromotion(t *testing.T) {
	m := aggMaintainer(t)
	stored := m.NewGroupRow()
	stored, err := m.ApplyFold(stored, []wal.ColDelta{
		{Col: 0, Int: 1}, {Col: 2, Int: 1}, {Col: 3, IsFloat: true, Float: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored[3].Kind() != record.KindFloat64 || stored[3].AsFloat() != 2.5 {
		t.Fatalf("promoted cell = %v", stored[3])
	}
	// Int delta onto a float cell accumulates as float.
	stored, err = m.ApplyFold(stored, []wal.ColDelta{{Col: 3, Int: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if stored[3].AsFloat() != 4.5 {
		t.Fatalf("mixed fold = %v", stored[3])
	}
	// Fold out of range errors.
	if _, err := m.ApplyFold(stored, []wal.ColDelta{{Col: 99, Int: 1}}); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
}

func TestProjectionEntry(t *testing.T) {
	c, accounts, branches := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name: "rich", Kind: catalog.ViewProjection, Left: "accounts",
		Where:       expr.Gt(expr.Col(2), expr.ConstInt(1000)),
		ProjectCols: []int{0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := acct(5, 1, 2000)
	ok, _ := m.Matches(row)
	if !ok {
		t.Fatal("row should match")
	}
	ok, _ = m.Matches(acct(6, 1, 10))
	if ok {
		t.Fatal("poor row should not match")
	}
	e, err := m.ProjectEntry(row)
	if err != nil {
		t.Fatal(err)
	}
	wantKey := record.EncodeKey(record.Row{record.Int(5)})
	if string(e.Key) != string(wantKey) {
		t.Fatal("projection key should be the PK")
	}
	if len(e.Val) != 2 || e.Val[0].AsInt() != 5 || e.Val[1].AsInt() != 2000 {
		t.Fatalf("projection val = %v", e.Val)
	}
	_ = branches
}

func TestJoinSourceRows(t *testing.T) {
	c, accounts, branches := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name: "joined", Kind: catalog.ViewProjection, Left: "accounts", Right: "branches",
		JoinLeftCol: 1, JoinRightCol: 4, // accounts.branch = branches.id
		ProjectCols: []int{0, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, branches)
	if err != nil {
		t.Fatal(err)
	}
	branch := record.Row{record.Int(7), record.Str("west")}
	lookup := func(joinVal record.Value) ([]record.Row, error) {
		if joinVal.AsInt() == 7 {
			return []record.Row{branch}, nil
		}
		return nil, nil
	}
	src, err := m.SourceRows(SideLeft, acct(1, 7, 10), lookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 1 || len(src[0]) != 6 || src[0][5].AsString() != "west" {
		t.Fatalf("src = %v", src)
	}
	// Right-side change: combine with matching left rows.
	leftLookup := func(joinVal record.Value) ([]record.Row, error) {
		return []record.Row{acct(1, 7, 10), acct(2, 7, 20)}, nil
	}
	src, err = m.SourceRows(SideRight, branch, leftLookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 2 || src[1][0].AsInt() != 2 {
		t.Fatalf("right-side src = %v", src)
	}
	// NULL join values never join.
	nullRow := record.Row{record.Int(1), record.Null(), record.Int(5), record.Str("")}
	src, err = m.SourceRows(SideLeft, nullRow, lookup)
	if err != nil || src != nil {
		t.Fatalf("NULL join: %v, %v", src, err)
	}
	// Single-table views reject SideRight.
	am := aggMaintainer(t)
	if _, err := am.SourceRows(SideRight, branch, nil); err == nil {
		t.Fatal("single-table view accepted SideRight")
	}
}

func TestRecomputeAggregate(t *testing.T) {
	m := aggMaintainer(t)
	rows := []record.Row{
		acct(1, 7, 100), acct(2, 7, 50), acct(3, 8, 25),
		{record.Int(4), record.Int(8), record.Null(), record.Str("n")},
	}
	entries, err := m.Recompute(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d groups", len(entries))
	}
	// Group 7: count 2, sum 150, max 100.
	res, _ := m.Result(entries[0].Val)
	if res[0].AsInt() != 2 || res[1].AsInt() != 150 || res[2].AsInt() != 100 {
		t.Fatalf("group 7 = %v", res)
	}
	// Group 8: count 2 (NULL balance still counts rows), sum 25, max 25.
	res, _ = m.Result(entries[1].Val)
	if res[0].AsInt() != 2 || res[1].AsInt() != 25 || res[2].AsInt() != 25 {
		t.Fatalf("group 8 = %v", res)
	}
}

// TestIncrementalMatchesRecompute is the package's core property: a random
// history of inserts and deletes maintained via Contributions + ApplyFold
// produces exactly Recompute of the surviving rows (for escrowable
// aggregates; MIN/MAX maintenance lives in the engine).
func TestIncrementalMatchesRecompute(t *testing.T) {
	c, accounts, _ := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name:        "totals",
		Kind:        catalog.ViewAggregate,
		Left:        "accounts",
		Where:       expr.Ge(expr.Col(2), expr.ConstInt(0)), // filter: non-negative balances
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
			{Func: expr.AggCount, Arg: expr.Col(2)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		live := map[int64]record.Row{}
		stored := map[string]record.Row{}
		apply := func(row record.Row, sign int) {
			ok, err := m.Matches(row)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
			key, _ := m.GroupKey(row)
			hidden, contribs, err := m.Contributions(row, sign)
			if err != nil {
				t.Fatal(err)
			}
			var deltas []wal.ColDelta
			deltas = append(deltas, wal.ColDelta{Col: hidden.Cell, Int: hidden.Delta.Int, IsFloat: false})
			for _, ct := range contribs {
				for _, cd := range ct.Cells {
					d := wal.ColDelta{Col: cd.Cell, Int: cd.Delta.Int}
					if cd.Delta.Float != 0 {
						d = wal.ColDelta{Col: cd.Cell, IsFloat: true, Float: cd.Delta.Float}
					}
					deltas = append(deltas, d)
				}
			}
			cur, ok := stored[string(key)]
			if !ok {
				cur = m.NewGroupRow()
			}
			next, err := m.ApplyFold(cur, deltas)
			if err != nil {
				t.Fatal(err)
			}
			if empty, _ := m.GroupEmpty(next); empty {
				delete(stored, string(key))
			} else {
				stored[string(key)] = next
			}
		}
		for step := 0; step < 400; step++ {
			id := int64(rng.Intn(60))
			if old, ok := live[id]; ok && rng.Intn(2) == 0 {
				apply(old, -1)
				delete(live, id)
				continue
			}
			if _, ok := live[id]; ok {
				continue
			}
			var bal record.Value
			switch rng.Intn(4) {
			case 0:
				bal = record.Null()
			case 1:
				bal = record.Int(int64(rng.Intn(100) - 20)) // some negative: filtered out
			default:
				bal = record.Int(int64(rng.Intn(1000)))
			}
			row := record.Row{record.Int(id), record.Int(int64(rng.Intn(5))), bal, record.Str("x")}
			live[id] = row
			apply(row, +1)
		}
		// Compare to recompute.
		var rows []record.Row
		for _, r := range live {
			rows = append(rows, r)
		}
		want, err := m.Recompute(rows, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(stored) {
			t.Fatalf("trial %d: %d groups maintained, %d recomputed", trial, len(stored), len(want))
		}
		for _, e := range want {
			got, ok := stored[string(e.Key)]
			if !ok {
				t.Fatalf("trial %d: group missing", trial)
			}
			if record.CompareRows(got, e.Val) != 0 {
				t.Fatalf("trial %d: group mismatch: got %v want %v", trial, got, e.Val)
			}
		}
	}
}

func TestRecomputeJoin(t *testing.T) {
	c, accounts, branches := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name: "per_region", Kind: catalog.ViewAggregate,
		Left: "accounts", Right: "branches",
		JoinLeftCol: 1, JoinRightCol: 4, // accounts.branch = branches.id
		GroupByCols: []int{5}, // region
		Aggs:        []expr.AggSpec{{Func: expr.AggSum, Arg: expr.Col(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, branches)
	if err != nil {
		t.Fatal(err)
	}
	left := []record.Row{acct(1, 7, 100), acct(2, 7, 50), acct(3, 8, 30), acct(4, 9, 1)}
	right := []record.Row{
		{record.Int(7), record.Str("west")},
		{record.Int(8), record.Str("east")},
		// branch 9 missing: account 4 joins nothing
	}
	entries, err := m.Recompute(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d groups", len(entries))
	}
	// Keys sort: "east" < "west".
	res, _ := m.Result(entries[0].Val)
	if res[0].AsInt() != 30 {
		t.Fatalf("east sum = %v", res[0])
	}
	res, _ = m.Result(entries[1].Val)
	if res[0].AsInt() != 150 {
		t.Fatalf("west sum = %v", res[0])
	}
}

func BenchmarkContributions(b *testing.B) {
	c := catalog.New()
	accounts, _ := c.AddTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0})
	v, _ := c.AddView(catalog.View{
		Name: "t", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs: []expr.AggSpec{
			{Func: expr.AggCountRows},
			{Func: expr.AggSum, Arg: expr.Col(2)},
		},
	})
	m, _ := Compile(v, accounts, nil)
	row := record.Row{record.Int(1), record.Int(2), record.Int(300)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Contributions(row, 1)
	}
}
