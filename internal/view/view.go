// Package view implements the paper's primary contribution as a pure
// library: compiled maintenance plans for indexed views.
//
// Given a view definition, a Maintainer computes — without touching locks,
// logs, or trees — everything the engine needs to maintain the view
// incrementally inside a user transaction:
//
//   - which view row a source-row change touches (the group key),
//   - the signed contributions of the change to each aggregate cell
//     (escrowable SUM/COUNT deltas vs. MIN/MAX values needing X locks),
//   - the stored-row cell layout, fold arithmetic, and ghost criterion,
//   - projection/join row derivations, and
//   - the recompute-from-scratch oracle used by deferred maintenance,
//     view-less query baselines, and the consistency checker.
//
// The engine (internal/core) supplies concurrency control, logging, and
// storage around these primitives.
package view

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/escrow"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/wal"
)

// ErrSchema reports a view/table mismatch discovered while compiling.
var ErrSchema = errors.New("view: schema mismatch")

// Maintainer is a compiled maintenance plan for one view.
type Maintainer struct {
	V     *catalog.View
	Left  *catalog.Table
	Right *catalog.Table // nil unless the view joins two tables

	// Aggregate views: cell layout of the stored value row.
	// Cell 0 is always the hidden COUNT(*) that tracks group existence.
	// aggOffsets[i] is the first cell of aggregate i; SUM aggregates own two
	// cells (non-NULL count, running sum) so an all-NULL group reads as
	// SQL NULL; COUNT/COUNT(*)/MIN/MAX own one.
	aggOffsets []int
	cells      int
}

// Compile builds the maintenance plan, validating the view against its
// tables.
func Compile(v *catalog.View, left, right *catalog.Table) (*Maintainer, error) {
	if v.Left != left.Name {
		return nil, fmt.Errorf("%w: view %q is over %q, got table %q", ErrSchema, v.Name, v.Left, left.Name)
	}
	if v.Join() {
		if right == nil || v.Right != right.Name {
			return nil, fmt.Errorf("%w: view %q joins %q", ErrSchema, v.Name, v.Right)
		}
	} else if right != nil {
		return nil, fmt.Errorf("%w: view %q has no join table", ErrSchema, v.Name)
	}
	m := &Maintainer{V: v, Left: left, Right: right}
	if v.Kind == catalog.ViewAggregate {
		m.cells = 1 // hidden COUNT(*)
		m.aggOffsets = make([]int, len(v.Aggs))
		for i, a := range v.Aggs {
			m.aggOffsets[i] = m.cells
			if a.Func == expr.AggSum || a.Func == expr.AggAvg {
				m.cells += 2 // (non-NULL count, running sum)
			} else {
				m.cells++
			}
		}
	}
	if err := m.probeTypes(); err != nil {
		return nil, err
	}
	return m, nil
}

// probeTypes type-checks the view's expressions against the source schema
// by evaluating them over a sample row of schema-typed zero values, so type
// errors surface at CREATE VIEW time rather than at the first DML.
func (m *Maintainer) probeTypes() error {
	sample := make(record.Row, 0, m.SourceWidth())
	appendZero := func(cols []catalog.Column) {
		for _, c := range cols {
			switch c.Kind {
			case record.KindBool:
				sample = append(sample, record.Bool(false))
			case record.KindInt64:
				sample = append(sample, record.Int(0))
			case record.KindFloat64:
				sample = append(sample, record.Float(0))
			case record.KindString:
				sample = append(sample, record.Str(""))
			case record.KindBytes:
				sample = append(sample, record.Bytes(nil))
			default:
				sample = append(sample, record.Null())
			}
		}
	}
	appendZero(m.Left.Cols)
	if m.Right != nil {
		appendZero(m.Right.Cols)
	}
	if m.V.Where != nil {
		v, err := m.V.Where.Eval(sample)
		if err != nil {
			return fmt.Errorf("%w: WHERE of view %q: %v", ErrSchema, m.V.Name, err)
		}
		if !v.IsNull() && v.Kind() != record.KindBool {
			return fmt.Errorf("%w: WHERE of view %q is %s, not BOOL", ErrSchema, m.V.Name, v.Kind())
		}
	}
	for i, a := range m.V.Aggs {
		if a.Func == expr.AggCountRows {
			continue
		}
		v, err := a.Arg.Eval(sample)
		if err != nil {
			return fmt.Errorf("%w: aggregate %d of view %q: %v", ErrSchema, i, m.V.Name, err)
		}
		switch a.Func {
		case expr.AggSum, expr.AggAvg:
			if _, ok := v.Numeric(); !ok && !v.IsNull() {
				return fmt.Errorf("%w: %s argument of view %q is %s, not numeric",
					ErrSchema, a.Func, m.V.Name, v.Kind())
			}
		}
	}
	return nil
}

// SourceWidth is the number of columns in a source row.
func (m *Maintainer) SourceWidth() int {
	w := len(m.Left.Cols)
	if m.Right != nil {
		w += len(m.Right.Cols)
	}
	return w
}

// Matches evaluates the view's WHERE clause over a source row.
func (m *Maintainer) Matches(src record.Row) (bool, error) {
	return expr.EvalBool(m.V.Where, src)
}

// GroupRow extracts the grouping column values from a source row.
func (m *Maintainer) GroupRow(src record.Row) (record.Row, error) {
	out := make(record.Row, len(m.V.GroupByCols))
	for i, c := range m.V.GroupByCols {
		if c < 0 || c >= len(src) {
			return nil, fmt.Errorf("%w: group column %d of %d", ErrSchema, c, len(src))
		}
		out[i] = src[c]
	}
	return out, nil
}

// GroupKey returns the encoded view key for a source row's group. It encodes
// straight from the source columns (no intermediate group row), pre-sizing
// for the common fixed-width kinds.
func (m *Maintainer) GroupKey(src record.Row) ([]byte, error) {
	key := make([]byte, 0, 9*len(m.V.GroupByCols))
	for _, c := range m.V.GroupByCols {
		if c < 0 || c >= len(src) {
			return nil, fmt.Errorf("%w: group column %d of %d", ErrSchema, c, len(src))
		}
		key = record.AppendKey(key, src[c])
	}
	return key, nil
}

// Contribution is the effect of one source-row change on one aggregate.
type Contribution struct {
	// AggIndex is the aggregate's position in the view definition.
	AggIndex int
	// Escrowable contributions carry signed cell deltas; MIN/MAX carry the
	// evaluated argument value instead.
	Escrowable bool
	// Cells are the (cell offset, delta) pairs for escrowable aggregates.
	Cells []CellDelta
	// Value is the evaluated argument for MIN/MAX (may be NULL).
	Value record.Value
}

// CellDelta pairs a stored-row cell offset with a signed delta.
type CellDelta struct {
	Cell  uint32
	Delta escrow.Delta
}

// Contributions computes the signed effect of adding (sign=+1) or removing
// (sign=-1) a matching source row: the hidden-count delta plus one
// Contribution per aggregate.
func (m *Maintainer) Contributions(src record.Row, sign int) (CellDelta, []Contribution, error) {
	if sign != 1 && sign != -1 {
		return CellDelta{}, nil, fmt.Errorf("view: sign must be ±1, got %d", sign)
	}
	hidden := CellDelta{Cell: 0, Delta: escrow.Delta{Int: int64(sign)}}
	out := make([]Contribution, 0, len(m.V.Aggs))
	// One flat backing array serves every aggregate's Cells slice (at most
	// two cells per aggregate), so the loop never allocates per aggregate.
	flat := make([]CellDelta, 0, 2*len(m.V.Aggs))
	for i, a := range m.V.Aggs {
		off := uint32(m.aggOffsets[i])
		from := len(flat)
		c := Contribution{AggIndex: i, Escrowable: a.Func.Escrowable()}
		switch a.Func {
		case expr.AggCountRows:
			flat = append(flat, CellDelta{Cell: off, Delta: escrow.Delta{Int: int64(sign)}})
		case expr.AggCount:
			v, err := a.Arg.Eval(src)
			if err != nil {
				return CellDelta{}, nil, err
			}
			if !v.IsNull() {
				flat = append(flat, CellDelta{Cell: off, Delta: escrow.Delta{Int: int64(sign)}})
			}
		case expr.AggSum, expr.AggAvg:
			v, err := a.Arg.Eval(src)
			if err != nil {
				return CellDelta{}, nil, err
			}
			if !v.IsNull() {
				var d escrow.Delta
				switch v.Kind() {
				case record.KindInt64:
					d.Int = int64(sign) * v.AsInt()
				case record.KindFloat64:
					d.Float = float64(sign) * v.AsFloat()
				default:
					return CellDelta{}, nil, fmt.Errorf("%w: %s over %s", ErrSchema, a.Func, v.Kind())
				}
				flat = append(flat,
					CellDelta{Cell: off, Delta: escrow.Delta{Int: int64(sign)}}, // non-NULL count
					CellDelta{Cell: off + 1, Delta: d})                          // running sum
			}
		case expr.AggMin, expr.AggMax:
			v, err := a.Arg.Eval(src)
			if err != nil {
				return CellDelta{}, nil, err
			}
			c.Value = v
		default:
			return CellDelta{}, nil, fmt.Errorf("view: unknown aggregate %v", a.Func)
		}
		if len(flat) > from {
			c.Cells = flat[from:len(flat):len(flat)]
		}
		out = append(out, c)
	}
	return hidden, out, nil
}

// HasMinMax reports whether any aggregate needs X-lock maintenance even
// under the escrow strategy.
func (m *Maintainer) HasMinMax() bool {
	for _, a := range m.V.Aggs {
		if !a.Func.Escrowable() {
			return true
		}
	}
	return false
}

// Cells returns the stored value row width for aggregate views.
func (m *Maintainer) Cells() int { return m.cells }

// AggOffset returns the first stored cell of aggregate i.
func (m *Maintainer) AggOffset(i int) int { return m.aggOffsets[i] }

// NewGroupRow returns the stored value row for a brand-new (empty) group:
// zero counts, zero sums, NULL extrema.
func (m *Maintainer) NewGroupRow() record.Row {
	out := make(record.Row, m.cells)
	out[0] = record.Int(0)
	for i, a := range m.V.Aggs {
		off := m.aggOffsets[i]
		switch a.Func {
		case expr.AggCountRows, expr.AggCount:
			out[off] = record.Int(0)
		case expr.AggSum, expr.AggAvg:
			out[off] = record.Int(0)   // non-NULL count
			out[off+1] = record.Int(0) // running sum (kind fixed on first delta)
		default:
			out[off] = record.Null()
		}
	}
	return out
}

// ApplyFold applies logged fold deltas to a stored value row, returning the
// new row. It is the single definition of fold arithmetic, used by the
// commit path, rollback (with negated deltas), and recovery redo. ApplyFold
// takes ownership of stored: cells are updated in place and the same slice
// is returned, so callers must pass a row they do not reuse.
func (m *Maintainer) ApplyFold(stored record.Row, deltas []wal.ColDelta) (record.Row, error) {
	out := stored
	for _, d := range deltas {
		if int(d.Col) >= len(out) {
			return nil, fmt.Errorf("%w: fold cell %d of %d", ErrSchema, d.Col, len(out))
		}
		cur := out[d.Col]
		switch {
		case d.IsFloat:
			base := 0.0
			switch cur.Kind() {
			case record.KindFloat64:
				base = cur.AsFloat()
			case record.KindInt64:
				base = float64(cur.AsInt()) // kind promotion on first float delta
			case record.KindNull:
			default:
				return nil, fmt.Errorf("%w: float delta on %s cell", ErrSchema, cur.Kind())
			}
			out[d.Col] = record.Float(base + d.Float)
		default:
			switch cur.Kind() {
			case record.KindInt64:
				out[d.Col] = record.Int(cur.AsInt() + d.Int)
			case record.KindFloat64:
				out[d.Col] = record.Float(cur.AsFloat() + float64(d.Int))
			case record.KindNull:
				out[d.Col] = record.Int(d.Int)
			default:
				return nil, fmt.Errorf("%w: int delta on %s cell", ErrSchema, cur.Kind())
			}
		}
	}
	return out, nil
}

// GroupEmpty reports whether a stored value row describes an empty group
// (hidden COUNT(*) is zero) — the fold-time ghost criterion.
func (m *Maintainer) GroupEmpty(stored record.Row) (bool, error) {
	if len(stored) == 0 || stored[0].Kind() != record.KindInt64 {
		return false, fmt.Errorf("%w: stored row lacks hidden count", ErrSchema)
	}
	return stored[0].AsInt() == 0, nil
}

// OutputRow materializes the view's user-visible output row for one stored
// group: the group column values (decoded from the view key) followed by the
// aggregate results in definition order. This is the source row a view
// stacked on this one evaluates its own expressions against, matching the
// schema catalog.SourceTable derives.
func (m *Maintainer) OutputRow(key []byte, stored record.Row) (record.Row, error) {
	group, err := record.DecodeKey(key)
	if err != nil {
		return nil, fmt.Errorf("%w: view %q group key: %v", ErrSchema, m.V.Name, err)
	}
	if len(group) != len(m.V.GroupByCols) {
		return nil, fmt.Errorf("%w: view %q key has %d group columns, want %d",
			ErrSchema, m.V.Name, len(group), len(m.V.GroupByCols))
	}
	res, err := m.Result(stored)
	if err != nil {
		return nil, err
	}
	return append(group, res...), nil
}

// Result maps a stored value row to the user-visible aggregate results, in
// definition order: SUM with a zero non-NULL count reads as NULL.
func (m *Maintainer) Result(stored record.Row) (record.Row, error) {
	if len(stored) != m.cells {
		return nil, fmt.Errorf("%w: stored row has %d cells, want %d", ErrSchema, len(stored), m.cells)
	}
	out := make(record.Row, len(m.V.Aggs))
	for i, a := range m.V.Aggs {
		off := m.aggOffsets[i]
		switch a.Func {
		case expr.AggSum:
			if stored[off].Kind() == record.KindInt64 && stored[off].AsInt() == 0 {
				out[i] = record.Null()
			} else {
				out[i] = stored[off+1]
			}
		case expr.AggAvg:
			n := stored[off]
			if n.Kind() != record.KindInt64 || n.AsInt() == 0 {
				out[i] = record.Null()
				break
			}
			sum, ok := stored[off+1].Numeric()
			if !ok {
				out[i] = record.Null()
				break
			}
			out[i] = record.Float(sum / float64(n.AsInt()))
		default:
			out[i] = stored[off]
		}
	}
	return out, nil
}
