package view

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/wal"
)

func avgMaintainer(t *testing.T) *Maintainer {
	t.Helper()
	c, accounts, _ := fixtures(t)
	v, err := c.AddView(catalog.View{
		Name: "avg_view", Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1},
		Aggs:        []expr.AggSpec{{Func: expr.AggAvg, Arg: expr.Col(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(v, accounts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAvgLayoutAndContributions(t *testing.T) {
	m := avgMaintainer(t)
	// Hidden count + AVG's (count, sum) pair.
	if m.Cells() != 3 {
		t.Fatalf("Cells = %d", m.Cells())
	}
	if m.HasMinMax() {
		t.Fatal("AVG must be escrowable")
	}
	_, contribs, err := m.Contributions(acct(1, 7, 100), +1)
	if err != nil {
		t.Fatal(err)
	}
	c := contribs[0]
	if !c.Escrowable || len(c.Cells) != 2 ||
		c.Cells[0].Cell != 1 || c.Cells[0].Delta.Int != 1 ||
		c.Cells[1].Cell != 2 || c.Cells[1].Delta.Int != 100 {
		t.Fatalf("avg contrib = %+v", c)
	}
}

func TestAvgFoldAndResult(t *testing.T) {
	m := avgMaintainer(t)
	stored := m.NewGroupRow()
	stored, err := m.ApplyFold(stored, []wal.ColDelta{
		{Col: 0, Int: 3}, {Col: 1, Int: 2}, {Col: 2, Int: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Result(stored)
	if err != nil {
		t.Fatal(err)
	}
	// Two non-NULL inputs summing 150: AVG = 75.
	if res[0].Kind() != record.KindFloat64 || res[0].AsFloat() != 75 {
		t.Fatalf("AVG = %v", res[0])
	}
	// Remove both contributions: AVG reads NULL while COUNT(*) stays 3.
	stored, err = m.ApplyFold(stored, []wal.ColDelta{{Col: 1, Int: -2}, {Col: 2, Int: -150}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ = m.Result(stored)
	if !res[0].IsNull() {
		t.Fatalf("AVG over zero non-NULL rows = %v", res[0])
	}
}

func TestAvgRecomputeAgreement(t *testing.T) {
	m := avgMaintainer(t)
	rows := []record.Row{
		acct(1, 7, 100), acct(2, 7, 50),
		{record.Int(3), record.Int(7), record.Null(), record.Str("n")},
	}
	entries, err := m.Recompute(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Result(entries[0].Val)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AsFloat() != 75 {
		t.Fatalf("recomputed AVG = %v", res[0])
	}
}

func TestProbeTypesRejectsBadViews(t *testing.T) {
	c, accounts, _ := fixtures(t)
	bad := []catalog.View{
		{Name: "v1", Kind: catalog.ViewAggregate, Left: "accounts",
			Aggs: []expr.AggSpec{{Func: expr.AggSum, Arg: expr.Col(3)}}}, // SUM over string
		{Name: "v2", Kind: catalog.ViewAggregate, Left: "accounts",
			Aggs: []expr.AggSpec{{Func: expr.AggAvg, Arg: expr.Col(3)}}}, // AVG over string
		{Name: "v3", Kind: catalog.ViewAggregate, Left: "accounts",
			Where: expr.Add(expr.Col(0), expr.ConstInt(1)), // non-boolean WHERE
			Aggs:  []expr.AggSpec{{Func: expr.AggCountRows}}},
		{Name: "v4", Kind: catalog.ViewAggregate, Left: "accounts",
			Where: expr.Eq(expr.Col(3), expr.ConstInt(1)), // string = int
			Aggs:  []expr.AggSpec{{Func: expr.AggCountRows}}},
	}
	for _, def := range bad {
		v, err := c.AddView(def)
		if err != nil {
			t.Fatalf("%s: catalog rejected (want Compile to reject): %v", def.Name, err)
		}
		if _, err := Compile(v, accounts, nil); err == nil {
			t.Errorf("%s: Compile accepted a type-broken view", def.Name)
		}
	}
	// A sound view still compiles.
	v, err := c.AddView(catalog.View{
		Name: "good", Kind: catalog.ViewAggregate, Left: "accounts",
		Where: expr.Gt(expr.Col(2), expr.ConstInt(0)),
		Aggs:  []expr.AggSpec{{Func: expr.AggAvg, Arg: expr.Mul(expr.Col(2), expr.ConstInt(2))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(v, accounts, nil); err != nil {
		t.Fatal(err)
	}
}
