package btree

import (
	"bytes"
	"fmt"
)

// CheckInvariants walks the whole tree and returns an error describing the
// first structural violation found. It is exported for tests and for the
// engine's consistency checker; it takes the tree latch.
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	live, ghosts := 0, 0
	leaves := 0
	var prevKey []byte
	var firstLeaf *node
	err := t.check(t.root, t.height, nil, nil, &live, &ghosts, &leaves, &prevKey, &firstLeaf)
	if err != nil {
		return err
	}
	if live != t.size {
		return fmt.Errorf("btree: size counter %d, counted %d", t.size, live)
	}
	if ghosts != t.ghosts {
		return fmt.Errorf("btree: ghost counter %d, counted %d", t.ghosts, ghosts)
	}
	// Leaf chain must visit exactly the leaves, in order.
	n := firstLeaf
	chained := 0
	var last *node
	for n != nil {
		chained++
		if n.prev != last {
			return fmt.Errorf("btree: broken prev pointer at leaf %d", chained)
		}
		last = n
		n = n.next
	}
	if chained != leaves {
		return fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", chained, leaves)
	}
	return nil
}

func (t *Tree) check(n *node, depth int, lo, hi []byte, live, ghosts, leaves *int, prevKey *[]byte, firstLeaf **node) error {
	if n != t.root && len(n.keys) < minKeys {
		return fmt.Errorf("btree: underfull node (%d keys)", len(n.keys))
	}
	if len(n.keys) > order {
		return fmt.Errorf("btree: overfull node (%d keys)", len(n.keys))
	}
	for i := 1; i < len(n.keys); i++ {
		if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
			return fmt.Errorf("btree: keys out of order in node")
		}
	}
	for _, k := range n.keys {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return fmt.Errorf("btree: key below subtree lower bound")
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return fmt.Errorf("btree: key at/above subtree upper bound")
		}
	}
	if n.leaf {
		if depth != 1 {
			return fmt.Errorf("btree: leaf at depth %d, want 1", depth)
		}
		if len(n.vals) != len(n.keys) || len(n.ghost) != len(n.keys) {
			return fmt.Errorf("btree: leaf parallel slices misaligned")
		}
		*leaves++
		if *firstLeaf == nil {
			*firstLeaf = n
		}
		for i := range n.keys {
			if *prevKey != nil && bytes.Compare(*prevKey, n.keys[i]) >= 0 {
				return fmt.Errorf("btree: global key order violated across leaves")
			}
			*prevKey = n.keys[i]
			if n.ghost[i] {
				*ghosts++
			} else {
				*live++
			}
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: internal node has %d children for %d keys", len(n.children), len(n.keys))
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		if err := t.check(c, depth-1, clo, chi, live, ghosts, leaves, prevKey, firstLeaf); err != nil {
			return err
		}
	}
	return nil
}
