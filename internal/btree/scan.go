package btree

import "bytes"

// Item is one entry yielded by a scan. Key and Val alias internal storage and
// must not be modified; Clone before retaining.
type Item struct {
	Key   []byte
	Val   []byte
	Ghost bool
}

// Clone returns an Item with copied Key and Val.
func (it Item) Clone() Item {
	return Item{
		Key:   append([]byte(nil), it.Key...),
		Val:   append([]byte(nil), it.Val...),
		Ghost: it.Ghost,
	}
}

// Scan visits entries with lo <= key < hi in ascending order. A nil lo means
// the start of the tree; a nil hi means the end. Ghost entries are skipped
// unless includeGhosts is set. fn returns false to stop early. fn must not
// call back into the same tree (the tree latch is held across the scan).
func (t *Tree) Scan(lo, hi []byte, includeGhosts bool, fn func(Item) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n *node
	var i int
	if lo == nil {
		n = t.leftmostLeaf()
		i = 0
	} else {
		n = t.findLeaf(lo)
		i, _ = search(n.keys, lo)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if n.ghost[i] && !includeGhosts {
				continue
			}
			if !fn(Item{Key: n.keys[i], Val: n.vals[i], Ghost: n.ghost[i]}) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// ScanReverse visits entries with lo <= key < hi in descending order, with
// the same nil-boundary and ghost conventions as Scan.
func (t *Tree) ScanReverse(lo, hi []byte, includeGhosts bool, fn func(Item) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n *node
	var i int
	if hi == nil {
		n = t.rightmostLeaf()
		i = len(n.keys) - 1
	} else {
		n = t.findLeaf(hi)
		// First index >= hi; we start one before it (hi itself is excluded).
		idx, _ := search(n.keys, hi)
		i = idx - 1
		if i < 0 {
			n = n.prev
			if n != nil {
				i = len(n.keys) - 1
			}
		}
	}
	for n != nil {
		for ; i >= 0; i-- {
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				return
			}
			if n.ghost[i] && !includeGhosts {
				continue
			}
			if !fn(Item{Key: n.keys[i], Val: n.vals[i], Ghost: n.ghost[i]}) {
				return
			}
		}
		n = n.prev
		if n != nil {
			i = len(n.keys) - 1
		}
	}
}

// Successor returns a copy of the smallest key strictly greater than key,
// including ghost entries (key-range locking anchors on physical keys, and
// ghosts are physical). ok is false when no such key exists.
func (t *Tree) Successor(key []byte) (succ []byte, ok bool) {
	return t.SuccessorAppend(nil, key)
}

// SuccessorAppend is Successor appending the found key to dst (which may be
// nil), avoiding a separate allocation when the caller is building a larger
// buffer around the key.
func (t *Tree) SuccessorAppend(dst, key []byte) (succ []byte, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.findLeaf(key)
	i, exact := search(n.keys, key)
	if exact {
		i++
	}
	for n != nil {
		if i < len(n.keys) {
			return append(dst, n.keys[i]...), true
		}
		n = n.next
		i = 0
	}
	return dst, false
}

// Ceiling returns a copy of the smallest key greater than or equal to key,
// including ghosts. ok is false when no such key exists.
func (t *Tree) Ceiling(key []byte) (ceil []byte, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.findLeaf(key)
	i, _ := search(n.keys, key)
	for n != nil {
		if i < len(n.keys) {
			return append([]byte(nil), n.keys[i]...), true
		}
		n = n.next
		i = 0
	}
	return nil, false
}

// First returns a copy of the smallest live entry, or ok=false when empty.
func (t *Tree) First() (Item, bool) { return t.edge(false) }

// Last returns a copy of the largest live entry, or ok=false when empty.
func (t *Tree) Last() (Item, bool) { return t.edge(true) }

func (t *Tree) edge(last bool) (Item, bool) {
	var out Item
	var found bool
	visit := func(it Item) bool {
		out = it.Clone()
		found = true
		return false
	}
	if last {
		t.ScanReverse(nil, nil, false, visit)
	} else {
		t.Scan(nil, nil, false, visit)
	}
	return out, found
}

func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

func (t *Tree) rightmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	return n
}

// Items returns copies of every entry in [lo, hi); for tests and snapshots.
func (t *Tree) Items(lo, hi []byte, includeGhosts bool) []Item {
	var out []Item
	t.Scan(lo, hi, includeGhosts, func(it Item) bool {
		out = append(out, it.Clone())
		return true
	})
	return out
}
