// Package btree implements an in-memory B+-tree over []byte keys with
// ghost-bit-aware entries.
//
// The tree stands in for the paged B-tree indexes of the paper's storage
// engine (see DESIGN.md §2): tables, secondary indexes, and indexed views are
// each one Tree. Leaf entries carry a ghost bit — the pseudo-deleted record
// marker the paper's system transactions toggle — so structural presence and
// logical visibility are decoupled exactly as in the paper.
//
// Concurrency: every exported method takes the tree latch (an RWMutex), the
// memory-resident analogue of page latching. Transactional isolation is the
// lock manager's job, layered above.
package btree

import (
	"bytes"
	"sync"
)

// order is the maximum number of keys in a node. 2*order children max.
const order = 64

// minKeys is the minimum number of keys in a non-root node.
const minKeys = order / 2

// Tree is a B+-tree mapping []byte keys to []byte values with a per-entry
// ghost bit. The zero value is not usable; call New.
type Tree struct {
	mu     sync.RWMutex
	root   *node
	height int // number of levels; 1 = root is a leaf
	size   int // live (non-ghost) entries
	ghosts int // ghost entries
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf only, parallel to keys
	ghost    []bool   // leaf only, parallel to keys
	children []*node  // internal only, len(children) == len(keys)+1
	next     *node    // leaf chain
	prev     *node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}, height: 1}
}

// Len returns the number of live (non-ghost) entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// GhostCount returns the number of ghost entries.
func (t *Tree) GhostCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ghosts
}

// Height returns the number of levels in the tree.
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// search returns the index of the first key >= k in n.keys, and whether an
// exact match was found.
func search(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], k)
}

func (t *Tree) findLeaf(k []byte) *node {
	n := t.root
	for !n.leaf {
		i, exact := search(n.keys, k)
		if exact {
			i++ // separator keys equal to k route right
		}
		n = n.children[i]
	}
	return n
}

// Get returns a copy of the value stored under key. ghost reports the entry's
// ghost bit; ok is false when no entry (live or ghost) exists.
func (t *Tree) Get(key []byte) (val []byte, ghost, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.findLeaf(key)
	i, exact := search(n.keys, key)
	if !exact {
		return nil, false, false
	}
	out := make([]byte, len(n.vals[i]))
	copy(out, n.vals[i])
	return out, n.ghost[i], true
}

// Has reports whether an entry (live or ghost) exists under key, without
// copying its value.
func (t *Tree) Has(key []byte) (ghost, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.findLeaf(key)
	i, exact := search(n.keys, key)
	if !exact {
		return false, false
	}
	return n.ghost[i], true
}

// Put inserts or replaces the entry for key, setting its value and ghost bit.
// It returns true when an entry (live or ghost) already existed. Key and
// value bytes are copied.
func (t *Tree) Put(key, val []byte, ghost bool) (replaced bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	replaced = t.insert(t.root, key, val, ghost)
	if len(t.root.keys) > order {
		t.splitRoot()
	}
	return replaced
}

// insert descends to the leaf and inserts/replaces; it splits full children
// on the way back up. Returns whether an existing entry was replaced. k and v
// remain caller-owned: they are copied only when a fresh entry is created,
// and a replace recycles the stored key and (capacity permitting) the stored
// value slice. Readers never retain aliases into the tree (Get copies out;
// Scan's Item contract requires Clone), so overwriting the backing array is
// safe.
func (t *Tree) insert(n *node, k, v []byte, ghost bool) bool {
	if n.leaf {
		i, exact := search(n.keys, k)
		if exact {
			t.adjustCounts(n.ghost[i], ghost)
			n.vals[i] = append(n.vals[i][:0], v...)
			n.ghost[i] = ghost
			return true
		}
		n.keys = insertAt(n.keys, i, append([]byte(nil), k...))
		n.vals = insertAt(n.vals, i, append([]byte(nil), v...))
		n.ghost = insertBoolAt(n.ghost, i, ghost)
		if ghost {
			t.ghosts++
		} else {
			t.size++
		}
		return false
	}
	i, exact := search(n.keys, k)
	if exact {
		i++
	}
	replaced := t.insert(n.children[i], k, v, ghost)
	if child := n.children[i]; len(child.keys) > order {
		sep, right := splitNode(child)
		n.keys = insertAt(n.keys, i, sep)
		n.children = insertNodeAt(n.children, i+1, right)
	}
	return replaced
}

func (t *Tree) adjustCounts(oldGhost, newGhost bool) {
	switch {
	case oldGhost && !newGhost:
		t.ghosts--
		t.size++
	case !oldGhost && newGhost:
		t.size--
		t.ghosts++
	}
}

func (t *Tree) splitRoot() {
	sep, right := splitNode(t.root)
	t.root = &node{
		keys:     [][]byte{sep},
		children: []*node{t.root, right},
	}
	t.height++
}

// splitNode splits an over-full node in half, returning the separator key to
// push up and the new right sibling.
func splitNode(n *node) (sep []byte, right *node) {
	mid := len(n.keys) / 2
	right = &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		right.ghost = append(right.ghost, n.ghost[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.ghost = n.ghost[:mid:mid]
		right.next = n.next
		if right.next != nil {
			right.next.prev = right
		}
		right.prev = n
		n.next = right
		sep = right.keys[0]
		return sep, right
	}
	sep = n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// SetGhost sets the ghost bit of an existing entry, returning false when the
// key is absent.
func (t *Tree) SetGhost(key []byte, ghost bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.findLeaf(key)
	i, exact := search(n.keys, key)
	if !exact {
		return false
	}
	t.adjustCounts(n.ghost[i], ghost)
	n.ghost[i] = ghost
	return true
}

// Delete removes the entry (live or ghost) for key, returning whether it
// existed.
func (t *Tree) Delete(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	deleted := t.remove(t.root, key)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
		t.height--
	}
	return deleted
}

func (t *Tree) remove(n *node, k []byte) bool {
	if n.leaf {
		i, exact := search(n.keys, k)
		if !exact {
			return false
		}
		if n.ghost[i] {
			t.ghosts--
		} else {
			t.size--
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		n.ghost = removeBoolAt(n.ghost, i)
		return true
	}
	i, exact := search(n.keys, k)
	if exact {
		i++
	}
	deleted := t.remove(n.children[i], k)
	if deleted && len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance fixes an underflowing child n.children[i] by borrowing from a
// sibling or merging with one.
func (t *Tree) rebalance(parent *node, i int) {
	child := parent.children[i]
	// Try borrowing from the left sibling.
	if i > 0 {
		left := parent.children[i-1]
		if len(left.keys) > minKeys {
			borrowFromLeft(parent, i, left, child)
			return
		}
	}
	// Try borrowing from the right sibling.
	if i < len(parent.children)-1 {
		right := parent.children[i+1]
		if len(right.keys) > minKeys {
			borrowFromRight(parent, i, child, right)
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		mergeChildren(parent, i-1)
	} else {
		mergeChildren(parent, i)
	}
}

func borrowFromLeft(parent *node, i int, left, child *node) {
	if child.leaf {
		last := len(left.keys) - 1
		child.keys = insertAt(child.keys, 0, left.keys[last])
		child.vals = insertAt(child.vals, 0, left.vals[last])
		child.ghost = insertBoolAt(child.ghost, 0, left.ghost[last])
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		left.ghost = left.ghost[:last]
		parent.keys[i-1] = child.keys[0]
		return
	}
	last := len(left.keys) - 1
	child.keys = insertAt(child.keys, 0, parent.keys[i-1])
	parent.keys[i-1] = left.keys[last]
	child.children = insertNodeAt(child.children, 0, left.children[last+1])
	left.keys = left.keys[:last]
	left.children = left.children[:last+1]
}

func borrowFromRight(parent *node, i int, child, right *node) {
	if child.leaf {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		child.ghost = append(child.ghost, right.ghost[0])
		right.keys = removeAt(right.keys, 0)
		right.vals = removeAt(right.vals, 0)
		right.ghost = removeBoolAt(right.ghost, 0)
		parent.keys[i] = right.keys[0]
		return
	}
	child.keys = append(child.keys, parent.keys[i])
	parent.keys[i] = right.keys[0]
	child.children = append(child.children, right.children[0])
	right.keys = removeAt(right.keys, 0)
	right.children = removeNodeAt(right.children, 0)
}

// mergeChildren merges parent.children[i+1] into parent.children[i].
func mergeChildren(parent *node, i int) {
	left, right := parent.children[i], parent.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.ghost = append(left.ghost, right.ghost...)
		left.next = right.next
		if left.next != nil {
			left.next.prev = left
		}
	} else {
		left.keys = append(left.keys, parent.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.keys = removeAt(parent.keys, i)
	parent.children = removeNodeAt(parent.children, i+1)
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertBoolAt(s []bool, i int, v bool) []bool {
	s = append(s, false)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt(s [][]byte, i int) [][]byte {
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	return s[:len(s)-1]
}

func removeBoolAt(s []bool, i int) []bool {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func removeNodeAt(s []*node, i int) []*node {
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	return s[:len(s)-1]
}
