package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }
func mustCheck(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	mustCheck(t, tr)
	if tr.Len() != 0 || tr.Height() != 1 || tr.GhostCount() != 0 {
		t.Fatal("empty tree counters wrong")
	}
	if _, _, ok := tr.Get(key(1)); ok {
		t.Fatal("Get on empty tree")
	}
	if tr.Delete(key(1)) {
		t.Fatal("Delete on empty tree")
	}
	if _, ok := tr.First(); ok {
		t.Fatal("First on empty tree")
	}
	if _, ok := tr.Last(); ok {
		t.Fatal("Last on empty tree")
	}
}

func TestPutGetSequential(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		if tr.Put(key(i), val(i), false) {
			t.Fatalf("Put(%d) reported replace", i)
		}
	}
	mustCheck(t, tr)
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Fatal("tree did not split")
	}
	for i := 0; i < n; i++ {
		v, ghost, ok := tr.Get(key(i))
		if !ok || ghost || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q,%v,%v", i, v, ghost, ok)
		}
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	tr.Put(key(1), val(1), false)
	if !tr.Put(key(1), val(2), false) {
		t.Fatal("replace not reported")
	}
	v, _, _ := tr.Get(key(1))
	if !bytes.Equal(v, val(2)) {
		t.Fatal("value not replaced")
	}
	if tr.Len() != 1 {
		t.Fatal("replace changed size")
	}
}

func TestGetCopies(t *testing.T) {
	tr := New()
	tr.Put(key(1), []byte{1, 2, 3}, false)
	v, _, _ := tr.Get(key(1))
	v[0] = 99
	v2, _, _ := tr.Get(key(1))
	if v2[0] != 1 {
		t.Fatal("Get exposed internal storage")
	}
}

func TestPutCopiesArgs(t *testing.T) {
	tr := New()
	k := []byte("kk")
	v := []byte("vv")
	tr.Put(k, v, false)
	k[0] = 'x'
	v[0] = 'x'
	got, _, ok := tr.Get([]byte("kk"))
	if !ok || !bytes.Equal(got, []byte("vv")) {
		t.Fatal("Put aliased caller slices")
	}
}

func TestDeleteRandomized(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	const n = 3000
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Put(key(i), val(i), false)
	}
	mustCheck(t, tr)
	perm = rng.Perm(n)
	for cnt, i := range perm {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) missing", i)
		}
		if cnt%250 == 0 {
			mustCheck(t, tr)
		}
	}
	mustCheck(t, tr)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting all", tr.Height())
	}
}

func TestGhosts(t *testing.T) {
	tr := New()
	tr.Put(key(1), val(1), true) // insert as ghost
	if tr.Len() != 0 || tr.GhostCount() != 1 {
		t.Fatalf("counters after ghost insert: %d live %d ghost", tr.Len(), tr.GhostCount())
	}
	v, ghost, ok := tr.Get(key(1))
	if !ok || !ghost || !bytes.Equal(v, val(1)) {
		t.Fatal("ghost entry not readable via Get")
	}
	// Ghosts are invisible to scans by default.
	if got := tr.Items(nil, nil, false); len(got) != 0 {
		t.Fatalf("scan saw %d ghosts", len(got))
	}
	if got := tr.Items(nil, nil, true); len(got) != 1 || !got[0].Ghost {
		t.Fatal("includeGhosts scan should see ghost")
	}
	// Resurrect.
	if !tr.SetGhost(key(1), false) {
		t.Fatal("SetGhost failed")
	}
	if tr.Len() != 1 || tr.GhostCount() != 0 {
		t.Fatal("counters after resurrect")
	}
	// Re-ghost and physically delete.
	tr.SetGhost(key(1), true)
	if !tr.Delete(key(1)) {
		t.Fatal("Delete of ghost failed")
	}
	if tr.GhostCount() != 0 {
		t.Fatal("ghost counter after delete")
	}
	if tr.SetGhost(key(9), true) {
		t.Fatal("SetGhost of absent key should fail")
	}
	mustCheck(t, tr)
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i), i%10 == 0) // every 10th is a ghost
	}
	var got []string
	tr.Scan(key(15), key(35), false, func(it Item) bool {
		got = append(got, string(it.Key))
		return true
	})
	var want []string
	for i := 15; i < 35; i++ {
		if i%10 == 0 {
			continue
		}
		want = append(want, string(key(i)))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Scan got %v want %v", got, want)
	}
	// Early stop.
	count := 0
	tr.Scan(nil, nil, true, func(Item) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestScanReverse(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put(key(i), val(i), false)
	}
	var got []string
	tr.ScanReverse(key(10), key(14), false, func(it Item) bool {
		got = append(got, string(it.Key))
		return true
	})
	want := []string{string(key(13)), string(key(12)), string(key(11)), string(key(10))}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ScanReverse got %v want %v", got, want)
	}
	// Full reverse equals sorted descending.
	var all []string
	tr.ScanReverse(nil, nil, false, func(it Item) bool {
		all = append(all, string(it.Key))
		return true
	})
	if len(all) != 200 || !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] > all[j] }) {
		t.Fatal("full reverse scan out of order")
	}
}

func TestFirstLast(t *testing.T) {
	tr := New()
	for i := 10; i < 20; i++ {
		tr.Put(key(i), val(i), false)
	}
	tr.Put(key(5), val(5), true)   // ghost below
	tr.Put(key(25), val(25), true) // ghost above
	first, ok := tr.First()
	if !ok || string(first.Key) != string(key(10)) {
		t.Fatalf("First = %q", first.Key)
	}
	last, ok := tr.Last()
	if !ok || string(last.Key) != string(key(19)) {
		t.Fatalf("Last = %q", last.Key)
	}
}

func TestSuccessorAndCeiling(t *testing.T) {
	tr := New()
	for _, i := range []int{10, 20, 30} {
		tr.Put(key(i), val(i), i == 20) // 20 is a ghost: still a physical key
	}
	cases := []struct {
		from     int
		wantSucc int // -1 = none
		wantCeil int
	}{
		{5, 10, 10},
		{10, 20, 10},
		{15, 20, 20},
		{20, 30, 20},
		{25, 30, 30},
		{30, -1, 30},
		{35, -1, -1},
	}
	for _, c := range cases {
		succ, ok := tr.Successor(key(c.from))
		if c.wantSucc == -1 {
			if ok {
				t.Errorf("Successor(%d) = %q, want none", c.from, succ)
			}
		} else if !ok || string(succ) != string(key(c.wantSucc)) {
			t.Errorf("Successor(%d) = %q,%v want %d", c.from, succ, ok, c.wantSucc)
		}
		ceil, ok := tr.Ceiling(key(c.from))
		if c.wantCeil == -1 {
			if ok {
				t.Errorf("Ceiling(%d) = %q, want none", c.from, ceil)
			}
		} else if !ok || string(ceil) != string(key(c.wantCeil)) {
			t.Errorf("Ceiling(%d) = %q,%v want %d", c.from, ceil, ok, c.wantCeil)
		}
	}
	// Empty tree: no successor.
	empty := New()
	if _, ok := empty.Successor(key(1)); ok {
		t.Error("Successor on empty tree")
	}
	if _, ok := empty.Ceiling(key(1)); ok {
		t.Error("Ceiling on empty tree")
	}
	// Across leaf boundaries in a large tree.
	big := New()
	for i := 0; i < 2000; i += 2 {
		big.Put(key(i), val(i), false)
	}
	for i := 1; i < 1997; i += 222 { // odd probes between the even keys
		succ, ok := big.Successor(key(i))
		if !ok || string(succ) != string(key(i+1)) {
			t.Fatalf("big Successor(%d) = %q,%v", i, succ, ok)
		}
	}
}

type refEntry struct {
	val   string
	ghost bool
}

// TestRandomOpsAgainstReference drives the tree with random operations and
// compares against a reference map at every step boundary.
func TestRandomOpsAgainstReference(t *testing.T) {
	tr := New()
	ref := map[string]refEntry{}
	rng := rand.New(rand.NewSource(42))
	const keySpace = 800
	for step := 0; step < 30000; step++ {
		k := key(rng.Intn(keySpace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put live
			v := val(rng.Intn(1 << 20))
			tr.Put(k, v, false)
			ref[string(k)] = refEntry{val: string(v)}
		case 4: // put ghost
			v := val(rng.Intn(1 << 20))
			tr.Put(k, v, true)
			ref[string(k)] = refEntry{val: string(v), ghost: true}
		case 5, 6: // delete
			_, exists := ref[string(k)]
			if tr.Delete(k) != exists {
				t.Fatalf("step %d: Delete mismatch", step)
			}
			delete(ref, string(k))
		case 7: // toggle ghost
			e, exists := ref[string(k)]
			if tr.SetGhost(k, !e.ghost) != exists {
				t.Fatalf("step %d: SetGhost mismatch", step)
			}
			if exists {
				e.ghost = !e.ghost
				ref[string(k)] = e
			}
		default: // get
			v, ghost, ok := tr.Get(k)
			e, exists := ref[string(k)]
			if ok != exists {
				t.Fatalf("step %d: Get presence mismatch", step)
			}
			if ok && (string(v) != e.val || ghost != e.ghost) {
				t.Fatalf("step %d: Get content mismatch", step)
			}
		}
		if step%2500 == 0 {
			mustCheck(t, tr)
			compareToRef(t, tr, ref)
		}
	}
	mustCheck(t, tr)
	compareToRef(t, tr, ref)
}

func compareToRef(t *testing.T, tr *Tree, ref map[string]refEntry) {
	t.Helper()
	items := tr.Items(nil, nil, true)
	if len(items) != len(ref) {
		t.Fatalf("tree has %d entries, ref has %d", len(items), len(ref))
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		it := items[i]
		e := ref[k]
		if string(it.Key) != k || string(it.Val) != e.val || it.Ghost != e.ghost {
			t.Fatalf("entry %d: tree (%q,%q,%v) ref (%q,%q,%v)",
				i, it.Key, it.Val, it.Ghost, k, e.val, e.ghost)
		}
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i), false)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1000; i < 3000; i++ {
			tr.Put(key(i), val(i), false)
			if i%3 == 0 {
				tr.Delete(key(i - 1000))
			}
		}
	}()
	for j := 0; j < 50; j++ {
		n := 0
		tr.Scan(nil, nil, false, func(Item) bool { n++; return true })
		if n == 0 {
			t.Fatal("scan saw empty tree")
		}
	}
	<-done
	mustCheck(t, tr)
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i), false)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i), false)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}

func BenchmarkScan100(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := key((i * 97) % (n - 100))
		cnt := 0
		tr.Scan(start, nil, false, func(Item) bool {
			cnt++
			return cnt < 100
		})
	}
}
