package btree

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// opKind enumerates the operations of a random program against the tree.
type opKind uint8

const (
	opPut opKind = iota
	opPutGhost
	opDelete
	opToggleGhost
)

type treeOp struct {
	kind opKind
	key  byte // small key space forces collisions, splits, and merges
	val  byte
}

// TestQuickProgramEquivalence: any random program of operations leaves the
// tree exactly equal to a reference map, with invariants intact and scans
// sorted — checked via testing/quick over generated programs.
func TestQuickProgramEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			n := 50 + rng.Intn(400)
			prog := make([]treeOp, n)
			for i := range prog {
				prog[i] = treeOp{
					kind: opKind(rng.Intn(4)),
					key:  byte(rng.Intn(48)),
					val:  byte(rng.Intn(256)),
				}
			}
			args[0] = reflect.ValueOf(prog)
		},
	}
	f := func(prog []treeOp) bool {
		tr := New()
		type entry struct {
			val   byte
			ghost bool
		}
		ref := map[byte]entry{}
		for _, op := range prog {
			k := []byte{op.key}
			switch op.kind {
			case opPut:
				tr.Put(k, []byte{op.val}, false)
				ref[op.key] = entry{val: op.val}
			case opPutGhost:
				tr.Put(k, []byte{op.val}, true)
				ref[op.key] = entry{val: op.val, ghost: true}
			case opDelete:
				_, exists := ref[op.key]
				if tr.Delete(k) != exists {
					return false
				}
				delete(ref, op.key)
			case opToggleGhost:
				e, exists := ref[op.key]
				if tr.SetGhost(k, !e.ghost) != exists {
					return false
				}
				if exists {
					e.ghost = !e.ghost
					ref[op.key] = e
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		// Full equality with the reference, in sorted order.
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		items := tr.Items(nil, nil, true)
		if len(items) != len(keys) {
			return false
		}
		live, ghosts := 0, 0
		for i, k := range keys {
			e := ref[byte(k)]
			if !bytes.Equal(items[i].Key, []byte{byte(k)}) ||
				!bytes.Equal(items[i].Val, []byte{e.val}) ||
				items[i].Ghost != e.ghost {
				return false
			}
			if e.ghost {
				ghosts++
			} else {
				live++
			}
		}
		return tr.Len() == live && tr.GhostCount() == ghosts
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanBounds: for arbitrary bounds, Scan returns exactly the sorted
// keys in [lo, hi), forward and reverse.
func TestQuickScanBounds(t *testing.T) {
	tr := New()
	present := map[byte]bool{}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 200; i++ {
		k := byte(rng.Intn(200))
		tr.Put([]byte{k}, []byte{k}, false)
		present[k] = true
	}
	cfg := &quick.Config{MaxCount: 500}
	f := func(lo, hi byte) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []byte
		for k := range present {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var fwd []byte
		tr.Scan([]byte{lo}, []byte{hi}, false, func(it Item) bool {
			fwd = append(fwd, it.Key[0])
			return true
		})
		if !bytes.Equal(fwd, want) {
			return false
		}
		var rev []byte
		tr.ScanReverse([]byte{lo}, []byte{hi}, false, func(it Item) bool {
			rev = append(rev, it.Key[0])
			return true
		})
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return bytes.Equal(rev, want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
