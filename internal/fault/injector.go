package fault

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"
)

// fault modes a schedule can select.
const (
	modePoint     = iota // crash at the Nth hit of a named point
	modeWriteStop        // the Nth file write fails writing nothing
	modeWriteTear        // the Nth file write persists only a prefix
	modeWriteFlip        // the Nth file write persists with a flipped byte
	modeSyncFail         // the Nth fsync fails
)

// plan is the seeded fault schedule: exactly one fault, fired
// deterministically, plus an optional seeded delay distribution.
type plan struct {
	mode     int
	point    Point // modePoint
	pointHit int   // 1-based hit count of point that crashes
	opIndex  int   // modeWrite*/modeSyncFail: 1-based write/sync op that crashes
	tearFrac float64
	flipBit  int // modeWriteFlip: which bit of which byte (seeded below)

	delayProb float64       // chance a write/fsync is delayed
	delayMax  time.Duration // maximum injected delay
}

// Injector is a deterministic fault-injecting FS and Hooks implementation.
// One Injector simulates one process lifetime: its schedule fires at most one
// terminal fault, after which the injector is crashed and everything fails.
type Injector struct {
	base  FS
	clock Clock

	mu        sync.Mutex
	rng       *rand.Rand
	plan      plan
	writeOps  int
	syncOps   int
	pointHits map[Point]int
	crashed   bool
	cause     string
	delays    int
	open      map[*injFile]struct{}
}

// NewInjector builds an injector whose schedule is derived entirely from
// seed, layered over the real filesystem and wall clock.
func NewInjector(seed int64) *Injector {
	return NewInjectorOn(seed, OS{}, RealClock{})
}

// NewInjectorOn is NewInjector with an explicit base FS and clock.
func NewInjectorOn(seed int64, base FS, clock Clock) *Injector {
	rng := rand.New(rand.NewSource(seed ^ 0x7061706572_5eed)) // decorrelate tiny seeds
	p := plan{}
	switch pick := rng.Intn(10); {
	case pick < 4:
		p.mode = modePoint
		p.point = Points[rng.Intn(len(Points))]
		p.pointHit = 1 + rng.Intn(40)
	case pick < 6:
		p.mode = modeWriteStop
		p.opIndex = 1 + rng.Intn(250)
	case pick < 8:
		p.mode = modeWriteTear
		p.opIndex = 1 + rng.Intn(250)
		p.tearFrac = rng.Float64()
	case pick < 9:
		p.mode = modeWriteFlip
		p.opIndex = 1 + rng.Intn(250)
		p.flipBit = rng.Intn(1 << 30)
	default:
		p.mode = modeSyncFail
		p.opIndex = 1 + rng.Intn(60)
	}
	if rng.Intn(3) == 0 { // a third of schedules also jitter I/O timing
		p.delayProb = 0.02 + 0.08*rng.Float64()
		p.delayMax = time.Duration(1+rng.Intn(200)) * time.Microsecond
	}
	return &Injector{
		base:      base,
		clock:     clock,
		rng:       rng,
		plan:      p,
		pointHits: make(map[Point]int),
		open:      make(map[*injFile]struct{}),
	}
}

// Hit implements Hooks: it fires the scheduled point crash.
func (in *Injector) Hit(p Point) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.pointHits[p]++
	if in.plan.mode == modePoint && p == in.plan.point && in.pointHits[p] == in.plan.pointHit {
		in.crash(fmt.Sprintf("point %s hit %d", p, in.plan.pointHit))
		return ErrCrashed
	}
	return nil
}

// crash flips the terminal state; callers hold in.mu.
func (in *Injector) crash(cause string) {
	in.crashed = true
	in.cause = cause
}

// Crashed reports whether the scheduled fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Cause describes the fault that fired ("" if still alive).
func (in *Injector) Cause() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cause
}

// Delays reports how many injected I/O delays have been applied.
func (in *Injector) Delays() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.delays
}

// Describe renders the schedule for logging.
func (in *Injector) Describe() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plan
	var s string
	switch p.mode {
	case modePoint:
		s = fmt.Sprintf("crash at point %s hit %d", p.point, p.pointHit)
	case modeWriteStop:
		s = fmt.Sprintf("fail write op %d", p.opIndex)
	case modeWriteTear:
		s = fmt.Sprintf("tear write op %d at %.0f%%", p.opIndex, 100*p.tearFrac)
	case modeWriteFlip:
		s = fmt.Sprintf("corrupt write op %d", p.opIndex)
	case modeSyncFail:
		s = fmt.Sprintf("fail fsync op %d", p.opIndex)
	}
	if p.delayProb > 0 {
		s += fmt.Sprintf(" (+%.0f%% delays up to %v)", 100*p.delayProb, p.delayMax)
	}
	return s
}

// CloseAll closes every file still open through the injector: the torture
// runner calls it after abandoning a crashed instance, standing in for the
// file-table teardown of a real process exit.
func (in *Injector) CloseAll() {
	in.mu.Lock()
	files := make([]*injFile, 0, len(in.open))
	for f := range in.open {
		files = append(files, f)
	}
	in.mu.Unlock()
	for _, f := range files {
		f.closeUnderlying()
	}
}

// maybeDelay sleeps per the schedule's jitter distribution; never after a
// crash. Callers must NOT hold in.mu.
func (in *Injector) maybeDelay() {
	in.mu.Lock()
	if in.crashed || in.plan.delayProb == 0 || in.rng.Float64() >= in.plan.delayProb {
		in.mu.Unlock()
		return
	}
	d := time.Duration(in.rng.Int63n(int64(in.plan.delayMax) + 1))
	in.delays++
	in.mu.Unlock()
	in.clock.Sleep(d)
}

// writeFault consumes one write op and decides this write's fate. It returns
// keep >= 0 when the write must crash persisting only p[:keep] (possibly
// corrupted first — the returned flip index is >= 0 then), or keep == -1 for
// a normal write.
func (in *Injector) writeFault(n int) (keep, flip int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, -1, ErrCrashed
	}
	in.writeOps++
	if in.writeOps != in.plan.opIndex {
		return -1, -1, nil
	}
	switch in.plan.mode {
	case modeWriteStop:
		in.crash(fmt.Sprintf("write op %d failed", in.writeOps))
		return 0, -1, ErrCrashed
	case modeWriteTear:
		k := int(in.plan.tearFrac * float64(n))
		if k >= n {
			k = n - 1
		}
		if k < 0 {
			k = 0
		}
		in.crash(fmt.Sprintf("write op %d torn at %d/%d bytes", in.writeOps, k, n))
		return k, -1, ErrCrashed
	case modeWriteFlip:
		if n == 0 {
			in.crash(fmt.Sprintf("write op %d failed", in.writeOps))
			return 0, -1, ErrCrashed
		}
		in.crash(fmt.Sprintf("write op %d corrupted", in.writeOps))
		return n, in.plan.flipBit % (n * 8), ErrCrashed
	}
	return -1, -1, nil
}

// syncFault consumes one fsync op and decides its fate.
func (in *Injector) syncFault() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.syncOps++
	if in.plan.mode == modeSyncFail && in.syncOps == in.plan.opIndex {
		in.crash(fmt.Sprintf("fsync op %d failed", in.syncOps))
		return ErrCrashed
	}
	return nil
}

// mutable guards whole-file mutations (WriteFile, Rename, Remove, Truncate):
// they count as one write op each, and tearing applies to WriteFile only.
func (in *Injector) checkCrashed() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

// --- FS implementation ---

// OpenFile opens name on the base FS, wrapping the handle for injection.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.checkCrashed(); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	inf := &injFile{in: in, f: f, name: name}
	in.mu.Lock()
	in.open[inf] = struct{}{}
	in.mu.Unlock()
	return inf, nil
}

// ReadFile reads through to the base FS (reads never fault: the schedule
// models a dying writer, not bit rot at rest).
func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.checkCrashed(); err != nil {
		return nil, err
	}
	return in.base.ReadFile(name)
}

// WriteFile counts as one write op; a scheduled tear persists a prefix.
func (in *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	in.maybeDelay()
	keep, flip, err := in.writeFault(len(data))
	if err != nil {
		if keep > 0 || flip >= 0 {
			in.base.WriteFile(name, mangle(data, keep, flip), perm) // best-effort torn write
		}
		return err
	}
	return in.base.WriteFile(name, data, perm)
}

// Rename passes through (atomic on the base FS); it fails only post-crash.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.checkCrashed(); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

// Remove passes through; it fails only post-crash.
func (in *Injector) Remove(name string) error {
	if err := in.checkCrashed(); err != nil {
		return err
	}
	return in.base.Remove(name)
}

// Truncate passes through; it fails only post-crash.
func (in *Injector) Truncate(name string, size int64) error {
	if err := in.checkCrashed(); err != nil {
		return err
	}
	return in.base.Truncate(name, size)
}

// Stat passes through; it fails only post-crash.
func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if err := in.checkCrashed(); err != nil {
		return nil, err
	}
	return in.base.Stat(name)
}

// MkdirAll passes through; it fails only post-crash.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.checkCrashed(); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

// ReadDir passes through; it fails only post-crash.
func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err := in.checkCrashed(); err != nil {
		return nil, err
	}
	return in.base.ReadDir(name)
}

// mangle returns data[:keep] with bit flip flipped (flip < 0 skips the flip).
func mangle(data []byte, keep, flip int) []byte {
	out := append([]byte(nil), data[:keep]...)
	if flip >= 0 && flip/8 < len(out) {
		out[flip/8] ^= 1 << (flip % 8)
	}
	return out
}

// injFile is one fault-wrapped file handle.
type injFile struct {
	in   *Injector
	f    File
	name string

	closeOnce sync.Once
	closeErr  error
}

// Read passes through; it fails only post-crash.
func (f *injFile) Read(p []byte) (int, error) {
	if err := f.in.checkCrashed(); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

// Write applies the schedule: a scheduled stop/tear/corruption persists the
// mangled prefix, crashes the injector, and errors.
func (f *injFile) Write(p []byte) (int, error) {
	f.in.maybeDelay()
	keep, flip, err := f.in.writeFault(len(p))
	if err != nil {
		if keep > 0 || flip >= 0 {
			f.f.Write(mangle(p, keep, flip)) // best-effort torn write
		}
		return 0, err
	}
	return f.f.Write(p)
}

// Sync applies the schedule's fsync fault.
func (f *injFile) Sync() error {
	f.in.maybeDelay()
	if err := f.in.syncFault(); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close closes the underlying file (even post-crash: the dying process's file
// table is torn down either way) and drops it from the open set.
func (f *injFile) Close() error {
	return f.closeUnderlying()
}

func (f *injFile) closeUnderlying() error {
	f.closeOnce.Do(func() {
		f.closeErr = f.f.Close()
		f.in.mu.Lock()
		delete(f.in.open, f)
		f.in.mu.Unlock()
	})
	return f.closeErr
}
