package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// stubClock records requested sleeps without sleeping.
type stubClock struct{ slept []time.Duration }

func (c *stubClock) Sleep(d time.Duration) { c.slept = append(c.slept, d) }

// TestScheduleDeterminism: the same seed must yield the same schedule and
// fire at the same operation, independent of wall-clock or filesystem state.
func TestScheduleDeterminism(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := NewInjectorOn(seed, OS{}, &stubClock{})
		b := NewInjectorOn(seed, OS{}, &stubClock{})
		if a.Describe() != b.Describe() {
			t.Fatalf("seed %d: schedules differ: %q vs %q", seed, a.Describe(), b.Describe())
		}
	}
	// Distinct seeds should not all share one schedule.
	seen := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		seen[NewInjectorOn(seed, OS{}, &stubClock{}).Describe()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct schedules across 50 seeds", len(seen))
	}
}

// findSeed returns a seed whose schedule description contains want.
func findSeed(t *testing.T, want string) int64 {
	t.Helper()
	for seed := int64(0); seed < 10_000; seed++ {
		in := NewInjectorOn(seed, OS{}, &stubClock{})
		if s := in.Describe(); len(s) >= len(want) && contains(s, want) {
			return seed
		}
	}
	t.Fatalf("no seed with schedule %q in range", want)
	return 0
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPointCrash: the scheduled hit of the scheduled point crashes; every
// later operation fails with ErrCrashed.
func TestPointCrash(t *testing.T) {
	seed := findSeed(t, "crash at point")
	in := NewInjectorOn(seed, OS{}, &stubClock{})
	crashedAt := -1
	for i := 0; i < 10_000 && crashedAt < 0; i++ {
		for _, p := range Points {
			if err := in.Hit(p); err != nil {
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("unexpected error %v", err)
				}
				crashedAt = i
				break
			}
		}
	}
	if crashedAt < 0 {
		t.Fatal("point crash never fired")
	}
	if !in.Crashed() || in.Cause() == "" {
		t.Fatalf("crashed=%v cause=%q", in.Crashed(), in.Cause())
	}
	if err := in.WriteFile(filepath.Join(t.TempDir(), "x"), []byte("y"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash WriteFile: %v", err)
	}
	if _, err := in.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash OpenFile: %v", err)
	}
}

// TestTornWrite: a tear schedule persists exactly the torn prefix and then
// fails everything.
func TestTornWrite(t *testing.T) {
	seed := findSeed(t, "tear write op")
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	in := NewInjectorOn(seed, OS{}, &stubClock{})
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	wrote := 0
	var failedAt int = -1
	for i := 0; i < 5_000; i++ {
		if _, err := f.Write(chunk); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("want ErrCrashed, got %v", err)
			}
			failedAt = i
			break
		}
		wrote += len(chunk)
	}
	if failedAt < 0 {
		t.Fatal("tear never fired")
	}
	in.CloseAll()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < wrote || len(data) >= wrote+len(chunk) {
		t.Fatalf("file has %d bytes; torn write should leave [%d,%d)", len(data), wrote, wrote+len(chunk))
	}
	// Everything before the torn tail must be intact.
	for i := 0; i < wrote; i++ {
		if data[i] != byte(i%64) {
			t.Fatalf("byte %d corrupted: %d", i, data[i])
		}
	}
	if _, err := f.Write(chunk); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
}

// TestSyncFault: the scheduled fsync fails and crashes the injector.
func TestSyncFault(t *testing.T) {
	seed := findSeed(t, "fail fsync op")
	path := filepath.Join(t.TempDir(), "log")
	in := NewInjectorOn(seed, OS{}, &stubClock{})
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for i := 0; i < 1_000; i++ {
		if err := f.Sync(); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("want ErrCrashed, got %v", err)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("fsync fault never fired")
	}
	in.CloseAll()
}

// TestDelayInjection: schedules with jitter route their sleeps through the
// injected clock.
func TestDelayInjection(t *testing.T) {
	var seed int64 = -1
	for s := int64(0); s < 10_000; s++ {
		if contains(NewInjectorOn(s, OS{}, &stubClock{}).Describe(), "delays up to") {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no jittering schedule found")
	}
	clock := &stubClock{}
	in := NewInjectorOn(seed, OS{}, clock)
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2_000; i++ {
		f.Write([]byte("x")) // faults fine; delays are what we count
	}
	in.CloseAll()
	if in.Delays() == 0 || len(clock.slept) != in.Delays() {
		t.Fatalf("delays=%d, clock saw %d", in.Delays(), len(clock.slept))
	}
}

// TestCorruptWrite: a flip schedule persists the full chunk with one bit
// changed.
func TestCorruptWrite(t *testing.T) {
	seed := findSeed(t, "corrupt write op")
	path := filepath.Join(t.TempDir(), "log")
	in := NewInjectorOn(seed, OS{}, &stubClock{})
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 32) // all zero
	wrote := 0
	for i := 0; i < 5_000; i++ {
		if _, err := f.Write(chunk); err != nil {
			break
		}
		wrote += len(chunk)
	}
	if !in.Crashed() {
		t.Fatal("flip never fired")
	}
	in.CloseAll()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != wrote+len(chunk) {
		t.Fatalf("corrupt write should persist the full chunk: %d vs %d", len(data), wrote+len(chunk))
	}
	diff := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 flipped bit, found %d", diff)
	}
}

// TestOSRoundTrip sanity-checks the real-filesystem implementation.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "f")
	if err := fsys.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Truncate(p, 4); err != nil {
		t.Fatal(err)
	}
	b, err := fsys.ReadFile(p)
	if err != nil || string(b) != "hell" {
		t.Fatalf("read %q, %v", b, err)
	}
	q := filepath.Join(sub, "g")
	if err := fsys.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(q); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir: %v, %d entries", err, len(ents))
	}
	f, err := fsys.OpenFile(q, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "hell" {
		t.Fatalf("file read %q", buf[:n])
	}
	f.Close()
	if err := fsys.Remove(q); err != nil {
		t.Fatal(err)
	}
}
