// Package fault is the deterministic fault-injection layer under the
// engine's durable I/O (DESIGN.md §6). The WAL, snapshot, and manifest code
// perform every file operation through an injectable FS; production code
// passes OS{} (the real filesystem) while the crash-torture harness passes an
// Injector whose seeded schedule can fail or delay writes and fsyncs, tear
// the last write at a byte offset, corrupt written bytes, and trigger
// process-abandon "crashes" at named points inside the engine (wal append,
// commit fold, checkpoint, ghost erase, system-transaction commit).
//
// The model is fail-stop: once a scheduled fault fires, the injector enters a
// permanently crashed state in which every subsequent file mutation and every
// point hook fails with ErrCrashed — exactly what a process that died at that
// instant would have written. The torture runner then abandons the instance,
// reopens the directory with the real filesystem, runs recovery, and checks
// the engine's invariants.
package fault

import (
	"errors"
	"io"
	"os"
	"time"
)

// ErrCrashed is returned by every operation after the injector's scheduled
// fault has fired: the simulated process is dead.
var ErrCrashed = errors.New("fault: injected crash")

// Point names an engine location where a scheduled crash can fire. The
// engine calls Hooks.Hit at each; a non-nil error must abort the operation.
type Point string

// The named crash points armed by the torture schedule.
const (
	// PointWALAppend fires in the kernel's logOp chokepoint, before an
	// operation record reaches the WAL buffer.
	PointWALAppend Point = "wal-append"
	// PointFold fires at commit, before one escrow fold record is logged.
	PointFold Point = "fold"
	// PointCheckpoint fires after checkpoint quiesces, before the snapshot
	// is written.
	PointCheckpoint Point = "checkpoint"
	// PointGhostErase fires inside the ghost cleaner's system transaction,
	// before the erase record is logged.
	PointGhostErase Point = "ghost-erase"
	// PointSysCommit fires before a system transaction's commit record is
	// appended.
	PointSysCommit Point = "sys-commit"
	// PointDeferredApply fires in the deferred applier before each component
	// fold. It is NOT part of Points (the torture schedule never crashes
	// here); its use is delay injection — a Hooks that sleeps at this point
	// slows the applier to exercise the freshness-SLO watchdog.
	PointDeferredApply Point = "deferred-apply"
	// PointViewCorrupt fires in DB.CorruptViewRow, the deliberate in-place
	// view corruption behind the scrubber's detection smoke. NOT part of
	// Points — it exists so an injector can observe (or veto) the corruption,
	// never as a crash site.
	PointViewCorrupt Point = "view-corrupt"
)

// Points lists every named crash point (the torture schedule picks from
// these; PointDeferredApply is deliberately excluded).
var Points = []Point{PointWALAppend, PointFold, PointCheckpoint, PointGhostErase, PointSysCommit}

// Hooks receives crash-point notifications. A nil Hooks in core.Options
// disables the points entirely.
type Hooks interface {
	// Hit reports reaching p. A non-nil error (ErrCrashed) aborts the
	// surrounding operation; the engine must propagate it.
	Hit(p Point) error
}

// File is the subset of *os.File the engine's durable paths use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync is fsync: it must not return until the file's contents are
	// durable (or the fault schedule says the fsync failed).
	Sync() error
}

// FS is the filesystem surface under the WAL, snapshot, and manifest code.
// Implementations must be safe for concurrent use.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
}

// Clock abstracts time for the injector's delay faults, so tests can run
// seeded schedules without real sleeps.
type Clock interface {
	Sleep(d time.Duration)
}

// RealClock sleeps on the wall clock.
type RealClock struct{}

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// OS is the real filesystem.
type OS struct{}

// OpenFile opens name with os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile reads the whole file.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile writes data to name.
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Rename renames oldpath to newpath.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes name.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate truncates name to size.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Stat stats name.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// MkdirAll makes path and parents.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir lists name.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
