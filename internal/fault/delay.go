package fault

import (
	"os"
	"sync/atomic"
	"time"
)

// DelayFS wraps another FS and injects a controllable, always-on delay into
// every file Write and Sync — a slow or hung disk, as opposed to the
// Injector's seeded one-shot faults. The delay can be changed at any time
// with SetDelay, so a test can set up fast and then make the disk crawl:
// the watchdog's WAL-flush stall signature is exercised exactly this way.
type DelayFS struct {
	// Base is the wrapped filesystem (OS{} when nil).
	Base FS
	// Clock sleeps the delay (RealClock when nil).
	Clock Clock

	delayNs atomic.Int64
}

// NewDelayFS returns a DelayFS over base with no delay armed.
func NewDelayFS(base FS) *DelayFS { return &DelayFS{Base: base} }

// SetDelay arms (or, with 0, disarms) the per-operation delay.
func (d *DelayFS) SetDelay(dur time.Duration) { d.delayNs.Store(int64(dur)) }

func (d *DelayFS) base() FS {
	if d.Base == nil {
		return OS{}
	}
	return d.Base
}

func (d *DelayFS) sleep() {
	ns := d.delayNs.Load()
	if ns <= 0 {
		return
	}
	c := d.Clock
	if c == nil {
		c = RealClock{}
	}
	c.Sleep(time.Duration(ns))
}

// OpenFile opens name on the base FS, wrapping the file so its writes and
// syncs pay the armed delay.
func (d *DelayFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := d.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &delayFile{File: f, fs: d}, nil
}

// ReadFile reads the whole file (no delay: reads are not the stall under
// study).
func (d *DelayFS) ReadFile(name string) ([]byte, error) { return d.base().ReadFile(name) }

// WriteFile writes data to name after the armed delay.
func (d *DelayFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	d.sleep()
	return d.base().WriteFile(name, data, perm)
}

// Rename renames oldpath to newpath.
func (d *DelayFS) Rename(oldpath, newpath string) error { return d.base().Rename(oldpath, newpath) }

// Remove removes name.
func (d *DelayFS) Remove(name string) error { return d.base().Remove(name) }

// Truncate truncates name to size.
func (d *DelayFS) Truncate(name string, size int64) error { return d.base().Truncate(name, size) }

// Stat stats name.
func (d *DelayFS) Stat(name string) (os.FileInfo, error) { return d.base().Stat(name) }

// MkdirAll makes path and parents.
func (d *DelayFS) MkdirAll(path string, perm os.FileMode) error {
	return d.base().MkdirAll(path, perm)
}

// ReadDir lists name.
func (d *DelayFS) ReadDir(name string) ([]os.DirEntry, error) { return d.base().ReadDir(name) }

// delayFile pays the armed delay on Write and Sync.
type delayFile struct {
	File
	fs *DelayFS
}

func (f *delayFile) Write(p []byte) (int, error) {
	f.fs.sleep()
	return f.File.Write(p)
}

func (f *delayFile) Sync() error {
	f.fs.sleep()
	return f.File.Sync()
}
