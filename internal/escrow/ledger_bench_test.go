package escrow

import (
	"sync/atomic"
	"testing"

	"repro/internal/id"
)

// BenchmarkLedgerAddDiscardParallel models the escrow hot path under commit
// fire: each goroutine accumulates deltas against its own view row and
// discards them, so a striped ledger has no cross-goroutine contention.
func BenchmarkLedgerAddDiscardParallel(b *testing.B) {
	l := NewLedger()
	var nextG atomic.Uint64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		g := nextG.Add(1)
		row := RowID{Tree: 1, Key: string(rune('a' + g))}
		txn := g * 1_000_000_000
		for pb.Next() {
			txn++
			l.Add(id.Txn(txn), CellID{Row: row, Col: 0}, Delta{Int: 1})
			l.Add(id.Txn(txn), CellID{Row: row, Col: 1}, Delta{Int: 10})
			l.TxnDeltas(id.Txn(txn))
			l.Discard(id.Txn(txn))
		}
	})
}

// BenchmarkLedgerHotRow has every goroutine target the same row — the
// paper's hot-aggregate scenario; txn state stays private but the row
// reference count is shared.
func BenchmarkLedgerHotRow(b *testing.B) {
	l := NewLedger()
	row := RowID{Tree: 1, Key: "hot"}
	var next atomic.Uint64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			txn := id.Txn(next.Add(1))
			l.Add(txn, CellID{Row: row, Col: 0}, Delta{Int: 1})
			l.TxnDeltas(txn)
			l.Discard(txn)
		}
	})
}
