package escrow

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/id"
)

func cell(key string, col uint32) CellID {
	return CellID{Row: RowID{Tree: 1, Key: key}, Col: col}
}

func TestDeltaArithmetic(t *testing.T) {
	d := Delta{Int: 3, Float: 1.5}
	if d.IsZero() || !(Delta{}).IsZero() {
		t.Fatal("IsZero wrong")
	}
	s := d.Add(Delta{Int: -1, Float: 0.5})
	if s.Int != 2 || s.Float != 2.0 {
		t.Fatalf("Add = %+v", s)
	}
	n := d.Neg()
	if n.Int != -3 || n.Float != -1.5 {
		t.Fatalf("Neg = %+v", n)
	}
	if !d.Add(d.Neg()).IsZero() {
		t.Fatal("d + (-d) != 0")
	}
}

func TestAddAccumulatesPerCell(t *testing.T) {
	l := NewLedger()
	l.Add(1, cell("g1", 0), Delta{Int: 5})
	l.Add(1, cell("g1", 0), Delta{Int: -2})
	l.Add(1, cell("g1", 1), Delta{Float: 1.5})
	l.Add(1, cell("g2", 0), Delta{Int: 7})
	ds := l.TxnDeltas(1)
	if len(ds) != 3 {
		t.Fatalf("got %d cells", len(ds))
	}
	// Deterministic order: g1/0, g1/1, g2/0.
	if ds[0].Cell != cell("g1", 0) || ds[0].Delta.Int != 3 {
		t.Fatalf("ds[0] = %+v", ds[0])
	}
	if ds[1].Cell != cell("g1", 1) || ds[1].Delta.Float != 1.5 {
		t.Fatalf("ds[1] = %+v", ds[1])
	}
	if ds[2].Cell != cell("g2", 0) || ds[2].Delta.Int != 7 {
		t.Fatalf("ds[2] = %+v", ds[2])
	}
}

func TestZeroDeltaIgnored(t *testing.T) {
	l := NewLedger()
	l.Add(1, cell("g", 0), Delta{})
	if ds := l.TxnDeltas(1); len(ds) != 0 {
		t.Fatalf("zero delta stored: %+v", ds)
	}
	if !l.Empty() {
		t.Fatal("ledger not empty")
	}
}

func TestRowRefCounting(t *testing.T) {
	l := NewLedger()
	row := RowID{Tree: 1, Key: "hot"}
	if l.PendingTxns(row) != 0 {
		t.Fatal("fresh row has pending txns")
	}
	l.Add(1, CellID{Row: row, Col: 0}, Delta{Int: 1})
	l.Add(1, CellID{Row: row, Col: 1}, Delta{Int: 1}) // same txn, same row
	l.Add(2, CellID{Row: row, Col: 0}, Delta{Int: 1})
	if got := l.PendingTxns(row); got != 2 {
		t.Fatalf("PendingTxns = %d, want 2", got)
	}
	l.Discard(1)
	if got := l.PendingTxns(row); got != 1 {
		t.Fatalf("after discard: PendingTxns = %d, want 1", got)
	}
	l.Discard(2)
	if l.PendingTxns(row) != 0 || !l.Empty() {
		t.Fatal("ledger not empty after discards")
	}
}

func TestDiscardUnknownTxn(t *testing.T) {
	l := NewLedger()
	l.Discard(42) // must not panic
	if ds := l.TxnDeltas(42); ds != nil {
		t.Fatal("unknown txn has deltas")
	}
}

// TestFoldDiscardEquivalence is the package's core property: folding the
// committed transactions' deltas and discarding the aborted ones yields
// exactly the serial sum of committed deltas.
func TestFoldDiscardEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		l := NewLedger()
		const txns = 20
		const cells = 5
		expect := map[CellID]Delta{}
		committed := map[id.Txn]bool{}
		for tx := id.Txn(1); tx <= txns; tx++ {
			committed[tx] = rng.Intn(2) == 0
			for op := 0; op < 1+rng.Intn(8); op++ {
				c := cell("g", uint32(rng.Intn(cells)))
				d := Delta{Int: int64(rng.Intn(21) - 10), Float: float64(rng.Intn(9) - 4)}
				l.Add(tx, c, d)
				if committed[tx] {
					expect[c] = expect[c].Add(d)
				}
			}
		}
		got := map[CellID]Delta{}
		for tx := id.Txn(1); tx <= txns; tx++ {
			if committed[tx] {
				for _, cd := range l.TxnDeltas(tx) {
					got[cd.Cell] = got[cd.Cell].Add(cd.Delta)
				}
			}
			l.Discard(tx)
		}
		for c, want := range expect {
			if got[c] != want {
				t.Fatalf("trial %d cell %+v: got %+v want %+v", trial, c, got[c], want)
			}
		}
		for c, g := range got {
			if expect[c] != g {
				t.Fatalf("trial %d cell %+v: unexpected %+v", trial, c, g)
			}
		}
		if !l.Empty() {
			t.Fatalf("trial %d: ledger not empty", trial)
		}
	}
}

func TestMarkAndRollbackTo(t *testing.T) {
	l := NewLedger()
	c1, c2 := cell("g1", 0), cell("g2", 0)
	l.Add(1, c1, Delta{Int: 5})
	mark := l.Mark(1)
	l.Add(1, c1, Delta{Int: 3})
	l.Add(1, c2, Delta{Int: 7})
	l.RollbackTo(1, mark)
	ds := l.TxnDeltas(1)
	if len(ds) != 1 || ds[0].Cell != c1 || ds[0].Delta.Int != 5 {
		t.Fatalf("after rollback: %+v", ds)
	}
	// The row touched only after the mark released its reference.
	if l.PendingTxns(c2.Row) != 0 {
		t.Fatal("row ref leaked after savepoint rollback")
	}
	if l.PendingTxns(c1.Row) != 1 {
		t.Fatal("pre-mark row ref lost")
	}
	l.Discard(1)
	if !l.Empty() {
		t.Fatal("not empty")
	}
}

func TestRollbackToFullDiscard(t *testing.T) {
	l := NewLedger()
	mark := l.Mark(1) // before anything
	l.Add(1, cell("g", 0), Delta{Int: 1})
	l.Add(1, cell("g", 1), Delta{Float: 2.5})
	l.RollbackTo(1, mark)
	if !l.Empty() {
		t.Fatal("rollback to the start should empty the ledger")
	}
	// Out-of-range marks are ignored.
	l.Add(1, cell("g", 0), Delta{Int: 1})
	l.RollbackTo(1, 99)
	l.RollbackTo(1, -1)
	if len(l.TxnDeltas(1)) != 1 {
		t.Fatal("bad marks must be no-ops")
	}
	l.RollbackTo(2, 0) // unknown txn: no-op
	l.Discard(1)
}

func TestRollbackToZeroCrossing(t *testing.T) {
	// A cell whose post-mark deltas cancel a pre-mark delta must come back.
	l := NewLedger()
	c := cell("g", 0)
	l.Add(1, c, Delta{Int: 5})
	mark := l.Mark(1)
	l.Add(1, c, Delta{Int: -5}) // current total now zero
	l.RollbackTo(1, mark)
	ds := l.TxnDeltas(1)
	if len(ds) != 1 || ds[0].Delta.Int != 5 {
		t.Fatalf("after rollback: %+v", ds)
	}
	l.Discard(1)
}

func TestConcurrentAdds(t *testing.T) {
	l := NewLedger()
	const goroutines = 16
	const adds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := id.Txn(g + 1)
			for i := 0; i < adds; i++ {
				l.Add(tx, cell("hot", 0), Delta{Int: 1})
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for g := 0; g < goroutines; g++ {
		ds := l.TxnDeltas(id.Txn(g + 1))
		if len(ds) != 1 {
			t.Fatalf("txn %d has %d cells", g+1, len(ds))
		}
		total += ds[0].Delta.Int
	}
	if total != goroutines*adds {
		t.Fatalf("total = %d, want %d", total, goroutines*adds)
	}
}

func BenchmarkAdd(b *testing.B) {
	l := NewLedger()
	c := cell("hot", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Add(id.Txn(i%64+1), c, Delta{Int: 1})
	}
}
