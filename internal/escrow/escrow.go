// Package escrow implements the escrow ledger: per-transaction pending
// signed deltas against aggregate view rows.
//
// Following DESIGN.md §5, the B-tree row always stores the last *committed*
// aggregate values. A transaction updating an aggregate under an E lock
// records its deltas here; at commit the engine folds them into the row
// (logging one EscrowFold record per row) and at abort they are simply
// discarded — the logical undo of the paper realized without ever exposing
// uncommitted values to readers.
//
// The ledger is striped the same way as the lock manager (ISSUE 1): a
// transaction's private delta state lives in a txn stripe selected by its
// ID, and the cross-transaction row reference counts live in row stripes
// selected by hashing the RowID. Independent transactions touching
// independent rows share no mutex. Stripe lock order is always txn stripe →
// row stripe; PendingTxns takes only a row stripe.
package escrow

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/id"
	"repro/internal/metrics"
)

// RowID names one aggregate view row.
type RowID struct {
	Tree id.Tree
	Key  string
}

// CellID names one aggregate column of one view row.
type CellID struct {
	Row RowID
	Col uint32
}

// Delta is a signed change to a cell. Int and Float accumulate
// independently; an int-typed aggregate uses Int, a float-typed one Float.
type Delta struct {
	Int   int64
	Float float64
}

// IsZero reports whether the delta changes nothing.
func (d Delta) IsZero() bool { return d.Int == 0 && d.Float == 0 }

// Add returns the sum of two deltas.
func (d Delta) Add(o Delta) Delta {
	return Delta{Int: d.Int + o.Int, Float: d.Float + o.Float}
}

// Neg returns the inverse delta.
func (d Delta) Neg() Delta { return Delta{Int: -d.Int, Float: -d.Float} }

// txnState is one transaction's pending deltas.
type txnState struct {
	cells   map[CellID]Delta
	rows    map[RowID]int // cells per row, for the row reference counts
	journal []CellDelta   // append order, for savepoint rollback
}

// txnShard holds the private delta state of the transactions striped to it,
// plus a free list recycling emptied txnStates so the add/fold/discard hot
// cycle stays allocation-free.
type txnShard struct {
	mu    sync.Mutex
	byTxn map[id.Txn]*txnState
	free  []*txnState
}

// rowShard holds the row reference counts for the rows striped to it.
type rowShard struct {
	mu     sync.Mutex
	rowRef map[RowID]int // number of transactions with pending deltas per row
}

// Ledger tracks every transaction's pending escrow deltas. The zero value is
// not usable; call NewLedger.
type Ledger struct {
	txns []*txnShard
	rows []*rowShard
	mask uint32

	// Metrics, when set, receives the per-row concurrent-holder high-water
	// mark (the paper's hot-aggregate contention signal). Nil-safe.
	Metrics *metrics.EscrowMetrics

	// Hot, when set, receives heavy-hitter attribution per view row: one
	// value unit per delta update, one count unit per transaction newly
	// piling onto the row. Nil-safe.
	Hot *metrics.Sketch
}

// NewLedger returns an empty ledger with a default stripe count.
func NewLedger() *Ledger { return NewLedgerShards(0) }

// NewLedgerShards returns an empty ledger with n stripes (rounded up to a
// power of two; n <= 0 selects the default).
func NewLedgerShards(n int) *Ledger {
	if n <= 0 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	l := &Ledger{
		txns: make([]*txnShard, p),
		rows: make([]*rowShard, p),
		mask: uint32(p - 1),
	}
	for i := 0; i < p; i++ {
		l.txns[i] = &txnShard{byTxn: make(map[id.Txn]*txnState)}
		l.rows[i] = &rowShard{rowRef: make(map[RowID]int)}
	}
	return l
}

// Shards reports the stripe count, for Describe output.
func (l *Ledger) Shards() int { return len(l.txns) }

// txnShardOf stripes by transaction ID. IDs are assigned sequentially, so
// the low bits alone spread concurrent transactions across stripes.
func (l *Ledger) txnShardOf(txn id.Txn) *txnShard {
	return l.txns[uint32(txn)&l.mask]
}

// rowShardOf stripes by RowID (FNV-1a over tree id and key bytes).
func (l *Ledger) rowShardOf(row RowID) *rowShard {
	h := uint32(2166136261)
	t := uint32(row.Tree)
	h = (h ^ (t & 0xff)) * 16777619
	h = (h ^ ((t >> 8) & 0xff)) * 16777619
	h = (h ^ ((t >> 16) & 0xff)) * 16777619
	h = (h ^ (t >> 24)) * 16777619
	for i := 0; i < len(row.Key); i++ {
		h = (h ^ uint32(row.Key[i])) * 16777619
	}
	return l.rows[h&l.mask]
}

// refRow adjusts row's cross-transaction reference count by delta.
func (l *Ledger) refRow(row RowID, delta int) {
	rs := l.rowShardOf(row)
	rs.mu.Lock()
	prev := rs.rowRef[row]
	next := prev + delta
	if next <= 0 {
		delete(rs.rowRef, row)
	} else {
		rs.rowRef[row] = next
	}
	rs.mu.Unlock()
	// Maintain the pending-rows gauge (rows carrying unfolded deltas) on the
	// 0↔positive transitions — the watchdog's escrow-backlog signal.
	if prev <= 0 && next > 0 {
		l.Metrics.AdjustPendingRows(1)
	} else if prev > 0 && next <= 0 {
		l.Metrics.AdjustPendingRows(-1)
	}
	if delta > 0 {
		l.Metrics.ObservePending(next)
	}
}

// Add accumulates a pending delta for txn against cell.
func (l *Ledger) Add(txn id.Txn, cell CellID, d Delta) {
	if d.IsZero() {
		return
	}
	ts := l.txnShardOf(txn)
	ts.mu.Lock()
	st := ts.byTxn[txn]
	if st == nil {
		st = ts.newTxnState()
		ts.byTxn[txn] = st
	}
	newRow := false
	if _, seen := st.cells[cell]; !seen {
		if st.rows[cell.Row] == 0 {
			newRow = true
		}
		st.rows[cell.Row]++
	}
	st.cells[cell] = st.cells[cell].Add(d)
	st.journal = append(st.journal, CellDelta{Cell: cell, Delta: d})
	if newRow {
		l.refRow(cell.Row, 1) // txn stripe → row stripe, never the reverse
	}
	ts.mu.Unlock()
	// Attribute outside the stripe mutex: the sketch's own hot path is
	// lock-free, so this never extends the critical section.
	if l.Hot != nil {
		cnt := int64(0)
		if newRow {
			cnt = 1
		}
		l.Hot.Add(metrics.HotKey{Tree: cell.Row.Tree, Key: cell.Row.Key}, 1, cnt)
	}
}

// Mark returns a savepoint position in txn's delta journal.
func (l *Ledger) Mark(txn id.Txn) int {
	ts := l.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st := ts.byTxn[txn]
	if st == nil {
		return 0
	}
	return len(st.journal)
}

// RollbackTo discards the deltas txn accumulated after mark (partial
// rollback to a savepoint). Cells whose pending delta returns to zero are
// forgotten entirely, releasing their row references.
func (l *Ledger) RollbackTo(txn id.Txn, mark int) {
	ts := l.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st := ts.byTxn[txn]
	if st == nil || mark < 0 || mark >= len(st.journal) {
		return
	}
	for i := len(st.journal) - 1; i >= mark; i-- {
		cd := st.journal[i]
		next := st.cells[cd.Cell].Add(cd.Delta.Neg())
		if next.IsZero() {
			delete(st.cells, cd.Cell)
			st.rows[cd.Cell.Row]--
			if st.rows[cd.Cell.Row] <= 0 {
				delete(st.rows, cd.Cell.Row)
				l.refRow(cd.Cell.Row, -1)
			}
		} else {
			st.cells[cd.Cell] = next
		}
	}
	st.journal = st.journal[:mark]
	if len(st.cells) == 0 {
		delete(ts.byTxn, txn)
		ts.freeTxnState(st)
	}
}

// CellDelta is one (cell, delta) pair returned by TxnDeltas.
type CellDelta struct {
	Cell  CellID
	Delta Delta
}

// TxnDeltas returns txn's pending deltas grouped by row, deterministically
// ordered (by tree, key, column) so commit logging is reproducible.
func (l *Ledger) TxnDeltas(txn id.Txn) []CellDelta {
	ts := l.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st := ts.byTxn[txn]
	if st == nil {
		return nil
	}
	out := make([]CellDelta, 0, len(st.cells))
	for cell, d := range st.cells {
		out = append(out, CellDelta{Cell: cell, Delta: d})
	}
	slices.SortFunc(out, func(a, b CellDelta) int {
		if a.Cell.Row.Tree != b.Cell.Row.Tree {
			return cmp.Compare(a.Cell.Row.Tree, b.Cell.Row.Tree)
		}
		if a.Cell.Row.Key != b.Cell.Row.Key {
			return cmp.Compare(a.Cell.Row.Key, b.Cell.Row.Key)
		}
		return cmp.Compare(a.Cell.Col, b.Cell.Col)
	})
	return out
}

// PendingTxns reports how many transactions currently have pending deltas
// against row. The ghost cleaner must not erase a row while this is nonzero.
func (l *Ledger) PendingTxns(row RowID) int {
	rs := l.rowShardOf(row)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.rowRef[row]
}

// Discard drops every pending delta of txn (commit after fold, or abort).
func (l *Ledger) Discard(txn id.Txn) {
	ts := l.txnShardOf(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st := ts.byTxn[txn]
	if st == nil {
		return
	}
	for row := range st.rows {
		l.refRow(row, -1)
	}
	delete(ts.byTxn, txn)
	ts.freeTxnState(st)
}

// Empty reports whether the ledger holds no pending deltas at all; the
// consistency checker asserts this at quiescence.
func (l *Ledger) Empty() bool {
	for _, ts := range l.txns {
		ts.mu.Lock()
		n := len(ts.byTxn)
		ts.mu.Unlock()
		if n != 0 {
			return false
		}
	}
	for _, rs := range l.rows {
		rs.mu.Lock()
		n := len(rs.rowRef)
		rs.mu.Unlock()
		if n != 0 {
			return false
		}
	}
	return true
}

// txnState free list. Callers hold ts.mu.

const maxFreeStates = 64

func (ts *txnShard) newTxnState() *txnState {
	if n := len(ts.free); n > 0 {
		st := ts.free[n-1]
		ts.free = ts.free[:n-1]
		return st
	}
	return &txnState{cells: make(map[CellID]Delta, 4), rows: make(map[RowID]int, 2)}
}

func (ts *txnShard) freeTxnState(st *txnState) {
	if len(ts.free) >= maxFreeStates {
		return
	}
	clear(st.cells)
	clear(st.rows)
	st.journal = st.journal[:0]
	ts.free = append(ts.free, st)
}
