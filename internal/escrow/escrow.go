// Package escrow implements the escrow ledger: per-transaction pending
// signed deltas against aggregate view rows.
//
// Following DESIGN.md §5, the B-tree row always stores the last *committed*
// aggregate values. A transaction updating an aggregate under an E lock
// records its deltas here; at commit the engine folds them into the row
// (logging one EscrowFold record per row) and at abort they are simply
// discarded — the logical undo of the paper realized without ever exposing
// uncommitted values to readers.
package escrow

import (
	"sort"
	"sync"

	"repro/internal/id"
)

// RowID names one aggregate view row.
type RowID struct {
	Tree id.Tree
	Key  string
}

// CellID names one aggregate column of one view row.
type CellID struct {
	Row RowID
	Col uint32
}

// Delta is a signed change to a cell. Int and Float accumulate
// independently; an int-typed aggregate uses Int, a float-typed one Float.
type Delta struct {
	Int   int64
	Float float64
}

// IsZero reports whether the delta changes nothing.
func (d Delta) IsZero() bool { return d.Int == 0 && d.Float == 0 }

// Add returns the sum of two deltas.
func (d Delta) Add(o Delta) Delta {
	return Delta{Int: d.Int + o.Int, Float: d.Float + o.Float}
}

// Neg returns the inverse delta.
func (d Delta) Neg() Delta { return Delta{Int: -d.Int, Float: -d.Float} }

// txnState is one transaction's pending deltas.
type txnState struct {
	cells   map[CellID]Delta
	rows    map[RowID]int // cells per row, for the row reference counts
	journal []CellDelta   // append order, for savepoint rollback
}

// Ledger tracks every transaction's pending escrow deltas. The zero value is
// not usable; call NewLedger.
type Ledger struct {
	mu     sync.Mutex
	byTxn  map[id.Txn]*txnState
	rowRef map[RowID]int // number of transactions with pending deltas per row
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		byTxn:  make(map[id.Txn]*txnState),
		rowRef: make(map[RowID]int),
	}
}

// Add accumulates a pending delta for txn against cell.
func (l *Ledger) Add(txn id.Txn, cell CellID, d Delta) {
	if d.IsZero() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.byTxn[txn]
	if st == nil {
		st = &txnState{cells: make(map[CellID]Delta), rows: make(map[RowID]int)}
		l.byTxn[txn] = st
	}
	if _, seen := st.cells[cell]; !seen {
		if st.rows[cell.Row] == 0 {
			l.rowRef[cell.Row]++
		}
		st.rows[cell.Row]++
	}
	st.cells[cell] = st.cells[cell].Add(d)
	st.journal = append(st.journal, CellDelta{Cell: cell, Delta: d})
}

// Mark returns a savepoint position in txn's delta journal.
func (l *Ledger) Mark(txn id.Txn) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.byTxn[txn]
	if st == nil {
		return 0
	}
	return len(st.journal)
}

// RollbackTo discards the deltas txn accumulated after mark (partial
// rollback to a savepoint). Cells whose pending delta returns to zero are
// forgotten entirely, releasing their row references.
func (l *Ledger) RollbackTo(txn id.Txn, mark int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.byTxn[txn]
	if st == nil || mark < 0 || mark >= len(st.journal) {
		return
	}
	for i := len(st.journal) - 1; i >= mark; i-- {
		cd := st.journal[i]
		next := st.cells[cd.Cell].Add(cd.Delta.Neg())
		if next.IsZero() {
			delete(st.cells, cd.Cell)
			st.rows[cd.Cell.Row]--
			if st.rows[cd.Cell.Row] <= 0 {
				delete(st.rows, cd.Cell.Row)
				l.rowRef[cd.Cell.Row]--
				if l.rowRef[cd.Cell.Row] <= 0 {
					delete(l.rowRef, cd.Cell.Row)
				}
			}
		} else {
			st.cells[cd.Cell] = next
		}
	}
	st.journal = st.journal[:mark]
	if len(st.cells) == 0 {
		delete(l.byTxn, txn)
	}
}

// CellDelta is one (cell, delta) pair returned by TxnDeltas.
type CellDelta struct {
	Cell  CellID
	Delta Delta
}

// TxnDeltas returns txn's pending deltas grouped by row, deterministically
// ordered (by tree, key, column) so commit logging is reproducible.
func (l *Ledger) TxnDeltas(txn id.Txn) []CellDelta {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.byTxn[txn]
	if st == nil {
		return nil
	}
	out := make([]CellDelta, 0, len(st.cells))
	for cell, d := range st.cells {
		out = append(out, CellDelta{Cell: cell, Delta: d})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Cell, out[j].Cell
		if a.Row.Tree != b.Row.Tree {
			return a.Row.Tree < b.Row.Tree
		}
		if a.Row.Key != b.Row.Key {
			return a.Row.Key < b.Row.Key
		}
		return a.Col < b.Col
	})
	return out
}

// PendingTxns reports how many transactions currently have pending deltas
// against row. The ghost cleaner must not erase a row while this is nonzero.
func (l *Ledger) PendingTxns(row RowID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rowRef[row]
}

// Discard drops every pending delta of txn (commit after fold, or abort).
func (l *Ledger) Discard(txn id.Txn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.byTxn[txn]
	if st == nil {
		return
	}
	for row := range st.rows {
		l.rowRef[row]--
		if l.rowRef[row] <= 0 {
			delete(l.rowRef, row)
		}
	}
	delete(l.byTxn, txn)
}

// Empty reports whether the ledger holds no pending deltas at all; the
// consistency checker asserts this at quiescence.
func (l *Ledger) Empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byTxn) == 0 && len(l.rowRef) == 0
}
