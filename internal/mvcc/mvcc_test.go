package mvcc

import (
	"bytes"
	"testing"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/wal"
)

func tkey(s string) []byte { return []byte(s) }

func preVal(val string) func() ([]byte, bool, bool) {
	return func() ([]byte, bool, bool) { return []byte(val), false, true }
}

func preAbsent() func() ([]byte, bool, bool) {
	return func() ([]byte, bool, bool) { return nil, false, false }
}

func TestUntrackedRow(t *testing.T) {
	s := NewStore(nil)
	if _, tracked := s.Read(1, tkey("a"), 10, id.None); tracked {
		t.Fatal("read of untracked row reported tracked")
	}
}

func TestPendingInvisibleUntilStamped(t *testing.T) {
	s := NewStore(nil)
	rec := &wal.Record{Type: wal.TUpdate, Tree: 1, Key: tkey("a"), NewVal: []byte("v2")}
	s.Pin(1, tkey("a"), rec, 7, preVal("v1"))

	res, tracked := s.Read(1, tkey("a"), 100, id.None)
	if !tracked || !res.Present || string(res.Val) != "v1" {
		t.Fatalf("before stamp: got %+v tracked=%v, want committed v1", res, tracked)
	}
	// The writing transaction itself sees its pending write.
	res, _ = s.Read(1, tkey("a"), 100, 7)
	if string(res.Val) != "v2" {
		t.Fatalf("self read got %q, want v2", res.Val)
	}

	s.Stamp(1, tkey("a"), rec, 5)
	res, _ = s.Read(1, tkey("a"), 4, id.None)
	if string(res.Val) != "v1" {
		t.Fatalf("read below commit ts got %q, want v1", res.Val)
	}
	res, _ = s.Read(1, tkey("a"), 5, id.None)
	if string(res.Val) != "v2" {
		t.Fatalf("read at commit ts got %q, want v2", res.Val)
	}
}

func TestUnpinDiscardsPending(t *testing.T) {
	s := NewStore(nil)
	rec := &wal.Record{Type: wal.TDelete, Tree: 1, Key: tkey("a")}
	s.Pin(1, tkey("a"), rec, 7, preVal("v1"))
	s.Unpin(1, tkey("a"), rec)
	res, tracked := s.Read(1, tkey("a"), 100, 7)
	if !tracked || !res.Present || string(res.Val) != "v1" {
		t.Fatalf("after unpin: got %+v tracked=%v, want committed v1", res, tracked)
	}
}

func TestInsertDeleteVisibility(t *testing.T) {
	s := NewStore(nil)
	ins := &wal.Record{Type: wal.TInsert, Tree: 1, Key: tkey("a"), NewVal: []byte("v1")}
	s.Pin(1, tkey("a"), ins, 7, preAbsent())
	s.Stamp(1, tkey("a"), ins, 3)
	del := &wal.Record{Type: wal.TDelete, Tree: 1, Key: tkey("a")}
	s.Pin(1, tkey("a"), del, 8, preVal("v1"))
	s.Stamp(1, tkey("a"), del, 6)

	for _, tc := range []struct {
		ts      uint64
		present bool
	}{{2, false}, {3, true}, {5, true}, {6, false}, {9, false}} {
		res, tracked := s.Read(1, tkey("a"), tc.ts, id.None)
		if !tracked {
			t.Fatalf("ts %d: untracked", tc.ts)
		}
		if res.Present != tc.present {
			t.Fatalf("ts %d: present=%v, want %v", tc.ts, res.Present, tc.present)
		}
	}
}

func TestEscrowDeltasLayerOverFullImage(t *testing.T) {
	s := NewStore(nil)
	d1 := &wal.Record{Type: wal.TEscrowFold, Tree: 2, Key: tkey("g"),
		Deltas: []wal.ColDelta{{Col: 1, Int: 10}}}
	d2 := &wal.Record{Type: wal.TEscrowFold, Tree: 2, Key: tkey("g"),
		Deltas: []wal.ColDelta{{Col: 1, Int: 5}}}
	s.Pin(2, tkey("g"), d1, 7, preVal("base"))
	s.Pin(2, tkey("g"), d2, 8, preVal("never-called"))
	// Folds commit out of timestamp order: d2 stamps ts 4, d1 stamps ts 3.
	s.Stamp(2, tkey("g"), d2, 4)
	s.Stamp(2, tkey("g"), d1, 3)

	res, _ := s.Read(2, tkey("g"), 3, id.None)
	if string(res.Val) != "base" || len(res.Deltas) != 1 || res.Deltas[0].Int != 10 {
		t.Fatalf("ts 3: got val=%q deltas=%v, want base + [10]", res.Val, res.Deltas)
	}
	res, _ = s.Read(2, tkey("g"), 4, id.None)
	if len(res.Deltas) != 2 {
		t.Fatalf("ts 4: got deltas=%v, want both", res.Deltas)
	}
}

func TestTrackedKeysRange(t *testing.T) {
	s := NewStore(nil)
	for _, k := range []string{"d", "b", "f"} {
		rec := &wal.Record{Type: wal.TUpdate, Tree: 3, Key: tkey(k), NewVal: []byte("x")}
		s.Pin(3, tkey(k), rec, 7, preVal("y"))
	}
	other := &wal.Record{Type: wal.TUpdate, Tree: 4, Key: tkey("c"), NewVal: []byte("x")}
	s.Pin(4, tkey("c"), other, 7, preVal("y"))

	keys := s.TrackedKeys(3, tkey("b"), tkey("f"))
	if len(keys) != 2 || !bytes.Equal(keys[0], tkey("b")) || !bytes.Equal(keys[1], tkey("d")) {
		t.Fatalf("TrackedKeys = %q, want [b d]", keys)
	}
	if all := s.TrackedKeys(3, nil, nil); len(all) != 3 {
		t.Fatalf("unbounded TrackedKeys = %q, want 3 keys", all)
	}
}

func TestPruneFoldsAndDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewStore(&reg.MVCC)
	up := &wal.Record{Type: wal.TUpdate, Tree: 1, Key: tkey("a"), NewVal: []byte("v2")}
	s.Pin(1, tkey("a"), up, 7, preVal("v1"))
	s.Stamp(1, tkey("a"), up, 3)
	d := &wal.Record{Type: wal.TEscrowFold, Tree: 1, Key: tkey("a"),
		Deltas: []wal.ColDelta{{Col: 0, Int: 1}}}
	s.Pin(1, tkey("a"), d, 8, preVal("unused"))
	s.Stamp(1, tkey("a"), d, 5)

	fold := func(tree id.Tree, val []byte, deltas []wal.ColDelta) ([]byte, bool, error) {
		return append(append([]byte(nil), val...), '+'), false, nil
	}
	// Horizon below both versions: nothing prunable.
	if n := s.Prune(2, fold); n != 0 {
		t.Fatalf("prune below versions folded %d, want 0", n)
	}
	// Horizon covers the full image only.
	if n := s.Prune(3, fold); n != 1 {
		t.Fatalf("prune at 3 folded %d, want 1", n)
	}
	res, tracked := s.Read(1, tkey("a"), 3, id.None)
	if !tracked || string(res.Val) != "v2" || len(res.Deltas) != 0 {
		t.Fatalf("after partial prune: got %+v, want base v2", res)
	}
	// Horizon covers everything: delta folds into base, chain drops.
	if n := s.Prune(10, fold); n != 1 {
		t.Fatalf("prune at 10 folded %d, want 1", n)
	}
	if got := s.Chains(); got != 0 {
		t.Fatalf("chains after full prune = %d, want 0", got)
	}
	if got := reg.MVCC.VersionsPruned.Load(); got != 2 {
		t.Fatalf("versions_pruned = %d, want 2", got)
	}
	if got := reg.MVCC.VersionsStamped.Load(); got != 2 {
		t.Fatalf("versions_stamped = %d, want 2", got)
	}
}

func TestPruneKeepsChainWithPending(t *testing.T) {
	s := NewStore(nil)
	rec := &wal.Record{Type: wal.TUpdate, Tree: 1, Key: tkey("a"), NewVal: []byte("v2")}
	s.Pin(1, tkey("a"), rec, 7, preVal("v1"))
	s.Prune(100, nil)
	if got := s.Chains(); got != 1 {
		t.Fatalf("chain with pending entry dropped by prune (chains=%d)", got)
	}
	res, tracked := s.Read(1, tkey("a"), 100, 7)
	if !tracked || string(res.Val) != "v2" {
		t.Fatalf("self read after prune: got %+v tracked=%v", res, tracked)
	}
}

func TestSameTimestampLaterOpWins(t *testing.T) {
	s := NewStore(nil)
	ins := &wal.Record{Type: wal.TInsert, Tree: 1, Key: tkey("a"), NewVal: []byte("v1")}
	up := &wal.Record{Type: wal.TUpdate, Tree: 1, Key: tkey("a"), NewVal: []byte("v2")}
	s.Pin(1, tkey("a"), ins, 7, preAbsent())
	s.Pin(1, tkey("a"), up, 7, preVal("never"))
	// One transaction commits both ops at one timestamp, in log order.
	s.Stamp(1, tkey("a"), ins, 4)
	s.Stamp(1, tkey("a"), up, 4)
	res, _ := s.Read(1, tkey("a"), 4, id.None)
	if string(res.Val) != "v2" {
		t.Fatalf("same-ts read got %q, want the later op's v2", res.Val)
	}
}

func TestPruneBatchesDeltasAndDropsDeadOnes(t *testing.T) {
	s := NewStore(nil)
	// Delta at ts 2, full image at ts 3, deltas at ts 4 and 5: the ts-2 delta
	// is dead (resolution never overlays deltas older than the newest full
	// image) and the survivors must fold in a single call.
	recs := []*wal.Record{
		{Type: wal.TEscrowFold, Tree: 1, Key: tkey("a"), Deltas: []wal.ColDelta{{Col: 0, Int: 1}}},
		{Type: wal.TUpdate, Tree: 1, Key: tkey("a"), NewVal: []byte("full")},
		{Type: wal.TEscrowFold, Tree: 1, Key: tkey("a"), Deltas: []wal.ColDelta{{Col: 0, Int: 2}}},
		{Type: wal.TEscrowFold, Tree: 1, Key: tkey("a"), Deltas: []wal.ColDelta{{Col: 0, Int: 3}}},
	}
	for i, rec := range recs {
		s.Pin(1, tkey("a"), rec, id.Txn(7+i), preVal("seed"))
		s.Stamp(1, tkey("a"), rec, uint64(2+i))
	}
	foldCalls := 0
	var foldedDeltas []wal.ColDelta
	var foldedBase string
	fold := func(tree id.Tree, val []byte, deltas []wal.ColDelta) ([]byte, bool, error) {
		foldCalls++
		foldedBase = string(val)
		foldedDeltas = append([]wal.ColDelta(nil), deltas...)
		return []byte("folded"), false, nil
	}
	if n := s.Prune(100, fold); n != 4 {
		t.Fatalf("pruned %d versions, want 4", n)
	}
	if foldCalls != 1 {
		t.Fatalf("fold called %d times, want 1 batched call", foldCalls)
	}
	if foldedBase != "full" {
		t.Fatalf("fold base %q, want the newest full image", foldedBase)
	}
	if len(foldedDeltas) != 2 || foldedDeltas[0].Int != 2 || foldedDeltas[1].Int != 3 {
		t.Fatalf("fold deltas %v, want the two survivors [2 3] in ts order", foldedDeltas)
	}
	if got := s.Chains(); got != 0 {
		t.Fatalf("chains after prune = %d, want 0", got)
	}
}

func TestPruneShardRotationDrains(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewStore(&reg.MVCC)
	// Enough distinct keys that multiple shards hold chains.
	for i := 0; i < 64; i++ {
		k := tkey(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		rec := &wal.Record{Type: wal.TUpdate, Tree: 1, Key: k, NewVal: []byte("v2")}
		s.Pin(1, k, rec, id.Txn(7), preVal("v1"))
		s.Stamp(1, k, rec, 3)
	}
	if s.Chains() != 64 {
		t.Fatalf("chains = %d, want 64", s.Chains())
	}
	pruned := 0
	for i := 0; i < s.NumShards(); i++ {
		pruned += s.PruneShard(i, 100, nil)
	}
	if pruned != 64 {
		t.Fatalf("shard rotation pruned %d versions, want 64", pruned)
	}
	if got := s.Chains(); got != 0 {
		t.Fatalf("chains after full rotation = %d, want 0", got)
	}
	if got := reg.MVCC.PrunePasses.Load(); got != 1 {
		t.Fatalf("prune_passes after one rotation = %d, want 1", got)
	}
	if got := reg.MVCC.VersionsPruned.Load(); got != 64 {
		t.Fatalf("versions_pruned = %d, want 64", got)
	}
}
