// Package mvcc implements the sidecar version store behind snapshot reads
// (DESIGN.md §8): short per-row version chains keyed by (tree, key), holding
// the committed pre-image the chain was seeded with, stamped committed
// versions ordered by commit timestamp, and the pending (uncommitted)
// post-images of in-flight writers. Snapshot readers resolve a row at a read
// timestamp by pure timestamp comparison — no lock-manager traffic — while
// writers pin a pending entry per logged operation and stamp it at commit.
//
// Chains exist only for rows mutated since the last prune: a row with no
// chain is fully committed at or below every live reader's timestamp, so the
// btree value stands. The pruner folds versions at or below the snapshot
// horizon into the chain base and drops chains that become quiescent, keeping
// the store's footprint proportional to the active write set.
package mvcc

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/wal"
)

var errNoFolder = errors.New("mvcc: no delta folder supplied")

// storeShards stripes the chain map; must be a power of two.
const storeShards = 32

// Version is one committed state of a row. Either a full post-image
// (Val/Ghost, or Absent for a delete) or an escrow delta set: concurrent
// escrow folds commit in an order that need not match their commit
// timestamps, so folds are versioned as commutative deltas rather than full
// values and layered onto the newest full image at resolution time.
type Version struct {
	TS     uint64
	Full   bool
	Val    []byte
	Ghost  bool
	Absent bool
	Deltas []wal.ColDelta
}

// pending is one in-flight operation's provisional version: the post-image
// computed when the operation was logged, keyed by the operation's WAL record
// so commit can stamp and rollback can unpin exactly this entry.
type pending struct {
	rec *wal.Record
	txn id.Txn
	ver Version // TS zero until stamped
}

type chain struct {
	mu       sync.Mutex
	base     Version // committed state when the chain was seeded (TS 0)
	versions []Version
	pend     []pending
}

type chainKey struct {
	tree id.Tree
	key  string
}

type shard struct {
	mu     sync.RWMutex
	chains map[chainKey]*chain
}

// Store is the engine-wide version store.
type Store struct {
	shards [storeShards]shard
	m      *metrics.MVCCMetrics // nil-safe
}

// NewStore returns an empty store reporting into m (which may be nil).
func NewStore(m *metrics.MVCCMetrics) *Store {
	s := &Store{m: m}
	for i := range s.shards {
		s.shards[i].chains = make(map[chainKey]*chain)
	}
	return s
}

func (s *Store) shard(k chainKey) *shard {
	h := uint32(k.tree) * 2654435761
	for i := 0; i < len(k.key); i++ {
		h = h*31 + uint32(k.key[i])
	}
	return &s.shards[h&(storeShards-1)]
}

// Pin records one in-flight operation against (tree, key). rec identifies the
// operation for Stamp/Unpin; pre supplies the row's committed pre-image
// (value, ghost bit, existence) and is called only when the pin seeds a new
// chain. Pin must be called before the operation mutates the btree, while the
// caller's write lock (or the structure latch, for escrow folds) still
// serializes the row.
func (s *Store) Pin(tree id.Tree, key []byte, rec *wal.Record, txn id.Txn, pre func() (val []byte, ghost, ok bool)) {
	ck := chainKey{tree: tree, key: string(key)}
	sh := s.shard(ck)
	sh.mu.Lock()
	ch := sh.chains[ck]
	if ch == nil {
		ch = &chain{}
		val, ghost, ok := pre()
		if ok {
			ch.base = Version{Full: true, Val: append([]byte(nil), val...), Ghost: ghost}
		} else {
			ch.base = Version{Full: true, Absent: true}
		}
		sh.chains[ck] = ch
		if s.m != nil {
			s.m.Chains.Add(1)
		}
	}
	ch.mu.Lock()
	sh.mu.Unlock()
	ch.pend = append(ch.pend, pending{rec: rec, txn: txn, ver: pendingVersion(rec)})
	if s.m != nil {
		s.m.ObserveChainLen(1 + len(ch.versions) + len(ch.pend))
	}
	ch.mu.Unlock()
}

// pendingVersion computes the provisional version an operation will commit:
// the post-image for row operations, the delta set for escrow folds. For
// TSetGhost the record carries no value — the row value is unchanged by the
// operation, so the caller-supplied record's OldVal (filled by the engine
// before pinning) provides it.
func pendingVersion(rec *wal.Record) Version {
	switch rec.Type {
	case wal.TInsert:
		return Version{Full: true, Val: rec.NewVal, Ghost: rec.NewGhost}
	case wal.TUpdate:
		return Version{Full: true, Val: rec.NewVal}
	case wal.TDelete:
		return Version{Full: true, Absent: true}
	case wal.TSetGhost:
		return Version{Full: true, Val: rec.OldVal, Ghost: rec.NewGhost}
	case wal.TEscrowFold:
		return Version{Deltas: rec.Deltas}
	default:
		// Unknown row mutation: treat as a full rewrite to the record's new
		// value so readers never see a half-tracked row.
		return Version{Full: true, Val: rec.NewVal, Ghost: rec.NewGhost}
	}
}

// Stamp promotes rec's pending entry to a committed version at ts. Commit
// calls it once per logged operation, after the commit record is durable and
// before the commit timestamp is finished at the oracle.
func (s *Store) Stamp(tree id.Tree, key []byte, rec *wal.Record, ts uint64) {
	ck := chainKey{tree: tree, key: string(key)}
	sh := s.shard(ck)
	sh.mu.RLock()
	ch := sh.chains[ck]
	sh.mu.RUnlock()
	if ch == nil {
		return
	}
	ch.mu.Lock()
	for i := range ch.pend {
		if ch.pend[i].rec == rec {
			v := ch.pend[i].ver
			v.TS = ts
			ch.pend = append(ch.pend[:i], ch.pend[i+1:]...)
			ch.versions = append(ch.versions, v)
			if s.m != nil {
				s.m.VersionsStamped.Add(1)
				s.m.ObserveChainLen(1 + len(ch.versions) + len(ch.pend))
			}
			break
		}
	}
	ch.mu.Unlock()
}

// Unpin discards rec's pending entry (rollback of an unstamped operation).
func (s *Store) Unpin(tree id.Tree, key []byte, rec *wal.Record) {
	ck := chainKey{tree: tree, key: string(key)}
	sh := s.shard(ck)
	sh.mu.RLock()
	ch := sh.chains[ck]
	sh.mu.RUnlock()
	if ch == nil {
		return
	}
	ch.mu.Lock()
	for i := range ch.pend {
		if ch.pend[i].rec == rec {
			ch.pend = append(ch.pend[:i], ch.pend[i+1:]...)
			break
		}
	}
	ch.mu.Unlock()
}

// Resolved is the outcome of resolving a row at a read timestamp.
type Resolved struct {
	// Present is false when the row does not exist at the timestamp.
	Present bool
	// Ghost is the row's ghost bit at the timestamp.
	Ghost bool
	// Val is the newest full image at or below the timestamp. The slice
	// aliases chain-owned memory only for stamped versions, which are
	// immutable once appended; callers must not modify it.
	Val []byte
	// Deltas are the escrow deltas committed after the full image and at or
	// below the timestamp; the caller folds them into Val's decoded form.
	Deltas []wal.ColDelta
}

// Read resolves (tree, key) at ts. tracked=false means no chain covers the
// row and the btree value stands (it is committed at or below every live
// read timestamp). self, when nonzero, overlays that transaction's own
// pending row operations so a snapshot transaction reads its own writes.
func (s *Store) Read(tree id.Tree, key []byte, ts uint64, self id.Txn) (Resolved, bool) {
	ck := chainKey{tree: tree, key: string(key)}
	sh := s.shard(ck)
	sh.mu.RLock()
	ch := sh.chains[ck]
	sh.mu.RUnlock()
	if ch == nil {
		return Resolved{}, false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()

	res := Resolved{Present: !ch.base.Absent, Ghost: ch.base.Ghost, Val: ch.base.Val}
	var fullTS uint64
	for i := range ch.versions {
		v := &ch.versions[i]
		if v.Full && v.TS <= ts && v.TS >= fullTS {
			res = Resolved{Present: !v.Absent, Ghost: v.Ghost, Val: v.Val}
			fullTS = v.TS
		}
	}
	for i := range ch.versions {
		v := &ch.versions[i]
		if !v.Full && v.TS <= ts && v.TS > fullTS {
			res.Deltas = append(res.Deltas, v.Deltas...)
		}
	}
	if self != id.None {
		for i := range ch.pend {
			p := &ch.pend[i]
			if p.txn != self {
				continue
			}
			if p.ver.Full {
				res = Resolved{Present: !p.ver.Absent, Ghost: p.ver.Ghost, Val: p.ver.Val}
			} else {
				res.Deltas = append(res.Deltas, p.ver.Deltas...)
			}
		}
	}
	return res, true
}

// TrackedKeys returns the keys in [lo, hi) (hi nil = unbounded) that have a
// chain on tree, sorted. Snapshot scans merge them with the btree's keys so
// rows deleted from the tree but alive at the read timestamp still appear.
func (s *Store) TrackedKeys(tree id.Tree, lo, hi []byte) [][]byte {
	var out [][]byte
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for ck := range sh.chains {
			if ck.tree != tree {
				continue
			}
			k := []byte(ck.key)
			if lo != nil && bytes.Compare(k, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// Evict drops (tree, key)'s version chain outright, making the btree's
// stored bytes the only source of truth at every timestamp. It refuses when
// the chain has pending (in-flight) entries and reports whether the key is
// now untracked. Fault injection only: committed history normally leaves the
// store through Prune, never through Evict.
func (s *Store) Evict(tree id.Tree, key []byte) bool {
	ck := chainKey{tree: tree, key: string(key)}
	sh := s.shard(ck)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.chains[ck]
	if ch == nil {
		return true
	}
	ch.mu.Lock()
	busy := len(ch.pend) > 0
	ch.mu.Unlock()
	if busy {
		return false
	}
	delete(sh.chains, ck)
	if s.m != nil {
		s.m.Chains.Add(-1)
	}
	return true
}

// FoldFunc folds escrow deltas into an encoded view row, returning the new
// encoding and its group-empty (ghost) bit. The engine supplies it so the
// store stays ignorant of row encodings and view metadata.
type FoldFunc func(tree id.Tree, val []byte, deltas []wal.ColDelta) (newVal []byte, ghost bool, err error)

// Prune folds every version at or below horizon into its chain's base and
// drops chains left with no versions and no pending entries. It returns the
// number of versions pruned. Safe concurrently with Pin/Stamp/Read: a chain
// is dropped only while its shard's map lock is held, and only when
// quiescent, in which case the btree value equals the base.
func (s *Store) Prune(horizon uint64, fold FoldFunc) int {
	pruned := 0
	for i := range s.shards {
		pruned += s.pruneShard(i, horizon, fold)
	}
	if s.m != nil {
		s.m.PrunePasses.Add(1)
		s.m.VersionsPruned.Add(int64(pruned))
	}
	return pruned
}

// NumShards returns the store's shard count, for callers spreading
// incremental prune steps across ticks.
func (s *Store) NumShards() int { return storeShards }

// PruneShard prunes a single shard (i taken modulo the shard count) up to
// horizon. The background pruner calls it once per tick so prune work spreads
// evenly over time instead of landing as one stop-the-world-sized spike: a
// full pass over every chain folds hundreds of versions and forces the hot
// write set to rebuild its chains all at once, which shows up as a throughput
// and allocs/op sawtooth on small machines. A full rotation through all
// shards counts as one prune pass in the metrics.
func (s *Store) PruneShard(i int, horizon uint64, fold FoldFunc) int {
	idx := i % storeShards
	pruned := s.pruneShard(idx, horizon, fold)
	if s.m != nil {
		if pruned > 0 {
			s.m.VersionsPruned.Add(int64(pruned))
		}
		if idx == storeShards-1 {
			s.m.PrunePasses.Add(1)
		}
	}
	return pruned
}

// pruneShard folds and drops chains in one shard; metrics for pruned counts
// are the caller's job (Chains is adjusted here, where the drop happens).
func (s *Store) pruneShard(idx int, horizon uint64, fold FoldFunc) int {
	pruned := 0
	sh := &s.shards[idx]
	sh.mu.Lock()
	for ck, ch := range sh.chains {
		ch.mu.Lock()
		pruned += pruneChain(ck.tree, ch, horizon, fold)
		drop := len(ch.versions) == 0 && len(ch.pend) == 0
		ch.mu.Unlock()
		if drop {
			delete(sh.chains, ck)
			if s.m != nil {
				s.m.Chains.Add(-1)
			}
		}
	}
	sh.mu.Unlock()
	return pruned
}

// pruneChain folds versions with TS <= horizon into base, oldest first,
// returning how many versions it folded away.
func pruneChain(tree id.Tree, ch *chain, horizon uint64, fold FoldFunc) int {
	candidates := 0
	for _, v := range ch.versions {
		if v.TS <= horizon {
			candidates++
		}
	}
	if candidates == 0 {
		return 0
	}
	old := make([]Version, 0, candidates)
	keep := make([]Version, 0, len(ch.versions)-candidates)
	for _, v := range ch.versions {
		if v.TS <= horizon {
			old = append(old, v)
		} else {
			keep = append(keep, v)
		}
	}
	sort.SliceStable(old, func(i, j int) bool { return old[i].TS < old[j].TS })
	// The newest full image at or below the horizon supersedes everything
	// before it: resolution only overlays deltas newer than the full version
	// it starts from, so older versions — full or delta — prune for free.
	base := ch.base
	start := 0
	for i, v := range old {
		if v.Full {
			base = Version{Full: true, Val: v.Val, Ghost: v.Ghost, Absent: v.Absent}
			start = i + 1
		}
	}
	// Everything after the newest full image is a delta. Escrow deltas
	// commute and FoldFunc takes a slice, so the whole surviving run folds in
	// one call — hot view-row chains carry hundreds of deltas per pass, and
	// folding them one at a time made prune passes dominate allocs/op.
	var deltas []wal.ColDelta
	for _, v := range old[start:] {
		deltas = append(deltas, v.Deltas...)
	}
	folded := len(old)
	if len(deltas) > 0 {
		var (
			nv    []byte
			ghost bool
			err   error
		)
		if fold == nil {
			err = errNoFolder
		} else {
			nv, ghost, err = fold(tree, base.Val, deltas)
		}
		if err != nil {
			// Folding failed; keep the delta run unpruned, so the base never
			// skips over a delta.
			keep = append(keep, old[start:]...)
			folded = start
		} else {
			base = Version{Full: true, Val: nv, Ghost: ghost}
		}
	}
	ch.base = base
	ch.versions = keep
	return folded
}

// Chains returns the number of live chains.
func (s *Store) Chains() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.chains)
		sh.mu.RUnlock()
	}
	return n
}
