// Package bench implements the experiment harness: one runner per table and
// figure of the reconstructed evaluation (DESIGN.md §4). Each runner builds
// fresh databases, drives a workload, and returns a formatted stats.Table
// with the same rows/series the paper-style experiment reports.
package bench

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Tracer, when set (viewbench -trace-slow), is installed as Options.Tracer on
// every database the harness opens, so slow lock waits, folds, and group
// commits stream out of experiment runs.
var Tracer metrics.Tracer

// MetricsSink, when set (viewbench -metrics), receives the headline (F2
// escrow, max writers) database's full metrics snapshot just before that
// database is torn down. CI saves it as the bench-smoke artifact.
var MetricsSink func(metrics.Snapshot)

// Watchdog, when set (viewbench default), enables the stall watchdog on
// every database the harness opens.
var Watchdog bool

// ScrubInterval, when positive (viewbench -scrub), runs the online
// consistency scrubber on every database the harness opens, at that tick and
// the default row budget — so the benchmarks measure the engine as deployed
// with continuous verification on.
var ScrubInterval time.Duration

// FlightSink, when set (viewbench -flight-sink), receives automatic
// flight-record dumps from every database the harness opens.
var FlightSink io.Writer

// ProfileLabels, when set (viewbench -pprof-labels), tags commit hot paths
// with runtime/pprof labels on every database the harness opens.
var ProfileLabels bool

// current is the most recently opened harness database, so viewbench's
// SIGQUIT handler can dump the flight record of whatever is running now.
var current atomic.Pointer[core.DB]

// CurrentDB returns the database the harness most recently opened (and has
// not yet torn down), or nil.
func CurrentDB() *core.DB { return current.Load() }

// Scale shrinks experiments for quick runs (tests, testing.B iterations);
// Full is the cmd/viewbench default.
type Scale struct {
	// Factor divides workload sizes; 1 = full experiment.
	Factor int
}

// Full runs experiments at paper-style scale.
var Full = Scale{Factor: 1}

// Quick runs experiments at roughly 1/8 scale.
var Quick = Scale{Factor: 8}

// Smoke runs experiments at ~1/64 scale: just enough work to produce a
// headline metric for the CI bench-smoke gate and the results-schema test.
var Smoke = Scale{Factor: 64}

func (s Scale) div(n int) int {
	if s.Factor <= 1 {
		return n
	}
	out := n / s.Factor
	if out < 1 {
		return 1
	}
	return out
}

// tempDB creates a database in a fresh temporary directory; cleanup removes
// it.
func tempDB(opts core.Options) (*core.DB, func(), error) {
	if opts.Tracer == nil {
		opts.Tracer = Tracer
	}
	if Watchdog {
		opts.Watchdog = true
	}
	if opts.ScrubInterval == 0 && ScrubInterval > 0 {
		opts.ScrubInterval = ScrubInterval
	}
	if opts.FlightSink == nil {
		opts.FlightSink = FlightSink
	}
	if ProfileLabels {
		opts.ProfileLabels = true
	}
	dir, err := os.MkdirTemp("", "vtxnbench-*")
	if err != nil {
		return nil, nil, err
	}
	db, err := core.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	current.Store(db)
	cleanup := func() {
		current.CompareAndSwap(db, nil)
		db.Close()
		os.RemoveAll(dir)
	}
	return db, cleanup, nil
}

func strategyName(s catalog.Strategy) string { return s.String() }

// viewFreshness finds the named view's freshness snapshot (zero value when
// the view has no samples yet).
func viewFreshness(m metrics.Snapshot, view string) metrics.ViewFreshnessSnapshot {
	for _, v := range m.Freshness.Views {
		if v.View == view {
			return v
		}
	}
	return metrics.ViewFreshnessSnapshot{}
}

// freshCell formats a commit-to-visible summary for a table cell.
func freshCell(v metrics.ViewFreshnessSnapshot) string {
	if v.CommitToVisible.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s",
		stats.D(time.Duration(v.CommitToVisible.P50Ns)),
		stats.D(time.Duration(v.CommitToVisible.P99Ns)))
}

// Runner is one experiment: an ID (table/figure number) and its run
// function.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) (*stats.Table, error)
}

// All returns every experiment in the evaluation, in paper order.
func All() []Runner {
	return []Runner{
		{ID: "T1", Name: "view maintenance overhead", Run: RunT1Overhead},
		{ID: "F2", Name: "escrow vs X-lock scaling (headline)", Run: RunF2EscrowScaling},
		{ID: "F3", Name: "throughput vs number of groups", Run: RunF3Contention},
		{ID: "F4", Name: "deadlock/abort rate vs writers", Run: RunF4Aborts},
		{ID: "T5", Name: "reader/writer interaction by isolation", Run: RunT5Readers},
		{ID: "T5R", Name: "snapshot read scaling (mixed read/write)", Run: RunT5RSnapshotScaling},
		{ID: "F6", Name: "query speedup from the indexed view", Run: RunF6QuerySpeedup},
		{ID: "T7", Name: "ghost vs direct structural maintenance", Run: RunT7Ghosts},
		{ID: "T8", Name: "crash recovery", Run: RunT8Recovery},
		{ID: "F9", Name: "immediate vs deferred maintenance", Run: RunF9Deferred},
		{ID: "F9D", Name: "deferred tier: applier throughput and drain", Run: RunF9DDeferredApplier},
		{ID: "DAG", Name: "view DAG: 3-level rollup chain, escrow vs deferred", Run: RunDAGRollupChain},
		{ID: "T10", Name: "ablations (MIN/MAX, escalation, group commit)", Run: RunT10Ablations},
		{ID: "T11", Name: "isolation levels and key-range locking", Run: RunT11Isolation},
	}
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("bench: unknown experiment %q", id)
}
