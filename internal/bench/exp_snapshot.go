package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/workload"
)

// RunT5RSnapshotScaling (Table 5R): the mixed read/write scenario for the
// MVCC read path. A fixed pool of escrow writers churns the hot view rows
// for the whole run while the reader pool sweeps 1..16 goroutines, once with
// lock-based read-committed reads and once with read-only snapshot reads.
// The paper's promise is on the snapshot side: readers never enter the lock
// manager and never block a writer, so read throughput scales with reader
// count instead of flattening against the writers' E-lock traffic.
func RunT5RSnapshotScaling(s Scale) (*stats.Table, error) {
	readerSweep := []int{1, 2, 4, 8, 16}
	// Floor the per-reader iteration count: reads are microseconds each, so a
	// naively scaled smoke run finishes inside the scheduler's warm-up
	// transient and the headline becomes noise-dominated (>2x run-to-run
	// swings, far past benchgate's 30% threshold).
	perReader := s.div(4000)
	if perReader < 1000 {
		perReader = 1000
	}
	const writers = 8
	tb := &stats.Table{
		ID:    "T5R",
		Title: "snapshot vs read-committed view reads, 8 escrow writers, reader sweep",
		Header: []string{"readers", "rc reads/s", "snapshot reads/s",
			"snapshot p50", "snapshot p99", "writer tx/s", "chains hiwater"},
	}
	for _, readers := range readerSweep {
		var rcTP, snapTP, writerTP float64
		var snapP50, snapP99 time.Duration
		var hiwater int64
		for _, snapshot := range []bool{false, true} {
			db, cleanup, err := tempDB(core.Options{LockTimeout: 30 * time.Second})
			if err != nil {
				return nil, err
			}
			// Writers carry the standard 500µs multi-statement think time (as
			// in F2): the churn is live for every read, but spinning writers
			// don't starve the readers of cores — without pacing, the headline
			// on small machines measures scheduler luck, not the read path.
			w := workload.Banking{Accounts: 1000, Branches: 4,
				Strategy: catalog.StrategyEscrow, InitialBalance: 1000,
				ThinkTime: 500 * time.Microsecond}
			if err := w.Setup(db); err != nil {
				cleanup()
				return nil, err
			}
			readOp := func(rng *rand.Rand) error { return w.ReadBranchOp(db, rng, txn.ReadCommitted) }
			if snapshot {
				readOp = func(rng *rand.Rand) error { return w.ReadBranchSnapshotOp(db, rng) }
			}
			readRuns, wTP := runReadersAgainstChurn(db, w, writers, readers, perReader, readOp)
			snap := db.Metrics()
			cleanup()
			if readRuns.Errors > 0 {
				// Reads on these paths never abort; any error is a real failure.
				return nil, fmt.Errorf("bench: T5R: %d read ops failed (snapshot=%v, readers=%d)",
					readRuns.Errors, snapshot, readers)
			}
			if snapshot {
				snapTP = readRuns.Throughput()
				snapP50 = readRuns.Latencies.Percentile(0.5)
				snapP99 = readRuns.Latencies.Percentile(0.99)
				writerTP = wTP
				hiwater = snap.MVCC.ChainLenHighWater
				if readers == 8 {
					tb.HeadlineName, tb.Headline = "snapshot_reads_per_sec_8_readers", snapTP
				}
			} else {
				rcTP = readRuns.Throughput()
			}
		}
		tb.AddRow(stats.F(float64(readers)), stats.F(rcTP), stats.F(snapTP),
			stats.D(snapP50), stats.D(snapP99), stats.F(writerTP), stats.F(float64(hiwater)))
	}
	tb.Notes = append(tb.Notes,
		"writers run for the whole reader sweep; snapshot readers take zero lock-manager traffic")
	return tb, nil
}

// runReadersAgainstChurn drives the reader pool to completion while the
// writer pool churns continuously (writers stop when the readers finish, so
// every read races live escrow commits). Returns the reader statistics and
// the writers' committed-transaction throughput over the same span.
func runReadersAgainstChurn(db *core.DB, w workload.Banking, writers, readers, perReader int,
	readOp func(*rand.Rand) error) (readRuns stats.Runs, writerTP float64) {
	var stop atomic.Bool
	var writerOps int64
	var wwg, rwg sync.WaitGroup
	start := time.Now()
	for c := 0; c < writers; c++ {
		wwg.Add(1)
		go func(c int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for !stop.Load() {
				if err := w.DepositOp(db, rng); err == nil {
					atomic.AddInt64(&writerOps, 1)
				}
			}
		}(c)
	}
	readRuns.Latencies = &stats.Histogram{}
	var mu sync.Mutex
	for c := 0; c < readers; c++ {
		rwg.Add(1)
		go func(c int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(200 + c)))
			var errs int64
			for i := 0; i < perReader; i++ {
				t0 := time.Now()
				if err := readOp(rng); err != nil {
					errs++
				}
				readRuns.Latencies.Observe(time.Since(t0))
			}
			mu.Lock()
			readRuns.Ops += int64(perReader)
			readRuns.Errors += errs
			mu.Unlock()
		}(c)
	}
	rwg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	wwg.Wait()
	readRuns.Elapsed = elapsed
	if secs := elapsed.Seconds(); secs > 0 {
		writerTP = float64(atomic.LoadInt64(&writerOps)) / secs
	}
	return readRuns, writerTP
}
