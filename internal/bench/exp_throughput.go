package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunT1Overhead (Table 1): the cost of immediate view maintenance for a
// single client: update-transaction latency with no view, a projection
// view, an aggregate view, and an aggregate-over-join setup.
func RunT1Overhead(s Scale) (*stats.Table, error) {
	const baseOps = 4000
	ops := s.div(baseOps)
	tb := &stats.Table{
		ID:     "T1",
		Title:  "single-client order-entry latency vs. maintained views",
		Header: []string{"configuration", "ops", "mean", "p99", "ops/s", "overhead"},
	}
	type config struct {
		name  string
		setup func(db *core.DB, w workload.Orders) error
	}
	base := workload.Orders{Products: 100, Skew: 0, Strategy: catalog.StrategyEscrow}
	configs := []config{
		{"no view", func(db *core.DB, w workload.Orders) error {
			return setupOrdersNoView(db, w)
		}},
		{"aggregate view (escrow)", func(db *core.DB, w workload.Orders) error {
			w.Strategy = catalog.StrategyEscrow
			return w.Setup(db)
		}},
		{"aggregate view (xlock)", func(db *core.DB, w workload.Orders) error {
			w.Strategy = catalog.StrategyXLock
			return w.Setup(db)
		}},
		{"aggregate + join views", func(db *core.DB, w workload.Orders) error {
			w.Strategy = catalog.StrategyEscrow
			w.WithJoinView = true
			return w.Setup(db)
		}},
	}
	var baseline float64
	for _, cfg := range configs {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		if err := cfg.setup(db, base); err != nil {
			cleanup()
			return nil, err
		}
		runs := workload.RunConcurrent(db, 1, ops, 1, base.OrderEntry(1_000_000))
		cleanup()
		tp := runs.Throughput()
		if baseline == 0 {
			baseline = tp
		}
		if cfg.name == "aggregate view (escrow)" {
			tb.HeadlineName, tb.Headline = "escrow_view_ops_per_sec", tp
		}
		overhead := "1.00x"
		if tp > 0 && baseline > 0 {
			overhead = stats.F(baseline/tp) + "x"
		}
		tb.AddRow(cfg.name, stats.F(float64(runs.Ops)), stats.D(runs.Latencies.Mean()),
			stats.D(runs.Latencies.Percentile(0.99)), stats.F(tp), overhead)
	}
	tb.Notes = append(tb.Notes, "overhead is relative to the no-view baseline")
	return tb, nil
}

// setupOrdersNoView creates the orders schema without any view.
func setupOrdersNoView(db *core.DB, w workload.Orders) error {
	noView := w
	noView.WithJoinView = false
	if err := db.CreateTable("products", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "name", Kind: record.KindString},
		{Name: "price", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	return db.CreateTable("orders", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "product", Kind: record.KindInt64},
		{Name: "qty", Kind: record.KindInt64},
	}, []int{0})
}

// RunF2EscrowScaling (Figure 2, the headline): update throughput vs. number
// of concurrent writers on a hot aggregate view, escrow vs. X-lock.
func RunF2EscrowScaling(s Scale) (*stats.Table, error) {
	writersSweep := []int{1, 2, 4, 8, 16, 32}
	perWriter := s.div(1200)
	const think = 500 * time.Microsecond
	tb := &stats.Table{
		ID:     "F2",
		Title:  "deposit throughput vs writers, 4 hot branches",
		Header: []string{"writers", "escrow tx/s", "xlock tx/s", "escrow/xlock"},
	}
	for _, writers := range writersSweep {
		row := []string{stats.F(float64(writers))}
		var tps [2]float64
		for i, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyXLock} {
			db, cleanup, err := tempDB(core.Options{})
			if err != nil {
				return nil, err
			}
			w := workload.Banking{Accounts: 2000, Branches: 4, Strategy: strat,
				InitialBalance: 1000, ThinkTime: think}
			if err := w.Setup(db); err != nil {
				cleanup()
				return nil, err
			}
			headline := strat == catalog.StrategyEscrow && writers == writersSweep[len(writersSweep)-1]
			var m0 runtime.MemStats
			if headline {
				runtime.ReadMemStats(&m0)
			}
			runs := workload.RunConcurrent(db, writers, perWriter, 7, w.DepositOp)
			if headline {
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				tb.HeadlineName, tb.Headline = "escrow_tx_per_sec_max_writers", runs.Throughput()
				if runs.Ops > 0 {
					tb.HeadlineAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(runs.Ops)
				}
				ls := db.Stats().Lock
				tb.HeadlineShards = ls.Shards
				tb.HeadlineCollisions = ls.Collisions
				tb.HeadlineMaxQueue = ls.MaxQueueDepth
				tb.Notes = append(tb.Notes, fmt.Sprintf(
					"lock manager at %d writers: %d shards, %d collisions, max queue depth %d, %d detector sweeps (max %v)",
					writers, ls.Shards, ls.Collisions, ls.MaxQueueDepth, ls.Sweeps, ls.MaxSweep))
				if MetricsSink != nil {
					MetricsSink(db.Metrics())
				}
			}
			cleanup()
			tps[i] = runs.Throughput()
			row = append(row, stats.F(tps[i]))
		}
		ratio := "-"
		if tps[1] > 0 {
			ratio = stats.F(tps[0]/tps[1]) + "x"
		}
		row = append(row, ratio)
		tb.Rows = append(tb.Rows, row)
	}
	tb.Notes = append(tb.Notes,
		"every deposit updates one of 4 view rows; X locks serialize per row, E locks do not",
		"transactions are multi-statement: 500µs of client work separates the update from commit")
	return tb, nil
}

// RunF3Contention (Figure 3): throughput of 16 writers vs. the number of
// aggregate groups — the curves converge as contention vanishes.
func RunF3Contention(s Scale) (*stats.Table, error) {
	groupsSweep := []int{1, 4, 16, 64, 256, 1024}
	const writers = 16
	perWriter := s.div(600)
	tb := &stats.Table{
		ID:     "F3",
		Title:  "order-entry throughput vs number of product groups (16 writers, uniform)",
		Header: []string{"groups", "escrow tx/s", "xlock tx/s", "escrow/xlock"},
	}
	for _, groups := range groupsSweep {
		row := []string{stats.F(float64(groups))}
		var tps [2]float64
		for i, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyXLock} {
			db, cleanup, err := tempDB(core.Options{})
			if err != nil {
				return nil, err
			}
			w := workload.Orders{Products: groups, Skew: 0, Strategy: strat,
				ThinkTime: 300 * time.Microsecond}
			if err := w.Setup(db); err != nil {
				cleanup()
				return nil, err
			}
			runs := runOrderClients(db, w, writers, perWriter)
			if strat == catalog.StrategyEscrow && groups == 1 {
				tb.HeadlineName, tb.Headline = "escrow_tx_per_sec_1_group", runs.Throughput()
				ls := db.Stats().Lock
				tb.Notes = append(tb.Notes, fmt.Sprintf(
					"lock manager at 1 group: %d collisions, max queue depth %d, %d detector sweeps",
					ls.Collisions, ls.MaxQueueDepth, ls.Sweeps))
			}
			cleanup()
			tps[i] = runs.Throughput()
			row = append(row, stats.F(tps[i]))
		}
		ratio := "-"
		if tps[1] > 0 {
			ratio = stats.F(tps[0]/tps[1]) + "x"
		}
		row = append(row, ratio)
		tb.Rows = append(tb.Rows, row)
	}
	tb.Notes = append(tb.Notes,
		"uniform product popularity: more groups spread writers out and the curves converge")
	return tb, nil
}

// runOrderClients drives clients each with a private order-ID range.
func runOrderClients(db *core.DB, w workload.Orders, clients, perClient int) stats.Runs {
	ops := make([]workload.Op, clients)
	for c := range ops {
		ops[c] = w.OrderEntry(int64((c + 1) * 10_000_000))
	}
	return workload.RunConcurrentOps(db, perClient, 11, ops)
}
