package bench

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/workload"
)

// RunT11Isolation (Table 11): the price of phantom protection. Range
// scanners at each isolation level run against concurrent inserters:
// ReadCommitted locks nothing durable, RepeatableRead holds row locks, and
// Serializable additionally key-range locks the scanned gaps — blocking
// inserters that land inside them (and being blocked by uncommitted rows).
func RunT11Isolation(s Scale) (*stats.Table, error) {
	perClient := s.div(600)
	const scanners = 4
	const inserters = 4
	tb := &stats.Table{
		ID:    "T11",
		Title: "range scans vs concurrent inserters, by isolation level",
		Header: []string{"scanner isolation", "scan p50", "scan p99",
			"insert p50", "insert p99", "insert aborts/1k"},
	}
	for _, level := range []txn.Level{txn.ReadCommitted, txn.RepeatableRead, txn.Serializable} {
		db, cleanup, err := tempDB(core.Options{LockTimeout: 10 * time.Second})
		if err != nil {
			return nil, err
		}
		if err := setupSparseAccounts(db); err != nil {
			cleanup()
			return nil, err
		}
		scanRuns, insertRuns := runScannersInserters(db, level, scanners, inserters, perClient)
		cleanup()
		abortsPerK := float64(0)
		if insertRuns.Ops > 0 {
			abortsPerK = 1000 * float64(insertRuns.Aborts) / float64(insertRuns.Ops)
		}
		if level == txn.Serializable {
			tb.HeadlineName, tb.Headline = "serializable_scan_p99_ms",
				float64(scanRuns.Latencies.Percentile(0.99).Microseconds())/1000
		}
		tb.AddRow(level.String(),
			stats.D(scanRuns.Latencies.Percentile(0.5)),
			stats.D(scanRuns.Latencies.Percentile(0.99)),
			stats.D(insertRuns.Latencies.Percentile(0.5)),
			stats.D(insertRuns.Latencies.Percentile(0.99)),
			stats.F(abortsPerK))
	}
	tb.Notes = append(tb.Notes,
		"even ids are resident; inserters insert+delete odd ids, landing inside scanned gaps",
		"serializable gap locks block inserts into scanned ranges until the scan's txn ends")
	return tb, nil
}

// setupSparseAccounts loads accounts at even ids 0..3998 with a branch
// totals view, leaving odd ids as insertable gaps.
func setupSparseAccounts(db *core.DB) error {
	if err := db.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: record.KindInt64},
		{Name: "branch", Kind: record.KindInt64},
		{Name: "balance", Kind: record.KindInt64},
	}, []int{0}); err != nil {
		return err
	}
	if err := db.CreateIndexedView(catalog.View{
		Name: workload.ViewName, Kind: catalog.ViewAggregate, Left: "accounts",
		GroupByCols: []int{1}, Aggs: salesAggs(), Strategy: catalog.StrategyEscrow,
	}); err != nil {
		return err
	}
	for lo := int64(0); lo < 4000; lo += 1000 {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return err
		}
		for id := lo; id < lo+1000; id += 2 {
			row := record.Row{record.Int(id), record.Int(id % 8), record.Int(100)}
			if err := tx.Insert("accounts", row); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// runScannersInserters runs short range scans and single-row inserters
// concurrently, reporting separate statistics.
func runScannersInserters(db *core.DB, level txn.Level,
	scanners, inserters, perClient int) (scanRuns, insertRuns stats.Runs) {
	var wg sync.WaitGroup
	scanRuns.Latencies = &stats.Histogram{}
	insertRuns.Latencies = &stats.Histogram{}
	var scanOps, insertOps, insertAborts int64
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < scanners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + c)))
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				tx, err := db.Begin(level)
				if err != nil {
					continue
				}
				lo := int64(rng.Intn(3900))
				n := 0
				scanErr := tx.ScanTable("accounts",
					record.Row{record.Int(lo)}, record.Row{record.Int(lo + 100)},
					func(record.Row) bool { n++; return true })
				if scanErr != nil {
					tx.Rollback()
				} else {
					tx.Commit()
				}
				scanRuns.Latencies.Observe(time.Since(t0))
			}
			mu.Lock()
			scanOps += int64(perClient)
			mu.Unlock()
		}(c)
	}
	for c := 0; c < inserters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + c)))
			var aborts int64
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				tx, err := db.Begin(txn.ReadCommitted)
				if err != nil {
					continue
				}
				// Insert then delete an odd id: the row lands inside the
				// resident key range (a phantom for any covering scan).
				id := int64(rng.Intn(2000))*2 + 1
				row := record.Row{record.Int(id), record.Int(id % 8), record.Int(1)}
				if err := tx.Insert("accounts", row); err != nil {
					tx.Rollback()
					aborts++
				} else if err := tx.Delete("accounts", record.Row{record.Int(id)}); err != nil {
					tx.Rollback()
					aborts++
				} else if err := tx.Commit(); err != nil {
					aborts++
				}
				insertRuns.Latencies.Observe(time.Since(t0))
			}
			mu.Lock()
			insertOps += int64(perClient)
			insertAborts += aborts
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	scanRuns.Ops, scanRuns.Elapsed = scanOps, elapsed
	insertRuns.Ops, insertRuns.Aborts, insertRuns.Elapsed = insertOps, insertAborts, elapsed
	return scanRuns, insertRuns
}
