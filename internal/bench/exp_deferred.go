package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunF9DDeferredApplier (Figure 9D): immediate (escrow) vs deferred-applier
// maintenance on the order-entry workload. Deferred commits skip the view
// fold entirely — the background applier folds coalesced deltas moments
// later — so the experiment reports update throughput alongside the cost of
// that deferral: how long the applier needs to drain to zero lag once the
// load quiesces, how much the coalescer saved, and whether the drained view
// equals a recompute from the base tables.
func RunF9DDeferredApplier(s Scale) (*stats.Table, error) {
	const clients = 8
	perClient := s.div(1000)
	tb := &stats.Table{
		ID:    "F9D",
		Title: "immediate (escrow) vs deferred-applier maintenance",
		Header: []string{"strategy", "update tx/s", "drain at quiesce",
			"c2v p50/p99", "groups applied", "deltas coalesced", "consistent"},
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyDeferred} {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		w := workload.Orders{Products: 64, Skew: 1.2, Strategy: strat,
			ThinkTime: 200 * time.Microsecond}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		runs := runOrderClients(db, w, clients, perClient)

		// Drain: wait for the view watermark to reach the commit frontier.
		// Immediate views satisfy the wait at once, so escrow drains in ~0.
		target := db.Metrics().MVCC.Watermark
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		start := time.Now()
		err = db.WaitForViewWatermark(ctx, workload.SalesView, target)
		drain := time.Since(start)
		cancel()
		if err != nil {
			cleanup()
			return nil, err
		}
		m := db.Metrics()
		fresh := viewFreshness(m, workload.SalesView)
		consistent := "yes"
		if err := db.CheckConsistency(); err != nil {
			consistent = fmt.Sprintf("NO: %v", err)
		}
		cleanup()
		if strat == catalog.StrategyDeferred {
			tb.HeadlineName, tb.Headline = "deferred_update_tx_per_sec", runs.Throughput()
			tb.HeadlineFreshP50Ns = fresh.CommitToVisible.P50Ns
			tb.HeadlineFreshP99Ns = fresh.CommitToVisible.P99Ns
		}
		tb.AddRow(strategyName(strat), stats.F(runs.Throughput()), stats.D(drain),
			freshCell(fresh), stats.F(float64(m.Deferred.GroupsApplied)),
			stats.F(float64(m.Deferred.DeltasCoalesced)), consistent)
	}
	tb.Notes = append(tb.Notes,
		"drain = wall time from quiesce until the view watermark reaches the commit frontier",
		"c2v = commit-to-visible latency for the sales view (commit path for escrow, publish→watermark for deferred)",
		"deltas coalesced = folds the applier saved by merging publishes per (view, group)")
	return tb, nil
}
