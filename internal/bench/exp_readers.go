package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/workload"
)

// RunF4Aborts (Figure 4): abort (deadlock-victim) rate vs. concurrent
// writers. Transfer transactions touch two accounts — and, with view
// maintenance under X locks, two view rows — in random order, so the X-lock
// strategy manufactures deadlocks that escrow locks avoid entirely.
func RunF4Aborts(s Scale) (*stats.Table, error) {
	writersSweep := []int{2, 4, 8, 16}
	perWriter := s.div(800)
	tb := &stats.Table{
		ID:     "F4",
		Title:  "aborts per 1000 transfer transactions (4 hot branches)",
		Header: []string{"writers", "escrow aborts/1k", "xlock aborts/1k", "escrow deadlocks", "xlock deadlocks"},
	}
	for _, writers := range writersSweep {
		row := []string{stats.F(float64(writers))}
		var abortRate [2]float64
		var deadlocks [2]int64
		for i, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyXLock} {
			db, cleanup, err := tempDB(core.Options{LockTimeout: 5 * time.Second})
			if err != nil {
				return nil, err
			}
			w := workload.Banking{Accounts: 400, Branches: 4, Strategy: strat,
				InitialBalance: 1000, ThinkTime: 200 * time.Microsecond}
			if err := w.Setup(db); err != nil {
				cleanup()
				return nil, err
			}
			runs := workload.RunConcurrent(db, writers, perWriter, 13, w.TellerOp)
			st := db.Stats()
			cleanup()
			if runs.Ops > 0 {
				abortRate[i] = 1000 * float64(runs.Aborts) / float64(runs.Ops)
			}
			deadlocks[i] = st.Lock.Deadlocks
			if strat == catalog.StrategyXLock && writers == writersSweep[len(writersSweep)-1] {
				tb.HeadlineName, tb.Headline = "xlock_deadlocks_max_writers", float64(st.Lock.Deadlocks)
				tb.Notes = append(tb.Notes, fmt.Sprintf(
					"xlock lock manager at %d writers: %d sweeps, last %v, max %v",
					writers, st.Lock.Sweeps, st.Lock.LastSweep, st.Lock.MaxSweep))
			}
		}
		row = append(row, stats.F(abortRate[0]), stats.F(abortRate[1]),
			stats.F(float64(deadlocks[0])), stats.F(float64(deadlocks[1])))
		tb.Rows = append(tb.Rows, row)
	}
	tb.Notes = append(tb.Notes,
		"transfers lock two account rows (both strategies) plus two view rows (X-lock only)")
	return tb, nil
}

// RunT5Readers (Table 5): reader/writer interaction on an escrow-maintained
// view. Read-committed readers never block on escrow writers (the stored
// value is always committed); serializable readers take S locks that
// conflict with E and wait. The X-lock strategy blocks even RC readers.
// Snapshot readers ride the MVCC fast path: no lock-manager traffic at all,
// resolving against version chains at their pinned read timestamp.
func RunT5Readers(s Scale) (*stats.Table, error) {
	perClient := s.div(1200)
	const writers = 8
	const readers = 4
	tb := &stats.Table{
		ID:    "T5",
		Title: "view readers vs 8 escrow/xlock writers (4 hot branches)",
		Header: []string{"strategy", "reader isolation", "read p50", "read p99",
			"reads/s", "writer tx/s"},
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyXLock} {
		for _, level := range []txn.Level{txn.ReadCommitted, txn.Serializable, txn.Snapshot} {
			db, cleanup, err := tempDB(core.Options{LockTimeout: 30 * time.Second})
			if err != nil {
				return nil, err
			}
			w := workload.Banking{Accounts: 1000, Branches: 4, Strategy: strat,
				InitialBalance: 1000, ThinkTime: 300 * time.Microsecond}
			if err := w.Setup(db); err != nil {
				cleanup()
				return nil, err
			}
			readRuns, writeRuns := runReadersWriters(db, w, level, writers, readers, perClient)
			cleanup()
			if strat == catalog.StrategyEscrow && level == txn.ReadCommitted {
				tb.HeadlineName, tb.Headline = "escrow_rc_reads_per_sec", readRuns.Throughput()
			}
			tb.AddRow(strategyName(strat), level.String(),
				stats.D(readRuns.Latencies.Percentile(0.5)),
				stats.D(readRuns.Latencies.Percentile(0.99)),
				stats.F(readRuns.Throughput()), stats.F(writeRuns.Throughput()))
		}
	}
	tb.Notes = append(tb.Notes,
		"escrow + read-committed is the paper's sweet spot: committed values, no blocking")
	return tb, nil
}

// runReadersWriters runs writer and reader pools concurrently and returns
// their separate statistics.
func runReadersWriters(db *core.DB, w workload.Banking, level txn.Level,
	writers, readers, perClient int) (readRuns, writeRuns stats.Runs) {
	var wg sync.WaitGroup
	readRuns.Latencies = &stats.Histogram{}
	writeRuns.Latencies = &stats.Histogram{}
	var readOps, writeOps, readAborts, writeAborts int64
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			var aborts int64
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if err := w.DepositOp(db, rng); err != nil {
					aborts++
				}
				writeRuns.Latencies.Observe(time.Since(t0))
			}
			mu.Lock()
			writeOps += int64(perClient)
			writeAborts += aborts
			mu.Unlock()
		}(c)
	}
	// Snapshot readers go through the read-only fast path; other levels take
	// the lock-based read.
	readOp := func(rng *rand.Rand) error { return w.ReadBranchOp(db, rng, level) }
	if level == txn.Snapshot {
		readOp = func(rng *rand.Rand) error { return w.ReadBranchSnapshotOp(db, rng) }
	}
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + c)))
			var aborts int64
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if err := readOp(rng); err != nil {
					aborts++
				}
				readRuns.Latencies.Observe(time.Since(t0))
			}
			mu.Lock()
			readOps += int64(perClient)
			readAborts += aborts
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	readRuns.Ops, readRuns.Aborts, readRuns.Elapsed = readOps, readAborts, elapsed
	writeRuns.Ops, writeRuns.Aborts, writeRuns.Elapsed = writeOps, writeAborts, elapsed
	return readRuns, writeRuns
}

// RunF6QuerySpeedup (Figure 6): latency of answering the aggregate query
// from the indexed view (one B-tree lookup) vs. scanning the base table, as
// the base grows. The gap widens linearly with base size.
func RunF6QuerySpeedup(s Scale) (*stats.Table, error) {
	sizes := []int{1_000, 10_000, 100_000}
	if s.Factor > 1 {
		sizes = []int{500, 2_000, 10_000}
	}
	const queries = 50
	tb := &stats.Table{
		ID:     "F6",
		Title:  "aggregate query latency: indexed view lookup vs base-table scan",
		Header: []string{"base rows", "view lookup", "base scan", "speedup"},
	}
	for _, n := range sizes {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		w := workload.Orders{Products: 50, Skew: 0, Strategy: catalog.StrategyEscrow}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		if err := w.LoadOrders(db, n, 5); err != nil {
			cleanup()
			return nil, err
		}
		viewLat, err := timeQueries(db, queries, func(tx *core.Tx, rng *rand.Rand) error {
			_, _, err := tx.GetViewRow(workload.SalesView, record.Row{record.Int(int64(rng.Intn(50)))})
			return err
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		scanLat, err := timeQueries(db, queries, func(tx *core.Tx, rng *rand.Rand) error {
			_, err := tx.AggregateNoView("orders", nil, []int{1}, salesAggs())
			return err
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		speedup := "-"
		if viewLat > 0 {
			speedup = stats.F(float64(scanLat)/float64(viewLat)) + "x"
			// Largest base size wins: the experiment's point is how the gap grows.
			tb.HeadlineName, tb.Headline = "view_lookup_speedup_largest_base", float64(scanLat)/float64(viewLat)
		}
		tb.AddRow(stats.F(float64(n)), stats.D(viewLat), stats.D(scanLat), speedup)
	}
	tb.Notes = append(tb.Notes, "view lookup is O(log n); the scan grows linearly with the base")
	return tb, nil
}

func timeQueries(db *core.DB, n int, q func(*core.Tx, *rand.Rand) error) (time.Duration, error) {
	rng := rand.New(rand.NewSource(3))
	start := time.Now()
	for i := 0; i < n; i++ {
		tx, err := db.Begin(txn.ReadCommitted)
		if err != nil {
			return 0, err
		}
		if err := q(tx, rng); err != nil {
			tx.Rollback()
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}
