package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunDAGRollupChain (view-DAG experiment): order-entry throughput against the
// 3-level rollup chain (order_totals → customer_totals → region_totals,
// DESIGN.md §10), escrow-maintained vs fully deferred. Every insert cascades
// through all three levels, so the experiment reports the cost of topological
// maintenance alongside how much the per-transaction coalescing queue saved
// (stacked folds avoided because several contributions landed in the same
// (view, group)) and whether the whole chain equals a recompute at quiesce.
func RunDAGRollupChain(s Scale) (*stats.Table, error) {
	const clients = 8
	perClient := s.div(800)
	tb := &stats.Table{
		ID:    "DAG",
		Title: "3-level rollup chain: escrow vs deferred cascade maintenance",
		Header: []string{"strategy", "insert tx/s", "c2v p50/p99", "stacked folds",
			"coalesced", "level folds", "consistent"},
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyEscrow, catalog.StrategyDeferred} {
		db, cleanup, err := tempDB(core.Options{})
		if err != nil {
			return nil, err
		}
		w := workload.Rollup{Customers: 64, Regions: 4, Skew: 1.2, Strategy: strat}
		if err := w.Setup(db); err != nil {
			cleanup()
			return nil, err
		}
		ops := make([]workload.Op, clients)
		for c := range ops {
			ops[c] = w.ItemEntry(int64((c + 1) * 10_000_000))
		}
		runs := workload.RunConcurrentOps(db, perClient, 13, ops)

		// Drain the deferred applier so the consistency check and the fold
		// counters see the whole cascade; escrow satisfies the wait at once.
		target := db.Metrics().MVCC.Watermark
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err = db.WaitForViewWatermark(ctx, workload.RollupL2, target)
		cancel()
		if err != nil {
			cleanup()
			return nil, err
		}
		m := db.Metrics()
		fresh := viewFreshness(m, workload.RollupL2)
		consistent := "yes"
		if err := db.CheckConsistency(); err != nil {
			consistent = fmt.Sprintf("NO: %v", err)
		}
		cleanup()
		if strat == catalog.StrategyEscrow {
			tb.HeadlineName, tb.Headline = "rollup_chain_tx_per_sec", runs.Throughput()
			tb.HeadlineFreshP50Ns = fresh.CommitToVisible.P50Ns
			tb.HeadlineFreshP99Ns = fresh.CommitToVisible.P99Ns
		}
		tb.AddRow(strategyName(strat), stats.F(runs.Throughput()), freshCell(fresh),
			stats.F(float64(m.Cascade.Folds)), stats.F(float64(m.Cascade.Coalesced)),
			fmt.Sprintf("%v", m.Cascade.LevelFolds), consistent)
	}
	tb.Notes = append(tb.Notes,
		"every insert feeds order_totals, which feeds customer_totals, which feeds region_totals",
		"c2v = commit-to-visible latency at the chain's top (region_totals)",
		"stacked folds = commit-time (or applier) folds into views whose source is another view",
		"coalesced = cascade contributions merged into an already-queued (view, group) delta")
	return tb, nil
}
