package bench

import (
	"strings"
	"testing"
)

// tiny is an even smaller scale than Quick for unit tests.
var tiny = Scale{Factor: 64}

func TestAllRunnersProduceTables(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := r.Run(tiny)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tb.ID != r.ID {
				t.Fatalf("table ID %q != runner ID %q", tb.ID, r.ID)
			}
			if len(tb.Rows) == 0 || len(tb.Header) == 0 {
				t.Fatalf("%s produced an empty table", r.ID)
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s row %d has %d cells, header has %d", r.ID, i, len(row), len(tb.Header))
				}
			}
			out := tb.String()
			if !strings.Contains(out, r.ID) {
				t.Fatalf("%s rendering lacks ID:\n%s", r.ID, out)
			}
		})
	}
}

func TestT8RecoveryReportsConsistency(t *testing.T) {
	tb, err := RunT8Recovery(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("recovery row inconsistent: %v", row)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("F2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown experiment found")
	}
}

func TestScaleDiv(t *testing.T) {
	if Full.div(100) != 100 {
		t.Fatal("full scale must not shrink")
	}
	if Quick.div(100) != 12 {
		t.Fatalf("quick div = %d", Quick.div(100))
	}
	if (Scale{Factor: 1000}).div(100) != 1 {
		t.Fatal("div must not reach zero")
	}
}
